// Probabilistic formal verification (paper refs [9], [10] — uncertainty
// removal by model checking), on a degraded-mode automated-driving
// supervisor modeled as a DTMC.
//
// Measured: PCTL bounded reachability of the hazardous state, the effect
// of a monitor (safety property as bounded until), and guaranteed
// interval bounds when the transition probabilities carry epistemic
// imprecision (interval DTMC).
#include <cstdio>

#include "markov/dtmc.hpp"
#include "markov/mdp.hpp"

int main() {
  using namespace sysuq;

  std::puts("==== probabilistic model checking of a degraded-mode "
            "supervisor ====\n");

  // States: nominal -> degraded -> {recovered=nominal, mrm (minimal risk
  // manoeuvre), hazard}. The MRM is absorbing-safe; hazard absorbing-bad.
  markov::Dtmc c;
  const auto nominal = c.add_state("nominal");
  const auto degraded = c.add_state("degraded");
  const auto mrm = c.add_state("mrm");
  const auto hazard = c.add_state("hazard");
  c.set_transition(nominal, nominal, 0.985);
  c.set_transition(nominal, degraded, 0.015);
  c.set_transition(degraded, nominal, 0.70);
  c.set_transition(degraded, degraded, 0.20);
  c.set_transition(degraded, mrm, 0.09);
  c.set_transition(degraded, hazard, 0.01);
  c.set_transition(mrm, mrm, 1.0);
  c.set_transition(hazard, hazard, 1.0);
  c.validate();

  std::puts("(a) PCTL: P[F<=k hazard] from nominal:");
  std::puts("      k      P(hazard)   P(mrm)");
  for (const std::size_t k : {10u, 100u, 1000u, 10000u}) {
    const double ph = c.bounded_reachability({hazard}, k)[nominal];
    const double pm = c.bounded_reachability({mrm}, k)[nominal];
    std::printf("  %6zu    %.6f    %.6f\n", k, ph, pm);
  }
  const double ult = c.reachability({hazard})[nominal];
  std::printf("  unbounded P(hazard) = %.6f (vs MRM %.6f)\n\n", ult,
              c.reachability({mrm})[nominal]);

  std::printf("(b) expected steps to leave service (MRM or hazard): %.1f\n\n",
              c.expected_steps_to({mrm, hazard})[nominal]);

  // ---- interval verification under epistemic imprecision ----
  std::puts("(c) interval DTMC: hazard-exit probability known only to a band");
  std::puts("    eps    P[F<=1000 hazard] guaranteed bounds");
  for (const double eps : {0.0, 0.002, 0.005, 0.008}) {
    markov::IntervalDtmc ic({"nominal", "degraded", "mrm", "hazard"});
    const auto band = [eps](double p) {
      return prob::ProbInterval(std::max(0.0, p - eps), std::min(1.0, p + eps));
    };
    ic.set_transition(0, 0, band(0.985));
    ic.set_transition(0, 1, band(0.015));
    ic.set_transition(1, 0, band(0.70));
    ic.set_transition(1, 1, band(0.20));
    ic.set_transition(1, 2, band(0.09));
    ic.set_transition(1, 3, band(0.01));
    ic.set_transition(2, 2, prob::ProbInterval(1.0));
    ic.set_transition(3, 3, prob::ProbInterval(1.0));
    const auto b = ic.bounded_reachability({3}, 1000)[0];
    std::printf("  %.3f   [%.6f, %.6f]  width %.6f\n", eps, b.lo(), b.hi(),
                b.width());
  }
  std::puts("\n  -> shape: eps = 0 reproduces the point chain; small CPT-level");
  std::puts("     imprecision inflates the verified hazard bound severely over");
  std::puts("     long horizons — why the paper insists epistemic uncertainty");
  std::puts("     must enter the safety argument explicitly.\n");

  // ---- MDP: synthesize the policy that bounds the hazard ----
  std::puts("(d) MDP policy synthesis: when should the degraded supervisor");
  std::puts("    hand over (MRM) instead of continuing?");
  std::puts("    P(hazard|continue step)   min P(hazard)   optimal action");
  for (const double risk : {0.0001, 0.0005, 0.002, 0.01, 0.05}) {
    markov::Mdp m;
    const auto drive = m.add_state("drive");
    const auto deg = m.add_state("degraded");
    const auto arrive = m.add_state("arrived");
    const auto safe = m.add_state("mrm_stop");
    const auto hz = m.add_state("hazard");
    // Trips complete: driving reaches the destination eventually, so
    // continuing through a degradation is not automatically fatal.
    (void)m.add_action(drive, "drive",
                       {{drive, 0.93}, {deg, 0.02}, {arrive, 0.05}});
    (void)m.add_action(deg, "continue",
                       {{drive, 0.8 - risk}, {deg, 0.2}, {hz, risk}});
    (void)m.add_action(deg, "mrm", {{safe, 0.998}, {hz, 0.002}});
    (void)m.add_action(arrive, "stay", {{arrive, 1.0}});
    (void)m.add_action(safe, "stay", {{safe, 1.0}});
    (void)m.add_action(hz, "stay", {{hz, 1.0}});
    const auto v = m.reachability({hz}, /*maximize=*/false);
    const auto pol = m.optimal_policy({hz}, false);
    std::printf("    %10.4f                %.6f        %s\n", risk, v[deg],
                m.action_name(deg, pol[deg]).c_str());
  }
  std::puts("\n  -> shape: with completable trips, the risk-minimal policy");
  std::puts("     continues through cheap degradations and hands over once");
  std::puts("     the per-step risk outweighs the handover risk — tolerance");
  std::puts("     as a synthesized *policy*, not just an architecture.");
  return 0;
}
