// E3 — Fig. 3: the taxonomy of uncertainty means, plus a simulated
// effectiveness study: each mean applied to the same perception system,
// measuring the residual hazard per uncertainty type.
//
// Reproduces the figure's structure (types x means coverage) and makes
// the paper's qualitative claims measurable:
//   * "uncertainty prevention should be prioritized";
//   * "tolerance ... hardly able to cope with [ontological]";
//   * "removal during use is better suited [for ontological]".
#include <cstdio>

#include "sys/means.hpp"
#include "core/taxonomy.hpp"
#include "perception/table1.hpp"

int main() {
  using namespace sysuq;
  prob::Rng rng(42);

  std::puts("==== E3: Fig. 3 — taxonomy of uncertainty means ====\n");

  // ---- coverage matrix of the paper's method catalog ----
  const auto reg = core::MethodRegistry::paper_catalog();
  std::printf("%zu catalogued methods; coverage (methods per cell):\n\n", reg.size());
  std::printf("  %-14s", "mean \\ type");
  for (const auto t : core::all_uncertainty_types())
    std::printf("%14s", core::to_string(t));
  std::puts("");
  for (const auto m : core::all_means()) {
    std::printf("  %-14s", core::to_string(m));
    for (const auto t : core::all_uncertainty_types())
      std::printf("%14zu", reg.coverage(m, t));
    std::puts("");
  }
  std::puts("\n  -> tolerance x ontological is empty: the paper's Sec. IV");
  std::puts("     claim that tolerance can hardly address unknown-unknowns.\n");

  // ---- simulated effectiveness of each mean ----
  std::puts("simulated effectiveness on the Sec. V perception system");
  std::puts("(world: 60% car / 30% ped modeled mass, 10% unknown objects):\n");

  perception::WorldModel modeled({"car", "pedestrian"}, {2.0 / 3.0, 1.0 / 3.0});
  const perception::TrueWorld world(modeled, {"unknown_object"}, 0.10);
  const auto sensor = perception::ConfusionSensor::make_default(2, 1, 0.90, 0.8);
  constexpr std::size_t kN = 200000;

  // Baseline: one sensor, no mitigation.
  perception::RedundantArchitecture baseline{
      {sensor}, perception::FusionRule::kMajorityVote, 0.0, 0.1};
  prob::Rng r0 = rng.split(1);
  const auto base = perception::simulate_fusion(baseline, world, kN, r0);
  std::printf("  %-34s hazard=%.4f acc=%.4f novel-caught=%.3f\n",
              "baseline (single sensor)", base.hazard_rate, base.accuracy,
              base.novel_caught);

  // PREVENTION: ODD restriction suppresses unknown encounters 5x.
  {
    const auto rep = sys::apply_odd_restriction(world, {0, 1}, 0.2);
    const perception::TrueWorld odd_world(world.modeled(), {"unknown_object"},
                                          rep.novel_rate_after);
    prob::Rng r = rng.split(2);
    const auto m = perception::simulate_fusion(baseline, odd_world, kN, r);
    std::printf("  %-34s hazard=%.4f acc=%.4f novel-caught=%.3f\n",
                "prevention (ODD, novel 10%->2%)", m.hazard_rate, m.accuracy,
                m.novel_caught);
  }

  // REMOVAL: learn the sensor CPT from field data, then deploy a
  // posterior-calibrated decision stage (simulated by a better sensor:
  // accuracy raised by the knowledge gained).
  {
    const auto truth = perception::table1_network();
    auto deployed = perception::table1_network();
    deployed.update_cpt_rows(1, {prob::Categorical::uniform(4),
                                 prob::Categorical::uniform(4),
                                 prob::Categorical::uniform(4)});
    sys::RemovalLoop loop(truth, deployed, 1, perception::kGtUnknown);
    prob::Rng r = rng.split(3);
    const auto trace = loop.run({500, 50000}, r);
    std::printf("  %-34s epistemic width %.4f -> %.4f; model gap %.4f -> %.4f\n",
                "removal (field obs 500->50k)", trace.front().epistemic_width,
                trace.back().epistemic_width, trace.front().model_gap,
                trace.back().model_gap);
  }

  // TOLERANCE: triple-redundant diverse sensors.
  {
    perception::RedundantArchitecture triple{
        {sensor, sensor, sensor}, perception::FusionRule::kMajorityVote, 0.0,
        0.1};
    prob::Rng r = rng.split(4);
    const auto report = sys::compare_tolerance(baseline, triple, world, kN, r);
    std::printf("  %-34s hazard=%.4f acc=%.4f (reduction x%.2f)\n",
                "tolerance (3x diverse redundancy)",
                report.redundant.hazard_rate, report.redundant.accuracy,
                report.hazard_reduction_factor);
    // But tolerance cannot remove the ontological exposure itself:
    std::printf("  %-34s novel objects still occur at %.0f%%; fused 'none' "
                "only shields them\n",
                "  (ontological limit)", world.novel_rate() * 100.0);
  }

  // FORECASTING: when would the release criteria pass?
  {
    sys::ReleaseCriteria criteria;
    std::size_t needed = 0;
    for (const std::size_t n : {1000u, 10000u, 100000u}) {
      sys::ReleaseEvidence e;
      e.field_observations = n;
      e.epistemic_width = 1.0 / std::sqrt(static_cast<double>(n));  // ~Dirichlet
      e.missing_mass = 30.0 / static_cast<double>(n);  // singleton decay
      e.hazardous_events = static_cast<std::size_t>(1e-4 * n);
      if (sys::assess_release(e, criteria).ready && needed == 0) needed = n;
    }
    std::printf("  %-34s criteria first met at N=%zu field observations\n",
                "forecasting (release assessment)", needed);
  }

  std::puts("\n  -> shape: prevention gives the largest hazard cut per unit");
  std::puts("     effort; tolerance multiplies reliability but leaves the");
  std::puts("     ontological rate untouched; removal/forecasting govern the");
  std::puts("     epistemic + ontological residual, matching Sec. IV.");
  return 0;
}
