// Spectral propagation of parameter uncertainty through model A: the
// deterministic Newtonian ephemeris with uncertain initial conditions.
//
// Sec. II's deterministic formal system stays deterministic — but when
// its *parameters* carry epistemic uncertainty, the induced output
// distribution is what the safety case needs. Polynomial chaos gives the
// output mean/variance and Sobol attribution at a tiny fraction of the
// Monte-Carlo cost.
#include <chrono>
#include <cstdio>

#include "orbit/nbody.hpp"
#include "prob/polychaos.hpp"
#include "prob/rng.hpp"
#include "prob/statistics.hpp"

namespace {

using namespace sysuq;

// Planet-0 x-position at time T for perturbed initial conditions:
// xi0 scales the tangential velocity, xi1 the separation.
double orbit_model(double v_sigma, double sep_sigma, double xi0, double xi1,
                   double horizon) {
  const orbit::GravityParams g{};
  auto s = orbit::make_circular_binary(1.0, 0.5, 1.0 + sep_sigma * xi1, g);
  s.bodies[0].velocity.y *= 1.0 + v_sigma * xi0;
  const double dt = 2e-3;
  const auto steps = static_cast<std::size_t>(horizon / dt);
  for (std::size_t i = 0; i < steps; ++i) orbit::rk4_step(s, dt, g);
  return s.bodies[0].position.x;
}

}  // namespace

int main() {
  constexpr double kHorizon = 4.0;
  constexpr double kVSigma = 0.01;   // 1% velocity uncertainty
  constexpr double kSepSigma = 0.005;  // 0.5% separation uncertainty

  std::puts("==== PCE propagation through model A (uncertain initial "
            "conditions) ====\n");

  // ---- 1D: velocity uncertainty only, PCE vs Monte Carlo ----
  std::puts("(a) x(T=4) with 1% Gaussian velocity uncertainty:");
  std::puts("  method          model evals   mean        std dev");
  const auto f1 = [&](double xi) {
    return orbit_model(kVSigma, 0.0, xi, 0.0, kHorizon);
  };
  for (const std::size_t order : {1u, 2u, 4u, 6u}) {
    const prob::PolynomialChaos1D pce(prob::PolyBasis::kHermite, order, f1, 2);
    std::printf("  PCE order %zu     %8zu     %+.6f   %.6f\n", order,
                order + 3, pce.mean(), std::sqrt(pce.variance()));
  }
  prob::Rng rng(31415);
  for (const std::size_t n : {100u, 1000u, 10000u}) {
    prob::RunningStats mc;
    for (std::size_t i = 0; i < n; ++i) mc.add(f1(rng.gaussian()));
    std::printf("  Monte Carlo     %8zu     %+.6f   %.6f\n", n, mc.mean(),
                mc.stddev());
  }
  std::puts("  -> shape: the order-4 expansion (7 model runs) matches the");
  std::puts("     10^4-run Monte-Carlo moments — spectral convergence on a");
  std::puts("     smooth parametric response.\n");

  // ---- 2D: Sobol attribution of the output variance ----
  std::puts("(b) which initial-condition uncertainty dominates x(T)?");
  std::puts("  horizon   Var[x(T)]    S1(velocity)  S1(separation)  "
            "interaction");
  for (const double horizon : {1.0, 2.0, 4.0, 8.0}) {
    const prob::PolynomialChaosND pce(
        prob::PolyBasis::kHermite, 2, 4,
        [&](const std::vector<double>& xi) {
          return orbit_model(kVSigma, kSepSigma, xi[0], xi[1], horizon);
        },
        2);
    const double s0 = pce.sobol_first(0);
    const double s1 = pce.sobol_first(1);
    std::printf("  %7.1f   %.3e     %.4f        %.4f        %.4f\n", horizon,
                pce.variance(), s0, s1, std::max(0.0, 1.0 - s0 - s1));
  }
  std::puts("\n  -> shape: variance grows with horizon (phase error");
  std::puts("     accumulates); the Sobol split tells the domain analysis");
  std::puts("     which measurement to improve — epistemic triage for");
  std::puts("     continuous models, complementing the CPT sensitivity of");
  std::puts("     the discrete layer.");
  return 0;
}
