// Assurance-case confidence (paper ref [11], Sec. I "assurance cases can
// be enriched with belief modeling"; the forecasting mean of Sec. IV).
//
// Measured: propagated confidence of a release argument for the Table I
// perception system, its growth with field evidence, the rule-trust
// sensitivity, and the weakest-leaf diagnosis.
#include <cstdio>

#include "evidence/subjective.hpp"

int main() {
  using namespace sysuq::evidence;

  std::puts("==== assurance-case confidence propagation ====\n");

  // Argument: "perception is safe for release" requires
  //   (G1) sensor CPT adequately known       [field evidence]
  //   (G2) unknown-object handling works     [test campaign]
  //   (G3) redundancy degrades gracefully    [fault injection]
  // combined conjunctively under an imperfect argumentation rule.
  const auto build = [](double n_field, double n_tests, double n_fi,
                        double rule_trust) {
    AssuranceCase ac;
    const auto g1 = ac.add_evidence(
        "sensor CPT adequately known",
        Opinion::from_evidence(0.98 * n_field, 0.02 * n_field));
    const auto g2 = ac.add_evidence(
        "unknown-object handling works",
        Opinion::from_evidence(0.95 * n_tests, 0.05 * n_tests));
    const auto g3 = ac.add_evidence(
        "redundancy degrades gracefully",
        Opinion::from_evidence(0.99 * n_fi, 0.01 * n_fi));
    const auto root = ac.add_goal("perception safe for release",
                                  AssuranceCase::Kind::kConjunction,
                                  {g1, g2, g3}, rule_trust);
    return std::pair{std::move(ac), root};
  };

  std::puts("(a) confidence vs accumulated evidence (rule trust 0.98):");
  std::puts("  field obs   tests   fault inj   P(root)   uncertainty");
  for (const double scale : {10.0, 100.0, 1000.0, 10000.0}) {
    auto [ac, root] = build(scale, scale / 2, scale / 10, 0.98);
    const auto o = ac.evaluate(root);
    std::printf("  %9.0f  %6.0f   %9.0f   %.4f     %.4f\n", scale, scale / 2,
                scale / 10, o.projected(), o.uncertainty());
  }
  std::puts("  -> shape: confidence rises and uncertainty falls with");
  std::puts("     evidence, but saturates below 1 — the residual is the");
  std::puts("     argumentation rule itself.\n");

  std::puts("(b) rule-trust sensitivity (evidence fixed at 1000/500/100):");
  std::puts("  rule trust   P(root)   uncertainty");
  for (const double rt : {1.0, 0.98, 0.9, 0.7, 0.5}) {
    auto [ac, root] = build(1000, 500, 100, rt);
    const auto o = ac.evaluate(root);
    std::printf("  %9.2f    %.4f     %.4f\n", rt, o.projected(), o.uncertainty());
  }
  std::puts("  -> shape: a shaky inference rule caps achievable confidence");
  std::puts("     regardless of evidence volume (epistemic ceiling).\n");

  std::puts("(c) weakest-leaf diagnosis (field 10000, tests 40, FI 1000):");
  {
    AssuranceCase ac;
    const auto g1 = ac.add_evidence("sensor CPT adequately known",
                                    Opinion::from_evidence(9800, 200));
    const auto g2 = ac.add_evidence("unknown-object handling works",
                                    Opinion::from_evidence(38, 2));
    const auto g3 = ac.add_evidence("redundancy degrades gracefully",
                                    Opinion::from_evidence(990, 10));
    const auto root = ac.add_goal("perception safe for release",
                                  AssuranceCase::Kind::kConjunction,
                                  {g1, g2, g3}, 0.98);
    const auto weakest = ac.weakest_leaf(root);
    std::printf("  root %s\n  next evidence should target: \"%s\"\n",
                ac.evaluate(root).to_string().c_str(),
                ac.claim(weakest).c_str());
  }
  std::puts("\n  -> shape: the forecasting mean in action — the argument");
  std::puts("     itself says where the next unit of evidence buys the most");
  std::puts("     confidence (here: the under-tested ontological leg).");
  return 0;
}
