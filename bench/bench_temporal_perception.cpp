// Temporal perception: the Table I analysis running as an online filter.
//
// The paper's Fig. 4 is a single-frame diagnosis. Deployed perception
// integrates evidence over time; an HMM with the Table I CPT as emission
// model shows how temporal fusion sharpens all three uncertainty
// signals: the unknown posterior (ontological), the filtered entropy
// (epistemic indicator), and the hazard of acting on one frame vs the
// filtered belief.
#include <cstdio>

#include "markov/hmm.hpp"
#include "perception/table1.hpp"
#include "prob/statistics.hpp"

namespace {

using namespace sysuq;

markov::Hmm table1_hmm(double stickiness) {
  const auto net = perception::table1_network();
  const auto& prior = net.cpt_rows(0)[0];
  std::vector<prob::Categorical> trans;
  for (std::size_t i = 0; i < 3; ++i) {
    std::vector<double> row(3, 0.0);
    double off = 0.0;
    for (std::size_t j = 0; j < 3; ++j) {
      if (j != i) off += prior.p(j);
    }
    for (std::size_t j = 0; j < 3; ++j) {
      row[j] = (j == i) ? stickiness : (1.0 - stickiness) * prior.p(j) / off;
    }
    trans.push_back(prob::Categorical::normalized(std::move(row)));
  }
  return markov::Hmm(prior, std::move(trans), net.cpt_rows(1));
}

}  // namespace

int main() {
  std::puts("==== temporal Table I: filtering the perception chain ====\n");

  // ---- unknown posterior vs consecutive 'none' frames ----
  std::puts("(a) P(unknown | k consecutive 'none' frames), stickiness 0.97:");
  std::puts("  frames   filtered P(unknown)   single-shot reference");
  const auto h = table1_hmm(0.97);
  for (const std::size_t k : {1u, 2u, 3u, 5u, 8u, 12u}) {
    const auto f =
        h.filter(std::vector<std::size_t>(k, perception::kPercNone));
    std::printf("  %6zu        %.4f               %s\n", k,
                f.filtered.back().p(2), k == 1 ? "0.6639" : "-");
  }
  std::puts("  -> shape: one frame gives the paper's 0.66; a short run of");
  std::puts("     misses pushes the ontological diagnosis past 0.99 —");
  std::puts("     temporal integration is removal-during-use at frame rate.\n");

  // ---- weak-evidence accumulation vs persistence model ----
  // 'none' is strong evidence (likelihood ratio ~18 per frame), so it
  // saturates in 2 frames regardless of dynamics; the *ambiguous*
  // car/pedestrian output (ratio 4 vs car) is where persistence matters.
  std::puts("(b) frames of sustained 'car/pedestrian' until P(unknown) > 0.8:");
  std::puts("  stickiness   frames needed");
  for (const double s : {0.5, 0.8, 0.95, 0.99}) {
    const auto hmm = table1_hmm(s);
    std::size_t needed = 0;
    for (std::size_t k = 1; k <= 80; ++k) {
      const auto f = hmm.filter(
          std::vector<std::size_t>(k, perception::kPercCarPedestrian));
      if (f.filtered.back().p(2) > 0.8) {
        needed = k;
        break;
      }
    }
    if (needed > 0) {
      std::printf("  %9.2f    %8zu\n", s, needed);
    } else {
      std::printf("  %9.2f         >80 (transitions wash the evidence out)\n",
                  s);
    }
  }
  std::puts("  -> shape: weak evidence only accumulates when the world is");
  std::puts("     persistent; a volatile world (stickiness 0.5) re-rolls the");
  std::puts("     object every frame and the ambiguous reading never");
  std::puts("     resolves — temporal tolerance has a persistence budget.\n");

  // ---- acting on frames vs acting on the filter ----
  std::puts("(c) hazardous-act rate on a simulated stream (5k frames,");
  std::puts("    stickiness 0.95; act = commit to car/ped when belief > 0.9):");
  const auto hmm = table1_hmm(0.95);
  prob::Rng rng(424242);
  const auto tr = hmm.sample(5000, rng);
  const auto filt = hmm.filter(tr.observations);
  std::size_t frame_acts = 0, frame_hazard = 0, filt_acts = 0, filt_hazard = 0;
  const auto net = perception::table1_network();
  for (std::size_t t = 0; t < 5000; ++t) {
    // Per-frame policy: trust the single observation's MAP diagnosis.
    const auto single =
        prob::Categorical::normalized({net.cpt_rows(1)[0].p(tr.observations[t]) * 0.6,
                                       net.cpt_rows(1)[1].p(tr.observations[t]) * 0.3,
                                       net.cpt_rows(1)[2].p(tr.observations[t]) * 0.1});
    if (single.max_prob() > 0.9 && single.argmax() < 2) {
      ++frame_acts;
      frame_hazard += (tr.states[t] != single.argmax()) ? 1 : 0;
    }
    // Filtered policy.
    const auto& belief = filt.filtered[t];
    if (belief.max_prob() > 0.9 && belief.argmax() < 2) {
      ++filt_acts;
      filt_hazard += (tr.states[t] != belief.argmax()) ? 1 : 0;
    }
  }
  std::printf("  per-frame:  acts %zu/5000 (availability %.3f), hazardous "
              "rate %.4f\n",
              frame_acts, frame_acts / 5000.0,
              frame_acts ? static_cast<double>(frame_hazard) / frame_acts : 0.0);
  std::printf("  filtered :  acts %zu/5000 (availability %.3f), hazardous "
              "rate %.4f\n",
              filt_acts, filt_acts / 5000.0,
              filt_acts ? static_cast<double>(filt_hazard) / filt_acts : 0.0);
  std::puts("\n  -> shape: the filter commits on ambiguous frames the");
  std::puts("     per-frame policy must skip, raising availability at an");
  std::puts("     essentially unchanged hazard rate — temporal redundancy");
  std::puts("     trades in the same currency as spatial redundancy (E8).\n");

  // ---- Baum-Welch: removal without ground truth ----
  std::puts("(d) learning the temporal model from outputs alone (Baum-Welch,");
  std::puts("    20k-frame stream, no ground-truth labels):");
  {
    const auto truth_hmm = table1_hmm(0.95);
    prob::Rng r2(171717);
    const auto stream = truth_hmm.sample(20000, r2);
    const double truth_ll =
        truth_hmm.filter(stream.observations).log_likelihood;

    // Naive starting model: weakly-informative everything.
    markov::Hmm start(
        prob::Categorical({0.4, 0.35, 0.25}),
        {prob::Categorical({0.8, 0.1, 0.1}), prob::Categorical({0.1, 0.8, 0.1}),
         prob::Categorical({0.1, 0.1, 0.8})},
        {prob::Categorical({0.6, 0.2, 0.1, 0.1}),
         prob::Categorical({0.2, 0.6, 0.1, 0.1}),
         prob::Categorical({0.1, 0.1, 0.3, 0.5})});
    const double start_ll = start.filter(stream.observations).log_likelihood;
    const auto fitted = start.fit(stream.observations, 60, 1e-4);
    std::printf("  log-likelihood: start %.0f -> fitted %.0f (generator "
                "%.0f)\n",
                start_ll, fitted.log_likelihood, truth_ll);
    // Diagnosis quality with the learned model: accuracy of the filtered
    // MAP hidden state against the (held-back) ground truth.
    const auto f = fitted.model.filter(stream.observations);
    std::size_t correct = 0;
    for (std::size_t t = 0; t < stream.states.size(); ++t) {
      correct += f.filtered[t].argmax() == stream.states[t] ? 1 : 0;
    }
    std::printf("  filtered MAP accuracy of the fitted model: %.3f\n",
                static_cast<double>(correct) / stream.states.size());
  }
  std::puts("\n  -> shape: EM closes most of the likelihood gap from output");
  std::puts("     data alone — uncertainty removal keeps working even when");
  std::puts("     the field observations lack ground-truth labels.");
  return 0;
}
