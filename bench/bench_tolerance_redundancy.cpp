// E8 — Secs. IV & V: "uncertainty tolerance can typically be obtained by
// using redundant architectures", and the BN warning that common parent
// nodes (common causes) undermine the diversity.
//
// Measured: hazard rate vs sensor count x fusion rule x common-cause
// correlation, plus the closed-world failure of naive Bayes on novel
// objects.
#include <cstdio>

#include "perception/fusion.hpp"

int main() {
  using namespace sysuq;
  prob::Rng rng(777);

  std::puts("==== E8: uncertainty tolerance via redundancy ====\n");
  perception::WorldModel modeled({"car", "pedestrian"}, {2.0 / 3.0, 1.0 / 3.0});
  const perception::TrueWorld world(modeled, {"unknown_object"}, 0.05);
  const auto sensor = perception::ConfusionSensor::make_default(2, 1, 0.9, 0.8);
  constexpr std::size_t kN = 150000;

  const struct {
    perception::FusionRule rule;
    const char* name;
  } rules[] = {
      {perception::FusionRule::kMajorityVote, "majority"},
      {perception::FusionRule::kNaiveBayes, "naive-bayes"},
      {perception::FusionRule::kDempster, "dempster"},
  };

  std::puts("independent sensors (no common cause):");
  std::puts("  sensors  rule         hazard    accuracy  novel-caught");
  for (const std::size_t k : {1u, 2u, 3u, 5u}) {
    for (const auto& r : rules) {
      perception::RedundantArchitecture arch{
          std::vector<perception::ConfusionSensor>(k, sensor), r.rule, 0.0, 0.1};
      prob::Rng rr = rng.split(k * 10 + static_cast<std::size_t>(r.rule));
      const auto m = perception::simulate_fusion(arch, world, kN, rr);
      std::printf("  %7zu  %-11s  %.5f   %.4f    %.3f\n", k, r.name,
                  m.hazard_rate, m.accuracy, m.novel_caught);
    }
  }
  std::puts("\n  -> shape: hazard falls with k for vote/DS; naive Bayes is");
  std::puts("     accurate on modeled classes but its closed world never");
  std::puts("     abstains on novel objects (novel-caught ~ 0) — the exact");
  std::puts("     blind spot the paper's unknown state exists to expose.\n");

  std::puts("common-cause ablation (3 sensors, majority vote):");
  std::puts("  common-cause rate   hazard    hazard vs independent");
  double independent_hazard = 0.0;
  for (const double cc : {0.0, 0.1, 0.3, 0.6, 0.9}) {
    perception::RedundantArchitecture arch{
        {sensor, sensor, sensor}, perception::FusionRule::kMajorityVote, cc,
        0.1};
    prob::Rng rr = rng.split(1000 + static_cast<std::size_t>(cc * 100));
    const auto m = perception::simulate_fusion(arch, world, kN, rr);
    // sysuq-lint-allow(float-eq): cc iterates a literal list; comparing
    // against the exact first element is well-defined.
    if (cc == 0.0) independent_hazard = m.hazard_rate;
    std::printf("  %17.1f   %.5f        x%.2f\n", cc, m.hazard_rate,
                m.hazard_rate / independent_hazard);
  }
  std::puts("\n  -> shape: hazard climbs monotonically toward the single-");
  std::puts("     sensor rate as the common cause correlates the channels —");
  std::puts("     the BN 'common parent node' effect of Sec. V, quantified.");
  return 0;
}
