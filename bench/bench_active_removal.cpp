// Ablation: how should the uncertainty-removal loop *allocate* its
// observations? Field data arrives with the world's priors (the unknown
// class is rare), but a test campaign can target ground truths. Three
// policies, same label budget:
//
//   field      — draw ground truths from the world prior (Sec. IV's
//                passive "field observation");
//   uniform    — equal labels per ground-truth class;
//   width-led  — always label the class whose CPT row posterior is
//                currently widest (uncertainty sampling).
//
// Measured: mean and worst-row epistemic width vs label budget.
#include <cstdio>

#include "bayesnet/learning.hpp"
#include "perception/table1.hpp"

namespace {

using namespace sysuq;

enum class Policy { kField, kUniform, kWidthLed };

// Runs one allocation policy to `budget` labels; returns the learner.
bayesnet::CptLearner run_policy(Policy policy, std::size_t budget,
                                prob::Rng& rng) {
  const auto truth = perception::table1_network();
  bayesnet::CptLearner learner(truth, 1, 1.0);
  const auto& prior = truth.cpt_rows(0)[0];
  for (std::size_t n = 0; n < budget; ++n) {
    std::size_t gt = 0;
    switch (policy) {
      case Policy::kField:
        gt = prior.sample(rng);
        break;
      case Policy::kUniform:
        gt = n % 3;
        break;
      case Policy::kWidthLed: {
        double widest = -1.0;
        for (std::size_t r = 0; r < 3; ++r) {
          const double w = learner.row_posterior(r).mean_credible_width();
          if (w > widest) {
            widest = w;
            gt = r;
          }
        }
        break;
      }
    }
    const std::size_t out = truth.cpt_row(1, {gt}).sample(rng);
    learner.observe({gt, out});
  }
  return learner;
}

}  // namespace

int main() {
  std::puts("==== ablation: observation allocation in the removal loop ====\n");
  std::puts("mean / worst-row 95% credible width of the learned CPT:\n");
  std::puts("  labels    field            uniform          width-led");
  prob::Rng rng(1234);
  for (const std::size_t budget : {100u, 300u, 1000u, 3000u, 10000u}) {
    std::printf("  %6zu", budget);
    for (const auto policy : {Policy::kField, Policy::kUniform,
                              Policy::kWidthLed}) {
      prob::Rng r = rng.split(budget * 10 + static_cast<std::size_t>(policy));
      const auto learner = run_policy(policy, budget, r);
      double worst = 0.0;
      for (std::size_t row = 0; row < 3; ++row) {
        worst = std::max(worst,
                         learner.row_posterior(row).mean_credible_width());
      }
      std::printf("   %.4f/%.4f", learner.epistemic_width(), worst);
    }
    std::puts("");
  }
  std::puts("\n  -> shape: passive field data leaves the rare `unknown` row");
  std::puts("     far wider than the others (its worst-row width dominates);");
  std::puts("     uniform and width-led allocation close the worst row ~3x");
  std::puts("     faster at the same budget — the removal mean works best");
  std::puts("     when the epistemic analysis steers the data collection,");
  std::puts("     which is precisely why the paper pairs removal with");
  std::puts("     forecasting instead of treating field mileage as free.");
  return 0;
}
