// CPT sensitivity analysis on the Table I network: which parameters the
// safety-relevant queries actually depend on — the triage that tells the
// uncertainty-removal loop where to spend its observations.
#include <cstdio>

#include "bayesnet/sensitivity.hpp"
#include "perception/table1.hpp"

namespace {

const char* gt_state(std::size_t s) {
  const char* names[] = {"car", "pedestrian", "unknown"};
  return names[s];
}
const char* pc_state(std::size_t s) {
  const char* names[] = {"car", "pedestrian", "car/pedestrian", "none"};
  return names[s];
}

}  // namespace

int main() {
  using namespace sysuq;

  std::puts("==== one-way CPT sensitivity of the Table I network ====\n");
  const auto net = perception::table1_network();

  struct Query {
    const char* label;
    bayesnet::VariableId var;
    std::size_t state;
    bayesnet::Evidence evidence;
  };
  const Query queries[] = {
      {"P(perception = none)", 1, perception::kPercNone, {}},
      {"P(gt = unknown | perception = none)", 0, perception::kGtUnknown,
       {{1, perception::kPercNone}}},
      {"P(perception = car)", 1, perception::kPercCar, {}},
  };

  for (const auto& q : queries) {
    std::printf("query: %s — top 5 parameters by |d query / d theta|\n",
                q.label);
    const auto ranking = bayesnet::rank_parameters(net, q.var, q.state, q.evidence);
    for (std::size_t i = 0; i < 5 && i < ranking.size(); ++i) {
      const auto& p = ranking[i];
      if (p.child == 0) {
        std::printf("  %zu. prior P(gt = %s) = %.3f            d = %+7.4f\n",
                    i + 1, gt_state(p.state), p.value, p.derivative);
      } else {
        std::printf("  %zu. P(perc = %s | gt = %s) = %.3f   d = %+7.4f\n",
                    i + 1, pc_state(p.state), gt_state(p.row), p.value,
                    p.derivative);
      }
    }
    std::puts("");
  }

  std::puts("  -> shape: the 'none' diagnosis is dominated by the unknown");
  std::puts("     prior and the unknown row's entries — the two places the");
  std::puts("     paper marks as ontological; elicitation precision on the");
  std::puts("     well-observed car/pedestrian rows matters far less.");
  return 0;
}
