// Batched inference throughput: the InferenceEngine (prebuilt CPT
// factors + cached min-fill orderings + thread pool) against the seed
// baseline, a single-threaded loop over VariableElimination::query.
//
// Workload: the Table I perception network refined into a hierarchical
// chain (as in bench_fig4), queried for P(ground truth | leaf state)
// over a batch of mixed-evidence queries — the access pattern of the
// fusion / diagnosis campaigns in perception/ and fta/.
//
// Emits one machine-readable line:
//   BENCH {"bench":"engine_batch", ...}
// with queries/sec for the seed loop, the 1-thread engine and the
// 4-thread engine, the resulting speedups, the ordering-cache hit rate,
// and whether pooled results were byte-identical to sequential ones.
//
// With `--manifest out.json`, also writes a run manifest: the workload
// parameters plus a full snapshot of the obs metrics registry (so the
// run's bayesnet.engine.* instruments travel with the numbers).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <list>
#include <set>
#include <string>
#include <vector>

#include "bayesnet/engine.hpp"
#include "core/tolerance.hpp"
#include "bayesnet/inference.hpp"
#include "obs/registry.hpp"
#include "perception/table1.hpp"

namespace {

using Clock = std::chrono::steady_clock;

// The seed repository's VariableElimination::query, reproduced verbatim
// as the benchmark baseline: per query it rebuilds every CPT factor and
// rescans all factor scopes per elimination round (O(V^2 * F) set
// unions over a std::list). VariableElimination itself has since been
// rewritten on the incremental interaction graph, so the historical
// algorithm lives here to keep the comparison honest.
class SeedVariableElimination {
 public:
  explicit SeedVariableElimination(const sysuq::bayesnet::BayesianNetwork& net)
      : net_(net) {
    net_.validate();
  }

  sysuq::prob::Categorical query(
      sysuq::bayesnet::VariableId query,
      const sysuq::bayesnet::Evidence& evidence) const {
    using namespace sysuq::bayesnet;
    if (evidence.contains(query)) {
      return sysuq::prob::Categorical::delta(
          evidence.at(query), net_.variable(query).cardinality());
    }
    const Factor f = eliminate_all_but({query}, evidence).normalized();
    return sysuq::prob::Categorical(f.values());
  }

 private:
  sysuq::bayesnet::Factor eliminate_all_but(
      const std::vector<sysuq::bayesnet::VariableId>& keep,
      const sysuq::bayesnet::Evidence& evidence) const {
    using namespace sysuq::bayesnet;
    std::list<Factor> factors;
    for (VariableId v = 0; v < net_.size(); ++v) {
      Factor f = net_.cpt_factor(v);
      for (const auto& [ev, state] : evidence) {
        if (f.contains(ev)) f = f.reduce(ev, state);
      }
      factors.push_back(std::move(f));
    }

    std::set<VariableId> keep_set(keep.begin(), keep.end());
    for (const auto& [ev, _] : evidence) keep_set.insert(ev);

    std::set<VariableId> to_eliminate;
    for (VariableId v = 0; v < net_.size(); ++v) {
      if (!keep_set.contains(v)) to_eliminate.insert(v);
    }

    while (!to_eliminate.empty()) {
      VariableId best = *to_eliminate.begin();
      std::size_t best_size = SIZE_MAX;
      for (VariableId v : to_eliminate) {
        std::set<VariableId> scope;
        for (const auto& f : factors) {
          if (f.contains(v)) scope.insert(f.scope().begin(), f.scope().end());
        }
        if (scope.size() < best_size) {
          best_size = scope.size();
          best = v;
        }
      }

      Factor combined = Factor::unit();
      for (auto it = factors.begin(); it != factors.end();) {
        if (it->contains(best)) {
          combined = combined.product(*it);
          it = factors.erase(it);
        } else {
          ++it;
        }
      }
      if (combined.contains(best)) {
        factors.push_back(combined.marginalize(best));
      } else {
        factors.push_back(std::move(combined));
      }
      to_eliminate.erase(best);
    }

    Factor result = Factor::unit();
    for (const auto& f : factors) result = result.product(f);
    return result;
  }

  const sysuq::bayesnet::BayesianNetwork& net_;
};

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Table I network refined with a chain of noisy 4-state relay stages.
sysuq::bayesnet::BayesianNetwork make_chain(std::size_t stages) {
  using namespace sysuq;
  auto net = perception::table1_network();
  bayesnet::VariableId prev = 1;
  for (std::size_t s = 0; s < stages; ++s) {
    const auto id = net.add_variable("stage" + std::to_string(s),
                                     {"car", "pedestrian", "ambiguous", "none"});
    std::vector<prob::Categorical> rows;
    for (std::size_t in = 0; in < 4; ++in) {
      std::vector<double> row(4, 0.03);
      row[in] = 0.91;
      rows.push_back(prob::Categorical::normalized(std::move(row)));
    }
    net.set_cpt(id, {prev}, std::move(rows));
    prev = id;
  }
  return net;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sysuq;

  std::string manifest_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--manifest" && i + 1 < argc) {
      manifest_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_engine_batch [--manifest out.json]\n");
      return 2;
    }
  }

  std::puts("==== engine batch throughput: InferenceEngine vs seed "
            "VariableElimination loop ====\n");

  // 50 relay stages: large enough that the seed's per-round scope
  // rescans (quadratic in the variable count) dominate its query cost.
  constexpr std::size_t kStages = 50;
  constexpr std::size_t kBatch = 600;
  constexpr int kReps = 3;  // best-of to damp scheduler noise

  const auto net = make_chain(kStages);
  const bayesnet::VariableId leaf = net.size() - 1;

  // Mixed batch: alternate leaf evidence states and query variables, the
  // way a diagnosis sweep or fusion campaign does.
  std::vector<bayesnet::QuerySpec> batch;
  batch.reserve(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    bayesnet::QuerySpec q;
    q.query = (i % 2 == 0) ? 0 : 1;  // ground_truth / perception
    q.evidence = {{leaf, i % 4}};
    batch.push_back(q);
  }

  // --- seed baseline: single-threaded seed VE::query loop ---
  SeedVariableElimination seed_ve(net);
  std::vector<prob::Categorical> ref;
  double seed_s = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    std::vector<prob::Categorical> out;
    out.reserve(kBatch);
    const auto t0 = Clock::now();
    for (const auto& q : batch)
      out.push_back(seed_ve.query(q.query, q.evidence));
    seed_s = std::min(seed_s, seconds_since(t0));
    ref = std::move(out);
  }

  // --- current VariableElimination (rewritten on the same ordering) ---
  bayesnet::VariableElimination ve(net);
  double ve_s = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = Clock::now();
    for (const auto& q : batch) (void)ve.query(q.query, q.evidence);
    ve_s = std::min(ve_s, seconds_since(t0));
  }

  // --- engine, 1 thread ---
  bayesnet::InferenceEngine engine1(net, {.threads = 1});
  std::vector<prob::Categorical> r1;
  double eng1_s = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = Clock::now();
    r1 = engine1.query_batch(batch);
    eng1_s = std::min(eng1_s, seconds_since(t0));
  }

  // --- engine, 4 threads ---
  bayesnet::InferenceEngine engine4(net, {.threads = 4});
  std::vector<prob::Categorical> r4;
  double eng4_s = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = Clock::now();
    r4 = engine4.query_batch(batch);
    eng4_s = std::min(eng4_s, seconds_since(t0));
  }

  // --- all-marginals workload: VE backend vs calibrated junction tree ---
  // One evidence signature, every unobserved variable queried (well past
  // the >= 20-query bar). The VE backend pays one elimination per query;
  // the junction-tree backend pays one calibration and then reads every
  // marginal off the clique beliefs. Engines are rebuilt per rep so each
  // rep pays its own calibration (no cross-rep cache amortization).
  const bayesnet::Evidence am_evidence{{leaf, 2}};
  std::vector<bayesnet::QuerySpec> am_batch;
  for (bayesnet::VariableId q = 0; q < net.size(); ++q) {
    if (!am_evidence.contains(q)) am_batch.push_back({q, am_evidence});
  }
  std::vector<prob::Categorical> am_ve, am_jt;
  double am_ve_s = 1e300;
  double am_jt_s = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    bayesnet::InferenceEngine eng(
        net, {.threads = 1,
              .backend = bayesnet::Backend::kVariableElimination});
    const auto t0 = Clock::now();
    am_ve = eng.query_batch(am_batch);
    am_ve_s = std::min(am_ve_s, seconds_since(t0));
  }
  for (int rep = 0; rep < kReps; ++rep) {
    bayesnet::InferenceEngine eng(
        net, {.threads = 1, .backend = bayesnet::Backend::kJunctionTree});
    const auto t0 = Clock::now();
    am_jt = eng.query_batch(am_batch);
    am_jt_s = std::min(am_jt_s, seconds_since(t0));
  }
  double jt_max_abs = 0.0;
  for (std::size_t i = 0; i < am_batch.size(); ++i) {
    for (std::size_t s = 0; s < am_ve[i].size(); ++s)
      jt_max_abs = std::max(jt_max_abs, std::fabs(am_ve[i].p(s) - am_jt[i].p(s)));
  }
  const double jt_speedup = am_ve_s / am_jt_s;

  // --- correctness: byte-identical across thread counts, exact vs VE ---
  bool byte_identical = r1.size() == r4.size();
  double max_abs_vs_ve = 0.0;
  for (std::size_t i = 0; byte_identical && i < r1.size(); ++i) {
    for (std::size_t s = 0; s < r1[i].size(); ++s) {
      if (r1[i].p(s) != r4[i].p(s)) byte_identical = false;
      max_abs_vs_ve =
          std::max(max_abs_vs_ve, std::fabs(r1[i].p(s) - ref[i].p(s)));
    }
  }

  const double qps_seed = kBatch / seed_s;
  const double qps_ve = kBatch / ve_s;
  const double qps1 = kBatch / eng1_s;
  const double qps4 = kBatch / eng4_s;
  const auto stats = engine4.cache_stats();

  std::printf("network: Table I + %zu relay stages (%zu variables)\n",
              kStages, net.size());
  std::printf("batch:   %zu mixed queries, best of %d reps\n\n", kBatch, kReps);
  std::printf("  %-28s %10.0f queries/s\n", "seed VE::query loop", qps_seed);
  std::printf("  %-28s %10.0f queries/s  (%.2fx)\n",
              "current VE::query loop", qps_ve, qps_ve / qps_seed);
  std::printf("  %-28s %10.0f queries/s  (%.2fx)\n", "engine, 1 thread", qps1,
              qps1 / qps_seed);
  std::printf("  %-28s %10.0f queries/s  (%.2fx)\n", "engine, 4 threads", qps4,
              qps4 / qps_seed);
  std::printf("\nordering cache: %zu entries, %.1f%% hit rate\n",
              stats.entries, 100.0 * stats.hit_rate());
  std::printf("pooled vs sequential posteriors byte-identical: %s\n",
              byte_identical ? "yes" : "NO");
  std::printf("max |engine - VE| over the batch: %.2e\n", max_abs_vs_ve);

  const double am_qps_ve = am_batch.size() / am_ve_s;
  const double am_qps_jt = am_batch.size() / am_jt_s;
  std::printf("\nall-marginals batch (%zu queries, one evidence signature):\n",
              am_batch.size());
  std::printf("  %-28s %10.0f queries/s\n", "VE backend (1 thread)", am_qps_ve);
  std::printf("  %-28s %10.0f queries/s  (%.2fx, needs >= 2x)\n",
              "junction-tree backend", am_qps_jt, jt_speedup);
  std::printf("  max |JT - VE| posterior gap: %.2e\n", jt_max_abs);

  std::printf(
      "BENCH {\"bench\":\"engine_batch\",\"variables\":%zu,\"batch\":%zu,"
      "\"qps_seed\":%.1f,\"qps_ve\":%.1f,\"qps_engine_1t\":%.1f,"
      "\"qps_engine_4t\":%.1f,\"speedup_1t\":%.2f,\"speedup_4t\":%.2f,"
      "\"cache_hit_rate\":%.4f,\"cache_entries\":%zu,\"byte_identical\":%s,"
      "\"max_abs_err\":%.3e,\"allmarg_queries\":%zu,\"qps_allmarg_ve\":%.1f,"
      "\"qps_allmarg_jt\":%.1f,\"jt_speedup\":%.2f,\"jt_max_abs_err\":%.3e}\n",
      net.size(), kBatch, qps_seed, qps_ve, qps1, qps4, qps1 / qps_seed,
      qps4 / qps_seed, stats.hit_rate(), stats.entries,
      byte_identical ? "true" : "false", max_abs_vs_ve, am_batch.size(),
      am_qps_ve, am_qps_jt, jt_speedup, jt_max_abs);

  if (!manifest_path.empty()) {
    // BENCH_engine_batch.json: the tracked perf-trajectory manifest
    // (docs/bench_trajectory.md). Raw qps numbers are machine-specific
    // and recorded for the trajectory; tools/bench_compare.py gates CI
    // on the machine-relative ratios (speedup_1t, speedup_4t,
    // jt_speedup) and the correctness figures only.
    std::ofstream out(manifest_path);
    if (!out) {
      std::fprintf(stderr, "bench_engine_batch: cannot write manifest '%s'\n",
                   manifest_path.c_str());
      return 2;
    }
    char results[1024];
    std::snprintf(
        results, sizeof(results),
        "{\"qps_seed\":%.1f,\"qps_ve\":%.1f,\"qps_engine_1t\":%.1f,"
        "\"qps_engine_4t\":%.1f,\"speedup_1t\":%.2f,\"speedup_4t\":%.2f,"
        "\"qps_allmarg_ve\":%.1f,\"qps_allmarg_jt\":%.1f,\"jt_speedup\":%.2f,"
        "\"byte_identical\":%s,\"max_abs_err\":%.3e,\"jt_max_abs_err\":%.3e,"
        "\"cache_hit_rate\":%.4f,\"cache_entries\":%zu}",
        qps_seed, qps_ve, qps1, qps4, qps1 / qps_seed, qps4 / qps_seed,
        am_qps_ve, am_qps_jt, jt_speedup, byte_identical ? "true" : "false",
        max_abs_vs_ve, jt_max_abs, stats.hit_rate(), stats.entries);
    out << "{\"bench\":\"engine_batch\",\"schema\":1"
        << ",\"workload\":{\"variables\":" << net.size()
        << ",\"batch\":" << kBatch
        << ",\"allmarg_queries\":" << am_batch.size() << ",\"reps\":" << kReps
        << "},\"results\":" << results
        << ",\"metrics\":" << obs::Registry::global().to_json() << "}\n";
    std::printf("manifest written to %s\n", manifest_path.c_str());
  }

  // The junction tree must beat per-query elimination by >= 2x on the
  // all-marginals workload while staying within exact-inference tolerance.
  return byte_identical && max_abs_vs_ve < sysuq::tolerance::kProbSum &&
                 jt_max_abs < sysuq::tolerance::kProbSum && jt_speedup >= 2.0
             ? 0
             : 1;
}
