// Uncertainty-aware ML (paper refs [5], [6]; the tolerance mean): the
// Bayesian feature classifier's exact aleatory/epistemic decomposition
// and its out-of-distribution (ontological) channel.
//
// Measured: epistemic decay with training data, the decomposition on
// in-distribution / boundary / OOD probes, and the safety effect of
// abstention thresholds.
#include <cstdio>

#include "perception/bayes_classifier.hpp"
#include "prob/statistics.hpp"

int main() {
  using namespace sysuq;
  using perception::ClassDistribution;
  using perception::Feature;

  const ClassDistribution kCar{{0.0, 0.0}, 0.5};
  const ClassDistribution kPed{{4.0, 0.0}, 0.5};
  const ClassDistribution kCyc{{0.0, 4.0}, 0.5};
  const ClassDistribution kNovel{{8.0, 8.0}, 0.5};
  const ClassDistribution kAll[] = {kCar, kPed, kCyc};

  prob::Rng rng(606);

  std::puts("==== uncertainty-aware classifier (Bayesian, closed-form) ====\n");

  // ---- epistemic decay ----
  std::puts("(a) posterior mean-uncertainty tau vs training examples:");
  std::puts("      N/class    tau       sigma/sqrt(N)");
  perception::BayesClassifier clf(3, 0.5, 10.0, prob::Categorical::uniform(3));
  std::size_t trained = 0;
  for (const std::size_t target : {2u, 8u, 32u, 128u, 512u}) {
    while (trained < target) {
      for (std::size_t c = 0; c < 3; ++c)
        clf.train(c, perception::sample_feature(kAll[c], rng));
      ++trained;
    }
    std::printf("  %9zu    %.4f     %.4f\n", trained, clf.posterior_tau(0),
                0.5 / std::sqrt(static_cast<double>(trained)));
  }
  std::puts("  -> shape: tau ~ sigma/sqrt(N) — the paper's epistemic decay,");
  std::puts("     now inside the ML component itself.\n");

  // ---- decomposition on three probe types ----
  std::puts("(b) entropy decomposition at three probes (512 samples/class):");
  std::puts("  probe                total     aleatory  epistemic");
  struct Probe {
    const char* name;
    Feature f;
  };
  const Probe probes[] = {
      {"class centre (car)", {0.0, 0.0}},
      {"decision boundary", {2.0, 0.0}},
      {"far OOD (novel)", {8.0, 8.0}},
  };
  for (const auto& p : probes) {
    prob::Rng r(707);
    const auto d = clf.decompose(p.f, 400, r);
    std::printf("  %-20s %.4f    %.4f    %.4f\n", p.name, d.total, d.aleatory,
                d.epistemic);
  }
  std::printf("  OOD scores: centre %.1f, boundary %.1f, novel %.1f\n",
              clf.ood_score({0.0, 0.0}), clf.ood_score({2.0, 0.0}),
              clf.ood_score({8.0, 8.0}));
  std::puts("  -> shape: boundary = aleatory (classes genuinely overlap);");
  std::puts("     OOD is flagged by the Mahalanobis channel, not by entropy");
  std::puts("     alone — the distinction the paper's taxonomy demands.\n");

  // ---- abstention sweep ----
  std::puts("(c) abstention threshold sweep (10% novel objects in stream):");
  std::puts("  ood-thresh   accuracy   hazard    novel-caught");
  for (const double thr : {4.0, 9.0, 16.0, 36.0, 100.0}) {
    std::size_t correct = 0, hazard = 0, novel = 0, caught = 0;
    const std::size_t n = 20000;
    prob::Rng r(808);
    for (std::size_t i = 0; i < n; ++i) {
      const bool is_novel = r.bernoulli(0.10);
      const std::size_t c = is_novel ? 3 : r.uniform_index(3);
      const Feature f = perception::sample_feature(
          is_novel ? kNovel : kAll[c], r);
      const std::size_t label = clf.classify(f, thr, 0.5);
      if (is_novel) {
        ++novel;
        if (label == 3) {
          ++caught;
        } else {
          ++hazard;
        }
      } else if (label == c) {
        ++correct;
      } else if (label != 3) {
        ++hazard;
      }
    }
    std::printf("  %9.1f    %.4f    %.4f    %.3f\n", thr,
                static_cast<double>(correct) / (n - novel),
                static_cast<double>(hazard) / n,
                static_cast<double>(caught) / novel);
  }
  std::puts("\n  -> shape: a tight OOD gate converts ontological exposure into");
  std::puts("     abstentions at negligible accuracy cost; opening it trades");
  std::puts("     availability for hazard — the tolerance mean's dial.");
  return 0;
}
