// bench_analyze — wall-time of the sysuq_analyze parallel scanner.
//
//   bench_analyze [--manifest out.json] [--analyzer PATH] [--jobs N]
//
// Spawns the real analyzer CLI (the binary CMake baked in via
// SYSUQ_ANALYZE_BIN, overridable with --analyzer) over the real tree
// (`src tools bench`), once serial (--jobs 1) and once parallel
// (--jobs N), best-of-kReps each, and checks the two SARIF logs are
// byte-identical — the scanner's fixed-slot fan-out must never change
// output, only wall time. Run from the repository root, the way CI
// runs every bench.
//
// Raw milliseconds are machine-specific trajectory records;
// tools/bench_compare.py gates on the machine-relative speedup and the
// byte_identical flag only (docs/bench_trajectory.md).
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <sys/wait.h>

#ifndef SYSUQ_ANALYZE_BIN
#define SYSUQ_ANALYZE_BIN "build/tools/sysuq_analyze"
#endif

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

constexpr int kReps = 3;  // best-of to damp scheduler noise
const char* const kRoots = "src tools bench";

double seconds_since(const Clock::time_point& t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One timed analyzer invocation via popen: wall seconds, captured
/// stdout+stderr, and the process exit status.
struct Run {
  double seconds = 0.0;
  std::string output;
  int exit_code = -1;
};

Run run_analyzer(const std::string& analyzer, unsigned jobs,
                 const fs::path& sarif_out) {
  Run r;
  std::ostringstream cmd;
  cmd << "'" << analyzer << "' --jobs " << jobs << " --sarif '"
      << sarif_out.string() << "' " << kRoots << " 2>&1";
  const auto t0 = Clock::now();
  std::FILE* pipe = ::popen(cmd.str().c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf;
  std::size_t n = 0;
  while ((n = std::fread(buf.data(), 1, buf.size(), pipe)) > 0)
    r.output.append(buf.data(), n);
  const int status = ::pclose(pipe);
  r.seconds = seconds_since(t0);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

/// Parses "sysuq_analyze: OK (167 files)" for the scanned-file count;
/// 0 when the line is missing (the caller already fails on exit code).
std::size_t parse_file_count(const std::string& output) {
  const std::string tag = "OK (";
  const std::size_t at = output.find(tag);
  if (at == std::string::npos) return 0;
  return static_cast<std::size_t>(
      std::strtoul(output.c_str() + at + tag.size(), nullptr, 10));
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string manifest_path;
  std::string analyzer = SYSUQ_ANALYZE_BIN;
  // At least two worker threads even on a single-core box, so the
  // parallel code path (thread fan-out + shared lex cache) is always
  // the thing being measured and byte-compared.
  unsigned jobs_n =
      std::clamp(std::thread::hardware_concurrency(), 2u, 8u);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--manifest" && i + 1 < argc) {
      manifest_path = argv[++i];
    } else if (arg == "--analyzer" && i + 1 < argc) {
      analyzer = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs_n = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      if (jobs_n < 2) jobs_n = 2;
    } else {
      std::fprintf(stderr,
                   "usage: bench_analyze [--manifest out.json] "
                   "[--analyzer PATH] [--jobs N]\n");
      return 2;
    }
  }

  std::error_code ec;
  if (!fs::exists("src", ec) || !fs::exists("tools", ec)) {
    std::fprintf(stderr,
                 "bench_analyze: run from the repository root "
                 "(scans '%s')\n",
                 kRoots);
    return 2;
  }
  if (!fs::exists(analyzer, ec)) {
    std::fprintf(stderr, "bench_analyze: analyzer binary not found: %s\n",
                 analyzer.c_str());
    return 2;
  }

  std::printf("==== analyzer wall time over '%s': --jobs 1 vs --jobs %u "
              "====\n\n",
              kRoots, jobs_n);

  const fs::path tmp = fs::temp_directory_path();
  const fs::path sarif1 = tmp / "bench_analyze_jobs1.sarif";
  const fs::path sarifN = tmp / "bench_analyze_jobsN.sarif";

  Run best1, bestN;
  best1.seconds = 1e300;
  bestN.seconds = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    Run r1 = run_analyzer(analyzer, 1, sarif1);
    Run rn = run_analyzer(analyzer, jobs_n, sarifN);
    for (const Run* r : {&r1, &rn}) {
      if (r->exit_code != 0) {
        std::fprintf(stderr,
                     "bench_analyze: analyzer exited %d (tree not "
                     "clean?):\n%s",
                     r->exit_code, r->output.c_str());
        return 2;
      }
    }
    if (r1.seconds < best1.seconds) best1 = std::move(r1);
    if (rn.seconds < bestN.seconds) bestN = std::move(rn);
  }

  const std::size_t files = parse_file_count(best1.output);
  const bool byte_identical = slurp(sarif1) == slurp(sarifN);
  const double ms1 = best1.seconds * 1e3;
  const double msN = bestN.seconds * 1e3;
  const double speedup = msN > 0.0 ? ms1 / msN : 0.0;

  std::printf("files scanned       %zu\n", files);
  std::printf("--jobs 1            %8.1f ms (best of %d)\n", ms1, kReps);
  std::printf("--jobs %-2u           %8.1f ms (best of %d)\n", jobs_n, msN,
              kReps);
  std::printf("speedup             %8.2fx\n", speedup);
  std::printf("byte identical      %s\n", byte_identical ? "yes" : "NO");

  fs::remove(sarif1, ec);
  fs::remove(sarifN, ec);

  if (!manifest_path.empty()) {
    // BENCH_analyze.json: the tracked perf-trajectory manifest
    // (docs/bench_trajectory.md). Raw ms are machine-specific and
    // recorded for the trajectory; tools/bench_compare.py gates CI on
    // the machine-relative speedup and byte_identical only.
    std::ofstream out(manifest_path);
    if (!out) {
      std::fprintf(stderr, "bench_analyze: cannot write manifest '%s'\n",
                   manifest_path.c_str());
      return 2;
    }
    char results[512];
    std::snprintf(results, sizeof(results),
                  "{\"files\":%zu,\"ms_jobs1\":%.1f,\"ms_jobsN\":%.1f,"
                  "\"jobs_n\":%u,\"speedup\":%.2f,\"byte_identical\":%s}",
                  files, ms1, msN, jobs_n, speedup,
                  byte_identical ? "true" : "false");
    out << "{\"bench\":\"analyze\",\"schema\":1"
        << ",\"workload\":{\"roots\":\"" << kRoots
        << "\",\"files\":" << files << ",\"reps\":" << kReps
        << "},\"results\":" << results << ",\"metrics\":{}}\n";
    std::printf("manifest written to %s\n", manifest_path.c_str());
  }

  // The parallel scanner must agree with the serial one byte-for-byte;
  // wall-time regressions are gated relative to the committed baseline
  // by tools/bench_compare.py, not here.
  return byte_identical ? 0 : 1;
}
