// E9 — Sec. V: FTA vs the BN approach. "While FTA is quite popular ...
// the failure oriented nature of FTA limits the ability to include human
// factors or nominal performance ... the cause and effect relationship
// between events is deterministic."
//
// Measured: (a) quantitative agreement where both formalisms apply,
// (b) what only the BN can express (diagnosis, non-failure states,
// soft/interval relations), (c) cost scaling of both engines.
#include <chrono>
#include <cstdio>

#include "bayesnet/inference.hpp"
#include "fta/analysis.hpp"
#include "fta/fta_to_bn.hpp"
#include "perception/table1.hpp"
#include "prob/rng.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// A k-channel perception system with shared power and a voter.
sysuq::fta::FaultTree make_tree(std::size_t channels) {
  using namespace sysuq::fta;
  FaultTree t;
  const auto power = t.add_basic_event("power", 0.01);
  std::vector<NodeId> chans;
  for (std::size_t c = 0; c < channels; ++c) {
    const auto cam = t.add_basic_event("cam" + std::to_string(c), 0.05);
    chans.push_back(t.add_gate("ch" + std::to_string(c), GateType::kOr,
                               {power, cam}));
  }
  // Majority of channels must fail: KooN with k = floor(n/2)+1.
  const auto voter = t.add_gate("voter", GateType::kKooN, chans,
                                channels / 2 + 1);
  const auto ecu = t.add_basic_event("ecu", 0.002);
  t.set_top(t.add_gate("top", GateType::kOr, {voter, ecu}));
  return t;
}

}  // namespace

int main() {
  using namespace sysuq;

  std::puts("==== E9: FTA vs Bayesian-network analysis (Sec. V) ====\n");

  // ---- (a) agreement where both apply ----
  std::puts("(a) quantitative agreement, 3-channel system:");
  const auto tree = make_tree(3);
  const double p_fta = fta::exact_top_probability(tree);
  const auto compiled = fta::compile_to_bayesnet(tree);
  bayesnet::VariableElimination ve(compiled.network);
  const double p_bn = ve.query(compiled.top).p(1);
  std::printf("  P(top) FTA exact = %.8f | BN inference = %.8f | diff %.1e\n",
              p_fta, p_bn, std::fabs(p_fta - p_bn));
  const auto cuts = fta::minimal_cut_sets(tree);
  std::printf("  minimal cut sets: %zu (rare-event approx %.8f, MCUB %.8f)\n",
              cuts.size(), fta::rare_event_approximation(tree),
              fta::min_cut_upper_bound(tree));

  // ---- (b) what FTA cannot express ----
  std::puts("\n(b) beyond FTA's deterministic failure logic:");
  // Diagnosis (posterior root-cause ranking).
  const bayesnet::Evidence failed{{compiled.top, 1}};
  std::printf("  diagnosis P(power|top) = %.4f, P(cam0|top) = %.4f, "
              "P(ecu|top) = %.4f\n",
              ve.query(compiled.network.id_of("power"), failed).p(1),
              ve.query(compiled.network.id_of("cam0"), failed).p(1),
              ve.query(compiled.network.id_of("ecu"), failed).p(1));
  // Non-failure (nominal performance) states: the Table I network mixes
  // correct operation, degraded ambiguity, and the unknown state in one
  // model — FTA has no vocabulary for the car/pedestrian state.
  const auto table1 = perception::table1_network();
  bayesnet::VariableElimination tve(table1);
  std::printf("  nominal+degraded states in one model: P(car/pedestrian) = "
              "%.4f (no FTA equivalent)\n",
              tve.query(1).p(perception::kPercCarPedestrian));
  // Probabilistic (uncertain) cause-effect relations: CPT rows are soft,
  // where FTA gates are Boolean.
  std::printf("  soft causality: P(none | gt=car) = %.4f vs Boolean gate 0/1\n",
              table1.cpt_row(1, {perception::kGtCar}).p(perception::kPercNone));

  // ---- (c) scaling ----
  std::puts("\n(c) cost scaling with channel count:");
  std::puts("  channels  cut sets   FTA exact (ms)   BN VE (ms)");
  for (const std::size_t k : {3u, 5u, 7u, 9u, 11u}) {
    const auto t = make_tree(k);
    const auto t0 = Clock::now();
    const double p = fta::exact_top_probability(t);
    const double fta_ms = ms_since(t0);
    const auto c = fta::compile_to_bayesnet(t);
    bayesnet::VariableElimination cve(c.network);
    const auto t1 = Clock::now();
    const double q = cve.query(c.top).p(1);
    const double bn_ms = ms_since(t1);
    std::printf("  %8zu  %8zu   %12.3f   %10.3f   (|diff| %.1e)\n", k,
                fta::minimal_cut_sets(t).size(), fta_ms, bn_ms,
                std::fabs(p - q));
  }
  std::puts("\n  -> shape: identical numbers where both formalisms apply;");
  std::puts("     the BN adds diagnosis, nominal-performance and soft");
  std::puts("     causality at comparable cost — the paper's Sec. V case.");
  return 0;
}
