// E2 — Fig. 2: the modeling relation. One physical system (two-planet
// universe), two formal systems:
//
//   model A (deterministic Newtonian ephemeris): exact for ideal point
//     masses; its residual vs reality grows with the heterogeneity of the
//     real body (epistemic idealization error, Sec. III.B);
//   model B (frequentist occupancy): aleatory by construction, its
//     epistemic estimation error shrinks ~1/sqrt(N) with observations.
#include <cmath>
#include <cstdio>

#include "orbit/two_planet.hpp"
#include "prob/statistics.hpp"

int main() {
  using namespace sysuq;
  prob::Rng rng(20200310);

  std::puts("==== E2: Fig. 2 — deterministic vs probabilistic model of the "
            "same physical system ====\n");

  // ---- model A: residual vs oblateness and horizon ----
  std::puts("model A (point-mass ephemeris) residual |predicted - true|:");
  std::puts("  oblateness      t=2        t=4        t=8");
  for (const double obl : {0.0, 0.001, 0.005, 0.02, 0.05}) {
    orbit::UniverseConfig cfg;
    cfg.oblateness2 = obl;
    orbit::TwoPlanetUniverse u(cfg);
    orbit::DeterministicModel model(cfg.m1, cfg.m2, cfg.separation, cfg.gravity);
    std::printf("  %8.3f  ", obl);
    for (int phase = 0; phase < 3; ++phase) {
      const int steps = phase == 0 ? 2000 : (phase == 1 ? 2000 : 4000);
      for (int i = 0; i < steps; ++i) {
        u.advance(1e-3);
        model.advance(1e-3);
      }
      std::printf("%10.6f ",
                  model.predicted_position(0).distance(
                      u.state().bodies[0].position));
    }
    std::puts("");
  }
  std::puts("  -> shape: residual == integrator noise at 0, grows with the");
  std::puts("     unmodeled heterogeneity and with horizon (epistemic gap).\n");

  // ---- model B: occupancy estimation error vs N ----
  std::puts("model B (frequentist occupancy) epistemic gap vs observations:");
  std::puts("       N     TV(replicas)   sqrt(N)*TV   P(frame [0,0.5]^2)");
  for (const std::size_t n : {100u, 400u, 1600u, 6400u, 25600u, 102400u}) {
    // Average over a few replica pairs to smooth the table.
    prob::RunningStats tv;
    double frame = 0.0;
    for (std::uint64_t rep = 0; rep < 3; ++rep) {
      orbit::UniverseConfig cfg;
      orbit::TwoPlanetUniverse u1(cfg), u2(cfg);
      orbit::FrequentistModel m1(2.0, 10), m2(2.0, 10);
      prob::Rng r1 = rng.split(n * 10 + rep * 2);
      prob::Rng r2 = rng.split(n * 10 + rep * 2 + 1);
      for (std::size_t i = 0; i < n; ++i) {
        // Random inter-observation gaps: the replicas sample the orbit at
        // independent phases, so each histogram is a genuine i.i.d.-style
        // draw from the occupancy law (not a shared trajectory prefix).
        u1.advance(r1.uniform(0.004, 0.020));
        u2.advance(r2.uniform(0.004, 0.020));
        m1.observe(u1.observe_position(0, r1, 0.05));
        m2.observe(u2.observe_position(0, r2, 0.05));
      }
      tv.add(m1.distance(m2));
      frame = m1.frame_probability(0.0, 0.5, 0.0, 0.5);
    }
    std::printf("  %7zu     %8.4f      %7.3f        %.4f\n", n, tv.mean(),
                std::sqrt(static_cast<double>(n)) * tv.mean(), frame);
  }
  std::puts("  -> shape: TV ~ c/sqrt(N) (sqrt(N)*TV roughly flat): the");
  std::puts("     paper's 'epistemic uncertainty decreases with every");
  std::puts("     observation', converging on the aleatory occupancy law.");

  // ---- both models answer different questions about the same system ----
  std::puts("\nthe two formal systems serve different purposes (Sec. II.A):");
  orbit::UniverseConfig cfg;
  orbit::TwoPlanetUniverse u(cfg);
  orbit::DeterministicModel model(cfg.m1, cfg.m2, cfg.separation, cfg.gravity);
  orbit::FrequentistModel occupancy(2.0, 10);
  prob::Rng ro = rng.split(999);
  for (int i = 0; i < 60000; ++i) {
    u.advance(1e-3);
    model.advance(1e-3);
    if (i % 10 == 0) occupancy.observe(u.observe_position(0, ro, 0.02));
  }
  std::printf("  model A answers: position at t=60 -> (%.4f, %.4f)\n",
              model.predicted_position(0).x, model.predicted_position(0).y);
  std::printf("  model B answers: P(planet in upper-right frame) = %.4f\n",
              occupancy.frame_probability(0.0, 2.0, 0.0, 2.0));
  return 0;
}
