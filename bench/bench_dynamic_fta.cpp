// Dynamic-FTA bench (paper ref [33], Dugan et al.): what order-aware
// analysis changes relative to static FTA.
//
// Measured: PAND vs AND unreliability curves (order matters), spare
// dormancy sweep (cold < warm < hot), and compiled CTMC sizes.
#include <cmath>
#include <cstdio>

#include "fta/dynamic.hpp"

int main() {
  using namespace sysuq::fta;

  std::puts("==== dynamic fault trees: order- and state-dependence ====\n");

  // ---- PAND vs AND over time ----
  std::puts("(a) PAND(a, b) vs AND(a, b), lambda_a = 0.9, lambda_b = 0.4:");
  std::puts("      t      F_AND(t)    F_PAND(t)   PAND/AND");
  for (const double t : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    DynamicFaultTree andd;
    const auto a1 = andd.add_basic_event("a", 0.9);
    const auto b1 = andd.add_basic_event("b", 0.4);
    andd.set_top(andd.add_gate("and", DynGateType::kAnd, {a1, b1}));
    DynamicFaultTree pand;
    const auto a2 = pand.add_basic_event("a", 0.9);
    const auto b2 = pand.add_basic_event("b", 0.4);
    pand.set_top(pand.add_gate("pand", DynGateType::kPand, {a2, b2}));
    const double fa = andd.unreliability(t);
    const double fp = pand.unreliability(t);
    std::printf("  %5.1f    %.6f    %.6f    %.3f\n", t, fa, fp, fp / fa);
  }
  std::puts("  -> shape: the PAND fraction converges to P(a before b) =");
  std::puts("     0.9/1.3 = 0.692 — static FTA cannot express the");
  std::puts("     sequence dependence at all.\n");

  // ---- spare dormancy sweep ----
  std::puts("(b) 1-primary/1-spare gate, lambda = 0.7/0.9, t = 1.5:");
  std::puts("  dormancy   F(t)        (0 = cold standby, 1 = hot)");
  for (const double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    DynamicFaultTree d;
    const auto p = d.add_basic_event("primary", 0.7);
    const auto s = d.add_basic_event("spare", 0.9);
    d.set_top(d.add_gate("spare_gate", DynGateType::kSpare, {p, s}, 0, alpha));
    std::printf("  %8.2f   %.6f\n", alpha, d.unreliability(1.5));
  }
  std::puts("  -> shape: monotone in dormancy; cold standby buys the same");
  std::puts("     reliability as the paper's 'diverse uncertainties' row in");
  std::puts("     time rather than in space.\n");

  // ---- state-space growth ----
  std::puts("(c) compiled CTMC states vs basic events (2-channel + spares):");
  std::puts("  events   CTMC states   F(2.0)");
  for (const std::size_t extra : {0u, 2u, 4u, 6u, 8u}) {
    DynamicFaultTree d;
    const auto p = d.add_basic_event("primary", 0.5);
    const auto s = d.add_basic_event("spare", 0.5);
    const auto sp = d.add_gate("sp", DynGateType::kSpare, {p, s}, 0, 0.3);
    std::vector<DynamicFaultTree::NodeId> ors{sp};
    for (std::size_t i = 0; i < extra; ++i) {
      ors.push_back(d.add_basic_event("e" + std::to_string(i), 0.1));
    }
    d.set_top(d.add_gate("top", DynGateType::kOr, std::move(ors)));
    std::printf("  %6zu   %11zu   %.6f\n", 2 + extra, d.compiled_state_count(),
                d.unreliability(2.0));
  }
  std::puts("\n  -> shape: 2^n states — dynamic analysis pays in state space");
  std::puts("     what it gains in expressiveness; exactly why the paper's");
  std::puts("     hierarchical-BN refinement matters for large systems.");
  return 0;
}
