// E6 — Sec. III.B claim: "with each new observation, our distribution
// parameters become more credible ... the epistemic uncertainty
// decreases with every observation."
//
// Measured three ways:
//   1. Beta posterior credible width over a Bernoulli parameter vs N;
//   2. Dirichlet credible width over a CPT row vs N;
//   3. the perception network's full CPT epistemic width via CptLearner.
// All must decay ~1/sqrt(N).
#include <cmath>
#include <cstdio>

#include "bayesnet/learning.hpp"
#include "perception/table1.hpp"
#include "prob/distribution.hpp"

int main() {
  using namespace sysuq;
  prob::Rng rng(1111);

  std::puts("==== E6: epistemic convergence with observations ====\n");

  // ---- Beta posterior over a Bernoulli parameter (p = 0.9) ----
  std::puts("Beta posterior over a classifier accuracy (true p = 0.9):");
  std::puts("        N    mean     95% credible width   sqrt(N)*width");
  prob::Beta post(1.0, 1.0);
  std::size_t n = 0;
  for (const std::size_t target : {10u, 100u, 1000u, 10000u, 100000u}) {
    std::size_t succ = 0, fail = 0;
    while (n < target) {
      (rng.bernoulli(0.9) ? succ : fail) += 1;
      ++n;
    }
    post = post.updated(succ, fail);
    const auto [lo, hi] = post.central_interval(0.05);
    std::printf("  %7zu   %.4f        %.4f            %7.3f\n", n, post.mean(),
                hi - lo, std::sqrt(static_cast<double>(n)) * (hi - lo));
  }

  // ---- Dirichlet over the Table I unknown row ----
  std::puts("\nDirichlet posterior over the Table I 'unknown' CPT row:");
  std::puts("        N    mean credible width   sqrt(N)*width");
  const auto row = perception::table1_unknown_row(
      perception::Table1Repair::kDeficitToNone);
  prob::Dirichlet dir({1.0, 1.0, 1.0, 1.0});
  n = 0;
  for (const std::size_t target : {10u, 100u, 1000u, 10000u, 100000u}) {
    std::vector<std::size_t> counts(4, 0);
    while (n < target) {
      ++counts[row.sample(rng)];
      ++n;
    }
    dir = dir.updated(counts);
    const double w = dir.mean_credible_width();
    std::printf("  %7zu        %.5f           %7.3f\n", n, w,
                std::sqrt(static_cast<double>(n)) * w);
  }

  // ---- full-CPT learner on the Fig. 4 network ----
  std::puts("\nCptLearner over the whole perception CPT (3 rows x 4 states):");
  std::puts("        N    epistemic width   unvisited-row penalty visible?");
  const auto truth = perception::table1_network();
  bayesnet::CptLearner learner(truth, 1, 1.0);
  n = 0;
  for (const std::size_t target : {10u, 100u, 1000u, 10000u, 100000u}) {
    while (n < target) {
      learner.observe(truth.sample(rng));
      ++n;
    }
    // The unknown row is visited ~10x less often than the car row — its
    // Dirichlet stays wider, which the average width reflects.
    const double w = learner.epistemic_width();
    const double unknown_w = learner.row_posterior(2).mean_credible_width();
    const double car_w = learner.row_posterior(0).mean_credible_width();
    std::printf("  %7zu       %.5f        unknown row %.5f vs car row %.5f\n",
                n, w, unknown_w, car_w);
  }
  std::puts("\n  -> shape: every width column decays ~1/sqrt(N); rarely");
  std::puts("     visited rows (the ontologically interesting ones) keep the");
  std::puts("     widest residual epistemic uncertainty — exactly the");
  std::puts("     long-tail problem the paper's Sec. IV highlights.");
  return 0;
}
