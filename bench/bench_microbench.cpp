// Google-benchmark microbenchmarks of the library's hot paths: factor
// products (owning Factor API and the flat strided kernels underneath),
// variable elimination, Dempster combination, fault-tree evaluation and
// credal propagation. Complements the paper-shaped experiment benches
// (E1-E11) with per-operation cost curves.
//
// With `--manifest out.json`, writes BENCH_microbench.json — the
// tracked perf-trajectory manifest (docs/bench_trajectory.md): one
// entry per benchmark (adjusted cpu/real ns per iteration) plus a
// snapshot of the obs metrics registry.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bayesnet/inference.hpp"
#include "bayesnet/kernels.hpp"
#include "obs/registry.hpp"
#include "evidence/credal.hpp"
#include "evidence/mass.hpp"
#include "fta/analysis.hpp"
#include "orbit/nbody.hpp"
#include "markov/hmm.hpp"
#include "perception/table1.hpp"
#include "prob/polychaos.hpp"
#include "prob/rng.hpp"

namespace {

using namespace sysuq;

void BM_FactorProduct(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  prob::Rng rng(1);
  // Two factors sharing one variable, each over `n` binary variables.
  std::vector<bayesnet::VariableId> sa, sb;
  for (std::size_t i = 0; i < n; ++i) sa.push_back(i);
  for (std::size_t i = n - 1; i < 2 * n - 1; ++i) sb.push_back(i);
  std::vector<std::size_t> cards(n, 2);
  std::vector<double> va(std::size_t{1} << n), vb(std::size_t{1} << n);
  for (double& v : va) v = rng.uniform();
  for (double& v : vb) v = rng.uniform();
  const bayesnet::Factor a(sa, cards, va), b(sb, cards, vb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.product(b));
  }
}
BENCHMARK(BM_FactorProduct)->Arg(4)->Arg(8)->Arg(12);

void BM_KernelProductArena(benchmark::State& state) {
  // The same two-factor product as BM_FactorProduct, but through the
  // strided kernel straight into the per-thread bump arena — the cost
  // the inference backends actually pay per elimination round, with no
  // owning-Factor allocation on the result.
  const auto n = static_cast<std::size_t>(state.range(0));
  prob::Rng rng(1);
  std::vector<bayesnet::VariableId> sa, sb;
  for (std::size_t i = 0; i < n; ++i) sa.push_back(i);
  for (std::size_t i = n - 1; i < 2 * n - 1; ++i) sb.push_back(i);
  std::vector<std::size_t> cards(n, 2);
  std::vector<double> va(std::size_t{1} << n), vb(std::size_t{1} << n);
  for (double& v : va) v = rng.uniform();
  for (double& v : vb) v = rng.uniform();
  const bayesnet::Factor a(sa, cards, va), b(sb, cards, vb);
  const auto av = bayesnet::kernels::view_of(a);
  const auto bv = bayesnet::kernels::view_of(b);
  auto& arena = bayesnet::kernels::thread_scratch();
  for (auto _ : state) {
    arena.reset();
    auto t = bayesnet::kernels::product(av, bv, arena);
    benchmark::DoNotOptimize(t.values);
  }
  arena.reset();
}
BENCHMARK(BM_KernelProductArena)->Arg(4)->Arg(8)->Arg(12);

void BM_EliminateScaledChain(benchmark::State& state) {
  // Scaled elimination over a binary chain: the underflow-proof VE path
  // end to end (stride tables, arena intermediates, rescale checks).
  const auto n = static_cast<std::size_t>(state.range(0));
  prob::Rng rng(2);
  std::vector<bayesnet::Factor> factors;
  factors.reserve(n);
  factors.emplace_back(std::vector<bayesnet::VariableId>{0},
                       std::vector<std::size_t>{2},
                       std::vector<double>{0.5, 0.5});
  for (bayesnet::VariableId v = 1; v < n; ++v) {
    std::vector<double> t(4);
    for (double& x : t) x = rng.uniform() + 0.05;
    factors.emplace_back(std::vector<bayesnet::VariableId>{v - 1, v},
                         std::vector<std::size_t>{2, 2}, t);
  }
  std::vector<bayesnet::VariableId> order;
  for (bayesnet::VariableId v = 0; v + 1 < n; ++v) order.push_back(v);
  auto& arena = bayesnet::kernels::thread_scratch();
  for (auto _ : state) {
    arena.reset();
    std::vector<bayesnet::kernels::View> views;
    views.reserve(factors.size());
    for (const auto& f : factors)
      views.push_back(bayesnet::kernels::view_of(f));
    auto sf = bayesnet::kernels::eliminate_scaled(std::move(views), order,
                                                  arena);
    benchmark::DoNotOptimize(sf.log_scale);
    arena.reset();
  }
}
BENCHMARK(BM_EliminateScaledChain)->Arg(32)->Arg(128);

void BM_VariableEliminationTable1(benchmark::State& state) {
  const auto net = perception::table1_network();
  const bayesnet::VariableElimination ve(net);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ve.query(0, {{1, 3}}));
  }
}
BENCHMARK(BM_VariableEliminationTable1);

void BM_LikelihoodWeighting(benchmark::State& state) {
  const auto net = perception::table1_network();
  prob::Rng rng(7);
  const auto samples = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bayesnet::likelihood_weighting(net, 0, {{1, 3}}, samples, rng));
  }
}
BENCHMARK(BM_LikelihoodWeighting)->Arg(1000)->Arg(10000);

void BM_DempsterCombine(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  std::vector<std::string> names;
  for (std::size_t i = 0; i < k; ++i) names.push_back("h" + std::to_string(i));
  const evidence::Frame frame(names);
  prob::Rng rng(3);
  std::map<evidence::FocalSet, double> ma, mb;
  for (int i = 0; i < 8; ++i) {
    ma[1 + rng.uniform_index(frame.theta())] += rng.uniform() + 0.01;
    mb[1 + rng.uniform_index(frame.theta())] += rng.uniform() + 0.01;
  }
  double ta = 0.0, tb = 0.0;
  for (auto& [s, v] : ma) ta += v;
  for (auto& [s, v] : mb) tb += v;
  for (auto& [s, v] : ma) v /= ta;
  for (auto& [s, v] : mb) v /= tb;
  const evidence::MassFunction a(frame, ma), b(frame, mb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evidence::dempster_combine(a, b));
  }
}
BENCHMARK(BM_DempsterCombine)->Arg(4)->Arg(8)->Arg(16);

void BM_FtaExactProbability(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  fta::FaultTree t;
  const auto power = t.add_basic_event("power", 0.01);
  std::vector<fta::NodeId> chans;
  for (std::size_t c = 0; c < channels; ++c) {
    const auto cam = t.add_basic_event("cam" + std::to_string(c), 0.05);
    chans.push_back(
        t.add_gate("ch" + std::to_string(c), fta::GateType::kOr, {power, cam}));
  }
  t.set_top(t.add_gate("voter", fta::GateType::kKooN, chans, channels / 2 + 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fta::exact_top_probability(t));
  }
}
BENCHMARK(BM_FtaExactProbability)->Arg(3)->Arg(7)->Arg(11);

void BM_CredalPosterior(benchmark::State& state) {
  const auto net = perception::table1_network();
  const auto prior =
      evidence::IntervalDistribution::widened(net.cpt_rows(0)[0], 0.03);
  std::vector<evidence::IntervalDistribution> rows;
  for (const auto& r : net.cpt_rows(1))
    rows.push_back(evidence::IntervalDistribution::widened(r, 0.03));
  const evidence::IntervalCpt cpt(rows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evidence::credal_chain_posterior(prior, cpt, 3));
  }
}
BENCHMARK(BM_CredalPosterior);

void BM_NBodyVerletStep(benchmark::State& state) {
  // Not strictly a UQ path, but the ground-truth generator's cost bounds
  // every orbit experiment.
  orbit::GravityParams g{};
  auto s = orbit::make_circular_binary(1.0, 0.5, 1.0, g);
  for (auto _ : state) {
    orbit::verlet_step(s, 1e-3, g);
    benchmark::DoNotOptimize(s.bodies[0].position);
  }
}
BENCHMARK(BM_NBodyVerletStep);

void BM_HmmFilter(benchmark::State& state) {
  const auto net = perception::table1_network();
  const auto& prior = net.cpt_rows(0)[0];
  std::vector<prob::Categorical> trans(3, prior);
  const markov::Hmm hmm(prior, trans, net.cpt_rows(1));
  prob::Rng rng(5);
  const auto tr = hmm.sample(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmm.filter(tr.observations));
  }
}
BENCHMARK(BM_HmmFilter)->Arg(100)->Arg(1000);

void BM_HistogramObserve(benchmark::State& state) {
  // The bucket lookup in obs::Histogram::observe — a branchless binary
  // search over the bound ladder (registry.cpp). Arg = bucket count.
  // The observed values sweep the full ladder in a pseudo-random order
  // so every bucket is hit and the predictor cannot memorize one path,
  // which is exactly the regime the branchless form is for.
  const auto buckets = static_cast<std::size_t>(state.range(0));
  std::vector<double> bounds;
  bounds.reserve(buckets);
  double edge = 1e-6;
  for (std::size_t i = 0; i < buckets; ++i, edge *= 1.7) bounds.push_back(edge);
  obs::Registry registry;
  obs::Histogram& histogram = registry.histogram(
      "bench.microbench.histogram_observe", bounds);
  prob::Rng rng(13);
  std::vector<double> values(4096);
  for (double& v : values)
    v = bounds.back() * 1.1 * rng.uniform();  // ~9% land in the +Inf bucket
  std::size_t i = 0;
  for (auto _ : state) {
    histogram.observe(values[i++ & 4095]);
  }
}
BENCHMARK(BM_HistogramObserve)->Arg(8)->Arg(32)->Arg(128);

void BM_Pce1DProjection(benchmark::State& state) {
  const auto order = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(prob::PolynomialChaos1D(
        prob::PolyBasis::kHermite, order,
        [](double x) { return std::sin(x) + x * x; }, 4));
  }
}
BENCHMARK(BM_Pce1DProjection)->Arg(4)->Arg(8)->Arg(16);

// Console reporter that also records every run for the manifest.
class ManifestReporter : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string name;
    double cpu_ns = 0.0;
    double real_ns = 0.0;
    std::int64_t iterations = 0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.error_occurred) continue;
      entries_.push_back({run.benchmark_name(), run.GetAdjustedCPUTime(),
                          run.GetAdjustedRealTime(), run.iterations});
    }
    ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

}  // namespace

int main(int argc, char** argv) {
  // Peel off --manifest before google-benchmark sees the arguments.
  std::string manifest_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--manifest" && i + 1 < argc) {
      manifest_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  int bargc = static_cast<int>(args.size());
  benchmark::Initialize(&bargc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, args.data())) return 1;

  ManifestReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!manifest_path.empty()) {
    std::ofstream out(manifest_path);
    if (!out) {
      std::fprintf(stderr, "bench_microbench: cannot write manifest '%s'\n",
                   manifest_path.c_str());
      return 2;
    }
    out << "{\"bench\":\"microbench\",\"schema\":1,\"results\":[";
    const char* sep = "";
    for (const auto& e : reporter.entries()) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"name\":\"%s\",\"cpu_ns_per_iter\":%.1f,"
                    "\"real_ns_per_iter\":%.1f,\"iterations\":%lld}",
                    sep, e.name.c_str(), e.cpu_ns, e.real_ns,
                    static_cast<long long>(e.iterations));
      out << buf;
      sep = ",";
    }
    out << "],\"metrics\":" << sysuq::obs::Registry::global().to_json()
        << "}\n";
    std::printf("manifest written to %s\n", manifest_path.c_str());
  }
  return 0;
}
