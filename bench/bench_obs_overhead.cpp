// Observability overhead: the cost of the obs layer on the real
// inference workload must stay within the 2% budget documented in
// DESIGN.md.
//
// ON and OFF builds cannot coexist in one binary, so the A/B uses the
// runtime kill-switch instead: the same instrumented code runs with
// recording enabled vs suspended (`set_metrics_enabled(false)` plus the
// default-disabled trace sink), in alternating reps so both modes see
// the same thermal/scheduler conditions. The disabled path still pays
// one relaxed load + branch per instrument touch, so the measured delta
// is the cost of *recording*, which dominates the layer's overhead.
// Per-primitive nanosecond costs are reported alongside for the
// microscopic view. Under SYSUQ_OBS=OFF every instrument is an inline
// no-op and the A/B trivially measures ~0.
//
// Emits one machine-readable line:
//   BENCH {"bench":"obs_overhead","overhead_pct":...,...}
// and exits nonzero when the measured overhead exceeds 2%.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bayesnet/engine.hpp"
#include "obs/context.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "perception/table1.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Table I network extended with a few relay stages — the instrumented
// engine query path (span + timer + counters + cache mirror) end to end.
sysuq::bayesnet::BayesianNetwork make_workload_network() {
  using namespace sysuq;
  auto net = perception::table1_network();
  bayesnet::VariableId prev = 1;
  for (std::size_t s = 0; s < 8; ++s) {
    const auto id = net.add_variable("stage" + std::to_string(s),
                                     {"car", "pedestrian", "ambiguous", "none"});
    std::vector<prob::Categorical> rows;
    for (std::size_t in = 0; in < 4; ++in) {
      std::vector<double> row(4, 0.03);
      row[in] = 0.91;
      rows.push_back(prob::Categorical::normalized(std::move(row)));
    }
    net.set_cpt(id, {prev}, std::move(rows));
    prev = id;
  }
  return net;
}

double run_queries(const sysuq::bayesnet::InferenceEngine& engine,
                   sysuq::bayesnet::VariableId leaf, std::size_t n) {
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < n; ++i)
    (void)engine.query(i % 2, {{leaf, i % 4}});
  return seconds_since(t0);
}

// The pooled batch path: every dispatch captures the caller's
// TraceContext and re-installs it on the worker (engine.cpp), so this
// also times the cross-thread context propagation added for query-level
// tracing.
double run_batches(const sysuq::bayesnet::InferenceEngine& engine,
                   const std::vector<sysuq::bayesnet::QuerySpec>& batch,
                   std::size_t reps) {
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < reps; ++i) (void)engine.query_batch(batch);
  return seconds_since(t0);
}

// ns/op for one obs primitive, amortized over `iters` calls.
template <typename Fn>
double ns_per_op(std::size_t iters, Fn&& fn) {
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) fn(i);
  return seconds_since(t0) * 1e9 / static_cast<double>(iters);
}

}  // namespace

int main() {
  using namespace sysuq;

  std::puts("==== obs overhead: instrumented engine, recording on vs "
            "suspended ====\n");

  const auto net = make_workload_network();
  const bayesnet::InferenceEngine engine(net, {.threads = 1});
  const bayesnet::VariableId leaf = net.size() - 1;

  // Kernel-backed queries run in single-digit microseconds, so the rep
  // has to be large enough that a scheduler blip cannot swing the A/B
  // by a percent on its own.
  // Kernel-backed queries run in single-digit microseconds, so the
  // recording delta (~tens of ns/query) is far below the multi-ms
  // scheduler/steal bursts of a shared box. The A/B therefore
  // interleaves the two modes in short slices (a burst lands on a few
  // slices, not on one whole mode) with the order flipped every pair,
  // and estimates the overhead as the *median* of the per-pair deltas —
  // the perturbed pairs become discarded outliers, where a best-of-N
  // across modes would compare timings taken seconds apart.
  constexpr std::size_t kQueriesPerSlice = 2000;
  constexpr int kPairs = 45;

  // Warm the ordering cache and the instrument registrations so neither
  // mode pays first-touch costs inside the timed region.
  (void)run_queries(engine, leaf, 16);

  std::vector<double> deltas;
  std::vector<double> off_times;
  deltas.reserve(kPairs);
  off_times.reserve(kPairs);
  for (int pair = 0; pair < kPairs; ++pair) {
    double on_slice;
    double off_slice;
    if (pair % 2 == 0) {
      obs::set_metrics_enabled(false);
      off_slice = run_queries(engine, leaf, kQueriesPerSlice);
      obs::set_metrics_enabled(true);
      on_slice = run_queries(engine, leaf, kQueriesPerSlice);
    } else {
      obs::set_metrics_enabled(true);
      on_slice = run_queries(engine, leaf, kQueriesPerSlice);
      obs::set_metrics_enabled(false);
      off_slice = run_queries(engine, leaf, kQueriesPerSlice);
      obs::set_metrics_enabled(true);
    }
    deltas.push_back(on_slice - off_slice);
    off_times.push_back(off_slice);
  }
  std::sort(deltas.begin(), deltas.end());
  std::sort(off_times.begin(), off_times.end());
  const double median_delta = deltas[deltas.size() / 2];
  const double median_off = off_times[off_times.size() / 2];
  const double off_s = median_off;
  const double on_s = median_off + median_delta;

  const double overhead_pct = std::max(0.0, 100.0 * median_delta / median_off);

  // Same A/B over the pooled batch path, which additionally pays the
  // TraceContext capture per dispatch and one ContextScope install per
  // worker task. The budget is shared: the whole obs layer — recording
  // plus propagation — must stay within 2% of the batch hot path too.
  const bayesnet::InferenceEngine batch_engine(net, {.threads = 4});
  std::vector<bayesnet::QuerySpec> batch;
  constexpr std::size_t kBatchQueries = 256;
  batch.reserve(kBatchQueries);
  for (std::size_t i = 0; i < kBatchQueries; ++i)
    batch.push_back({i % 2, {{leaf, i % 4}}});
  constexpr std::size_t kBatchReps = 6;
  constexpr int kBatchPairs = 31;
  (void)run_batches(batch_engine, batch, 2);  // warm caches + pool
  std::vector<double> batch_deltas;
  std::vector<double> batch_off_times;
  batch_deltas.reserve(kBatchPairs);
  batch_off_times.reserve(kBatchPairs);
  for (int pair = 0; pair < kBatchPairs; ++pair) {
    double on_slice;
    double off_slice;
    if (pair % 2 == 0) {
      obs::set_metrics_enabled(false);
      off_slice = run_batches(batch_engine, batch, kBatchReps);
      obs::set_metrics_enabled(true);
      on_slice = run_batches(batch_engine, batch, kBatchReps);
    } else {
      obs::set_metrics_enabled(true);
      on_slice = run_batches(batch_engine, batch, kBatchReps);
      obs::set_metrics_enabled(false);
      off_slice = run_batches(batch_engine, batch, kBatchReps);
      obs::set_metrics_enabled(true);
    }
    batch_deltas.push_back(on_slice - off_slice);
    batch_off_times.push_back(off_slice);
  }
  std::sort(batch_deltas.begin(), batch_deltas.end());
  std::sort(batch_off_times.begin(), batch_off_times.end());
  const double batch_median_delta = batch_deltas[batch_deltas.size() / 2];
  const double batch_median_off = batch_off_times[batch_off_times.size() / 2];
  const double batch_overhead_pct =
      std::max(0.0, 100.0 * batch_median_delta / batch_median_off);
  const double batch_qps =
      static_cast<double>(kBatchQueries) * kBatchReps / batch_median_off;

  const bool within_budget = overhead_pct <= 2.0 && batch_overhead_pct <= 2.0;

  // Per-primitive costs (recording enabled; the trace sink for the span
  // cost is disabled, which is the library default and the hot-path
  // configuration).
  obs::Registry bench_registry;
  obs::Counter& counter = bench_registry.counter("bench.obs.counter");
  obs::Gauge& gauge = bench_registry.gauge("bench.obs.gauge");
  obs::Histogram& histogram =
      bench_registry.histogram("bench.obs.histogram", obs::seconds_buckets());
  obs::TraceSink disabled_sink(64);

  constexpr std::size_t kOps = 2000000;
  const double counter_ns = ns_per_op(kOps, [&](std::size_t) { counter.inc(); });
  const double gauge_ns =
      ns_per_op(kOps, [&](std::size_t i) { gauge.set(static_cast<double>(i)); });
  const double histogram_ns = ns_per_op(
      kOps, [&](std::size_t i) { histogram.observe(1e-6 * static_cast<double>(i % 1000)); });
  const double span_ns = ns_per_op(kOps, [&](std::size_t) {
    const obs::Span span("bench.obs.span", disabled_sink);
  });
  // One cross-thread handoff's worth of context work: read the caller's
  // context, install it, restore on scope exit (two thread-local copies).
  const double context_ns = ns_per_op(kOps, [&](std::size_t) {
    const obs::TraceContext ctx = obs::current_context();
    const obs::ContextScope scope(ctx);
  });

  std::printf(
      "workload: %d interleaved pairs of %zu queries over %zu variables, "
      "median of per-pair deltas\n\n",
      kPairs, kQueriesPerSlice, net.size());
  std::printf("  %-32s %10.1f queries/s\n", "recording suspended",
              kQueriesPerSlice / off_s);
  std::printf("  %-32s %10.1f queries/s\n", "recording enabled",
              kQueriesPerSlice / on_s);
  std::printf("  overhead: %.2f%% (budget: 2%%)\n\n", overhead_pct);
  std::printf(
      "batch workload: %d interleaved pairs of %zu pooled query_batch "
      "dispatches (%zu queries each, 4 workers, context propagation)\n",
      kBatchPairs, kBatchReps, kBatchQueries);
  std::printf("  %-32s %10.1f queries/s\n", "recording suspended", batch_qps);
  std::printf("  overhead: %.2f%% (budget: 2%%)\n\n", batch_overhead_pct);
  std::printf("verdict: %s\n\n",
              within_budget ? "within budget" : "OVER BUDGET");
  std::printf("per-primitive costs (recording enabled):\n");
  std::printf("  %-32s %8.1f ns\n", "Counter::inc", counter_ns);
  std::printf("  %-32s %8.1f ns\n", "Gauge::set", gauge_ns);
  std::printf("  %-32s %8.1f ns\n", "Histogram::observe", histogram_ns);
  std::printf("  %-32s %8.1f ns\n", "Span (disabled sink)", span_ns);
  std::printf("  %-32s %8.1f ns\n", "ContextScope handoff", context_ns);

  std::printf(
      "BENCH {\"bench\":\"obs_overhead\",\"queries\":%zu,"
      "\"qps_recording_off\":%.1f,\"qps_recording_on\":%.1f,"
      "\"overhead_pct\":%.3f,"
      "\"batch_queries\":%zu,\"batch_qps_recording_off\":%.1f,"
      "\"batch_overhead_pct\":%.3f,\"budget_pct\":2.0,"
      "\"counter_inc_ns\":%.1f,\"gauge_set_ns\":%.1f,"
      "\"histogram_observe_ns\":%.1f,\"span_disabled_ns\":%.1f,"
      "\"context_scope_ns\":%.1f,"
      "\"within_budget\":%s}\n",
      static_cast<std::size_t>(kPairs) * kQueriesPerSlice,
      kQueriesPerSlice / off_s, kQueriesPerSlice / on_s, overhead_pct,
      static_cast<std::size_t>(kBatchPairs) * kBatchReps * kBatchQueries,
      batch_qps, batch_overhead_pct,
      counter_ns, gauge_ns, histogram_ns, span_ns, context_ns,
      within_budget ? "true" : "false");
  return within_budget ? 0 : 1;
}
