// E7 — Sec. III.C: "at some point we observe a behavior of the planets
// that contradicts the prediction by the models due to the influence of a
// third planet."
//
// Measured: detection latency and residual jump vs the hidden planet's
// mass, using the dynamics-level acceleration residual + SurpriseMonitor;
// plus the conditional-entropy surprise factor before/after the event on
// a discretized predicted-vs-observed occupancy joint.
#include <cstdio>
#include <vector>

#include "sys/decomposition.hpp"
#include "orbit/kalman.hpp"
#include "orbit/two_planet.hpp"
#include "prob/information.hpp"
#include "prob/statistics.hpp"

namespace {

using namespace sysuq;

struct Detection {
  bool detected = false;
  double latency_time = 0.0;   // simulation time between injection and alarm
  double residual_jump = 0.0;  // alarm residual / adaptive level
};

// Realistic setting: positions are *observed* through a noisy channel at
// a finite cadence (astrometry), so the dynamics residual has a noise
// floor; a hidden planet is detectable only if its pull rises above it.
Detection run_detection(double mass, double obs_sigma, std::uint64_t seed) {
  orbit::UniverseConfig cfg;
  cfg.third = orbit::UniverseConfig::ThirdPlanet{mass, {1.5, 0.0}, {0.0, 0.6},
                                                 40.0};
  orbit::TwoPlanetUniverse u(cfg);
  orbit::SurpriseMonitor monitor(500, 6.0, 3);
  prob::Rng rng(seed);
  const double dt = 1e-3;
  const std::size_t cadence = 50;  // one observation per 0.05 time units
  std::vector<orbit::Vec2> p0, p1;
  double injected_at = -1.0;
  Detection out;
  for (std::size_t i = 1; i <= 120000; ++i) {
    u.advance(dt);
    if (u.third_planet_present() && injected_at < 0.0) injected_at = u.time();
    if (i % cadence != 0) continue;
    p0.push_back(u.observe_position(0, rng, obs_sigma));
    p1.push_back(u.observe_position(1, rng, obs_sigma));
    const std::size_t k = p0.size();
    if (k < 3) continue;
    const double res = orbit::acceleration_residual(
        p0[k - 3], p0[k - 2], p0[k - 1], dt * cadence, p1[k - 2], cfg.m2, 0.0,
        cfg.gravity);
    if (monitor.feed(res)) {
      out.detected = true;
      out.latency_time = u.time() - injected_at;
      out.residual_jump = res / monitor.level();
      break;
    }
  }
  return out;
}

}  // namespace

int main() {
  std::puts("==== E7: ontological surprise — the hidden third planet ====\n");
  std::puts("detection via anomalous acceleration under noisy astrometry");
  std::puts("(cadence 0.05 t.u., position noise sigma = 1e-6; alarm at 6x");
  std::puts("adaptive level, 3 consecutive; injection at t = 40):\n");
  std::puts("  planet mass   detected   latency (time)   residual jump (x "
            "level)");
  for (const double mass : {0.0005, 0.002, 0.01, 0.02, 0.05, 0.2, 0.5}) {
    const auto d = run_detection(mass, 1e-6, 12345);
    if (d.detected) {
      std::printf("  %10.4f      yes        %8.2f           %10.1f\n", mass,
                  d.latency_time, d.residual_jump);
    } else {
      std::printf("  %10.4f      no             -                  -\n", mass);
    }
  }
  std::puts("\n  -> shape: heavy unmodeled structure is detected within a few");
  std::puts("     observation cadences; featherweight planets hide below the");
  std::puts("     astrometric noise floor — ontological uncertainty is");
  std::puts("     bounded by observability, not by the monitor.\n");

  // ---- conditional-entropy surprise factor before/after ----
  // Discretize the planet's angular position into 8 sectors; the model
  // predicts the next sector from the current one. Before the event the
  // transition is deterministic at this resolution; afterwards the hidden
  // planet scrambles it.
  std::puts("surprise factor H(observed | predicted) on 8-sector occupancy:");
  using namespace sysuq;
  orbit::UniverseConfig cfg;
  cfg.third = orbit::UniverseConfig::ThirdPlanet{0.5, {1.5, 0.0}, {0.0, 0.6},
                                                 30.0};
  orbit::TwoPlanetUniverse u(cfg);
  orbit::DeterministicModel model(cfg.m1, cfg.m2, cfg.separation, cfg.gravity);
  const auto sector = [](orbit::Vec2 p) {
    const double a = std::atan2(p.y, p.x) + M_PI;
    auto s = static_cast<std::size_t>(a / (2.0 * M_PI) * 8.0);
    return std::min<std::size_t>(s, 7);
  };
  for (const char* phase : {"before injection (t<30)", "after injection (t>30)"}) {
    // sysuq-lint-allow(magic-epsilon): Laplace-style smoothing pseudocount
    // seeding the co-occurrence table, not a comparison tolerance.
    std::vector<std::vector<double>> counts(8, std::vector<double>(8, 1e-9));
    for (int i = 0; i < 30000; ++i) {
      u.advance(1e-3);
      model.advance(1e-3);
      counts[sector(model.predicted_position(0))]
            [sector(u.state().bodies[0].position)] += 1.0;
    }
    double total = 0.0;
    for (const auto& row : counts)
      for (double v : row) total += v;
    for (auto& row : counts)
      for (double& v : row) v /= total;
    const prob::JointTable joint(counts);
    std::printf("  %-26s H = %.4f nats (normalized %.4f)\n", phase,
                sys::surprise_factor(joint), sys::normalized_surprise(joint));
  }
  std::puts("\n  -> shape: near-zero conditional entropy while the model is");
  std::puts("     correct; a jump after the unmodeled planet appears — the");
  std::puts("     paper's formal 'surprise factor' separating epistemic from");
  std::puts("     ontological gaps (Sec. III.C).\n");

  // ---- Kalman innovation view of the same event ----
  // Filter the *model-A residual* (observed position minus the two-body
  // ephemeris prediction): under the modeled dynamics this is zero-mean
  // measurement noise, so a constant-velocity filter's normalized
  // innovation squared (NIS, chi-square(2)) sits in its band — until the
  // hidden planet makes the residual accelerate.
  std::puts("Kalman NIS on the model-A residual (cadence 0.05, obs sigma "
            "1e-4):");
  {
    orbit::UniverseConfig kcfg;
    kcfg.third = orbit::UniverseConfig::ThirdPlanet{0.5, {1.5, 0.0}, {0.0, 0.6},
                                                    20.0};
    orbit::TwoPlanetUniverse ku(kcfg);
    orbit::DeterministicModel ephemeris(kcfg.m1, kcfg.m2, kcfg.separation,
                                        kcfg.gravity);
    orbit::KalmanFilter2D kf(1e-6, 1e-4, 1e-6, 1e-6);
    kf.initialize({0, 0}, {0, 0});
    prob::Rng krng(777);
    prob::RunningStats nis_before, nis_after;
    const double dt = 1e-3;
    const std::size_t cadence = 50;
    for (std::size_t i = 1; i <= 40000; ++i) {
      ku.advance(dt);
      ephemeris.advance(dt);
      if (i % cadence != 0) continue;
      kf.predict(dt * cadence);
      const auto obs = ku.observe_position(0, krng, 1e-4);
      const auto residual = obs - ephemeris.predicted_position(0);
      const double nis = kf.update(residual);
      (ku.time() < 20.0 ? nis_before : nis_after).add(nis);
    }
    std::printf("  mean NIS before injection: %8.2f (chi-square(2) mean 2)\n",
                nis_before.mean());
    std::printf("  mean NIS after  injection: %8.2f (max %.0f)\n",
                nis_after.mean(), nis_after.max());
  }
  std::puts("\n  -> shape: with the modeled dynamics subtracted, the residual");
  std::puts("     is in the CV filter's model class and NIS stays in band;");
  std::puts("     the hidden planet makes the residual accelerate and NIS");
  std::puts("     explodes — the same ontological alarm in innovation form.");
  return 0;
}
