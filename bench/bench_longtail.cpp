// The long-tail validation challenge (paper refs [30], [31]): how the
// scenario distribution's tail exponent governs the exposure needed to
// bound ontological uncertainty.
//
// Measured: expected unseen scenario mass vs exposure for several Zipf
// exponents, the exposure needed for a target residual, and the decay of
// the discovery rate (the marginal value of one more test mile).
#include <cstdio>

#include "sys/longtail.hpp"

int main() {
  using namespace sysuq::sys;

  std::puts("==== the long-tail validation challenge ====\n");
  constexpr std::size_t kScenarios = 100000;

  std::puts("(a) expected unseen scenario mass vs exposure (100k ranked "
            "scenario classes):");
  std::printf("  %12s", "exposure N");
  for (const double s : {2.5, 1.5, 1.1, 1.01})
    std::printf("   Zipf(%.2f)", s);
  std::puts("");
  for (const std::size_t n : {100u, 1000u, 10000u, 100000u, 1000000u,
                              10000000u}) {
    std::printf("  %12zu", n);
    for (const double s : {2.5, 1.5, 1.1, 1.01}) {
      std::printf("   %9.5f", expected_missing_mass(zipf_distribution(kScenarios, s), n));
    }
    std::puts("");
  }
  std::puts("  -> shape: light tails validate in thousands of encounters;");
  std::puts("     near-harmonic tails still hide percent-level mass after");
  std::puts("     ten million — Koopman's heavy-tail safety ceiling.\n");

  std::puts("(b) exposure needed for residual unseen mass <= target:");
  std::puts("  target      Zipf(2.5)     Zipf(1.5)     Zipf(1.1)");
  for (const double target : {0.10, 0.05, 0.02, 0.01}) {
    std::printf("  %6.2f", target);
    for (const double s : {2.5, 1.5, 1.1}) {
      const auto n = observations_for_missing_mass(
          zipf_distribution(kScenarios, s), target);
      std::printf("  %12zu", n);
    }
    std::puts("");
  }

  std::puts("\n(c) discovery rate (marginal unseen mass removed by the next");
  std::puts("    encounter), Zipf(1.1):");
  std::puts("      N          rate          encounters per 1e-6 progress");
  const auto z = zipf_distribution(kScenarios, 1.1);
  for (const std::size_t n : {100u, 10000u, 1000000u}) {
    const double r = discovery_rate(z, n);
    std::printf("  %9zu   %.3e     %.0f\n", n, r, 1e-6 / r);
  }
  std::puts("\n  -> shape: the discovery rate collapses with exposure — field");
  std::puts("     observation alone cannot close ontological uncertainty in");
  std::puts("     heavy-tailed domains; the paper's case for combining all");
  std::puts("     four means instead of validating by brute force.");
  return 0;
}
