// E1 — Table I: the perception CPT, its repair policies, and every
// quantitative statement the paper's Sec. V makes about it.
//
// Reproduces: Table I (CPT of P(perception | ground truth)), the Sec. V
// priors (0.6 / 0.3 / 0.1), and the uncertainty-type attribution of each
// CPT region (aleatory prior, epistemic car/pedestrian column,
// ontological unknown row).
#include <cstdio>

#include "bayesnet/inference.hpp"
#include "bayesnet/io.hpp"
#include "sys/decomposition.hpp"
#include "perception/table1.hpp"

namespace {

void print_marginal(const char* tag, const sysuq::prob::Categorical& m) {
  std::printf("%-34s car=%.4f ped=%.4f car/ped=%.4f none=%.4f\n", tag, m.p(0),
              m.p(1), m.p(2), m.p(3));
}

}  // namespace

int main() {
  using namespace sysuq;
  using perception::Table1Repair;

  std::puts("==== E1: Table I perception CPT (paper Sec. V, Fig. 4) ====\n");
  std::puts("published unknown row (0, 0, 0.2, 0.7) sums to 0.9 -> repaired:");

  struct Policy {
    Table1Repair repair;
    const char* name;
  };
  const Policy policies[] = {
      {Table1Repair::kDeficitToNone, "deficit->none  (default)"},
      {Table1Repair::kDeficitToCarPed, "deficit->car/ped"},
      {Table1Repair::kRenormalize, "renormalize"},
  };

  for (const auto& policy : policies) {
    const auto row = perception::table1_unknown_row(policy.repair);
    std::printf("  %-26s (0, 0, %.4f, %.4f)\n", policy.name, row.p(2), row.p(3));
  }

  for (const auto& policy : policies) {
    std::printf("\n---- repair policy: %s ----\n", policy.name);
    const auto net = perception::table1_network(policy.repair);
    bayesnet::VariableElimination ve(net);

    print_marginal("P(perception):", ve.query(1));

    // Diagnosis for every output state.
    const char* outputs[] = {"car", "pedestrian", "car/pedestrian", "none"};
    for (std::size_t o = 0; o < 4; ++o) {
      const auto post = ve.query(0, {{1, o}});
      std::printf("P(gt | perception=%-14s) car=%.4f ped=%.4f unknown=%.4f\n",
                  outputs[o], post.p(0), post.p(1), post.p(2));
    }

    // Uncertainty attribution, as the paper assigns it:
    //  * aleatory  — the world prior (how often each object occurs);
    //  * epistemic — mass routed into the car/pedestrian indicator state;
    //  * ontological — mass explained only by the unknown gt state.
    const auto joint = ve.joint(1, 0);
    const double aleatory = net.cpt_rows(0)[0].entropy();
    const double epistemic_mass = ve.query(1).p(perception::kPercCarPedestrian);
    const double onto_prior = net.cpt_rows(0)[0].p(perception::kGtUnknown);
    const auto none_post = ve.query(0, {{1, perception::kPercNone}});
    std::printf("aleatory prior entropy        : %.4f nats\n", aleatory);
    std::printf("epistemic indicator mass      : %.4f (P(car/pedestrian))\n",
                epistemic_mass);
    std::printf("ontological prior / posterior : %.4f -> %.4f given 'none'\n",
                onto_prior, none_post.p(perception::kGtUnknown));
    std::printf("surprise factor H(gt | perc)  : %.4f nats (normalized %.4f)\n",
                sys::surprise_factor(joint), sys::normalized_surprise(joint));
  }

  std::puts("\npaper-vs-measured: priors and CPT entries match Table I by");
  std::puts("construction; posteriors below are the exact Bayes inversions");
  std::puts("the paper's Sec. V argues qualitatively (unknown dominates the");
  std::puts("'none' diagnosis; car/pedestrian flags epistemic ambiguity).");
  return 0;
}
