// E11 — Sec. V.B: "the number of parameters that need to be elicited in
// the CPT grows exponentially with the number of parent nodes and their
// states ... several techniques to deal with this problem are available
// [37]-[39]."
//
// Measured: elicited-parameter counts full CPT vs noisy-OR vs ranked
// nodes (Fenton et al. [37]); fidelity of the ranked-node compression;
// exact-inference cost versus parent count with the loopy-BP column
// next to it (point gap vs exact, certified bound width, iterations);
// and the treewidth-hostile grid regime where the exact plans blow past
// the engine's feasibility ceiling and only BP keeps answering.
//
// With `--manifest out.json`, also writes a run manifest: the workload
// shape, the results (correctness figures, iteration counts, bound
// widths, raw ms), and the obs metrics registry. Raw ms are
// machine-specific trajectory records; tools/bench_compare.py gates CI
// on the correctness and convergence figures only.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bayesnet/builders.hpp"
#include "bayesnet/engine.hpp"
#include "bayesnet/inference.hpp"
#include "bayesnet/loopy_bp.hpp"
#include "core/tolerance.hpp"
#include "obs/registry.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// w x h binary grid, parents = left and up neighbors; weakly coupled,
// strictly positive CPTs — the same pinned shape the differential suite
// uses for the kAuto escalation check.
sysuq::bayesnet::BayesianNetwork grid_network(std::size_t w, std::size_t h) {
  using namespace sysuq;
  bayesnet::BayesianNetwork net;
  for (std::size_t r = 0; r < h; ++r)
    for (std::size_t c = 0; c < w; ++c)
      net.add_variable("g" + std::to_string(r) + "_" + std::to_string(c),
                       {"0", "1"});
  for (std::size_t r = 0; r < h; ++r) {
    for (std::size_t c = 0; c < w; ++c) {
      const bayesnet::VariableId v = r * w + c;
      std::vector<bayesnet::VariableId> parents;
      if (c > 0) parents.push_back(v - 1);  // left
      if (r > 0) parents.push_back(v - w);  // up
      std::vector<prob::Categorical> cpt;
      const std::size_t rows = std::size_t{1} << parents.size();
      for (std::size_t row = 0; row < rows; ++row) {
        double p1 = 0.35;
        for (std::size_t k = 0; k < parents.size(); ++k)
          if ((row >> k) & 1u) p1 += 0.1;
        cpt.push_back(prob::Categorical({1.0 - p1, p1}));
      }
      net.set_cpt(v, std::move(parents), std::move(cpt));
    }
  }
  return net;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sysuq;

  std::string manifest_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--manifest" && i + 1 < argc) {
      manifest_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_cpt_explosion [--manifest out.json]\n");
      return 2;
    }
  }

  std::puts("==== E11: CPT parameter explosion and its mitigations ====\n");

  // ---- parameter counts ----
  std::puts("(a) elicited parameters for one binary child of n binary "
            "parents:");
  std::puts("  parents    full CPT    noisy-OR    ranked (w, sigma)");
  for (const std::size_t n : {2u, 4u, 6u, 8u, 10u, 12u, 16u, 20u}) {
    const std::size_t full =
        bayesnet::full_cpt_parameter_count(std::vector<std::size_t>(n, 2), 2);
    std::printf("  %7zu  %10zu  %10zu  %12zu\n", n, full, n + 1, n + 1);
  }
  std::puts("  -> shape: 2^n vs n+1 — the exponential elicitation burden the");
  std::puts("     paper flags, removed by structured CPT families.\n");

  // ---- ranked-node fidelity ----
  std::puts("(b) ranked-node compression of a monotone expert CPT "
            "(3 parents x 3 states, 5-state child):");
  const std::vector<std::size_t> cards{3, 3, 3};
  const auto ranked = bayesnet::ranked_node_cpt(cards, {2.0, 1.0, 1.0}, 5, 0.2);
  std::printf("  rows generated: %zu from %zu parameters (vs %zu full)\n",
              ranked.size(), cards.size() + 1,
              bayesnet::full_cpt_parameter_count(cards, 5));
  const auto mean_rank = [](const prob::Categorical& c) {
    double m = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i)
      m += static_cast<double>(i) * c.p(i);
    return m;
  };
  std::printf("  child mean rank sweep: low parents %.2f -> mixed %.2f -> "
              "high parents %.2f (monotone)\n",
              mean_rank(ranked.front()), mean_rank(ranked[ranked.size() / 2]),
              mean_rank(ranked.back()));

  // ---- inference cost vs parent count: exact VE next to loopy BP ----
  std::puts("\n(c) inference for a noisy-OR child of n binary parents — "
            "exact VE vs loopy BP with certified bounds:");
  std::puts("  parents   CPT rows    VE (ms)    BP (ms)   iters"
            "   |BP-VE|     width");
  bool bp_converged = true;
  bool feasible_intervals_contain_exact = true;
  double feasible_max_abs_gap = 0.0;
  double feasible_max_width = 0.0;
  std::size_t feasible_max_iterations = 0;
  double ms_ve_16 = 0.0, ms_bp_16 = 0.0;
  for (const std::size_t n : {4u, 8u, 12u, 16u}) {
    bayesnet::BayesianNetwork net;
    std::vector<bayesnet::VariableId> parents;
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = net.add_variable("p" + std::to_string(i), {"0", "1"});
      net.set_cpt(id, {}, {prob::Categorical({0.9, 0.1})});
      parents.push_back(id);
    }
    const auto child = net.add_variable("child", {"0", "1"});
    net.set_cpt(child, parents,
                bayesnet::noisy_or_cpt(std::vector<double>(n, 0.3), 0.01));

    bayesnet::VariableElimination ve(net);
    const auto t0 = Clock::now();
    const auto exact = ve.query(child);
    const double ve_ms = ms_since(t0);

    const auto t1 = Clock::now();
    const bayesnet::LoopyBP bp(net, {});
    const double bp_ms = ms_since(t1);
    const auto& bounded = bp.query(child);

    double gap = 0.0;
    for (std::size_t s = 0; s < exact.size(); ++s)
      gap = std::max(gap, std::abs(bounded.point.p(s) - exact.p(s)));
    bp_converged = bp_converged && bp.converged();
    feasible_intervals_contain_exact =
        feasible_intervals_contain_exact && bounded.contains(exact.probs());
    feasible_max_abs_gap = std::max(feasible_max_abs_gap, gap);
    feasible_max_width = std::max(feasible_max_width, bounded.width());
    feasible_max_iterations =
        std::max(feasible_max_iterations, bp.iterations());
    if (n == 16u) {
      ms_ve_16 = ve_ms;
      ms_bp_16 = bp_ms;
    }
    std::printf("  %7zu  %9zu  %9.3f  %9.3f  %6zu  %.2e  %.2e\n", n,
                std::size_t{1} << n, ve_ms, bp_ms, bp.iterations(), gap,
                bounded.width());
  }
  std::puts("  -> BP's per-iteration cost is linear in the total CPT size;");
  std::puts("     its certified interval brackets the exact posterior, so");
  std::puts("     the approximation error is visible, not assumed.\n");

  // ---- the regime exact inference cannot enter ----
  constexpr std::size_t kGridSide = 20;
  std::printf("(d) %zux%zu binary grid (%zu variables): the min-fill plan's\n",
              kGridSide, kGridSide, kGridSide * kGridSide);
  std::puts("    largest table is exponential in the grid side, so kAuto");
  std::puts("    escalates past the exact backends to BP:");
  const auto grid = grid_network(kGridSide, kGridSide);
  bayesnet::InferenceEngine engine(
      grid, {.threads = 2,
             .backend = bayesnet::Backend::kAuto,
             .max_exact_table_cells = std::size_t{1} << 20});
  const auto t2 = Clock::now();
  const auto grid_marginals = engine.all_marginals_bounded({});
  const double grid_ms = ms_since(t2);
  const auto grid_profile =
      engine.explain(kGridSide * kGridSide / 2 + kGridSide / 2, {});
  bool grid_converged = true;
  double grid_max_width = 0.0;
  for (const auto& b : grid_marginals) {
    grid_converged = grid_converged && b.converged;
    grid_max_width = std::max(grid_max_width, b.width());
  }
  std::printf("    backend: %s (%s)\n", grid_profile.backend.c_str(),
              grid_profile.bp_converged ? "converged" : "iteration cap");
  std::printf("    all %zu bounded marginals in %.1f ms, %zu iterations, "
              "max certified width %.3f\n",
              grid_marginals.size(), grid_ms, grid_profile.bp_iterations,
              grid_max_width);

  std::printf(
      "\nBENCH {\"bench\":\"cpt_explosion\",\"bp_converged\":%s,"
      "\"feasible_intervals_contain_exact\":%s,\"feasible_max_abs_gap\":%.3e,"
      "\"feasible_max_width\":%.3e,\"feasible_max_iterations\":%zu,"
      "\"grid_converged\":%s,\"grid_iterations\":%zu,"
      "\"grid_max_bound_width\":%.4f,\"ms_ve_16\":%.3f,\"ms_bp_16\":%.3f,"
      "\"ms_grid\":%.1f}\n",
      bp_converged ? "true" : "false",
      feasible_intervals_contain_exact ? "true" : "false",
      feasible_max_abs_gap, feasible_max_width, feasible_max_iterations,
      grid_converged ? "true" : "false", grid_profile.bp_iterations,
      grid_max_width, ms_ve_16, ms_bp_16, grid_ms);

  if (!manifest_path.empty()) {
    // BENCH_cpt_explosion.json: tracked manifest (docs/bench_trajectory.md).
    std::ofstream out(manifest_path);
    if (!out) {
      std::fprintf(stderr, "bench_cpt_explosion: cannot write manifest '%s'\n",
                   manifest_path.c_str());
      return 2;
    }
    char results[768];
    std::snprintf(
        results, sizeof(results),
        "{\"bp_converged\":%s,\"feasible_intervals_contain_exact\":%s,"
        "\"feasible_max_abs_gap\":%.3e,\"feasible_max_width\":%.3e,"
        "\"feasible_max_iterations\":%zu,\"grid_converged\":%s,"
        "\"grid_iterations\":%zu,\"grid_max_bound_width\":%.4f,"
        "\"ms_ve_16\":%.3f,\"ms_bp_16\":%.3f,\"ms_grid\":%.1f}",
        bp_converged ? "true" : "false",
        feasible_intervals_contain_exact ? "true" : "false",
        feasible_max_abs_gap, feasible_max_width, feasible_max_iterations,
        grid_converged ? "true" : "false", grid_profile.bp_iterations,
        grid_max_width, ms_ve_16, ms_bp_16, grid_ms);
    out << "{\"bench\":\"cpt_explosion\",\"schema\":1"
        << ",\"workload\":{\"noisy_or_parents\":[4,8,12,16]"
        << ",\"grid_side\":" << kGridSide
        << ",\"grid_variables\":" << kGridSide * kGridSide << "}"
        << ",\"results\":" << results
        << ",\"metrics\":" << obs::Registry::global().to_json() << "}\n";
    std::printf("manifest written to %s\n", manifest_path.c_str());
  }

  // Exit gate: BP must converge everywhere it ran, and on the feasible
  // workloads its certified interval must bracket the exact posterior
  // with a small point gap (noisy-OR of independent parents is nearly
  // tree-like, so BP is near-exact there).
  return bp_converged && grid_converged &&
                 feasible_intervals_contain_exact &&
                 feasible_max_abs_gap <= 0.05
             ? 0
             : 1;
}
