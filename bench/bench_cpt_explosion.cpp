// E11 — Sec. V.B: "the number of parameters that need to be elicited in
// the CPT grows exponentially with the number of parent nodes and their
// states ... several techniques to deal with this problem are available
// [37]-[39]."
//
// Measured: elicited-parameter counts full CPT vs noisy-OR vs ranked
// nodes (Fenton et al. [37]); fidelity of the ranked-node compression;
// and exact-inference cost versus parent count.
#include <chrono>
#include <cstdio>

#include "bayesnet/builders.hpp"
#include "bayesnet/inference.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  using namespace sysuq;

  std::puts("==== E11: CPT parameter explosion and its mitigations ====\n");

  // ---- parameter counts ----
  std::puts("(a) elicited parameters for one binary child of n binary "
            "parents:");
  std::puts("  parents    full CPT    noisy-OR    ranked (w, sigma)");
  for (const std::size_t n : {2u, 4u, 6u, 8u, 10u, 12u, 16u, 20u}) {
    const std::size_t full =
        bayesnet::full_cpt_parameter_count(std::vector<std::size_t>(n, 2), 2);
    std::printf("  %7zu  %10zu  %10zu  %12zu\n", n, full, n + 1, n + 1);
  }
  std::puts("  -> shape: 2^n vs n+1 — the exponential elicitation burden the");
  std::puts("     paper flags, removed by structured CPT families.\n");

  // ---- ranked-node fidelity ----
  std::puts("(b) ranked-node compression of a monotone expert CPT "
            "(3 parents x 3 states, 5-state child):");
  const std::vector<std::size_t> cards{3, 3, 3};
  const auto ranked = bayesnet::ranked_node_cpt(cards, {2.0, 1.0, 1.0}, 5, 0.2);
  std::printf("  rows generated: %zu from %zu parameters (vs %zu full)\n",
              ranked.size(), cards.size() + 1,
              bayesnet::full_cpt_parameter_count(cards, 5));
  const auto mean_rank = [](const prob::Categorical& c) {
    double m = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i)
      m += static_cast<double>(i) * c.p(i);
    return m;
  };
  std::printf("  child mean rank sweep: low parents %.2f -> mixed %.2f -> "
              "high parents %.2f (monotone)\n",
              mean_rank(ranked.front()), mean_rank(ranked[ranked.size() / 2]),
              mean_rank(ranked.back()));

  // ---- inference cost vs parent count ----
  std::puts("\n(c) exact VE cost for a noisy-OR child of n binary parents:");
  std::puts("  parents   CPT rows    VE query (ms)");
  for (const std::size_t n : {4u, 8u, 12u, 16u}) {
    bayesnet::BayesianNetwork net;
    std::vector<bayesnet::VariableId> parents;
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = net.add_variable("p" + std::to_string(i), {"0", "1"});
      net.set_cpt(id, {}, {prob::Categorical({0.9, 0.1})});
      parents.push_back(id);
    }
    const auto child = net.add_variable("child", {"0", "1"});
    net.set_cpt(child, parents,
                bayesnet::noisy_or_cpt(std::vector<double>(n, 0.3), 0.01));
    bayesnet::VariableElimination ve(net);
    const auto t0 = Clock::now();
    const auto q = ve.query(child);
    const double ms = ms_since(t0);
    std::printf("  %7zu  %9zu   %12.3f   (P(child=1) = %.4f)\n", n,
                std::size_t{1} << n, ms, q.p(1));
  }
  std::puts("\n  -> shape: the CPT table itself is the bottleneck (2^n rows);");
  std::puts("     with structured families the elicitation is linear while");
  std::puts("     the numerics remain exact.");
  return 0;
}
