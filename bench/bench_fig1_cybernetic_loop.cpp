// E5 — Fig. 1: the cybernetic development loop and the good-regulator
// theorem ("every good regulator of a system must be a model of that
// system", Conant & Ashby).
//
// The development organization regulates a deployed perception system by
// observing it in the field, refining its codified model, and re-deriving
// its operating policy. Measured: model gap vs regulation regret — the
// theorem predicts they fall together.
#include <cstdio>

#include "sys/cybernetic.hpp"
#include "prob/statistics.hpp"

int main() {
  using namespace sysuq;

  std::puts("==== E5: Fig. 1 — cybernetic development loop ====\n");
  // A harder regulation problem than the 2-class demo: four modeled
  // classes, a mediocre sensor, and cheap abstention — the optimal policy
  // depends on fine CPT detail, so model fidelity matters for longer.
  perception::WorldModel modeled({"car", "pedestrian", "cyclist", "truck"},
                                 {0.45, 0.25, 0.2, 0.1});
  const perception::TrueWorld world(modeled, {"unknown_object"}, 0.05);
  const auto sensor = perception::ConfusionSensor::make_default(4, 1, 0.65, 0.8);
  const sys::DecisionCosts costs{1.0, 0.15, 0.0};

  std::puts("observations  model gap (TV)  actual cost  oracle cost   regret");
  sys::CyberneticLoop loop(world, sensor, costs);
  prob::Rng rng(20200311);
  const auto trace =
      loop.run({10, 30, 100, 300, 1000, 3000, 10000, 30000, 100000}, rng);
  std::vector<double> gaps, regrets;
  for (const auto& cp : trace) {
    std::printf("%12zu      %8.4f      %8.4f     %8.4f   %8.4f\n",
                cp.observations, cp.model_gap, cp.actual_cost, cp.oracle_cost,
                cp.regret);
    gaps.push_back(cp.model_gap);
    regrets.push_back(cp.regret);
  }

  // Correlation between model fidelity and regulation quality across the
  // trace — the quantitative form of the good-regulator theorem.
  try {
    const double corr = prob::pearson_correlation(gaps, regrets);
    std::printf("\ncorr(model gap, regret) over the trace: %+.3f\n", corr);
  } catch (const std::exception&) {
    std::puts("\ncorr(model gap, regret): undefined (degenerate trace)");
  }
  std::puts("  -> shape: regret decays as the model gap closes; a regulator");
  std::puts("     is only as good as its model of the controlled system.");
  return 0;
}
