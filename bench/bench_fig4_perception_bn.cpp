// E4 — Fig. 4: the perception Bayesian network end to end, plus the
// paper's scalability discussion ("can be scaled up to model the complete
// system and allows hierarchical refinement").
//
// Measures: agreement of the four inference engines on the Fig. 4
// network, their wall-clock cost, and exact-inference scaling as the
// chain is refined hierarchically (gt -> sensor -> tracker -> planner...).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bayesnet/inference.hpp"
#include "perception/table1.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// Hierarchical refinement: a chain gt -> n1 -> n2 -> ... -> nk, each stage
// a 4-state noisy relay of its predecessor.
sysuq::bayesnet::BayesianNetwork make_chain(std::size_t stages) {
  using namespace sysuq;
  auto net = perception::table1_network();
  bayesnet::VariableId prev = 1;
  for (std::size_t s = 0; s < stages; ++s) {
    const auto id = net.add_variable("stage" + std::to_string(s),
                                     {"car", "pedestrian", "ambiguous", "none"});
    std::vector<prob::Categorical> rows;
    for (std::size_t in = 0; in < 4; ++in) {
      std::vector<double> row(4, 0.03);
      row[in] = 0.91;
      rows.push_back(prob::Categorical::normalized(std::move(row)));
    }
    net.set_cpt(id, {prev}, std::move(rows));
    prev = id;
  }
  return net;
}

}  // namespace

int main() {
  using namespace sysuq;

  std::puts("==== E4: Fig. 4 — the perception BN under four inference "
            "engines ====\n");
  const auto net = perception::table1_network();
  bayesnet::VariableElimination ve(net);
  const bayesnet::Evidence none_evidence{{1, perception::kPercNone}};

  prob::Rng rng(99);
  const auto t_ve = Clock::now();
  const auto exact = ve.query(0, none_evidence);
  const double ve_ms = ms_since(t_ve);

  const auto t_en = Clock::now();
  const auto enumd = bayesnet::enumerate_posterior(net, 0, none_evidence);
  const double en_ms = ms_since(t_en);

  const auto t_lw = Clock::now();
  const auto lw = bayesnet::likelihood_weighting(net, 0, none_evidence, 100000, rng);
  const double lw_ms = ms_since(t_lw);

  const auto t_rs = Clock::now();
  std::size_t accepted = 0;
  const auto rs =
      bayesnet::rejection_sampling(net, 0, none_evidence, 100000, rng, &accepted);
  const double rs_ms = ms_since(t_rs);

  std::puts("P(ground truth | perception = none):");
  std::printf("  %-22s car=%.4f ped=%.4f unknown=%.4f   (%.3f ms)\n",
              "variable elimination", exact.p(0), exact.p(1), exact.p(2), ve_ms);
  std::printf("  %-22s car=%.4f ped=%.4f unknown=%.4f   (%.3f ms)\n",
              "enumeration oracle", enumd.p(0), enumd.p(1), enumd.p(2), en_ms);
  std::printf("  %-22s car=%.4f ped=%.4f unknown=%.4f   (%.3f ms, 100k)\n",
              "likelihood weighting", lw.p(0), lw.p(1), lw.p(2), lw_ms);
  std::printf("  %-22s car=%.4f ped=%.4f unknown=%.4f   (%.3f ms, %zu acc)\n",
              "rejection sampling", rs.p(0), rs.p(1), rs.p(2), rs_ms, accepted);

  std::printf("\nmax |VE - enumeration| = %.2e (exact engines agree)\n",
              std::max({std::fabs(exact.p(0) - enumd.p(0)),
                        std::fabs(exact.p(1) - enumd.p(1)),
                        std::fabs(exact.p(2) - enumd.p(2))}));

  // ---- hierarchical refinement scaling ----
  std::puts("\nhierarchical refinement: chain gt -> perc -> stage1 -> ... ");
  std::puts("  stages  parameters  VE query (ms)  enumeration (ms)");
  for (const std::size_t stages : {0u, 2u, 4u, 6u, 8u, 10u}) {
    const auto chain = make_chain(stages);
    bayesnet::VariableElimination cve(chain);
    const bayesnet::VariableId leaf = chain.size() - 1;

    const auto t0 = Clock::now();
    const auto q = cve.query(0, {{leaf, 3}});
    const double tve = ms_since(t0);

    double ten = -1.0;
    if (stages <= 6) {  // enumeration is 4^k — cap it
      const auto t1 = Clock::now();
      (void)bayesnet::enumerate_posterior(chain, 0, {{leaf, 3}});
      ten = ms_since(t1);
    }
    std::printf("  %6zu  %10zu  %12.3f  ", stages, chain.parameter_count(), tve);
    if (ten >= 0.0) {
      std::printf("%14.3f\n", ten);
    } else {
      std::puts("        (skipped)");
    }
    (void)q;
  }
  std::puts("\n  -> shape: VE stays linear in chain length while enumeration");
  std::puts("     blows up exponentially — the refinement the paper promises");
  std::puts("     is tractable with proper inference.");
  return 0;
}
