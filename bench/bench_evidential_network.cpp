// E10 — Sec. V.B: "an analysis method based on evidence theory in
// combination with Bayesian networks" (Simon, Weber & Evsukoff).
//
// Measured: belief/plausibility envelopes on the Table I outputs as the
// CPT elicitation imprecision grows; the powerset-state (Simon et al.)
// construction with explicit ignorance mass; and the combination-rule
// ablation (Dempster vs Yager vs Dubois-Prade) under sensor conflict.
#include <cstdio>

#include "bayesnet/inference.hpp"
#include "evidence/credal.hpp"
#include "evidence/evidential_network.hpp"
#include "perception/table1.hpp"

int main() {
  using namespace sysuq;

  std::puts("==== E10: evidential networks (Sec. V.B) ====\n");

  // ---- interval CPTs -> belief/plausibility envelopes ----
  const auto net = perception::table1_network();
  std::puts("(a) output envelopes vs CPT elicitation imprecision eps:");
  std::puts("  eps    P(car)              P(none)             P(unknown|none)");
  for (const double eps : {0.0, 0.01, 0.03, 0.06, 0.10}) {
    const auto prior =
        evidence::IntervalDistribution::widened(net.cpt_rows(0)[0], eps);
    std::vector<evidence::IntervalDistribution> rows;
    for (const auto& r : net.cpt_rows(1))
      rows.push_back(evidence::IntervalDistribution::widened(r, eps));
    const evidence::IntervalCpt cpt(rows);
    const auto marg = evidence::credal_chain_marginal(prior, cpt);
    const auto post = evidence::credal_chain_posterior(prior, cpt, 3);
    std::printf("  %.2f   [%.4f, %.4f]    [%.4f, %.4f]    [%.4f, %.4f]\n", eps,
                marg.bound(0).lo(), marg.bound(0).hi(), marg.bound(3).lo(),
                marg.bound(3).hi(), post.bound(2).lo(), post.bound(2).hi());
  }
  std::puts("  -> shape: eps=0 reproduces exact BN numbers; envelopes widen");
  std::puts("     monotonically — epistemic CPT imprecision surfaces as");
  std::puts("     belief/plausibility gaps instead of false precision.\n");

  // ---- Simon et al. powerset construction with ignorance mass ----
  std::puts("(b) powerset-state network with explicit ignorance:");
  evidence::Frame frame({"car", "pedestrian", "unknown"});
  std::puts("  ignorance  Bel(car)  Pl(car)   Bel({car,ped})  Pl({car,ped})");
  for (const double ig : {0.0, 0.05, 0.15, 0.30}) {
    bayesnet::BayesianNetwork ds_net;
    const auto gt = ds_net.add_variable(
        evidence::powerset_variable("gt_ds", frame));
    const evidence::MassFunction prior(
        frame, {{frame.singleton("car"), 0.6 * (1.0 - ig)},
                {frame.singleton("pedestrian"), 0.3 * (1.0 - ig)},
                {frame.singleton("unknown"), 0.1 * (1.0 - ig)},
                {frame.theta(), ig}});
    ds_net.set_cpt(gt, {}, {evidence::mass_to_categorical(prior)});
    bayesnet::VariableElimination ve(ds_net);
    const auto marg = ve.query(gt);
    const auto car = evidence::belief_plausibility(frame, marg,
                                                   frame.singleton("car"));
    const auto cp = evidence::belief_plausibility(
        frame, marg, frame.make_set({"car", "pedestrian"}));
    std::printf("  %9.2f  %.4f    %.4f       %.4f         %.4f\n", ig,
                car.lo(), car.hi(), cp.lo(), cp.hi());
  }
  std::puts("  -> shape: Bel stays at the discounted prior while Pl absorbs");
  std::puts("     the ignorance mass — the [Bel, Pl] interval is the paper's");
  std::puts("     quantitative handle on acknowledged ontological doubt.\n");

  // ---- combination-rule ablation under conflict ----
  std::puts("(c) two conflicting sensors (one says car, one pedestrian, both "
            "90% committed):");
  const auto m1 = evidence::MassFunction(
      frame, {{frame.singleton("car"), 0.9}, {frame.theta(), 0.1}});
  const auto m2 = evidence::MassFunction(
      frame, {{frame.singleton("pedestrian"), 0.9}, {frame.theta(), 0.1}});
  std::printf("  conflict K = %.4f\n", m1.conflict(m2));
  const auto dem = evidence::dempster_combine(m1, m2);
  const auto yag = evidence::yager_combine(m1, m2);
  const auto dp = evidence::dubois_prade_combine(m1, m2);
  std::puts("  rule          m(car)   m(ped)   m({car,ped})  m(Theta)  "
            "nonspecificity");
  const auto print_rule = [&](const char* name,
                              const evidence::MassFunction& m) {
    std::printf("  %-12s  %.4f   %.4f     %.4f      %.4f      %.4f\n", name,
                m.mass(frame.singleton("car")),
                m.mass(frame.singleton("pedestrian")),
                m.mass(frame.make_set({"car", "pedestrian"})),
                m.mass(frame.theta()), m.nonspecificity());
  };
  print_rule("dempster", dem);
  print_rule("yager", yag);
  print_rule("dubois-prade", dp);
  std::puts("\n  -> shape: Dempster renormalizes the conflict away (sharp but");
  std::puts("     overconfident); Yager parks it on total ignorance;");
  std::puts("     Dubois-Prade keeps it on {car, pedestrian} — exactly the");
  std::puts("     epistemic indicator state Table I reserves for this case.");
  return 0;
}
