// Differential tests (label: differential): the junction-tree backend is
// checked against VariableElimination over hundreds of generated
// network/evidence pairs, loopy BP's certified intervals must contain
// the exact posteriors on the same pairs with its points tracking
// VE==JT inside a topology-banded tolerance, likelihood weighting
// agrees within sampling tolerance, every backend throws the identical
// impossible-evidence message, and the Table I perception figures are
// pinned to hard-coded golden values under both exact backends. A
// pinned treewidth-hostile grid checks that Backend::kAuto escalates
// to BP and keeps answering where the exact plans are infeasible.
//
// The generator is seeded from SYSUQ_DIFFERENTIAL_SEED (decimal) so CI
// can sweep several fixed seeds; unset, it uses a fixed default.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <memory>

#include "bayesnet/engine.hpp"
#include "bayesnet/inference.hpp"
#include "bayesnet/junction_tree.hpp"
#include "bayesnet/loopy_bp.hpp"
#include "sys/decomposition.hpp"
#include "core/tolerance.hpp"
#include "perception/table1.hpp"
#include "prob/rng.hpp"

namespace tol = sysuq::tolerance;

namespace bn = sysuq::bayesnet;
namespace pr = sysuq::prob;

namespace {

std::uint64_t differential_seed() {
  if (const char* env = std::getenv("SYSUQ_DIFFERENTIAL_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20260805ULL;
}

enum class Topology { kChain, kTree, kDense };

// Random network with 2-6 states per variable and a topology-controlled
// parent structure. All CPT entries are strictly positive, so every
// evidence assignment has P(e) > 0 (impossible evidence is exercised by
// dedicated networks below).
bn::BayesianNetwork random_network(pr::Rng& rng, Topology topo,
                                   std::size_t n) {
  bn::BayesianNetwork net;
  std::vector<std::size_t> cards;
  cards.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t card = 2 + rng.uniform_index(5);  // 2..6 states
    cards.push_back(card);
    std::vector<std::string> states;
    states.reserve(card);
    for (std::size_t s = 0; s < card; ++s)
      states.push_back("s" + std::to_string(s));
    net.add_variable("v" + std::to_string(i), std::move(states));
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<bn::VariableId> parents;
    switch (topo) {
      case Topology::kChain:
        if (i > 0) parents.push_back(i - 1);
        break;
      case Topology::kTree:
        if (i > 0) parents.push_back(rng.uniform_index(i));
        break;
      case Topology::kDense:
        for (std::size_t j = 0; j < i && parents.size() < 3; ++j) {
          if (rng.bernoulli(0.5)) parents.push_back(j);
        }
        break;
    }
    std::size_t rows = 1;
    for (const auto p : parents) rows *= cards[p];
    std::vector<pr::Categorical> cpt;
    cpt.reserve(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      std::vector<double> w(cards[i]);
      for (double& x : w) x = rng.uniform() + 0.05;
      cpt.push_back(pr::Categorical::normalized(std::move(w)));
    }
    net.set_cpt(i, std::move(parents), std::move(cpt));
  }
  return net;
}

bn::Evidence random_evidence(pr::Rng& rng, const bn::BayesianNetwork& net,
                             std::size_t count) {
  bn::Evidence ev;
  for (std::size_t k = 0; k < count; ++k) {
    const bn::VariableId v = rng.uniform_index(net.size());
    ev[v] = rng.uniform_index(net.variable(v).cardinality());
  }
  return ev;
}

// Chain a -> b where b = 1 is unreachable, as in the engine tests.
bn::BayesianNetwork unreachable_state_network() {
  bn::BayesianNetwork net;
  const auto a = net.add_variable("a", {"0", "1"});
  const auto b = net.add_variable("b", {"0", "1"});
  net.set_cpt(a, {}, {pr::Categorical({0.5, 0.5})});
  net.set_cpt(b, {a},
              {pr::Categorical({1.0, 0.0}), pr::Categorical({1.0, 0.0})});
  return net;
}

constexpr Topology kTopologies[] = {Topology::kChain, Topology::kTree,
                                    Topology::kDense};

// w x h binary grid, parents = left and up neighbors; weakly coupled,
// strictly positive CPTs. Treewidth grows with min(w, h): by 25x25 the
// min-fill plan's largest table is ~2^26 cells, past the engine's
// default feasibility ceiling, so exact inference is off the table.
bn::BayesianNetwork grid_network(std::size_t w, std::size_t h) {
  bn::BayesianNetwork net;
  for (std::size_t r = 0; r < h; ++r)
    for (std::size_t c = 0; c < w; ++c)
      net.add_variable("g" + std::to_string(r) + "_" + std::to_string(c),
                       {"0", "1"});
  for (std::size_t r = 0; r < h; ++r) {
    for (std::size_t c = 0; c < w; ++c) {
      const bn::VariableId v = r * w + c;
      std::vector<bn::VariableId> parents;
      if (c > 0) parents.push_back(v - 1);  // left
      if (r > 0) parents.push_back(v - w);  // up
      std::vector<pr::Categorical> cpt;
      const std::size_t rows = std::size_t{1} << parents.size();
      for (std::size_t row = 0; row < rows; ++row) {
        double p1 = 0.35;
        for (std::size_t k = 0; k < parents.size(); ++k)
          if ((row >> k) & 1u) p1 += 0.1;
        cpt.push_back(pr::Categorical({1.0 - p1, p1}));
      }
      net.set_cpt(v, std::move(parents), std::move(cpt));
    }
  }
  return net;
}

}  // namespace

// ---- VE vs JT over generated network/evidence pairs ----

TEST(Differential, JunctionTreeMatchesVariableElimination) {
  pr::Rng rng(differential_seed());
  std::size_t pairs = 0;
  for (const Topology topo : kTopologies) {
    const std::size_t nets = 23;
    for (std::size_t t = 0; t < nets; ++t) {
      const std::size_t n = topo == Topology::kDense
                                ? 5 + rng.uniform_index(3)   // 5..7
                                : 6 + rng.uniform_index(5);  // 6..10
      const auto net = random_network(rng, topo, n);
      bn::VariableElimination ve(net);
      // Evidence cases: none, one observed variable, two observed.
      for (std::size_t ec = 0; ec < 3; ++ec) {
        const auto ev = random_evidence(rng, net, ec);
        const bn::JunctionTree jt(net, ev);
        ++pairs;
        ASSERT_NEAR(jt.evidence_probability(), ve.evidence_probability(ev),
                    sysuq::tolerance::kProbSum)
            << "topo " << static_cast<int>(topo) << " net " << t;
        const auto& marginals = jt.all_marginals();
        ASSERT_EQ(marginals.size(), net.size());
        for (bn::VariableId q = 0; q < net.size(); ++q) {
          if (ev.contains(q)) {
            // Observed variables hold their deltas.
            EXPECT_EQ(marginals[q].p(ev.at(q)), 1.0);
            continue;
          }
          const auto exact = ve.query(q, ev);
          ASSERT_EQ(marginals[q].size(), exact.size());
          for (std::size_t s = 0; s < exact.size(); ++s) {
            ASSERT_NEAR(marginals[q].p(s), exact.p(s),
                        sysuq::tolerance::kProbSum)
                << "topo " << static_cast<int>(topo) << " net " << t
                << " var " << q << " state " << s;
          }
        }
      }
    }
  }
  // The acceptance bar: at least 200 generated network/evidence pairs.
  EXPECT_GE(pairs, 200u);
}

// ---- loopy BP vs VE==JT: certified containment + tolerance bands ----

TEST(Differential, LoopyBpCertifiedAndBandedAgainstExactBackends) {
  // Three-way harness over the same generated network/evidence pairs as
  // the VE-vs-JT sweep (same seed, same generator calls => the same 207
  // pairs). For every unobserved variable:
  //  * the certified interval must contain the exact posterior (both
  //    the VE and JT renditions) — this is the hard guarantee, asserted
  //    whether or not BP converged;
  //  * the BP point must lie inside its own interval;
  //  * a converged point must track VE==JT within a topology-banded
  //    tolerance: exactness (kProbSum) on the acyclic chain/tree
  //    topologies where BP is exact, a loose band on the loopy dense
  //    ones where it is an approximation.
  pr::Rng rng(differential_seed());
  std::size_t pairs = 0;
  std::size_t nonconverged = 0;
  for (const Topology topo : kTopologies) {
    const std::size_t nets = 23;
    for (std::size_t t = 0; t < nets; ++t) {
      const std::size_t n = topo == Topology::kDense
                                ? 5 + rng.uniform_index(3)   // 5..7
                                : 6 + rng.uniform_index(5);  // 6..10
      const auto net = random_network(rng, topo, n);
      bn::VariableElimination ve(net);
      for (std::size_t ec = 0; ec < 3; ++ec) {
        const auto ev = random_evidence(rng, net, ec);
        const bn::JunctionTree jt(net, ev);
        auto bp = std::make_unique<bn::LoopyBP>(net, ev);
        if (!bp->converged()) {
          // Mirror the engine's deterministic retry: damp the flooding
          // updates when pure Jacobi oscillates on a loopy graph.
          bn::LoopyBP::Options damped;
          damped.damping = 0.5;
          damped.max_iterations = 2000;
          bp = std::make_unique<bn::LoopyBP>(net, ev, damped);
        }
        ++pairs;
        if (topo != Topology::kDense) {
          ASSERT_TRUE(bp->acyclic())
              << "topo " << static_cast<int>(topo) << " net " << t;
          ASSERT_TRUE(bp->converged())
              << "topo " << static_cast<int>(topo) << " net " << t;
        }
        if (!bp->converged()) ++nonconverged;
        const auto& jt_marginals = jt.all_marginals();
        for (bn::VariableId q = 0; q < net.size(); ++q) {
          const auto& bounded = bp->query(q);
          if (ev.contains(q)) {
            EXPECT_EQ(bounded.point.p(ev.at(q)), 1.0);
            EXPECT_EQ(bounded.width(), 0.0);
            continue;
          }
          const auto exact = ve.query(q, ev);
          ASSERT_TRUE(bounded.contains(exact.probs()))
              << "topo " << static_cast<int>(topo) << " net " << t
              << " var " << q << " width " << bounded.width();
          ASSERT_TRUE(bounded.contains(jt_marginals[q].probs()))
              << "topo " << static_cast<int>(topo) << " net " << t
              << " var " << q;
          ASSERT_TRUE(bounded.contains(bounded.point.probs()))
              << "topo " << static_cast<int>(topo) << " net " << t
              << " var " << q;
          if (!bp->converged()) continue;  // band applies to fixpoints
          const double band = topo == Topology::kDense
                                  ? 0.25
                                  : sysuq::tolerance::kProbSum;
          for (std::size_t s = 0; s < exact.size(); ++s) {
            ASSERT_NEAR(bounded.point.p(s), exact.p(s), band)
                << "topo " << static_cast<int>(topo) << " net " << t
                << " var " << q << " state " << s;
          }
        }
      }
    }
  }
  EXPECT_GE(pairs, 200u);
  // Flooding (with the damped retry) must converge on almost all of the
  // generated pairs — these are small, weakly coupled networks.
  EXPECT_LE(nonconverged, pairs / 20);
}

TEST(Differential, EngineBackendsAgreeOnBatches) {
  pr::Rng rng(differential_seed() + 1);
  for (const Topology topo : kTopologies) {
    const auto net = random_network(rng, topo, 7);
    const auto ev = random_evidence(rng, net, 1);
    std::vector<bn::QuerySpec> batch;
    for (bn::VariableId q = 0; q < net.size(); ++q) {
      if (!ev.contains(q)) batch.push_back({q, ev});
    }
    bn::InferenceEngine ve_engine(
        net, {.threads = 2, .backend = bn::Backend::kVariableElimination});
    bn::InferenceEngine jt_engine(
        net, {.threads = 2, .backend = bn::Backend::kJunctionTree});
    bn::InferenceEngine auto_engine(
        net, {.threads = 2, .backend = bn::Backend::kAuto,
              .jt_batch_threshold = 2});
    const auto a = ve_engine.query_batch(batch);
    const auto b = jt_engine.query_batch(batch);
    const auto c = auto_engine.query_batch(batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      for (std::size_t s = 0; s < a[i].size(); ++s) {
        ASSERT_NEAR(a[i].p(s), b[i].p(s), sysuq::tolerance::kProbSum) << i;
        ASSERT_NEAR(a[i].p(s), c[i].p(s), sysuq::tolerance::kProbSum) << i;
      }
    }
    // The Auto engine actually took the junction-tree path.
    EXPECT_GE(auto_engine.jt_cache_stats().entries, 1u);
  }
}

// ---- treewidth-hostile grid: kAuto must escalate, not die ----

TEST(Differential, AutoEscalatesOnTreewidthHostileGrid) {
  // Pinned 25x25 binary grid (625 variables, parents = left + up).
  // The min-fill plan's largest intermediate table exceeds the default
  // Options::max_exact_table_cells ceiling (2^24 cells), so exact
  // inference is infeasible; Backend::kAuto must escalate to loopy BP
  // and return converged, finitely bounded posteriors without throwing.
  const auto net = grid_network(25, 25);
  bn::InferenceEngine engine(net,
                             {.threads = 2, .backend = bn::Backend::kAuto});
  const bn::Evidence ev{{0, 1}, {net.size() - 1, 0}};

  // The guard is load-bearing: the plain query path must route to BP.
  const bn::VariableId center = 12 * 25 + 12;
  const auto point = engine.query(center, ev);
  EXPECT_NEAR(point.p(0) + point.p(1), 1.0, sysuq::tolerance::kProbSum);
  EXPECT_GE(engine.bp_cache_stats().entries, 1u);

  const auto profile = engine.explain(center, ev);
  EXPECT_EQ(profile.backend, "loopy_bp");
  EXPECT_NE(profile.backend_reason.find("escalated"), std::string::npos);
  EXPECT_TRUE(profile.bp_converged);

  const auto bounded = engine.all_marginals_bounded(ev);
  ASSERT_EQ(bounded.size(), net.size());
  double max_width = 0.0;
  for (bn::VariableId v = 0; v < net.size(); ++v) {
    const auto& b = bounded[v];
    EXPECT_TRUE(b.converged) << v;
    ASSERT_EQ(b.lo.size(), 2u);
    for (std::size_t s = 0; s < 2; ++s) {
      EXPECT_TRUE(std::isfinite(b.lo[s]) && std::isfinite(b.hi[s])) << v;
      EXPECT_GE(b.lo[s], 0.0) << v;
      EXPECT_LE(b.hi[s], 1.0) << v;
      EXPECT_LE(b.lo[s], b.hi[s]) << v;
    }
    EXPECT_TRUE(b.contains(b.point.probs())) << v;
    max_width = std::max(max_width, b.width());
  }
  // Finite, non-vacuous certification: the blanket box must beat the
  // trivial [0, 1] interval everywhere on this weakly coupled grid.
  EXPECT_LT(max_width, 1.0);
}

// ---- likelihood weighting within sampling tolerance ----

TEST(Differential, LikelihoodWeightingWithinSamplingTolerance) {
  pr::Rng rng(differential_seed() + 2);
  for (const Topology topo : kTopologies) {
    const auto net = random_network(rng, topo, 6);
    const auto ev = random_evidence(rng, net, 1);
    const bn::JunctionTree jt(net, ev);
    for (bn::VariableId q = 0; q < net.size(); ++q) {
      if (ev.contains(q)) continue;
      pr::Rng sample_rng(differential_seed() + 100 + q);
      const auto approx =
          bn::likelihood_weighting(net, q, ev, 120000, sample_rng);
      const auto exact = jt.query(q);
      for (std::size_t s = 0; s < exact.size(); ++s) {
        // ~15 standard errors at this sample count: robust across the CI
        // seed sweep while still catching systematic disagreement.
        ASSERT_NEAR(approx.p(s), exact.p(s), 0.03)
            << "topo " << static_cast<int>(topo) << " var " << q;
      }
      break;  // one query per network keeps the sampling budget bounded
    }
  }
}

// ---- impossible-evidence parity across every backend ----

TEST(Differential, ImpossibleEvidenceMessageIdenticalAcrossBackends) {
  // Two shapes: the minimal unreachable-state chain, and a generated
  // network extended with a child whose second state is unreachable.
  pr::Rng rng(differential_seed() + 3);
  std::vector<std::pair<bn::BayesianNetwork, bn::Evidence>> cases;
  cases.emplace_back(unreachable_state_network(), bn::Evidence{{1, 1}});
  {
    auto net = random_network(rng, Topology::kTree, 5);
    const auto child = net.add_variable("stuck", {"lo", "hi"});
    std::vector<pr::Categorical> rows;
    for (std::size_t r = 0; r < net.variable(0).cardinality(); ++r)
      rows.push_back(pr::Categorical({1.0, 0.0}));
    net.set_cpt(child, {0}, std::move(rows));
    cases.emplace_back(std::move(net), bn::Evidence{{child, 1}});
  }

  for (const auto& [net, impossible] : cases) {
    const std::string expected =
        bn::impossible_evidence_message(net, impossible);
    const bn::VariableId query = 0;  // never the observed variable

    const auto expect_throws = [&](auto&& fn, const char* tag) {
      try {
        fn();
        FAIL() << tag << ": expected std::domain_error";
      } catch (const std::domain_error& e) {
        EXPECT_EQ(std::string(e.what()), expected) << tag;
      }
    };

    bn::VariableElimination ve(net);
    expect_throws([&] { (void)ve.query(query, impossible); }, "ve");

    const bn::JunctionTree jt(net, impossible);
    EXPECT_EQ(jt.log_evidence_probability(),
              -std::numeric_limits<double>::infinity());
    EXPECT_EQ(jt.evidence_probability(), 0.0);
    expect_throws([&] { (void)jt.query(query); }, "jt.query");
    expect_throws([&] { (void)jt.all_marginals(); }, "jt.all_marginals");

    for (const auto backend :
         {bn::Backend::kVariableElimination, bn::Backend::kJunctionTree,
          bn::Backend::kAuto}) {
      bn::InferenceEngine engine(net, {.threads = 1, .backend = backend});
      expect_throws([&] { (void)engine.query(query, impossible); },
                    "engine.query");
      expect_throws([&] { (void)engine.all_marginals(impossible); },
                    "engine.all_marginals");
      expect_throws([&] { (void)engine.query_batch({{query, impossible}}); },
                    "engine.query_batch");
      EXPECT_NEAR(engine.evidence_probability(impossible), 0.0, tol::kSeries);
      EXPECT_EQ(engine.log_evidence_probability(impossible),
                -std::numeric_limits<double>::infinity());
    }

    // Likelihood weighting shares the message prefix (it appends its
    // sampling-effort suffix, covered by the engine tests).
    pr::Rng lw_rng(7);
    try {
      (void)bn::likelihood_weighting(net, query, impossible, 500, lw_rng);
      FAIL() << "expected std::domain_error";
    } catch (const std::domain_error& e) {
      EXPECT_EQ(std::string(e.what()).rfind(expected, 0), 0u)
          << e.what();
    }
  }
}

// ---- deep-evidence underflow regression ----

TEST(Differential, DeepEvidenceChainIsNotSpuriouslyImpossible) {
  // 400-variable binary chain where state 1 is rare (~1e-3) everywhere;
  // observing 150 of those rare states puts P(e) near 1e-420, far below
  // the smallest double. The legacy linear impossible-evidence check
  // (!(total > 0)) saw the underflowed product of reduced factors and
  // threw the domain_error spuriously; the scaled kernels must answer
  // the query, keep log P(e) finite, and agree with the junction tree
  // (whose per-message normalization never underflowed on this shape).
  const std::size_t n = 400;
  bn::BayesianNetwork net;
  for (std::size_t i = 0; i < n; ++i)
    net.add_variable("x" + std::to_string(i), {"0", "1"});
  net.set_cpt(0, {}, {pr::Categorical({0.5, 0.5})});
  for (bn::VariableId v = 1; v < n; ++v) {
    net.set_cpt(v, {v - 1}, {pr::Categorical({0.999, 0.001}),
                             pr::Categorical({0.998, 0.002})});
  }
  bn::Evidence deep;
  for (bn::VariableId v = 2; v <= 300; v += 2) deep[v] = 1;
  ASSERT_EQ(deep.size(), 150u);

  // VE query: previously threw the impossible-evidence domain_error.
  bn::VariableElimination ve(net);
  const pr::Categorical posterior = ve.query(0, deep);

  // P(e) underflows the linear double return — but must not throw.
  EXPECT_EQ(ve.evidence_probability(deep), 0.0);

  // Engine VE backend: query works and log P(e) stays finite, matching
  // the junction tree's per-message log accumulation.
  bn::InferenceEngine engine(
      net, {.threads = 1, .backend = bn::Backend::kVariableElimination});
  const pr::Categorical engine_posterior = engine.query(0, deep);
  EXPECT_NEAR(engine_posterior.p(0), posterior.p(0), tol::kTiny);
  const double ve_log = engine.log_evidence_probability(deep);
  EXPECT_TRUE(std::isfinite(ve_log));
  EXPECT_LT(ve_log, -900.0);  // genuinely below linear-double range

  const bn::JunctionTree jt(net, deep);
  const double jt_log = jt.log_evidence_probability();
  EXPECT_TRUE(std::isfinite(jt_log));
  EXPECT_NEAR(ve_log, jt_log, 1e-6 * std::abs(jt_log));
  const pr::Categorical jt_posterior = jt.query(0);
  EXPECT_NEAR(jt_posterior.p(0), posterior.p(0), tol::kProbSum);

  // Genuinely impossible evidence on the same chain still throws: state
  // 1 of x1 is unreachable once the transition to it carries zero mass.
  bn::BayesianNetwork hard = net;
  hard.set_cpt(1, {0},
               {pr::Categorical({1.0, 0.0}), pr::Categorical({1.0, 0.0})});
  bn::VariableElimination hard_ve(hard);
  EXPECT_THROW((void)hard_ve.query(0, bn::Evidence{{1, 1}}),
               std::domain_error);
}

// ---- Table I golden regression, both exact backends ----

TEST(Differential, Table1GoldenPosteriorsUnderBothBackends) {
  // Hard-coded Bayes inversions of the paper's Table I CPT with the
  // Sec. V priors (0.6 / 0.3 / 0.1), default deficit->none repair.
  // Any backend drift — ordering, clique construction, normalization —
  // breaks these digits.
  const double kPrior[4] = {0.5415, 0.273, 0.065, 0.1205};
  const double kPosterior[4][3] = {
      {0.99722991689750706, 0.0027700831024930748, 0.0},  // perc = car
      {0.010989010989010988, 0.98901098901098905, 0.0},   // perc = ped
      {0.46153846153846151, 0.23076923076923075,
       0.30769230769230776},  // perc = car/ped
      {0.22406639004149373, 0.11203319502074686,
       0.66390041493775931},  // perc = none
  };
  const double kLogEvidenceCar = -0.61341221254109179;

  const auto net = sysuq::perception::table1_network();
  for (const auto backend :
       {bn::Backend::kVariableElimination, bn::Backend::kJunctionTree}) {
    SCOPED_TRACE(backend == bn::Backend::kVariableElimination ? "ve" : "jt");
    bn::InferenceEngine engine(net, {.threads = 1, .backend = backend});

    const auto prior = engine.query(net.id_of("perception"));
    for (std::size_t s = 0; s < 4; ++s)
      EXPECT_NEAR(prior.p(s), kPrior[s], tol::kTiny) << s;

    for (std::size_t o = 0; o < 4; ++o) {
      const auto post = engine.query(0, {{1, o}});
      for (std::size_t s = 0; s < 3; ++s)
        EXPECT_NEAR(post.p(s), kPosterior[o][s], tol::kTiny) << o << "/" << s;
    }

    const auto all = engine.all_marginals({{1, 0}});
    for (std::size_t s = 0; s < 3; ++s)
      EXPECT_NEAR(all[0].p(s), kPosterior[0][s], tol::kTiny) << s;
    EXPECT_EQ(all[1].p(0), 1.0);  // observed variable holds its delta

    EXPECT_NEAR(engine.log_evidence_probability({{1, 0}}), kLogEvidenceCar,
                tol::kTiny);
  }
}

TEST(Differential, Table1GoldenDecompositionFigures) {
  // The uncertainty-attribution figures bench_table1_perception_cpt
  // prints for the default repair policy, pinned to full precision.
  const auto net = sysuq::perception::table1_network();
  bn::VariableElimination ve(net);
  const auto joint = ve.joint(1, 0);
  EXPECT_NEAR(net.cpt_rows(0)[0].entropy(), 0.8979457248567797, tol::kTiny);
  EXPECT_NEAR(sysuq::sys::surprise_factor(joint), 0.19831888266846187,
              tol::kTiny);
  EXPECT_NEAR(sysuq::sys::normalized_surprise(joint), 0.22085842961175994,
              tol::kTiny);
  // Epistemic indicator mass and the ontological prior/posterior pair.
  EXPECT_NEAR(ve.query(1).p(sysuq::perception::kPercCarPedestrian), 0.065,
              tol::kTiny);
  EXPECT_NEAR(net.cpt_rows(0)[0].p(sysuq::perception::kGtUnknown), 0.1,
              tol::kTiny);
  const auto none_post =
      ve.query(0, {{1, sysuq::perception::kPercNone}});
  EXPECT_NEAR(none_post.p(sysuq::perception::kGtUnknown),
              0.66390041493775931, tol::kTiny);
}
