// HMM tests: filtering against hand-computed posteriors, smoothing vs
// filtering information ordering, Viterbi decoding accuracy, and the
// temporal Table I chain.
#include "markov/hmm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "perception/table1.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace mk = sysuq::markov;
namespace pr = sysuq::prob;

namespace {

// A sticky 2-state weather HMM: states {sunny, rainy}, obs {dry, wet}.
mk::Hmm weather() {
  return mk::Hmm(pr::Categorical({0.5, 0.5}),
                 {pr::Categorical({0.8, 0.2}), pr::Categorical({0.3, 0.7})},
                 {pr::Categorical({0.9, 0.1}), pr::Categorical({0.2, 0.8})});
}

// Temporal Table I chain: hidden {car, pedestrian, unknown} with sticky
// dynamics, Table I rows as the emission model.
mk::Hmm table1_hmm(double stickiness = 0.95) {
  const auto net = sysuq::perception::table1_network();
  const auto& prior = net.cpt_rows(0)[0];
  std::vector<pr::Categorical> trans;
  for (std::size_t i = 0; i < 3; ++i) {
    std::vector<double> row(3);
    for (std::size_t j = 0; j < 3; ++j) {
      row[j] = (i == j) ? stickiness
                        : (1.0 - stickiness) * prior.p(j) /
                              (1.0 - prior.p(i)) * (1.0 - prior.p(i)) / 2.0;
    }
    // Normalize off-diagonal share properly.
    double off = 0.0;
    for (std::size_t j = 0; j < 3; ++j) {
      if (j != i) off += prior.p(j);
    }
    for (std::size_t j = 0; j < 3; ++j) {
      if (j != i) row[j] = (1.0 - stickiness) * prior.p(j) / off;
    }
    trans.push_back(pr::Categorical::normalized(std::move(row)));
  }
  return mk::Hmm(prior, std::move(trans), net.cpt_rows(1));
}

}  // namespace

TEST(Hmm, ConstructionValidation) {
  EXPECT_THROW(mk::Hmm(pr::Categorical({0.5, 0.5}),
                       {pr::Categorical({1.0, 0.0})},
                       {pr::Categorical({0.5, 0.5}), pr::Categorical({0.5, 0.5})}),
               std::invalid_argument);
  EXPECT_THROW(mk::Hmm(pr::Categorical({0.5, 0.5}),
                       {pr::Categorical({0.5, 0.5}), pr::Categorical({0.3, 0.7})},
                       {pr::Categorical({0.5, 0.5}), pr::Categorical({0.3, 0.3, 0.4})}),
               std::invalid_argument);
}

TEST(Hmm, SingleStepFilterIsBayesRule) {
  const auto h = weather();
  // P(sunny | dry) = 0.5*0.9 / (0.5*0.9 + 0.5*0.2) = 9/11.
  const auto r = h.filter({0});
  EXPECT_NEAR(r.filtered[0].p(0), 9.0 / 11.0, tol::kTiny);
  EXPECT_NEAR(r.log_likelihood, std::log(0.55), tol::kTiny);
}

TEST(Hmm, TwoStepFilterHandComputed) {
  const auto h = weather();
  const auto r = h.filter({0, 1});  // dry then wet
  // alpha1 = (9/11, 2/11). Predict: sunny = 9/11*0.8 + 2/11*0.3 = 7.8/11;
  // rainy = 9/11*0.2 + 2/11*0.7 = 3.2/11. Update with wet (0.1, 0.8):
  // (0.78/11, 2.56/11) -> normalize.
  const double s = 0.78, rn = 2.56;
  EXPECT_NEAR(r.filtered[1].p(0), s / (s + rn), tol::kTiny);
  EXPECT_NEAR(r.filtered[1].p(1), rn / (s + rn), tol::kTiny);
}

TEST(Hmm, FilterValidation) {
  const auto h = weather();
  EXPECT_THROW((void)h.filter({}), std::invalid_argument);
  EXPECT_THROW((void)h.filter({5}), std::out_of_range);
  // Impossible sequence: state-0-only emission of symbol 1 with a
  // deterministic chain pinned to state 0.
  mk::Hmm rigid(pr::Categorical({1.0, 0.0}),
                {pr::Categorical({1.0, 0.0}), pr::Categorical({0.0, 1.0})},
                {pr::Categorical({1.0, 0.0}), pr::Categorical({0.0, 1.0})});
  EXPECT_THROW((void)rigid.filter({1}), std::domain_error);
}

TEST(Hmm, SmoothingUsesTheFuture) {
  const auto h = weather();
  // Observations dry, wet, wet: the smoothed t=0 estimate should be less
  // confident in sunny than the filtered one (the wet future argues for
  // rain having started earlier).
  const auto filtered = h.filter({0, 1, 1}).filtered;
  const auto smoothed = h.smooth({0, 1, 1});
  EXPECT_LT(smoothed[0].p(0), filtered[0].p(0));
  // Final step: smoothing == filtering.
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_NEAR(smoothed[2].p(i), filtered[2].p(i), tol::kTiny);
}

TEST(Hmm, ViterbiRecoversStickyPath) {
  const auto h = weather();
  // Long dry run then long wet run: Viterbi should decode sunny*,
  // rainy*.
  const std::vector<std::size_t> obs{0, 0, 0, 0, 1, 1, 1, 1};
  const auto path = h.viterbi(obs);
  for (int t = 0; t < 4; ++t) EXPECT_EQ(path[t], 0u) << t;
  for (int t = 4; t < 8; ++t) EXPECT_EQ(path[t], 1u) << t;
}

TEST(Hmm, ViterbiBeatsGreedyOnAmbiguousFrames) {
  // A single wet frame inside a long dry run is explained as sunny (the
  // transition cost outweighs the emission), even though the greedy
  // per-frame MAP would say rainy.
  const auto h = weather();
  const std::vector<std::size_t> obs{0, 0, 0, 1, 0, 0, 0};
  const auto path = h.viterbi(obs);
  EXPECT_EQ(path[3], 0u);
}

TEST(Hmm, SamplingMatchesFilterCalibration) {
  // Generate trajectories, filter them, and check calibration: among
  // frames where P(sunny) in [0.8, 0.9], the true state is sunny ~85%.
  const auto h = weather();
  pr::Rng rng(515151);
  std::size_t in_bin = 0, correct = 0;
  for (int rep = 0; rep < 400; ++rep) {
    const auto tr = h.sample(50, rng);
    const auto f = h.filter(tr.observations);
    for (std::size_t t = 0; t < 50; ++t) {
      const double p = f.filtered[t].p(0);
      if (p >= 0.8 && p <= 0.9) {
        ++in_bin;
        correct += tr.states[t] == 0 ? 1 : 0;
      }
    }
  }
  ASSERT_GT(in_bin, 500u);
  EXPECT_NEAR(static_cast<double>(correct) / in_bin, 0.85, 0.03);
}

TEST(Hmm, Table1TemporalDiagnosis) {
  // A sustained run of 'none' outputs drives the filtered posterior of
  // `unknown` far above both its prior and the single-shot posterior —
  // temporal integration strengthens the ontological diagnosis.
  const auto h = table1_hmm(0.97);
  const std::vector<std::size_t> obs(6, sysuq::perception::kPercNone);
  const auto f = h.filter(obs);
  const double single_shot = 0.6639;  // E1's P(unknown | one none)
  EXPECT_GT(f.filtered[0].p(2), 0.6);
  EXPECT_GT(f.filtered[5].p(2), 0.95);
  EXPECT_GT(f.filtered[5].p(2), single_shot);
  // Whereas alternating car outputs keep the car belief dominant.
  const auto f2 = h.filter({0, 0, 0, 0});
  EXPECT_GT(f2.filtered[3].p(0), 0.99);
}

TEST(Hmm, FilteredEntropyTracksAmbiguity) {
  const auto h = table1_hmm(0.9);
  // car/pedestrian outputs leave high entropy; car outputs collapse it.
  const auto amb = h.filter(std::vector<std::size_t>(
      4, sysuq::perception::kPercCarPedestrian));
  const auto clear = h.filter(std::vector<std::size_t>(
      4, sysuq::perception::kPercCar));
  EXPECT_GT(amb.filtered[3].entropy(), clear.filtered[3].entropy() + 0.3);
}

TEST(Hmm, BaumWelchIncreasesLikelihood) {
  // EM's defining property: each step does not decrease the likelihood.
  const auto truth = weather();
  pr::Rng rng(616161);
  const auto tr = truth.sample(800, rng);

  // Start from a deliberately wrong model.
  mk::Hmm wrong(pr::Categorical({0.5, 0.5}),
                {pr::Categorical({0.5, 0.5}), pr::Categorical({0.5, 0.5})},
                {pr::Categorical({0.6, 0.4}), pr::Categorical({0.4, 0.6})});
  double prev = wrong.filter(tr.observations).log_likelihood;
  mk::Hmm current = wrong;
  for (int it = 0; it < 15; ++it) {
    auto step = current.baum_welch_step(tr.observations);
    current = std::move(step.model);
    const double ll = current.filter(tr.observations).log_likelihood;
    EXPECT_GE(ll, prev - 1e-6) << it;
    prev = ll;
  }
  // The fitted model explains the data at least as well as the start.
  EXPECT_GT(prev, wrong.filter(tr.observations).log_likelihood + 10.0);
}

TEST(Hmm, FitApproachesTruthLikelihood) {
  // The fitted model's likelihood should come close to the generating
  // model's (up to label permutation the parameters may differ, but the
  // likelihood is permutation-invariant).
  const auto truth = weather();
  pr::Rng rng(626262);
  const auto tr = truth.sample(3000, rng);
  const double truth_ll = truth.filter(tr.observations).log_likelihood;

  mk::Hmm start(pr::Categorical({0.6, 0.4}),
                {pr::Categorical({0.6, 0.4}), pr::Categorical({0.4, 0.6})},
                {pr::Categorical({0.7, 0.3}), pr::Categorical({0.35, 0.65})});
  const auto fitted = start.fit(tr.observations, 200, 1e-8);
  EXPECT_GT(fitted.log_likelihood, truth_ll - 15.0);
  EXPECT_THROW((void)start.fit(tr.observations, 0), std::invalid_argument);
  EXPECT_THROW((void)start.baum_welch_step({0}), std::invalid_argument);
  EXPECT_THROW((void)start.baum_welch_step(tr.observations, -1.0),
               std::invalid_argument);
}

TEST(Hmm, BaumWelchRecoversEmissionSkew) {
  // With the true transition structure as the start, EM sharpens the
  // emissions toward the generating values (no label switching since the
  // start already breaks the symmetry the right way).
  const auto truth = weather();
  pr::Rng rng(636363);
  const auto tr = truth.sample(5000, rng);
  mk::Hmm start(pr::Categorical({0.5, 0.5}),
                {pr::Categorical({0.8, 0.2}), pr::Categorical({0.3, 0.7})},
                {pr::Categorical({0.7, 0.3}), pr::Categorical({0.3, 0.7})});
  const auto fitted = start.fit(tr.observations, 100, 1e-8).model;
  // Re-estimated emission for state 0 approaches the true (0.9, 0.1).
  const auto f = fitted.filter(tr.observations);
  (void)f;
  // Check via one-step prediction quality instead of raw parameters:
  // the fitted model's likelihood beats the start's.
  EXPECT_GT(fitted.filter(tr.observations).log_likelihood,
            start.filter(tr.observations).log_likelihood);
}
