// Tests for the contracts layer (src/core/contracts.hpp): violation
// reporting in kThrow mode, silence in kOff mode, and the probability
// predicates shared by every module's entry-point checks.

#include "core/contracts.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "bayesnet/network.hpp"
#include "core/tolerance.hpp"
#include "evidence/frame.hpp"
#include "evidence/mass.hpp"
#include "prob/discrete.hpp"

namespace tol = sysuq::tolerance;

namespace sysuq {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// Restores the enforcement mode even when an assertion fails mid-test.
class ModeGuard {
 public:
  explicit ModeGuard(contracts::Mode m) : saved_(contracts::mode()) {
    contracts::set_mode(m);
  }
  ~ModeGuard() { contracts::set_mode(saved_); }

 private:
  contracts::Mode saved_;
};

TEST(Contracts, DefaultModeIsThrowAndEnforced) {
  EXPECT_EQ(contracts::mode(), contracts::Mode::kThrow);
  EXPECT_TRUE(contracts::enforced());
}

TEST(Contracts, ViolationIsInvalidArgumentAndLogicError) {
  // Callers that documented std::invalid_argument / std::logic_error
  // before the contracts refactor must keep catching violations.
  try {
    contracts::fail("precondition", "p >= 0", "test: negative mass");
    FAIL() << "fail() must throw in kThrow mode";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test: negative mass"), std::string::npos);
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("p >= 0"), std::string::npos);
  }
  EXPECT_THROW(
      contracts::fail("precondition", "x", "m"), std::logic_error);
  EXPECT_THROW(
      contracts::fail("precondition", "x", "m"), contracts::ContractViolation);
}

TEST(Contracts, OffModeSilencesFailAndMacros) {
  ModeGuard guard(contracts::Mode::kOff);
  EXPECT_FALSE(contracts::enforced());
  EXPECT_NO_THROW(contracts::fail("precondition", "x", "m"));
  EXPECT_NO_THROW(SYSUQ_EXPECT(false, "never reported"));
  EXPECT_NO_THROW(SYSUQ_ENSURE(false, "never reported"));
  EXPECT_NO_THROW(SYSUQ_ASSERT_PROB(-1.0, "never reported"));
}

TEST(Contracts, OffModeDoesNotEvaluateTheCondition) {
  ModeGuard guard(contracts::Mode::kOff);
  int evaluations = 0;
  SYSUQ_EXPECT((++evaluations, false), "side effect");
  EXPECT_EQ(evaluations, 0);
}

TEST(Contracts, ProbabilityPredicate) {
  EXPECT_TRUE(contracts::is_probability(0.0));
  EXPECT_TRUE(contracts::is_probability(1.0));
  EXPECT_TRUE(contracts::is_probability(0.5));
  EXPECT_FALSE(contracts::is_probability(-0.1));
  EXPECT_FALSE(contracts::is_probability(1.1));
  EXPECT_FALSE(contracts::is_probability(kNaN));
  EXPECT_FALSE(contracts::is_probability(kInf));
}

TEST(Contracts, FiniteNonnegPredicate) {
  EXPECT_TRUE(contracts::is_finite_nonneg({0.0, 2.5, 1e6}));
  EXPECT_FALSE(contracts::is_finite_nonneg({0.5, -tol::kTiny}));
  EXPECT_FALSE(contracts::is_finite_nonneg({0.5, kNaN}));
  EXPECT_FALSE(contracts::is_finite_nonneg({0.5, kInf}));
}

TEST(Contracts, NormalizedPredicateUsesSharedEpsilon) {
  EXPECT_TRUE(contracts::is_normalized({0.25, 0.75}));
  EXPECT_TRUE(contracts::is_normalized({0.25 + 0.5 * tolerance::kProbSum, 0.75}));
  EXPECT_FALSE(contracts::is_normalized({0.25 + 10.0 * tolerance::kProbSum, 0.75}));
  EXPECT_FALSE(contracts::is_normalized({}));
  EXPECT_FALSE(contracts::is_normalized({0.5, 0.6}));
}

// --- Violations through real entry points -----------------------------

TEST(Contracts, NaNPriorThrows) {
  EXPECT_THROW(prob::Categorical({kNaN, 1.0}), contracts::ContractViolation);
}

TEST(Contracts, NegativeMassThrows) {
  EXPECT_THROW(prob::Categorical({-0.25, 1.25}), contracts::ContractViolation);
  evidence::Frame frame({"a", "b"});
  EXPECT_THROW(
      evidence::MassFunction(frame, {{frame.singleton(0), -0.1},
                                     {frame.theta(), 1.1}}),
      contracts::ContractViolation);
}

TEST(Contracts, DenormalizedCptRowThrows) {
  bayesnet::BayesianNetwork net;
  const auto x = net.add_variable("x", {"t", "f"});
  EXPECT_THROW(
      net.set_cpt(x, {}, {prob::Categorical({0.7, 0.7})}),
      contracts::ContractViolation);
}

TEST(Contracts, ViolatingInputsPassInOffMode) {
  ModeGuard guard(contracts::Mode::kOff);
  // With checks off the library trusts the caller; construction succeeds.
  EXPECT_NO_THROW(prob::Categorical({0.5, 0.6}));
}

TEST(Contracts, WeightSumOverflowRejected) {
  // Latent bug fixed by the sweep: two finite weights whose sum
  // overflows to +inf used to produce a NaN/zero distribution.
  const double huge = std::numeric_limits<double>::max();
  EXPECT_THROW(prob::Categorical::normalized({huge, huge}),
               contracts::ContractViolation);
}

TEST(Contracts, AllZeroWeightsRejected) {
  EXPECT_THROW(prob::Categorical::normalized({0.0, 0.0}),
               contracts::ContractViolation);
}

}  // namespace
}  // namespace sysuq
