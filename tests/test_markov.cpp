// DTMC / interval-DTMC tests: reachability against closed forms, PCTL
// bounded until, stationary distributions, expected hitting times, and
// guaranteed interval bounds cross-checked by sampled point chains.
#include "markov/dtmc.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace mk = sysuq::markov;
namespace pr = sysuq::prob;

namespace {

// The classic gambler's-ruin-flavoured chain: start -> {win, lose}.
mk::Dtmc gamblers(double p) {
  mk::Dtmc c;
  const auto s0 = c.add_state("s0");
  const auto s1 = c.add_state("s1");
  const auto win = c.add_state("win");
  const auto lose = c.add_state("lose");
  c.set_transition(s0, s1, p);
  c.set_transition(s0, lose, 1.0 - p);
  c.set_transition(s1, win, p);
  c.set_transition(s1, s0, 1.0 - p);
  c.set_transition(win, win, 1.0);
  c.set_transition(lose, lose, 1.0);
  return c;
}

}  // namespace

TEST(Dtmc, ConstructionValidation) {
  mk::Dtmc c;
  const auto a = c.add_state("a");
  EXPECT_THROW((void)c.add_state("a"), std::invalid_argument);
  EXPECT_THROW((void)c.add_state(""), std::invalid_argument);
  EXPECT_THROW(c.set_transition(a, 7, 0.5), std::out_of_range);
  EXPECT_THROW(c.set_transition(a, a, 1.5), std::invalid_argument);
  c.set_transition(a, a, 0.5);
  EXPECT_THROW(c.validate(), std::logic_error);  // row sums to 0.5
  c.set_transition(a, a, 1.0);
  EXPECT_NO_THROW(c.validate());
  EXPECT_EQ(c.id_of("a"), a);
  EXPECT_THROW((void)c.id_of("zz"), std::invalid_argument);
}

TEST(Dtmc, ReachabilityClosedForm) {
  // P(win from s0): x0 = p*x1, x1 = p + (1-p)*x0 -> x0 = p^2/(1-p+p^2).
  for (const double p : {0.3, 0.5, 0.8}) {
    const auto c = gamblers(p);
    const auto r = c.reachability({c.id_of("win")});
    const double expect = p * p / (1.0 - p + p * p);
    EXPECT_NEAR(r[c.id_of("s0")], expect, tol::kProbSum) << p;
    EXPECT_DOUBLE_EQ(r[c.id_of("win")], 1.0);
    EXPECT_NEAR(r[c.id_of("lose")], 0.0, tol::kProbSum);
  }
}

TEST(Dtmc, BoundedReachabilityMonotoneInK) {
  const auto c = gamblers(0.5);
  const std::vector<mk::StateId> target{c.id_of("win")};
  double prev = -1.0;
  for (const std::size_t k : {0u, 1u, 2u, 4u, 8u, 32u, 128u}) {
    const double v = c.bounded_reachability(target, k)[c.id_of("s0")];
    EXPECT_GE(v, prev);
    prev = v;
  }
  // Converges to the unbounded value.
  EXPECT_NEAR(prev, c.reachability(target)[c.id_of("s0")], tol::kProbSum);
  // Exact small-k values: k=2 is the first chance to win: p*p.
  EXPECT_DOUBLE_EQ(c.bounded_reachability(target, 1)[c.id_of("s0")], 0.0);
  EXPECT_NEAR(c.bounded_reachability(target, 2)[c.id_of("s0")], 0.25, tol::kTiny);
}

TEST(Dtmc, BoundedUntilRespectsSafety) {
  // s0 -> risky -> win, or s0 -> safe -> win. Forbidding `risky` removes
  // that path's mass.
  mk::Dtmc c;
  const auto s0 = c.add_state("s0");
  const auto risky = c.add_state("risky");
  const auto safe = c.add_state("safe");
  const auto win = c.add_state("win");
  c.set_transition(s0, risky, 0.6);
  c.set_transition(s0, safe, 0.4);
  c.set_transition(risky, win, 1.0);
  c.set_transition(safe, win, 1.0);
  c.set_transition(win, win, 1.0);
  std::vector<bool> all_safe(c.size(), true);
  EXPECT_NEAR(c.bounded_until(all_safe, {win}, 2)[s0], 1.0, tol::kTiny);
  std::vector<bool> no_risky = all_safe;
  no_risky[risky] = false;
  EXPECT_NEAR(c.bounded_until(no_risky, {win}, 2)[s0], 0.4, tol::kTiny);
}

TEST(Dtmc, StationaryTwoState) {
  // p(a->b)=0.3, p(b->a)=0.6: pi = (2/3, 1/3).
  mk::Dtmc c;
  const auto a = c.add_state("a");
  const auto b = c.add_state("b");
  c.set_transition(a, a, 0.7);
  c.set_transition(a, b, 0.3);
  c.set_transition(b, a, 0.6);
  c.set_transition(b, b, 0.4);
  const auto pi = c.stationary();
  EXPECT_NEAR(pi[a], 2.0 / 3.0, tol::kProbSum);
  EXPECT_NEAR(pi[b], 1.0 / 3.0, tol::kProbSum);
}

TEST(Dtmc, ExpectedStepsGeometric) {
  // Single state looping with exit probability p: E[steps] = 1/p.
  mk::Dtmc c;
  const auto a = c.add_state("a");
  const auto t = c.add_state("t");
  c.set_transition(a, a, 0.75);
  c.set_transition(a, t, 0.25);
  c.set_transition(t, t, 1.0);
  const auto e = c.expected_steps_to({t});
  EXPECT_NEAR(e[a], 4.0, 1e-6);
  EXPECT_DOUBLE_EQ(e[t], 0.0);
}

TEST(Dtmc, ExpectedStepsInfiniteWhenUnreachable) {
  mk::Dtmc c;
  const auto a = c.add_state("a");
  const auto t = c.add_state("t");
  c.set_transition(a, a, 1.0);
  c.set_transition(t, t, 1.0);
  const auto e = c.expected_steps_to({t});
  EXPECT_TRUE(std::isinf(e[a]));
}

TEST(Dtmc, SimulationMatchesReachability) {
  const auto c = gamblers(0.6);
  pr::Rng rng(55);
  int wins = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const auto path = c.simulate(c.id_of("s0"), 200, rng);
    if (path.back() == c.id_of("win")) ++wins;
  }
  // x0 = p^2 / (1 - p + p^2) with p = 0.6.
  const double expect = 0.36 / (1.0 - 0.6 + 0.36);
  EXPECT_NEAR(static_cast<double>(wins) / trials, expect, 0.01);
}

TEST(IntervalDtmc, ValidationAndContains) {
  mk::IntervalDtmc ic({"a", "b"});
  ic.set_transition(0, 0, pr::ProbInterval(0.6, 0.8));
  ic.set_transition(0, 1, pr::ProbInterval(0.2, 0.4));
  ic.set_transition(1, 1, pr::ProbInterval(1.0));
  EXPECT_NO_THROW(ic.validate());

  mk::Dtmc point;
  (void)point.add_state("a");
  (void)point.add_state("b");
  point.set_transition(0, 0, 0.7);
  point.set_transition(0, 1, 0.3);
  point.set_transition(1, 1, 1.0);
  EXPECT_TRUE(ic.contains(point));
  point.set_transition(0, 0, 0.5);
  point.set_transition(0, 1, 0.5);
  EXPECT_FALSE(ic.contains(point));

  mk::IntervalDtmc bad({"a"});
  bad.set_transition(0, 0, pr::ProbInterval(0.0, 0.5));
  EXPECT_THROW(bad.validate(), std::logic_error);
}

TEST(IntervalDtmc, BoundsContainAllPointChains) {
  // Degraded-mode chain: ok -> {ok, degraded}, degraded -> {ok, failed},
  // with epistemic bands on the degradation rates.
  mk::IntervalDtmc ic({"ok", "degraded", "failed"});
  ic.set_transition(0, 0, pr::ProbInterval(0.90, 0.98));
  ic.set_transition(0, 1, pr::ProbInterval(0.02, 0.10));
  ic.set_transition(1, 0, pr::ProbInterval(0.30, 0.60));
  ic.set_transition(1, 2, pr::ProbInterval(0.05, 0.20));
  ic.set_transition(1, 1, pr::ProbInterval(0.20, 0.65));
  ic.set_transition(2, 2, pr::ProbInterval(1.0));
  ic.validate();

  const std::size_t k = 20;
  const auto bounds = ic.bounded_reachability({2}, k);
  EXPECT_LT(bounds[0].lo(), bounds[0].hi());

  pr::Rng rng(321);
  for (int trial = 0; trial < 100; ++trial) {
    // Sample a consistent point chain.
    mk::Dtmc point;
    (void)point.add_state("ok");
    (void)point.add_state("degraded");
    (void)point.add_state("failed");
    // Row 0: pick p01 in band, p00 = 1 - p01 (check band).
    double p01, p00;
    do {
      p01 = rng.uniform(0.02, 0.10);
      p00 = 1.0 - p01;
    } while (!(p00 >= 0.90 && p00 <= 0.98));
    point.set_transition(0, 0, p00);
    point.set_transition(0, 1, p01);
    double p10, p12, p11;
    do {
      p10 = rng.uniform(0.30, 0.60);
      p12 = rng.uniform(0.05, 0.20);
      p11 = 1.0 - p10 - p12;
    } while (!(p11 >= 0.20 && p11 <= 0.65));
    point.set_transition(1, 0, p10);
    point.set_transition(1, 2, p12);
    point.set_transition(1, 1, p11);
    point.set_transition(2, 2, 1.0);
    ASSERT_TRUE(ic.contains(point));
    const double v = point.bounded_reachability({2}, k)[0];
    EXPECT_GE(v, bounds[0].lo() - tol::kProbSum);
    EXPECT_LE(v, bounds[0].hi() + tol::kProbSum);
  }
}

TEST(IntervalDtmc, DegenerateIntervalsReproducePointChain) {
  const auto c = gamblers(0.5);
  mk::IntervalDtmc ic({"s0", "s1", "win", "lose"});
  for (mk::StateId s = 0; s < 4; ++s) {
    for (mk::StateId t = 0; t < 4; ++t) {
      ic.set_transition(s, t, pr::ProbInterval(c.transition(s, t)));
    }
  }
  const auto b = ic.bounded_reachability({2}, 50);
  const auto v = c.bounded_reachability({2}, 50);
  for (mk::StateId s = 0; s < 4; ++s) {
    EXPECT_NEAR(b[s].lo(), v[s], tol::kTiny);
    EXPECT_NEAR(b[s].hi(), v[s], tol::kTiny);
  }
}
