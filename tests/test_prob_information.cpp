// Information-theory tests: identities (chain rule, non-negativity,
// bounds) and the ensemble aleatory/epistemic decomposition.
#include "prob/information.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "prob/rng.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace pr = sysuq::prob;

namespace {

pr::JointTable independent_joint(const pr::Categorical& x,
                                 const pr::Categorical& y) {
  std::vector<pr::Categorical> rows(x.size(), y);
  return pr::JointTable::from_conditional(x, rows);
}

pr::Categorical random_categorical(pr::Rng& rng, std::size_t k) {
  std::vector<double> w(k);
  for (double& v : w) v = rng.uniform() + 1e-3;
  return pr::Categorical::normalized(std::move(w));
}

}  // namespace

TEST(JointTable, ValidationAndAccess) {
  EXPECT_NO_THROW(pr::JointTable({{0.25, 0.25}, {0.25, 0.25}}));
  EXPECT_THROW(pr::JointTable({{0.5, 0.5}, {0.5, 0.5}}), std::invalid_argument);
  EXPECT_THROW(pr::JointTable({{0.5}, {0.25, 0.25}}), std::invalid_argument);
  pr::JointTable j({{0.1, 0.2}, {0.3, 0.4}});
  EXPECT_DOUBLE_EQ(j.p(1, 0), 0.3);
  EXPECT_THROW((void)j.p(2, 0), std::out_of_range);
}

TEST(JointTable, MarginalsAndConditionals) {
  pr::JointTable j({{0.1, 0.2}, {0.3, 0.4}});
  const auto mx = j.marginal_x();
  EXPECT_NEAR(mx.p(0), 0.3, tol::kTiny);
  EXPECT_NEAR(mx.p(1), 0.7, tol::kTiny);
  const auto my = j.marginal_y();
  EXPECT_NEAR(my.p(0), 0.4, tol::kTiny);
  const auto y_given_x0 = j.conditional_y_given_x(0);
  EXPECT_NEAR(y_given_x0.p(0), 1.0 / 3.0, tol::kTiny);
  const auto x_given_y1 = j.conditional_x_given_y(1);
  EXPECT_NEAR(x_given_y1.p(1), 0.4 / 0.6, tol::kTiny);
}

TEST(JointTable, FromConditionalReconstructs) {
  const pr::Categorical px({0.6, 0.4});
  const std::vector<pr::Categorical> rows{pr::Categorical({0.9, 0.1}),
                                          pr::Categorical({0.2, 0.8})};
  const auto j = pr::JointTable::from_conditional(px, rows);
  EXPECT_NEAR(j.p(0, 0), 0.54, tol::kTiny);
  EXPECT_NEAR(j.p(1, 1), 0.32, tol::kTiny);
  // Recover the conditional.
  EXPECT_NEAR(j.conditional_y_given_x(0).p(0), 0.9, tol::kTiny);
}

TEST(Information, KlProperties) {
  const pr::Categorical p({0.5, 0.5});
  const pr::Categorical q({0.9, 0.1});
  EXPECT_DOUBLE_EQ(pr::kl_divergence(p, p), 0.0);
  EXPECT_GT(pr::kl_divergence(p, q), 0.0);
  // Support mismatch gives infinity.
  const pr::Categorical r({1.0, 0.0});
  EXPECT_EQ(pr::kl_divergence(p, r), std::numeric_limits<double>::infinity());
  // KL from a delta into full support is finite.
  EXPECT_LT(pr::kl_divergence(r, q), std::numeric_limits<double>::infinity());
}

TEST(Information, JsBoundedAndSymmetric) {
  pr::Rng rng(17);
  for (int t = 0; t < 50; ++t) {
    const auto p = random_categorical(rng, 4);
    const auto q = random_categorical(rng, 4);
    const double js = pr::js_divergence(p, q);
    EXPECT_GE(js, 0.0);
    EXPECT_LE(js, std::log(2.0) + tol::kTiny);
    EXPECT_NEAR(js, pr::js_divergence(q, p), tol::kTiny);
  }
  // Maximal for disjoint supports.
  const pr::Categorical a({1.0, 0.0});
  const pr::Categorical b({0.0, 1.0});
  EXPECT_NEAR(pr::js_divergence(a, b), std::log(2.0), tol::kTiny);
}

TEST(Information, ChainRule) {
  // H(X, Y) = H(X) + H(Y|X) for arbitrary joints.
  pr::Rng rng(23);
  for (int t = 0; t < 30; ++t) {
    const auto px = random_categorical(rng, 3);
    std::vector<pr::Categorical> rows;
    for (std::size_t i = 0; i < 3; ++i) rows.push_back(random_categorical(rng, 4));
    const auto j = pr::JointTable::from_conditional(px, rows);
    EXPECT_NEAR(pr::joint_entropy(j),
                j.marginal_x().entropy() + pr::conditional_entropy_y_given_x(j),
                tol::kIteration);
  }
}

TEST(Information, ConditioningReducesEntropy) {
  // H(Y|X) <= H(Y), with equality iff independent.
  pr::Rng rng(29);
  for (int t = 0; t < 30; ++t) {
    const auto px = random_categorical(rng, 3);
    std::vector<pr::Categorical> rows;
    for (std::size_t i = 0; i < 3; ++i) rows.push_back(random_categorical(rng, 3));
    const auto j = pr::JointTable::from_conditional(px, rows);
    EXPECT_LE(pr::conditional_entropy_y_given_x(j),
              j.marginal_y().entropy() + tol::kIteration);
  }
  // Equality in the independent case.
  const auto indep = independent_joint(pr::Categorical({0.3, 0.7}),
                                       pr::Categorical({0.2, 0.5, 0.3}));
  EXPECT_NEAR(pr::conditional_entropy_y_given_x(indep),
              indep.marginal_y().entropy(), tol::kIteration);
  EXPECT_NEAR(pr::mutual_information(indep), 0.0, tol::kIteration);
}

TEST(Information, MutualInformationSymmetric) {
  pr::Rng rng(31);
  for (int t = 0; t < 30; ++t) {
    const auto px = random_categorical(rng, 4);
    std::vector<pr::Categorical> rows;
    for (std::size_t i = 0; i < 4; ++i) rows.push_back(random_categorical(rng, 3));
    const auto j = pr::JointTable::from_conditional(px, rows);
    const double mi_xy =
        j.marginal_y().entropy() - pr::conditional_entropy_y_given_x(j);
    const double mi_yx =
        j.marginal_x().entropy() - pr::conditional_entropy_x_given_y(j);
    EXPECT_NEAR(mi_xy, mi_yx, tol::kIteration);
    EXPECT_GE(pr::mutual_information(j), 0.0);
  }
}

TEST(Information, PerfectChannelHasZeroConditionalEntropy) {
  // Deterministic Y = X: the model predicts the system exactly — zero
  // "surprise factor" in the paper's sense.
  const pr::Categorical px({0.25, 0.25, 0.5});
  std::vector<pr::Categorical> rows{pr::Categorical::delta(0, 3),
                                    pr::Categorical::delta(1, 3),
                                    pr::Categorical::delta(2, 3)};
  const auto j = pr::JointTable::from_conditional(px, rows);
  EXPECT_NEAR(pr::conditional_entropy_y_given_x(j), 0.0, tol::kTiny);
  EXPECT_NEAR(pr::mutual_information(j), px.entropy(), tol::kIteration);
}

TEST(EnsembleDecomposition, AgreementIsAllAleatory) {
  // Identical members: epistemic = 0, aleatory = member entropy.
  const pr::Categorical m({0.7, 0.3});
  const auto d = pr::decompose_ensemble_entropy({m, m, m});
  EXPECT_NEAR(d.epistemic, 0.0, tol::kTiny);
  EXPECT_NEAR(d.aleatory, m.entropy(), tol::kTiny);
  EXPECT_NEAR(d.total, m.entropy(), tol::kTiny);
}

TEST(EnsembleDecomposition, ConfidentDisagreementIsAllEpistemic) {
  // Members certain but contradictory: aleatory = 0, epistemic = log 2.
  const auto d = pr::decompose_ensemble_entropy(
      {pr::Categorical({1.0, 0.0}), pr::Categorical({0.0, 1.0})});
  EXPECT_NEAR(d.aleatory, 0.0, tol::kTiny);
  EXPECT_NEAR(d.epistemic, std::log(2.0), tol::kTiny);
}

TEST(EnsembleDecomposition, ComponentsAlwaysNonNegativeAndAdditive) {
  pr::Rng rng(37);
  for (int t = 0; t < 60; ++t) {
    std::vector<pr::Categorical> members;
    const std::size_t m = 2 + rng.uniform_index(5);
    for (std::size_t i = 0; i < m; ++i) members.push_back(random_categorical(rng, 4));
    const auto d = pr::decompose_ensemble_entropy(members);
    EXPECT_GE(d.aleatory, 0.0);
    EXPECT_GE(d.epistemic, 0.0);
    EXPECT_NEAR(d.total, d.aleatory + d.epistemic, tol::kIteration);
  }
}

TEST(EnsembleDecomposition, WeightsRespected) {
  const pr::Categorical a({1.0, 0.0});
  const pr::Categorical b({0.0, 1.0});
  const std::vector<double> w{3.0, 1.0};  // normalized to 0.75 / 0.25
  const auto d = pr::decompose_ensemble_entropy({a, b}, &w);
  const pr::Categorical mix({0.75, 0.25});
  EXPECT_NEAR(d.total, mix.entropy(), tol::kTiny);
  EXPECT_THROW((void)pr::decompose_ensemble_entropy({a}, &w),
               std::invalid_argument);
}
