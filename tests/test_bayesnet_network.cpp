// BayesianNetwork structure tests: construction, validation, topology,
// d-separation, parameter counting, and forward sampling.
#include "bayesnet/network.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "bayesnet/io.hpp"
#include "perception/table1.hpp"

namespace bn = sysuq::bayesnet;
namespace pr = sysuq::prob;

namespace {

// The paper's Fig. 4 / Table I network (default repair: deficit -> none).
bn::BayesianNetwork paper_network() {
  return sysuq::perception::table1_network();
}

}  // namespace

TEST(Variable, ConstructionValidation) {
  EXPECT_NO_THROW(bn::Variable("x", {"a", "b"}));
  EXPECT_THROW(bn::Variable("", {"a", "b"}), std::invalid_argument);
  EXPECT_THROW(bn::Variable("x", {"a"}), std::invalid_argument);
  EXPECT_THROW(bn::Variable("x", {"a", "a"}), std::invalid_argument);
  EXPECT_THROW(bn::Variable("x", {"a", ""}), std::invalid_argument);
}

TEST(Variable, StateLookup) {
  bn::Variable v("gt", {"car", "pedestrian", "unknown"});
  EXPECT_EQ(v.cardinality(), 3u);
  EXPECT_EQ(v.state_index("pedestrian"), 1u);
  EXPECT_TRUE(v.has_state("unknown"));
  EXPECT_FALSE(v.has_state("bike"));
  EXPECT_THROW((void)v.state_index("bike"), std::invalid_argument);
  EXPECT_THROW((void)v.state_name(3), std::out_of_range);
}

TEST(Network, DuplicateNameRejected) {
  bn::BayesianNetwork net;
  net.add_variable("x", {"a", "b"});
  EXPECT_THROW(net.add_variable("x", {"c", "d"}), std::invalid_argument);
}

TEST(Network, CptValidation) {
  bn::BayesianNetwork net;
  const auto x = net.add_variable("x", {"a", "b"});
  const auto y = net.add_variable("y", {"a", "b", "c"});
  // Wrong number of rows.
  EXPECT_THROW(net.set_cpt(y, {x}, {pr::Categorical::uniform(3)}),
               std::invalid_argument);
  // Wrong row size.
  EXPECT_THROW(net.set_cpt(y, {x},
                           {pr::Categorical::uniform(2),
                            pr::Categorical::uniform(2)}),
               std::invalid_argument);
  // Self-parent.
  EXPECT_THROW(net.set_cpt(x, {x}, {pr::Categorical::uniform(2),
                                    pr::Categorical::uniform(2)}),
               std::invalid_argument);
  // Duplicate parent.
  EXPECT_THROW(net.set_cpt(y, {x, x},
                           std::vector<pr::Categorical>(
                               4, pr::Categorical::uniform(3))),
               std::invalid_argument);
  // Valid.
  EXPECT_NO_THROW(net.set_cpt(y, {x},
                              {pr::Categorical::uniform(3),
                               pr::Categorical::uniform(3)}));
}

TEST(Network, ValidateRequiresAllCpts) {
  bn::BayesianNetwork net;
  const auto x = net.add_variable("x", {"a", "b"});
  net.add_variable("y", {"a", "b"});
  net.set_cpt(x, {}, {pr::Categorical::uniform(2)});
  EXPECT_THROW(net.validate(), std::logic_error);
}

TEST(Network, CycleDetected) {
  bn::BayesianNetwork net;
  const auto x = net.add_variable("x", {"a", "b"});
  const auto y = net.add_variable("y", {"a", "b"});
  auto rows2 = std::vector<pr::Categorical>(2, pr::Categorical::uniform(2));
  net.set_cpt(x, {y}, rows2);
  net.set_cpt(y, {x}, rows2);
  EXPECT_THROW(net.validate(), std::logic_error);
  EXPECT_THROW((void)net.topological_order(), std::logic_error);
}

TEST(Network, TopologicalOrderRespectsEdges) {
  bn::BayesianNetwork net;
  const auto a = net.add_variable("a", {"0", "1"});
  const auto b = net.add_variable("b", {"0", "1"});
  const auto c = net.add_variable("c", {"0", "1"});
  auto rows1 = std::vector<pr::Categorical>{pr::Categorical::uniform(2)};
  auto rows2 = std::vector<pr::Categorical>(2, pr::Categorical::uniform(2));
  auto rows4 = std::vector<pr::Categorical>(4, pr::Categorical::uniform(2));
  net.set_cpt(a, {}, rows1);
  net.set_cpt(b, {a}, rows2);
  net.set_cpt(c, {a, b}, rows4);
  const auto order = net.topological_order();
  const auto pos = [&](bn::VariableId v) {
    return std::find(order.begin(), order.end(), v) - order.begin();
  };
  EXPECT_LT(pos(a), pos(b));
  EXPECT_LT(pos(b), pos(c));
}

TEST(Network, PaperNetworkBasics) {
  const auto net = paper_network();
  EXPECT_NO_THROW(net.validate());
  EXPECT_EQ(net.size(), 2u);
  EXPECT_EQ(net.id_of("perception"), 1u);
  EXPECT_TRUE(net.has_variable("ground_truth"));
  EXPECT_FALSE(net.has_variable("lidar"));
  // Parameters: root 3-1=2; child 3 rows * (4-1) = 9; total 11.
  EXPECT_EQ(net.parameter_count(), 11u);
  EXPECT_EQ(net.children(0), std::vector<bn::VariableId>{1});
  EXPECT_TRUE(net.parents(0).empty());
  // Table I row lookup.
  EXPECT_DOUBLE_EQ(net.cpt_row(1, {0}).p(0), 0.9);
  // Published Table I row (0, 0, 0.2, 0.7) sums to 0.9; default repair
  // assigns the deficit to `none`.
  EXPECT_DOUBLE_EQ(net.cpt_row(1, {2}).p(3), 0.8);
  EXPECT_DOUBLE_EQ(net.cpt_row(1, {2}).p(2), 0.2);
}

TEST(Network, CptFactorMatchesRows) {
  const auto net = paper_network();
  const auto f = net.cpt_factor(1);
  ASSERT_EQ(f.scope(), (std::vector<bn::VariableId>{0, 1}));
  for (std::size_t g = 0; g < 3; ++g) {
    for (std::size_t p = 0; p < 4; ++p) {
      EXPECT_DOUBLE_EQ(f.at({g, p}), net.cpt_row(1, {g}).p(p)) << g << "," << p;
    }
  }
  // Root factor.
  const auto fr = net.cpt_factor(0);
  EXPECT_DOUBLE_EQ(fr.at({0}), 0.6);
  EXPECT_DOUBLE_EQ(fr.at({2}), 0.1);
}

TEST(Network, DSeparationChainForkCollider) {
  bn::BayesianNetwork net;
  const auto a = net.add_variable("a", {"0", "1"});
  const auto b = net.add_variable("b", {"0", "1"});
  const auto c = net.add_variable("c", {"0", "1"});
  auto rows1 = std::vector<pr::Categorical>{pr::Categorical::uniform(2)};
  auto rows2 = std::vector<pr::Categorical>(2, pr::Categorical::uniform(2));

  // Chain a -> b -> c.
  net.set_cpt(a, {}, rows1);
  net.set_cpt(b, {a}, rows2);
  net.set_cpt(c, {b}, rows2);
  EXPECT_FALSE(net.d_separated(a, c, {}));
  EXPECT_TRUE(net.d_separated(a, c, {b}));

  // Fork: b <- a -> c.
  bn::BayesianNetwork fork;
  const auto fa = fork.add_variable("a", {"0", "1"});
  const auto fb = fork.add_variable("b", {"0", "1"});
  const auto fc = fork.add_variable("c", {"0", "1"});
  fork.set_cpt(fa, {}, rows1);
  fork.set_cpt(fb, {fa}, rows2);
  fork.set_cpt(fc, {fa}, rows2);
  EXPECT_FALSE(fork.d_separated(fb, fc, {}));
  EXPECT_TRUE(fork.d_separated(fb, fc, {fa}));

  // Collider: a -> c <- b ("common cause identification" structure).
  bn::BayesianNetwork col;
  const auto ca = col.add_variable("a", {"0", "1"});
  const auto cb = col.add_variable("b", {"0", "1"});
  const auto cc = col.add_variable("c", {"0", "1"});
  auto rows4 = std::vector<pr::Categorical>(4, pr::Categorical::uniform(2));
  col.set_cpt(ca, {}, rows1);
  col.set_cpt(cb, {}, rows1);
  col.set_cpt(cc, {ca, cb}, rows4);
  EXPECT_TRUE(col.d_separated(ca, cb, {}));
  EXPECT_FALSE(col.d_separated(ca, cb, {cc}));  // explaining away
}

TEST(Network, DSeparationDescendantOfCollider) {
  // a -> c <- b, c -> d: conditioning on d also opens the collider.
  bn::BayesianNetwork net;
  const auto a = net.add_variable("a", {"0", "1"});
  const auto b = net.add_variable("b", {"0", "1"});
  const auto c = net.add_variable("c", {"0", "1"});
  const auto d = net.add_variable("d", {"0", "1"});
  auto rows1 = std::vector<pr::Categorical>{pr::Categorical::uniform(2)};
  auto rows2 = std::vector<pr::Categorical>(2, pr::Categorical::uniform(2));
  auto rows4 = std::vector<pr::Categorical>(4, pr::Categorical::uniform(2));
  net.set_cpt(a, {}, rows1);
  net.set_cpt(b, {}, rows1);
  net.set_cpt(c, {a, b}, rows4);
  net.set_cpt(d, {c}, rows2);
  EXPECT_TRUE(net.d_separated(a, b, {}));
  EXPECT_FALSE(net.d_separated(a, b, {d}));
}

TEST(Network, SampleMatchesMarginals) {
  const auto net = paper_network();
  pr::Rng rng(77);
  std::vector<std::size_t> gt_counts(3, 0);
  const std::size_t n = 60000;
  for (std::size_t i = 0; i < n; ++i) {
    const auto s = net.sample(rng);
    ++gt_counts[s[0]];
  }
  EXPECT_NEAR(static_cast<double>(gt_counts[0]) / n, 0.6, 0.01);
  EXPECT_NEAR(static_cast<double>(gt_counts[1]) / n, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(gt_counts[2]) / n, 0.1, 0.01);
}

TEST(Network, UpdateCptRows) {
  auto net = paper_network();
  auto rows = net.cpt_rows(1);
  rows[2] = pr::Categorical({0.0, 0.0, 0.5, 0.5});
  net.update_cpt_rows(1, rows);
  EXPECT_DOUBLE_EQ(net.cpt_row(1, {2}).p(2), 0.5);
  EXPECT_THROW(net.update_cpt_rows(1, {pr::Categorical::uniform(4)}),
               std::invalid_argument);
}

TEST(NetworkIo, DotAndTableContainNames) {
  const auto net = paper_network();
  const auto dot = bn::to_dot(net);
  EXPECT_NE(dot.find("ground_truth"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  const auto table = bn::cpt_table(net, 1);
  EXPECT_NE(table.find("car/pedestrian"), std::string::npos);
  EXPECT_NE(table.find("0.9"), std::string::npos);
  const auto desc = bn::describe(net);
  EXPECT_NE(desc.find("11 free parameters"), std::string::npos);
}
