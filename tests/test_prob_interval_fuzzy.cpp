// Tests for probability intervals and triangular fuzzy numbers.
#include <gtest/gtest.h>

#include <cmath>

#include "prob/fuzzy.hpp"
#include "prob/interval.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace pr = sysuq::prob;

TEST(ProbInterval, ConstructionValidation) {
  EXPECT_NO_THROW(pr::ProbInterval(0.2, 0.8));
  EXPECT_NO_THROW(pr::ProbInterval(0.5));
  EXPECT_THROW(pr::ProbInterval(0.8, 0.2), std::invalid_argument);
  EXPECT_THROW(pr::ProbInterval(-0.1, 0.5), std::invalid_argument);
  EXPECT_THROW(pr::ProbInterval(0.5, 1.1), std::invalid_argument);
}

TEST(ProbInterval, BasicQueries) {
  pr::ProbInterval i(0.2, 0.6);
  EXPECT_DOUBLE_EQ(i.width(), 0.4);
  EXPECT_DOUBLE_EQ(i.mid(), 0.4);
  EXPECT_FALSE(i.is_precise());
  EXPECT_TRUE(pr::ProbInterval(0.5).is_precise());
  EXPECT_TRUE(i.contains(0.3));
  EXPECT_FALSE(i.contains(0.7));
  EXPECT_EQ(pr::ProbInterval::vacuous(), pr::ProbInterval(0.0, 1.0));
}

TEST(ProbInterval, ArithmeticEndpoints) {
  pr::ProbInterval a(0.1, 0.3), b(0.2, 0.4);
  const auto s = a + b;
  EXPECT_DOUBLE_EQ(s.lo(), 0.3);
  EXPECT_DOUBLE_EQ(s.hi(), 0.7);
  const auto p = a * b;
  EXPECT_DOUBLE_EQ(p.lo(), 0.02);
  EXPECT_DOUBLE_EQ(p.hi(), 0.12);
  const auto c = a.complement();
  EXPECT_DOUBLE_EQ(c.lo(), 0.7);
  EXPECT_DOUBLE_EQ(c.hi(), 0.9);
}

TEST(ProbInterval, SumClampsAtOne) {
  pr::ProbInterval a(0.6, 0.9), b(0.5, 0.8);
  const auto s = a + b;
  EXPECT_DOUBLE_EQ(s.hi(), 1.0);
  EXPECT_DOUBLE_EQ(s.lo(), 1.0);
}

TEST(ProbInterval, IntersectAndHull) {
  pr::ProbInterval a(0.1, 0.5), b(0.4, 0.8);
  const auto i = a.intersect(b);
  EXPECT_DOUBLE_EQ(i.lo(), 0.4);
  EXPECT_DOUBLE_EQ(i.hi(), 0.5);
  const auto h = a.hull(b);
  EXPECT_DOUBLE_EQ(h.lo(), 0.1);
  EXPECT_DOUBLE_EQ(h.hi(), 0.8);
  pr::ProbInterval c(0.9, 1.0);
  EXPECT_FALSE(a.intersects(c));
  EXPECT_THROW((void)a.intersect(c), std::invalid_argument);
}

TEST(ProbInterval, IndependentOr) {
  pr::ProbInterval a(0.1, 0.2), b(0.3, 0.4);
  const auto o = a.independent_or(b);
  EXPECT_NEAR(o.lo(), 1.0 - 0.9 * 0.7, tol::kTiny);
  EXPECT_NEAR(o.hi(), 1.0 - 0.8 * 0.6, tol::kTiny);
  // Precise degenerate check matches scalar noisy-or.
  pr::ProbInterval x(0.5), y(0.5);
  EXPECT_NEAR(x.independent_or(y).mid(), 0.75, tol::kTiny);
}

TEST(ProbInterval, ComplementInvolution) {
  pr::ProbInterval a(0.25, 0.65);
  EXPECT_EQ(a.complement().complement(), a);
}

TEST(TriangularFuzzy, MembershipShape) {
  pr::TriangularFuzzy f(0.1, 0.3, 0.8);
  EXPECT_DOUBLE_EQ(f.membership(0.3), 1.0);
  EXPECT_DOUBLE_EQ(f.membership(0.1), 0.0);
  EXPECT_DOUBLE_EQ(f.membership(0.8), 0.0);
  EXPECT_DOUBLE_EQ(f.membership(0.0), 0.0);
  EXPECT_NEAR(f.membership(0.2), 0.5, tol::kTiny);
  EXPECT_NEAR(f.membership(0.55), 0.5, tol::kTiny);
  EXPECT_THROW(pr::TriangularFuzzy(0.5, 0.4, 0.6), std::invalid_argument);
}

TEST(TriangularFuzzy, AlphaCuts) {
  pr::TriangularFuzzy f(0.0, 0.5, 1.0);
  const auto [l1, h1] = f.alpha_cut(1.0);
  EXPECT_DOUBLE_EQ(l1, 0.5);
  EXPECT_DOUBLE_EQ(h1, 0.5);
  const auto [l2, h2] = f.alpha_cut(0.5);
  EXPECT_DOUBLE_EQ(l2, 0.25);
  EXPECT_DOUBLE_EQ(h2, 0.75);
  EXPECT_THROW((void)f.alpha_cut(0.0), std::invalid_argument);
  EXPECT_THROW((void)f.alpha_cut(1.5), std::invalid_argument);
}

TEST(TriangularFuzzy, CrispDegenerate) {
  const auto c = pr::TriangularFuzzy::crisp(0.4);
  EXPECT_DOUBLE_EQ(c.support_width(), 0.0);
  EXPECT_DOUBLE_EQ(c.defuzzify(), 0.4);
  EXPECT_DOUBLE_EQ(c.membership(0.4), 1.0);
}

TEST(TriangularFuzzy, GateArithmetic) {
  const auto x = pr::TriangularFuzzy(0.01, 0.02, 0.04);
  const auto y = pr::TriangularFuzzy(0.02, 0.03, 0.05);
  const auto andp = pr::TriangularFuzzy::fuzzy_and(x, y);
  EXPECT_NEAR(andp.low(), 0.0002, tol::kTiny);
  EXPECT_NEAR(andp.mode(), 0.0006, tol::kTiny);
  EXPECT_NEAR(andp.high(), 0.002, tol::kTiny);
  const auto orp = pr::TriangularFuzzy::fuzzy_or(x, y);
  EXPECT_NEAR(orp.low(), 1.0 - 0.99 * 0.98, tol::kTiny);
  EXPECT_NEAR(orp.mode(), 1.0 - 0.98 * 0.97, tol::kTiny);
  EXPECT_NEAR(orp.high(), 1.0 - 0.96 * 0.95, tol::kTiny);
}

TEST(TriangularFuzzy, OrOfCrispMatchesScalar) {
  const auto a = pr::TriangularFuzzy::crisp(0.1);
  const auto b = pr::TriangularFuzzy::crisp(0.2);
  const auto o = pr::TriangularFuzzy::fuzzy_or(a, b);
  EXPECT_NEAR(o.defuzzify(), 1.0 - 0.9 * 0.8, tol::kTiny);
  EXPECT_DOUBLE_EQ(o.support_width(), 0.0);
}

TEST(TriangularFuzzy, ComplementValidation) {
  EXPECT_THROW((void)pr::TriangularFuzzy(0.5, 1.0, 1.5).complement(),
               std::invalid_argument);
  const auto f = pr::TriangularFuzzy(0.2, 0.3, 0.5).complement();
  EXPECT_DOUBLE_EQ(f.low(), 0.5);
  EXPECT_DOUBLE_EQ(f.mode(), 0.7);
  EXPECT_DOUBLE_EQ(f.high(), 0.8);
}

TEST(TriangularFuzzy, WiderInputsGiveWiderOutputs) {
  // Imprecision propagates monotonically through gates.
  const auto narrow = pr::TriangularFuzzy(0.09, 0.10, 0.11);
  const auto wide = pr::TriangularFuzzy(0.05, 0.10, 0.20);
  const auto other = pr::TriangularFuzzy(0.01, 0.02, 0.03);
  const auto on = pr::TriangularFuzzy::fuzzy_or(narrow, other);
  const auto ow = pr::TriangularFuzzy::fuzzy_or(wide, other);
  EXPECT_LT(on.support_width(), ow.support_width());
}
