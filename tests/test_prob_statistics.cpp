// Tests for running statistics, quantiles, Wilson intervals, histograms.
#include "prob/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "prob/histogram.hpp"
#include "prob/rng.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace pr = sysuq::prob;

TEST(RunningStats, ExactSmallSample) {
  pr::RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, tol::kTiny);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyBehaviour) {
  pr::RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_THROW((void)s.min(), std::logic_error);
  EXPECT_THROW((void)s.max(), std::logic_error);
}

TEST(RunningStats, MergeEqualsSequential) {
  pr::Rng rng(123);
  pr::RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(3.0, 2.0);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), tol::kIteration);
  EXPECT_NEAR(a.variance(), whole.variance(), tol::kProbSum);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  pr::RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  pr::RunningStats c;
  c.merge(a);
  EXPECT_DOUBLE_EQ(c.mean(), mean);
  EXPECT_EQ(c.count(), 2u);
}

TEST(RunningStats, ConfidenceIntervalCoversMean) {
  // Empirical coverage of the 95% CI over repeated experiments.
  pr::Rng rng(321);
  int covered = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    pr::RunningStats s;
    for (int i = 0; i < 100; ++i) s.add(rng.gaussian(10.0, 3.0));
    const auto [lo, hi] = s.mean_confidence_interval(0.05);
    if (lo <= 10.0 && 10.0 <= hi) ++covered;
  }
  const double coverage = static_cast<double>(covered) / trials;
  EXPECT_GT(coverage, 0.90);
  EXPECT_LE(coverage, 1.0);
}

TEST(Quantile, KnownValues) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(pr::quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(pr::quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(pr::quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(pr::quantile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(pr::quantile({7.0}, 0.3), 7.0);
  EXPECT_THROW((void)pr::quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)pr::quantile({1.0}, 1.5), std::invalid_argument);
}

TEST(WilsonInterval, BasicsAndEdges) {
  const auto [lo, hi] = pr::wilson_interval(50, 100);
  EXPECT_LT(lo, 0.5);
  EXPECT_GT(hi, 0.5);
  EXPECT_GT(lo, 0.39);
  EXPECT_LT(hi, 0.61);
  // Zero successes: the lower bound is exactly zero, upper positive.
  const auto [l0, h0] = pr::wilson_interval(0, 100);
  EXPECT_DOUBLE_EQ(l0, 0.0);
  EXPECT_GT(h0, 0.0);
  EXPECT_LT(h0, 0.06);
  // All successes mirrors.
  const auto [l1, h1] = pr::wilson_interval(100, 100);
  EXPECT_DOUBLE_EQ(h1, 1.0);
  EXPECT_GT(l1, 0.94);
  EXPECT_THROW((void)pr::wilson_interval(5, 0), std::invalid_argument);
  EXPECT_THROW((void)pr::wilson_interval(5, 4), std::invalid_argument);
}

TEST(WilsonInterval, ShrinksWithN) {
  const auto [lo1, hi1] = pr::wilson_interval(8, 10);
  const auto [lo2, hi2] = pr::wilson_interval(80, 100);
  const auto [lo3, hi3] = pr::wilson_interval(800, 1000);
  EXPECT_GT(hi1 - lo1, hi2 - lo2);
  EXPECT_GT(hi2 - lo2, hi3 - lo3);
}

TEST(PearsonCorrelation, Extremes) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pr::pearson_correlation(x, y), 1.0, tol::kTiny);
  std::vector<double> yneg{10, 8, 6, 4, 2};
  EXPECT_NEAR(pr::pearson_correlation(x, yneg), -1.0, tol::kTiny);
  EXPECT_THROW((void)pr::pearson_correlation(x, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)pr::pearson_correlation({1, 1, 1}, {1, 2, 3}),
               std::invalid_argument);
}

TEST(Histogram1D, BinningAndProbabilities) {
  pr::Histogram1D h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(h.count(i), 1u);
    EXPECT_NEAR(h.probability(i), 0.1, tol::kTiny);
    EXPECT_NEAR(h.density(i), 0.1, tol::kTiny);
  }
  h.add(-1.0);
  h.add(10.0);  // hi is exclusive
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_NEAR(h.bin_center(0), 0.5, tol::kTiny);
}

TEST(Histogram1D, DistributionMatchesCounts) {
  pr::Histogram1D h(0.0, 1.0, 4);
  h.add(0.1);
  h.add(0.1);
  h.add(0.6);
  const auto d = h.distribution();
  EXPECT_NEAR(d.p(0), 2.0 / 3.0, tol::kTiny);
  EXPECT_NEAR(d.p(2), 1.0 / 3.0, tol::kTiny);
}

TEST(Histogram2D, FrameProbabilityExactCells) {
  pr::Histogram2D h(0.0, 2.0, 2, 0.0, 2.0, 2);
  h.add(0.5, 0.5);   // cell (0,0)
  h.add(1.5, 0.5);   // cell (1,0)
  h.add(1.5, 1.5);   // cell (1,1)
  h.add(1.5, 1.5);   // cell (1,1)
  EXPECT_EQ(h.total(), 4u);
  EXPECT_NEAR(h.probability(1, 1), 0.5, tol::kTiny);
  // Whole domain has probability 1.
  EXPECT_NEAR(h.frame_probability(0.0, 2.0, 0.0, 2.0), 1.0, tol::kTiny);
  // Right column only.
  EXPECT_NEAR(h.frame_probability(1.0, 2.0, 0.0, 2.0), 0.75, tol::kTiny);
  // Half of cell (0,0) in x: area-fraction weighting.
  EXPECT_NEAR(h.frame_probability(0.0, 0.5, 0.0, 1.0), 0.125, tol::kTiny);
}

TEST(Histogram2D, OutsideCounting) {
  pr::Histogram2D h(0.0, 1.0, 2, 0.0, 1.0, 2);
  h.add(2.0, 0.5);
  h.add(0.5, -0.1);
  EXPECT_EQ(h.outside(), 2u);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_THROW((void)h.probability(0, 0), std::logic_error);
}

TEST(Histogram2D, TotalVariationOfIdenticalIsZero) {
  pr::Histogram2D a(0.0, 1.0, 3, 0.0, 1.0, 3);
  pr::Histogram2D b(0.0, 1.0, 3, 0.0, 1.0, 3);
  pr::Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform();
    const double y = rng.uniform();
    a.add(x, y);
    b.add(x, y);
  }
  EXPECT_DOUBLE_EQ(a.total_variation(b), 0.0);
  // Shifted distribution has positive TV.
  pr::Histogram2D c(0.0, 1.0, 3, 0.0, 1.0, 3);
  for (int i = 0; i < 300; ++i) c.add(rng.uniform() * 0.3, rng.uniform() * 0.3);
  EXPECT_GT(a.total_variation(c), 0.3);
}

TEST(Rng, DeterministicAndSplit) {
  pr::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  // Splitting produces a decorrelated but deterministic child.
  pr::Rng p1(7), p2(7);
  pr::Rng c1 = p1.split(1);
  pr::Rng c2 = p2.split(1);
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(c1.uniform(), c2.uniform());
  pr::Rng d1 = p1.split(2);
  bool differs = false;
  for (int i = 0; i < 50; ++i) {
    if (c1.uniform() != d1.uniform()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, CategoricalValidation) {
  pr::Rng rng(1);
  EXPECT_THROW((void)rng.categorical({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)rng.categorical({-1.0, 2.0}), std::invalid_argument);
  EXPECT_EQ(rng.categorical({0.0, 5.0, 0.0}), 1u);
}

TEST(Rng, BernoulliExtremes) {
  pr::Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW((void)rng.bernoulli(-0.1), std::invalid_argument);
}
