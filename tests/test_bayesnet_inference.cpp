// Inference tests: the paper's Table I posteriors computed exactly, VE
// cross-checked against the enumeration oracle on randomized networks,
// and the sampling engines' convergence.
#include "bayesnet/inference.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "perception/table1.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace bn = sysuq::bayesnet;
namespace pr = sysuq::prob;

namespace {

// Table I network with the default repair (unknown row deficit -> none):
// unknown row becomes (0, 0, 0.2, 0.8).
bn::BayesianNetwork paper_network() {
  return sysuq::perception::table1_network();
}

// Random DAG over n binary/ternary variables where each node's parents
// are a random subset of lower-id nodes.
bn::BayesianNetwork random_network(pr::Rng& rng, std::size_t n) {
  bn::BayesianNetwork net;
  std::vector<std::size_t> cards;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t card = 2 + rng.uniform_index(2);
    cards.push_back(card);
    std::vector<std::string> states;
    for (std::size_t s = 0; s < card; ++s)
      states.push_back("s" + std::to_string(s));
    net.add_variable("v" + std::to_string(i), std::move(states));
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<bn::VariableId> parents;
    for (std::size_t j = 0; j < i; ++j) {
      if (rng.bernoulli(0.4)) parents.push_back(j);
    }
    std::size_t rows = 1;
    for (auto p : parents) rows *= cards[p];
    std::vector<pr::Categorical> cpt;
    for (std::size_t r = 0; r < rows; ++r) {
      std::vector<double> w(cards[i]);
      for (double& x : w) x = rng.uniform() + 0.05;
      cpt.push_back(pr::Categorical::normalized(std::move(w)));
    }
    net.set_cpt(i, std::move(parents), std::move(cpt));
  }
  return net;
}

}  // namespace

TEST(Inference, PaperPriorMarginalOfPerception) {
  // P(perception) from (repaired) Table I with priors (0.6, 0.3, 0.1):
  //   car:            0.6*0.9   + 0.3*0.005 + 0.1*0    = 0.5415
  //   pedestrian:     0.6*0.005 + 0.3*0.9   + 0.1*0    = 0.273
  //   car/pedestrian: 0.6*0.05  + 0.3*0.05  + 0.1*0.2  = 0.065
  //   none:           0.6*0.045 + 0.3*0.045 + 0.1*0.8  = 0.1205
  const auto net = paper_network();
  bn::VariableElimination ve(net);
  const auto m = ve.query(net.id_of("perception"));
  EXPECT_NEAR(m.p(0), 0.5415, tol::kTiny);
  EXPECT_NEAR(m.p(1), 0.273, tol::kTiny);
  EXPECT_NEAR(m.p(2), 0.065, tol::kTiny);
  EXPECT_NEAR(m.p(3), 0.1205, tol::kTiny);
}

TEST(Inference, PaperPosteriorGivenNone) {
  // P(gt | perception = none): unknown objects dominate "none" outputs
  // relative to their 10% prior — the ontological state is surfaced by
  // diagnosis. P(unknown|none) = 0.08/0.1205.
  const auto net = paper_network();
  bn::VariableElimination ve(net);
  const bn::Evidence e{{net.id_of("perception"), 3}};
  const auto post = ve.query(net.id_of("ground_truth"), e);
  EXPECT_NEAR(post.p(0), 0.027 / 0.1205, tol::kTiny);
  EXPECT_NEAR(post.p(1), 0.0135 / 0.1205, tol::kTiny);
  EXPECT_NEAR(post.p(2), 0.08 / 0.1205, tol::kTiny);
  // The unknown state is the most probable explanation of 'none'.
  EXPECT_EQ(post.argmax(), 2u);
}

TEST(Inference, PaperPosteriorGivenCarPedestrian) {
  // The car/pedestrian output is the *epistemic* indicator state.
  const auto net = paper_network();
  bn::VariableElimination ve(net);
  const bn::Evidence e{{net.id_of("perception"), 2}};
  const auto post = ve.query(net.id_of("ground_truth"), e);
  EXPECT_NEAR(post.p(0), 0.03 / 0.065, tol::kTiny);
  EXPECT_NEAR(post.p(1), 0.015 / 0.065, tol::kTiny);
  EXPECT_NEAR(post.p(2), 0.02 / 0.065, tol::kTiny);
}

TEST(Inference, EvidenceProbability) {
  const auto net = paper_network();
  bn::VariableElimination ve(net);
  EXPECT_NEAR(ve.evidence_probability({{1, 3}}), 0.1205, tol::kTiny);
  EXPECT_NEAR(ve.evidence_probability({{0, 2}, {1, 0}}), 0.0, tol::kTiny);
  EXPECT_NEAR(ve.evidence_probability({}), 1.0, tol::kTiny);
}

TEST(Inference, ZeroProbabilityEvidenceThrows) {
  // Chain a -> b -> c where state b=1 is unreachable; querying c given the
  // impossible evidence must fail loudly rather than return garbage.
  bn::BayesianNetwork net;
  const auto a = net.add_variable("a", {"0", "1"});
  const auto b = net.add_variable("b", {"0", "1"});
  const auto c = net.add_variable("c", {"0", "1"});
  net.set_cpt(a, {}, {pr::Categorical({0.5, 0.5})});
  net.set_cpt(b, {a},
              {pr::Categorical({1.0, 0.0}), pr::Categorical({1.0, 0.0})});
  net.set_cpt(c, {b},
              {pr::Categorical({0.5, 0.5}), pr::Categorical({0.5, 0.5})});
  bn::VariableElimination ve(net);
  EXPECT_THROW((void)ve.query(c, {{b, 1}}), std::domain_error);
  EXPECT_NEAR(ve.evidence_probability({{b, 1}}), 0.0, tol::kSeries);
}

TEST(Inference, QueryObservedVariableReturnsDelta) {
  const auto net = paper_network();
  bn::VariableElimination ve(net);
  const auto d = ve.query(0, {{0, 1}});
  EXPECT_DOUBLE_EQ(d.p(1), 1.0);
}

TEST(Inference, JointMatchesCptComposition) {
  const auto net = paper_network();
  bn::VariableElimination ve(net);
  const auto joint = ve.joint(0, 1);
  EXPECT_NEAR(joint.p(0, 0), 0.6 * 0.9, tol::kTiny);
  // Marginals recover prior and output distribution.
  EXPECT_NEAR(joint.marginal_x().p(0), 0.6, tol::kTiny);
  EXPECT_NEAR(joint.p(2, 3), 0.1 * 0.8, tol::kTiny);
  EXPECT_NEAR(joint.marginal_y().p(3), 0.1205, tol::kTiny);
  EXPECT_THROW((void)ve.joint(0, 0), std::invalid_argument);
  EXPECT_THROW((void)ve.joint(0, 1, {{1, 0}}), std::invalid_argument);
}

TEST(Inference, VariableEliminationMatchesEnumerationOracle) {
  // Property: on randomized DAGs, VE == brute-force enumeration for all
  // query variables and several evidence choices.
  pr::Rng rng(2024);
  for (int trial = 0; trial < 12; ++trial) {
    const auto net = random_network(rng, 5 + rng.uniform_index(2));
    bn::VariableElimination ve(net);

    // No evidence.
    for (bn::VariableId q = 0; q < net.size(); ++q) {
      const auto exact = bn::enumerate_posterior(net, q);
      const auto fast = ve.query(q);
      for (std::size_t s = 0; s < exact.size(); ++s)
        ASSERT_NEAR(fast.p(s), exact.p(s), tol::kProbSum) << "trial " << trial;
    }

    // One random evidence variable.
    const bn::VariableId ev = rng.uniform_index(net.size());
    const std::size_t state = rng.uniform_index(net.variable(ev).cardinality());
    if (bn::enumerate_evidence_probability(net, {{ev, state}}) > tol::kProbSum) {
      for (bn::VariableId q = 0; q < net.size(); ++q) {
        if (q == ev) continue;
        const auto exact = bn::enumerate_posterior(net, q, {{ev, state}});
        const auto fast = ve.query(q, {{ev, state}});
        for (std::size_t s = 0; s < exact.size(); ++s)
          ASSERT_NEAR(fast.p(s), exact.p(s), tol::kProbSum) << "trial " << trial;
      }
      // Evidence probability agrees too.
      ASSERT_NEAR(ve.evidence_probability({{ev, state}}),
                  bn::enumerate_evidence_probability(net, {{ev, state}}), tol::kProbSum);
    }
  }
}

TEST(Inference, LikelihoodWeightingConverges) {
  const auto net = paper_network();
  bn::VariableElimination ve(net);
  const bn::Evidence e{{1, 3}};
  const auto exact = ve.query(0, e);
  pr::Rng rng(314);
  const auto approx = bn::likelihood_weighting(net, 0, e, 200000, rng);
  for (std::size_t s = 0; s < exact.size(); ++s)
    EXPECT_NEAR(approx.p(s), exact.p(s), 0.01) << s;
}

TEST(Inference, RejectionSamplingConvergesAndReportsAcceptance) {
  const auto net = paper_network();
  bn::VariableElimination ve(net);
  const bn::Evidence e{{1, 3}};
  const auto exact = ve.query(0, e);
  pr::Rng rng(2718);
  std::size_t accepted = 0;
  const auto approx = bn::rejection_sampling(net, 0, e, 300000, rng, &accepted);
  // Acceptance rate should be near P(e) = 0.1205.
  EXPECT_NEAR(static_cast<double>(accepted) / 300000.0, 0.1205, 0.005);
  for (std::size_t s = 0; s < exact.size(); ++s)
    EXPECT_NEAR(approx.p(s), exact.p(s), 0.02) << s;
}

TEST(Inference, SamplersRejectZeroSamples) {
  const auto net = paper_network();
  pr::Rng rng(1);
  EXPECT_THROW((void)bn::likelihood_weighting(net, 0, {}, 0, rng),
               std::invalid_argument);
  EXPECT_THROW((void)bn::rejection_sampling(net, 0, {}, 0, rng),
               std::invalid_argument);
}

TEST(Inference, RejectionSamplingImpossibleEvidenceThrows) {
  const auto net = paper_network();
  pr::Rng rng(9);
  const bn::Evidence impossible{{0, 2}, {1, 0}};
  EXPECT_THROW((void)bn::rejection_sampling(net, 0, impossible, 1000, rng),
               std::domain_error);
}

TEST(Inference, ConditionalEntropySurpriseOnPaperNetwork) {
  // The conditional entropy H(ground_truth | perception) quantifies the
  // residual uncertainty after observing the perception output — the
  // paper's surprise-factor formalization applied to its own example.
  const auto net = paper_network();
  bn::VariableElimination ve(net);
  const auto joint = ve.joint(0, 1);
  const double h_prior = joint.marginal_x().entropy();
  const double h_post = pr::conditional_entropy_x_given_y(joint);
  EXPECT_GT(h_prior, h_post);           // perception is informative
  EXPECT_GT(pr::mutual_information(joint), 0.4);
  EXPECT_LT(h_post, 0.5);
}

TEST(Inference, MpeOnPaperNetwork) {
  const auto net = paper_network();
  // Unconditional MPE: the single most likely world is (car, car):
  // 0.6 * 0.9 = 0.54.
  const auto mpe = bn::enumerate_mpe(net);
  EXPECT_EQ(mpe.assignment[0], 0u);
  EXPECT_EQ(mpe.assignment[1], 0u);
  EXPECT_NEAR(mpe.probability, 0.54, tol::kTiny);
  // Given perception = none, the MPE ground truth is unknown:
  // P(unknown, none) = 0.08; conditional = 0.08 / 0.1205.
  const auto diag = bn::enumerate_mpe(net, {{1, 3}});
  EXPECT_EQ(diag.assignment[0], 2u);
  EXPECT_NEAR(diag.probability, 0.08 / 0.1205, tol::kTiny);
}

TEST(Inference, MpeImpossibleEvidenceThrows) {
  const auto net = paper_network();
  // gt = unknown AND perception = car has probability zero.
  EXPECT_THROW((void)bn::enumerate_mpe(net, {{0, 2}, {1, 0}}),
               std::domain_error);
}

TEST(Inference, MpeDiffersFromMarginalModes) {
  // Classic MPE lesson: the jointly most probable assignment need not be
  // the product of marginal argmaxes. x uniform-ish; y anti-correlated.
  bn::BayesianNetwork net;
  const auto x = net.add_variable("x", {"0", "1", "2"});
  const auto y = net.add_variable("y", {"0", "1"});
  net.set_cpt(x, {}, {pr::Categorical({0.36, 0.34, 0.30})});
  net.set_cpt(y, {x},
              {pr::Categorical({0.1, 0.9}), pr::Categorical({0.9, 0.1}),
               pr::Categorical({0.9, 0.1})});
  const auto mpe = bn::enumerate_mpe(net);
  // Joint maxima: (0,1): 0.324; (1,0): 0.306; (2,0): 0.27 -> MPE (0,1).
  EXPECT_EQ(mpe.assignment[x], 0u);
  EXPECT_EQ(mpe.assignment[y], 1u);
  // Marginal mode of y is 0 (P(y=0) = 0.036 + 0.306 + 0.27 = 0.612).
  bn::VariableElimination ve(net);
  EXPECT_EQ(ve.query(y).argmax(), 0u);
}
