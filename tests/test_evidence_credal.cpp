// Credal propagation tests: sharp interval bounds cross-checked against
// Monte-Carlo sampling of the credal sets, plus the evidential-network
// (powerset-state) mapping on the paper's Table I example.
#include "evidence/credal.hpp"

#include <gtest/gtest.h>

#include "bayesnet/inference.hpp"
#include "evidence/evidential_network.hpp"
#include "perception/table1.hpp"
#include "prob/rng.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace ev = sysuq::evidence;
namespace bn = sysuq::bayesnet;
namespace pr = sysuq::prob;

namespace {

// Draws a random categorical inside a credal set (rejection from the
// center-perturbed simplex; falls back to center when tight).
pr::Categorical sample_inside(const ev::IntervalDistribution& d, pr::Rng& rng) {
  for (int tries = 0; tries < 200; ++tries) {
    std::vector<double> w(d.size());
    for (std::size_t i = 0; i < d.size(); ++i)
      w[i] = rng.uniform(d.bound(i).lo(), d.bound(i).hi()) + tol::kTiny;
    auto c = pr::Categorical::normalized(std::move(w));
    if (d.contains(c)) return c;
  }
  return d.center();
}

}  // namespace

TEST(IntervalDistribution, ConstructionValidation) {
  using PI = pr::ProbInterval;
  EXPECT_NO_THROW(ev::IntervalDistribution({PI(0.2, 0.5), PI(0.3, 0.9)}));
  // Empty credal set: lower bounds exceed 1.
  EXPECT_THROW(ev::IntervalDistribution({PI(0.6, 0.8), PI(0.6, 0.8)}),
               std::invalid_argument);
  // Empty credal set: upper bounds below 1.
  EXPECT_THROW(ev::IntervalDistribution({PI(0.1, 0.3), PI(0.1, 0.3)}),
               std::invalid_argument);
  EXPECT_THROW(ev::IntervalDistribution({PI(0.5, 0.5)}), std::invalid_argument);
}

TEST(IntervalDistribution, PreciseAndVacuous) {
  const auto p = ev::IntervalDistribution::precise(pr::Categorical({0.3, 0.7}));
  EXPECT_DOUBLE_EQ(p.max_width(), 0.0);
  EXPECT_TRUE(p.contains(pr::Categorical({0.3, 0.7})));
  EXPECT_FALSE(p.contains(pr::Categorical({0.4, 0.6})));
  const auto v = ev::IntervalDistribution::vacuous(3);
  EXPECT_DOUBLE_EQ(v.max_width(), 1.0);
  EXPECT_TRUE(v.contains(pr::Categorical({1.0, 0.0, 0.0})));
}

TEST(IntervalDistribution, WidenedContainsPoint) {
  const pr::Categorical p({0.6, 0.3, 0.1});
  const auto w = ev::IntervalDistribution::widened(p, 0.05);
  EXPECT_TRUE(w.contains(p));
  EXPECT_NEAR(w.mean_width(), 0.1, 0.02);  // 0.1 state clamps at 0.05 low
  EXPECT_THROW((void)ev::IntervalDistribution::widened(p, -0.1),
               std::invalid_argument);
}

TEST(IntervalDistribution, ExpectationBoundsAreSharpAndOrdered) {
  using PI = pr::ProbInterval;
  const ev::IntervalDistribution d({PI(0.1, 0.5), PI(0.2, 0.6), PI(0.1, 0.4)});
  const std::vector<double> c{1.0, 2.0, 3.0};
  const double lo = d.lower_expectation(c);
  const double hi = d.upper_expectation(c);
  EXPECT_LT(lo, hi);
  // Manual optimum: maximize puts as much mass as possible on state 2
  // (hi 0.4), then state 1: p = (0.1, 0.5, 0.4) -> 1*0.1+2*0.5+3*0.4 = 2.3.
  EXPECT_NEAR(hi, 2.3, tol::kTiny);
  // Minimize: p = (0.5, 0.4, 0.1) -> 0.5+0.8+0.3 = 1.6.
  EXPECT_NEAR(lo, 1.6, tol::kTiny);
  // Monte-Carlo containment.
  pr::Rng rng(42);
  for (int t = 0; t < 500; ++t) {
    const auto p = sample_inside(d, rng);
    double e = 0.0;
    for (std::size_t i = 0; i < 3; ++i) e += p.p(i) * c[i];
    EXPECT_GE(e, lo - tol::kProbSum);
    EXPECT_LE(e, hi + tol::kProbSum);
  }
}

TEST(CredalChain, PreciseInputsReproduceExactInference) {
  // With degenerate intervals the credal machinery must agree with exact
  // BN inference on the paper network.
  const auto net = sysuq::perception::table1_network();
  const auto prior = ev::IntervalDistribution::precise(net.cpt_rows(0)[0]);
  const auto cpt = ev::IntervalCpt::precise(net.cpt_rows(1));

  const auto marg = ev::credal_chain_marginal(prior, cpt);
  bn::VariableElimination ve(net);
  const auto exact = ve.query(1);
  for (std::size_t y = 0; y < 4; ++y) {
    EXPECT_NEAR(marg.bound(y).lo(), exact.p(y), tol::kIteration) << y;
    EXPECT_NEAR(marg.bound(y).hi(), exact.p(y), tol::kIteration) << y;
  }

  const auto post = ev::credal_chain_posterior(prior, cpt, 3);
  const auto exact_post = ve.query(0, {{1, 3}});
  for (std::size_t x = 0; x < 3; ++x) {
    EXPECT_NEAR(post.bound(x).lo(), exact_post.p(x), tol::kProbSum) << x;
    EXPECT_NEAR(post.bound(x).hi(), exact_post.p(x), tol::kProbSum) << x;
  }
}

TEST(CredalChain, BoundsContainAllSampledModels) {
  // Property: for interval-widened Table I, every sampled (prior, CPT)
  // inside the credal sets yields marginals and posteriors within the
  // computed bounds.
  const auto net = sysuq::perception::table1_network();
  const double eps = 0.04;
  const auto prior = ev::IntervalDistribution::widened(net.cpt_rows(0)[0], eps);
  std::vector<ev::IntervalDistribution> rows;
  for (const auto& r : net.cpt_rows(1))
    rows.push_back(ev::IntervalDistribution::widened(r, eps));
  const ev::IntervalCpt cpt(rows);

  const auto marg = ev::credal_chain_marginal(prior, cpt);
  const auto post = ev::credal_chain_posterior(prior, cpt, 3);

  pr::Rng rng(99);
  for (int t = 0; t < 300; ++t) {
    const auto p = sample_inside(prior, rng);
    std::vector<pr::Categorical> qrows;
    for (std::size_t x = 0; x < 3; ++x) qrows.push_back(sample_inside(rows[x], rng));

    // Point marginal.
    for (std::size_t y = 0; y < 4; ++y) {
      double py = 0.0;
      for (std::size_t x = 0; x < 3; ++x) py += p.p(x) * qrows[x].p(y);
      EXPECT_GE(py, marg.bound(y).lo() - tol::kProbSum);
      EXPECT_LE(py, marg.bound(y).hi() + tol::kProbSum);
    }
    // Point posterior given perception = none.
    double den = 0.0;
    for (std::size_t x = 0; x < 3; ++x) den += p.p(x) * qrows[x].p(3);
    if (den > tol::kTiny) {
      for (std::size_t x = 0; x < 3; ++x) {
        const double px = p.p(x) * qrows[x].p(3) / den;
        EXPECT_GE(px, post.bound(x).lo() - 1e-7);
        EXPECT_LE(px, post.bound(x).hi() + 1e-7);
      }
    }
  }
}

TEST(CredalChain, WiderInputsWidenOutputs) {
  const auto net = sysuq::perception::table1_network();
  const auto prior_pt = net.cpt_rows(0)[0];
  const auto& cpt_rows = net.cpt_rows(1);
  double prev_width = -1.0;
  for (double eps : {0.0, 0.02, 0.05, 0.10}) {
    const auto prior = ev::IntervalDistribution::widened(prior_pt, eps);
    std::vector<ev::IntervalDistribution> rows;
    for (const auto& r : cpt_rows)
      rows.push_back(ev::IntervalDistribution::widened(r, eps));
    const auto marg = ev::credal_chain_marginal(prior, ev::IntervalCpt(rows));
    EXPECT_GT(marg.mean_width(), prev_width);
    prev_width = marg.mean_width();
  }
}

TEST(CredalChain, ImpossibleEvidenceThrows) {
  using PI = pr::ProbInterval;
  const ev::IntervalDistribution prior({PI(0.5), PI(0.5)});
  // Child state 1 has probability exactly zero under both rows.
  const ev::IntervalCpt cpt({ev::IntervalDistribution({PI(1.0), PI(0.0)}),
                             ev::IntervalDistribution({PI(1.0), PI(0.0)})});
  EXPECT_THROW((void)ev::credal_chain_posterior(prior, cpt, 1),
               std::domain_error);
  EXPECT_THROW((void)ev::credal_chain_posterior(prior, cpt, 7),
               std::out_of_range);
}

TEST(EvidentialNetwork, PowersetVariableLayout) {
  ev::Frame f({"car", "pedestrian", "unknown"});
  const auto var = ev::powerset_variable("gt_ds", f);
  EXPECT_EQ(var.cardinality(), 7u);
  EXPECT_EQ(var.state_name(0), "{car}");
  EXPECT_EQ(var.state_name(2), "{car, pedestrian}");
  EXPECT_EQ(var.state_name(6), "{car, pedestrian, unknown}");
  EXPECT_EQ(ev::powerset_state_index(f, 0b011), 2u);
  EXPECT_THROW((void)ev::powerset_state_index(f, 0), std::invalid_argument);
}

TEST(EvidentialNetwork, MassCategoricalRoundTrip) {
  ev::Frame f({"a", "b", "c"});
  const ev::MassFunction m(
      f, {{f.singleton("a"), 0.5}, {f.make_set({"a", "b"}), 0.3},
          {f.theta(), 0.2}});
  const auto c = ev::mass_to_categorical(m);
  const auto back = ev::categorical_to_mass(f, c);
  for (const ev::FocalSet s : f.all_nonempty_subsets())
    EXPECT_NEAR(back.mass(s), m.mass(s), tol::kTiny);
}

TEST(EvidentialNetwork, TableOneWithIgnoranceStates) {
  // Simon et al. construction on the paper's example: the ground-truth
  // frame {car, pedestrian, unknown} becomes a 7-state powerset node. A
  // DS prior putting 5% ignorance mass on Theta propagates to wider
  // belief/plausibility intervals downstream.
  ev::Frame f({"car", "pedestrian", "unknown"});
  bn::BayesianNetwork net;
  const auto gt = net.add_variable(ev::powerset_variable("gt_ds", f));

  // DS prior: 95% of the Sec. V priors, 5% total ignorance.
  const ev::MassFunction prior_mass(f, {{f.singleton("car"), 0.57},
                                        {f.singleton("pedestrian"), 0.285},
                                        {f.singleton("unknown"), 0.095},
                                        {f.theta(), 0.05}});
  net.set_cpt(gt, {}, {ev::mass_to_categorical(prior_mass)});

  bn::VariableElimination ve(net);
  const auto marg = ve.query(gt);
  const auto iv = ev::belief_plausibility(f, marg, f.singleton("car"));
  EXPECT_NEAR(iv.lo(), 0.57, tol::kTiny);         // Bel
  EXPECT_NEAR(iv.hi(), 0.57 + 0.05, tol::kTiny);  // Pl includes the ignorance
  const auto iv_cp =
      ev::belief_plausibility(f, marg, f.make_set({"car", "pedestrian"}));
  EXPECT_NEAR(iv_cp.lo(), 0.855, tol::kTiny);
  EXPECT_NEAR(iv_cp.hi(), 0.905, tol::kTiny);
}
