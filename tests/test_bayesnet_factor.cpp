// Factor algebra tests: shape validation, product/marginalize/reduce
// semantics, and algebraic properties on randomized factors.
#include "bayesnet/factor.hpp"

#include <gtest/gtest.h>

#include "prob/rng.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace bn = sysuq::bayesnet;
namespace pr = sysuq::prob;

namespace {

bn::Factor random_factor(pr::Rng& rng, std::vector<bn::VariableId> scope,
                         std::vector<std::size_t> cards) {
  std::size_t n = 1;
  for (std::size_t c : cards) n *= c;
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform() + 0.01;
  return bn::Factor(std::move(scope), std::move(cards), std::move(v));
}

}  // namespace

TEST(Factor, ConstructionValidation) {
  EXPECT_NO_THROW(bn::Factor({0, 2}, {2, 3}, std::vector<double>(6, 0.1)));
  // Unsorted scope rejected.
  EXPECT_THROW(bn::Factor({2, 0}, {3, 2}, std::vector<double>(6, 0.1)),
               std::invalid_argument);
  // Duplicate scope rejected.
  EXPECT_THROW(bn::Factor({1, 1}, {2, 2}, std::vector<double>(4, 0.1)),
               std::invalid_argument);
  // Size mismatch rejected.
  EXPECT_THROW(bn::Factor({0}, {2}, std::vector<double>(3, 0.1)),
               std::invalid_argument);
  // Negative values rejected.
  EXPECT_THROW(bn::Factor({0}, {2}, {0.5, -0.5}), std::invalid_argument);
}

TEST(Factor, UnitIsMultiplicativeIdentity) {
  pr::Rng rng(1);
  const auto f = random_factor(rng, {0, 1}, {2, 3});
  const auto g = f.product(bn::Factor::unit());
  EXPECT_EQ(g.scope(), f.scope());
  for (std::size_t i = 0; i < f.size(); ++i)
    EXPECT_DOUBLE_EQ(g.values()[i], f.values()[i]);
  const auto h = bn::Factor::unit().product(f);
  for (std::size_t i = 0; i < f.size(); ++i)
    EXPECT_DOUBLE_EQ(h.values()[i], f.values()[i]);
}

TEST(Factor, AtIndexing) {
  // Last scope variable fastest: values ordered (x0y0, x0y1, x0y2, x1y0...).
  bn::Factor f({0, 1}, {2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_DOUBLE_EQ(f.at({0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(f.at({0, 2}), 3.0);
  EXPECT_DOUBLE_EQ(f.at({1, 0}), 4.0);
  EXPECT_DOUBLE_EQ(f.at({1, 2}), 6.0);
  EXPECT_THROW((void)f.at({2, 0}), std::out_of_range);
  EXPECT_THROW((void)f.at({0}), std::invalid_argument);
}

TEST(Factor, ProductDisjointScopes) {
  bn::Factor a({0}, {2}, {2.0, 3.0});
  bn::Factor b({1}, {2}, {5.0, 7.0});
  const auto p = a.product(b);
  ASSERT_EQ(p.scope(), (std::vector<bn::VariableId>{0, 1}));
  EXPECT_DOUBLE_EQ(p.at({0, 0}), 10.0);
  EXPECT_DOUBLE_EQ(p.at({0, 1}), 14.0);
  EXPECT_DOUBLE_EQ(p.at({1, 0}), 15.0);
  EXPECT_DOUBLE_EQ(p.at({1, 1}), 21.0);
}

TEST(Factor, ProductSharedVariable) {
  bn::Factor a({0, 1}, {2, 2}, {1, 2, 3, 4});
  bn::Factor b({1, 2}, {2, 2}, {10, 20, 30, 40});
  const auto p = a.product(b);
  ASSERT_EQ(p.scope(), (std::vector<bn::VariableId>{0, 1, 2}));
  // p(x0, y0, z0) = a(x0,y0) * b(y0,z0) = 1 * 10
  EXPECT_DOUBLE_EQ(p.at({0, 0, 0}), 10.0);
  // p(x0, y1, z1) = a(x0,y1) * b(y1,z1) = 2 * 40
  EXPECT_DOUBLE_EQ(p.at({0, 1, 1}), 80.0);
  // p(x1, y1, z0) = 4 * 30
  EXPECT_DOUBLE_EQ(p.at({1, 1, 0}), 120.0);
}

TEST(Factor, ProductCardinalityMismatchThrows) {
  bn::Factor a({0}, {2}, {1, 2});
  bn::Factor b({0}, {3}, {1, 2, 3});
  EXPECT_THROW((void)a.product(b), std::invalid_argument);
}

TEST(Factor, ProductCommutes) {
  pr::Rng rng(2);
  for (int t = 0; t < 20; ++t) {
    const auto a = random_factor(rng, {0, 2}, {2, 3});
    const auto b = random_factor(rng, {1, 2}, {4, 3});
    const auto ab = a.product(b);
    const auto ba = b.product(a);
    ASSERT_EQ(ab.scope(), ba.scope());
    for (std::size_t i = 0; i < ab.size(); ++i)
      EXPECT_NEAR(ab.values()[i], ba.values()[i], tol::kTiny);
  }
}

TEST(Factor, ProductAssociates) {
  pr::Rng rng(3);
  const auto a = random_factor(rng, {0}, {2});
  const auto b = random_factor(rng, {0, 1}, {2, 3});
  const auto c = random_factor(rng, {1, 2}, {3, 2});
  const auto left = a.product(b).product(c);
  const auto right = a.product(b.product(c));
  ASSERT_EQ(left.scope(), right.scope());
  for (std::size_t i = 0; i < left.size(); ++i)
    EXPECT_NEAR(left.values()[i], right.values()[i], tol::kTiny);
}

TEST(Factor, MarginalizeSumsOut) {
  bn::Factor f({0, 1}, {2, 3}, {1, 2, 3, 4, 5, 6});
  const auto m = f.marginalize(1);
  ASSERT_EQ(m.scope(), (std::vector<bn::VariableId>{0}));
  EXPECT_DOUBLE_EQ(m.at({0}), 6.0);
  EXPECT_DOUBLE_EQ(m.at({1}), 15.0);
  const auto m2 = f.marginalize(0);
  EXPECT_DOUBLE_EQ(m2.at({0}), 5.0);
  EXPECT_DOUBLE_EQ(m2.at({2}), 9.0);
  EXPECT_THROW((void)f.marginalize(5), std::invalid_argument);
}

TEST(Factor, MarginalizationOrderIrrelevant) {
  pr::Rng rng(4);
  const auto f = random_factor(rng, {0, 1, 2}, {2, 3, 2});
  const auto a = f.marginalize(0).marginalize(2);
  const auto b = f.marginalize(2).marginalize(0);
  ASSERT_EQ(a.scope(), b.scope());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(a.values()[i], b.values()[i], tol::kTiny);
}

TEST(Factor, MarginalizePreservesTotal) {
  pr::Rng rng(5);
  const auto f = random_factor(rng, {1, 3, 7}, {3, 2, 4});
  EXPECT_NEAR(f.marginalize(3).total(), f.total(), tol::kIteration);
}

TEST(Factor, ReduceSelectsSlice) {
  bn::Factor f({0, 1}, {2, 3}, {1, 2, 3, 4, 5, 6});
  const auto r = f.reduce(0, 1);
  ASSERT_EQ(r.scope(), (std::vector<bn::VariableId>{1}));
  EXPECT_DOUBLE_EQ(r.at({0}), 4.0);
  EXPECT_DOUBLE_EQ(r.at({2}), 6.0);
  EXPECT_THROW((void)f.reduce(0, 2), std::out_of_range);
  EXPECT_THROW((void)f.reduce(9, 0), std::invalid_argument);
}

TEST(Factor, ReduceThenMarginalizeCommutesWithProduct) {
  // (a * b) reduced == a_reduced * b_reduced when both contain the var.
  pr::Rng rng(6);
  const auto a = random_factor(rng, {0, 1}, {2, 3});
  const auto b = random_factor(rng, {1, 2}, {3, 2});
  const auto lhs = a.product(b).reduce(1, 2);
  const auto rhs = a.reduce(1, 2).product(b.reduce(1, 2));
  ASSERT_EQ(lhs.scope(), rhs.scope());
  for (std::size_t i = 0; i < lhs.size(); ++i)
    EXPECT_NEAR(lhs.values()[i], rhs.values()[i], tol::kTiny);
}

TEST(Factor, NormalizedSumsToOne) {
  bn::Factor f({0}, {4}, {1, 2, 3, 4});
  const auto n = f.normalized();
  EXPECT_NEAR(n.total(), 1.0, tol::kTiny);
  EXPECT_DOUBLE_EQ(n.at({3}), 0.4);
  bn::Factor zero({0}, {2}, {0.0, 0.0});
  EXPECT_THROW((void)zero.normalized(), std::domain_error);
}
