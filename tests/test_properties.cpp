// Parameterized property sweeps across modules: each suite runs the same
// invariant over many seeded random instances (TEST_P /
// INSTANTIATE_TEST_SUITE_P), catching shape bugs single examples miss.
#include <gtest/gtest.h>

#include <cmath>

#include "bayesnet/inference.hpp"
#include "bayesnet/loopy_bp.hpp"
#include "bayesnet/serialize.hpp"
#include "core/tolerance.hpp"
#include "evidence/credal.hpp"
#include "evidence/mass.hpp"
#include "evidence/subjective.hpp"
#include "fta/analysis.hpp"
#include "fta/dynamic.hpp"
#include "fta/fta_to_bn.hpp"
#include "markov/dtmc.hpp"
#include "prob/rng.hpp"

namespace tol = sysuq::tolerance;

using namespace sysuq;

// ---------------------------------------------------------------------
// DS theory: randomized algebraic invariants.
// ---------------------------------------------------------------------

class DsProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  evidence::MassFunction random_mass(prob::Rng& rng, const evidence::Frame& f,
                                     std::size_t focal) {
    std::map<evidence::FocalSet, double> m;
    for (std::size_t i = 0; i < focal; ++i)
      m[1 + rng.uniform_index(f.theta())] += rng.uniform() + 0.02;
    double total = 0.0;
    for (auto& [s, v] : m) total += v;
    for (auto& [s, v] : m) v /= total;
    return {f, std::move(m)};
  }
};

TEST_P(DsProperty, MoebiusInversionIsExactInverse) {
  prob::Rng rng(GetParam());
  const evidence::Frame f({"w", "x", "y", "z"});
  const auto m = random_mass(rng, f, 6);
  const auto back = evidence::mass_from_belief(
      f, [&](evidence::FocalSet s) { return m.belief(s); });
  for (const auto s : f.all_nonempty_subsets())
    ASSERT_NEAR(back.mass(s), m.mass(s), tol::kIteration);
}

TEST_P(DsProperty, DempsterOnBayesianMassesIsBayesRule) {
  // Combining two Bayesian mass functions with Dempster's rule equals
  // pointwise-product renormalization — Bayes' rule.
  prob::Rng rng(GetParam());
  const evidence::Frame f({"a", "b", "c"});
  std::vector<double> w1(3), w2(3);
  for (auto& v : w1) v = rng.uniform() + 0.05;
  for (auto& v : w2) v = rng.uniform() + 0.05;
  const auto p1 = prob::Categorical::normalized(w1);
  const auto p2 = prob::Categorical::normalized(w2);
  const auto fused = evidence::dempster_combine(
      evidence::MassFunction::bayesian(f, p1),
      evidence::MassFunction::bayesian(f, p2));
  std::vector<double> prod(3);
  for (std::size_t i = 0; i < 3; ++i) prod[i] = p1.p(i) * p2.p(i);
  const auto bayes = prob::Categorical::normalized(prod);
  for (std::size_t i = 0; i < 3; ++i)
    ASSERT_NEAR(fused.mass(f.singleton(i)), bayes.p(i), tol::kTiny);
}

TEST_P(DsProperty, PignisticWithinBeliefPlausibility) {
  prob::Rng rng(GetParam());
  const evidence::Frame f({"a", "b", "c", "d"});
  const auto m = random_mass(rng, f, 5);
  const auto pig = m.pignistic();
  for (const auto s : f.all_nonempty_subsets()) {
    double mass = 0.0;
    for (std::size_t i = 0; i < f.size(); ++i) {
      if ((s >> i) & 1u) mass += pig.p(i);
    }
    ASSERT_GE(mass + tol::kTiny, m.belief(s));
    ASSERT_LE(mass - tol::kTiny, m.plausibility(s));
  }
}

TEST_P(DsProperty, DiscountingIsMonotoneInAlpha) {
  prob::Rng rng(GetParam());
  const evidence::Frame f({"a", "b", "c"});
  const auto m = random_mass(rng, f, 4);
  double prev_width = -1.0;
  for (const double alpha : {0.0, 0.2, 0.5, 0.9}) {
    const double width = m.discounted(alpha).belief_interval(f.singleton(0)).width();
    ASSERT_GE(width + tol::kTiny, prev_width);
    prev_width = width;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DsProperty,
                         ::testing::Values(1, 7, 21, 99, 1234, 5150, 90210));

// ---------------------------------------------------------------------
// FTA <-> BN equivalence on randomized coherent trees.
// ---------------------------------------------------------------------

class FtaBnProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FtaBnProperty, CompiledNetworkMatchesExactProbability) {
  prob::Rng rng(GetParam());
  fta::FaultTree t;
  std::vector<fta::NodeId> pool;
  const std::size_t nb = 3 + rng.uniform_index(3);
  for (std::size_t i = 0; i < nb; ++i) {
    pool.push_back(
        t.add_basic_event("e" + std::to_string(i), rng.uniform(0.01, 0.4)));
  }
  for (std::size_t g = 0; g < 3; ++g) {
    std::vector<fta::NodeId> ch;
    for (int c = 0; c < 2 + static_cast<int>(rng.uniform_index(2)); ++c)
      ch.push_back(pool[rng.uniform_index(pool.size())]);
    std::sort(ch.begin(), ch.end());
    ch.erase(std::unique(ch.begin(), ch.end()), ch.end());
    if (ch.size() < 2) continue;
    const auto type =
        rng.bernoulli(0.5) ? fta::GateType::kAnd : fta::GateType::kOr;
    pool.push_back(t.add_gate("g" + std::to_string(g), type, std::move(ch)));
  }
  t.set_top(pool.back());
  if (t.is_basic_event(pool.back())) GTEST_SKIP();

  const double exact = fta::exact_top_probability(t);
  const auto compiled = fta::compile_to_bayesnet(t);
  bayesnet::VariableElimination ve(compiled.network);
  ASSERT_NEAR(ve.query(compiled.top).p(1), exact, tol::kIteration);

  // Serialization round trip preserves inference on the compiled net.
  const auto back = bayesnet::from_text(bayesnet::to_text(compiled.network));
  bayesnet::VariableElimination ve2(back);
  ASSERT_NEAR(ve2.query(compiled.top).p(1), exact, tol::kIteration);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtaBnProperty,
                         ::testing::Values(3, 17, 23, 47, 91, 133, 777, 4096));

// ---------------------------------------------------------------------
// Loopy BP: the certified interval always contains the exact posterior.
// ---------------------------------------------------------------------

class LoopyBpProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LoopyBpProperty, CertifiedIntervalContainsExactPosterior) {
  // Random feasible networks (strictly positive CPTs, so P(e) > 0 for
  // every assignment), mixing trees and loopy structures: whatever the
  // graph shape and whether or not BP converged, every certified
  // interval must contain the exact VE posterior and BP's own point.
  prob::Rng rng(GetParam());
  for (int round = 0; round < 4; ++round) {
    const std::size_t n = 5 + rng.uniform_index(4);  // 5..8 variables
    bayesnet::BayesianNetwork net;
    std::vector<std::size_t> cards;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t card = 2 + rng.uniform_index(3);  // 2..4 states
      cards.push_back(card);
      std::vector<std::string> states;
      for (std::size_t s = 0; s < card; ++s)
        states.push_back("s" + std::to_string(s));
      net.add_variable("v" + std::to_string(i), std::move(states));
    }
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<bayesnet::VariableId> parents;
      for (std::size_t j = 0; j < i && parents.size() < 2; ++j)
        if (rng.bernoulli(0.4)) parents.push_back(j);
      std::size_t rows = 1;
      for (const auto p : parents) rows *= cards[p];
      std::vector<prob::Categorical> cpt;
      for (std::size_t r = 0; r < rows; ++r) {
        std::vector<double> w(cards[i]);
        for (double& x : w) x = rng.uniform() + 0.05;
        cpt.push_back(prob::Categorical::normalized(std::move(w)));
      }
      net.set_cpt(i, std::move(parents), std::move(cpt));
    }
    bayesnet::Evidence ev;
    const std::size_t observed = rng.uniform_index(3);  // 0..2 observed
    for (std::size_t k = 0; k < observed; ++k) {
      const bayesnet::VariableId v = rng.uniform_index(n);
      ev[v] = rng.uniform_index(cards[v]);
    }

    bayesnet::VariableElimination ve(net);
    const bayesnet::LoopyBP bp(net, ev);
    for (bayesnet::VariableId q = 0; q < n; ++q) {
      if (ev.contains(q)) continue;
      const auto& bounded = bp.query(q);
      const auto exact = ve.query(q, ev);
      EXPECT_TRUE(bounded.contains(exact.probs()))
          << "round " << round << " var " << q
          << " width " << bounded.width();
      EXPECT_TRUE(bounded.contains(bounded.point.probs()))
          << "round " << round << " var " << q;
      for (std::size_t s = 0; s < bounded.lo.size(); ++s) {
        EXPECT_GE(bounded.lo[s], 0.0);
        EXPECT_LE(bounded.hi[s], 1.0);
        EXPECT_LE(bounded.lo[s], bounded.hi[s] + tolerance::kTiny);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoopyBpProperty,
                         ::testing::Values(1, 7, 21, 99, 1234, 5150, 90210));

// ---------------------------------------------------------------------
// Credal chain: sharpness — the bounds are attained, not just valid.
// ---------------------------------------------------------------------

class CredalProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CredalProperty, MarginalBoundsAreSharp) {
  prob::Rng rng(GetParam());
  // Random point model, widened by random eps.
  std::vector<double> pw(3);
  for (auto& v : pw) v = rng.uniform() + 0.1;
  const auto prior_pt = prob::Categorical::normalized(pw);
  std::vector<prob::Categorical> rows_pt;
  for (int r = 0; r < 3; ++r) {
    std::vector<double> w(4);
    for (auto& v : w) v = rng.uniform() + 0.1;
    rows_pt.push_back(prob::Categorical::normalized(w));
  }
  const double eps = rng.uniform(0.01, 0.08);
  const auto prior = evidence::IntervalDistribution::widened(prior_pt, eps);
  std::vector<evidence::IntervalDistribution> rows;
  for (const auto& r : rows_pt)
    rows.push_back(evidence::IntervalDistribution::widened(r, eps));
  const evidence::IntervalCpt cpt(rows);
  const auto marg = evidence::credal_chain_marginal(prior, cpt);

  // Randomized search should get close to each bound (sharpness within
  // a modest search tolerance).
  for (std::size_t y = 0; y < 4; ++y) {
    double best_lo = 1.0, best_hi = 0.0;
    for (int s = 0; s < 4000; ++s) {
      std::vector<double> p(3);
      for (std::size_t x = 0; x < 3; ++x)
        p[x] = rng.uniform(prior.bound(x).lo(), prior.bound(x).hi()) + tol::kTiny;
      auto pc = prob::Categorical::normalized(p);
      if (!prior.contains(pc)) continue;
      double v = 0.0;
      for (std::size_t x = 0; x < 3; ++x) {
        // Row extreme: push P(y|x) toward its projection bound.
        const auto& row = rows[x];
        double q = (s % 2 == 0) ? row.bound(y).lo() : row.bound(y).hi();
        // Clamp by row-sum feasibility.
        double lo_rest = 0.0, hi_rest = 0.0;
        for (std::size_t yy = 0; yy < 4; ++yy) {
          if (yy == y) continue;
          lo_rest += row.bound(yy).lo();
          hi_rest += row.bound(yy).hi();
        }
        q = std::clamp(q, std::max(row.bound(y).lo(), 1.0 - hi_rest),
                       std::min(row.bound(y).hi(), 1.0 - lo_rest));
        v += pc.p(x) * q;
      }
      best_lo = std::min(best_lo, v);
      best_hi = std::max(best_hi, v);
      // Validity: every point value inside the bounds.
      ASSERT_GE(v, marg.bound(y).lo() - tol::kProbSum);
      ASSERT_LE(v, marg.bound(y).hi() + tol::kProbSum);
    }
    // Sharpness within search slack.
    EXPECT_NEAR(best_lo, marg.bound(y).lo(), 0.02) << "state " << y;
    EXPECT_NEAR(best_hi, marg.bound(y).hi(), 0.02) << "state " << y;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CredalProperty,
                         ::testing::Values(11, 42, 314, 2718));

// ---------------------------------------------------------------------
// DTMC: simulation frequencies vs analytic bounded reachability.
// ---------------------------------------------------------------------

class DtmcProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DtmcProperty, SimulationMatchesBoundedReachability) {
  prob::Rng rng(GetParam());
  // Random 5-state chain with one absorbing target.
  markov::Dtmc c;
  for (int s = 0; s < 5; ++s) (void)c.add_state("s" + std::to_string(s));
  for (markov::StateId s = 0; s < 4; ++s) {
    std::vector<double> w(5);
    for (auto& v : w) v = rng.uniform() + 0.05;
    double total = 0.0;
    for (double v : w) total += v;
    double acc = 0.0;
    for (markov::StateId t = 0; t < 5; ++t) {
      const double p = (t == 4) ? 1.0 - acc : w[t] / total;
      c.set_transition(s, t, p);
      if (t < 4) acc += p;
    }
  }
  c.set_transition(4, 4, 1.0);
  c.validate();

  const std::size_t k = 6;
  const auto analytic = c.bounded_reachability({4}, k);
  std::size_t hits = 0;
  const std::size_t trials = 40000;
  for (std::size_t i = 0; i < trials; ++i) {
    const auto path = c.simulate(0, k, rng);
    bool reached = false;
    for (const auto s : path) reached = reached || s == 4;
    hits += reached ? 1 : 0;
  }
  ASSERT_NEAR(static_cast<double>(hits) / trials, analytic[0], 0.015);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DtmcProperty,
                         ::testing::Values(5, 55, 555, 5555));

// ---------------------------------------------------------------------
// Subjective logic: fusion of split evidence equals pooled evidence.
// ---------------------------------------------------------------------

class OpinionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OpinionProperty, CumulativeFusionPoolsEvidence) {
  prob::Rng rng(GetParam());
  const double r1 = rng.uniform(0.0, 50.0), s1 = rng.uniform(0.0, 50.0);
  const double r2 = rng.uniform(0.0, 50.0), s2 = rng.uniform(0.0, 50.0);
  const auto fused = evidence::Opinion::from_evidence(r1, s1).fuse(
      evidence::Opinion::from_evidence(r2, s2));
  const auto pooled = evidence::Opinion::from_evidence(r1 + r2, s1 + s2);
  ASSERT_NEAR(fused.belief(), pooled.belief(), tol::kProbSum);
  ASSERT_NEAR(fused.disbelief(), pooled.disbelief(), tol::kProbSum);
  ASSERT_NEAR(fused.uncertainty(), pooled.uncertainty(), tol::kProbSum);
}

TEST_P(OpinionProperty, ConjunctionDisjunctionDeMorganOnProjections) {
  prob::Rng rng(GetParam());
  const auto random_opinion = [&]() {
    double b = rng.uniform(), d = rng.uniform(), u = rng.uniform();
    const double total = b + d + u;
    return evidence::Opinion(b / total, d / total, u / total, rng.uniform());
  };
  const auto x = random_opinion();
  const auto y = random_opinion();
  // Projected probabilities behave classically.
  ASSERT_NEAR(x.conjoin(y).projected(), x.projected() * y.projected(), tol::kProbSum);
  ASSERT_NEAR(x.disjoin(y).projected(),
              x.projected() + y.projected() - x.projected() * y.projected(),
              tol::kProbSum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpinionProperty,
                         ::testing::Values(2, 22, 222, 2222, 22222));

// ---------------------------------------------------------------------
// Dynamic-vs-static FTA equivalence on randomized static structures.
// ---------------------------------------------------------------------

class DftStaticProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DftStaticProperty, DynamicEngineMatchesStaticOnStaticTrees) {
  prob::Rng rng(GetParam());
  const double t = rng.uniform(0.5, 3.0);

  // Random two-level AND/OR structure over 4 basic events.
  std::vector<double> lambdas(4);
  for (auto& l : lambdas) l = rng.uniform(0.1, 1.5);
  const bool top_is_and = rng.bernoulli(0.5);
  const bool left_is_and = rng.bernoulli(0.5);

  fta::FaultTree st;
  std::vector<fta::NodeId> sev;
  for (std::size_t i = 0; i < 4; ++i) {
    sev.push_back(st.add_basic_event("e" + std::to_string(i),
                                     1.0 - std::exp(-lambdas[i] * t)));
  }
  const auto sl = st.add_gate(
      "left", left_is_and ? fta::GateType::kAnd : fta::GateType::kOr,
      {sev[0], sev[1]});
  const auto sr = st.add_gate("right", fta::GateType::kOr, {sev[2], sev[3]});
  st.set_top(st.add_gate(
      "top", top_is_and ? fta::GateType::kAnd : fta::GateType::kOr, {sl, sr}));

  fta::DynamicFaultTree dy;
  std::vector<fta::DynamicFaultTree::NodeId> dev;
  for (std::size_t i = 0; i < 4; ++i) {
    dev.push_back(dy.add_basic_event("e" + std::to_string(i), lambdas[i]));
  }
  const auto dl = dy.add_gate(
      "left", left_is_and ? fta::DynGateType::kAnd : fta::DynGateType::kOr,
      {dev[0], dev[1]});
  const auto dr = dy.add_gate("right", fta::DynGateType::kOr, {dev[2], dev[3]});
  dy.set_top(dy.add_gate(
      "top", top_is_and ? fta::DynGateType::kAnd : fta::DynGateType::kOr,
      {dl, dr}));

  ASSERT_NEAR(fta::exact_top_probability(st), dy.unreliability(t), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DftStaticProperty,
                         ::testing::Values(8, 88, 888, 8888, 88888));
