// Dempster–Shafer tests: frame/set mechanics, belief-function identities,
// and algebraic properties of the combination rules (randomized sweeps).
#include "evidence/mass.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "prob/rng.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace ev = sysuq::evidence;
namespace pr = sysuq::prob;

namespace {

// Random mass function over a frame: random subsets with random weights.
ev::MassFunction random_mass(pr::Rng& rng, const ev::Frame& frame,
                             std::size_t focal_count) {
  std::map<ev::FocalSet, double> m;
  const ev::FocalSet full = frame.theta();
  for (std::size_t i = 0; i < focal_count; ++i) {
    const ev::FocalSet s = 1 + rng.uniform_index(full);
    m[s] += rng.uniform() + 0.05;
  }
  double total = 0.0;
  for (auto& [k, v] : m) total += v;
  for (auto& [k, v] : m) v /= total;
  return ev::MassFunction(frame, std::move(m));
}

}  // namespace

TEST(Frame, ConstructionAndSets) {
  ev::Frame f({"car", "pedestrian", "unknown"});
  EXPECT_EQ(f.size(), 3u);
  EXPECT_EQ(f.theta(), 0b111u);
  EXPECT_EQ(f.singleton("pedestrian"), 0b010u);
  EXPECT_EQ(f.make_set({"car", "unknown"}), 0b101u);
  EXPECT_EQ(f.set_to_string(0b011), "{car, pedestrian}");
  EXPECT_EQ(f.all_nonempty_subsets().size(), 7u);
  EXPECT_TRUE(f.contains(0b111));
  EXPECT_FALSE(f.contains(0b1000));
  EXPECT_THROW(ev::Frame({}), std::invalid_argument);
  EXPECT_THROW(ev::Frame({"a", "a"}), std::invalid_argument);
  EXPECT_THROW((void)f.singleton("bike"), std::invalid_argument);
}

TEST(Frame, SetPredicates) {
  EXPECT_EQ(ev::set_cardinality(0b1011), 3);
  EXPECT_TRUE(ev::is_subset(0b001, 0b011));
  EXPECT_TRUE(ev::is_subset(0, 0b011));
  EXPECT_FALSE(ev::is_subset(0b100, 0b011));
}

TEST(MassFunction, ConstructionValidation) {
  ev::Frame f({"a", "b"});
  EXPECT_NO_THROW(ev::MassFunction(f, {{0b01, 0.6}, {0b11, 0.4}}));
  EXPECT_THROW(ev::MassFunction(f, {{0b01, 0.6}, {0b11, 0.3}}),
               std::invalid_argument);
  EXPECT_THROW(ev::MassFunction(f, {{0b00, 0.5}, {0b11, 0.5}}),
               std::invalid_argument);
  EXPECT_THROW(ev::MassFunction(f, {{0b100, 1.0}}), std::invalid_argument);
  EXPECT_THROW(ev::MassFunction(f, {{0b01, -0.2}, {0b11, 1.2}}),
               std::invalid_argument);
}

TEST(MassFunction, VacuousIsTotalIgnorance) {
  ev::Frame f({"a", "b", "c"});
  const auto m = ev::MassFunction::vacuous(f);
  // Vacuous: Bel(A) = 0 for A != Theta, Pl(A) = 1 for A != empty.
  EXPECT_DOUBLE_EQ(m.belief(f.singleton("a")), 0.0);
  EXPECT_DOUBLE_EQ(m.plausibility(f.singleton("a")), 1.0);
  EXPECT_DOUBLE_EQ(m.belief(f.theta()), 1.0);
  EXPECT_DOUBLE_EQ(m.nonspecificity(), std::log2(3.0));
  EXPECT_FALSE(m.is_bayesian());
}

TEST(MassFunction, BayesianCollapsesIntervals) {
  ev::Frame f({"a", "b", "c"});
  const auto m = ev::MassFunction::bayesian(f, pr::Categorical({0.5, 0.3, 0.2}));
  EXPECT_TRUE(m.is_bayesian());
  EXPECT_DOUBLE_EQ(m.nonspecificity(), 0.0);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto iv = m.belief_interval(f.singleton(i));
    EXPECT_TRUE(iv.is_precise()) << i;
  }
  EXPECT_DOUBLE_EQ(m.belief(f.make_set({"a", "b"})), 0.8);
}

TEST(MassFunction, BeliefPlausibilityDuality) {
  // Pl(A) = 1 - Bel(complement(A)) for arbitrary random mass functions.
  pr::Rng rng(404);
  ev::Frame f({"w", "x", "y", "z"});
  for (int t = 0; t < 40; ++t) {
    const auto m = random_mass(rng, f, 5);
    for (const ev::FocalSet a : f.all_nonempty_subsets()) {
      const ev::FocalSet comp = f.theta() & ~a;
      if (comp == 0) continue;
      EXPECT_NEAR(m.plausibility(a), 1.0 - m.belief(comp), tol::kTiny);
      EXPECT_LE(m.belief(a), m.plausibility(a) + tol::kTiny);
    }
  }
}

TEST(MassFunction, BeliefMonotoneUnderInclusion) {
  pr::Rng rng(405);
  ev::Frame f({"x", "y", "z"});
  for (int t = 0; t < 30; ++t) {
    const auto m = random_mass(rng, f, 4);
    for (const ev::FocalSet a : f.all_nonempty_subsets()) {
      for (const ev::FocalSet b : f.all_nonempty_subsets()) {
        if (ev::is_subset(a, b)) {
          EXPECT_LE(m.belief(a), m.belief(b) + tol::kTiny);
          EXPECT_LE(m.plausibility(a), m.plausibility(b) + tol::kTiny);
        }
      }
    }
  }
}

TEST(MassFunction, CommonalityOfSingletonsEqualsPlausibility) {
  pr::Rng rng(406);
  ev::Frame f({"x", "y", "z"});
  const auto m = random_mass(rng, f, 4);
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_NEAR(m.commonality(f.singleton(i)), m.plausibility(f.singleton(i)),
                tol::kTiny);
  }
}

TEST(MassFunction, PignisticPreservesBayesianAndSplitsIgnorance) {
  ev::Frame f({"a", "b"});
  const auto bayes = ev::MassFunction::bayesian(f, pr::Categorical({0.7, 0.3}));
  const auto bp = bayes.pignistic();
  EXPECT_NEAR(bp.p(0), 0.7, tol::kTiny);
  const auto vac = ev::MassFunction::vacuous(f);
  const auto vp = vac.pignistic();
  EXPECT_NEAR(vp.p(0), 0.5, tol::kTiny);
  // Pignistic lies within [Bel, Pl] of every singleton.
  pr::Rng rng(407);
  ev::Frame g({"x", "y", "z"});
  for (int t = 0; t < 30; ++t) {
    const auto m = random_mass(rng, g, 4);
    const auto p = m.pignistic();
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_GE(p.p(i) + tol::kTiny, m.belief(g.singleton(i)));
      EXPECT_LE(p.p(i) - tol::kTiny, m.plausibility(g.singleton(i)));
    }
  }
}

TEST(MassFunction, DiscountingMovesMassToTheta) {
  ev::Frame f({"a", "b"});
  const auto m = ev::MassFunction::bayesian(f, pr::Categorical({0.8, 0.2}));
  const auto d = m.discounted(0.25);
  EXPECT_NEAR(d.mass(f.singleton("a")), 0.6, tol::kTiny);
  EXPECT_NEAR(d.mass(f.theta()), 0.25, tol::kTiny);
  // Full discount is the vacuous function.
  const auto full = m.discounted(1.0);
  EXPECT_NEAR(full.mass(f.theta()), 1.0, tol::kTiny);
  // Discounting widens belief intervals (uncertainty tolerance via
  // acknowledged source unreliability).
  EXPECT_LT(m.belief_interval(f.singleton("a")).width(),
            d.belief_interval(f.singleton("a")).width());
  EXPECT_THROW((void)m.discounted(1.5), std::invalid_argument);
}

TEST(MassFunction, SimpleSupport) {
  ev::Frame f({"a", "b", "c"});
  const auto m = ev::MassFunction::simple_support(f, f.singleton("b"), 0.7);
  EXPECT_NEAR(m.mass(f.singleton("b")), 0.7, tol::kTiny);
  EXPECT_NEAR(m.mass(f.theta()), 0.3, tol::kTiny);
  // s = 1 leaves no ignorance; s = 0 is vacuous.
  EXPECT_NEAR(ev::MassFunction::simple_support(f, f.theta(), 0.0)
                  .mass(f.theta()),
              1.0, tol::kTiny);
}

TEST(Combination, DempsterKnownTwoSensorExample) {
  // Classic Zadeh-style setup with partial agreement.
  ev::Frame f({"a", "b"});
  const auto m1 = ev::MassFunction::simple_support(f, f.singleton("a"), 0.8);
  const auto m2 = ev::MassFunction::simple_support(f, f.singleton("a"), 0.6);
  const auto c = ev::dempster_combine(m1, m2);
  // No conflict here: m({a}) = 1 - 0.2*0.4 = 0.92, m(Theta) = 0.08.
  EXPECT_NEAR(c.mass(f.singleton("a")), 0.92, tol::kTiny);
  EXPECT_NEAR(c.mass(f.theta()), 0.08, tol::kTiny);
}

TEST(Combination, DempsterNormalizesConflict) {
  ev::Frame f({"a", "b"});
  const auto m1 = ev::MassFunction(f, {{f.singleton("a"), 0.9}, {f.theta(), 0.1}});
  const auto m2 = ev::MassFunction(f, {{f.singleton("b"), 0.9}, {f.theta(), 0.1}});
  EXPECT_NEAR(m1.conflict(m2), 0.81, tol::kTiny);
  const auto c = ev::dempster_combine(m1, m2);
  // Masses: a: 0.9*0.1=0.09, b: 0.1*0.9=0.09, Theta: 0.01 -> /0.19.
  EXPECT_NEAR(c.mass(f.singleton("a")), 0.09 / 0.19, tol::kTiny);
  EXPECT_NEAR(c.mass(f.theta()), 0.01 / 0.19, tol::kTiny);
}

TEST(Combination, DempsterTotalConflictThrows) {
  ev::Frame f({"a", "b"});
  const auto m1 = ev::MassFunction(f, {{f.singleton("a"), 1.0}});
  const auto m2 = ev::MassFunction(f, {{f.singleton("b"), 1.0}});
  EXPECT_NEAR(m1.conflict(m2), 1.0, tol::kTiny);
  EXPECT_THROW((void)ev::dempster_combine(m1, m2), std::domain_error);
  // Yager handles it: all mass moves to Theta.
  const auto y = ev::yager_combine(m1, m2);
  EXPECT_NEAR(y.mass(f.theta()), 1.0, tol::kTiny);
  // Dubois-Prade transfers to the union {a, b} = Theta here.
  const auto dp = ev::dubois_prade_combine(m1, m2);
  EXPECT_NEAR(dp.mass(f.theta()), 1.0, tol::kTiny);
}

TEST(Combination, VacuousIsDempsterNeutralElement) {
  pr::Rng rng(408);
  ev::Frame f({"x", "y", "z"});
  for (int t = 0; t < 20; ++t) {
    const auto m = random_mass(rng, f, 4);
    const auto c = ev::dempster_combine(m, ev::MassFunction::vacuous(f));
    for (const ev::FocalSet s : f.all_nonempty_subsets()) {
      EXPECT_NEAR(c.mass(s), m.mass(s), tol::kTiny);
    }
  }
}

TEST(Combination, DempsterCommutative) {
  pr::Rng rng(409);
  ev::Frame f({"x", "y", "z"});
  for (int t = 0; t < 25; ++t) {
    const auto a = random_mass(rng, f, 4);
    const auto b = random_mass(rng, f, 4);
    const auto ab = ev::dempster_combine(a, b);
    const auto ba = ev::dempster_combine(b, a);
    for (const ev::FocalSet s : f.all_nonempty_subsets())
      EXPECT_NEAR(ab.mass(s), ba.mass(s), tol::kTiny);
  }
}

TEST(Combination, DempsterAssociative) {
  pr::Rng rng(410);
  ev::Frame f({"x", "y", "z"});
  for (int t = 0; t < 25; ++t) {
    const auto a = random_mass(rng, f, 3);
    const auto b = random_mass(rng, f, 3);
    const auto c = random_mass(rng, f, 3);
    const auto left = ev::dempster_combine(ev::dempster_combine(a, b), c);
    const auto right = ev::dempster_combine(a, ev::dempster_combine(b, c));
    for (const ev::FocalSet s : f.all_nonempty_subsets())
      EXPECT_NEAR(left.mass(s), right.mass(s), tol::kIteration);
  }
}

TEST(Combination, YagerIsQuasiAssociativeNotEqualToDempster) {
  // Under conflict, Yager keeps more mass on Theta than Dempster
  // (conservatism), so singleton beliefs are weaker.
  ev::Frame f({"a", "b"});
  const auto m1 = ev::MassFunction(f, {{f.singleton("a"), 0.9}, {f.theta(), 0.1}});
  const auto m2 = ev::MassFunction(f, {{f.singleton("b"), 0.9}, {f.theta(), 0.1}});
  const auto d = ev::dempster_combine(m1, m2);
  const auto y = ev::yager_combine(m1, m2);
  EXPECT_LT(y.belief(f.singleton("a")), d.belief(f.singleton("a")));
  EXPECT_GT(y.mass(f.theta()), d.mass(f.theta()));
}

TEST(Combination, DuboisPradePreservesInformationBetweenDempsterAndYager) {
  ev::Frame f({"a", "b", "c"});
  const auto m1 =
      ev::MassFunction(f, {{f.singleton("a"), 0.8}, {f.theta(), 0.2}});
  const auto m2 =
      ev::MassFunction(f, {{f.singleton("b"), 0.8}, {f.theta(), 0.2}});
  const auto dp = ev::dubois_prade_combine(m1, m2);
  // Conflict 0.64 lands on {a, b}, not on Theta.
  EXPECT_NEAR(dp.mass(f.make_set({"a", "b"})), 0.64, tol::kTiny);
  const auto y = ev::yager_combine(m1, m2);
  EXPECT_NEAR(y.mass(f.theta()), 0.04 + 0.64, tol::kTiny);
  // DP's {a,b} mass keeps Pl({a}) equal but raises Bel({a,b}).
  EXPECT_GT(dp.belief(f.make_set({"a", "b"})), y.belief(f.make_set({"a", "b"})));
}

TEST(Combination, AllRulesPreserveNormalization) {
  pr::Rng rng(411);
  ev::Frame f({"w", "x", "y", "z"});
  for (int t = 0; t < 20; ++t) {
    const auto a = random_mass(rng, f, 5);
    const auto b = random_mass(rng, f, 5);
    for (const auto& c : {ev::yager_combine(a, b), ev::dubois_prade_combine(a, b)}) {
      double total = 0.0;
      for (const auto& [s, m] : c.focal_elements()) {
        (void)s;
        total += m;
      }
      EXPECT_NEAR(total, 1.0, tol::kIteration);
    }
  }
}

TEST(MassFunction, NonspecificityTracksEpistemicImprecision) {
  ev::Frame f({"a", "b", "c", "d"});
  const auto bayes = ev::MassFunction::bayesian(
      f, pr::Categorical({0.25, 0.25, 0.25, 0.25}));
  const auto partial = ev::MassFunction(
      f, {{f.make_set({"a", "b"}), 0.5}, {f.make_set({"c", "d"}), 0.5}});
  const auto vac = ev::MassFunction::vacuous(f);
  EXPECT_DOUBLE_EQ(bayes.nonspecificity(), 0.0);
  EXPECT_NEAR(partial.nonspecificity(), 1.0, tol::kTiny);  // log2(2)
  EXPECT_NEAR(vac.nonspecificity(), 2.0, tol::kTiny);      // log2(4)
  EXPECT_LT(bayes.nonspecificity_mass(), partial.nonspecificity_mass());
}
