// Soundness of d-separation: if the Bayes-ball algorithm declares X and
// Y d-separated given Z, then P(X, Y | Z) must factorize for EVERY
// parameterization of the graph — checked on randomized DAGs with
// randomized CPTs and all Z-assignments.
#include <gtest/gtest.h>

#include <cmath>

#include "bayesnet/inference.hpp"
#include "prob/rng.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace bn = sysuq::bayesnet;
namespace pr = sysuq::prob;

namespace {

bn::BayesianNetwork random_network(pr::Rng& rng, std::size_t n) {
  bn::BayesianNetwork net;
  std::vector<std::size_t> cards;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t card = 2 + rng.uniform_index(2);
    cards.push_back(card);
    std::vector<std::string> states;
    for (std::size_t s = 0; s < card; ++s) states.push_back("s" + std::to_string(s));
    net.add_variable("v" + std::to_string(i), std::move(states));
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<bn::VariableId> parents;
    for (std::size_t j = 0; j < i; ++j) {
      if (rng.bernoulli(0.35)) parents.push_back(j);
    }
    std::size_t rows = 1;
    for (auto p : parents) rows *= cards[p];
    std::vector<pr::Categorical> cpt;
    for (std::size_t r = 0; r < rows; ++r) {
      std::vector<double> w(cards[i]);
      for (double& x : w) x = rng.uniform() + 0.05;
      cpt.push_back(pr::Categorical::normalized(std::move(w)));
    }
    net.set_cpt(i, std::move(parents), std::move(cpt));
  }
  return net;
}

// Exhaustively checks P(x, y | z) == P(x | z) P(y | z) for one Z
// assignment via the enumeration oracle.
bool conditionally_independent(const bn::BayesianNetwork& net, bn::VariableId x,
                               bn::VariableId y, const bn::Evidence& z) {
  const double pz = bn::enumerate_evidence_probability(net, z);
  if (pz < tol::kTiny) return true;  // conditioning event never happens
  const auto px = bn::enumerate_posterior(net, x, z);
  const auto py = bn::enumerate_posterior(net, y, z);
  for (std::size_t sx = 0; sx < net.variable(x).cardinality(); ++sx) {
    for (std::size_t sy = 0; sy < net.variable(y).cardinality(); ++sy) {
      bn::Evidence zxy = z;
      zxy[x] = sx;
      zxy[y] = sy;
      const double joint = bn::enumerate_evidence_probability(net, zxy) / pz;
      if (std::fabs(joint - px.p(sx) * py.p(sy)) > tol::kProbSum) return false;
    }
  }
  return true;
}

}  // namespace

class DSeparationSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DSeparationSoundness, DSeparationImpliesConditionalIndependence) {
  pr::Rng rng(GetParam());
  const auto net = random_network(rng, 5);

  for (bn::VariableId x = 0; x < net.size(); ++x) {
    for (bn::VariableId y = x + 1; y < net.size(); ++y) {
      // Try Z = empty and Z = each single third variable.
      std::vector<std::vector<bn::VariableId>> zsets{{}};
      for (bn::VariableId z = 0; z < net.size(); ++z) {
        if (z != x && z != y) zsets.push_back({z});
      }
      for (const auto& zset : zsets) {
        if (!net.d_separated(x, y, zset)) continue;
        // Check independence for every assignment of Z.
        std::size_t zcard = 1;
        for (auto z : zset) zcard *= net.variable(z).cardinality();
        for (std::size_t flat = 0; flat < zcard; ++flat) {
          bn::Evidence ev;
          std::size_t rem = flat;
          for (auto z : zset) {
            ev[z] = rem % net.variable(z).cardinality();
            rem /= net.variable(z).cardinality();
          }
          ASSERT_TRUE(conditionally_independent(net, x, y, ev))
              << "x=" << x << " y=" << y << " |Z|=" << zset.size()
              << " assignment " << flat;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DSeparationSoundness,
                         ::testing::Values(101, 202, 303, 404, 505, 606));
