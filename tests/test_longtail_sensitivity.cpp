// Tests for the long-tail validation math and BN sensitivity analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "bayesnet/sensitivity.hpp"
#include "sys/longtail.hpp"
#include "perception/table1.hpp"
#include "prob/rng.hpp"
#include "prob/statistics.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace sy = sysuq::sys;
namespace bn = sysuq::bayesnet;
namespace pr = sysuq::prob;

TEST(LongTail, ZipfShape) {
  const auto z = sy::zipf_distribution(100, 1.0);
  EXPECT_EQ(z.size(), 100u);
  // Monotone decreasing, ratio p1/p2 = 2 for s = 1.
  EXPECT_NEAR(z.p(0) / z.p(1), 2.0, tol::kProbSum);
  for (std::size_t i = 1; i < 100; ++i) EXPECT_LE(z.p(i), z.p(i - 1));
  EXPECT_THROW((void)sy::zipf_distribution(1, 1.0), std::invalid_argument);
  EXPECT_THROW((void)sy::zipf_distribution(10, 0.0), std::invalid_argument);
}

TEST(LongTail, MissingMassExactSmallCase) {
  // Two categories (0.7, 0.3), N = 2:
  // E[missing] = 0.7*0.3^2 + 0.3*0.7^2 = 0.063 + 0.147 = 0.21.
  const pr::Categorical p({0.7, 0.3});
  EXPECT_NEAR(sy::expected_missing_mass(p, 2), 0.7 * 0.09 + 0.3 * 0.49, tol::kTiny);
  EXPECT_DOUBLE_EQ(sy::expected_missing_mass(p, 0), 1.0);
  // Distinct: 2 - (0.3^2 + 0.7^2) ... E[distinct after 2] =
  // (1-0.3^2)+(1-0.7^2).
  EXPECT_NEAR(sy::expected_distinct(p, 2), (1 - 0.09) + (1 - 0.49), tol::kTiny);
}

TEST(LongTail, MissingMassMonotoneDecreasing) {
  const auto z = sy::zipf_distribution(1000, 1.2);
  double prev = 1.0;
  for (const std::size_t n : {1u, 10u, 100u, 1000u, 10000u, 100000u}) {
    const double m = sy::expected_missing_mass(z, n);
    EXPECT_LT(m, prev);
    prev = m;
  }
}

TEST(LongTail, MatchesMonteCarlo) {
  const auto z = sy::zipf_distribution(50, 1.5);
  pr::Rng rng(2121);
  const std::size_t n = 200;
  pr::RunningStats missing;
  for (int rep = 0; rep < 300; ++rep) {
    std::vector<bool> seen(50, false);
    for (std::size_t i = 0; i < n; ++i) seen[z.sample(rng)] = true;
    double m = 0.0;
    for (std::size_t c = 0; c < 50; ++c) {
      if (!seen[c]) m += z.p(c);
    }
    missing.add(m);
  }
  EXPECT_NEAR(missing.mean(), sy::expected_missing_mass(z, n), 0.005);
}

TEST(LongTail, ObservationsForTargetAndHeavyTailPenalty) {
  // The long-tail effect needs a large scenario space: with 100k ranked
  // scenario classes, the near-uniform tail of Zipf(1.01) holds most of
  // its mass in events of probability ~1e-6 each, so driving down the
  // unseen mass takes orders of magnitude more exposure than for the
  // light tail — the paper's "long tail validation challenge".
  const auto light = sy::zipf_distribution(100000, 2.5);
  const auto heavy = sy::zipf_distribution(100000, 1.01);
  const std::size_t n_light = sy::observations_for_missing_mass(light, 0.02);
  const std::size_t n_heavy = sy::observations_for_missing_mass(heavy, 0.02);
  EXPECT_GT(n_heavy, 100 * n_light);
  // Returned N actually achieves the target, N-1 does not.
  EXPECT_LE(sy::expected_missing_mass(heavy, n_heavy), 0.02);
  EXPECT_GT(sy::expected_missing_mass(heavy, n_heavy - 1), 0.02);
  EXPECT_THROW((void)sy::observations_for_missing_mass(heavy, 0.0),
               std::invalid_argument);
}

TEST(LongTail, DiscoveryRateDecays) {
  const auto z = sy::zipf_distribution(500, 1.1);
  EXPECT_GT(sy::discovery_rate(z, 10), sy::discovery_rate(z, 1000));
  EXPECT_GT(sy::discovery_rate(z, 1000), 0.0);
}

TEST(Sensitivity, DerivativeSignAndMagnitude) {
  const auto net = sysuq::perception::table1_network();
  // P(perception = none) depends positively on the prior of unknown
  // (unknown objects mostly produce none) and on P(none | unknown).
  const double d_prior = bn::query_sensitivity(net, 0, 0, 2, 1, 3);
  EXPECT_GT(d_prior, 0.5);  // strong positive driver
  const double d_cpt = bn::query_sensitivity(net, 1, 2, 3, 1, 3);
  EXPECT_GT(d_cpt, 0.05);
  // P(perception = car) reacts negatively to the unknown prior.
  const double d_car = bn::query_sensitivity(net, 0, 0, 2, 1, 0);
  EXPECT_LT(d_car, 0.0);
}

TEST(Sensitivity, MatchesManualFiniteDifference) {
  // Manual check on the root prior: P(perc = none) as a function of the
  // unknown prior t with proportional co-variation of car/pedestrian:
  //   P(none) = (0.6/0.9)(1-t)*0.045 + (0.3/0.9)(1-t)*0.045 + t*0.8
  // -> derivative = 0.8 - 0.045 = 0.755.
  const auto net = sysuq::perception::table1_network();
  const double d = bn::query_sensitivity(net, 0, 0, 2, 1, 3);
  EXPECT_NEAR(d, 0.755, 1e-6);
}

TEST(Sensitivity, RankingFindsDominantParameters) {
  const auto net = sysuq::perception::table1_network();
  const auto ranking = bn::rank_parameters(net, 1, 3);  // query P(perc=none)
  ASSERT_FALSE(ranking.empty());
  // Total parameter cells: root 3 + child 12 = 15.
  EXPECT_EQ(ranking.size(), 15u);
  // Sorted by |derivative| descending.
  for (std::size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_GE(std::fabs(ranking[i - 1].derivative),
              std::fabs(ranking[i].derivative));
  }
  // The dominant parameter is the unknown prior (child 0, state 2).
  EXPECT_EQ(ranking[0].child, 0u);
  EXPECT_EQ(ranking[0].state, 2u);
}

TEST(Sensitivity, Validation) {
  const auto net = sysuq::perception::table1_network();
  EXPECT_THROW((void)bn::query_sensitivity(net, 1, 9, 0, 0, 0),
               std::out_of_range);
  EXPECT_THROW((void)bn::query_sensitivity(net, 1, 0, 9, 0, 0),
               std::out_of_range);
  EXPECT_THROW((void)bn::query_sensitivity(net, 1, 0, 0, 0, 0, {}, 0.0),
               std::invalid_argument);
}
