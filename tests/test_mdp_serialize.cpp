// MDP tests (optimal policies for hazard bounding) and BN serialization
// round trips.
#include <gtest/gtest.h>

#include <cmath>

#include "bayesnet/inference.hpp"
#include "bayesnet/serialize.hpp"
#include "evidence/mass.hpp"
#include "markov/mdp.hpp"
#include "perception/table1.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace mk = sysuq::markov;
namespace bn = sysuq::bayesnet;
namespace pr = sysuq::prob;

namespace {

// Degraded-mode supervisor MDP: in `degraded` the controller can either
// `continue` (risky, keeps service) or `mrm` (safe, ends service).
mk::Mdp supervisor() {
  mk::Mdp m;
  const auto nominal = m.add_state("nominal");
  const auto degraded = m.add_state("degraded");
  const auto safe = m.add_state("safe");
  const auto hazard = m.add_state("hazard");
  (void)m.add_action(nominal, "drive",
                     {{nominal, 0.98}, {degraded, 0.02}});
  (void)m.add_action(degraded, "continue",
                     {{nominal, 0.65}, {degraded, 0.25}, {hazard, 0.10}});
  (void)m.add_action(degraded, "mrm", {{safe, 0.95}, {hazard, 0.05}});
  (void)m.add_action(safe, "stay", {{safe, 1.0}});
  (void)m.add_action(hazard, "stay", {{hazard, 1.0}});
  return m;
}

}  // namespace

TEST(Mdp, ConstructionValidation) {
  mk::Mdp m;
  const auto a = m.add_state("a");
  EXPECT_THROW((void)m.add_state("a"), std::invalid_argument);
  EXPECT_THROW((void)m.add_action(7, "x", {{a, 1.0}}), std::out_of_range);
  EXPECT_THROW((void)m.add_action(a, "x", {{a, 0.5}}), std::invalid_argument);
  EXPECT_THROW((void)m.add_action(a, "", {{a, 1.0}}), std::invalid_argument);
  EXPECT_THROW(m.validate(), std::logic_error);  // no actions yet
  (void)m.add_action(a, "loop", {{a, 1.0}});
  EXPECT_NO_THROW(m.validate());
  EXPECT_EQ(m.action_count(a), 1u);
  EXPECT_EQ(m.action_name(a, 0), "loop");
  EXPECT_THROW((void)m.action_name(a, 3), std::out_of_range);
}

TEST(Mdp, MinHazardPolicyChoosesMrm) {
  const auto m = supervisor();
  const auto hazard = m.id_of("hazard");
  const auto degraded = m.id_of("degraded");

  const auto min_reach = m.reachability({hazard}, /*maximize=*/false);
  const auto max_reach = m.reachability({hazard}, /*maximize=*/true);
  // The risk-averse policy bounds hazard well below the risk-seeking one.
  EXPECT_LT(min_reach[degraded], max_reach[degraded]);
  // Min policy from degraded: mrm gives exactly 0.05.
  EXPECT_NEAR(min_reach[degraded], 0.05, tol::kProbSum);
  // Max (adversarial) policy keeps continuing: from degraded,
  // x = 0.10 + 0.65 x_n + 0.25 x; x_n = x (nominal always re-enters
  // degraded eventually) -> x = 1.
  EXPECT_NEAR(max_reach[degraded], 1.0, 1e-6);

  const auto policy = m.optimal_policy({hazard}, false);
  EXPECT_EQ(m.action_name(degraded, policy[degraded]), "mrm");
}

TEST(Mdp, BoundedValuesMonotoneAndBracketed) {
  const auto m = supervisor();
  const auto hazard = m.id_of("hazard");
  const auto nominal = m.id_of("nominal");
  double prev_min = -1.0, prev_max = -1.0;
  for (const std::size_t k : {1u, 10u, 100u, 1000u}) {
    const double lo = m.bounded_reachability({hazard}, k, false)[nominal];
    const double hi = m.bounded_reachability({hazard}, k, true)[nominal];
    EXPECT_LE(lo, hi + tol::kTiny);
    EXPECT_GE(lo, prev_min);
    EXPECT_GE(hi, prev_max);
    prev_min = lo;
    prev_max = hi;
  }
}

TEST(Mdp, InducedChainMatchesPolicyValue) {
  const auto m = supervisor();
  const auto hazard = m.id_of("hazard");
  const auto policy = m.optimal_policy({hazard}, false);
  const auto chain = m.induced_chain(policy);
  const auto chain_reach = chain.reachability({hazard});
  const auto mdp_reach = m.reachability({hazard}, false);
  for (mk::StateId s = 0; s < m.size(); ++s) {
    EXPECT_NEAR(chain_reach[s], mdp_reach[s], 1e-8) << s;
  }
  EXPECT_THROW((void)m.induced_chain({0}), std::invalid_argument);
}

TEST(Serialize, RoundTripTable1) {
  const auto net = sysuq::perception::table1_network();
  const auto text = bn::to_text(net);
  const auto back = bn::from_text(text);
  ASSERT_EQ(back.size(), net.size());
  // Structure preserved.
  EXPECT_EQ(back.id_of("perception"), net.id_of("perception"));
  EXPECT_EQ(back.parents(1), net.parents(1));
  // Probabilities preserved exactly (17 significant digits).
  bn::VariableElimination ve1(net), ve2(back);
  const auto a = ve1.query(0, {{1, 3}});
  const auto b = ve2.query(0, {{1, 3}});
  for (std::size_t s = 0; s < a.size(); ++s)
    EXPECT_DOUBLE_EQ(a.p(s), b.p(s));
}

TEST(Serialize, RoundTripMultiParent) {
  bn::BayesianNetwork net;
  const auto a = net.add_variable("a", {"a0", "a1"});
  const auto b = net.add_variable("b", {"b0", "b1", "b2"});
  const auto c = net.add_variable("c", {"c0", "c1"});
  net.set_cpt(a, {}, {pr::Categorical({0.25, 0.75})});
  net.set_cpt(b, {}, {pr::Categorical({0.2, 0.3, 0.5})});
  std::vector<pr::Categorical> rows;
  for (int i = 0; i < 6; ++i) {
    rows.push_back(pr::Categorical::normalized(
        {1.0 + i, 2.0 + i}));
  }
  net.set_cpt(c, {a, b}, rows);
  const auto back = bn::from_text(bn::to_text(net));
  EXPECT_EQ(back.parents(2), (std::vector<bn::VariableId>{0, 1}));
  for (std::size_t r = 0; r < 6; ++r) {
    EXPECT_DOUBLE_EQ(back.cpt_rows(2)[r].p(0), net.cpt_rows(2)[r].p(0)) << r;
  }
}

TEST(Serialize, CommentsAndWhitespaceTolerated) {
  const std::string text = R"(
# a comment
sysuq-bayesnet 1

variable coin heads tails   # inline comment
cpt coin |
0.5 0.5
)";
  const auto net = bn::from_text(text);
  EXPECT_EQ(net.size(), 1u);
  EXPECT_DOUBLE_EQ(net.cpt_rows(0)[0].p(0), 0.5);
}

TEST(Serialize, MalformedInputsRejectedWithLineNumbers) {
  const auto expect_fail = [](const std::string& text, const char* needle) {
    try {
      (void)bn::from_text(text);
      FAIL() << "expected failure for: " << needle;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("line"), std::string::npos) << needle;
    }
  };
  expect_fail("nonsense", "bad header");
  expect_fail("sysuq-bayesnet 2\n", "bad version");
  expect_fail("sysuq-bayesnet 1\nvariable x a\n", "one state");
  expect_fail("sysuq-bayesnet 1\nvariable x a b\ncpt x |\n0.5 0.6\n",
              "unnormalized row");
  expect_fail("sysuq-bayesnet 1\nvariable x a b\ncpt y |\n0.5 0.5\n",
              "unknown child");
  expect_fail("sysuq-bayesnet 1\nvariable x a b\ncpt x |\n0.5\n",
              "short row");
  expect_fail("sysuq-bayesnet 1\nvariable x a b\nfrobnicate\n",
              "unknown directive");
  // Missing CPT: rejected by the final validation pass.
  EXPECT_THROW((void)bn::from_text("sysuq-bayesnet 1\nvariable x a b\n"),
               std::logic_error);
}

TEST(Serialize, WhitespaceNamesRejectedOnWrite) {
  bn::BayesianNetwork net;
  net.add_variable("bad name", {"a", "b"});
  net.set_cpt(0, {}, {pr::Categorical({0.5, 0.5})});
  EXPECT_THROW((void)bn::to_text(net), std::invalid_argument);
}

TEST(Serialize, MobiusInversionRoundTrip) {
  // Reconstructing a mass function from its belief function recovers it.
  using namespace sysuq::evidence;
  const Frame f({"a", "b", "c"});
  const MassFunction m(f, {{f.singleton("a"), 0.4},
                           {f.make_set({"a", "b"}), 0.3},
                           {f.theta(), 0.3}});
  const auto back =
      mass_from_belief(f, [&](FocalSet s) { return m.belief(s); });
  for (const FocalSet s : f.all_nonempty_subsets()) {
    EXPECT_NEAR(back.mass(s), m.mass(s), tol::kTiny);
  }
  // A plausibility function is NOT a belief function in general.
  EXPECT_THROW((void)mass_from_belief(
                   f, [&](FocalSet s) { return m.plausibility(s); }),
               std::invalid_argument);
}
