// Subjective-logic tests: opinion algebra identities, evidence mapping,
// operator semantics, and assurance-case propagation.
#include "evidence/subjective.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace ev = sysuq::evidence;

TEST(Opinion, ConstructionValidation) {
  EXPECT_NO_THROW(ev::Opinion(0.5, 0.3, 0.2));
  EXPECT_THROW(ev::Opinion(0.5, 0.3, 0.1), std::invalid_argument);
  EXPECT_THROW(ev::Opinion(-0.1, 0.6, 0.5), std::invalid_argument);
  EXPECT_THROW(ev::Opinion(0.5, 0.3, 0.2, 1.5), std::invalid_argument);
}

TEST(Opinion, ProjectedProbability) {
  const ev::Opinion o(0.4, 0.3, 0.3, 0.5);
  EXPECT_NEAR(o.projected(), 0.4 + 0.5 * 0.3, tol::kTiny);
  EXPECT_NEAR(ev::Opinion::vacuous(0.7).projected(), 0.7, tol::kTiny);
  EXPECT_NEAR(ev::Opinion::dogmatic(0.8).projected(), 0.8, tol::kTiny);
}

TEST(Opinion, FromEvidenceMatchesBeta) {
  // r = 8, s = 2: b = 8/12, d = 2/12, u = 2/12; projected = Beta mean
  // (r+1)/(r+s+2) with a = 0.5: 8/12 + 0.5*2/12 = 9/12 = E[Beta(9, 3)].
  const auto o = ev::Opinion::from_evidence(8, 2);
  EXPECT_NEAR(o.belief(), 8.0 / 12.0, tol::kTiny);
  EXPECT_NEAR(o.uncertainty(), 2.0 / 12.0, tol::kTiny);
  EXPECT_NEAR(o.projected(), 9.0 / 12.0, tol::kTiny);
  // No evidence = vacuous.
  const auto none = ev::Opinion::from_evidence(0, 0);
  EXPECT_NEAR(none.uncertainty(), 1.0, tol::kTiny);
  EXPECT_THROW((void)ev::Opinion::from_evidence(-1, 0), std::invalid_argument);
}

TEST(Opinion, UncertaintyShrinksWithEvidence) {
  double prev = 1.0;
  for (const double n : {1.0, 10.0, 100.0, 1000.0}) {
    const auto o = ev::Opinion::from_evidence(0.8 * n, 0.2 * n);
    EXPECT_LT(o.uncertainty(), prev);
    prev = o.uncertainty();
    // Projected = (b + a*u) = (0.8 n + 0.5 * 2) / (n + 2).
    EXPECT_NEAR(o.projected(), (0.8 * n + 1.0) / (n + 2.0), tol::kTiny);
  }
}

TEST(Opinion, FusionReducesUncertainty) {
  const auto a = ev::Opinion::from_evidence(4, 1);
  const auto b = ev::Opinion::from_evidence(6, 2);
  const auto f = a.fuse(b);
  EXPECT_LT(f.uncertainty(), a.uncertainty());
  EXPECT_LT(f.uncertainty(), b.uncertainty());
  // Cumulative fusion of evidence opinions = opinion of pooled evidence.
  const auto pooled = ev::Opinion::from_evidence(10, 3);
  EXPECT_NEAR(f.belief(), pooled.belief(), tol::kProbSum);
  EXPECT_NEAR(f.uncertainty(), pooled.uncertainty(), tol::kProbSum);
}

TEST(Opinion, FusionWithVacuousIsIdentity) {
  const auto a = ev::Opinion(0.5, 0.2, 0.3, 0.4);
  const auto f = a.fuse(ev::Opinion::vacuous(0.4));
  EXPECT_NEAR(f.belief(), a.belief(), tol::kProbSum);
  EXPECT_NEAR(f.disbelief(), a.disbelief(), tol::kProbSum);
  EXPECT_NEAR(f.uncertainty(), a.uncertainty(), tol::kProbSum);
}

TEST(Opinion, FusionCommutes) {
  const auto a = ev::Opinion(0.6, 0.1, 0.3, 0.5);
  const auto b = ev::Opinion(0.2, 0.5, 0.3, 0.5);
  const auto ab = a.fuse(b);
  const auto ba = b.fuse(a);
  EXPECT_NEAR(ab.belief(), ba.belief(), tol::kTiny);
  EXPECT_NEAR(ab.uncertainty(), ba.uncertainty(), tol::kTiny);
}

TEST(Opinion, AveragingKeepsMoreUncertaintyThanCumulative) {
  const auto a = ev::Opinion::from_evidence(5, 5);
  const auto b = ev::Opinion::from_evidence(5, 5);
  EXPECT_GT(a.average(b).uncertainty(), a.fuse(b).uncertainty());
  // Averaging two identical opinions returns them unchanged.
  const auto avg = a.average(a);
  EXPECT_NEAR(avg.belief(), a.belief(), tol::kTiny);
  EXPECT_NEAR(avg.uncertainty(), a.uncertainty(), tol::kTiny);
}

TEST(Opinion, DiscountingMovesMassToUncertainty) {
  const auto o = ev::Opinion(0.7, 0.2, 0.1, 0.5);
  const auto d = o.discount(0.5);
  EXPECT_NEAR(d.belief(), 0.35, tol::kTiny);
  EXPECT_NEAR(d.disbelief(), 0.10, tol::kTiny);
  EXPECT_NEAR(d.uncertainty(), 0.55, tol::kTiny);
  // Full trust = identity; zero trust = vacuous.
  EXPECT_NEAR(o.discount(1.0).belief(), o.belief(), tol::kTiny);
  EXPECT_NEAR(o.discount(0.0).uncertainty(), 1.0, tol::kTiny);
  EXPECT_THROW((void)o.discount(1.5), std::invalid_argument);
  // Discounting by an opinion uses its projected probability.
  const auto trust = ev::Opinion(0.5, 0.0, 0.5, 0.0);  // projected 0.5
  EXPECT_NEAR(o.discount_by(trust).belief(), 0.35, tol::kTiny);
}

TEST(Opinion, ConjunctionMatchesProbabilityForDogmatic) {
  const auto a = ev::Opinion::dogmatic(0.6);
  const auto b = ev::Opinion::dogmatic(0.7);
  const auto c = a.conjoin(b);
  EXPECT_NEAR(c.projected(), 0.42, tol::kProbSum);
  EXPECT_NEAR(c.uncertainty(), 0.0, tol::kProbSum);
  const auto d = a.disjoin(b);
  EXPECT_NEAR(d.projected(), 0.6 + 0.7 - 0.42, tol::kProbSum);
}

TEST(Opinion, ConjunctionProjectedConsistent) {
  // For independent propositions, P(x AND y) = P(x) P(y) holds for the
  // projected probabilities of the operands and result.
  const auto a = ev::Opinion(0.5, 0.2, 0.3, 0.4);
  const auto b = ev::Opinion(0.3, 0.4, 0.3, 0.6);
  const auto c = a.conjoin(b);
  EXPECT_NEAR(c.projected(), a.projected() * b.projected(), tol::kProbSum);
  const auto d = a.disjoin(b);
  EXPECT_NEAR(d.projected(),
              a.projected() + b.projected() - a.projected() * b.projected(),
              tol::kProbSum);
}

TEST(Opinion, ConjunctionWithVacuousStaysUncertain) {
  const auto a = ev::Opinion(0.8, 0.1, 0.1, 0.5);
  const auto c = a.conjoin(ev::Opinion::vacuous(0.5));
  EXPECT_GT(c.uncertainty(), 0.3);
  EXPECT_LT(c.belief(), a.belief());
}

TEST(AssuranceCase, PropagationBasics) {
  ev::AssuranceCase ac;
  const auto e1 = ac.add_evidence("sensor validated", ev::Opinion::from_evidence(50, 1));
  const auto e2 = ac.add_evidence("fusion verified", ev::Opinion::from_evidence(30, 0));
  const auto goal = ac.add_goal("perception is safe",
                                ev::AssuranceCase::Kind::kConjunction, {e1, e2});
  const auto o = ac.evaluate(goal);
  EXPECT_GT(o.projected(), 0.85);
  EXPECT_GT(o.uncertainty(), 0.0);
  // Conjunction is weaker than either leaf.
  EXPECT_LT(o.projected(), ac.evaluate(e1).projected());
  EXPECT_LT(o.projected(), ac.evaluate(e2).projected());
}

TEST(AssuranceCase, RuleTrustWeakensGoal) {
  ev::AssuranceCase ac;
  const auto e = ac.add_evidence("evidence", ev::Opinion::from_evidence(100, 0));
  const auto strong = ac.add_goal("claim (sound rule)",
                                  ev::AssuranceCase::Kind::kConjunction, {e}, 1.0);
  const auto weak = ac.add_goal("claim (shaky rule)",
                                ev::AssuranceCase::Kind::kConjunction, {e}, 0.6);
  EXPECT_GT(ac.evaluate(strong).projected(), ac.evaluate(weak).projected());
  EXPECT_GT(ac.evaluate(weak).uncertainty(), ac.evaluate(strong).uncertainty());
}

TEST(AssuranceCase, DisjunctionStrongerThanWeakestLeg) {
  ev::AssuranceCase ac;
  const auto weak = ac.add_evidence("weak leg", ev::Opinion::from_evidence(2, 2));
  const auto strong = ac.add_evidence("strong leg", ev::Opinion::from_evidence(20, 1));
  const auto goal = ac.add_goal("either mitigation works",
                                ev::AssuranceCase::Kind::kDisjunction,
                                {weak, strong});
  EXPECT_GT(ac.evaluate(goal).projected(), ac.evaluate(strong).projected() - tol::kProbSum);
}

TEST(AssuranceCase, WeakestLeafIdentifiesBottleneck) {
  ev::AssuranceCase ac;
  const auto good = ac.add_evidence("well-tested component",
                                    ev::Opinion::from_evidence(500, 2));
  const auto shaky = ac.add_evidence("barely-tested component",
                                     ev::Opinion::from_evidence(3, 1));
  const auto goal = ac.add_goal("system safe",
                                ev::AssuranceCase::Kind::kConjunction,
                                {good, shaky});
  EXPECT_EQ(ac.weakest_leaf(goal), shaky);
}

TEST(AssuranceCase, Validation) {
  ev::AssuranceCase ac;
  EXPECT_THROW((void)ac.add_evidence("", ev::Opinion::vacuous()),
               std::invalid_argument);
  const auto e = ac.add_evidence("e", ev::Opinion::vacuous());
  EXPECT_THROW((void)ac.add_goal("g", ev::AssuranceCase::Kind::kLeaf, {e}),
               std::invalid_argument);
  EXPECT_THROW((void)ac.add_goal("g", ev::AssuranceCase::Kind::kConjunction, {}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)ac.add_goal("g", ev::AssuranceCase::Kind::kConjunction, {e}, 1.4),
      std::invalid_argument);
  EXPECT_THROW((void)ac.evaluate(9), std::out_of_range);
}
