// Fault-tree tests: construction, cut sets, exact probability against
// brute-force enumeration over the structure function, approximations,
// importance measures, interval/fuzzy evaluation, and the FTA->BN compiler.
#include "fta/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "bayesnet/inference.hpp"
#include "fta/fta_to_bn.hpp"
#include "prob/distribution.hpp"
#include "prob/rng.hpp"
#include "prob/statistics.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace ft = sysuq::fta;
namespace bn = sysuq::bayesnet;
namespace pr = sysuq::prob;

namespace {

// Brute-force P(top) by enumerating all basic-event states.
double brute_force_top(const ft::FaultTree& t) {
  const auto events = t.basic_events();
  const std::size_t n = events.size();
  double total = 0.0;
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    std::vector<bool> state(n);
    double p = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      state[i] = (mask >> i) & 1u;
      p *= state[i] ? t.probability(events[i]) : 1.0 - t.probability(events[i]);
    }
    if (t.evaluate_structure(state)) total += p;
  }
  return total;
}

// A two-channel perception system: top fails if (cam1 AND cam2) fail or
// the shared fusion ECU fails. Shared event: power supply feeds both cams.
ft::FaultTree redundant_perception_tree() {
  ft::FaultTree t;
  const auto power = t.add_basic_event("power", 0.01);
  const auto cam1 = t.add_basic_event("cam1", 0.05);
  const auto cam2 = t.add_basic_event("cam2", 0.05);
  const auto ecu = t.add_basic_event("ecu", 0.002);
  const auto ch1 = t.add_gate("channel1", ft::GateType::kOr, {power, cam1});
  const auto ch2 = t.add_gate("channel2", ft::GateType::kOr, {power, cam2});
  const auto both = t.add_gate("both_channels", ft::GateType::kAnd, {ch1, ch2});
  const auto top = t.add_gate("no_perception", ft::GateType::kOr, {both, ecu});
  t.set_top(top);
  return t;
}

}  // namespace

TEST(FaultTree, ConstructionValidation) {
  ft::FaultTree t;
  const auto a = t.add_basic_event("a", 0.1);
  EXPECT_THROW((void)t.add_basic_event("a", 0.2), std::invalid_argument);
  EXPECT_THROW((void)t.add_basic_event("b", 1.2), std::invalid_argument);
  EXPECT_THROW((void)t.add_gate("g", ft::GateType::kAnd, {}),
               std::invalid_argument);
  EXPECT_THROW((void)t.add_gate("g", ft::GateType::kNot, {a, a}),
               std::invalid_argument);
  EXPECT_THROW((void)t.add_gate("g", ft::GateType::kKooN, {a}, 2),
               std::invalid_argument);
  EXPECT_THROW((void)t.top(), std::logic_error);
  t.set_top(a);
  EXPECT_EQ(t.top(), a);
  EXPECT_THROW((void)t.probability(99), std::out_of_range);
}

TEST(FaultTree, StructureEvaluation) {
  auto t = redundant_perception_tree();
  // Order of basic events: power, cam1, cam2, ecu.
  EXPECT_FALSE(t.evaluate_structure({false, false, false, false}));
  EXPECT_TRUE(t.evaluate_structure({true, false, false, false}));   // power
  EXPECT_FALSE(t.evaluate_structure({false, true, false, false}));  // one cam
  EXPECT_TRUE(t.evaluate_structure({false, true, true, false}));    // both cams
  EXPECT_TRUE(t.evaluate_structure({false, false, false, true}));   // ecu
}

TEST(FaultTree, MinimalCutSets) {
  auto t = redundant_perception_tree();
  const auto cuts = ft::minimal_cut_sets(t);
  // Expected: {power}, {ecu}, {cam1, cam2}.
  ASSERT_EQ(cuts.size(), 3u);
  const auto has = [&](std::vector<std::string> names) {
    ft::CutSet want;
    for (const auto& n : names) want.insert(t.id_of(n));
    return std::find(cuts.begin(), cuts.end(), want) != cuts.end();
  };
  EXPECT_TRUE(has({"power"}));
  EXPECT_TRUE(has({"ecu"}));
  EXPECT_TRUE(has({"cam1", "cam2"}));
}

TEST(FaultTree, KooNCutSets) {
  ft::FaultTree t;
  const auto a = t.add_basic_event("a", 0.1);
  const auto b = t.add_basic_event("b", 0.1);
  const auto c = t.add_basic_event("c", 0.1);
  const auto g = t.add_gate("2oo3", ft::GateType::kKooN, {a, b, c}, 2);
  t.set_top(g);
  const auto cuts = ft::minimal_cut_sets(t);
  EXPECT_EQ(cuts.size(), 3u);  // {a,b}, {a,c}, {b,c}
  for (const auto& cut : cuts) EXPECT_EQ(cut.size(), 2u);
}

TEST(FaultTree, ExactMatchesBruteForce) {
  auto t = redundant_perception_tree();
  EXPECT_NEAR(ft::exact_top_probability(t), brute_force_top(t), tol::kTiny);
}

TEST(FaultTree, ExactMatchesBruteForceRandomized) {
  // Random coherent trees with shared events.
  pr::Rng rng(31337);
  for (int trial = 0; trial < 15; ++trial) {
    ft::FaultTree t;
    std::vector<ft::NodeId> pool;
    const std::size_t nb = 3 + rng.uniform_index(4);
    for (std::size_t i = 0; i < nb; ++i) {
      pool.push_back(t.add_basic_event("e" + std::to_string(i),
                                       rng.uniform(0.01, 0.5)));
    }
    const std::size_t ng = 2 + rng.uniform_index(3);
    for (std::size_t g = 0; g < ng; ++g) {
      // Pick 2-3 random existing nodes (allows sharing).
      std::vector<ft::NodeId> ch;
      const std::size_t nc = 2 + rng.uniform_index(2);
      for (std::size_t c = 0; c < nc; ++c)
        ch.push_back(pool[rng.uniform_index(pool.size())]);
      // Dedup children (a gate with duplicate children is legal but odd).
      std::sort(ch.begin(), ch.end());
      ch.erase(std::unique(ch.begin(), ch.end()), ch.end());
      if (ch.size() < 2) continue;
      const auto type = rng.bernoulli(0.5) ? ft::GateType::kAnd
                                           : ft::GateType::kOr;
      pool.push_back(
          t.add_gate("g" + std::to_string(g), type, std::move(ch)));
    }
    t.set_top(pool.back());
    if (t.is_basic_event(pool.back())) continue;
    EXPECT_NEAR(ft::exact_top_probability(t), brute_force_top(t), tol::kIteration)
        << "trial " << trial;
  }
}

TEST(FaultTree, KooNExactAgainstBinomial) {
  // 2oo3 with identical p: P = 3p^2(1-p) + p^3.
  ft::FaultTree t;
  const double p = 0.1;
  const auto a = t.add_basic_event("a", p);
  const auto b = t.add_basic_event("b", p);
  const auto c = t.add_basic_event("c", p);
  t.set_top(t.add_gate("2oo3", ft::GateType::kKooN, {a, b, c}, 2));
  EXPECT_NEAR(ft::exact_top_probability(t), 3 * p * p * (1 - p) + p * p * p,
              tol::kRoot);
}

TEST(FaultTree, NotGateSupportedInExactOnly) {
  ft::FaultTree t;
  const auto a = t.add_basic_event("a", 0.3);
  const auto n = t.add_gate("not_a", ft::GateType::kNot, {a});
  t.set_top(n);
  EXPECT_FALSE(t.is_coherent());
  EXPECT_NEAR(ft::exact_top_probability(t), 0.7, tol::kRoot);
  EXPECT_THROW((void)ft::minimal_cut_sets(t), std::logic_error);
  EXPECT_THROW((void)ft::interval_top_probability(
                   t, {pr::ProbInterval(0.2, 0.4)}),
               std::logic_error);
}

TEST(FaultTree, ApproximationsBoundExact) {
  auto t = redundant_perception_tree();
  const double exact = ft::exact_top_probability(t);
  const double rare = ft::rare_event_approximation(t);
  const double mcub = ft::min_cut_upper_bound(t);
  EXPECT_GE(rare, exact - tol::kTiny);
  EXPECT_GE(mcub, exact - tol::kTiny);
  EXPECT_LE(mcub, rare + tol::kTiny);  // MCUB is the tighter of the two
  // For small probabilities all three are close.
  EXPECT_NEAR(rare, exact, 5e-4);
}

TEST(FaultTree, ImportanceMeasures) {
  auto t = redundant_perception_tree();
  const auto power = ft::importance(t, t.id_of("power"));
  const auto cam1 = ft::importance(t, t.id_of("cam1"));
  const auto ecu = ft::importance(t, t.id_of("ecu"));
  // The single-point-of-failure events dominate the redundant cameras.
  EXPECT_GT(power.birnbaum, cam1.birnbaum);
  EXPECT_GT(ecu.birnbaum, cam1.birnbaum);
  EXPECT_GT(power.fussell_vesely, cam1.fussell_vesely);
  // RAW of a camera is modest; RAW of power is large.
  EXPECT_GT(power.raw, cam1.raw);
  EXPECT_GE(power.rrw, 1.0);
  // Birnbaum is a probability difference in [0, 1].
  for (const auto& m : {power, cam1, ecu}) {
    EXPECT_GE(m.birnbaum, 0.0);
    EXPECT_LE(m.birnbaum, 1.0);
    EXPECT_GE(m.fussell_vesely, 0.0);
    EXPECT_LE(m.fussell_vesely, 1.0 + tol::kTiny);
  }
  EXPECT_THROW((void)ft::importance(t, t.id_of("no_perception")),
               std::invalid_argument);
}

TEST(FaultTree, IntervalEvaluationBracketsPointValues) {
  auto t = redundant_perception_tree();
  const auto events = t.basic_events();
  std::vector<pr::ProbInterval> bounds;
  for (ft::NodeId e : events) {
    const double p = t.probability(e);
    bounds.emplace_back(std::max(0.0, p - 0.01), std::min(1.0, p + 0.01));
  }
  const auto iv = ft::interval_top_probability(t, bounds);
  const double exact = ft::exact_top_probability(t);
  EXPECT_LE(iv.lo(), exact);
  EXPECT_GE(iv.hi(), exact);
  EXPECT_GT(iv.width(), 0.0);
  // Monte-Carlo containment over the probability box.
  pr::Rng rng(11);
  for (int s = 0; s < 200; ++s) {
    auto w = t;
    for (std::size_t i = 0; i < events.size(); ++i) {
      w.set_probability(events[i],
                        rng.uniform(bounds[i].lo(), bounds[i].hi()));
    }
    const double pv = ft::exact_top_probability(w);
    EXPECT_GE(pv, iv.lo() - tol::kTiny);
    EXPECT_LE(pv, iv.hi() + tol::kTiny);
  }
}

TEST(FaultTree, FuzzyEvaluationNestsWithAlpha) {
  auto t = redundant_perception_tree();
  std::vector<pr::TriangularFuzzy> fz;
  for (ft::NodeId e : t.basic_events()) {
    const double p = t.probability(e);
    fz.emplace_back(p * 0.5, p, std::min(1.0, p * 2.0));
  }
  const auto cuts = ft::fuzzy_top_probability(t, fz, 8);
  ASSERT_EQ(cuts.size(), 8u);
  // Alpha-cuts are nested: higher alpha, narrower interval; alpha=1 is
  // the crisp point value.
  for (std::size_t i = 1; i < cuts.size(); ++i) {
    EXPECT_GE(cuts[i - 1].second.width(), cuts[i].second.width());
    EXPECT_LE(cuts[i - 1].second.lo(), cuts[i].second.lo() + tol::kTiny);
    EXPECT_GE(cuts[i - 1].second.hi(), cuts[i].second.hi() - tol::kTiny);
  }
  EXPECT_NEAR(cuts.back().second.mid(), ft::exact_top_probability(t), tol::kProbSum);
  EXPECT_LT(cuts.back().second.width(), tol::kProbSum);
}

TEST(FtaToBn, CompiledNetworkReproducesExactProbability) {
  auto t = redundant_perception_tree();
  const auto compiled = ft::compile_to_bayesnet(t);
  bn::VariableElimination ve(compiled.network);
  const auto marginal = ve.query(compiled.top);
  EXPECT_NEAR(marginal.p(1), ft::exact_top_probability(t), tol::kTiny);
}

TEST(FtaToBn, DiagnosisBeyondFta) {
  // What FTA cannot do: given that the system failed, infer which root
  // cause is most likely (posterior over basic events).
  auto t = redundant_perception_tree();
  const auto compiled = ft::compile_to_bayesnet(t);
  bn::VariableElimination ve(compiled.network);
  const bn::Evidence failed{{compiled.top, 1}};
  const auto p_power = ve.query(compiled.network.id_of("power"), failed);
  const auto p_cam1 = ve.query(compiled.network.id_of("cam1"), failed);
  // Posterior failure probabilities exceed priors (explaining the failure).
  EXPECT_GT(p_power.p(1), 0.01);
  EXPECT_GT(p_cam1.p(1), 0.05);
  // Power (a single-point cut) is boosted far more than one camera.
  EXPECT_GT(p_power.p(1) / 0.01, p_cam1.p(1) / 0.05);
}

TEST(FtaToBn, KooNAndNotGatesCompile) {
  ft::FaultTree t;
  const auto a = t.add_basic_event("a", 0.2);
  const auto b = t.add_basic_event("b", 0.3);
  const auto c = t.add_basic_event("c", 0.4);
  const auto koon = t.add_gate("2oo3", ft::GateType::kKooN, {a, b, c}, 2);
  const auto safe = t.add_gate("safe", ft::GateType::kNot, {koon});
  t.set_top(safe);
  const auto compiled = ft::compile_to_bayesnet(t);
  bn::VariableElimination ve(compiled.network);
  EXPECT_NEAR(ve.query(compiled.top).p(1), ft::exact_top_probability(t), tol::kTiny);
}

TEST(FaultTree, PraEpistemicPropagation) {
  // LogNormal error factors on the basic events induce a distribution
  // over the top-event probability; the median sample sits near the
  // point estimate with the median rates, and the 95th percentile
  // exceeds it (right-skewed, as PRA expects).
  auto t = redundant_perception_tree();
  const auto events = t.basic_events();
  std::vector<pr::LogNormal> rate_uncertainty;
  for (ft::NodeId e : events) {
    // Median at the point estimate, error factor 3.
    rate_uncertainty.emplace_back(std::log(t.probability(e)),
                                  std::log(3.0) / 1.6448536269514722);
  }
  pr::Rng rng(777777);
  const auto samples = ft::sample_top_probabilities(
      t,
      [&](std::size_t i, pr::Rng& r) { return rate_uncertainty[i].sample(r); },
      4000, rng);
  ASSERT_EQ(samples.size(), 4000u);
  const double point = ft::exact_top_probability(t);
  const double median = pr::quantile(samples, 0.5);
  const double p95 = pr::quantile(samples, 0.95);
  EXPECT_NEAR(median, point, 0.4 * point);
  EXPECT_GT(p95, 1.5 * point);
  // All samples are valid probabilities.
  for (double v : samples) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_THROW(
      (void)ft::sample_top_probabilities(
          t, [](std::size_t, pr::Rng&) { return 0.5; }, 0, rng),
      std::invalid_argument);
}
