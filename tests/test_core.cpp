// Core-framework tests: the taxonomy registry, uncertainty decomposition,
// all four means engines, and the cybernetic (good-regulator) loop.
#include <gtest/gtest.h>

#include <cmath>

#include "sys/cybernetic.hpp"
#include "sys/decomposition.hpp"
#include "sys/means.hpp"
#include "sys/modeling.hpp"
#include "core/taxonomy.hpp"
#include "bayesnet/inference.hpp"
#include "perception/table1.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace co = sysuq::core;
namespace sy = sysuq::sys;
namespace pc = sysuq::perception;
namespace bn = sysuq::bayesnet;
namespace pr = sysuq::prob;

namespace {

pc::TrueWorld paper_world(double novel_rate = 0.1) {
  pc::WorldModel modeled({"car", "pedestrian"}, {2.0 / 3.0, 1.0 / 3.0});
  return pc::TrueWorld(std::move(modeled), {"unknown_object"}, novel_rate);
}

}  // namespace

TEST(Taxonomy, EnumNames) {
  EXPECT_STREQ(co::to_string(co::UncertaintyType::kAleatory), "aleatory");
  EXPECT_STREQ(co::to_string(co::UncertaintyType::kOntological), "ontological");
  EXPECT_STREQ(co::to_string(co::Mean::kPrevention), "prevention");
  EXPECT_STREQ(co::to_string(co::Mean::kForecasting), "forecasting");
  EXPECT_STREQ(co::to_string(co::Phase::kOperation), "operation");
  EXPECT_EQ(co::all_uncertainty_types().size(), 3u);
  EXPECT_EQ(co::all_means().size(), 4u);
}

TEST(Taxonomy, PaperCatalogCoversEveryMeanAndType) {
  const auto reg = co::MethodRegistry::paper_catalog();
  EXPECT_GE(reg.size(), 10u);
  for (const auto m : co::all_means()) {
    EXPECT_FALSE(reg.by_mean(m).empty()) << co::to_string(m);
  }
  for (const auto t : co::all_uncertainty_types()) {
    EXPECT_FALSE(reg.by_type(t).empty()) << co::to_string(t);
  }
  EXPECT_TRUE(reg.uncovered_types().empty());
  // The paper's key observation: tolerance hardly addresses ontological
  // uncertainty (Sec. IV), while removal does.
  EXPECT_EQ(reg.coverage(co::Mean::kTolerance, co::UncertaintyType::kOntological),
            0u);
  EXPECT_GT(reg.coverage(co::Mean::kRemoval, co::UncertaintyType::kOntological),
            0u);
}

TEST(Taxonomy, RegistryValidation) {
  co::MethodRegistry reg;
  reg.add({"m1", co::Mean::kRemoval, {co::UncertaintyType::kEpistemic},
           co::Phase::kDesignTime, "x"});
  EXPECT_THROW(reg.add({"m1", co::Mean::kRemoval,
                        {co::UncertaintyType::kEpistemic},
                        co::Phase::kDesignTime, "x"}),
               std::invalid_argument);
  EXPECT_THROW(
      reg.add({"", co::Mean::kRemoval, {co::UncertaintyType::kEpistemic},
               co::Phase::kDesignTime, "x"}),
      std::invalid_argument);
  EXPECT_THROW(reg.add({"m2", co::Mean::kRemoval, {}, co::Phase::kDesignTime,
                        "x"}),
               std::invalid_argument);
  // Aleatory and ontological are uncovered in this tiny registry.
  EXPECT_EQ(reg.uncovered_types().size(), 2u);
}

TEST(Decomposition, BudgetAndDominance) {
  const pr::Categorical agree({0.9, 0.1});
  const auto b = sy::decompose({agree, agree}, 0.02);
  EXPECT_NEAR(b.epistemic, 0.0, tol::kTiny);
  EXPECT_GT(b.aleatory, 0.0);
  EXPECT_DOUBLE_EQ(b.ontological, 0.02);
  EXPECT_EQ(b.dominant(), "aleatory");

  const auto conflict = sy::decompose(
      {pr::Categorical({1.0, 0.0}), pr::Categorical({0.0, 1.0})}, 0.02);
  EXPECT_EQ(conflict.dominant(), "epistemic");

  const auto onto = sy::decompose({agree, agree}, 0.5);
  EXPECT_EQ(onto.dominant(), "ontological");

  EXPECT_THROW((void)sy::decompose({agree}, 1.5), std::invalid_argument);
}

TEST(Decomposition, SurpriseFactorOnPaperNetwork) {
  // Convention: rows = model prediction (perception), cols = system
  // (ground truth). A sharper perception chain has a lower surprise.
  const auto net = pc::table1_network();
  bn::VariableElimination ve(net);
  const auto joint = ve.joint(1, 0);  // X = perception, Y = ground truth
  const double s = sy::surprise_factor(joint);
  const double ns = sy::normalized_surprise(joint);
  EXPECT_GT(s, 0.0);
  EXPECT_GT(ns, 0.0);
  EXPECT_LT(ns, 1.0);

  // Degrade the chain to uninformative: surprise rises to H(ground truth).
  auto blind = pc::table1_network();
  blind.update_cpt_rows(1, {pr::Categorical::uniform(4),
                            pr::Categorical::uniform(4),
                            pr::Categorical::uniform(4)});
  bn::VariableElimination ve2(blind);
  const auto joint2 = ve2.joint(1, 0);
  EXPECT_GT(sy::surprise_factor(joint2), s);
  EXPECT_NEAR(sy::normalized_surprise(joint2), 1.0, tol::kProbSum);
}

TEST(Prevention, OddRestrictionReducesExposure) {
  const auto world = paper_world(0.1);
  const auto r = sy::apply_odd_restriction(world, {0}, 0.2);
  EXPECT_NEAR(r.excluded_encounter_fraction, 1.0 / 3.0, tol::kTiny);
  EXPECT_DOUBLE_EQ(r.novel_rate_before, 0.1);
  EXPECT_NEAR(r.novel_rate_after, 0.02, tol::kTiny);
  EXPECT_NEAR(r.epistemic_parameter_fraction, 0.5, tol::kTiny);
  EXPECT_THROW((void)sy::apply_odd_restriction(world, {0}, 1.5),
               std::invalid_argument);
}

TEST(Removal, LoopShrinksEpistemicAndGap) {
  // Truth = Table I network; deployed starts from uniform rows.
  const auto truth = pc::table1_network();
  auto deployed = pc::table1_network();
  deployed.update_cpt_rows(1, {pr::Categorical::uniform(4),
                               pr::Categorical::uniform(4),
                               pr::Categorical::uniform(4)});
  sy::RemovalLoop loop(truth, deployed, 1, pc::kGtUnknown);
  pr::Rng rng(2027);
  const auto trace = loop.run({100, 1000, 10000, 50000}, rng);
  ASSERT_EQ(trace.size(), 4u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LT(trace[i].epistemic_width, trace[i - 1].epistemic_width);
    EXPECT_LE(trace[i].model_gap, trace[i - 1].model_gap + 0.02);
  }
  EXPECT_LT(trace.back().model_gap, 0.03);
  // Ontological events accumulate at the 10% unknown rate.
  EXPECT_NEAR(static_cast<double>(trace.back().ontological_events) / 50000.0,
              0.1, 0.01);
  // The deployed model now approximates Table I.
  EXPECT_NEAR(deployed.cpt_rows(1)[0].p(0), 0.9, 0.05);
}

TEST(Removal, Validation) {
  const auto truth = pc::table1_network();
  auto deployed = pc::table1_network();
  sy::RemovalLoop loop(truth, deployed, 1, pc::kGtUnknown);
  pr::Rng rng(1);
  EXPECT_THROW((void)loop.run({}, rng), std::invalid_argument);
  EXPECT_THROW((void)loop.run({10, 10}, rng), std::invalid_argument);
}

TEST(Tolerance, RedundancyReportShowsGain) {
  const auto world = paper_world(0.05);
  const auto sensor = pc::ConfusionSensor::make_default(2, 1, 0.9, 0.8);
  pc::RedundantArchitecture single{{sensor}, pc::FusionRule::kMajorityVote,
                                   0.0, 0.1};
  pc::RedundantArchitecture triple{{sensor, sensor, sensor},
                                   pc::FusionRule::kMajorityVote, 0.0, 0.1};
  pr::Rng rng(2028);
  const auto report = sy::compare_tolerance(single, triple, world, 40000, rng);
  EXPECT_GT(report.hazard_reduction_factor, 1.0);
  EXPECT_GT(report.redundant.accuracy, report.single.accuracy);
}

TEST(Forecasting, ReleaseDecisionLogic) {
  sy::ReleaseCriteria criteria;  // defaults
  // Insufficient evidence: everything blocks.
  sy::ReleaseEvidence weak;
  const auto d1 = sy::assess_release(weak, criteria);
  EXPECT_FALSE(d1.ready);
  EXPECT_GE(d1.blockers.size(), 3u);

  // Strong evidence: release.
  sy::ReleaseEvidence strong;
  strong.field_observations = 100000;
  strong.epistemic_width = 0.01;
  strong.missing_mass = 0.001;
  strong.hazardous_events = 10;  // rate 1e-4, Wilson upper ~1.9e-4
  const auto d2 = sy::assess_release(strong, criteria);
  EXPECT_TRUE(d2.ready) << (d2.blockers.empty() ? "" : d2.blockers[0]);
  EXPECT_LT(d2.hazard_rate_upper, criteria.max_hazard_rate_upper);

  // One criterion failing blocks with a specific reason.
  auto partial = strong;
  partial.missing_mass = 0.2;
  const auto d3 = sy::assess_release(partial, criteria);
  EXPECT_FALSE(d3.ready);
  ASSERT_EQ(d3.blockers.size(), 1u);
  EXPECT_NE(d3.blockers[0].find("ontological"), std::string::npos);
}

TEST(Cybernetic, GoodRegulatorRegretShrinksWithModelFidelity) {
  // Fig. 1 / Conant-Ashby: as the organization's model of the controlled
  // system improves (more field observations), its regulation approaches
  // the oracle policy.
  const auto world = paper_world(0.05);
  const auto sensor = pc::ConfusionSensor::make_default(2, 1, 0.85, 0.8);
  sy::DecisionCosts costs{1.0, 0.1, 0.0};
  sy::CyberneticLoop loop(world, sensor, costs);
  pr::Rng rng(2029);
  const auto trace = loop.run({20, 500, 20000}, rng);
  ASSERT_EQ(trace.size(), 3u);
  // Model gap decreases...
  EXPECT_GT(trace.front().model_gap, trace.back().model_gap);
  // ...and the final policy is near-oracle.
  EXPECT_LT(trace.back().regret, 0.02);
  EXPECT_GE(trace.back().oracle_cost, 0.0);
}

TEST(Cybernetic, Validation) {
  const auto world = paper_world(0.05);
  const auto sensor = pc::ConfusionSensor::make_default(2, 1, 0.85, 0.8);
  EXPECT_THROW(sy::CyberneticLoop(world, sensor, {0.0, 0.1, 0.0}),
               std::invalid_argument);
  sy::CyberneticLoop loop(world, sensor, {1.0, 0.1, 0.0});
  pr::Rng rng(4);
  EXPECT_THROW((void)loop.run({}, rng), std::invalid_argument);
  EXPECT_THROW((void)loop.run({5, 5}, rng), std::invalid_argument);
  // Sensor lacking novel-class rows is rejected.
  const auto short_sensor = pc::ConfusionSensor::make_default(2, 0, 0.85, 0.8);
  EXPECT_THROW(sy::CyberneticLoop(world, short_sensor, {1.0, 0.1, 0.0}),
               std::invalid_argument);
}

TEST(ModelFidelity, TracksAgreementAndSurprise) {
  // Perfect model: prediction == outcome always.
  sy::ModelFidelityTracker perfect(3, 3);
  for (int i = 0; i < 300; ++i) perfect.observe(i % 3, i % 3);
  EXPECT_DOUBLE_EQ(perfect.agreement(), 1.0);
  EXPECT_NEAR(perfect.surprise(), 0.0, tol::kTiny);
  EXPECT_EQ(perfect.verdict(), "adequate");

  // Useless model: outcome independent of prediction.
  sy::ModelFidelityTracker blind(2, 2);
  for (int i = 0; i < 400; ++i) blind.observe(i % 2, (i / 2) % 2);
  EXPECT_NEAR(blind.normalized(), 1.0, tol::kProbSum);
  EXPECT_EQ(blind.verdict(), "ontological gap (extend the model)");

  // Mostly-right model lands in the epistemic band.
  sy::ModelFidelityTracker decent(2, 2);
  for (int i = 0; i < 1000; ++i) {
    const std::size_t pred = i % 2;
    decent.observe(pred, i % 10 == 0 ? 1 - pred : pred);
  }
  EXPECT_GT(decent.agreement(), 0.85);
  EXPECT_EQ(decent.verdict(), "epistemic gap (refine the model)");
}

TEST(ModelFidelity, Validation) {
  EXPECT_THROW(sy::ModelFidelityTracker(1, 2), std::invalid_argument);
  sy::ModelFidelityTracker t(2, 3);
  EXPECT_THROW(t.observe(2, 0), std::out_of_range);
  EXPECT_THROW((void)t.joint(), std::logic_error);
  t.observe(0, 0);
  EXPECT_THROW((void)t.agreement(), std::logic_error);  // 2 != 3 states
  EXPECT_THROW((void)t.verdict(0.5, 0.4), std::invalid_argument);
}

TEST(ModelFidelity, MatchesVariableEliminationJoint) {
  // Sampling the Table I network and tracking (perception, ground truth)
  // pairs converges to the exact joint's surprise factor.
  const auto net = pc::table1_network();
  bn::VariableElimination ve(net);
  const double exact = sy::surprise_factor(ve.joint(1, 0));
  sy::ModelFidelityTracker tracker(4, 3);
  pr::Rng rng(13579);
  for (int i = 0; i < 200000; ++i) {
    const auto s = net.sample(rng);
    tracker.observe(s[1], s[0]);
  }
  EXPECT_NEAR(tracker.surprise(), exact, 0.01);
}
