// Kernel differential tests (label: kernels): the flat strided kernels
// (bayesnet/kernels) and the arena they allocate from are pinned against
// an in-test copy of the legacy mixed-radix factor algebra over
// randomized scopes (cardinalities 2-6), evidence reductions, and
// log-space round trips. Also carries the factor-algebra bug-sweep
// regressions: checked table-size overflow in the Factor constructor
// and pairwise (cascade) summation in Factor::total().
//
// Seeded via SYSUQ_DIFFERENTIAL_SEED like the differential suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <vector>

#include "bayesnet/arena.hpp"
#include "bayesnet/factor.hpp"
#include "bayesnet/kernels.hpp"
#include "bayesnet/ordering.hpp"
#include "core/contracts.hpp"
#include "prob/rng.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace bn = sysuq::bayesnet;
namespace kn = sysuq::bayesnet::kernels;
namespace pr = sysuq::prob;

namespace {

std::uint64_t differential_seed() {
  if (const char* env = std::getenv("SYSUQ_DIFFERENTIAL_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20260805ULL;
}

// ---- legacy mixed-radix reference algebra ----
//
// A faithful copy of the pre-kernel Factor implementation: per-cell
// mixed-radix counters and bounds-checked at() lookups. The kernels
// must reproduce it exactly (product/reduce) or to summation-order
// tolerance (multi-variable marginalize).

bn::Factor ref_product(const bn::Factor& a, const bn::Factor& b) {
  std::vector<bn::VariableId> merged;
  std::vector<std::size_t> merged_cards;
  {
    std::size_t i = 0, j = 0;
    while (i < a.scope().size() || j < b.scope().size()) {
      if (j == b.scope().size() ||
          (i < a.scope().size() && a.scope()[i] < b.scope()[j])) {
        merged.push_back(a.scope()[i]);
        merged_cards.push_back(a.cardinalities()[i]);
        ++i;
      } else if (i == a.scope().size() || b.scope()[j] < a.scope()[i]) {
        merged.push_back(b.scope()[j]);
        merged_cards.push_back(b.cardinalities()[j]);
        ++j;
      } else {
        merged.push_back(a.scope()[i]);
        merged_cards.push_back(a.cardinalities()[i]);
        ++i;
        ++j;
      }
    }
  }
  std::vector<std::size_t> map_a(merged.size(), SIZE_MAX),
      map_b(merged.size(), SIZE_MAX);
  for (std::size_t k = 0; k < merged.size(); ++k) {
    const auto ia =
        std::lower_bound(a.scope().begin(), a.scope().end(), merged[k]);
    if (ia != a.scope().end() && *ia == merged[k])
      map_a[k] = static_cast<std::size_t>(ia - a.scope().begin());
    const auto ib =
        std::lower_bound(b.scope().begin(), b.scope().end(), merged[k]);
    if (ib != b.scope().end() && *ib == merged[k])
      map_b[k] = static_cast<std::size_t>(ib - b.scope().begin());
  }
  std::size_t total_size = 1;
  for (std::size_t c : merged_cards) total_size *= c;
  std::vector<double> out(total_size);
  std::vector<std::size_t> assign(merged.size(), 0);
  std::vector<std::size_t> sa(a.scope().size(), 0), sb(b.scope().size(), 0);
  for (std::size_t flat = 0; flat < total_size; ++flat) {
    for (std::size_t k = 0; k < merged.size(); ++k) {
      if (map_a[k] != SIZE_MAX) sa[map_a[k]] = assign[k];
      if (map_b[k] != SIZE_MAX) sb[map_b[k]] = assign[k];
    }
    out[flat] = a.at(sa) * b.at(sb);
    for (std::size_t k = merged.size(); k-- > 0;) {
      if (++assign[k] < merged_cards[k]) break;
      assign[k] = 0;
    }
  }
  return bn::Factor(std::move(merged), std::move(merged_cards), std::move(out));
}

bn::Factor ref_marginalize(const bn::Factor& f, bn::VariableId v) {
  const auto it = std::lower_bound(f.scope().begin(), f.scope().end(), v);
  const auto pos = static_cast<std::size_t>(it - f.scope().begin());
  std::vector<bn::VariableId> new_scope;
  std::vector<std::size_t> new_cards;
  for (std::size_t i = 0; i < f.scope().size(); ++i) {
    if (i == pos) continue;
    new_scope.push_back(f.scope()[i]);
    new_cards.push_back(f.cardinalities()[i]);
  }
  std::size_t new_size = 1;
  for (std::size_t c : new_cards) new_size *= c;
  std::vector<double> out(new_size, 0.0);
  std::vector<std::size_t> assign(f.scope().size(), 0);
  for (std::size_t flat = 0; flat < f.size(); ++flat) {
    std::size_t nidx = 0;
    for (std::size_t i = 0; i < f.scope().size(); ++i) {
      if (i == pos) continue;
      nidx = nidx * f.cardinalities()[i] + assign[i];
    }
    out[nidx] += f.values()[flat];
    for (std::size_t k = f.scope().size(); k-- > 0;) {
      if (++assign[k] < f.cardinalities()[k]) break;
      assign[k] = 0;
    }
  }
  return bn::Factor(std::move(new_scope), std::move(new_cards), std::move(out));
}

bn::Factor ref_reduce(const bn::Factor& f, bn::VariableId v, std::size_t state) {
  const auto it = std::lower_bound(f.scope().begin(), f.scope().end(), v);
  const auto pos = static_cast<std::size_t>(it - f.scope().begin());
  std::vector<bn::VariableId> new_scope;
  std::vector<std::size_t> new_cards;
  for (std::size_t i = 0; i < f.scope().size(); ++i) {
    if (i == pos) continue;
    new_scope.push_back(f.scope()[i]);
    new_cards.push_back(f.cardinalities()[i]);
  }
  std::size_t new_size = 1;
  for (std::size_t c : new_cards) new_size *= c;
  std::vector<double> out(new_size, 0.0);
  std::vector<std::size_t> assign(f.scope().size(), 0);
  for (std::size_t flat = 0; flat < f.size(); ++flat) {
    if (assign[pos] == state) {
      std::size_t nidx = 0;
      for (std::size_t i = 0; i < f.scope().size(); ++i) {
        if (i == pos) continue;
        nidx = nidx * f.cardinalities()[i] + assign[i];
      }
      out[nidx] = f.values()[flat];
    }
    for (std::size_t k = f.scope().size(); k-- > 0;) {
      if (++assign[k] < f.cardinalities()[k]) break;
      assign[k] = 0;
    }
  }
  return bn::Factor(std::move(new_scope), std::move(new_cards), std::move(out));
}

// ---- random factor generation ----
//
// One shared cardinality table per test run keeps shared variables
// consistent across factors, as the kernels' merge contract requires.

struct Universe {
  std::vector<std::size_t> cards;  // per VariableId, 2..6 states
};

Universe random_universe(pr::Rng& rng, std::size_t nvars) {
  Universe u;
  u.cards.reserve(nvars);
  for (std::size_t i = 0; i < nvars; ++i)
    u.cards.push_back(2 + rng.uniform_index(5));
  return u;
}

bn::Factor random_factor(pr::Rng& rng, const Universe& u, std::size_t rank,
                         bool with_zeros = false) {
  std::vector<bn::VariableId> ids(u.cards.size());
  std::iota(ids.begin(), ids.end(), 0);
  for (std::size_t i = 0; i < rank; ++i) {
    const std::size_t j = i + rng.uniform_index(ids.size() - i);
    std::swap(ids[i], ids[j]);
  }
  ids.resize(rank);
  std::sort(ids.begin(), ids.end());
  std::vector<std::size_t> cards;
  cards.reserve(rank);
  std::size_t size = 1;
  for (const bn::VariableId v : ids) {
    cards.push_back(u.cards[v]);
    size *= u.cards[v];
  }
  std::vector<double> values(size);
  for (double& x : values) {
    x = (with_zeros && rng.bernoulli(0.15)) ? 0.0 : rng.uniform() + 0.05;
  }
  return bn::Factor(std::move(ids), std::move(cards), std::move(values));
}

void expect_factors_equal(const bn::Factor& got, const bn::Factor& want,
                          double tol = 0.0) {
  ASSERT_EQ(got.scope(), want.scope());
  ASSERT_EQ(got.cardinalities(), want.cardinalities());
  ASSERT_EQ(got.values().size(), want.values().size());
  for (std::size_t i = 0; i < got.values().size(); ++i) {
    if (tol == 0.0) {
      EXPECT_DOUBLE_EQ(got.values()[i], want.values()[i]) << "cell " << i;
    } else {
      EXPECT_NEAR(got.values()[i], want.values()[i],
                  tol * std::max(1.0, std::abs(want.values()[i])))
          << "cell " << i;
    }
  }
}

}  // namespace

// ---- strided kernels vs the legacy mixed-radix algebra ----

TEST(Kernels, ProductMatchesLegacyOverRandomScopes) {
  pr::Rng rng(differential_seed());
  for (int round = 0; round < 200; ++round) {
    const Universe u = random_universe(rng, 6);
    const bn::Factor a =
        random_factor(rng, u, rng.uniform_index(4), /*with_zeros=*/true);
    const bn::Factor b =
        random_factor(rng, u, 1 + rng.uniform_index(3), /*with_zeros=*/true);
    expect_factors_equal(a.product(b), ref_product(a, b));
  }
}

TEST(Kernels, MarginalizeMatchesLegacyOverRandomScopes) {
  pr::Rng rng(differential_seed() + 1);
  for (int round = 0; round < 200; ++round) {
    const Universe u = random_universe(rng, 6);
    const std::size_t rank = 1 + rng.uniform_index(4);
    const bn::Factor f = random_factor(rng, u, rank);
    const bn::VariableId v = f.scope()[rng.uniform_index(rank)];
    expect_factors_equal(f.marginalize(v), ref_marginalize(f, v));
  }
}

TEST(Kernels, ReduceMatchesLegacyOverRandomEvidence) {
  pr::Rng rng(differential_seed() + 2);
  for (int round = 0; round < 200; ++round) {
    const Universe u = random_universe(rng, 6);
    const std::size_t rank = 1 + rng.uniform_index(4);
    const bn::Factor f = random_factor(rng, u, rank, /*with_zeros=*/true);
    const std::size_t pos = rng.uniform_index(rank);
    const bn::VariableId v = f.scope()[pos];
    const std::size_t state = rng.uniform_index(f.cardinalities()[pos]);
    expect_factors_equal(f.reduce(v, state), ref_reduce(f, v, state));
  }
}

TEST(Kernels, MultiVariableMarginalizeMatchesRepeatedSingle) {
  pr::Rng rng(differential_seed() + 3);
  bn::Arena arena;
  for (int round = 0; round < 100; ++round) {
    arena.reset();
    const Universe u = random_universe(rng, 6);
    const std::size_t rank = 2 + rng.uniform_index(3);
    const bn::Factor f = random_factor(rng, u, rank);
    // Keep a random (possibly empty) subset of the scope.
    std::vector<bn::VariableId> keep, drop;
    for (const bn::VariableId v : f.scope()) {
      (rng.bernoulli(0.5) ? keep : drop).push_back(v);
    }
    bn::Factor want = f;
    for (const bn::VariableId v : drop) want = ref_marginalize(want, v);

    const kn::Table got =
        kn::marginalize_keep(kn::view_of(f), keep.data(), keep.size(), arena);
    ASSERT_EQ(got.size, want.size());
    for (std::size_t i = 0; i < got.size; ++i) {
      EXPECT_NEAR(got.values[i], want.values()[i],
                  tol::kTiny * std::max(1.0, want.values()[i]));
    }
  }
}

TEST(Kernels, ProductIsCommutativeAndUnitIsIdentity) {
  pr::Rng rng(differential_seed() + 4);
  bn::Arena arena;
  for (int round = 0; round < 50; ++round) {
    arena.reset();
    const Universe u = random_universe(rng, 5);
    const bn::Factor a = random_factor(rng, u, 1 + rng.uniform_index(3));
    const bn::Factor b = random_factor(rng, u, 1 + rng.uniform_index(3));
    expect_factors_equal(a.product(b), b.product(a));

    const kn::Table viaUnit =
        kn::product(kn::view_of(a), kn::unit_view(), arena);
    ASSERT_EQ(viaUnit.size, a.size());
    for (std::size_t i = 0; i < viaUnit.size; ++i)
      EXPECT_DOUBLE_EQ(viaUnit.values[i], a.values()[i]);
  }
}

// ---- log-space kernels ----

TEST(Kernels, LogProductMatchesLinearProduct) {
  pr::Rng rng(differential_seed() + 5);
  bn::Arena arena;
  for (int round = 0; round < 100; ++round) {
    arena.reset();
    const Universe u = random_universe(rng, 5);
    const bn::Factor a =
        random_factor(rng, u, rng.uniform_index(4), /*with_zeros=*/true);
    const bn::Factor b =
        random_factor(rng, u, 1 + rng.uniform_index(3), /*with_zeros=*/true);
    const bn::Factor linear = a.product(b);

    double* la = arena.alloc<double>(a.size());
    double* lb = arena.alloc<double>(b.size());
    kn::to_log(a.values().data(), a.size(), la);
    kn::to_log(b.values().data(), b.size(), lb);
    kn::View va = kn::view_of(a);
    va.values = la;
    kn::View vb = kn::view_of(b);
    vb.values = lb;
    double* lout = arena.alloc<double>(linear.size());
    kn::log_product_into(va, vb, linear.scope().data(),
                         linear.cardinalities().data(), linear.scope().size(),
                         lout);
    for (std::size_t i = 0; i < linear.size(); ++i) {
      const double want = linear.values()[i];
      if (want == 0.0) {
        EXPECT_EQ(lout[i], -std::numeric_limits<double>::infinity());
      } else {
        EXPECT_NEAR(std::exp(lout[i]), want, tol::kTiny * want);
      }
    }
  }
}

TEST(Kernels, LogMarginalizeMatchesLinearMarginalize) {
  pr::Rng rng(differential_seed() + 6);
  bn::Arena arena;
  for (int round = 0; round < 100; ++round) {
    arena.reset();
    const Universe u = random_universe(rng, 5);
    const std::size_t rank = 1 + rng.uniform_index(4);
    const bn::Factor f = random_factor(rng, u, rank, /*with_zeros=*/true);
    std::vector<bn::VariableId> keep;
    for (const bn::VariableId v : f.scope()) {
      if (rng.bernoulli(0.5)) keep.push_back(v);
    }
    const kn::Table linear =
        kn::marginalize_keep(kn::view_of(f), keep.data(), keep.size(), arena);

    double* lf = arena.alloc<double>(f.size());
    kn::to_log(f.values().data(), f.size(), lf);
    kn::View vf = kn::view_of(f);
    vf.values = lf;
    double* lout = arena.alloc<double>(linear.size);
    kn::log_marginalize_keep_into(vf, keep.data(), keep.size(), arena, lout);
    for (std::size_t i = 0; i < linear.size; ++i) {
      const double want = linear.values[i];
      if (want == 0.0) {
        EXPECT_EQ(lout[i], -std::numeric_limits<double>::infinity());
      } else {
        EXPECT_NEAR(std::exp(lout[i]), want, tol::kTiny * want);
      }
    }
  }
}

TEST(Kernels, LogTotalSurvivesMagnitudesALinearSumCannot) {
  // 400 cells each carrying log-mass -1840 (~1e-800 linear): exp()
  // underflows every cell to zero, so a linear sum-then-log gives -inf.
  // The max-shifted log-sum-exp must return -1840 + log(400).
  std::vector<double> logs(400, -1840.0);
  const double lt = kn::log_total(logs.data(), logs.size());
  EXPECT_TRUE(std::isfinite(lt));
  EXPECT_NEAR(lt, -1840.0 + std::log(400.0), tol::kProbSum);
  EXPECT_EQ(kn::log_total(nullptr, 0),
            -std::numeric_limits<double>::infinity());
}

// ---- scaled / linear elimination ----

TEST(Kernels, EliminateLinearMatchesLegacyEliminateWithOrder) {
  pr::Rng rng(differential_seed() + 7);
  bn::Arena arena;
  for (int round = 0; round < 50; ++round) {
    arena.reset();
    const Universe u = random_universe(rng, 6);
    std::vector<bn::Factor> factors;
    const std::size_t nf = 2 + rng.uniform_index(4);
    for (std::size_t i = 0; i < nf; ++i)
      factors.push_back(random_factor(rng, u, 1 + rng.uniform_index(3)));
    // Eliminate a random subset of the union scope.
    std::vector<bn::VariableId> order;
    for (bn::VariableId v = 0; v < u.cards.size(); ++v) {
      if (rng.bernoulli(0.6)) order.push_back(v);
    }

    // Reference: legacy optional-slot fold over the same order.
    bn::Factor want = bn::Factor::unit();
    {
      std::vector<bn::Factor> live = factors;
      for (const bn::VariableId v : order) {
        std::vector<bn::Factor> next;
        bn::Factor acc = bn::Factor::unit();
        bool have = false;
        for (const bn::Factor& f : live) {
          if (f.contains(v)) {
            acc = have ? ref_product(acc, f) : f;
            have = true;
          } else {
            next.push_back(f);
          }
        }
        if (have) next.push_back(ref_marginalize(acc, v));
        live = std::move(next);
      }
      for (const bn::Factor& f : live) want = ref_product(want, f);
    }

    const bn::Factor got = bn::eliminate_with_order(factors, order);
    ASSERT_EQ(got.scope(), want.scope());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got.values()[i], want.values()[i],
                  tol::kTiny * std::max(1.0, want.values()[i]));
    }

    std::vector<kn::View> views;
    for (const bn::Factor& f : factors) views.push_back(kn::view_of(f));
    const kn::ScaledFactor scaled =
        kn::eliminate_scaled(std::move(views), order, arena);
    // Ordinary magnitudes: no rescale may fire, and the scaled result
    // must equal the linear one exactly.
    EXPECT_EQ(scaled.log_scale, 0.0);
    expect_factors_equal(scaled.factor, got);
  }
}

TEST(Kernels, EliminateScaledSurvivesDeepUnderflow) {
  // 250 chained binary factors with constant mass 1e-2 per cell: the
  // linear total is 2^251 * 1e-500, far below the smallest double, so
  // the legacy path returns an exactly-zero factor. The scaled path
  // must keep log P finite and match the analytic value.
  const std::size_t n = 250;
  std::vector<bn::Factor> factors;
  factors.emplace_back(std::vector<bn::VariableId>{0},
                       std::vector<std::size_t>{2},
                       std::vector<double>{1e-2, 1e-2});
  for (bn::VariableId v = 0; v + 1 < n; ++v) {
    factors.emplace_back(std::vector<bn::VariableId>{v, v + 1},
                         std::vector<std::size_t>{2, 2},
                         std::vector<double>(4, 1e-2));
  }
  std::vector<bn::VariableId> order(n);
  std::iota(order.begin(), order.end(), 0);

  const bn::Factor linear = bn::eliminate_with_order(factors, order);
  EXPECT_EQ(linear.total(), 0.0);  // the legacy underflow this PR fixes

  bn::Arena arena;
  std::vector<kn::View> views;
  for (const bn::Factor& f : factors) views.push_back(kn::view_of(f));
  const kn::ScaledFactor scaled =
      kn::eliminate_scaled(std::move(views), order, arena);
  ASSERT_FALSE(scaled.impossible());
  // log P = sum over 2^n assignments: n factors of 1e-2 per assignment.
  const double expected =
      static_cast<double>(n) * std::log(2.0) + static_cast<double>(n) * std::log(1e-2);
  EXPECT_NEAR(scaled.log_total(), expected, 1e-6 * std::abs(expected));
}

TEST(Kernels, EliminateScaledShortCircuitsGenuineZeroMass) {
  // P(v0) = {1, 0} times an indicator on v0 = 1: genuinely impossible.
  std::vector<bn::Factor> factors;
  factors.emplace_back(std::vector<bn::VariableId>{0},
                       std::vector<std::size_t>{2},
                       std::vector<double>{1.0, 0.0});
  factors.emplace_back(std::vector<bn::VariableId>{0},
                       std::vector<std::size_t>{2},
                       std::vector<double>{0.0, 1.0});
  bn::Arena arena;
  std::vector<kn::View> views;
  for (const bn::Factor& f : factors) views.push_back(kn::view_of(f));
  const kn::ScaledFactor scaled =
      kn::eliminate_scaled(std::move(views), {0}, arena);
  EXPECT_TRUE(scaled.impossible());
  EXPECT_EQ(scaled.log_total(), -std::numeric_limits<double>::infinity());
}

// ---- arena ----

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  bn::Arena arena(128);
  char* c = arena.alloc<char>(3);
  double* d = arena.alloc<double>(4);
  std::int32_t* i = arena.alloc<std::int32_t>(2);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(i) % alignof(std::int32_t), 0u);
  // Writes through one pointer must not alias another allocation.
  std::fill(c, c + 3, 'x');
  std::fill(d, d + 4, 1.5);
  std::fill(i, i + 2, 7);
  EXPECT_EQ(c[2], 'x');
  EXPECT_EQ(d[3], 1.5);
  EXPECT_EQ(i[1], 7);
  EXPECT_GE(arena.bytes_used(), 3 + 4 * sizeof(double) + 2 * sizeof(std::int32_t));
}

TEST(Arena, GrowsAcrossChunksAndResetKeepsLargest) {
  bn::Arena arena(64);
  // Force several chunk additions.
  for (int round = 0; round < 6; ++round) {
    double* p = arena.alloc<double>(100);
    std::fill(p, p + 100, static_cast<double>(round));
    EXPECT_EQ(p[99], static_cast<double>(round));
  }
  const std::size_t grown_capacity = arena.bytes_capacity();
  EXPECT_GE(grown_capacity, 6 * 100 * sizeof(double));
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_LE(arena.bytes_capacity(), grown_capacity);
  EXPECT_GT(arena.bytes_capacity(), 0u);
  // Steady state: after at most one more growth rep (reset keeps only
  // the single largest chunk, which may be smaller than the workload's
  // total), the retained chunk absorbs the whole workload and the
  // capacity stops changing.
  for (int rep = 0; rep < 2; ++rep) {
    arena.reset();
    for (int round = 0; round < 6; ++round) (void)arena.alloc<double>(100);
  }
  const std::size_t steady = arena.bytes_capacity();
  for (int rep = 0; rep < 3; ++rep) {
    arena.reset();
    for (int round = 0; round < 6; ++round) (void)arena.alloc<double>(100);
  }
  EXPECT_EQ(arena.bytes_capacity(), steady);
}

TEST(Arena, OverflowingElementCountViolatesContract) {
  bn::Arena arena;
  EXPECT_THROW((void)arena.alloc<double>(SIZE_MAX / 2),
               sysuq::contracts::ContractViolation);
}

// ---- bug-sweep regressions ----

TEST(KernelsRegression, CheckedMultiplyDetectsOverflow) {
  EXPECT_FALSE(kn::mul_overflows(0, SIZE_MAX));
  EXPECT_FALSE(kn::mul_overflows(SIZE_MAX, 1));
  EXPECT_TRUE(kn::mul_overflows(SIZE_MAX, 2));
  EXPECT_TRUE(kn::mul_overflows(SIZE_MAX / 2 + 1, 2));
  const std::size_t huge[] = {std::size_t{1} << 32, std::size_t{1} << 32};
  EXPECT_THROW((void)kn::checked_table_size(huge, 2, "test"),
               sysuq::contracts::ContractViolation);
}

TEST(KernelsRegression, FactorConstructorRejectsOverflowingCardinalities) {
  // Pre-fix, 2^32 * 2^32 wrapped std::size_t to 0 and the constructor
  // accepted an empty value vector for an impossibly large table.
  EXPECT_THROW(bn::Factor({0, 1},
                          {std::size_t{1} << 32, std::size_t{1} << 32}, {}),
               sysuq::contracts::ContractViolation);
}

TEST(KernelsRegression, PairwiseTotalRecoversMassANaiveFoldLoses) {
  // One huge cell followed by 65535 units: a naive left fold adds each
  // 1.0 into 1e16 and rounds it away entirely; pairwise summation sums
  // the units first.
  std::vector<double> values(65536, 1.0);
  values[0] = 1e16;
  const double naive = std::accumulate(values.begin(), values.end(), 0.0);
  EXPECT_EQ(naive, 1e16);  // the legacy accumulation bug
  const bn::Factor f({0}, {65536}, std::move(values));
  // The pairwise base case (32 naive adds) still loses the ~31 units
  // sharing a block with the huge cell; everything else is recovered.
  EXPECT_NEAR(f.total(), 1e16 + 65535.0, 64.0);
}

TEST(KernelsRegression, PairwiseTotalMatchesExactSumOnSmallFactors) {
  pr::Rng rng(differential_seed() + 8);
  for (int round = 0; round < 50; ++round) {
    const Universe u = random_universe(rng, 5);
    const bn::Factor f = random_factor(rng, u, 1 + rng.uniform_index(4));
    long double exact = 0.0L;
    for (const double v : f.values()) exact += v;
    EXPECT_NEAR(f.total(), static_cast<double>(exact), tol::kFixpoint);
  }
}
