// Cross-module integration tests: each exercises a full pipeline the way
// the examples and benches do, asserting end-to-end invariants that unit
// tests cannot see.
#include <gtest/gtest.h>

#include <cmath>

#include "bayesnet/inference.hpp"
#include "bayesnet/learning.hpp"
#include "bayesnet/sensitivity.hpp"
#include "sys/decomposition.hpp"
#include "sys/longtail.hpp"
#include "sys/means.hpp"
#include "evidence/credal.hpp"
#include "evidence/mass.hpp"
#include "evidence/subjective.hpp"
#include "fta/analysis.hpp"
#include "fta/dynamic.hpp"
#include "fta/fta_to_bn.hpp"
#include "markov/mdp.hpp"
#include "perception/bayes_classifier.hpp"
#include "perception/fusion.hpp"
#include "perception/table1.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

using namespace sysuq;

TEST(Integration, FieldLoopToCredalToRelease) {
  // World -> field observation -> learned CPT -> credal envelope sized by
  // the residual epistemic width -> release evidence. The pipeline's
  // envelopes must bracket the truth at every stage.
  const auto truth = perception::table1_network();
  auto deployed = perception::table1_network();
  deployed.update_cpt_rows(1, {prob::Categorical::uniform(4),
                               prob::Categorical::uniform(4),
                               prob::Categorical::uniform(4)});
  sys::RemovalLoop loop(truth, deployed, 1, perception::kGtUnknown);
  prob::Rng rng(9001);
  const auto trace = loop.run({200, 20000}, rng);

  // Credal envelope from the learned CPT, widened by the learner's
  // residual epistemic width.
  const double eps = trace.back().epistemic_width;
  const auto prior = evidence::IntervalDistribution::widened(
      deployed.cpt_rows(0)[0], eps);
  std::vector<evidence::IntervalDistribution> rows;
  for (const auto& r : deployed.cpt_rows(1))
    rows.push_back(evidence::IntervalDistribution::widened(r, eps));
  const auto marg =
      evidence::credal_chain_marginal(prior, evidence::IntervalCpt(rows));

  // The true output marginal lies inside the learned credal envelope.
  bayesnet::VariableElimination ve(truth);
  const auto true_marg = ve.query(1);
  for (std::size_t y = 0; y < 4; ++y) {
    EXPECT_GE(true_marg.p(y), marg.bound(y).lo() - 0.02) << y;
    EXPECT_LE(true_marg.p(y), marg.bound(y).hi() + 0.02) << y;
  }

  // Release evidence from the same run.
  sys::ReleaseEvidence evd;
  evd.field_observations = trace.back().observations;
  evd.epistemic_width = trace.back().epistemic_width;
  evd.missing_mass = 0.001;
  evd.hazardous_events = 1;
  const auto decision = sys::assess_release(evd, sys::ReleaseCriteria{});
  EXPECT_TRUE(decision.ready) << (decision.blockers.empty()
                                      ? ""
                                      : decision.blockers.front());
}

TEST(Integration, StaticAndDynamicFtaAgreeOnStaticStructures) {
  // A static AND/OR tree evaluated (a) by the static engine with
  // p_i = 1 - exp(-lambda_i t) and (b) by the dynamic CTMC engine must
  // agree exactly.
  const double t = 1.3;
  const double la = 0.5, lb = 0.8, lc = 0.3;

  fta::FaultTree st;
  const auto a = st.add_basic_event("a", 1.0 - std::exp(-la * t));
  const auto b = st.add_basic_event("b", 1.0 - std::exp(-lb * t));
  const auto c = st.add_basic_event("c", 1.0 - std::exp(-lc * t));
  const auto ab = st.add_gate("ab", fta::GateType::kAnd, {a, b});
  st.set_top(st.add_gate("top", fta::GateType::kOr, {ab, c}));

  fta::DynamicFaultTree dy;
  const auto da = dy.add_basic_event("a", la);
  const auto db = dy.add_basic_event("b", lb);
  const auto dc = dy.add_basic_event("c", lc);
  const auto dab = dy.add_gate("ab", fta::DynGateType::kAnd, {da, db});
  dy.set_top(dy.add_gate("top", fta::DynGateType::kOr, {dab, dc}));

  EXPECT_NEAR(fta::exact_top_probability(st), dy.unreliability(t), tol::kProbSum);
}

TEST(Integration, FtaBnSensitivityAgreesWithBirnbaum) {
  // Birnbaum importance of a basic event equals the BN sensitivity of the
  // top posterior to the event's prior parameter (both are dP(top)/dp).
  fta::FaultTree tree;
  const auto power = tree.add_basic_event("power", 0.01);
  const auto cam1 = tree.add_basic_event("cam1", 0.05);
  const auto cam2 = tree.add_basic_event("cam2", 0.05);
  const auto both = tree.add_gate("both", fta::GateType::kAnd, {cam1, cam2});
  tree.set_top(tree.add_gate("top", fta::GateType::kOr, {power, both}));

  const auto compiled = fta::compile_to_bayesnet(tree);
  for (const char* name : {"power", "cam1"}) {
    const double birnbaum = fta::importance(tree, tree.id_of(name)).birnbaum;
    const auto bn_id = compiled.network.id_of(name);
    // CPT row 0 state 1 is P(failed); proportional co-variation on a
    // binary root is exactly the derivative wrt the failure probability.
    const double sens = bayesnet::query_sensitivity(
        compiled.network, bn_id, 0, 1, compiled.top, 1);
    EXPECT_NEAR(birnbaum, sens, 1e-6) << name;
  }
}

TEST(Integration, FusionHazardFeedsMdpPolicy) {
  // Measure the fused perception hazard rate, build the supervisor MDP
  // whose 'continue' risk is that rate, and check the optimal policy
  // flips from continue to MRM as perception degrades.
  perception::WorldModel modeled({"car", "pedestrian"}, {2.0 / 3.0, 1.0 / 3.0});
  const perception::TrueWorld world(modeled, {"unknown_object"}, 0.05);
  prob::Rng rng(515);

  const auto policy_for = [&](double acc) {
    const auto sensor = perception::ConfusionSensor::make_default(2, 1, acc, 0.8);
    perception::RedundantArchitecture arch{
        {sensor, sensor, sensor}, perception::FusionRule::kMajorityVote, 0.0,
        0.1};
    prob::Rng r = rng.split(static_cast<std::uint64_t>(acc * 1000));
    const auto metrics = perception::simulate_fusion(arch, world, 40000, r);

    markov::Mdp m;
    const auto drive = m.add_state("drive");
    const auto safe = m.add_state("safe");
    const auto hazard = m.add_state("hazard");
    // continue: hazard at the measured per-encounter rate; mrm: fixed
    // small handover risk but ends the trip.
    (void)m.add_action(drive, "continue",
                       {{drive, 1.0 - metrics.hazard_rate},
                        {hazard, metrics.hazard_rate}});
    (void)m.add_action(drive, "mrm", {{safe, 0.999}, {hazard, 0.001}});
    (void)m.add_action(safe, "stay", {{safe, 1.0}});
    (void)m.add_action(hazard, "stay", {{hazard, 1.0}});
    const auto pol = m.optimal_policy({hazard}, /*maximize=*/false);
    return m.action_name(drive, pol[drive]);
  };

  // Accurate perception: continuing forever still loses to MRM only if
  // hazard_rate > handover risk; with a strong sensor the hazard rate is
  // far above 0.1% per encounter? Continuing forever reaches hazard with
  // probability 1 whenever rate > 0 — so min policy is always MRM here.
  EXPECT_EQ(policy_for(0.95), "mrm");
  EXPECT_EQ(policy_for(0.70), "mrm");
}

TEST(Integration, DecompositionConsistentAcrossLayers) {
  // The ensemble decomposition of the BayesClassifier and the abstract
  // decompose() of core must agree when fed the same members.
  prob::Rng rng(616);
  perception::BayesClassifier clf(3, 0.5, 5.0, prob::Categorical::uniform(3));
  const perception::ClassDistribution classes[] = {
      {{0.0, 0.0}, 0.5}, {{4.0, 0.0}, 0.5}, {{0.0, 4.0}, 0.5}};
  for (int i = 0; i < 50; ++i) {
    for (std::size_t c = 0; c < 3; ++c)
      clf.train(c, perception::sample_feature(classes[c], rng));
  }
  prob::Rng r1(717);
  const auto d = clf.decompose({2.0, 0.0}, 100, r1);
  const auto budget = sys::decompose(
      {prob::Categorical({0.5, 0.5, 0.0}), prob::Categorical({0.5, 0.5, 0.0})},
      0.0);
  // Sanity relations, not equality: both decompose total = aleatory +
  // epistemic with non-negative parts.
  EXPECT_NEAR(d.total, d.aleatory + d.epistemic, tol::kProbSum);
  EXPECT_NEAR(budget.aleatory, std::log(2.0), tol::kProbSum);
  EXPECT_NEAR(budget.epistemic, 0.0, tol::kProbSum);
}

TEST(Integration, LongTailForecastMatchesCounterEstimate) {
  // The analytic expected missing mass and the empirical Good-Turing
  // estimate agree on a heavy-tailed scenario stream.
  const auto scenarios = sys::zipf_distribution(200, 1.3);
  prob::Rng rng(818);
  prob::CategoricalCounter counter(200);
  const std::size_t n = 5000;
  for (std::size_t i = 0; i < n; ++i) counter.observe(scenarios.sample(rng));
  const double analytic = sys::expected_missing_mass(scenarios, n);
  const double good_turing = counter.good_turing_missing_mass();
  EXPECT_NEAR(good_turing, analytic, 0.01);
}

TEST(Integration, AssuranceCaseTracksRemovalLoopEvidence) {
  // Feed the assurance case with opinions derived from the removal
  // loop's observation counts; root confidence must rise monotonically
  // with evidence.
  const auto truth = perception::table1_network();
  prob::Rng rng(919);
  double prev_conf = 0.0;
  for (const double n : {100.0, 1000.0, 10000.0}) {
    // Simulate: at n observations, misperceptions occur at the true
    // hazardous-confusion rate ~ P(car|ped)+P(ped|car) weighted.
    const double errors = 0.01 * n;
    evidence::AssuranceCase ac;
    const auto leaf = ac.add_evidence(
        "perception performs per Table I",
        evidence::Opinion::from_evidence(n - errors, errors));
    const auto root = ac.add_goal("safe",
                                  evidence::AssuranceCase::Kind::kConjunction,
                                  {leaf}, 0.99);
    const double conf = ac.evaluate(root).projected();
    EXPECT_GT(conf, prev_conf);
    prev_conf = conf;
  }
  EXPECT_GT(prev_conf, 0.95);
  (void)rng;
  (void)truth;
}

TEST(Integration, EvidentialFusionMatchesTable1Indicator) {
  // Two sensors disagreeing car-vs-pedestrian, fused with Dubois-Prade,
  // put their conflict exactly on the {car, pedestrian} set — the same
  // epistemic indicator Table I models as its car/pedestrian output. The
  // BN posterior given that output must then be consistent with the
  // pignistic read of the fused mass.
  evidence::Frame f({"car", "pedestrian", "unknown"});
  const evidence::MassFunction m1(
      f, {{f.singleton("car"), 0.9}, {f.theta(), 0.1}});
  const evidence::MassFunction m2(
      f, {{f.singleton("pedestrian"), 0.9}, {f.theta(), 0.1}});
  const auto fused = evidence::dubois_prade_combine(m1, m2);
  EXPECT_GT(fused.mass(f.make_set({"car", "pedestrian"})), 0.8);

  const auto net = perception::table1_network();
  bayesnet::VariableElimination ve(net);
  const auto post = ve.query(0, {{1, perception::kPercCarPedestrian}});
  // Both views agree: car and pedestrian carry nearly all the mass, car
  // ahead of pedestrian (its prior is higher).
  const auto pig = fused.pignistic();
  EXPECT_GT(post.p(0) + post.p(1), 0.65);
  EXPECT_GT(pig.p(0) + pig.p(1), 0.9);
  EXPECT_GE(post.p(0), post.p(1));
}
