// Orbit-substrate tests: integrator conservation laws, circular-orbit
// closure, and the modeling-relation layer (models A and B, surprise
// detection of the third planet).
#include "orbit/two_planet.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace ob = sysuq::orbit;
namespace pr = sysuq::prob;

TEST(Vec2, Algebra) {
  ob::Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ(a + b, (ob::Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (ob::Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (ob::Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 5.0);
  EXPECT_NEAR((a - b).norm(), a.distance(b), tol::kSeries);
}

TEST(NBody, CircularBinaryIsBalanced) {
  const ob::GravityParams g{};
  const auto s = ob::make_circular_binary(1.0, 0.5, 1.0, g);
  // Zero net momentum, barycenter at origin.
  EXPECT_NEAR(ob::total_momentum(s).norm(), 0.0, tol::kRoot);
  EXPECT_NEAR(ob::center_of_mass(s).norm(), 0.0, tol::kRoot);
  EXPECT_NEAR(s.bodies[0].position.distance(s.bodies[1].position), 1.0, tol::kRoot);
  EXPECT_THROW((void)ob::make_circular_binary(0.0, 1.0, 1.0, g),
               std::invalid_argument);
}

TEST(NBody, VerletConservesEnergyAndMomentum) {
  const ob::GravityParams g{};
  auto s = ob::make_circular_binary(1.0, 0.5, 1.0, g);
  const double e0 = ob::total_energy(s, g);
  ob::simulate(s, 1e-3, 20000, g);
  const double e1 = ob::total_energy(s, g);
  EXPECT_NEAR(e1, e0, std::fabs(e0) * 1e-5);
  EXPECT_NEAR(ob::total_momentum(s).norm(), 0.0, tol::kIteration);
}

TEST(NBody, CircularOrbitClosesAfterOnePeriod) {
  const ob::GravityParams g{};
  auto s = ob::make_circular_binary(1.0, 1.0, 2.0, g);
  const ob::Vec2 start = s.bodies[0].position;
  const double period = ob::circular_binary_period(1.0, 1.0, 2.0, g);
  const double dt = period / 20000.0;
  ob::simulate(s, dt, 20000, g);
  EXPECT_NEAR(s.bodies[0].position.distance(start), 0.0, 2e-3);
  // Separation stays constant on a circular orbit.
  EXPECT_NEAR(s.bodies[0].position.distance(s.bodies[1].position), 2.0, 1e-3);
}

TEST(NBody, Rk4MatchesVerletShortTerm) {
  const ob::GravityParams g{};
  auto a = ob::make_circular_binary(1.0, 0.5, 1.0, g);
  auto b = a;
  for (int i = 0; i < 2000; ++i) {
    ob::verlet_step(a, 5e-4, g);
    ob::rk4_step(b, 5e-4, g);
  }
  EXPECT_NEAR(a.bodies[0].position.distance(b.bodies[0].position), 0.0, 1e-5);
}

TEST(NBody, OblatenessPerturbsOrbit) {
  const ob::GravityParams g{};
  auto ideal = ob::make_circular_binary(1.0, 0.5, 1.0, g);
  auto real = ideal;
  real.bodies[1].oblateness = 0.02;
  ob::simulate(ideal, 1e-3, 10000, g);
  ob::simulate(real, 1e-3, 10000, g);
  // The heterogeneous body's stronger near-field pull changes the orbit.
  EXPECT_GT(ideal.bodies[0].position.distance(real.bodies[0].position), 1e-3);
}

TEST(NBody, AccelerationValidation) {
  const ob::GravityParams g{};
  std::vector<ob::Body> bodies{ob::Body{1.0, {0, 0}, {0, 0}, 0.0}};
  EXPECT_THROW((void)ob::acceleration(bodies, 2, g), std::out_of_range);
  bodies.push_back(ob::Body{1.0, {0, 0}, {0, 0}, 0.0});
  EXPECT_THROW((void)ob::acceleration(bodies, 0, g), std::domain_error);
}

TEST(TwoPlanet, UniverseRunsAndObserves) {
  ob::UniverseConfig cfg;
  ob::TwoPlanetUniverse u(cfg);
  EXPECT_FALSE(u.third_planet_present());
  for (int i = 0; i < 100; ++i) u.advance(1e-3);
  EXPECT_NEAR(u.time(), 0.1, tol::kTiny);
  pr::Rng rng(3);
  const auto exact = u.observe_position(0, rng, 0.0);
  EXPECT_EQ(exact, u.state().bodies[0].position);
  const auto noisy = u.observe_position(0, rng, 0.1);
  EXPECT_NE(noisy, exact);
  EXPECT_THROW((void)u.observe_position(5, rng, 0.0), std::out_of_range);
  EXPECT_THROW(u.advance(0.0), std::invalid_argument);
}

TEST(TwoPlanet, ThirdPlanetInjection) {
  ob::UniverseConfig cfg;
  cfg.third = ob::UniverseConfig::ThirdPlanet{0.3, {3.0, 0.0}, {0.0, 0.5}, 0.05};
  ob::TwoPlanetUniverse u(cfg);
  EXPECT_FALSE(u.third_planet_present());
  EXPECT_EQ(u.state().bodies.size(), 2u);
  for (int i = 0; i < 100; ++i) u.advance(1e-3);
  EXPECT_TRUE(u.third_planet_present());
  EXPECT_EQ(u.state().bodies.size(), 3u);
}

TEST(TwoPlanet, ModelAIsExactForIdealUniverse) {
  // With ideal point masses and no third planet, model A's epistemic and
  // ontological gaps are both zero: residuals stay at integrator noise.
  ob::UniverseConfig cfg;
  ob::TwoPlanetUniverse u(cfg);
  ob::DeterministicModel model(cfg.m1, cfg.m2, cfg.separation, cfg.gravity);
  double max_residual = 0.0;
  for (int i = 0; i < 5000; ++i) {
    u.advance(1e-3);
    model.advance(1e-3);
    max_residual = std::max(
        max_residual,
        model.predicted_position(0).distance(u.state().bodies[0].position));
  }
  EXPECT_LT(max_residual, 1e-5);
}

TEST(TwoPlanet, EpistemicGapGrowsWithOblateness) {
  // Sec. III.B: the point-mass idealization of a heterogeneous body is an
  // epistemic error — residual grows with the inhomogeneity.
  double prev = -1.0;
  for (const double obl : {0.0, 0.01, 0.03}) {
    ob::UniverseConfig cfg;
    cfg.oblateness2 = obl;
    ob::TwoPlanetUniverse u(cfg);
    ob::DeterministicModel model(cfg.m1, cfg.m2, cfg.separation, cfg.gravity);
    double residual = 0.0;
    for (int i = 0; i < 5000; ++i) {
      u.advance(1e-3);
      model.advance(1e-3);
    }
    residual =
        model.predicted_position(0).distance(u.state().bodies[0].position);
    EXPECT_GT(residual, prev);
    prev = residual;
  }
}

TEST(TwoPlanet, FrequentistModelConvergesWithObservations) {
  // Sec. III.B: "our knowledge increases and the epistemic uncertainty
  // decreases with every observation" — two independent finite-sample
  // occupancy models approach each other as N grows.
  ob::UniverseConfig cfg;
  pr::Rng rng(17);
  double prev_gap = 2.0;
  for (const std::size_t n : {200u, 2000u, 20000u}) {
    ob::TwoPlanetUniverse u1(cfg), u2(cfg);
    ob::FrequentistModel m1(2.0, 8), m2(2.0, 8);
    pr::Rng r1 = rng.split(n), r2 = rng.split(n + 1);
    for (std::size_t i = 0; i < n; ++i) {
      u1.advance(7e-3);
      u2.advance(11e-3);  // different sampling phase
      m1.observe(u1.observe_position(0, r1, 0.05));
      m2.observe(u2.observe_position(0, r2, 0.05));
    }
    const double gap = m1.distance(m2);
    EXPECT_LT(gap, prev_gap);
    prev_gap = gap;
  }
  EXPECT_LT(prev_gap, 0.2);
}

TEST(TwoPlanet, FrameProbabilityIsSane) {
  ob::UniverseConfig cfg;
  ob::TwoPlanetUniverse u(cfg);
  ob::FrequentistModel m(2.0, 16);
  pr::Rng rng(23);
  for (int i = 0; i < 5000; ++i) {
    u.advance(5e-3);
    m.observe(u.observe_position(0, rng, 0.0));
  }
  // Planet 1 orbits within ~0.33 of the origin; the full domain frame has
  // probability ~1, a far-away frame ~0.
  EXPECT_NEAR(m.frame_probability(-2.0, 2.0, -2.0, 2.0), 1.0, tol::kProbSum);
  EXPECT_NEAR(m.frame_probability(1.5, 2.0, 1.5, 2.0), 0.0, tol::kProbSum);
  EXPECT_GT(m.frame_probability(-0.5, 0.5, -0.5, 0.5), 0.9);
  EXPECT_DOUBLE_EQ(m.out_of_domain_fraction(), 0.0);
}

TEST(SurpriseMonitor, Validation) {
  EXPECT_THROW(ob::SurpriseMonitor(0, 3.0, 2), std::invalid_argument);
  EXPECT_THROW(ob::SurpriseMonitor(10, 1.0, 2), std::invalid_argument);
  EXPECT_THROW(ob::SurpriseMonitor(10, 3.0, 0), std::invalid_argument);
  EXPECT_THROW(ob::SurpriseMonitor(10, 3.0, 2, 0.0), std::invalid_argument);
  EXPECT_THROW(ob::SurpriseMonitor(10, 3.0, 2, 1.5), std::invalid_argument);
  ob::SurpriseMonitor m(5, 3.0, 2);
  EXPECT_THROW((void)m.feed(-1.0), std::invalid_argument);
}

TEST(SurpriseMonitor, TriggersOnSustainedAnomaly) {
  ob::SurpriseMonitor m(50, 4.0, 3);
  pr::Rng rng(5);
  // Calibration + nominal phase: residuals ~ |N(0.01, 0.001)|.
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(m.feed(std::fabs(rng.gaussian(0.01, 0.001))));
  }
  EXPECT_FALSE(m.triggered());
  // Anomaly onset: residuals jump by 100x.
  bool fired = false;
  for (int i = 0; i < 10; ++i) fired = m.feed(1.0) || fired;
  EXPECT_TRUE(fired);
  EXPECT_TRUE(m.triggered());
  EXPECT_GT(m.trigger_index(), 200u);
}

TEST(SurpriseMonitor, IgnoresIsolatedSpikes) {
  ob::SurpriseMonitor m(50, 4.0, 3);
  pr::Rng rng(6);
  for (int i = 0; i < 100; ++i) (void)m.feed(std::fabs(rng.gaussian(0.01, 0.001)));
  // Single spikes below the patience threshold do not trigger.
  (void)m.feed(1.0);
  (void)m.feed(std::fabs(rng.gaussian(0.01, 0.001)));
  (void)m.feed(1.0);
  (void)m.feed(std::fabs(rng.gaussian(0.01, 0.001)));
  EXPECT_FALSE(m.triggered());
}

TEST(AccelerationResidual, FlatForIdealPairJumpsWithThirdPlanet) {
  // Nominal two-planet universe: the dynamics-level residual is O(dt^2)
  // integrator noise and does not grow with time.
  ob::UniverseConfig cfg;
  ob::TwoPlanetUniverse u(cfg);
  const double dt = 1e-3;
  std::vector<ob::Vec2> p0, p1;
  for (int i = 0; i < 3000; ++i) {
    p0.push_back(u.state().bodies[0].position);
    p1.push_back(u.state().bodies[1].position);
    u.advance(dt);
  }
  double early = 0.0, late = 0.0;
  for (int i = 1; i < 2999; ++i) {
    const double r = ob::acceleration_residual(
        p0[i - 1], p0[i], p0[i + 1], dt, p1[i], cfg.m2, 0.0, cfg.gravity);
    if (i < 100) early = std::max(early, r);
    if (i > 2900) late = std::max(late, r);
  }
  EXPECT_LT(early, 1e-3);
  EXPECT_LT(late, 3.0 * early + 1e-6);  // no secular growth
}

TEST(TwoPlanet, ThirdPlanetTriggersSurprise) {
  // End-to-end Sec. III.C experiment: the dynamics-level residual of the
  // two-body model is flat until the unmodeled third planet appears, then
  // jumps by the planet's gravitational pull; the surprise monitor fires
  // only after the injection.
  ob::UniverseConfig cfg;
  cfg.third = ob::UniverseConfig::ThirdPlanet{0.5, {1.5, 0.0}, {0.0, 0.6}, 5.0};
  ob::TwoPlanetUniverse u(cfg);
  ob::SurpriseMonitor monitor(500, 6.0, 3);

  const double dt = 1e-3;
  std::size_t steps_at_injection = 0;
  std::vector<ob::Vec2> p0{u.state().bodies[0].position};
  std::vector<ob::Vec2> p1{u.state().bodies[1].position};
  for (std::size_t i = 1; i <= 20000; ++i) {
    u.advance(dt);
    p0.push_back(u.state().bodies[0].position);
    p1.push_back(u.state().bodies[1].position);
    if (u.third_planet_present() && steps_at_injection == 0)
      steps_at_injection = i;
    if (i < 2) continue;
    const double residual = ob::acceleration_residual(
        p0[i - 2], p0[i - 1], p0[i], dt, p1[i - 1], cfg.m2, 0.0, cfg.gravity);
    if (monitor.feed(residual)) break;
  }
  ASSERT_TRUE(monitor.triggered());
  // Injection really happened, and the trigger came strictly after it —
  // nominal residuals before t = 5 must not fire the monitor.
  ASSERT_GT(steps_at_injection, 0u);
  EXPECT_GT(monitor.trigger_index(), steps_at_injection - 1);
  // Detection latency is a handful of steps, not a fraction of an orbit.
  EXPECT_LT(monitor.trigger_index(), steps_at_injection + 50);
}
