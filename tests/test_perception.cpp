// Perception-chain tests: world models, ODD restriction, confusion
// sensors, ensembles, and redundant fusion.
#include <gtest/gtest.h>

#include "perception/fusion.hpp"
#include "perception/sensor.hpp"
#include "perception/table1.hpp"
#include "perception/world.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace pc = sysuq::perception;
namespace pr = sysuq::prob;

namespace {

pc::TrueWorld paper_world(double novel_rate = 0.1) {
  // The Sec. V world: cars and pedestrians, plus an unknown-object class
  // encountered at `novel_rate` — the published 0.1 by default.
  pc::WorldModel modeled({"car", "pedestrian"}, {2.0 / 3.0, 1.0 / 3.0});
  return pc::TrueWorld(std::move(modeled), {"unknown_object"}, novel_rate);
}

}  // namespace

TEST(WorldModel, ConstructionValidation) {
  EXPECT_NO_THROW(pc::WorldModel({"a", "b"}, {1.0, 1.0}));
  EXPECT_THROW(pc::WorldModel({}, {}), std::invalid_argument);
  EXPECT_THROW(pc::WorldModel({"a", "a"}, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(pc::WorldModel({"a"}, {1.0, 1.0}), std::invalid_argument);
  pc::WorldModel w({"car", "ped"}, {3.0, 1.0});
  EXPECT_NEAR(w.priors().p(0), 0.75, tol::kTiny);
  EXPECT_EQ(w.class_id("ped"), 1u);
  EXPECT_THROW((void)w.class_id("bike"), std::invalid_argument);
}

TEST(WorldModel, RestrictionRenormalizesAndReportsExcluded) {
  pc::WorldModel w({"car", "ped", "bike"}, {0.6, 0.3, 0.1});
  const auto [restricted, excluded] = w.restricted({0, 1});
  EXPECT_EQ(restricted.class_count(), 2u);
  EXPECT_NEAR(excluded, 0.1, tol::kTiny);
  EXPECT_NEAR(restricted.priors().p(0), 2.0 / 3.0, tol::kTiny);
  EXPECT_THROW((void)w.restricted({}), std::invalid_argument);
  EXPECT_THROW((void)w.restricted({0, 0}), std::invalid_argument);
  EXPECT_THROW((void)w.restricted({7}), std::out_of_range);
}

TEST(TrueWorld, SamplingMatchesRates) {
  const auto world = paper_world(0.1);
  pr::Rng rng(12);
  std::size_t novel = 0, cars = 0;
  const std::size_t n = 50000;
  for (std::size_t i = 0; i < n; ++i) {
    const auto e = world.sample(rng);
    if (!e.modeled) ++novel;
    if (e.modeled && e.true_class == 0) ++cars;
  }
  EXPECT_NEAR(static_cast<double>(novel) / n, 0.1, 0.01);
  // Modeled encounters split 2:1 between car and pedestrian.
  EXPECT_NEAR(static_cast<double>(cars) / n, 0.6, 0.01);
  EXPECT_EQ(world.class_name(2), "unknown_object");
  EXPECT_THROW(pc::TrueWorld(paper_world().modeled(), {}, 0.2),
               std::invalid_argument);
}

TEST(ConfusionSensor, DefaultSensorShape) {
  const auto s = pc::ConfusionSensor::make_default(2, 1, 0.9, 0.7);
  EXPECT_EQ(s.modeled_classes(), 2u);
  EXPECT_EQ(s.output_cardinality(), 3u);
  EXPECT_EQ(s.row_count(), 3u);
  EXPECT_NEAR(s.row(0).p(0), 0.9, tol::kTiny);
  EXPECT_NEAR(s.row(0).p(1), 0.05, tol::kTiny);  // confusion
  EXPECT_NEAR(s.row(0).p(2), 0.05, tol::kTiny);  // miss
  // Novel row: 0.7 none, 0.15 hallucinated per class.
  EXPECT_NEAR(s.row(2).p(2), 0.7, tol::kTiny);
  EXPECT_NEAR(s.row(2).p(0), 0.15, tol::kTiny);
  EXPECT_THROW((void)s.row(5), std::out_of_range);
}

TEST(ConfusionSensor, ClassifyFollowsRow) {
  const auto s = pc::ConfusionSensor::make_default(2, 1, 0.9, 0.7);
  pr::Rng rng(13);
  std::size_t correct = 0, none = 0;
  const std::size_t n = 20000;
  for (std::size_t i = 0; i < n; ++i) {
    const auto out = s.classify(0, rng);
    correct += out.label == 0 ? 1 : 0;
    none += out.is_none ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(correct) / n, 0.9, 0.01);
  EXPECT_NEAR(static_cast<double>(none) / n, 0.05, 0.005);
}

TEST(EnsembleClassifier, ConcentrationControlsEpistemic) {
  // Tighter ensembles (higher concentration) carry less epistemic
  // uncertainty — the paper's "knowledge increases" axis made executable.
  const auto nominal = pc::ConfusionSensor::make_default(2, 1, 0.9, 0.7);
  pr::Rng rng(14);
  const auto loose = pc::EnsembleClassifier::perturbed(nominal, 20, 20.0, rng);
  const auto tight = pc::EnsembleClassifier::perturbed(nominal, 20, 2000.0, rng);
  const auto dl = loose.decompose(0);
  const auto dt = tight.decompose(0);
  EXPECT_GT(dl.epistemic, dt.epistemic);
  EXPECT_GT(dl.epistemic, 0.0);
  // Aleatory parts are comparable (same nominal row).
  EXPECT_NEAR(dl.aleatory, dt.aleatory, 0.15);
}

TEST(EnsembleClassifier, NovelClassRaisesUncertainty) {
  // Out-of-distribution inputs (the novel class) produce higher total
  // predictive uncertainty than confident in-distribution inputs.
  const auto nominal = pc::ConfusionSensor::make_default(2, 1, 0.95, 0.5);
  pr::Rng rng(15);
  const auto ens = pc::EnsembleClassifier::perturbed(nominal, 20, 100.0, rng);
  const auto in_dist = ens.decompose(0);
  const auto ood = ens.decompose(2);
  EXPECT_GT(ood.total, in_dist.total);
}

TEST(EnsembleClassifier, Validation) {
  const auto nominal = pc::ConfusionSensor::make_default(2, 1, 0.9, 0.7);
  pr::Rng rng(16);
  EXPECT_THROW((void)pc::EnsembleClassifier::perturbed(nominal, 0, 10.0, rng),
               std::invalid_argument);
  EXPECT_THROW((void)pc::EnsembleClassifier::perturbed(nominal, 5, 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW(pc::EnsembleClassifier({}), std::invalid_argument);
}

TEST(Fusion, TripleRedundancyBeatsSingleSensor) {
  const auto world = paper_world(0.05);
  const auto sensor = pc::ConfusionSensor::make_default(2, 1, 0.9, 0.8);
  pc::RedundantArchitecture single{{sensor}, pc::FusionRule::kMajorityVote, 0.0,
                                   0.1};
  pc::RedundantArchitecture triple{{sensor, sensor, sensor},
                                   pc::FusionRule::kMajorityVote, 0.0, 0.1};
  pr::Rng rng(17);
  const auto ms = pc::simulate_fusion(single, world, 40000, rng);
  const auto mt = pc::simulate_fusion(triple, world, 40000, rng);
  EXPECT_GT(mt.accuracy, ms.accuracy);
  EXPECT_LT(mt.hazard_rate, ms.hazard_rate);
}

TEST(Fusion, CommonCauseDefeatsRedundancy) {
  // The paper's common-parent-node warning: correlated sensors lose the
  // tolerance gain.
  const auto world = paper_world(0.05);
  const auto sensor = pc::ConfusionSensor::make_default(2, 1, 0.9, 0.8);
  pc::RedundantArchitecture diverse{{sensor, sensor, sensor},
                                    pc::FusionRule::kMajorityVote, 0.0, 0.1};
  pc::RedundantArchitecture correlated{{sensor, sensor, sensor},
                                       pc::FusionRule::kMajorityVote, 0.9, 0.1};
  pr::Rng rng(18);
  const auto md = pc::simulate_fusion(diverse, world, 40000, rng);
  const auto mc = pc::simulate_fusion(correlated, world, 40000, rng);
  EXPECT_LT(md.hazard_rate, mc.hazard_rate);
}

TEST(Fusion, AllRulesProduceSaneMetrics) {
  const auto world = paper_world(0.1);
  const auto sensor = pc::ConfusionSensor::make_default(2, 1, 0.85, 0.7);
  pr::Rng rng(19);
  for (const auto rule : {pc::FusionRule::kMajorityVote,
                          pc::FusionRule::kNaiveBayes,
                          pc::FusionRule::kDempster}) {
    pc::RedundantArchitecture arch{{sensor, sensor}, rule, 0.0, 0.1};
    const auto m = pc::simulate_fusion(arch, world, 20000, rng);
    EXPECT_GT(m.accuracy, 0.5);
    EXPECT_LT(m.hazard_rate, 0.3);
    EXPECT_LE(m.none_rate, 1.0);
    if (rule == pc::FusionRule::kNaiveBayes) {
      // Closed-world Bayes has no "unknown" hypothesis: it always commits
      // to a modeled class — the ontological blind spot the paper's
      // unknown state exists to fix. Posterior renormalization erases the
      // evidence that neither class fits.
      EXPECT_LT(m.novel_caught, 0.1);
    } else {
      // Vote/DS rules abstain on novel objects via the none output.
      EXPECT_GE(m.novel_caught, 0.3);
    }
  }
}

TEST(Fusion, Validation) {
  const auto world = paper_world(0.05);
  pc::RedundantArchitecture empty{{}, pc::FusionRule::kMajorityVote, 0.0, 0.1};
  pr::Rng rng(20);
  EXPECT_THROW((void)pc::fuse_once(empty, world, {0, true}, rng),
               std::invalid_argument);
  const auto sensor = pc::ConfusionSensor::make_default(2, 1, 0.9, 0.7);
  pc::RedundantArchitecture bad{{sensor}, pc::FusionRule::kMajorityVote, 1.5,
                                0.1};
  EXPECT_THROW((void)pc::fuse_once(bad, world, {0, true}, rng),
               std::invalid_argument);
  pc::RedundantArchitecture ok{{sensor}, pc::FusionRule::kMajorityVote, 0.0,
                               0.1};
  EXPECT_THROW((void)pc::simulate_fusion(ok, world, 0, rng),
               std::invalid_argument);
}

TEST(Table1, RepairPolicies) {
  using R = pc::Table1Repair;
  const auto none_row = pc::table1_unknown_row(R::kDeficitToNone);
  EXPECT_DOUBLE_EQ(none_row.p(pc::kPercCarPedestrian), 0.2);
  EXPECT_DOUBLE_EQ(none_row.p(pc::kPercNone), 0.8);
  const auto cp_row = pc::table1_unknown_row(R::kDeficitToCarPed);
  EXPECT_DOUBLE_EQ(cp_row.p(pc::kPercCarPedestrian), 0.3);
  EXPECT_DOUBLE_EQ(cp_row.p(pc::kPercNone), 0.7);
  const auto rn_row = pc::table1_unknown_row(R::kRenormalize);
  EXPECT_NEAR(rn_row.p(pc::kPercCarPedestrian), 2.0 / 9.0, tol::kTiny);
  EXPECT_NEAR(rn_row.p(pc::kPercNone), 7.0 / 9.0, tol::kTiny);
  // All repairs build a valid network.
  for (const auto r : {R::kDeficitToNone, R::kDeficitToCarPed, R::kRenormalize}) {
    const auto net = pc::table1_network(r);
    EXPECT_NO_THROW(net.validate());
  }
}
