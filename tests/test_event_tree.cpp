// Event-tree tests: crisp quantification against hand computation,
// interval bounds, consequence aggregation — plus DS conditioning.
#include "fta/event_tree.hpp"

#include <gtest/gtest.h>

#include "evidence/mass.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace ft = sysuq::fta;
namespace pr = sysuq::prob;
namespace ev = sysuq::evidence;

namespace {

// Classic LOPA-style tree: unknown object enters the path (initiator),
// barriers: perception detects it, AEB engages.
ft::EventTree loss_tree() {
  ft::EventTree t("unknown object in path", 0.01);
  (void)t.add_barrier("perception detects", pr::ProbInterval(0.9));
  (void)t.add_barrier("AEB engages", pr::ProbInterval(0.95));
  t.set_consequence({true, true}, "safe stop");
  t.set_consequence({true, false}, "mitigated impact");
  t.set_consequence({false, true}, "late stop");
  t.set_consequence({false, false}, "collision");
  return t;
}

}  // namespace

TEST(EventTree, ConstructionValidation) {
  EXPECT_THROW(ft::EventTree("", 0.1), std::invalid_argument);
  EXPECT_THROW(ft::EventTree("x", 1.5), std::invalid_argument);
  ft::EventTree t("x", 0.1);
  EXPECT_THROW((void)t.add_barrier("", pr::ProbInterval(0.5)),
               std::invalid_argument);
  (void)t.add_barrier("b", pr::ProbInterval(0.5));
  EXPECT_THROW((void)t.add_barrier("b", pr::ProbInterval(0.5)),
               std::invalid_argument);
  EXPECT_THROW(t.set_consequence({true, false}, "x"), std::invalid_argument);
  EXPECT_THROW(t.set_consequence({true}, ""), std::invalid_argument);
  EXPECT_THROW((void)t.consequence_frequency("nope"), std::invalid_argument);
}

TEST(EventTree, CrispQuantification) {
  const auto t = loss_tree();
  const auto outcomes = t.outcomes();
  ASSERT_EQ(outcomes.size(), 4u);
  // Frequencies: initiator 0.01 x branch products.
  EXPECT_NEAR(t.consequence_frequency("safe stop").mid(), 0.01 * 0.9 * 0.95,
              tol::kTiny);
  EXPECT_NEAR(t.consequence_frequency("collision").mid(), 0.01 * 0.1 * 0.05,
              tol::kTiny);
  // Outcome frequencies sum to the initiator frequency.
  double total = 0.0;
  for (const auto& o : outcomes) total += o.frequency.mid();
  EXPECT_NEAR(total, 0.01, tol::kTiny);
}

TEST(EventTree, IntervalBarriersGiveBounds) {
  ft::EventTree t("initiator", 0.02);
  (void)t.add_barrier("detect", pr::ProbInterval(0.85, 0.95));
  (void)t.add_barrier("brake", pr::ProbInterval(0.90, 0.99));
  t.set_consequence({false, false}, "collision");
  const auto coll = t.consequence_frequency("collision");
  // Bounds: 0.02 * [0.05, 0.15] * [0.01, 0.10].
  EXPECT_NEAR(coll.lo(), 0.02 * 0.05 * 0.01, tol::kTiny);
  EXPECT_NEAR(coll.hi(), 0.02 * 0.15 * 0.10, tol::kTiny);
  EXPECT_GT(coll.width(), 0.0);
}

TEST(EventTree, DefaultSequenceNames) {
  ft::EventTree t("init", 0.5);
  (void)t.add_barrier("b0", pr::ProbInterval(0.5));
  (void)t.add_barrier("b1", pr::ProbInterval(0.5));
  const auto outcomes = t.outcomes();
  // Unnamed sequences get S/F strings, bit i = barrier i.
  EXPECT_EQ(outcomes[0].consequence, "sequence-FF");
  EXPECT_EQ(outcomes[1].consequence, "sequence-SF");
  EXPECT_EQ(outcomes[3].consequence, "sequence-SS");
}

TEST(EventTree, SharedConsequenceAggregates) {
  ft::EventTree t("init", 0.1);
  (void)t.add_barrier("b0", pr::ProbInterval(0.8));
  (void)t.add_barrier("b1", pr::ProbInterval(0.7));
  // Both single-failure sequences map to the same consequence.
  t.set_consequence({false, true}, "degraded");
  t.set_consequence({true, false}, "degraded");
  const auto f = t.consequence_frequency("degraded");
  EXPECT_NEAR(f.mid(), 0.1 * (0.2 * 0.7 + 0.8 * 0.3), tol::kTiny);
}

TEST(DsConditioning, MatchesBayesOnBayesianMass) {
  // Conditioning a Bayesian mass on a set == Bayes' rule restriction.
  ev::Frame f({"a", "b", "c"});
  const auto m = ev::MassFunction::bayesian(f, pr::Categorical({0.5, 0.3, 0.2}));
  const auto c = m.conditioned(f.make_set({"a", "b"}));
  EXPECT_NEAR(c.mass(f.singleton("a")), 0.5 / 0.8, tol::kTiny);
  EXPECT_NEAR(c.mass(f.singleton("b")), 0.3 / 0.8, tol::kTiny);
  EXPECT_DOUBLE_EQ(c.mass(f.singleton("c")), 0.0);
}

TEST(DsConditioning, IntersectsFocalElements) {
  ev::Frame f({"a", "b", "c"});
  const ev::MassFunction m(f, {{f.theta(), 0.4}, {f.make_set({"a", "b"}), 0.6}});
  const auto c = m.conditioned(f.make_set({"b", "c"}));
  // Theta ∩ {b,c} = {b,c}; {a,b} ∩ {b,c} = {b}. No conflict.
  EXPECT_NEAR(c.mass(f.make_set({"b", "c"})), 0.4, tol::kTiny);
  EXPECT_NEAR(c.mass(f.singleton("b")), 0.6, tol::kTiny);
  // Conditioning on an impossible set throws.
  const auto certain_a = ev::MassFunction(f, {{f.singleton("a"), 1.0}});
  EXPECT_THROW((void)certain_a.conditioned(f.singleton("b")),
               std::domain_error);
  EXPECT_THROW((void)m.conditioned(0), std::invalid_argument);
}
