// InferenceEngine tests: agreement with the exact engines on the Table I
// perception network, byte-identical batch determinism across thread
// counts, ordering-cache behaviour, the unified impossible-evidence error
// semantics, and the engine-backed module wiring (FTA diagnosis,
// evidential networks, BN fusion).
#include "bayesnet/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "bayesnet/inference.hpp"
#include "bayesnet/junction_tree.hpp"
#include "bayesnet/ordering.hpp"
#include "evidence/evidential_network.hpp"
#include "fta/analysis.hpp"
#include "fta/fta_to_bn.hpp"
#include "perception/fusion.hpp"
#include "perception/table1.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace bn = sysuq::bayesnet;
namespace pr = sysuq::prob;

namespace {

bn::BayesianNetwork paper_network() {
  return sysuq::perception::table1_network();
}

// Random DAG, as in the VariableElimination property test.
bn::BayesianNetwork random_network(pr::Rng& rng, std::size_t n) {
  bn::BayesianNetwork net;
  std::vector<std::size_t> cards;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t card = 2 + rng.uniform_index(2);
    cards.push_back(card);
    std::vector<std::string> states;
    for (std::size_t s = 0; s < card; ++s)
      states.push_back("s" + std::to_string(s));
    net.add_variable("v" + std::to_string(i), std::move(states));
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<bn::VariableId> parents;
    for (std::size_t j = 0; j < i; ++j) {
      if (rng.bernoulli(0.4)) parents.push_back(j);
    }
    std::size_t rows = 1;
    for (auto p : parents) rows *= cards[p];
    std::vector<pr::Categorical> cpt;
    for (std::size_t r = 0; r < rows; ++r) {
      std::vector<double> w(cards[i]);
      for (double& x : w) x = rng.uniform() + 0.05;
      cpt.push_back(pr::Categorical::normalized(std::move(w)));
    }
    net.set_cpt(i, std::move(parents), std::move(cpt));
  }
  return net;
}

// Chain a -> b where b = 1 is unreachable: {b: 1} is impossible evidence
// whose zero sits inside a CPT row (the likelihood-weighting trap).
bn::BayesianNetwork unreachable_state_network() {
  bn::BayesianNetwork net;
  const auto a = net.add_variable("a", {"0", "1"});
  const auto b = net.add_variable("b", {"0", "1"});
  net.set_cpt(a, {}, {pr::Categorical({0.5, 0.5})});
  net.set_cpt(b, {a},
              {pr::Categorical({1.0, 0.0}), pr::Categorical({1.0, 0.0})});
  return net;
}

std::vector<bn::QuerySpec> table1_batch(const bn::BayesianNetwork& net,
                                        std::size_t n) {
  const auto gt = net.id_of("ground_truth");
  const auto perc = net.id_of("perception");
  std::vector<bn::QuerySpec> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back({gt, {{perc, i % 4}}});
  }
  return batch;
}

}  // namespace

TEST(Engine, MatchesVariableEliminationAndOracleOnTable1) {
  const auto net = paper_network();
  bn::InferenceEngine engine(net);
  bn::VariableElimination ve(net);
  for (std::size_t state = 0; state < 4; ++state) {
    const bn::Evidence e{{1, state}};
    const auto fast = engine.query(0, e);
    const auto exact = ve.query(0, e);
    const auto oracle = bn::enumerate_posterior(net, 0, e);
    for (std::size_t s = 0; s < exact.size(); ++s) {
      EXPECT_DOUBLE_EQ(fast.p(s), exact.p(s)) << "state " << state;
      EXPECT_NEAR(fast.p(s), oracle.p(s), tol::kTiny) << "state " << state;
    }
  }
  // Prior marginal (no evidence) agrees too.
  const auto prior = engine.query(net.id_of("perception"));
  EXPECT_NEAR(prior.p(0), 0.5415, tol::kTiny);
  EXPECT_NEAR(prior.p(3), 0.1205, tol::kTiny);
}

TEST(Engine, AgreesWithLikelihoodWeightingOnTable1) {
  const auto net = paper_network();
  bn::InferenceEngine engine(net);
  const bn::Evidence e{{1, 3}};
  const auto exact = engine.query(0, e);
  pr::Rng rng(314);
  const auto approx = bn::likelihood_weighting(net, 0, e, 200000, rng);
  for (std::size_t s = 0; s < exact.size(); ++s)
    EXPECT_NEAR(approx.p(s), exact.p(s), 0.01) << s;
}

TEST(Engine, MatchesOracleOnRandomNetworks) {
  // Min-fill orderings on nontrivial DAGs stay exact.
  pr::Rng rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    const auto net = random_network(rng, 5 + rng.uniform_index(3));
    bn::InferenceEngine engine(net);
    for (bn::VariableId q = 0; q < net.size(); ++q) {
      const auto exact = bn::enumerate_posterior(net, q);
      const auto fast = engine.query(q);
      for (std::size_t s = 0; s < exact.size(); ++s)
        ASSERT_NEAR(fast.p(s), exact.p(s), tol::kProbSum) << "trial " << trial;
    }
    const bn::VariableId ev = rng.uniform_index(net.size());
    const std::size_t state = rng.uniform_index(net.variable(ev).cardinality());
    if (bn::enumerate_evidence_probability(net, {{ev, state}}) > tol::kProbSum) {
      for (bn::VariableId q = 0; q < net.size(); ++q) {
        if (q == ev) continue;
        const auto exact = bn::enumerate_posterior(net, q, {{ev, state}});
        const auto fast = engine.query(q, {{ev, state}});
        for (std::size_t s = 0; s < exact.size(); ++s)
          ASSERT_NEAR(fast.p(s), exact.p(s), tol::kProbSum) << "trial " << trial;
      }
      ASSERT_NEAR(engine.evidence_probability({{ev, state}}),
                  bn::enumerate_evidence_probability(net, {{ev, state}}), tol::kProbSum);
    }
  }
}

TEST(Engine, BatchByteIdenticalAcrossThreadCounts) {
  const auto net = paper_network();
  const auto batch = table1_batch(net, 257);

  bn::InferenceEngine single(net, {.threads = 1});
  bn::InferenceEngine pooled(net, {.threads = 4});
  const auto a = single.query_batch(batch);
  const auto b = pooled.query_batch(batch);
  const auto c = pooled.query_batch(batch);  // same engine, cache warm

  ASSERT_EQ(a.size(), batch.size());
  ASSERT_EQ(b.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    // Sequential query through the same engine as the reference.
    const auto ref = single.query(batch[i].query, batch[i].evidence);
    for (std::size_t s = 0; s < ref.size(); ++s) {
      EXPECT_EQ(a[i].p(s), ref.p(s)) << i;  // byte-identical, not NEAR
      EXPECT_EQ(b[i].p(s), ref.p(s)) << i;
      EXPECT_EQ(c[i].p(s), ref.p(s)) << i;
    }
  }
}

TEST(Engine, SampleBatchDeterministicForFixedSeed) {
  const auto net = paper_network();
  const auto batch = table1_batch(net, 24);

  bn::InferenceEngine single(net, {.threads = 1});
  bn::InferenceEngine pooled(net, {.threads = 4});
  const auto a = single.sample_batch(batch, 2000, /*seed=*/42);
  const auto b = pooled.sample_batch(batch, 2000, /*seed=*/42);
  const auto c = pooled.sample_batch(batch, 2000, /*seed=*/43);

  bool any_differs_across_seeds = false;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (std::size_t s = 0; s < a[i].size(); ++s) {
      EXPECT_EQ(a[i].p(s), b[i].p(s)) << i;  // same seed: byte-identical
      if (a[i].p(s) != c[i].p(s)) any_differs_across_seeds = true;
    }
  }
  EXPECT_TRUE(any_differs_across_seeds);  // the seed actually matters
}

TEST(Engine, OrderingCacheKeyedByEvidenceSignature) {
  const auto net = paper_network();
  bn::InferenceEngine engine(net, {.threads = 1});
  EXPECT_EQ(engine.cache_stats().misses, 0u);

  // 16 queries, all with the same (query, evidence-keys) signature but
  // different evidence values: one plan, 15 hits.
  for (std::size_t i = 0; i < 16; ++i)
    (void)engine.query(0, {{1, i % 4}});
  auto stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 15u);
  EXPECT_EQ(stats.entries, 1u);

  // A different signature (no evidence) adds one miss.
  (void)engine.query(1);
  stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GT(stats.hit_rate(), 0.8);

  engine.clear_cache();
  stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(Engine, ResetCacheStatsWindowsWithoutDroppingPlans) {
  const auto net = paper_network();
  bn::InferenceEngine engine(net, {.threads = 1});
  for (std::size_t i = 0; i < 4; ++i) (void)engine.query(0, {{1, i % 4}});
  auto stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 3u);

  // Zero the window; cached plans survive, so the next same-signature
  // query is a pure hit (a clear_cache would have made it a miss).
  engine.reset_cache_stats();
  stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hit_rate(), 0.0);  // no lookups in the new window

  (void)engine.query(0, {{1, 0}});
  stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.hit_rate(), 1.0);
}

TEST(Engine, JointMatchesVariableElimination) {
  const auto net = paper_network();
  bn::InferenceEngine engine(net);
  bn::VariableElimination ve(net);
  const auto a = engine.joint(0, 1);
  const auto b = ve.joint(0, 1);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_DOUBLE_EQ(a.p(i, j), b.p(i, j));
  EXPECT_THROW((void)engine.joint(0, 0), std::invalid_argument);
  EXPECT_THROW((void)engine.joint(0, 1, {{1, 0}}), std::invalid_argument);
}

// ---- junction-tree backend ----

TEST(EngineBackends, JunctionTreeStructureOnChain) {
  // A pure chain triangulates into n-1 pairwise cliques of size two.
  bn::BayesianNetwork net;
  const std::size_t n = 6;
  for (std::size_t i = 0; i < n; ++i)
    net.add_variable("c" + std::to_string(i), {"0", "1"});
  net.set_cpt(0, {}, {pr::Categorical({0.4, 0.6})});
  for (std::size_t i = 1; i < n; ++i)
    net.set_cpt(i, {i - 1},
                {pr::Categorical({0.8, 0.2}), pr::Categorical({0.3, 0.7})});

  const bn::JunctionTree jt(net);
  EXPECT_EQ(jt.clique_count(), n - 1);
  EXPECT_EQ(jt.max_clique_size(), 2u);
  // Deterministic: a rebuild yields the identical clique list.
  const bn::JunctionTree again(net);
  EXPECT_EQ(jt.cliques(), again.cliques());
}

TEST(EngineBackends, JunctionTreeBackendMatchesDefaultEngine) {
  pr::Rng rng(41);
  for (int trial = 0; trial < 4; ++trial) {
    const auto net = random_network(rng, 6);
    bn::InferenceEngine ve_engine(
        net, {.threads = 1, .backend = bn::Backend::kVariableElimination});
    bn::InferenceEngine jt_engine(
        net, {.threads = 1, .backend = bn::Backend::kJunctionTree});
    const bn::Evidence ev{{0, 0}};
    for (bn::VariableId q = 1; q < net.size(); ++q) {
      const auto a = ve_engine.query(q, ev);
      const auto b = jt_engine.query(q, ev);
      for (std::size_t s = 0; s < a.size(); ++s)
        ASSERT_NEAR(a.p(s), b.p(s), tol::kTiny) << "trial " << trial;
    }
    ASSERT_NEAR(ve_engine.evidence_probability(ev),
                jt_engine.evidence_probability(ev), tol::kTiny);
  }
}

TEST(EngineBackends, AllMarginalsMatchesPerQueryLoop) {
  const auto net = paper_network();
  for (const auto backend :
       {bn::Backend::kVariableElimination, bn::Backend::kJunctionTree,
        bn::Backend::kAuto}) {
    bn::InferenceEngine engine(net, {.threads = 1, .backend = backend});
    const bn::Evidence ev{{1, 3}};
    const auto all = engine.all_marginals(ev);
    ASSERT_EQ(all.size(), net.size());
    EXPECT_EQ(all[1].p(3), 1.0);  // observed variable holds its delta
    const auto direct = engine.query(0, ev);
    for (std::size_t s = 0; s < direct.size(); ++s)
      EXPECT_NEAR(all[0].p(s), direct.p(s), tol::kTiny);
  }
}

TEST(EngineBackends, LogEvidenceProbabilityAcrossBackends) {
  const auto net = paper_network();
  const bn::Evidence possible{{1, 0}};
  const bn::Evidence impossible{{0, 2}, {1, 0}};
  for (const auto backend :
       {bn::Backend::kVariableElimination, bn::Backend::kJunctionTree}) {
    bn::InferenceEngine engine(net, {.threads = 1, .backend = backend});
    EXPECT_NEAR(engine.log_evidence_probability(possible),
                std::log(engine.evidence_probability(possible)), tol::kTiny);
    // Impossible evidence reports -inf without throwing.
    EXPECT_EQ(engine.log_evidence_probability(impossible),
              -std::numeric_limits<double>::infinity());
  }
}

TEST(EngineBackends, AutoSwitchesToJunctionTreeAtBatchThreshold) {
  // Build a network wide enough that a batch can hold many distinct
  // query variables under one evidence assignment.
  pr::Rng rng(43);
  const auto net = random_network(rng, 12);
  const bn::Evidence ev{{0, 0}};
  std::vector<bn::QuerySpec> wide;
  for (bn::VariableId q = 1; q < net.size(); ++q) wide.push_back({q, ev});

  // Below the threshold the Auto engine stays on VE: no tree is built.
  bn::InferenceEngine small_auto(
      net, {.threads = 2, .backend = bn::Backend::kAuto,
            .jt_batch_threshold = 64});
  (void)small_auto.query_batch(wide);
  EXPECT_EQ(small_auto.jt_cache_stats().entries, 0u);
  EXPECT_EQ(small_auto.jt_cache_stats().misses, 0u);

  // At the threshold it calibrates exactly one tree for the signature,
  // and a repeat batch is a pure cache hit.
  bn::InferenceEngine big_auto(
      net, {.threads = 2, .backend = bn::Backend::kAuto,
            .jt_batch_threshold = 4});
  const auto a = big_auto.query_batch(wide);
  EXPECT_EQ(big_auto.jt_cache_stats().entries, 1u);
  EXPECT_EQ(big_auto.jt_cache_stats().misses, 1u);
  const auto b = big_auto.query_batch(wide);
  EXPECT_EQ(big_auto.jt_cache_stats().entries, 1u);
  EXPECT_EQ(big_auto.jt_cache_stats().hits, 1u);

  // Both paths agree with the sequential VE engine, byte-identically
  // across the repeat (same tree, same reads).
  bn::InferenceEngine ve_engine(
      net, {.threads = 1, .backend = bn::Backend::kVariableElimination});
  for (std::size_t i = 0; i < wide.size(); ++i) {
    const auto ref = ve_engine.query(wide[i].query, wide[i].evidence);
    for (std::size_t s = 0; s < ref.size(); ++s) {
      ASSERT_NEAR(a[i].p(s), ref.p(s), tol::kTiny) << i;
      ASSERT_EQ(a[i].p(s), b[i].p(s)) << i;
    }
  }
}

TEST(EngineBackends, TreeCacheKeyedByFullAssignmentNotSignature) {
  // Cache-collision stress: evidence maps engineered to look alike —
  // identical key sets and identical value *multisets*, differing only
  // in which value sits on which key. The ordering cache may (and
  // should) share one plan across them; the calibrated-tree cache must
  // not, or one evidence's posteriors would answer the other's queries.
  const auto net = paper_network();
  auto wide = net;  // add a child so there is something to query
  const auto monitor = wide.add_variable("monitor", {"quiet", "alarm"});
  wide.set_cpt(monitor, {0},
               {pr::Categorical({0.9, 0.1}), pr::Categorical({0.5, 0.5}),
                pr::Categorical({0.1, 0.9})});

  const bn::Evidence e1{{0, 0}, {1, 1}};
  const bn::Evidence e2{{0, 1}, {1, 0}};  // same keys, swapped values

  bn::InferenceEngine engine(
      wide, {.threads = 1, .backend = bn::Backend::kJunctionTree});
  const auto m1 = engine.query(monitor, e1);
  const auto m2 = engine.query(monitor, e2);

  // Two distinct calibrated trees, one shared ordering signature.
  EXPECT_EQ(engine.jt_cache_stats().entries, 2u);
  EXPECT_EQ(engine.jt_cache_stats().misses, 2u);

  // Each answer matches its own evidence's exact posterior - and the
  // two posteriors genuinely differ, so sharing would have been caught.
  bn::VariableElimination ve(wide);
  const auto x1 = ve.query(monitor, e1);
  const auto x2 = ve.query(monitor, e2);
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_NEAR(m1.p(s), x1.p(s), tol::kTiny);
    EXPECT_NEAR(m2.p(s), x2.p(s), tol::kTiny);
  }
  EXPECT_GT(std::fabs(x1.p(0) - x2.p(0)), 0.05);

  // Re-query both: pure hits, no new calibration.
  (void)engine.query(monitor, e1);
  (void)engine.query(monitor, e2);
  EXPECT_EQ(engine.jt_cache_stats().entries, 2u);
  EXPECT_EQ(engine.jt_cache_stats().hits, 2u);

  // clear_cache drops calibrated trees too.
  engine.clear_cache();
  EXPECT_EQ(engine.jt_cache_stats().entries, 0u);
  EXPECT_EQ(engine.jt_cache_stats().hits, 0u);
  EXPECT_EQ(engine.jt_cache_stats().misses, 0u);
}

// ---- unified impossible-evidence error semantics ----

// ---- EXPLAIN / QueryProfile ----

namespace {

// Pinned three-node chain a -> b -> c with dyadic CPTs, so the explain
// goldens are byte-exact (every posterior value formats finitely).
bn::BayesianNetwork explain_network() {
  bn::BayesianNetwork net;
  const auto a = net.add_variable("a", {"a0", "a1"});
  const auto b = net.add_variable("b", {"b0", "b1"});
  const auto c = net.add_variable("c", {"c0", "c1"});
  net.set_cpt(a, {}, {pr::Categorical({0.5, 0.5})});
  net.set_cpt(b, {a},
              {pr::Categorical({0.75, 0.25}), pr::Categorical({0.25, 0.75})});
  net.set_cpt(c, {b},
              {pr::Categorical({1.0, 0.0}), pr::Categorical({0.0, 1.0})});
  return net;
}

}  // namespace

TEST(EngineExplain, MatchesQueryAndAttributesCaches) {
  const auto net = explain_network();
  const bn::InferenceEngine engine(net, {.threads = 1});
  const bn::Evidence ev{{0, 0}};

  auto profile = engine.explain(2, ev);
  EXPECT_EQ(profile.backend, "variable_elimination");
  EXPECT_FALSE(profile.ordering_cache_hit);  // nothing warmed it yet
  const auto posterior = engine.query(2, ev);
  ASSERT_EQ(profile.posterior.size(), posterior.size());
  for (std::size_t s = 0; s < posterior.size(); ++s)
    EXPECT_DOUBLE_EQ(profile.posterior[s], posterior.p(s));

  // The explain itself answered the query, so the plan is now cached.
  EXPECT_TRUE(engine.explain(2, ev).ordering_cache_hit);
}

TEST(EngineExplain, VariableEliminationJsonGolden) {
  const auto net = explain_network();
  const bn::InferenceEngine engine(
      net, {.threads = 1, .backend = bn::Backend::kVariableElimination});
  auto profile = engine.explain(2, {{0, 0}});
  profile.zero_costs();  // structure stays; measured figures blank out
  EXPECT_EQ(profile.to_json(),
            "{\"query\":\"c\",\"evidence\":[{\"variable\":\"a\","
            "\"state\":\"a0\"}],\"backend\":\"variable_elimination\","
            "\"reason\":\"Backend::kVariableElimination runs one elimination "
            "per query\",\"plan\":{\"ordering_cache_hit\":false,"
            "\"induced_width\":1,\"fill_edges\":0,\"steps\":["
            "{\"eliminate\":\"b\",\"width\":1,\"table_cells\":4}]},"
            "\"cost\":{\"arena_high_water_bytes\":0,\"stages\":["
            "{\"stage\":\"plan\",\"seconds\":0},"
            "{\"stage\":\"analyze\",\"seconds\":0},"
            "{\"stage\":\"execute\",\"seconds\":0}],\"total_seconds\":0},"
            "\"posterior\":[{\"state\":\"c0\",\"p\":0.75},"
            "{\"state\":\"c1\",\"p\":0.25}]}");
}

TEST(EngineExplain, JunctionTreeJsonGolden) {
  const auto net = explain_network();
  const bn::InferenceEngine engine(
      net, {.threads = 1, .backend = bn::Backend::kJunctionTree});
  auto profile = engine.explain(2, {{0, 0}});
  profile.zero_costs();
  EXPECT_EQ(profile.to_json(),
            "{\"query\":\"c\",\"evidence\":[{\"variable\":\"a\","
            "\"state\":\"a0\"}],\"backend\":\"junction_tree\","
            "\"reason\":\"Backend::kJunctionTree routes every query through "
            "the calibrated clique tree\",\"plan\":{\"jt_cache_hit\":false,"
            "\"cliques\":[2],\"max_clique_size\":2,"
            "\"calibration_seconds\":0},"
            "\"cost\":{\"arena_high_water_bytes\":0,\"stages\":["
            "{\"stage\":\"calibrate\",\"seconds\":0},"
            "{\"stage\":\"read_marginal\",\"seconds\":0}],"
            "\"total_seconds\":0},"
            "\"posterior\":[{\"state\":\"c0\",\"p\":0.75},"
            "{\"state\":\"c1\",\"p\":0.25}]}");
}

TEST(EngineExplain, HumanPlanGolden) {
  const auto net = explain_network();
  const bn::InferenceEngine engine(
      net, {.threads = 1, .backend = bn::Backend::kVariableElimination});
  auto profile = engine.explain(2, {{0, 0}});
  profile.zero_costs();
  EXPECT_EQ(profile.to_plan(),
            "EXPLAIN P(c | a=a0)\n"
            "backend: variable_elimination \xE2\x80\x94 "
            "Backend::kVariableElimination runs one elimination per query\n"
            "plan: induced width 1, 0 fill edges, ordering cache MISS\n"
            "  step 1: eliminate b  width 1  4 cells\n"
            "cost: arena high-water 0 bytes\n"
            "  plan        0 s\n"
            "  analyze     0 s\n"
            "  execute     0 s\n"
            "  total       0 s\n"
            "posterior: c0=0.75 c1=0.25\n");
}

TEST(EngineExplain, ObservedQueryIsEvidenceDelta) {
  const auto net = explain_network();
  const bn::InferenceEngine engine(net, {.threads = 1});
  const auto profile = engine.explain(0, {{0, 1}});
  EXPECT_EQ(profile.backend, "evidence_delta");
  ASSERT_EQ(profile.posterior.size(), 2u);
  EXPECT_DOUBLE_EQ(profile.posterior[0], 0.0);
  EXPECT_DOUBLE_EQ(profile.posterior[1], 1.0);
}

TEST(EngineExplain, ThrowsLikeQuery) {
  const auto net = explain_network();
  const bn::InferenceEngine engine(net, {.threads = 1});
  EXPECT_THROW((void)engine.explain(99), std::out_of_range);
  EXPECT_THROW((void)engine.explain(0, {{99, 0}}), std::out_of_range);
}

TEST(EngineErrors, UnifiedImpossibleEvidenceMessage) {
  const auto net = paper_network();
  // gt = unknown AND perception = car has probability zero under Table I.
  const bn::Evidence impossible{{0, 2}, {1, 0}};
  const std::string expected =
      bn::impossible_evidence_message(net, impossible);
  EXPECT_EQ(expected,
            "bayesnet: impossible evidence (P(e) = 0): "
            "ground_truth=unknown, perception=car");

  bn::VariableElimination ve(net);
  bn::InferenceEngine engine(net, {.threads = 1});
  pr::Rng rng(5);

  const auto check = [&](auto&& fn) {
    try {
      fn();
      FAIL() << "expected std::domain_error";
    } catch (const std::domain_error& e) {
      EXPECT_EQ(std::string(e.what()), expected);
    }
  };

  // Query a third variable so the evidence itself is what fails. The
  // Table I net has only two nodes, so extend it with a child of gt and
  // an independent fourth variable (for the joint check, which needs two
  // unobserved variables).
  auto net3 = paper_network();
  const auto extra =
      net3.add_variable("monitor", {"quiet", "alarm"});
  net3.set_cpt(extra, {0},
               {pr::Categorical({0.9, 0.1}), pr::Categorical({0.5, 0.5}),
                pr::Categorical({0.1, 0.9})});
  const auto extra2 = net3.add_variable("watchdog", {"ok", "tripped"});
  net3.set_cpt(extra2, {}, {pr::Categorical({0.95, 0.05})});
  bn::VariableElimination ve3(net3);
  bn::InferenceEngine engine3(net3, {.threads = 1});
  const std::string expected3 =
      bn::impossible_evidence_message(net3, impossible);

  // Every entry point throws the one documented error.
  try {
    (void)ve3.query(extra, impossible);
    FAIL();
  } catch (const std::domain_error& e) {
    EXPECT_EQ(std::string(e.what()), expected3);
  }
  try {
    (void)engine3.query(extra, impossible);
    FAIL();
  } catch (const std::domain_error& e) {
    EXPECT_EQ(std::string(e.what()), expected3);
  }
  try {
    (void)engine3.query_batch({{extra, impossible}});
    FAIL();
  } catch (const std::domain_error& e) {
    EXPECT_EQ(std::string(e.what()), expected3);
  }
  try {
    (void)ve3.joint(extra, extra2, impossible);
    FAIL();
  } catch (const std::domain_error& e) {
    EXPECT_EQ(std::string(e.what()), expected3);
  }
  try {
    (void)engine3.joint(extra, extra2, impossible);
    FAIL();
  } catch (const std::domain_error& e) {
    EXPECT_EQ(std::string(e.what()), expected3);
  }
  try {
    (void)bn::enumerate_posterior(net3, extra, impossible);
    FAIL();
  } catch (const std::domain_error& e) {
    EXPECT_EQ(std::string(e.what()), expected3);
  }
  try {
    (void)bn::enumerate_mpe(net3, impossible);
    FAIL();
  } catch (const std::domain_error& e) {
    EXPECT_EQ(std::string(e.what()), expected3);
  }
  check([&] { (void)bn::rejection_sampling(net, 0, impossible, 500, rng); });
}

TEST(EngineErrors, LikelihoodWeightingAllZeroWeightsThrows) {
  // Regression: evidence landing on an unreachable state gives every
  // sample weight zero; the seed code forwarded the all-zero vector into
  // Categorical::normalized (invalid_argument). It must name the evidence
  // in a domain_error, like rejection sampling's zero-accept path — and,
  // so the caller can judge the sampling effort, the attempted sample
  // count.
  const auto net = unreachable_state_network();
  const bn::Evidence impossible{{1, 1}};
  pr::Rng rng(17);
  try {
    (void)bn::likelihood_weighting(net, 0, impossible, 1000, rng);
    FAIL() << "expected std::domain_error";
  } catch (const std::domain_error& e) {
    EXPECT_EQ(std::string(e.what()),
              "bayesnet: impossible evidence (P(e) = 0): b=1 "
              "(likelihood weighting: all 1000 samples had weight zero)");
  }
  // Exact engines agree on the semantics for the same evidence.
  bn::VariableElimination ve(net);
  EXPECT_THROW((void)ve.query(0, impossible), std::domain_error);
  bn::InferenceEngine engine(net);
  EXPECT_THROW((void)engine.query(0, impossible), std::domain_error);
  EXPECT_NEAR(engine.evidence_probability(impossible), 0.0, tol::kSeries);
}

// ---- ordering quality ----

TEST(Ordering, MinFillOnChainIsWidthOne) {
  // A pure chain has induced width 1 under any sane heuristic.
  bn::BayesianNetwork net;
  const std::size_t n = 8;
  for (std::size_t i = 0; i < n; ++i)
    net.add_variable("c" + std::to_string(i), {"0", "1"});
  net.set_cpt(0, {}, {pr::Categorical({0.4, 0.6})});
  for (std::size_t i = 1; i < n; ++i)
    net.set_cpt(i, {i - 1},
                {pr::Categorical({0.8, 0.2}), pr::Categorical({0.3, 0.7})});

  const auto ord = bn::compute_elimination_order(net, {0}, {});
  EXPECT_EQ(ord.order.size(), n - 1);
  EXPECT_EQ(ord.induced_width, 1u);
  EXPECT_EQ(ord.fill_edges, 0u);

  // Deterministic: recomputation yields the identical order.
  const auto again = bn::compute_elimination_order(net, {0}, {});
  EXPECT_EQ(ord.order, again.order);
}

TEST(Ordering, EvidenceKeysLeaveTheInteractionGraph) {
  // Observing the middle of a chain splits the elimination problem.
  bn::BayesianNetwork net;
  for (std::size_t i = 0; i < 5; ++i)
    net.add_variable("c" + std::to_string(i), {"0", "1"});
  net.set_cpt(0, {}, {pr::Categorical({0.4, 0.6})});
  for (std::size_t i = 1; i < 5; ++i)
    net.set_cpt(i, {i - 1},
                {pr::Categorical({0.8, 0.2}), pr::Categorical({0.3, 0.7})});
  const auto ord = bn::compute_elimination_order(net, {0}, {2});
  // Variable 2 is evidence: it is neither eliminated nor kept.
  EXPECT_EQ(ord.order.size(), 3u);
  for (const auto v : ord.order) EXPECT_NE(v, 2u);
}

// ---- module wiring ----

TEST(EngineWiring, FtaDiagnosisMatchesExactAnalysis) {
  sysuq::fta::FaultTree tree;
  const auto a = tree.add_basic_event("a", 0.02);
  const auto b = tree.add_basic_event("b", 0.05);
  const auto c = tree.add_basic_event("c", 0.01);
  const auto g1 =
      tree.add_gate("g1", sysuq::fta::GateType::kAnd, {a, b});
  const auto top =
      tree.add_gate("top", sysuq::fta::GateType::kOr, {g1, c});
  tree.set_top(top);

  const auto compiled = sysuq::fta::compile_to_bayesnet(tree);
  bn::InferenceEngine engine(compiled.network, {.threads = 2});
  const auto diag = sysuq::fta::diagnose_top_event(compiled, engine);

  EXPECT_NEAR(diag.top_probability, sysuq::fta::exact_top_probability(tree),
              tol::kTiny);
  // The top node, conditioned on itself failing, has posterior 1.
  EXPECT_NEAR(diag.posterior_given_top[top], 1.0, tol::kTiny);
  // Diagnosis agrees with the enumeration oracle per node.
  const bn::Evidence ev{{compiled.top, 1}};
  for (sysuq::fta::NodeId i = 0; i < tree.size(); ++i) {
    const auto oracle =
        bn::enumerate_posterior(compiled.network, compiled.node_map[i], ev);
    EXPECT_NEAR(diag.posterior_given_top[i], oracle.p(1), tol::kProbSum) << i;
  }
  // One ordering signature served the whole batch.
  EXPECT_GE(engine.cache_stats().hit_rate(), 0.5);

  bn::BayesianNetwork other;
  other.add_variable("x", {"0", "1"});
  other.set_cpt(0, {}, {pr::Categorical({0.5, 0.5})});
  bn::InferenceEngine wrong(other);
  EXPECT_THROW((void)sysuq::fta::diagnose_top_event(compiled, wrong),
               std::invalid_argument);
}

TEST(EngineWiring, EvidentialQueriesThroughEngine) {
  namespace ev = sysuq::evidence;
  const ev::Frame frame({"safe", "unsafe"});

  // One powerset root with a mass prior; engine vs direct conversion.
  bn::BayesianNetwork net;
  const auto node = net.add_variable(ev::powerset_variable("risk", frame));
  const auto prior = ev::MassFunction(
      frame, {{frame.singleton(0), 0.6}, {frame.singleton(1), 0.3},
              {ev::FocalSet(3), 0.1}});
  net.set_cpt(node, {}, {ev::mass_to_categorical(prior)});

  bn::InferenceEngine engine(net);
  const auto interval = ev::engine_belief_plausibility(
      engine, frame, node, frame.singleton(1));
  const auto direct = prior.belief_interval(frame.singleton(1));
  EXPECT_NEAR(interval.lo(), direct.lo(), tol::kTiny);
  EXPECT_NEAR(interval.hi(), direct.hi(), tol::kTiny);

  const auto mass = ev::engine_posterior_mass(engine, frame, node);
  EXPECT_NEAR(mass.mass(ev::FocalSet(3)), 0.1, tol::kTiny);
}

TEST(EngineWiring, BnFusionMatchesNaiveBayesRule) {
  using namespace sysuq::perception;
  WorldModel model({"car", "pedestrian"}, {0.7, 0.3});
  TrueWorld world(model, {"deer"}, 0.05);
  RedundantArchitecture arch;
  arch.rule = FusionRule::kNaiveBayes;
  for (int s = 0; s < 3; ++s)
    arch.sensors.push_back(ConfusionSensor::make_default(
        /*modeled_classes=*/2, /*novel_classes=*/1, /*acc=*/0.85 + 0.03 * s,
        /*novel_none=*/0.6));

  BnFusion bn_fusion(arch, world);
  pr::Rng rng(123);
  // Compare the BN-backed decision with the closed-form naive-Bayes rule
  // across sampled encounters.
  for (int trial = 0; trial < 200; ++trial) {
    const auto enc = world.sample(rng);
    std::vector<std::size_t> labels(arch.sensors.size());
    for (std::size_t s = 0; s < arch.sensors.size(); ++s)
      labels[s] = arch.sensors[s].classify(enc.true_class, rng).label;

    const std::size_t via_bn = bn_fusion.fuse(labels);

    // Closed-form rule (mirrors fuse_bayes).
    std::vector<double> post(2);
    for (std::size_t c = 0; c < 2; ++c) {
      double v = model.priors().p(c);
      for (std::size_t s = 0; s < arch.sensors.size(); ++s)
        v *= arch.sensors[s].row(c).p(labels[s]);
      post[c] = v;
    }
    const double total = post[0] + post[1];
    std::size_t expected = 2;
    if (total > 0.0) {
      const std::size_t best = post[0] >= post[1] ? 0 : 1;
      expected = post[best] / total >= 0.5 ? best : 2;
    }
    ASSERT_EQ(via_bn, expected) << "trial " << trial;
  }
  // The fusion campaign reuses one cached ordering signature.
  const auto stats = bn_fusion.engine().cache_stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.hit_rate(), 0.9);
}
