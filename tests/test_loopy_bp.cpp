// Loopy-BP backend tests (label: bp).
//
// Covers the checklist for the approximate backend: flooding BP is
// exact on tree-structured networks (matches VariableElimination to
// tolerance::kProbSum), damping / convergence / iteration-cap behavior,
// the deterministic message schedule (byte-identical posteriors across
// runs and engine thread counts), impossible-evidence parity with the
// unified domain_error message, and the kAuto checked-table-size guard
// that escalates to BP — or throws a clear ContractViolation when the
// escalation is disabled.
#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bayesnet/engine.hpp"
#include "bayesnet/inference.hpp"
#include "bayesnet/loopy_bp.hpp"
#include "core/contracts.hpp"
#include "core/tolerance.hpp"
#include "prob/rng.hpp"

namespace bn = sysuq::bayesnet;
namespace pr = sysuq::prob;

namespace {

// Random tree-structured network: variable i > 0 picks one earlier
// parent. All CPT entries strictly positive.
bn::BayesianNetwork random_tree(pr::Rng& rng, std::size_t n) {
  bn::BayesianNetwork net;
  std::vector<std::size_t> cards;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t card = 2 + rng.uniform_index(4);  // 2..5 states
    cards.push_back(card);
    std::vector<std::string> states;
    for (std::size_t s = 0; s < card; ++s)
      states.push_back("s" + std::to_string(s));
    net.add_variable("v" + std::to_string(i), std::move(states));
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<bn::VariableId> parents;
    if (i > 0) parents.push_back(rng.uniform_index(i));
    std::size_t rows = 1;
    for (const auto p : parents) rows *= cards[p];
    std::vector<pr::Categorical> cpt;
    for (std::size_t r = 0; r < rows; ++r) {
      std::vector<double> w(cards[i]);
      for (double& x : w) x = rng.uniform() + 0.05;
      cpt.push_back(pr::Categorical::normalized(std::move(w)));
    }
    net.set_cpt(i, std::move(parents), std::move(cpt));
  }
  return net;
}

// Small loopy network: diamond a -> {b, c} -> d plus a tail. The
// moralized/factor graph has a cycle through a, b, c, d.
bn::BayesianNetwork diamond_network() {
  bn::BayesianNetwork net;
  const auto a = net.add_variable("a", {"0", "1"});
  const auto b = net.add_variable("b", {"0", "1"});
  const auto c = net.add_variable("c", {"0", "1"});
  const auto d = net.add_variable("d", {"0", "1"});
  const auto e = net.add_variable("e", {"0", "1"});
  net.set_cpt(a, {}, {pr::Categorical({0.6, 0.4})});
  net.set_cpt(b, {a},
              {pr::Categorical({0.7, 0.3}), pr::Categorical({0.2, 0.8})});
  net.set_cpt(c, {a},
              {pr::Categorical({0.4, 0.6}), pr::Categorical({0.8, 0.2})});
  net.set_cpt(d, {b, c},
              {pr::Categorical({0.9, 0.1}), pr::Categorical({0.35, 0.65}),
               pr::Categorical({0.5, 0.5}), pr::Categorical({0.15, 0.85})});
  net.set_cpt(e, {d},
              {pr::Categorical({0.55, 0.45}), pr::Categorical({0.3, 0.7})});
  return net;
}

// w x h binary grid, parents = left and up neighbors; weakly coupled,
// strictly positive CPTs. Treewidth grows with min(w, h), so large
// grids are exactly the regime where simulate_elimination predicts the
// exact backends would explode.
bn::BayesianNetwork grid_network(std::size_t w, std::size_t h) {
  bn::BayesianNetwork net;
  for (std::size_t r = 0; r < h; ++r)
    for (std::size_t c = 0; c < w; ++c)
      net.add_variable("g" + std::to_string(r) + "_" + std::to_string(c),
                       {"0", "1"});
  for (std::size_t r = 0; r < h; ++r) {
    for (std::size_t c = 0; c < w; ++c) {
      const bn::VariableId v = r * w + c;
      std::vector<bn::VariableId> parents;
      if (c > 0) parents.push_back(v - 1);      // left
      if (r > 0) parents.push_back(v - w);      // up
      std::vector<pr::Categorical> cpt;
      const std::size_t rows = std::size_t{1} << parents.size();
      for (std::size_t row = 0; row < rows; ++row) {
        // Weak coupling: each active parent nudges state 1 by 0.1.
        double p1 = 0.35;
        for (std::size_t k = 0; k < parents.size(); ++k)
          if ((row >> k) & 1u) p1 += 0.1;
        cpt.push_back(pr::Categorical({1.0 - p1, p1}));
      }
      net.set_cpt(v, std::move(parents), std::move(cpt));
    }
  }
  return net;
}

// Chain a -> b where b = 1 is unreachable.
bn::BayesianNetwork unreachable_state_network() {
  bn::BayesianNetwork net;
  const auto a = net.add_variable("a", {"0", "1"});
  const auto b = net.add_variable("b", {"0", "1"});
  net.set_cpt(a, {}, {pr::Categorical({0.5, 0.5})});
  net.set_cpt(b, {a},
              {pr::Categorical({1.0, 0.0}), pr::Categorical({1.0, 0.0})});
  return net;
}

}  // namespace

// ---- exactness on trees ----

TEST(LoopyBP, ExactOnTreesAndIntervalsContainTruth) {
  pr::Rng rng(20260808ULL);
  for (int t = 0; t < 8; ++t) {
    const auto net = random_tree(rng, 6 + rng.uniform_index(5));
    bn::VariableElimination ve(net);
    for (std::size_t ec : {std::size_t{0}, std::size_t{2}}) {
      bn::Evidence ev;
      for (std::size_t k = 0; k < ec; ++k) {
        const bn::VariableId v = rng.uniform_index(net.size());
        ev[v] = rng.uniform_index(net.variable(v).cardinality());
      }
      const bn::LoopyBP bp(net, ev);
      EXPECT_TRUE(bp.acyclic()) << "tree " << t;
      EXPECT_TRUE(bp.converged()) << "tree " << t;
      for (bn::VariableId q = 0; q < net.size(); ++q) {
        const auto& bounded = bp.query(q);
        if (ev.contains(q)) {
          EXPECT_EQ(bounded.point.p(ev.at(q)), 1.0);
          EXPECT_EQ(bounded.width(), 0.0);
          continue;
        }
        const auto exact = ve.query(q, ev);
        ASSERT_EQ(bounded.point.size(), exact.size());
        for (std::size_t s = 0; s < exact.size(); ++s) {
          ASSERT_NEAR(bounded.point.p(s), exact.p(s),
                      sysuq::tolerance::kProbSum)
              << "tree " << t << " var " << q << " state " << s;
        }
        // On an acyclic graph the certified interval is tight and must
        // contain both the BP point and the exact posterior.
        EXPECT_TRUE(bounded.contains(bounded.point.probs()));
        EXPECT_TRUE(bounded.contains(exact.probs()))
            << "tree " << t << " var " << q;
        EXPECT_LT(bounded.width(), 1e-4);
      }
    }
  }
}

TEST(LoopyBP, ScheduleIsNamedFlooding) {
  EXPECT_STREQ(bn::LoopyBP::schedule(), "flooding");
}

// ---- damping, convergence, iteration cap ----

TEST(LoopyBP, DampingReachesTheSameFixpoint) {
  const auto net = diamond_network();
  const bn::Evidence ev{{4, 1}};
  const bn::LoopyBP plain(net, ev);
  bn::LoopyBP::Options damped_opts;
  damped_opts.damping = 0.4;
  const bn::LoopyBP damped(net, ev, damped_opts);
  ASSERT_TRUE(plain.converged());
  ASSERT_TRUE(damped.converged());
  EXPECT_FALSE(plain.acyclic());
  for (bn::VariableId q = 0; q < net.size(); ++q) {
    for (std::size_t s = 0; s < plain.query(q).point.size(); ++s) {
      EXPECT_NEAR(plain.query(q).point.p(s), damped.query(q).point.p(s),
                  1e-6)
          << q << "/" << s;
    }
  }
  // Damping slows per-iteration progress; it must not be free.
  EXPECT_GE(damped.iterations(), plain.iterations());
}

TEST(LoopyBP, IterationCapReportsNonConvergenceButStaysSound) {
  const auto net = diamond_network();
  bn::LoopyBP::Options opts;
  opts.max_iterations = 1;
  const bn::LoopyBP bp(net, {}, opts);
  EXPECT_FALSE(bp.converged());
  EXPECT_EQ(bp.iterations(), 1u);
  EXPECT_GT(bp.final_residual(), opts.tolerance);
  // The Markov-blanket convexity box is sound regardless of
  // convergence: the exact posterior must still lie inside it.
  bn::VariableElimination ve(net);
  for (bn::VariableId q = 0; q < net.size(); ++q) {
    const auto& bounded = bp.query(q);
    EXPECT_FALSE(bounded.converged);
    EXPECT_TRUE(bounded.contains(ve.query(q, {}).probs())) << q;
    EXPECT_TRUE(bounded.contains(bounded.point.probs())) << q;
  }
}

TEST(LoopyBP, ConvergedRunBeatsItsTolerance) {
  const auto net = diamond_network();
  const bn::LoopyBP bp(net, {{3, 1}});
  EXPECT_TRUE(bp.converged());
  EXPECT_GE(bp.iterations(), 2u);
  EXPECT_LT(bp.final_residual(), bn::LoopyBP::Options{}.tolerance);
  // Loopy point estimates stay close to exact on this weakly coupled
  // diamond, and the certified interval always contains exact.
  bn::VariableElimination ve(net);
  for (bn::VariableId q = 0; q < net.size(); ++q) {
    const auto& bounded = bp.query(q);
    EXPECT_TRUE(bounded.contains(ve.query(q, {{3, 1}}).probs())) << q;
  }
}

TEST(LoopyBP, OptionContractsAreEnforced) {
  const auto net = diamond_network();
  bn::LoopyBP::Options bad;
  bad.max_iterations = 0;
  EXPECT_THROW(bn::LoopyBP(net, {}, bad),
               sysuq::contracts::ContractViolation);
  bad = {};
  bad.damping = 1.0;
  EXPECT_THROW(bn::LoopyBP(net, {}, bad),
               sysuq::contracts::ContractViolation);
  bad = {};
  bad.damping = -0.1;
  EXPECT_THROW(bn::LoopyBP(net, {}, bad),
               sysuq::contracts::ContractViolation);
  bad = {};
  bad.tolerance = 0.0;
  EXPECT_THROW(bn::LoopyBP(net, {}, bad),
               sysuq::contracts::ContractViolation);
  bad = {};
  bad.max_blanket_configs = 0;
  EXPECT_THROW(bn::LoopyBP(net, {}, bad),
               sysuq::contracts::ContractViolation);
  EXPECT_THROW(bn::LoopyBP(net, {{99, 0}}), std::out_of_range);
  EXPECT_THROW(bn::LoopyBP(net, {{0, 7}}), std::out_of_range);
  const bn::LoopyBP ok(net, {});
  EXPECT_THROW((void)ok.query(99), std::out_of_range);
}

// ---- deterministic schedule ----

TEST(LoopyBP, ByteIdenticalAcrossRepeatedRuns) {
  pr::Rng rng(4242ULL);
  const auto tree = random_tree(rng, 9);
  const auto loopy = diamond_network();
  for (const auto* net : {&tree, &loopy}) {
    const bn::Evidence ev{{1, 0}};
    const bn::LoopyBP first(*net, ev);
    const bn::LoopyBP second(*net, ev);
    ASSERT_EQ(first.iterations(), second.iterations());
    for (bn::VariableId q = 0; q < net->size(); ++q) {
      const auto& a = first.query(q);
      const auto& b = second.query(q);
      for (std::size_t s = 0; s < a.point.size(); ++s) {
        EXPECT_EQ(a.point.p(s), b.point.p(s)) << q << "/" << s;
        EXPECT_EQ(a.lo[s], b.lo[s]) << q << "/" << s;
        EXPECT_EQ(a.hi[s], b.hi[s]) << q << "/" << s;
      }
    }
  }
}

TEST(LoopyBP, ByteIdenticalAcrossEngineThreadCounts) {
  pr::Rng rng(99ULL);
  const auto net = random_tree(rng, 10);
  std::vector<bn::QuerySpec> batch;
  for (bn::VariableId q = 0; q < net.size(); ++q) {
    batch.push_back({q, {}});
    batch.push_back({q, {{0, 1}}});
  }
  bn::InferenceEngine one(net,
                          {.threads = 1, .backend = bn::Backend::kLoopyBP});
  bn::InferenceEngine many(net,
                           {.threads = 4, .backend = bn::Backend::kLoopyBP});
  const auto a = one.query_batch(batch);
  const auto b = many.query_batch(batch);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t s = 0; s < a[i].size(); ++s)
      EXPECT_EQ(a[i].p(s), b[i].p(s)) << i << "/" << s;
}

// ---- impossible-evidence parity ----

TEST(LoopyBP, ImpossibleEvidenceThrowsTheUnifiedMessage) {
  const auto net = unreachable_state_network();
  const bn::Evidence impossible{{1, 1}};
  const std::string expected =
      bn::impossible_evidence_message(net, impossible);

  const bn::LoopyBP bp(net, impossible);
  try {
    (void)bp.query(0);
    FAIL() << "expected std::domain_error";
  } catch (const std::domain_error& e) {
    EXPECT_EQ(std::string(e.what()), expected);
  }
  EXPECT_THROW((void)bp.all_marginals(), std::domain_error);

  bn::InferenceEngine engine(
      net, {.threads = 1, .backend = bn::Backend::kLoopyBP});
  const auto expect_throws = [&](auto&& fn, const char* tag) {
    try {
      fn();
      FAIL() << tag << ": expected std::domain_error";
    } catch (const std::domain_error& e) {
      EXPECT_EQ(std::string(e.what()), expected) << tag;
    }
  };
  expect_throws([&] { (void)engine.query(0, impossible); }, "query");
  expect_throws([&] { (void)engine.all_marginals(impossible); },
                "all_marginals");
  expect_throws([&] { (void)engine.query_batch({{0, impossible}}); },
                "query_batch");
  expect_throws([&] { (void)engine.query_bounded(0, impossible); },
                "query_bounded");
  expect_throws([&] { (void)engine.all_marginals_bounded(impossible); },
                "all_marginals_bounded");
}

// ---- engine integration: kLoopyBP backend and bounded queries ----

TEST(LoopyBP, EngineBackendMatchesDirectConstruction) {
  const auto net = diamond_network();
  const bn::Evidence ev{{4, 0}};
  bn::InferenceEngine engine(
      net, {.threads = 2, .backend = bn::Backend::kLoopyBP});
  const bn::LoopyBP direct(net, ev);
  for (bn::VariableId q = 0; q < net.size(); ++q) {
    const auto p = engine.query(q, ev);
    for (std::size_t s = 0; s < p.size(); ++s)
      EXPECT_EQ(p.p(s), direct.query(q).point.p(s)) << q << "/" << s;
  }
  // One BP run serves every unobserved query through the assignment
  // cache (the observed variable short-circuits to its delta).
  EXPECT_EQ(engine.bp_cache_stats().entries, 1u);
  EXPECT_GE(engine.bp_cache_stats().hits, 3u);

  const auto all = engine.all_marginals_bounded(ev);
  ASSERT_EQ(all.size(), net.size());
  EXPECT_TRUE(all[4].converged);
  EXPECT_EQ(all[4].width(), 0.0);  // observed variable holds a delta
}

TEST(LoopyBP, QueryBoundedWorksUnderExactBackends) {
  // query_bounded routes through BP no matter which backend answers
  // plain queries, so exact users can ask for certified intervals.
  pr::Rng rng(7ULL);
  const auto net = random_tree(rng, 8);
  bn::InferenceEngine engine(
      net, {.threads = 1, .backend = bn::Backend::kVariableElimination});
  const auto exact = engine.query(2, {{5, 0}});
  const auto bounded = engine.query_bounded(2, {{5, 0}});
  EXPECT_TRUE(bounded.converged);
  EXPECT_TRUE(bounded.contains(exact.probs()));
}

TEST(LoopyBP, EngineExplainReportsTheBpPlan) {
  const auto net = diamond_network();
  bn::InferenceEngine engine(
      net, {.threads = 1, .backend = bn::Backend::kLoopyBP});
  const auto p = engine.explain(0, {{4, 1}});
  EXPECT_EQ(p.backend, "loopy_bp");
  EXPECT_EQ(p.schedule, "flooding");
  EXPECT_FALSE(p.bp_cache_hit);
  EXPECT_TRUE(p.bp_converged);
  EXPECT_GE(p.bp_iterations, 1u);
  EXPECT_LT(p.final_residual, bn::LoopyBP::Options{}.tolerance);
  EXPECT_GT(p.bound_width, 0.0);
  const auto again = engine.explain(0, {{4, 1}});
  EXPECT_TRUE(again.bp_cache_hit);
  // The rendered plan and JSON name the schedule.
  EXPECT_NE(p.to_plan().find("flooding"), std::string::npos);
  EXPECT_NE(p.to_json().find("\"schedule\""), std::string::npos);
}

// ---- kAuto checked-table-size guard (regression for the escalation) ----

TEST(LoopyBP, AutoEscalatesToBpWhenExactPlanExceedsCeiling) {
  const auto net = diamond_network();
  // Ceiling of one cell: every exact plan is "infeasible", so kAuto
  // must route the query to BP instead of materializing the tables.
  bn::InferenceEngine engine(net, {.threads = 1,
                                   .backend = bn::Backend::kAuto,
                                   .max_exact_table_cells = 1});
  const bn::LoopyBP direct(net, {});
  const auto p = engine.query(0);
  for (std::size_t s = 0; s < p.size(); ++s)
    EXPECT_EQ(p.p(s), direct.query(0).point.p(s)) << s;
  EXPECT_EQ(engine.bp_cache_stats().entries, 1u);

  const auto profile = engine.explain(0);
  EXPECT_EQ(profile.backend, "loopy_bp");
  EXPECT_NE(profile.backend_reason.find("escalated"), std::string::npos);
  EXPECT_NE(profile.backend_reason.find("max_exact_table_cells"),
            std::string::npos);
}

TEST(LoopyBP, AutoWithBpDisabledFailsFastWithAClearContract) {
  const auto net = diamond_network();
  bn::InferenceEngine engine(net, {.threads = 1,
                                   .backend = bn::Backend::kAuto,
                                   .max_exact_table_cells = 1,
                                   .enable_bp = false});
  try {
    (void)engine.query(0);
    FAIL() << "expected ContractViolation";
  } catch (const sysuq::contracts::ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("infeasible"), std::string::npos) << what;
    EXPECT_NE(what.find("enable_bp"), std::string::npos) << what;
    EXPECT_NE(what.find("max_exact_table_cells"), std::string::npos) << what;
  }
}

TEST(LoopyBP, AutoStaysExactUnderTheDefaultCeiling) {
  const auto net = diamond_network();
  bn::InferenceEngine auto_engine(net,
                                  {.threads = 1, .backend = bn::Backend::kAuto});
  bn::InferenceEngine ve_engine(
      net, {.threads = 1, .backend = bn::Backend::kVariableElimination});
  for (bn::VariableId q = 0; q < net.size(); ++q) {
    const auto a = auto_engine.query(q, {{4, 1}});
    const auto b = ve_engine.query(q, {{4, 1}});
    for (std::size_t s = 0; s < a.size(); ++s)
      EXPECT_EQ(a.p(s), b.p(s)) << q << "/" << s;
  }
  // No BP run was ever built: the exact plan fits the default ceiling.
  EXPECT_EQ(auto_engine.bp_cache_stats().entries, 0u);
  EXPECT_EQ(auto_engine.bp_cache_stats().misses, 0u);
}

// ---- treewidth-hostile grid through kAuto ----

TEST(LoopyBP, AutoAnswersAGridThatBreaksTheExactCeiling) {
  // 12x12 binary grid: treewidth ~12, largest elimination table around
  // 2^13 cells. With the ceiling pinned below that, kAuto must escalate
  // to BP and still answer — converged, with finite certified bounds.
  const auto net = grid_network(12, 12);
  bn::InferenceEngine engine(net, {.threads = 2,
                                   .backend = bn::Backend::kAuto,
                                   .max_exact_table_cells = 1024});
  const auto p = engine.query(net.size() / 2);
  EXPECT_NEAR(p.p(0) + p.p(1), 1.0, sysuq::tolerance::kProbSum);
  const auto bounded = engine.query_bounded(net.size() / 2);
  EXPECT_TRUE(bounded.converged);
  EXPECT_GT(bounded.width(), 0.0);
  EXPECT_LT(bounded.width(), 1.0);
  EXPECT_TRUE(bounded.contains(bounded.point.probs()));
  EXPECT_EQ(engine.bp_cache_stats().entries, 1u);
}
