// Distribution-layer tests: closed-form values, CDF/quantile round trips,
// sampling moments against analytic moments, and conjugate updating.
#include "prob/distribution.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "prob/statistics.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace pr = sysuq::prob;

namespace {

// Checks sampling moments of a distribution against analytic mean/variance
// within a z-score tolerance.
void check_sampling_moments(const pr::ContinuousDistribution& d,
                            std::uint64_t seed, std::size_t n = 40000) {
  pr::Rng rng(seed);
  pr::RunningStats stats;
  for (std::size_t i = 0; i < n; ++i) stats.add(d.sample(rng));
  const double se = std::sqrt(d.variance() / static_cast<double>(n));
  EXPECT_NEAR(stats.mean(), d.mean(), 5.0 * se);
  EXPECT_NEAR(stats.variance(), d.variance(), 0.15 * d.variance() + tol::kTiny);
}

// Verifies quantile(cdf(x)) == x on a grid inside the support.
void check_roundtrip(const pr::ContinuousDistribution& d, double lo, double hi) {
  for (int i = 1; i < 20; ++i) {
    const double x = lo + (hi - lo) * i / 20.0;
    const double p = d.cdf(x);
    if (p > tol::kTiny && p < 1.0 - tol::kTiny) {
      EXPECT_NEAR(d.quantile(p), x, 1e-6 * (1.0 + std::fabs(x))) << x;
    }
  }
}

}  // namespace

TEST(Uniform, BasicsAndErrors) {
  pr::Uniform u(2.0, 6.0);
  EXPECT_DOUBLE_EQ(u.pdf(4.0), 0.25);
  EXPECT_DOUBLE_EQ(u.pdf(1.0), 0.0);
  EXPECT_DOUBLE_EQ(u.cdf(2.0), 0.0);
  EXPECT_DOUBLE_EQ(u.cdf(6.0), 1.0);
  EXPECT_DOUBLE_EQ(u.cdf(4.0), 0.5);
  EXPECT_DOUBLE_EQ(u.mean(), 4.0);
  EXPECT_NEAR(u.variance(), 16.0 / 12.0, tol::kTiny);
  EXPECT_NEAR(u.entropy(), std::log(4.0), tol::kTiny);
  EXPECT_THROW(pr::Uniform(3.0, 3.0), std::invalid_argument);
  check_roundtrip(u, 2.0, 6.0);
  check_sampling_moments(u, 42);
}

TEST(Normal, BasicsAndErrors) {
  pr::Normal n(1.0, 2.0);
  EXPECT_NEAR(n.pdf(1.0), 1.0 / (2.0 * std::sqrt(2.0 * M_PI)), tol::kTiny);
  EXPECT_DOUBLE_EQ(n.cdf(1.0), 0.5);
  EXPECT_NEAR(n.cdf(1.0 + 2.0 * 1.959963984540054), 0.975, tol::kProbSum);
  EXPECT_NEAR(n.entropy(), 0.5 * std::log(2.0 * M_PI * M_E * 4.0), tol::kTiny);
  EXPECT_THROW(pr::Normal(0.0, 0.0), std::invalid_argument);
  check_roundtrip(n, -5.0, 7.0);
  check_sampling_moments(n, 43);
}

TEST(Normal, CentralInterval) {
  pr::Normal n(0.0, 1.0);
  const auto [lo, hi] = n.central_interval(0.05);
  EXPECT_NEAR(lo, -1.959963984540054, 1e-8);
  EXPECT_NEAR(hi, 1.959963984540054, 1e-8);
}

TEST(Exponential, BasicsAndErrors) {
  pr::Exponential e(0.5);
  EXPECT_DOUBLE_EQ(e.mean(), 2.0);
  EXPECT_DOUBLE_EQ(e.variance(), 4.0);
  EXPECT_NEAR(e.cdf(2.0), 1.0 - std::exp(-1.0), tol::kTiny);
  EXPECT_DOUBLE_EQ(e.pdf(-1.0), 0.0);
  EXPECT_NEAR(e.quantile(0.5), std::log(2.0) / 0.5, tol::kTiny);
  EXPECT_THROW(pr::Exponential(0.0), std::invalid_argument);
  check_roundtrip(e, 0.01, 10.0);
  check_sampling_moments(e, 44);
}

TEST(Triangular, BasicsAndErrors) {
  pr::Triangular t(0.0, 0.3, 1.0);
  EXPECT_NEAR(t.pdf(0.3), 2.0, tol::kTiny);
  EXPECT_DOUBLE_EQ(t.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(t.cdf(1.0), 1.0);
  EXPECT_NEAR(t.cdf(0.3), 0.3, tol::kTiny);  // F(mode) = (mode-lo)/(hi-lo)
  EXPECT_NEAR(t.mean(), (0.0 + 0.3 + 1.0) / 3.0, tol::kTiny);
  EXPECT_THROW(pr::Triangular(0.0, 1.5, 1.0), std::invalid_argument);
  check_roundtrip(t, 0.01, 0.99);
  check_sampling_moments(t, 45);
}

TEST(Triangular, DegenerateSides) {
  // mode == lo and mode == hi are allowed.
  pr::Triangular left(0.0, 0.0, 1.0);
  EXPECT_NEAR(left.cdf(0.5), 1.0 - 0.25, tol::kTiny);
  pr::Triangular right(0.0, 1.0, 1.0);
  EXPECT_NEAR(right.cdf(0.5), 0.25, tol::kTiny);
}

TEST(Beta, BasicsAndErrors) {
  pr::Beta b(2.0, 3.0);
  EXPECT_NEAR(b.mean(), 0.4, tol::kTiny);
  EXPECT_NEAR(b.variance(), 2.0 * 3.0 / (25.0 * 6.0), tol::kTiny);
  // pdf of Beta(2,3) at 0.5: x(1-x)^2 / B(2,3) = 0.5*0.25*12 = 1.5
  EXPECT_NEAR(b.pdf(0.5), 1.5, tol::kProbSum);
  EXPECT_DOUBLE_EQ(b.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(b.cdf(1.0), 1.0);
  EXPECT_THROW(pr::Beta(0.0, 1.0), std::invalid_argument);
  check_roundtrip(b, 0.05, 0.95);
  check_sampling_moments(b, 46);
}

TEST(Beta, UniformSpecialCase) {
  pr::Beta b(1.0, 1.0);
  for (double x : {0.1, 0.4, 0.9}) {
    EXPECT_NEAR(b.pdf(x), 1.0, tol::kIteration);
    EXPECT_NEAR(b.cdf(x), x, tol::kIteration);
  }
}

TEST(Beta, ConjugateUpdateShrinksCredibleInterval) {
  // The paper's Sec. III.B claim: epistemic uncertainty decreases with
  // every observation. Posterior credible width must shrink monotonically
  // in expectation; here we verify it for a deterministic count sequence.
  pr::Beta prior(1.0, 1.0);
  double prev_width = 1.0;
  pr::Beta post = prior;
  for (int batch = 0; batch < 6; ++batch) {
    post = post.updated(8, 2);  // 80% success-rate data
    const auto [lo, hi] = post.central_interval(0.05);
    const double width = hi - lo;
    EXPECT_LT(width, prev_width);
    prev_width = width;
  }
  EXPECT_NEAR(post.mean(), 0.8, 0.06);
}

TEST(Gamma, BasicsAndErrors) {
  pr::Gamma g(3.0, 2.0);
  EXPECT_DOUBLE_EQ(g.mean(), 6.0);
  EXPECT_DOUBLE_EQ(g.variance(), 12.0);
  // Gamma(1, scale) is Exponential(1/scale).
  pr::Gamma g1(1.0, 2.0);
  EXPECT_NEAR(g1.cdf(2.0), 1.0 - std::exp(-1.0), tol::kIteration);
  EXPECT_THROW(pr::Gamma(-1.0, 1.0), std::invalid_argument);
  check_roundtrip(g, 0.5, 20.0);
  check_sampling_moments(g, 47);
}

TEST(Gamma, QuantileRoundTrip) {
  pr::Gamma g(2.5, 1.5);
  for (double p : {0.01, 0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(g.cdf(g.quantile(p)), p, tol::kProbSum) << p;
  }
}

TEST(Dirichlet, BasicsAndErrors) {
  pr::Dirichlet d({2.0, 3.0, 5.0});
  const auto m = d.mean();
  EXPECT_NEAR(m[0], 0.2, tol::kTiny);
  EXPECT_NEAR(m[1], 0.3, tol::kTiny);
  EXPECT_NEAR(m[2], 0.5, tol::kTiny);
  EXPECT_DOUBLE_EQ(d.total_concentration(), 10.0);
  EXPECT_THROW(pr::Dirichlet({1.0}), std::invalid_argument);
  EXPECT_THROW(pr::Dirichlet({1.0, 0.0}), std::invalid_argument);
}

TEST(Dirichlet, MarginalIsBeta) {
  pr::Dirichlet d({2.0, 3.0, 5.0});
  const pr::Beta marg = d.marginal(0);
  EXPECT_DOUBLE_EQ(marg.alpha(), 2.0);
  EXPECT_DOUBLE_EQ(marg.beta(), 8.0);
  EXPECT_NEAR(d.variance(0), marg.variance(), tol::kTiny);
}

TEST(Dirichlet, SamplesLieOnSimplex) {
  pr::Dirichlet d({0.5, 1.5, 2.5, 4.0});
  pr::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto x = d.sample(rng);
    double sum = 0.0;
    for (double v : x) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, tol::kProbSum);
  }
}

TEST(Dirichlet, SampleMeanMatchesAnalytic) {
  pr::Dirichlet d({2.0, 3.0, 5.0});
  pr::Rng rng(11);
  std::vector<pr::RunningStats> stats(3);
  for (int i = 0; i < 20000; ++i) {
    const auto x = d.sample(rng);
    for (std::size_t k = 0; k < 3; ++k) stats[k].add(x[k]);
  }
  const auto m = d.mean();
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_NEAR(stats[k].mean(), m[k], 0.01) << k;
    EXPECT_NEAR(stats[k].variance(), d.variance(k), 0.003) << k;
  }
}

TEST(Dirichlet, UpdateNarrowsCredibleWidth) {
  pr::Dirichlet prior({1.0, 1.0, 1.0});
  const double w0 = prior.mean_credible_width();
  const pr::Dirichlet post = prior.updated({60, 30, 10});
  const double w1 = post.mean_credible_width();
  EXPECT_LT(w1, w0);
  const pr::Dirichlet post2 = post.updated({600, 300, 100});
  EXPECT_LT(post2.mean_credible_width(), w1);
}

TEST(Dirichlet, LogPdfValidation) {
  pr::Dirichlet d({2.0, 2.0});
  EXPECT_GT(d.log_pdf({0.5, 0.5}), d.log_pdf({0.05, 0.95}));
  EXPECT_EQ(d.log_pdf({0.5, 0.4}), -std::numeric_limits<double>::infinity());
  EXPECT_THROW((void)d.log_pdf({0.5, 0.3, 0.2}), std::invalid_argument);
}
