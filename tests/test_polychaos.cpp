// Polynomial chaos tests: quadrature exactness, closed-form expansions,
// Monte-Carlo cross-checks, and Sobol index identities.
#include "prob/polychaos.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "prob/rng.hpp"
#include "prob/statistics.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace pr = sysuq::prob;

TEST(Quadrature, HermiteMatchesGaussianMoments) {
  // E[X^k] under N(0,1): 0, 1, 0, 3, 0, 15 for k = 1..6.
  const auto rule = pr::gauss_rule(pr::PolyBasis::kHermite, 8);
  const double expected[] = {1.0, 0.0, 1.0, 0.0, 3.0, 0.0, 15.0};
  for (int k = 0; k <= 6; ++k) {
    double m = 0.0;
    for (std::size_t i = 0; i < rule.nodes.size(); ++i)
      m += rule.weights[i] * std::pow(rule.nodes[i], k);
    EXPECT_NEAR(m, expected[k], tol::kProbSum) << "moment " << k;
  }
  // Weights sum to 1 (probability measure).
  double w = 0.0;
  for (double v : rule.weights) w += v;
  EXPECT_NEAR(w, 1.0, tol::kTiny);
}

TEST(Quadrature, LegendreMatchesUniformMoments) {
  // E[X^k] under U[-1,1]: 1/(k+1) for even k, 0 for odd.
  const auto rule = pr::gauss_rule(pr::PolyBasis::kLegendre, 8);
  for (int k = 0; k <= 9; ++k) {
    double m = 0.0;
    for (std::size_t i = 0; i < rule.nodes.size(); ++i)
      m += rule.weights[i] * std::pow(rule.nodes[i], k);
    const double expect = (k % 2 == 0) ? 1.0 / (k + 1.0) : 0.0;
    EXPECT_NEAR(m, expect, tol::kIteration) << "moment " << k;
  }
  EXPECT_THROW((void)pr::gauss_rule(pr::PolyBasis::kLegendre, 0),
               std::invalid_argument);
}

TEST(Quadrature, ExactForDegree2nMinus1) {
  // n-point rule integrates x^(2n-1) and x^(2n-2) exactly; x^(2n) not.
  const std::size_t n = 5;
  const auto rule = pr::gauss_rule(pr::PolyBasis::kHermite, n);
  const auto moment = [&](int k) {
    double m = 0.0;
    for (std::size_t i = 0; i < rule.nodes.size(); ++i)
      m += rule.weights[i] * std::pow(rule.nodes[i], k);
    return m;
  };
  // E[X^8] = 105 (exact at degree 8 = 2n-2).
  EXPECT_NEAR(moment(8), 105.0, 1e-7);
  // E[X^10] = 945; the 5-point rule gets it wrong (degree 10 > 9).
  EXPECT_GT(std::fabs(moment(10) - 945.0), 1.0);
}

TEST(BasisPolynomials, RecurrenceValues) {
  // He_2(x) = x^2 - 1; He_3(x) = x^3 - 3x.
  EXPECT_NEAR(pr::basis_eval(pr::PolyBasis::kHermite, 2, 2.0), 3.0, tol::kTiny);
  EXPECT_NEAR(pr::basis_eval(pr::PolyBasis::kHermite, 3, 2.0), 2.0, tol::kTiny);
  // P_2(x) = (3x^2 - 1)/2; P_3(x) = (5x^3 - 3x)/2.
  EXPECT_NEAR(pr::basis_eval(pr::PolyBasis::kLegendre, 2, 0.5), -0.125, tol::kTiny);
  EXPECT_NEAR(pr::basis_eval(pr::PolyBasis::kLegendre, 3, 0.5), -0.4375, tol::kTiny);
  // Norms: E[He_k^2] = k!, E[P_k^2] = 1/(2k+1).
  EXPECT_DOUBLE_EQ(pr::basis_norm2(pr::PolyBasis::kHermite, 4), 24.0);
  EXPECT_DOUBLE_EQ(pr::basis_norm2(pr::PolyBasis::kLegendre, 2), 0.2);
}

TEST(Pce1D, QuadraticHermiteClosedForm) {
  // f(x) = x^2 = He_2(x) + 1: c0 = 1, c1 = 0, c2 = 1; var = 2.
  const pr::PolynomialChaos1D pce(pr::PolyBasis::kHermite, 3,
                                  [](double x) { return x * x; });
  EXPECT_NEAR(pce.coefficient(0), 1.0, tol::kIteration);
  EXPECT_NEAR(pce.coefficient(1), 0.0, tol::kIteration);
  EXPECT_NEAR(pce.coefficient(2), 1.0, tol::kIteration);
  EXPECT_NEAR(pce.coefficient(3), 0.0, tol::kIteration);
  EXPECT_NEAR(pce.mean(), 1.0, tol::kIteration);
  EXPECT_NEAR(pce.variance(), 2.0, tol::kIteration);
  // Surrogate reproduces the polynomial exactly.
  for (double x : {-2.0, -0.3, 0.0, 1.7}) {
    EXPECT_NEAR(pce.evaluate(x), x * x, tol::kProbSum) << x;
  }
}

TEST(Pce1D, QuadraticLegendreClosedForm) {
  // Under U[-1,1]: E[x^2] = 1/3, Var[x^2] = 1/5 - 1/9 = 4/45.
  const pr::PolynomialChaos1D pce(pr::PolyBasis::kLegendre, 4,
                                  [](double x) { return x * x; });
  EXPECT_NEAR(pce.mean(), 1.0 / 3.0, tol::kIteration);
  EXPECT_NEAR(pce.variance(), 4.0 / 45.0, tol::kIteration);
}

TEST(Pce1D, SmoothNonPolynomialConvergesSpectrally) {
  // f(x) = exp(x) under N(0,1): mean = e^{1/2}, var = e^2 - e.
  const double true_mean = std::exp(0.5);
  const double true_var = std::exp(2.0) - std::exp(1.0);
  double prev_err = 1e9;
  for (const std::size_t order : {2u, 4u, 8u, 12u}) {
    const pr::PolynomialChaos1D pce(pr::PolyBasis::kHermite, order,
                                    [](double x) { return std::exp(x); }, 8);
    const double err = std::fabs(pce.variance() - true_var) +
                       std::fabs(pce.mean() - true_mean);
    EXPECT_LT(err, prev_err + tol::kTiny) << order;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-6);
}

TEST(Pce1D, MatchesMonteCarlo) {
  const pr::PolynomialChaos1D pce(
      pr::PolyBasis::kHermite, 6,
      [](double x) { return std::sin(x) + 0.5 * x * x; }, 6);
  pr::Rng rng(99);
  pr::RunningStats mc;
  for (int i = 0; i < 400000; ++i) {
    const double x = rng.gaussian();
    mc.add(std::sin(x) + 0.5 * x * x);
  }
  EXPECT_NEAR(pce.mean(), mc.mean(), 0.005);
  EXPECT_NEAR(pce.variance(), mc.variance(), 0.02);
}

TEST(PceND, AdditiveModelSobolIndices) {
  // f(x, y) = x + 2y under iid N(0,1): Var = 5, S_x = 0.2, S_y = 0.8,
  // no interactions (first == total).
  const pr::PolynomialChaosND pce(
      pr::PolyBasis::kHermite, 2, 3,
      [](const std::vector<double>& x) { return x[0] + 2.0 * x[1]; });
  EXPECT_NEAR(pce.mean(), 0.0, tol::kIteration);
  EXPECT_NEAR(pce.variance(), 5.0, tol::kProbSum);
  EXPECT_NEAR(pce.sobol_first(0), 0.2, tol::kProbSum);
  EXPECT_NEAR(pce.sobol_first(1), 0.8, tol::kProbSum);
  EXPECT_NEAR(pce.sobol_total(0), 0.2, tol::kProbSum);
  EXPECT_NEAR(pce.sobol_total(1), 0.8, tol::kProbSum);
}

TEST(PceND, PureInteractionModel) {
  // f(x, y) = x * y: all variance is interaction — first-order indices 0,
  // totals 1.
  const pr::PolynomialChaosND pce(
      pr::PolyBasis::kHermite, 2, 3,
      [](const std::vector<double>& x) { return x[0] * x[1]; });
  EXPECT_NEAR(pce.mean(), 0.0, tol::kIteration);
  EXPECT_NEAR(pce.variance(), 1.0, tol::kProbSum);
  EXPECT_NEAR(pce.sobol_first(0), 0.0, tol::kProbSum);
  EXPECT_NEAR(pce.sobol_first(1), 0.0, tol::kProbSum);
  EXPECT_NEAR(pce.sobol_total(0), 1.0, tol::kProbSum);
  EXPECT_NEAR(pce.sobol_total(1), 1.0, tol::kProbSum);
}

TEST(PceND, IshigamiStyleLegendre) {
  // g(x, y, z) = sin(pi x) + 7 sin^2(pi y) + 0.1 z^4 sin(pi x), on
  // U[-1,1]^3 — a standard Sobol benchmark shape. Cross-check variance
  // against Monte Carlo and ordering of the indices.
  const auto g = [](const std::vector<double>& v) {
    return std::sin(M_PI * v[0]) + 7.0 * std::pow(std::sin(M_PI * v[1]), 2) +
           0.1 * std::pow(v[2], 4) * std::sin(M_PI * v[0]);
  };
  const pr::PolynomialChaosND pce(pr::PolyBasis::kLegendre, 3, 9, g, 4);
  pr::Rng rng(123);
  pr::RunningStats mc;
  for (int i = 0; i < 300000; ++i) {
    mc.add(g({rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)}));
  }
  EXPECT_NEAR(pce.mean(), mc.mean(), 0.02);
  EXPECT_NEAR(pce.variance(), mc.variance(), 0.1);
  // y dominates; z only matters through its interaction with x. On
  // U[-1,1]^3 the z-interaction variance is exactly
  // 0.01 * E[sin^2] * Var[z^4] = 0.01 * 0.5 * 16/225, and the total
  // variance is 0.5 * 1.02^2 + 6.125 + that term, giving
  // S_T(z) = 5.3503e-5.
  EXPECT_GT(pce.sobol_first(1), pce.sobol_first(0));
  EXPECT_NEAR(pce.sobol_first(2), 0.0, 1e-6);
  EXPECT_NEAR(pce.sobol_total(2), 5.3503e-5, 5e-6);
  // Totals >= firsts, all within [0, 1].
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(pce.sobol_total(i) + tol::kTiny, pce.sobol_first(i));
    EXPECT_GE(pce.sobol_first(i), -tol::kTiny);
    EXPECT_LE(pce.sobol_total(i), 1.0 + tol::kTiny);
  }
}

TEST(PceND, Validation) {
  const auto f = [](const std::vector<double>&) { return 0.0; };
  EXPECT_THROW(pr::PolynomialChaosND(pr::PolyBasis::kHermite, 0, 2, f),
               std::invalid_argument);
  EXPECT_THROW(pr::PolynomialChaosND(pr::PolyBasis::kHermite, 7, 2, f),
               std::invalid_argument);
  const pr::PolynomialChaosND pce(pr::PolyBasis::kHermite, 2, 2, f);
  EXPECT_THROW((void)pce.sobol_first(2), std::out_of_range);
  EXPECT_THROW((void)pce.evaluate({1.0}), std::invalid_argument);
  EXPECT_DOUBLE_EQ(pce.sobol_first(0), 0.0);  // zero-variance guard
  // Term count for dim 2, order 2: C(2+2, 2) = 6.
  EXPECT_EQ(pce.term_count(), 6u);
}
