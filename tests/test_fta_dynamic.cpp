// Dynamic fault-tree tests: the CTMC engine against closed-form
// exponential results, PAND order semantics, spare-gate hypoexponential
// lifetimes, and Monte-Carlo cross-checks.
#include "fta/dynamic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "prob/rng.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace ft = sysuq::fta;
namespace pr = sysuq::prob;

TEST(Ctmc, ConstructionValidation) {
  EXPECT_THROW(ft::Ctmc({}), std::invalid_argument);
  EXPECT_THROW(ft::Ctmc({{0.0, 1.0}}), std::invalid_argument);  // non-square
  EXPECT_THROW(ft::Ctmc({{0.0, -1.0}, {0.0, 0.0}}), std::invalid_argument);
  const ft::Ctmc c({{0.0, 2.0}, {0.0, 0.0}});
  EXPECT_DOUBLE_EQ(c.rate(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(c.rate(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(c.exit_rate(0), 2.0);
  EXPECT_DOUBLE_EQ(c.exit_rate(1), 0.0);
}

TEST(Ctmc, TransientMatchesExponential) {
  // Two states, rate lambda: P(absorbed by t) = 1 - exp(-lambda t).
  const double lambda = 0.7;
  const ft::Ctmc c({{0.0, lambda}, {0.0, 0.0}});
  for (const double t : {0.0, 0.5, 1.0, 3.0, 10.0}) {
    const auto d = c.transient({1.0, 0.0}, t);
    EXPECT_NEAR(d[1], 1.0 - std::exp(-lambda * t), tol::kIteration) << t;
    EXPECT_NEAR(d[0] + d[1], 1.0, tol::kIteration);
  }
}

TEST(Ctmc, TransientLongHorizonSegmented) {
  // Large q*t exercises the segmentation path.
  const ft::Ctmc c({{0.0, 50.0}, {0.0, 0.0}});
  const auto d = c.transient({1.0, 0.0}, 20.0);
  EXPECT_NEAR(d[1], 1.0, tol::kProbSum);
}

TEST(Ctmc, TransientValidation) {
  const ft::Ctmc c({{0.0, 1.0}, {0.0, 0.0}});
  EXPECT_THROW((void)c.transient({0.5, 0.4}, 1.0), std::invalid_argument);
  EXPECT_THROW((void)c.transient({1.0, 0.0}, -1.0), std::invalid_argument);
  EXPECT_THROW((void)c.transient({1.0}, 1.0), std::invalid_argument);
}

TEST(DynamicFaultTree, Validation) {
  ft::DynamicFaultTree t;
  const auto a = t.add_basic_event("a", 1.0);
  EXPECT_THROW((void)t.add_basic_event("a", 1.0), std::invalid_argument);
  EXPECT_THROW((void)t.add_basic_event("b", 0.0), std::invalid_argument);
  EXPECT_THROW((void)t.add_gate("g", ft::DynGateType::kPand, {a}),
               std::invalid_argument);
  const auto b = t.add_basic_event("b", 1.0);
  const auto g = t.add_gate("g", ft::DynGateType::kAnd, {a, b});
  EXPECT_THROW((void)t.unreliability(1.0), std::logic_error);  // no top
  t.set_top(g);
  EXPECT_NO_THROW((void)t.unreliability(1.0));
  // PAND over a gate is rejected.
  EXPECT_THROW((void)t.add_gate("p", ft::DynGateType::kPand, {a, g}),
               std::invalid_argument);
}

TEST(DynamicFaultTree, AndOrMatchStaticFormulas) {
  const double la = 0.5, lb = 1.2, t = 1.7;
  const double fa = 1.0 - std::exp(-la * t);
  const double fb = 1.0 - std::exp(-lb * t);
  {
    ft::DynamicFaultTree d;
    const auto a = d.add_basic_event("a", la);
    const auto b = d.add_basic_event("b", lb);
    d.set_top(d.add_gate("and", ft::DynGateType::kAnd, {a, b}));
    EXPECT_NEAR(d.unreliability(t), fa * fb, tol::kProbSum);
  }
  {
    ft::DynamicFaultTree d;
    const auto a = d.add_basic_event("a", la);
    const auto b = d.add_basic_event("b", lb);
    d.set_top(d.add_gate("or", ft::DynGateType::kOr, {a, b}));
    EXPECT_NEAR(d.unreliability(t), 1.0 - (1.0 - fa) * (1.0 - fb), tol::kProbSum);
  }
}

TEST(DynamicFaultTree, KooNMatchesBinomial) {
  const double l = 0.8, t = 1.0;
  const double f = 1.0 - std::exp(-l * t);
  ft::DynamicFaultTree d;
  const auto a = d.add_basic_event("a", l);
  const auto b = d.add_basic_event("b", l);
  const auto c = d.add_basic_event("c", l);
  d.set_top(d.add_gate("2oo3", ft::DynGateType::kKooN, {a, b, c}, 2));
  EXPECT_NEAR(d.unreliability(t), 3 * f * f * (1 - f) + f * f * f, tol::kProbSum);
}

TEST(DynamicFaultTree, PandOrderSemantics) {
  // PAND(a, b) fires only if a fails before b; for independent
  // exponentials P(a before b, both by t) has the closed form
  //   F(t) = (1 - e^{-lb t}) - lb/(la+lb) * (e^{-la t} - e^{-(la+lb) t})
  //          * e^{... }  — use the direct integral instead:
  //   F(t) = int_0^t la e^{-la x} (e^{-lb x} - e^{-lb t}) dx
  const double la = 0.9, lb = 0.4, t = 2.0;
  ft::DynamicFaultTree d;
  const auto a = d.add_basic_event("a", la);
  const auto b = d.add_basic_event("b", lb);
  d.set_top(d.add_gate("pand", ft::DynGateType::kPand, {a, b}));
  const double measured = d.unreliability(t);

  // Numerical integral of the closed-form integrand.
  double integral = 0.0;
  const int steps = 200000;
  for (int i = 0; i < steps; ++i) {
    const double x = (i + 0.5) * t / steps;
    integral += la * std::exp(-la * x) *
                (std::exp(-lb * x) - std::exp(-lb * t)) * (t / steps);
  }
  EXPECT_NEAR(measured, integral, 1e-5);

  // And strictly below the order-free AND probability.
  ft::DynamicFaultTree andd;
  const auto aa = andd.add_basic_event("a", la);
  const auto bb = andd.add_basic_event("b", lb);
  andd.set_top(andd.add_gate("and", ft::DynGateType::kAnd, {aa, bb}));
  EXPECT_LT(measured, andd.unreliability(t));
}

TEST(DynamicFaultTree, PandMonteCarloAgreement) {
  const double la = 0.6, lb = 1.1, t = 1.5;
  ft::DynamicFaultTree d;
  const auto a = d.add_basic_event("a", la);
  const auto b = d.add_basic_event("b", lb);
  d.set_top(d.add_gate("pand", ft::DynGateType::kPand, {a, b}));
  const double exact = d.unreliability(t);

  pr::Rng rng(8);
  int fired = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    const double ta = rng.exponential(la);
    const double tb = rng.exponential(lb);
    if (ta <= tb && tb <= t) ++fired;
  }
  EXPECT_NEAR(exact, static_cast<double>(fired) / trials, 0.005);
}

TEST(DynamicFaultTree, ColdSpareHypoexponential) {
  // Cold spare (dormancy 0): lifetime = X1 + X2, hypoexponential CDF
  //   F(t) = 1 - (l2 e^{-l1 t} - l1 e^{-l2 t}) / (l2 - l1).
  const double l1 = 1.0, l2 = 0.5, t = 2.5;
  ft::DynamicFaultTree d;
  const auto p = d.add_basic_event("primary", l1);
  const auto s = d.add_basic_event("spare", l2);
  d.set_top(d.add_gate("spare_gate", ft::DynGateType::kSpare, {p, s}, 0, 0.0));
  const double expect =
      1.0 - (l2 * std::exp(-l1 * t) - l1 * std::exp(-l2 * t)) / (l2 - l1);
  EXPECT_NEAR(d.unreliability(t), expect, tol::kProbSum);
}

TEST(DynamicFaultTree, HotSpareEqualsAnd) {
  // Dormancy 1: the spare ages like an active unit -> SPARE == AND.
  const double l1 = 0.7, l2 = 0.9, t = 1.3;
  ft::DynamicFaultTree spare;
  const auto p = spare.add_basic_event("primary", l1);
  const auto s = spare.add_basic_event("spare", l2);
  spare.set_top(
      spare.add_gate("spare_gate", ft::DynGateType::kSpare, {p, s}, 0, 1.0));
  ft::DynamicFaultTree andd;
  const auto a = andd.add_basic_event("a", l1);
  const auto b = andd.add_basic_event("b", l2);
  andd.set_top(andd.add_gate("and", ft::DynGateType::kAnd, {a, b}));
  EXPECT_NEAR(spare.unreliability(t), andd.unreliability(t), tol::kProbSum);
}

TEST(DynamicFaultTree, WarmSpareBetweenColdAndHot) {
  const double l1 = 0.7, l2 = 0.9, t = 1.3;
  const auto build = [&](double dormancy) {
    ft::DynamicFaultTree d;
    const auto p = d.add_basic_event("primary", l1);
    const auto s = d.add_basic_event("spare", l2);
    d.set_top(d.add_gate("g", ft::DynGateType::kSpare, {p, s}, 0, dormancy));
    return d.unreliability(t);
  };
  const double cold = build(0.0);
  const double warm = build(0.5);
  const double hot = build(1.0);
  EXPECT_LT(cold, warm);
  EXPECT_LT(warm, hot);
}

TEST(DynamicFaultTree, UnreliabilityCurveMonotone) {
  ft::DynamicFaultTree d;
  const auto a = d.add_basic_event("a", 0.4);
  const auto b = d.add_basic_event("b", 0.6);
  const auto c = d.add_basic_event("c", 0.2);
  const auto pand = d.add_gate("pand", ft::DynGateType::kPand, {a, b});
  d.set_top(d.add_gate("top", ft::DynGateType::kOr, {pand, c}));
  const auto curve = d.unreliability_curve({0.0, 0.5, 1.0, 2.0, 4.0, 8.0});
  EXPECT_DOUBLE_EQ(curve.front(), 0.0);
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_GE(curve[i], curve[i - 1] - tol::kTiny);
  // Asymptote: the PAND may never fire (b-before-a), so F(8) is governed
  // by the OR with c: 1 - e^{-0.2*8} ~ 0.80 plus the PAND contribution.
  EXPECT_GT(curve.back(), 0.85);
  EXPECT_GE(d.compiled_state_count(), 8u);
}

TEST(DynamicFaultTree, EventInTwoSpareGatesRejected) {
  ft::DynamicFaultTree d;
  const auto a = d.add_basic_event("a", 1.0);
  const auto b = d.add_basic_event("b", 1.0);
  const auto c = d.add_basic_event("c", 1.0);
  (void)d.add_gate("s1", ft::DynGateType::kSpare, {a, b}, 0, 0.5);
  EXPECT_THROW((void)d.add_gate("s2", ft::DynGateType::kSpare, {b, c}, 0, 0.5),
               std::invalid_argument);
}
