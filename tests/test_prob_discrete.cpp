// Tests for discrete distributions and the frequentist counter.
#include "prob/discrete.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "prob/statistics.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace pr = sysuq::prob;

TEST(Categorical, ConstructionValidation) {
  EXPECT_NO_THROW(pr::Categorical({0.5, 0.5}));
  EXPECT_THROW(pr::Categorical({0.5, 0.6}), std::invalid_argument);
  EXPECT_THROW(pr::Categorical({-0.1, 1.1}), std::invalid_argument);
  EXPECT_THROW(pr::Categorical(std::vector<double>{}), std::invalid_argument);
}

TEST(Categorical, NormalizedFactory) {
  const auto c = pr::Categorical::normalized({2.0, 3.0, 5.0});
  EXPECT_NEAR(c.p(0), 0.2, tol::kTiny);
  EXPECT_NEAR(c.p(2), 0.5, tol::kTiny);
  EXPECT_THROW((void)pr::Categorical::normalized({0.0, 0.0}),
               std::invalid_argument);
}

TEST(Categorical, UniformAndDelta) {
  const auto u = pr::Categorical::uniform(4);
  EXPECT_NEAR(u.entropy(), std::log(4.0), tol::kTiny);
  const auto d = pr::Categorical::delta(2, 4);
  EXPECT_DOUBLE_EQ(d.p(2), 1.0);
  EXPECT_DOUBLE_EQ(d.entropy(), 0.0);
  EXPECT_EQ(d.argmax(), 2u);
  EXPECT_THROW((void)pr::Categorical::delta(4, 4), std::invalid_argument);
}

TEST(Categorical, EntropyMaximalAtUniform) {
  const auto u = pr::Categorical::uniform(5);
  const auto skew = pr::Categorical::normalized({5.0, 1.0, 1.0, 1.0, 1.0});
  EXPECT_GT(u.entropy(), skew.entropy());
}

TEST(Categorical, TotalVariation) {
  const pr::Categorical a({0.5, 0.5});
  const pr::Categorical b({0.9, 0.1});
  EXPECT_NEAR(a.total_variation(b), 0.4, tol::kTiny);
  EXPECT_DOUBLE_EQ(a.total_variation(a), 0.0);
  const pr::Categorical c({1.0, 0.0});
  const pr::Categorical d({0.0, 1.0});
  EXPECT_DOUBLE_EQ(c.total_variation(d), 1.0);
}

TEST(Categorical, MixedIsConvexCombination) {
  const pr::Categorical a({1.0, 0.0});
  const pr::Categorical b({0.0, 1.0});
  const auto m = a.mixed(b, 0.25);
  EXPECT_NEAR(m.p(0), 0.75, tol::kTiny);
  EXPECT_NEAR(m.p(1), 0.25, tol::kTiny);
  EXPECT_THROW((void)a.mixed(b, 1.5), std::invalid_argument);
}

TEST(Categorical, SamplingFrequenciesConverge) {
  const auto c = pr::Categorical::normalized({1.0, 2.0, 7.0});
  pr::Rng rng(99);
  std::vector<std::size_t> counts(3, 0);
  const std::size_t n = 50000;
  for (std::size_t i = 0; i < n; ++i) ++counts[c.sample(rng)];
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, c.p(k), 0.01) << k;
  }
}

TEST(Bernoulli, Basics) {
  pr::Bernoulli b(0.3);
  EXPECT_DOUBLE_EQ(b.pmf(true), 0.3);
  EXPECT_DOUBLE_EQ(b.pmf(false), 0.7);
  EXPECT_NEAR(b.entropy(), -0.3 * std::log(0.3) - 0.7 * std::log(0.7), tol::kTiny);
  EXPECT_THROW(pr::Bernoulli(1.5), std::invalid_argument);
  // Degenerate entropy is zero.
  EXPECT_DOUBLE_EQ(pr::Bernoulli(0.0).entropy(), 0.0);
  EXPECT_DOUBLE_EQ(pr::Bernoulli(1.0).entropy(), 0.0);
}

TEST(Binomial, PmfSumsToOneAndMatchesKnown) {
  pr::Binomial b(10, 0.3);
  double sum = 0.0;
  for (std::size_t k = 0; k <= 10; ++k) sum += b.pmf(k);
  EXPECT_NEAR(sum, 1.0, tol::kIteration);
  // P(X=3) for B(10, 0.3) = C(10,3) 0.3^3 0.7^7 ≈ 0.266827932
  EXPECT_NEAR(b.pmf(3), 0.266827932, 1e-8);
  EXPECT_DOUBLE_EQ(b.pmf(11), 0.0);
}

TEST(Binomial, CdfMatchesPartialSums) {
  pr::Binomial b(12, 0.45);
  double acc = 0.0;
  for (std::size_t k = 0; k <= 12; ++k) {
    acc += b.pmf(k);
    EXPECT_NEAR(b.cdf(k), acc, tol::kProbSum) << k;
  }
}

TEST(Binomial, DegenerateP) {
  pr::Binomial zero(5, 0.0);
  EXPECT_DOUBLE_EQ(zero.pmf(0), 1.0);
  EXPECT_DOUBLE_EQ(zero.pmf(1), 0.0);
  pr::Binomial one(5, 1.0);
  EXPECT_DOUBLE_EQ(one.pmf(5), 1.0);
}

TEST(Binomial, SamplingMean) {
  pr::Binomial b(20, 0.25);
  pr::Rng rng(5);
  pr::RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(static_cast<double>(b.sample(rng)));
  EXPECT_NEAR(s.mean(), b.mean(), 0.05);
  EXPECT_NEAR(s.variance(), b.variance(), 0.15);
}

TEST(Poisson, PmfAndCdf) {
  pr::Poisson p(2.5);
  // P(X=0) = exp(-2.5)
  EXPECT_NEAR(p.pmf(0), std::exp(-2.5), tol::kTiny);
  double acc = 0.0;
  for (std::size_t k = 0; k <= 15; ++k) {
    acc += p.pmf(k);
    EXPECT_NEAR(p.cdf(k), acc, tol::kProbSum) << k;
  }
  EXPECT_THROW(pr::Poisson(0.0), std::invalid_argument);
}

TEST(Poisson, SamplingMean) {
  pr::Poisson p(4.0);
  pr::Rng rng(6);
  pr::RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(static_cast<double>(p.sample(rng)));
  EXPECT_NEAR(s.mean(), 4.0, 0.08);
  EXPECT_NEAR(s.variance(), 4.0, 0.25);
}

TEST(CategoricalCounter, MleAndSmoothing) {
  pr::CategoricalCounter c(3);
  EXPECT_THROW((void)c.mle(), std::logic_error);
  c.observe(0, 6);
  c.observe(1, 4);
  const auto mle = c.mle();
  EXPECT_NEAR(mle.p(0), 0.6, tol::kTiny);
  EXPECT_NEAR(mle.p(1), 0.4, tol::kTiny);
  EXPECT_DOUBLE_EQ(mle.p(2), 0.0);
  // Laplace smoothing pulls unseen categories above zero.
  const auto sm = c.smoothed(1.0);
  EXPECT_GT(sm.p(2), 0.0);
  EXPECT_NEAR(sm.p(0), 7.0 / 13.0, tol::kTiny);
}

TEST(CategoricalCounter, UnseenAndMissingMass) {
  pr::CategoricalCounter c(4);
  EXPECT_EQ(c.unseen_categories(), 4u);
  EXPECT_DOUBLE_EQ(c.good_turing_missing_mass(), 1.0);
  c.observe(0, 10);
  c.observe(1, 1);  // singleton
  c.observe(2, 1);  // singleton
  EXPECT_EQ(c.unseen_categories(), 1u);
  // Good-Turing: 2 singletons / 12 observations
  EXPECT_NEAR(c.good_turing_missing_mass(), 2.0 / 12.0, tol::kTiny);
}

TEST(CategoricalCounter, MissingMassDecaysWithSaturation) {
  // Once every category is seen many times, the missing-mass forecast
  // (ontological uncertainty from data) goes to zero.
  pr::CategoricalCounter c(3);
  for (std::size_t i = 0; i < 3; ++i) c.observe(i, 100);
  EXPECT_DOUBLE_EQ(c.good_turing_missing_mass(), 0.0);
  EXPECT_EQ(c.unseen_categories(), 0u);
}
