// Tests for the Kalman tracker and the reliability distributions
// (Weibull, LogNormal).
#include <gtest/gtest.h>

#include <cmath>

#include "orbit/kalman.hpp"
#include "orbit/two_planet.hpp"
#include "prob/distribution.hpp"
#include "prob/statistics.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace ob = sysuq::orbit;
namespace pr = sysuq::prob;

TEST(Kalman, Validation) {
  EXPECT_THROW(ob::KalmanFilter2D(0.0, 0.1, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ob::KalmanFilter2D(0.1, 0.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ob::KalmanFilter2D(0.1, 0.1, 0.0, 1.0), std::invalid_argument);
  ob::KalmanFilter2D kf(0.1, 0.1, 1.0, 1.0);
  EXPECT_THROW(kf.predict(0.0), std::invalid_argument);
}

TEST(Kalman, ConvergesOnStraightTrack) {
  // True motion: constant velocity (1, 0.5); noisy position measurements.
  ob::KalmanFilter2D kf(1e-4, 0.05, 1.0, 1.0);
  kf.initialize({0.0, 0.0}, {0.0, 0.0});
  pr::Rng rng(321);
  ob::Vec2 truth{0.0, 0.0};
  const ob::Vec2 vel{1.0, 0.5};
  const double dt = 0.1;
  for (int i = 0; i < 400; ++i) {
    truth += vel * dt;
    kf.predict(dt);
    (void)kf.update({truth.x + rng.gaussian(0, 0.05),
                     truth.y + rng.gaussian(0, 0.05)});
  }
  EXPECT_NEAR(kf.position().distance(truth), 0.0, 0.05);
  EXPECT_NEAR(kf.velocity().x, 1.0, 0.1);
  EXPECT_NEAR(kf.velocity().y, 0.5, 0.1);
}

TEST(Kalman, CovarianceShrinksThenSteadies) {
  // Epistemic state uncertainty collapses from the prior and reaches a
  // steady state balancing process noise against measurements.
  ob::KalmanFilter2D kf(1e-4, 0.05, 1.0, 1.0);
  kf.initialize({0, 0}, {0, 0});
  pr::Rng rng(322);
  double after10 = 0.0, after200 = 0.0, after400 = 0.0;
  for (int i = 1; i <= 400; ++i) {
    kf.predict(0.1);
    (void)kf.update({rng.gaussian(0, 0.05), rng.gaussian(0, 0.05)});
    if (i == 10) after10 = kf.position_variance();
    if (i == 200) after200 = kf.position_variance();
    if (i == 400) after400 = kf.position_variance();
  }
  EXPECT_LT(after10, 2.0);
  EXPECT_LT(after200, after10);
  EXPECT_NEAR(after400, after200, after200 * 0.25);  // steady state
}

TEST(Kalman, NisCalibratedUnderTheModel) {
  // Under a matched model, NIS is chi-square(2): mean 2, and ~5% of
  // values above 5.99.
  ob::KalmanFilter2D kf(1e-3, 0.05, 0.1, 0.1);
  kf.initialize({0, 0}, {1.0, 0.0});
  pr::Rng rng(323);
  ob::Vec2 truth{0, 0};
  pr::RunningStats nis;
  int above = 0, count = 0;
  for (int i = 0; i < 3000; ++i) {
    truth += ob::Vec2{1.0, 0.0} * 0.1;
    kf.predict(0.1);
    const double v = kf.update(
        {truth.x + rng.gaussian(0, 0.05), truth.y + rng.gaussian(0, 0.05)});
    if (i > 100) {  // after transient
      nis.add(v);
      above += v > 5.991 ? 1 : 0;
      ++count;
    }
  }
  EXPECT_NEAR(nis.mean(), 2.0, 0.2);
  EXPECT_NEAR(static_cast<double>(above) / count, 0.05, 0.02);
}

TEST(Kalman, ManoeuvreRaisesNis) {
  // A sudden unmodeled velocity change (the filter-level analogue of the
  // third planet) spikes the NIS far above the chi-square band.
  ob::KalmanFilter2D kf(1e-4, 0.02, 0.1, 0.1);
  kf.initialize({0, 0}, {1.0, 0.0});
  pr::Rng rng(324);
  ob::Vec2 truth{0, 0};
  ob::Vec2 vel{1.0, 0.0};
  double max_nis_before = 0.0, max_nis_after = 0.0;
  for (int i = 0; i < 400; ++i) {
    if (i == 200) vel = {1.0, 2.0};  // manoeuvre
    truth += vel * 0.1;
    kf.predict(0.1);
    const double v = kf.update(
        {truth.x + rng.gaussian(0, 0.02), truth.y + rng.gaussian(0, 0.02)});
    if (i > 50 && i < 200) max_nis_before = std::max(max_nis_before, v);
    if (i >= 200 && i < 210) max_nis_after = std::max(max_nis_after, v);
  }
  EXPECT_GT(max_nis_after, 10.0 * max_nis_before);
}

TEST(Weibull, BasicsAndSpecialCases) {
  // k = 1 is the exponential distribution.
  pr::Weibull w1(1.0, 2.0);
  pr::Exponential e(0.5);
  for (double x : {0.1, 1.0, 3.0}) {
    EXPECT_NEAR(w1.cdf(x), e.cdf(x), tol::kTiny) << x;
    EXPECT_NEAR(w1.pdf(x), e.pdf(x), tol::kTiny) << x;
  }
  EXPECT_THROW(pr::Weibull(0.0, 1.0), std::invalid_argument);
  pr::Weibull w(2.0, 1.0);
  // mean = Gamma(1.5) = sqrt(pi)/2.
  EXPECT_NEAR(w.mean(), std::sqrt(M_PI) / 2.0, tol::kIteration);
  EXPECT_NEAR(w.cdf(w.quantile(0.3)), 0.3, tol::kIteration);
}

TEST(Weibull, HazardShape) {
  // k < 1: decreasing hazard; k > 1: increasing hazard; k = 1: flat.
  pr::Weibull infant(0.5, 1.0), flat(1.0, 1.0), wear(2.5, 1.0);
  EXPECT_GT(infant.hazard(0.1), infant.hazard(1.0));
  EXPECT_NEAR(flat.hazard(0.1), flat.hazard(5.0), tol::kTiny);
  EXPECT_LT(wear.hazard(0.1), wear.hazard(1.0));
  EXPECT_THROW((void)flat.hazard(0.0), std::invalid_argument);
}

TEST(Weibull, SamplingMoments) {
  pr::Weibull w(1.7, 2.3);
  pr::Rng rng(911);
  pr::RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(w.sample(rng));
  EXPECT_NEAR(s.mean(), w.mean(), 0.03);
  EXPECT_NEAR(s.variance(), w.variance(), 0.08);
}

TEST(LogNormal, BasicsAndMoments) {
  pr::LogNormal ln(0.5, 0.8);
  EXPECT_NEAR(ln.median(), std::exp(0.5), tol::kTiny);
  EXPECT_NEAR(ln.mean(), std::exp(0.5 + 0.32), tol::kIteration);
  EXPECT_DOUBLE_EQ(ln.pdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(ln.cdf(0.0), 0.0);
  EXPECT_NEAR(ln.cdf(ln.median()), 0.5, tol::kTiny);
  EXPECT_NEAR(ln.cdf(ln.quantile(0.9)), 0.9, tol::kIteration);
  EXPECT_THROW(pr::LogNormal(0.0, 0.0), std::invalid_argument);
}

TEST(LogNormal, ErrorFactorSemantics) {
  // EF = q95 / median by definition; EF = 10 corresponds to
  // sigma = ln(10)/1.645.
  pr::LogNormal ln(-9.0, std::log(10.0) / 1.6448536269514722);
  EXPECT_NEAR(ln.error_factor(), 10.0, 1e-6);
  EXPECT_NEAR(ln.quantile(0.95) / ln.median(), ln.error_factor(), tol::kProbSum);
}

TEST(LogNormal, SamplingMoments) {
  pr::LogNormal ln(0.0, 0.5);
  pr::Rng rng(912);
  pr::RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(ln.sample(rng));
  EXPECT_NEAR(s.mean(), ln.mean(), 0.02);
  EXPECT_NEAR(s.variance(), ln.variance(), 0.05);
}
