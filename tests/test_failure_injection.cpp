// Failure injection: feed NaN, infinities, and degenerate structures into
// every public entry point that accepts raw numbers, asserting the
// library fails loudly instead of silently absorbing poison. (NaN is the
// classic silent killer: all ordered comparisons against it are false, so
// naive range checks pass.)
#include <gtest/gtest.h>

#include <limits>

#include "bayesnet/network.hpp"
#include "evidence/mass.hpp"
#include "evidence/subjective.hpp"
#include "fta/fault_tree.hpp"
#include "markov/dtmc.hpp"
#include "markov/mdp.hpp"
#include "prob/discrete.hpp"
#include "prob/interval.hpp"
#include "prob/rng.hpp"

namespace pr = sysuq::prob;

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

TEST(FailureInjection, CategoricalRejectsNaNAndInf) {
  EXPECT_THROW((void)pr::Categorical({kNaN, 0.5}), std::invalid_argument);
  EXPECT_THROW((void)pr::Categorical({kInf, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)pr::Categorical({-kInf, 1.0}), std::invalid_argument);
  EXPECT_THROW((void)pr::Categorical::normalized({kNaN, 1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)pr::Categorical::normalized({kInf, 1.0}),
               std::invalid_argument);
}

TEST(FailureInjection, BernoulliBinomialRejectNaN) {
  EXPECT_THROW((void)pr::Bernoulli(kNaN), std::invalid_argument);
  EXPECT_THROW((void)pr::Binomial(10, kNaN), std::invalid_argument);
  pr::Rng rng(1);
  EXPECT_THROW((void)rng.bernoulli(kNaN), std::invalid_argument);
  EXPECT_THROW((void)rng.categorical({kNaN, 1.0}), std::invalid_argument);
}

TEST(FailureInjection, ProbIntervalRejectsNaN) {
  EXPECT_THROW((void)pr::ProbInterval(kNaN, 0.5), std::invalid_argument);
  EXPECT_THROW((void)pr::ProbInterval(0.1, kNaN), std::invalid_argument);
  EXPECT_THROW((void)pr::ProbInterval(kNaN), std::invalid_argument);
}

TEST(FailureInjection, FactorRejectsNaN) {
  EXPECT_THROW((void)sysuq::bayesnet::Factor({0}, {2}, {kNaN, 0.5}),
               std::invalid_argument);
  EXPECT_THROW((void)sysuq::bayesnet::Factor({0}, {2}, {kInf, 0.5}),
               std::invalid_argument);
}

TEST(FailureInjection, FaultTreeRejectsNaNProbabilities) {
  sysuq::fta::FaultTree t;
  EXPECT_THROW((void)t.add_basic_event("a", kNaN), std::invalid_argument);
  EXPECT_THROW((void)t.add_basic_event("a", kInf), std::invalid_argument);
  const auto a = t.add_basic_event("a", 0.5);
  EXPECT_THROW(t.set_probability(a, kNaN), std::invalid_argument);
}

TEST(FailureInjection, DtmcRejectsNaNTransitions) {
  sysuq::markov::Dtmc c;
  const auto s = c.add_state("s");
  EXPECT_THROW(c.set_transition(s, s, kNaN), std::invalid_argument);
  EXPECT_THROW(c.set_transition(s, s, kInf), std::invalid_argument);
}

TEST(FailureInjection, MdpRejectsNaNOutcomes) {
  sysuq::markov::Mdp m;
  const auto s = m.add_state("s");
  EXPECT_THROW((void)m.add_action(s, "a", {{s, kNaN}}), std::invalid_argument);
}

TEST(FailureInjection, MassFunctionRejectsNaN) {
  sysuq::evidence::Frame f({"a", "b"});
  EXPECT_THROW((void)sysuq::evidence::MassFunction(f, {{0b01, kNaN}, {0b10, 0.5}}),
               std::invalid_argument);
}

TEST(FailureInjection, OpinionRejectsNaN) {
  EXPECT_THROW((void)sysuq::evidence::Opinion(kNaN, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)sysuq::evidence::Opinion(0.5, kNaN, 0.5), std::invalid_argument);
  EXPECT_THROW((void)sysuq::evidence::Opinion::from_evidence(kNaN, 1.0),
               std::invalid_argument);
}

TEST(FailureInjection, RngDistributionGuards) {
  pr::Rng rng(2);
  EXPECT_THROW((void)rng.gaussian(0.0, -1.0), std::invalid_argument);
  EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW((void)rng.gamma(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)rng.uniform(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)rng.uniform_index(0), std::invalid_argument);
}

TEST(FailureInjection, NetworkRejectsPoisonedCpt) {
  // The Categorical layer guards the CPT path: a NaN row can never reach
  // a validated network.
  sysuq::bayesnet::BayesianNetwork net;
  (void)net.add_variable("x", {"0", "1"});
  EXPECT_THROW(net.set_cpt(0, {}, {pr::Categorical({kNaN, 0.5})}),
               std::invalid_argument);
}
