// sysuq::obs — registry, instruments, exporters, and tracing.
//
// The same file carries two suites: the real one (default build) and a
// SYSUQ_OBS_OFF suite proving the no-op mode compiles against the same
// call sites and registers nothing. Golden-output tests use local
// Registry / TraceSink instances so they stay independent of whatever
// the instrumented library code has put on the global registry.
#include "obs/registry.hpp"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bayesnet/engine.hpp"
#include "bayesnet/network.hpp"
#include "core/contracts.hpp"
#include "obs/context.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "prob/discrete.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace obs = sysuq::obs;
namespace bn = sysuq::bayesnet;
namespace pr = sysuq::prob;

namespace {

// Two-node chain a -> b, enough to drive the instrumented engine.
bn::BayesianNetwork tiny_network() {
  bn::BayesianNetwork net;
  const auto a = net.add_variable("a", {"a0", "a1"});
  const auto b = net.add_variable("b", {"b0", "b1"});
  net.set_cpt(a, {}, {pr::Categorical({0.6, 0.4})});
  net.set_cpt(b, {a},
              {pr::Categorical({0.9, 0.1}), pr::Categorical({0.2, 0.8})});
  return net;
}

}  // namespace

TEST(ObsNaming, ValidMetricNames) {
  EXPECT_TRUE(obs::valid_metric_name("bayesnet.engine.query_seconds"));
  EXPECT_TRUE(obs::valid_metric_name("a.b"));
  EXPECT_TRUE(obs::valid_metric_name("markov.dtmc.reachability_iterations"));
  EXPECT_TRUE(obs::valid_metric_name("prob.rng2.splits"));

  EXPECT_FALSE(obs::valid_metric_name(""));
  EXPECT_FALSE(obs::valid_metric_name("nodots"));
  EXPECT_FALSE(obs::valid_metric_name("Upper.case"));
  EXPECT_FALSE(obs::valid_metric_name("trailing.dot."));
  EXPECT_FALSE(obs::valid_metric_name(".leading.dot"));
  EXPECT_FALSE(obs::valid_metric_name("double..dot"));
  EXPECT_FALSE(obs::valid_metric_name("1starts.with_digit"));
  EXPECT_FALSE(obs::valid_metric_name("has.dash-es"));
  EXPECT_FALSE(obs::valid_metric_name("has.spa ce"));
}

#if !defined(SYSUQ_OBS_OFF)

TEST(ObsRegistry, SameNameReturnsSameInstrument) {
  obs::Registry reg;
  obs::Counter& c1 = reg.counter("test.registry.hits");
  obs::Counter& c2 = reg.counter("test.registry.hits");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(reg.size(), 1u);
  c1.inc(3);
  EXPECT_EQ(c2.value(), 3u);
}

TEST(ObsRegistry, RejectsInvalidNames) {
  obs::Registry reg;
  EXPECT_THROW((void)reg.counter("NoDots"),
               sysuq::contracts::ContractViolation);
  EXPECT_THROW((void)reg.gauge("Bad.Name"),
               sysuq::contracts::ContractViolation);
  EXPECT_THROW((void)reg.histogram("also_bad", {1.0}),
               sysuq::contracts::ContractViolation);
  EXPECT_EQ(reg.size(), 0u);
}

TEST(ObsRegistry, KindMismatchIsAContractViolation) {
  obs::Registry reg;
  (void)reg.counter("test.registry.mixed");
  EXPECT_THROW((void)reg.gauge("test.registry.mixed"),
               sysuq::contracts::ContractViolation);
  EXPECT_THROW((void)reg.histogram("test.registry.mixed", {1.0}),
               sysuq::contracts::ContractViolation);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ObsRegistry, HistogramReRegistrationMustRepeatBounds) {
  obs::Registry reg;
  (void)reg.histogram("test.registry.h", {1.0, 2.0});
  EXPECT_NO_THROW((void)reg.histogram("test.registry.h", {1.0, 2.0}));
  EXPECT_THROW((void)reg.histogram("test.registry.h", {1.0, 3.0}),
               sysuq::contracts::ContractViolation);
}

TEST(ObsHistogram, RejectsBadBounds) {
  EXPECT_THROW(obs::Histogram({}), sysuq::contracts::ContractViolation);
  EXPECT_THROW(obs::Histogram({1.0, 1.0}),
               sysuq::contracts::ContractViolation);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}),
               sysuq::contracts::ContractViolation);
}

TEST(ObsHistogram, BucketEdgesFollowLeSemantics) {
  obs::Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);  // <= 1         -> bucket 0
  h.observe(1.0);  // == bound     -> bucket 0 (le semantics: inclusive)
  h.observe(1.5);  //              -> bucket 1
  h.observe(4.0);  // == last bound-> bucket 2
  h.observe(9.0);  // above all    -> +Inf bucket
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + +Inf
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
}

TEST(ObsCounter, ConcurrentIncrementsAreLossFree) {
  obs::Counter c;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::size_t i = 0; i < kIncrements; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kIncrements);
}

TEST(ObsHistogram, ConcurrentObservationsAreLossFree) {
  obs::Histogram h({1.0, 10.0});
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kObservations = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::size_t i = 0; i < kObservations; ++i)
        h.observe(static_cast<double>(t));  // 0, 1 -> bucket 0; 2, 3 -> 1
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kObservations);
  const auto counts = h.counts();
  EXPECT_EQ(counts[0], 2 * kObservations);
  EXPECT_EQ(counts[1], 2 * kObservations);
  EXPECT_EQ(counts[2], 0u);
}

TEST(ObsGauge, SetAddReset) {
  obs::Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsRuntime, KillSwitchSuspendsRecording) {
  ASSERT_TRUE(obs::metrics_enabled());  // library default
  obs::Counter c;
  obs::Histogram h({1.0});
  obs::set_metrics_enabled(false);
  c.inc();
  h.observe(0.5);
  {
    const obs::HistogramTimer timer(h);  // disabled at construction
  }
  obs::set_metrics_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

TEST(ObsRuntime, HistogramTimerObservesElapsedSeconds) {
  obs::Histogram h(obs::seconds_buckets());
  {
    const obs::HistogramTimer timer(h);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
  EXPECT_LT(h.sum(), 1.0);  // a scope exit takes well under a second
}

TEST(ObsTrace, SpanNestingRecordsDepthsInnerFirst) {
  obs::TraceSink sink(16);
  sink.set_enabled(true);
  {
    const obs::Span outer("test.outer", sink);
    {
      const obs::Span inner("test.inner", sink);
    }
  }
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Spans record at destruction: the inner span closes first.
  EXPECT_EQ(events[0].name, "test.inner");
  EXPECT_EQ(events[0].depth, 2u);
  EXPECT_EQ(events[1].name, "test.outer");
  EXPECT_EQ(events[1].depth, 1u);
  // The outer span covers the inner one.
  EXPECT_LE(events[1].start_us, events[0].start_us);
  EXPECT_GE(events[1].start_us + events[1].dur_us,
            events[0].start_us + events[0].dur_us);
}

TEST(ObsTrace, DisabledSinkRecordsNothingAndIsCheap) {
  obs::TraceSink sink(16);
  ASSERT_FALSE(sink.enabled());
  {
    const obs::Span span("test.ignored", sink);
  }
  sink.record("test.direct", 0, 1, 1);
  EXPECT_EQ(sink.recorded(), 0u);
  EXPECT_TRUE(sink.snapshot().empty());
}

TEST(ObsTrace, RingBufferDropsOldestEvents) {
  obs::TraceSink sink(4);
  sink.set_enabled(true);
  for (std::uint64_t i = 0; i < 6; ++i)
    sink.record("test.event", i * 10, 5, 1, /*tid=*/7);
  EXPECT_EQ(sink.recorded(), 6u);
  EXPECT_EQ(sink.dropped(), 2u);
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest surviving first: seq 2..5.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 2);
    EXPECT_EQ(events[i].start_us, (i + 2) * 10);
  }
  sink.clear();
  EXPECT_EQ(sink.recorded(), 0u);
  EXPECT_TRUE(sink.snapshot().empty());
}

TEST(ObsExport, PrometheusGolden) {
  obs::Registry reg;
  reg.counter("test.prom.hits").inc(7);
  reg.gauge("test.prom.level").set(2.5);
  obs::Histogram& h = reg.histogram("test.prom.latency", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);
  EXPECT_EQ(reg.to_prometheus(),
            "# TYPE test_prom_hits counter\n"
            "test_prom_hits 7\n"
            "# TYPE test_prom_latency histogram\n"
            "test_prom_latency_bucket{le=\"1\"} 1\n"
            "test_prom_latency_bucket{le=\"2\"} 2\n"
            "test_prom_latency_bucket{le=\"+Inf\"} 3\n"
            "test_prom_latency_sum 11\n"
            "test_prom_latency_count 3\n"
            "# TYPE test_prom_level gauge\n"
            "test_prom_level 2.5\n");
}

TEST(ObsExport, JsonGolden) {
  obs::Registry reg;
  reg.counter("test.json.hits").inc(7);
  reg.gauge("test.json.level").set(2.5);
  obs::Histogram& h = reg.histogram("test.json.latency", {1.0, 2.0});
  h.observe(0.5);
  h.observe(9.0);
  EXPECT_EQ(reg.to_json(),
            "{\"counters\":{\"test.json.hits\":7},"
            "\"gauges\":{\"test.json.level\":2.5},"
            "\"histograms\":{\"test.json.latency\":{\"bounds\":[1,2],"
            "\"counts\":[1,0,1],\"count\":2,\"sum\":9.5}}}");
}

TEST(ObsExport, ChromeTraceGolden) {
  obs::TraceSink sink(8);
  sink.set_enabled(true);
  sink.record("alpha", 10, 5, 1, /*tid=*/1);
  sink.record("beta \"quoted\"", 12, 2, 2, /*tid=*/1);
  // Replayed events carry no trace/span ids, so both slices land in the
  // pid-1 "untraced" group.
  EXPECT_EQ(sink.to_chrome_json(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
            "\"args\":{\"name\":\"untraced\"}},"
            "{\"name\":\"alpha\",\"cat\":\"sysuq\",\"ph\":\"X\",\"pid\":1,"
            "\"tid\":1,\"ts\":10,\"dur\":5,\"args\":{\"depth\":1,"
            "\"trace\":0,\"span\":0,\"parent\":0}},"
            "{\"name\":\"beta \\\"quoted\\\"\",\"cat\":\"sysuq\",\"ph\":\"X\","
            "\"pid\":1,\"tid\":1,\"ts\":12,\"dur\":2,\"args\":{\"depth\":2,"
            "\"trace\":0,\"span\":0,\"parent\":0}}"
            "]}");
}

TEST(ObsExport, ChromeTraceGroupsTracesAndEmitsFlowArrows) {
  obs::TraceSink sink(8);
  sink.set_enabled(true);
  obs::TraceEvent root;
  root.name = "root";
  root.start_us = 10;
  root.dur_us = 20;
  root.depth = 1;
  root.tid = 1;
  root.trace_id = 7;
  root.span_id = 100;
  obs::TraceEvent task;
  task.name = "task";
  task.start_us = 12;
  task.dur_us = 5;
  task.depth = 1;
  task.tid = 2;  // crossed a thread: the exporter draws a flow arrow
  task.trace_id = 7;
  task.span_id = 101;
  task.parent_span = 100;
  sink.record(root);
  sink.record(task);
  EXPECT_EQ(sink.to_chrome_json(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
            "\"args\":{\"name\":\"trace 7\"}},"
            "{\"name\":\"root\",\"cat\":\"sysuq\",\"ph\":\"X\",\"pid\":2,"
            "\"tid\":1,\"ts\":10,\"dur\":20,\"args\":{\"depth\":1,"
            "\"trace\":7,\"span\":100,\"parent\":0}},"
            "{\"name\":\"task\",\"cat\":\"sysuq\",\"ph\":\"X\",\"pid\":2,"
            "\"tid\":2,\"ts\":12,\"dur\":5,\"args\":{\"depth\":1,"
            "\"trace\":7,\"span\":101,\"parent\":100}},"
            "{\"name\":\"handoff\",\"cat\":\"sysuq\",\"ph\":\"s\",\"id\":101,"
            "\"pid\":2,\"tid\":1,\"ts\":10},"
            "{\"name\":\"handoff\",\"cat\":\"sysuq\",\"ph\":\"f\",\"bp\":\"e\","
            "\"id\":101,\"pid\":2,\"tid\":2,\"ts\":12}"
            "]}");
}

TEST(ObsContext, SpanAdoptsInstallsAndRestoresContext) {
  obs::TraceSink sink(8);
  sink.set_enabled(true);
  EXPECT_FALSE(obs::current_context().active());
  {
    const obs::Span outer("test.ctx.outer", sink);
    const obs::TraceContext outer_ctx = obs::current_context();
    EXPECT_TRUE(outer_ctx.active());
    {
      const obs::Span inner("test.ctx.inner", sink);
      const obs::TraceContext inner_ctx = obs::current_context();
      EXPECT_EQ(inner_ctx.trace_id, outer_ctx.trace_id);  // same trace
      EXPECT_NE(inner_ctx.parent_span, outer_ctx.parent_span);
    }
    // The inner span restored the outer context on destruction.
    EXPECT_EQ(obs::current_context().parent_span, outer_ctx.parent_span);
  }
  EXPECT_FALSE(obs::current_context().active());
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "test.ctx.inner");
  EXPECT_EQ(events[0].trace_id, events[1].trace_id);
  EXPECT_EQ(events[0].parent_span, events[1].span_id);
  EXPECT_EQ(events[1].name, "test.ctx.outer");
  EXPECT_EQ(events[1].parent_span, 0u);  // trace root
}

TEST(ObsContext, TopLevelSpansRootDistinctTraces) {
  obs::TraceSink sink(8);
  sink.set_enabled(true);
  {
    const obs::Span first("test.ctx.first", sink);
  }
  {
    const obs::Span second("test.ctx.second", sink);
  }
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].trace_id, 0u);
  EXPECT_NE(events[1].trace_id, 0u);
  EXPECT_NE(events[0].trace_id, events[1].trace_id);
  EXPECT_NE(events[0].span_id, events[1].span_id);
}

TEST(ObsContext, ContextScopeCarriesTraceAcrossThreads) {
  obs::TraceSink sink(8);
  sink.set_enabled(true);
  {
    const obs::Span root("test.ctx.root", sink);
    const obs::TraceContext ctx = obs::current_context();
    ASSERT_TRUE(ctx.active());
    std::thread worker([&sink, ctx] {
      const obs::ContextScope scope(ctx);  // the pool-task handoff
      const obs::Span child("test.ctx.child", sink);
    });
    worker.join();
  }
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "test.ctx.child");
  EXPECT_EQ(events[1].name, "test.ctx.root");
  EXPECT_EQ(events[0].trace_id, events[1].trace_id);
  EXPECT_EQ(events[0].parent_span, events[1].span_id);
}

TEST(ObsSlo, QuantileInterpolatesWithinBuckets) {
  obs::HistogramSnapshot h;
  h.bounds = {0.1, 0.5, 1.0};
  h.counts = {10, 80, 10, 0};
  h.count = 100;
  h.sum = 40.0;
  EXPECT_DOUBLE_EQ(obs::quantile(h, 0.50), 0.3);
  EXPECT_DOUBLE_EQ(obs::quantile(h, 0.95), 0.75);
  EXPECT_DOUBLE_EQ(obs::quantile(h, 0.99), 0.95);
  EXPECT_DOUBLE_EQ(obs::quantile(h, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(obs::quantile(h, 1.0), 1.0);
}

TEST(ObsSlo, QuantileEdgeCases) {
  const obs::HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(obs::quantile(empty, 0.5), 0.0);
  EXPECT_THROW((void)obs::quantile(empty, 1.5),
               sysuq::contracts::ContractViolation);
  // Every observation above the ladder: the rank lands in +Inf and the
  // estimate clamps to the largest finite bound.
  obs::HistogramSnapshot inf;
  inf.bounds = {1.0, 2.0};
  inf.counts = {0, 0, 5};
  inf.count = 5;
  inf.sum = 50.0;
  EXPECT_DOUBLE_EQ(obs::quantile(inf, 0.99), 2.0);
  // The live-histogram overload snapshots and agrees.
  obs::Histogram h({1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  EXPECT_DOUBLE_EQ(obs::quantile(h, 0.5), 1.0);
}

TEST(ObsSlo, RegistrySnapshotCopiesEveryInstrument) {
  obs::Registry reg;
  reg.counter("test.slo.hits").inc(5);
  reg.gauge("test.slo.level").set(1.5);
  obs::Histogram& h = reg.histogram("test.slo.latency", {1.0, 2.0});
  h.observe(0.5);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("test.slo.hits"), 5u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.slo.level"), 1.5);
  const auto& hs = snap.histograms.at("test.slo.latency");
  EXPECT_EQ(hs.bounds, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(hs.counts, (std::vector<std::uint64_t>{1, 0, 0}));
  EXPECT_EQ(hs.count, 1u);
  EXPECT_DOUBLE_EQ(hs.sum, 0.5);
}

TEST(ObsSlo, SnapshotDeltaWindowsInstruments) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("test.slo.hits");
  obs::Gauge& g = reg.gauge("test.slo.level");
  obs::Histogram& h = reg.histogram("test.slo.latency", {1.0, 2.0});
  c.inc(5);
  g.set(1.0);
  h.observe(0.5);
  const auto before = reg.snapshot();
  c.inc(3);
  g.set(7.5);
  h.observe(1.5);
  h.observe(9.0);
  const auto window = obs::snapshot_delta(before, reg.snapshot());
  EXPECT_EQ(window.counters.at("test.slo.hits"), 3u);
  EXPECT_DOUBLE_EQ(window.gauges.at("test.slo.level"), 7.5);  // last value
  const auto& wh = window.histograms.at("test.slo.latency");
  EXPECT_EQ(wh.counts, (std::vector<std::uint64_t>{0, 1, 1}));
  EXPECT_EQ(wh.count, 2u);
  EXPECT_DOUBLE_EQ(wh.sum, 10.5);
  // A reset mid-window clamps to zero instead of underflowing.
  reg.reset();
  const auto clamped = obs::snapshot_delta(window, reg.snapshot());
  EXPECT_EQ(clamped.counters.at("test.slo.hits"), 0u);
  EXPECT_EQ(clamped.histograms.at("test.slo.latency").count, 0u);
}

TEST(ObsSlo, SloReportGolden) {
  obs::Registry reg;
  reg.counter("test.slo.ignored").inc(9);  // only histograms are reported
  obs::Histogram& h = reg.histogram("test.slo.latency", {1.0, 2.0});
  h.observe(0.5);
  h.observe(9.0);
  EXPECT_EQ(obs::slo_report(reg.snapshot()),
            "{\"test.slo.latency\":{\"count\":2,\"sum\":9.5,"
            "\"p50\":1,\"p95\":2,\"p99\":2}}");
  EXPECT_EQ(obs::slo_report(obs::RegistrySnapshot{}), "{}");
}

TEST(ObsExport, RegistryResetZeroesButKeepsRegistrations) {
  obs::Registry reg;
  reg.counter("test.reset.hits").inc(5);
  reg.gauge("test.reset.level").set(1.0);
  reg.histogram("test.reset.latency", {1.0}).observe(0.5);
  reg.reset();
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.counter("test.reset.hits").value(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("test.reset.level").value(), 0.0);
  EXPECT_EQ(reg.histogram("test.reset.latency", {1.0}).count(), 0u);
}

// End-to-end: the instrumented engine populates the global registry with
// the manifest's required instruments (acceptance criterion).
TEST(ObsIntegration, EngineQueriesPopulateGlobalRegistry) {
  auto& reg = obs::Registry::global();
  const auto net = tiny_network();
  bn::InferenceEngine engine(net, {.threads = 1});
  for (std::size_t i = 0; i < 16; ++i) (void)engine.query(1, {{0, i % 2}});

  obs::Counter& hits = reg.counter("bayesnet.engine.ordering_cache.hits");
  obs::Counter& queries = reg.counter("bayesnet.engine.queries");
  obs::Histogram& latency =
      reg.histogram("bayesnet.engine.query_seconds", obs::seconds_buckets());
  EXPECT_GE(queries.value(), 16u);
  EXPECT_GE(hits.value(), 15u);  // one signature: 1 miss, then hits
  // Latency is sampled 1-in-8, so 16 queries guarantee >= 2 observations
  // regardless of where the process-wide sample sequence stands.
  EXPECT_GE(latency.count(), 2u);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"bayesnet.engine.query_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"bayesnet.engine.ordering_cache.hits\""),
            std::string::npos);
}

// The tentpole acceptance test: a pooled query_batch forms ONE trace —
// every worker-side query span carries the batch span's trace id and
// parents directly to it, because the dispatch hands the TraceContext
// across the pool. Runs under the tsan preset with the rest of `obs`.
TEST(ObsIntegration, QueryBatchFormsOneTraceAcrossWorkers) {
  const auto net = tiny_network();
  const bn::InferenceEngine engine(net, {.threads = 4});
  auto& sink = obs::TraceSink::global();
  sink.clear();
  sink.set_enabled(true);
  std::vector<bn::QuerySpec> batch;
  for (std::size_t i = 0; i < 64; ++i)
    batch.push_back({i % 2, {{(i + 1) % 2, (i / 2) % 2}}});
  (void)engine.query_batch(batch);
  sink.set_enabled(false);
  const auto events = sink.snapshot();
  sink.clear();

  const obs::TraceEvent* root = nullptr;
  for (const auto& e : events)
    if (e.name == "bayesnet.engine.query_batch") root = &e;
  ASSERT_NE(root, nullptr);
  EXPECT_NE(root->trace_id, 0u);
  EXPECT_EQ(root->parent_span, 0u);  // the batch roots the trace

  std::size_t query_spans = 0;
  for (const auto& e : events) {
    if (e.name != "bayesnet.engine.query") continue;
    ++query_spans;
    EXPECT_EQ(e.trace_id, root->trace_id);
    EXPECT_EQ(e.parent_span, root->span_id);
  }
  EXPECT_EQ(query_spans, batch.size());
}

#else  // SYSUQ_OBS_OFF — the no-op layer must compile and record nothing.

TEST(ObsOffMode, RegistryIsInertAndEmpty) {
  auto& reg = obs::Registry::global();
  obs::Counter& c = reg.counter("test.off.hits");
  obs::Gauge& g = reg.gauge("test.off.level");
  obs::Histogram& h = reg.histogram("test.off.latency", {1.0, 2.0});
  c.inc(10);
  g.set(3.0);
  h.observe(0.5);
  {
    const obs::HistogramTimer timer(h);
  }
  EXPECT_FALSE(obs::metrics_enabled());
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(reg.to_prometheus(), "");
  EXPECT_EQ(reg.to_json(), "{}");
}

TEST(ObsOffMode, TracingIsInert) {
  auto& sink = obs::TraceSink::global();
  sink.set_enabled(true);  // ignored in no-op mode
  EXPECT_FALSE(sink.enabled());
  {
    const obs::Span span("test.off.span", sink);
  }
  sink.record("test.off.direct", 0, 1, 1);
  EXPECT_EQ(sink.recorded(), 0u);
  EXPECT_TRUE(sink.snapshot().empty());
  EXPECT_EQ(sink.to_chrome_json(), "{}");
}

TEST(ObsOffMode, InstrumentedEngineStillAnswersQueries) {
  const auto net = tiny_network();
  bn::InferenceEngine engine(net, {.threads = 1});
  const auto posterior = engine.query(1, {{0, 0}});
  EXPECT_NEAR(posterior.p(0), 0.9, tol::kTiny);
  // The whole instrumentation sweep registered nothing.
  EXPECT_EQ(obs::Registry::global().size(), 0u);
}

TEST(ObsOffMode, ContextIsInert) {
  EXPECT_FALSE(obs::current_context().active());
  EXPECT_EQ(obs::new_trace_id(), 0u);
  EXPECT_EQ(obs::new_span_id(), 0u);
  {
    const obs::ContextScope scope(obs::TraceContext{42, 7});
  }
  EXPECT_FALSE(obs::current_context().active());
}

TEST(ObsOffMode, SloLayerIsInert) {
  obs::HistogramSnapshot h;
  h.count = 100;  // ignored: the stub never reads it
  EXPECT_DOUBLE_EQ(obs::quantile(h, 0.99), 0.0);
  const obs::RegistrySnapshot snap = obs::Registry::global().snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_TRUE(obs::snapshot_delta(snap, snap).histograms.empty());
  EXPECT_EQ(obs::slo_report(snap), "{}");
  EXPECT_EQ(obs::slo_report(), "{}");
}

TEST(ObsOffMode, ExplainStillProfilesQueries) {
  // QueryProfile is plain bayesnet data: EXPLAIN keeps working with the
  // obs layer compiled out (measured figures simply read as zero-ish).
  const auto net = tiny_network();
  bn::InferenceEngine engine(net, {.threads = 1});
  auto profile = engine.explain(1, {{0, 0}});
  EXPECT_EQ(profile.backend, "variable_elimination");
  profile.zero_costs();
  EXPECT_NE(profile.to_json().find("\"posterior\""), std::string::npos);
  EXPECT_NE(profile.to_plan().find("EXPLAIN"), std::string::npos);
}

#endif  // SYSUQ_OBS_OFF
