// Bayesian feature classifier tests: conjugate posterior math, epistemic
// shrinkage, uncertainty decomposition on in/out-of-distribution inputs,
// and the OOD abstention channel (the tolerance mean's ML component).
#include "perception/bayes_classifier.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "prob/statistics.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace pc = sysuq::perception;
namespace pr = sysuq::prob;

namespace {

// A 3-class world in feature space, well separated, plus a novel cluster
// far from all of them.
const pc::ClassDistribution kCar{{0.0, 0.0}, 0.5};
const pc::ClassDistribution kPed{{4.0, 0.0}, 0.5};
const pc::ClassDistribution kCyc{{0.0, 4.0}, 0.5};
const pc::ClassDistribution kNovel{{8.0, 8.0}, 0.5};

pc::BayesClassifier trained(std::size_t per_class, pr::Rng& rng) {
  pc::BayesClassifier clf(3, 0.5, 10.0, pr::Categorical::uniform(3));
  const pc::ClassDistribution classes[] = {kCar, kPed, kCyc};
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < per_class; ++i)
      clf.train(c, pc::sample_feature(classes[c], rng));
  }
  return clf;
}

}  // namespace

TEST(BayesClassifier, ConstructionValidation) {
  EXPECT_THROW(pc::BayesClassifier(1, 0.5, 1.0, pr::Categorical::uniform(1)),
               std::invalid_argument);
  EXPECT_THROW(pc::BayesClassifier(3, 0.0, 1.0, pr::Categorical::uniform(3)),
               std::invalid_argument);
  EXPECT_THROW(pc::BayesClassifier(3, 0.5, 1.0, pr::Categorical::uniform(2)),
               std::invalid_argument);
  pc::BayesClassifier clf(3, 0.5, 1.0, pr::Categorical::uniform(3));
  EXPECT_THROW(clf.train(3, {0, 0}), std::out_of_range);
  EXPECT_THROW((void)clf.training_count(5), std::out_of_range);
}

TEST(BayesClassifier, PosteriorMeanConvergesToTruth) {
  pr::Rng rng(44);
  auto clf = trained(500, rng);
  const auto mu = clf.posterior_mean(1);
  EXPECT_NEAR(mu.x, 4.0, 0.1);
  EXPECT_NEAR(mu.y, 0.0, 0.1);
  EXPECT_EQ(clf.training_count(1), 500u);
}

TEST(BayesClassifier, PosteriorTauShrinksAsSqrtN) {
  pr::Rng rng(45);
  pc::BayesClassifier clf(3, 0.5, 10.0, pr::Categorical::uniform(3));
  double prev = clf.posterior_tau(0);
  EXPECT_NEAR(prev, 10.0, tol::kProbSum);  // prior
  std::size_t n = 0;
  for (const std::size_t target : {1u, 4u, 16u, 64u, 256u}) {
    while (n < target) {
      clf.train(0, pc::sample_feature(kCar, rng));
      ++n;
    }
    const double tau = clf.posterior_tau(0);
    EXPECT_LT(tau, prev);
    prev = tau;
    // tau ~ sigma / sqrt(n) once data dominates the prior.
    if (n >= 16) {
      EXPECT_NEAR(tau, 0.5 / std::sqrt(static_cast<double>(n)), 0.02);
    }
  }
}

TEST(BayesClassifier, ClassifiesSeparatedClasses) {
  pr::Rng rng(46);
  auto clf = trained(200, rng);
  int correct = 0;
  const int trials = 2000;
  const pc::ClassDistribution classes[] = {kCar, kPed, kCyc};
  for (int i = 0; i < trials; ++i) {
    const std::size_t c = rng.uniform_index(3);
    const auto f = pc::sample_feature(classes[c], rng);
    if (clf.posterior(f).argmax() == c) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / trials, 0.97);
}

TEST(BayesClassifier, EpistemicHighWhenUntrainedLowWhenTrained) {
  pr::Rng rng(47);
  pc::BayesClassifier fresh(3, 0.5, 10.0, pr::Categorical::uniform(3));
  // One example per class so posteriors exist but are wide.
  fresh.train(0, {0.0, 0.0});
  fresh.train(1, {4.0, 0.0});
  fresh.train(2, {0.0, 4.0});
  auto seasoned = trained(500, rng);
  const pc::Feature probe{2.0, 1.0};  // between classes
  pr::Rng r1(48), r2(48);
  const auto d_fresh = fresh.decompose(probe, 200, r1);
  const auto d_seasoned = seasoned.decompose(probe, 200, r2);
  EXPECT_GT(d_fresh.epistemic, d_seasoned.epistemic);
}

TEST(BayesClassifier, AmbiguousPointIsAleatoryNotEpistemic) {
  // A point exactly between two well-learned classes: members agree the
  // outcome is a coin flip -> aleatory dominates.
  pr::Rng rng(49);
  auto clf = trained(1000, rng);
  pr::Rng r(50);
  const auto d = clf.decompose({2.0, 0.0}, 200, r);  // midpoint car/ped
  EXPECT_GT(d.aleatory, 5.0 * d.epistemic);
  EXPECT_GT(d.total, 0.4);
}

TEST(BayesClassifier, OodScoreSeparatesNovelClass) {
  pr::Rng rng(51);
  auto clf = trained(300, rng);
  pr::RunningStats in_scores, out_scores;
  for (int i = 0; i < 500; ++i) {
    in_scores.add(clf.ood_score(pc::sample_feature(kCar, rng)));
    out_scores.add(clf.ood_score(pc::sample_feature(kNovel, rng)));
  }
  // In-distribution: chi-square_2-ish scale (mean ~2); novel: enormous.
  EXPECT_LT(in_scores.mean(), 5.0);
  EXPECT_GT(out_scores.mean(), 50.0);
}

TEST(BayesClassifier, ClassifyAbstainsOnNovelAndAmbiguous) {
  pr::Rng rng(52);
  auto clf = trained(300, rng);
  const double ood_threshold = 16.0;  // ~4 sigma
  const double min_conf = 0.6;
  // Novel objects are rejected as unknown.
  int abstain_novel = 0;
  for (int i = 0; i < 500; ++i) {
    if (clf.classify(pc::sample_feature(kNovel, rng), ood_threshold, min_conf) ==
        3)
      ++abstain_novel;
  }
  EXPECT_GT(abstain_novel, 490);
  // In-distribution objects are mostly labelled.
  int labelled = 0;
  for (int i = 0; i < 500; ++i) {
    if (clf.classify(pc::sample_feature(kPed, rng), ood_threshold, min_conf) == 1)
      ++labelled;
  }
  EXPECT_GT(labelled, 450);
  EXPECT_THROW((void)clf.classify({0, 0}, 0.0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)clf.classify({0, 0}, 1.0, 1.5), std::invalid_argument);
}

TEST(BayesClassifier, DecomposeValidation) {
  pr::Rng rng(53);
  auto clf = trained(10, rng);
  EXPECT_THROW((void)clf.decompose({0, 0}, 0, rng), std::invalid_argument);
}
