// Tests for the special-function layer: correctness against known values
// and identities that must hold across the whole domain.
#include "prob/special.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace sp = sysuq::prob;

TEST(LogGamma, KnownValues) {
  EXPECT_NEAR(sp::log_gamma(1.0), 0.0, tol::kTiny);
  EXPECT_NEAR(sp::log_gamma(2.0), 0.0, tol::kTiny);
  EXPECT_NEAR(sp::log_gamma(5.0), std::log(24.0), tol::kIteration);
  EXPECT_NEAR(sp::log_gamma(0.5), 0.5 * std::log(M_PI), tol::kIteration);
}

TEST(LogGamma, RejectsNonPositive) {
  EXPECT_THROW((void)sp::log_gamma(0.0), std::invalid_argument);
  EXPECT_THROW((void)sp::log_gamma(-1.5), std::invalid_argument);
}

TEST(LogBeta, SymmetryAndKnownValue) {
  EXPECT_NEAR(sp::log_beta(2.0, 3.0), sp::log_beta(3.0, 2.0), tol::kTiny);
  // B(2,3) = 1/12
  EXPECT_NEAR(sp::log_beta(2.0, 3.0), std::log(1.0 / 12.0), tol::kIteration);
  // B(1,1) = 1
  EXPECT_NEAR(sp::log_beta(1.0, 1.0), 0.0, tol::kTiny);
}

TEST(RegLowerGamma, BoundaryAndKnown) {
  EXPECT_DOUBLE_EQ(sp::reg_lower_gamma(2.5, 0.0), 0.0);
  // P(1, x) = 1 - exp(-x)
  for (double x : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(sp::reg_lower_gamma(1.0, x), 1.0 - std::exp(-x), tol::kTiny) << x;
  }
  // Complementarity
  EXPECT_NEAR(sp::reg_lower_gamma(3.0, 2.0) + sp::reg_upper_gamma(3.0, 2.0), 1.0,
              tol::kTiny);
}

TEST(RegLowerGamma, Monotone) {
  double prev = -1.0;
  for (double x = 0.0; x <= 20.0; x += 0.25) {
    const double v = sp::reg_lower_gamma(2.7, x);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    prev = v;
  }
}

TEST(RegIncBeta, KnownValues) {
  // I_x(1, 1) = x
  for (double x : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_NEAR(sp::reg_inc_beta(1.0, 1.0, x), x, tol::kTiny) << x;
  }
  // I_x(2, 1) = x^2
  EXPECT_NEAR(sp::reg_inc_beta(2.0, 1.0, 0.3), 0.09, tol::kIteration);
  // I_x(1, 2) = 1 - (1-x)^2 = 2x - x^2
  EXPECT_NEAR(sp::reg_inc_beta(1.0, 2.0, 0.3), 0.51, tol::kIteration);
  // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a)
  EXPECT_NEAR(sp::reg_inc_beta(3.2, 1.7, 0.4),
              1.0 - sp::reg_inc_beta(1.7, 3.2, 0.6), tol::kIteration);
}

TEST(RegIncBeta, MedianOfSymmetric) {
  // Beta(a, a) has median 0.5.
  for (double a : {0.5, 1.0, 2.0, 7.5}) {
    EXPECT_NEAR(sp::reg_inc_beta(a, a, 0.5), 0.5, tol::kIteration) << a;
  }
}

class InvBetaRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(InvBetaRoundTrip, QuantileThenCdfIsIdentity) {
  const auto [a, b, p] = GetParam();
  const double x = sp::inv_reg_inc_beta(a, b, p);
  EXPECT_NEAR(sp::reg_inc_beta(a, b, x), p, tol::kProbSum);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InvBetaRoundTrip,
    ::testing::Combine(::testing::Values(0.5, 1.0, 2.0, 5.0, 20.0),
                       ::testing::Values(0.5, 1.0, 3.0, 10.0),
                       ::testing::Values(0.01, 0.1, 0.5, 0.9, 0.99)));

TEST(StdNormal, CdfKnownValues) {
  EXPECT_NEAR(sp::std_normal_cdf(0.0), 0.5, tol::kRoot);
  EXPECT_NEAR(sp::std_normal_cdf(1.959963984540054), 0.975, tol::kProbSum);
  EXPECT_NEAR(sp::std_normal_cdf(-1.0), 0.15865525393145707, tol::kTiny);
}

class ProbitRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(ProbitRoundTrip, QuantileInvertsCdf) {
  const double p = GetParam();
  EXPECT_NEAR(sp::std_normal_cdf(sp::std_normal_quantile(p)), p, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProbitRoundTrip,
                         ::testing::Values(1e-8, 1e-4, 0.01, 0.1, 0.3, 0.5, 0.7,
                                           0.9, 0.99, 0.9999, 1.0 - 1e-8));

TEST(Probit, RejectsBoundary) {
  EXPECT_THROW((void)sp::std_normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)sp::std_normal_quantile(1.0), std::invalid_argument);
}

TEST(LogFactorial, MatchesDirectProduct) {
  double acc = 0.0;
  for (std::size_t n = 1; n <= 20; ++n) {
    acc += std::log(static_cast<double>(n));
    EXPECT_NEAR(sp::log_factorial(n), acc, tol::kProbSum) << n;
  }
  EXPECT_NEAR(sp::log_factorial(0), 0.0, tol::kRoot);
}

TEST(LogBinomialCoeff, PascalTriangle) {
  EXPECT_NEAR(std::exp(sp::log_binomial_coeff(5, 2)), 10.0, tol::kProbSum);
  EXPECT_NEAR(std::exp(sp::log_binomial_coeff(10, 5)), 252.0, 1e-7);
  EXPECT_THROW((void)sp::log_binomial_coeff(3, 4), std::invalid_argument);
}

TEST(LogAddExp, BasicsAndStability) {
  EXPECT_NEAR(sp::log_add_exp(std::log(2.0), std::log(3.0)), std::log(5.0),
              tol::kTiny);
  // Huge magnitudes must not overflow.
  EXPECT_NEAR(sp::log_add_exp(1000.0, 1000.0), 1000.0 + std::log(2.0), tol::kProbSum);
  const double ninf = -std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(sp::log_add_exp(ninf, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(sp::log_add_exp(3.0, ninf), 3.0);
}
