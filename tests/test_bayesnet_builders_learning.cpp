// Tests for compact CPT builders (noisy-OR, ranked nodes) and Bayesian
// CPT learning (the uncertainty-removal engine).
#include <gtest/gtest.h>

#include <cmath>

#include "bayesnet/builders.hpp"
#include "bayesnet/learning.hpp"
#include "bayesnet/network.hpp"
#include "perception/table1.hpp"
#include "core/tolerance.hpp"

namespace tol = sysuq::tolerance;

namespace bn = sysuq::bayesnet;
namespace pr = sysuq::prob;

TEST(NoisyOr, TwoParentKnownValues) {
  const auto rows = bn::noisy_or_cpt({0.8, 0.6});
  ASSERT_EQ(rows.size(), 4u);
  // Rows ordered with last parent fastest: (0,0), (0,1), (1,0), (1,1).
  EXPECT_NEAR(rows[0].p(1), 0.0, tol::kTiny);                    // neither active
  EXPECT_NEAR(rows[1].p(1), 0.6, tol::kTiny);                    // only parent 2
  EXPECT_NEAR(rows[2].p(1), 0.8, tol::kTiny);                    // only parent 1
  EXPECT_NEAR(rows[3].p(1), 1.0 - 0.2 * 0.4, tol::kTiny);        // both
}

TEST(NoisyOr, LeakFloorsActivation) {
  const auto rows = bn::noisy_or_cpt({0.5}, 0.1);
  EXPECT_NEAR(rows[0].p(1), 0.1, tol::kTiny);
  EXPECT_NEAR(rows[1].p(1), 1.0 - 0.9 * 0.5, tol::kTiny);
}

TEST(NoisyOr, Validation) {
  EXPECT_THROW((void)bn::noisy_or_cpt({}), std::invalid_argument);
  EXPECT_THROW((void)bn::noisy_or_cpt({1.2}), std::invalid_argument);
  EXPECT_THROW((void)bn::noisy_or_cpt({0.5}, -0.1), std::invalid_argument);
}

TEST(NoisyOr, ParameterCompression) {
  // 10 binary parents: full CPT needs 1024 rows; noisy-OR needs 11 numbers.
  const std::vector<double> links(10, 0.3);
  const auto rows = bn::noisy_or_cpt(links);
  EXPECT_EQ(rows.size(), 1024u);
  EXPECT_EQ(bn::full_cpt_parameter_count(std::vector<std::size_t>(10, 2), 2),
            1024u);
  // Monotone: more active parents, higher activation.
  EXPECT_LT(rows[0].p(1), rows[1].p(1));
  EXPECT_LT(rows[1].p(1), rows[3].p(1));
  EXPECT_LT(rows[3].p(1), rows[1023].p(1));
}

TEST(RankedNode, RowsAreValidAndMonotone) {
  const auto rows = bn::ranked_node_cpt({3, 3}, {1.0, 1.0}, 5, 0.15);
  ASSERT_EQ(rows.size(), 9u);
  // Low-rank parents push the child low; high-rank parents push it high.
  const auto& low = rows[0];   // parents (0,0)
  const auto& high = rows[8];  // parents (2,2)
  EXPECT_LT(low.argmax(), high.argmax());
  // Expected child rank increases along the parent diagonal.
  const auto mean_rank = [](const pr::Categorical& c) {
    double m = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i)
      m += static_cast<double>(i) * c.p(i);
    return m;
  };
  EXPECT_LT(mean_rank(rows[0]), mean_rank(rows[4]));
  EXPECT_LT(mean_rank(rows[4]), mean_rank(rows[8]));
}

TEST(RankedNode, WeightsBiasTowardHeavierParent) {
  // Parent 0 dominant: configuration (high, low) should sit higher than
  // (low, high).
  const auto rows = bn::ranked_node_cpt({2, 2}, {5.0, 1.0}, 5, 0.1);
  const auto mean_rank = [](const pr::Categorical& c) {
    double m = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i)
      m += static_cast<double>(i) * c.p(i);
    return m;
  };
  // Rows: (0,0)=0, (0,1)=1, (1,0)=2, (1,1)=3.
  EXPECT_GT(mean_rank(rows[2]), mean_rank(rows[1]));
}

TEST(RankedNode, SigmaControlsSharpness) {
  const auto sharp = bn::ranked_node_cpt({3}, {1.0}, 5, 0.05);
  const auto diffuse = bn::ranked_node_cpt({3}, {1.0}, 5, 0.5);
  EXPECT_LT(sharp[0].entropy(), diffuse[0].entropy());
}

TEST(RankedNode, Validation) {
  EXPECT_THROW((void)bn::ranked_node_cpt({}, {}, 3, 0.1), std::invalid_argument);
  EXPECT_THROW((void)bn::ranked_node_cpt({3}, {1.0, 2.0}, 3, 0.1),
               std::invalid_argument);
  EXPECT_THROW((void)bn::ranked_node_cpt({3}, {1.0}, 1, 0.1),
               std::invalid_argument);
  EXPECT_THROW((void)bn::ranked_node_cpt({3}, {1.0}, 3, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)bn::ranked_node_cpt({3}, {0.0}, 3, 0.1),
               std::invalid_argument);
  EXPECT_THROW((void)bn::ranked_node_cpt({1}, {1.0}, 3, 0.1),
               std::invalid_argument);
}

namespace {

bn::BayesianNetwork paper_network() {
  return sysuq::perception::table1_network();
}

}  // namespace

TEST(CptLearner, RecoversTrueCptFromSamples) {
  // Field observation: sample the true network, learn the perception CPT,
  // and check the posterior mean converges to Table I.
  const auto net = paper_network();
  bn::CptLearner learner(net, 1, 1.0);
  pr::Rng rng(555);
  for (int i = 0; i < 60000; ++i) learner.observe(net.sample(rng));
  const auto rows = learner.posterior_mean_rows();
  EXPECT_NEAR(rows[0].p(0), 0.9, 0.01);
  EXPECT_NEAR(rows[1].p(1), 0.9, 0.01);
  EXPECT_NEAR(rows[2].p(3), 0.8, 0.03);
  EXPECT_NEAR(rows[2].p(0), 0.0, 0.01);
}

TEST(CptLearner, EpistemicWidthShrinksMonotonically) {
  // The paper's central Sec. III.B claim, at the CPT level: "our knowledge
  // increases and the epistemic uncertainty decreases with every
  // observation" (in expectation; we check at exponentially spaced
  // checkpoints).
  const auto net = paper_network();
  bn::CptLearner learner(net, 1, 1.0);
  pr::Rng rng(777);
  double prev = learner.epistemic_width();
  EXPECT_GT(prev, 0.5);  // prior near-ignorance
  for (int checkpoint = 0; checkpoint < 5; ++checkpoint) {
    for (int i = 0; i < 200 * (1 << checkpoint); ++i)
      learner.observe(net.sample(rng));
    const double w = learner.epistemic_width();
    EXPECT_LT(w, prev);
    prev = w;
  }
  EXPECT_LT(prev, 0.1);
}

TEST(CptLearner, CommitWritesPosteriorMean) {
  auto net = paper_network();
  bn::CptLearner learner(net, 0, 1.0);
  pr::Rng rng(888);
  const auto truth = paper_network();
  for (int i = 0; i < 30000; ++i) learner.observe(truth.sample(rng));
  learner.commit(net);
  const auto& prior = net.cpt_rows(0)[0];
  EXPECT_NEAR(prior.p(0), 0.6, 0.01);
  EXPECT_NEAR(prior.p(2), 0.1, 0.01);
}

TEST(CptLearner, RowPosteriorTracksOnlyMatchingConfigs) {
  const auto net = paper_network();
  bn::CptLearner learner(net, 1, 1.0);
  // Observe one (gt=unknown, perception=none) event.
  learner.observe({2, 3});
  EXPECT_EQ(learner.observation_count(), 1u);
  EXPECT_EQ(learner.row_count(), 3u);
  // Row 2 gained a pseudo-count; rows 0 and 1 kept the prior.
  EXPECT_DOUBLE_EQ(learner.row_posterior(2).total_concentration(), 5.0);
  EXPECT_DOUBLE_EQ(learner.row_posterior(0).total_concentration(), 4.0);
  EXPECT_THROW((void)learner.row_posterior(3), std::out_of_range);
}

TEST(CptLearner, Validation) {
  const auto net = paper_network();
  EXPECT_THROW(bn::CptLearner(net, 0, 0.0), std::invalid_argument);
  bn::CptLearner learner(net, 1, 1.0);
  EXPECT_THROW(learner.observe({0, 9}), std::out_of_range);
  EXPECT_THROW(learner.observe({5, 0}), std::out_of_range);
}
