#!/usr/bin/env python3
"""Compare a freshly emitted BENCH_*.json manifest against its committed
baseline (bench/baselines/) and fail on perf regressions.

Raw queries/sec and ns/iter are machine-specific, so the gate never
compares them across machines directly:

* engine_batch: gates on the machine-relative ratios the bench itself
  computes (speedup_1t, speedup_4t, jt_speedup — current must stay
  within `--tolerance` of the baseline ratio) plus the correctness
  figures (byte_identical, max_abs_err, jt_max_abs_err).
* microbench: computes the per-benchmark runtime ratio current/baseline,
  takes the median ratio as the machine-speed factor, and flags any
  benchmark whose ratio exceeds the median by more than `--tolerance`
  (a benchmark that got slower *relative to the rest of the suite*).
* analyze: gates on the serial-vs-parallel scanner speedup (a
  machine-relative ratio: current must stay within `--tolerance` of the
  baseline ratio) and on byte_identical — the parallel scanner must
  agree with the serial one byte-for-byte. Raw ms are trajectory
  records, never gated.
* cpt_explosion: gates on loopy BP's correctness figures — BP converged
  on every workload, the certified intervals contain the exact
  posteriors, the point gap stays under an absolute bound — and keeps
  the deterministic iteration counts and the grid's certified bound
  width within `--tolerance` of the baseline (raw ms are trajectory
  records, never gated).

Exit status: 0 = within band, 1 = regression, 2 = usage/schema error.
See docs/bench_trajectory.md for the manifest schema.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys

# engine_batch keys gated as higher-is-better machine-relative ratios.
ENGINE_RATIO_KEYS = ("speedup_1t", "speedup_4t", "jt_speedup")
# engine_batch keys gated as absolute correctness bounds.
ENGINE_ABS_KEYS = {"max_abs_err": 1e-9, "jt_max_abs_err": 1e-9}

# cpt_explosion: BP's point estimate must track the exact posterior on
# the feasible (near-tree) workloads within this absolute gap.
CPT_ABS_GAP_BOUND = 0.05
# cpt_explosion keys gated as lower-is-better deterministic figures
# (iteration counts and certified bound width are machine-independent).
CPT_CEILING_KEYS = ("feasible_max_iterations", "grid_iterations",
                    "grid_max_bound_width")


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def compare_engine_batch(cur: dict, base: dict, tol: float) -> list[str]:
    failures = []
    cr, br = cur.get("results", {}), base.get("results", {})
    for key in ENGINE_RATIO_KEYS:
        if key not in cr or key not in br:
            failures.append(f"results.{key}: missing from manifest")
            continue
        floor = br[key] * (1.0 - tol)
        status = "OK" if cr[key] >= floor else "REGRESSION"
        print(f"  {key:<12} baseline {br[key]:8.2f}  current {cr[key]:8.2f}"
              f"  floor {floor:8.2f}  {status}")
        if cr[key] < floor:
            failures.append(
                f"results.{key}: {cr[key]:.2f} below {floor:.2f} "
                f"(baseline {br[key]:.2f} - {tol:.0%})")
    if cr.get("byte_identical") is not True:
        failures.append("results.byte_identical: pooled results diverged "
                        "from sequential ones")
    for key, bound in ENGINE_ABS_KEYS.items():
        val = cr.get(key)
        if val is None or val > bound:
            failures.append(f"results.{key}: {val} exceeds {bound}")
    return failures


def compare_analyze(cur: dict, base: dict, tol: float) -> list[str]:
    failures = []
    cr, br = cur.get("results", {}), base.get("results", {})
    key = "speedup"
    if key not in cr or key not in br:
        failures.append(f"results.{key}: missing from manifest")
    else:
        floor = br[key] * (1.0 - tol)
        status = "OK" if cr[key] >= floor else "REGRESSION"
        print(f"  {key:<12} baseline {br[key]:8.2f}  current {cr[key]:8.2f}"
              f"  floor {floor:8.2f}  {status}")
        if cr[key] < floor:
            failures.append(
                f"results.{key}: {cr[key]:.2f} below {floor:.2f} "
                f"(baseline {br[key]:.2f} - {tol:.0%})")
    if cr.get("byte_identical") is not True:
        failures.append("results.byte_identical: parallel scanner output "
                        "diverged from the serial run")
    for key in ("ms_jobs1", "ms_jobsN", "files"):
        if key in cr:
            print(f"  {key:<12} {cr[key]} (trajectory record, not gated)")
    return failures


def compare_cpt_explosion(cur: dict, base: dict, tol: float) -> list[str]:
    failures = []
    cr, br = cur.get("results", {}), base.get("results", {})
    for key in ("bp_converged", "grid_converged"):
        if cr.get(key) is not True:
            failures.append(f"results.{key}: loopy BP did not converge")
    if cr.get("feasible_intervals_contain_exact") is not True:
        failures.append("results.feasible_intervals_contain_exact: a "
                        "certified interval missed the exact posterior")
    gap = cr.get("feasible_max_abs_gap")
    if gap is None or gap > CPT_ABS_GAP_BOUND:
        failures.append(f"results.feasible_max_abs_gap: {gap} exceeds "
                        f"{CPT_ABS_GAP_BOUND}")
    else:
        print(f"  feasible_max_abs_gap {gap:.3e} within {CPT_ABS_GAP_BOUND}")
    for key in CPT_CEILING_KEYS:
        if key not in cr or key not in br:
            failures.append(f"results.{key}: missing from manifest")
            continue
        ceiling = br[key] * (1.0 + tol)
        status = "OK" if cr[key] <= ceiling else "REGRESSION"
        print(f"  {key:<24} baseline {br[key]:8.3f}  current {cr[key]:8.3f}"
              f"  ceiling {ceiling:8.3f}  {status}")
        if cr[key] > ceiling:
            failures.append(
                f"results.{key}: {cr[key]:.3f} above {ceiling:.3f} "
                f"(baseline {br[key]:.3f} + {tol:.0%})")
    return failures


def compare_microbench(cur: dict, base: dict, tol: float) -> list[str]:
    # A benchmark that ran < 8 iterations on either side has no
    # statistics behind its ns/iter (google-benchmark could not repeat
    # it); report it but never gate on it.
    min_iters = 8
    cur_ns, base_ns = {}, {}
    for manifest, ns in ((cur, cur_ns), (base, base_ns)):
        for r in manifest.get("results", []):
            if r.get("iterations", 0) >= min_iters:
                ns[r["name"]] = r["cpu_ns_per_iter"]
            else:
                print(f"  {r['name']}: only {r.get('iterations', 0)} "
                      f"iteration(s), reported but not gated "
                      f"({r['cpu_ns_per_iter']:.1f} ns)")
    shared = sorted(set(cur_ns) & set(base_ns))
    if not shared:
        return ["microbench: no shared benchmark names with the baseline"]
    # Benchmarks only present on one side are reported, never gated: a
    # new benchmark has no baseline yet, a removed one no current run.
    for name in sorted(set(cur_ns) ^ set(base_ns)):
        side = "baseline" if name in base_ns else "current"
        print(f"  {name}: only in {side} manifest, skipped")
    ratios = {n: cur_ns[n] / base_ns[n] for n in shared if base_ns[n] > 0}
    machine = statistics.median(ratios.values())
    print(f"  machine-speed factor (median current/baseline): {machine:.3f}")
    failures = []
    for name in shared:
        rel = ratios[name] / machine
        status = "OK" if rel <= 1.0 + tol else "REGRESSION"
        print(f"  {name:<34} baseline {base_ns[name]:12.1f} ns"
              f"  current {cur_ns[name]:12.1f} ns  relative {rel:5.2f}  "
              f"{status}")
        if rel > 1.0 + tol:
            failures.append(
                f"{name}: {rel:.2f}x the suite median ratio "
                f"(band {1.0 + tol:.2f}x) — slower relative to the rest "
                f"of the suite")
    return failures


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="freshly emitted BENCH_*.json")
    ap.add_argument("baseline", help="committed baseline BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed relative regression (default 0.20)")
    args = ap.parse_args()

    cur, base = load(args.current), load(args.baseline)
    for which, m in (("current", cur), ("baseline", base)):
        if "bench" not in m or "results" not in m:
            print(f"bench_compare: {which} manifest lacks bench/results "
                  "(schema in docs/bench_trajectory.md)", file=sys.stderr)
            return 2
    if cur["bench"] != base["bench"]:
        print(f"bench_compare: bench mismatch: current '{cur['bench']}' vs "
              f"baseline '{base['bench']}'", file=sys.stderr)
        return 2

    print(f"bench_compare: {cur['bench']} (tolerance {args.tolerance:.0%})")
    if cur["bench"] == "engine_batch":
        failures = compare_engine_batch(cur, base, args.tolerance)
    elif cur["bench"] == "analyze":
        failures = compare_analyze(cur, base, args.tolerance)
    elif cur["bench"] == "cpt_explosion":
        failures = compare_cpt_explosion(cur, base, args.tolerance)
    elif cur["bench"] == "microbench":
        failures = compare_microbench(cur, base, args.tolerance)
    else:
        print(f"bench_compare: unknown bench '{cur['bench']}'",
              file=sys.stderr)
        return 2

    if failures:
        print(f"\n{len(failures)} regression(s):")
        for f in failures:
            print(f"  FAIL {f}")
        return 1
    print("\nall metrics within band")
    return 0


if __name__ == "__main__":
    sys.exit(main())
