// sysuq_bn — command-line front end for the Bayesian-network layer.
//
// Usage:
//   sysuq_bn [--metrics] [--trace <out.json>] [--manifest <out.json>]
//            [--backend ve|jt|bp|auto] [--json] [--deterministic]
//            <command> ...
//
//   sysuq_bn describe <model.bn>
//   sysuq_bn dot <model.bn>
//   sysuq_bn marginal <model.bn> <variable> [ev_var=state ...]
//   sysuq_bn marginals <model.bn> [ev_var=state ...]
//   sysuq_bn explain <model.bn> <variable> [ev_var=state ...]
//   sysuq_bn sensitivity <model.bn> <variable> <state> [ev_var=state ...]
//   sysuq_bn table1 > model.bn        # emit the paper's Table I network
//
// Global flags:
//   --metrics          after the command, print the obs registry in
//                      Prometheus text format to stderr
//   --trace <file>     enable the global trace sink and write the run's
//                      spans as Chrome trace_event JSON to <file>
//   --manifest <file>  after the command, write a JSON run manifest:
//                      the obs registry, its SLO quantile report, and —
//                      when `explain` ran — the QueryProfile
//   --backend <name>   inference backend for the query commands:
//                      ve (per-query variable elimination), jt (calibrated
//                      junction tree), bp (loopy belief propagation with
//                      certified bounds), or auto (default: exact, with
//                      the BP escalation when the exact plan is
//                      infeasible)
//   --json             `explain` prints the QueryProfile as JSON instead
//                      of the human-readable plan
//   --deterministic    `explain` zeroes its measured figures (wall times,
//                      arena bytes) so the output is byte-reproducible
//
// Models use the sysuq-bayesnet text format (see bayesnet/serialize.hpp).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bayesnet/engine.hpp"
#include "bayesnet/inference.hpp"
#include "bayesnet/io.hpp"
#include "bayesnet/sensitivity.hpp"
#include "bayesnet/serialize.hpp"
#include "obs/registry.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "perception/table1.hpp"

namespace {

using namespace sysuq;

int usage() {
  std::fputs(
      "usage: sysuq_bn [--metrics] [--trace <out.json>] "
      "[--manifest <out.json>] [--backend ve|jt|bp|auto] [--json] "
      "[--deterministic] <command> ...\n"
      "  sysuq_bn describe <model.bn>\n"
      "  sysuq_bn dot <model.bn>\n"
      "  sysuq_bn marginal <model.bn> <variable> [ev=state ...]\n"
      "  sysuq_bn marginals <model.bn> [ev=state ...]\n"
      "  sysuq_bn explain <model.bn> <variable> [ev=state ...]\n"
      "  sysuq_bn sensitivity <model.bn> <variable> <state> [ev=state ...]\n"
      "  sysuq_bn table1\n"
      "flags:\n"
      "  --metrics        print the obs metrics registry (Prometheus text)\n"
      "                   to stderr after the command\n"
      "  --trace <file>   write the run's spans as Chrome trace JSON\n"
      "  --manifest <f>   write a JSON run manifest (metrics + SLO\n"
      "                   quantiles + the explain profile, when one ran)\n"
      "  --backend <b>    ve | jt | bp | auto (default auto) for the query\n"
      "                   commands (marginal, marginals, explain)\n"
      "  --json           explain: print the QueryProfile as JSON\n"
      "  --deterministic  explain: zero measured wall times / arena bytes\n",
      stderr);
  return 2;
}

// Selected by the global --backend flag; the query commands route their
// InferenceEngine through it.
bayesnet::Backend g_backend = bayesnet::Backend::kAuto;

// --json / --deterministic, consumed by the explain command.
bool g_json = false;
bool g_deterministic = false;

// The last explain profile's JSON, embedded in the --manifest output
// (empty when no explain ran this invocation).
std::string g_explain_json;

bool parse_backend(const std::string& name) {
  if (name == "ve") {
    g_backend = bayesnet::Backend::kVariableElimination;
  } else if (name == "jt") {
    g_backend = bayesnet::Backend::kJunctionTree;
  } else if (name == "bp") {
    g_backend = bayesnet::Backend::kLoopyBP;
  } else if (name == "auto") {
    g_backend = bayesnet::Backend::kAuto;
  } else {
    return false;
  }
  return true;
}

bayesnet::BayesianNetwork load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return bayesnet::from_text(buf.str());
}

bayesnet::Evidence parse_evidence(const bayesnet::BayesianNetwork& net,
                                  int argc, char** argv, int first) {
  bayesnet::Evidence ev;
  for (int i = first; i < argc; ++i) {
    const std::string tok = argv[i];
    const auto eq = tok.find('=');
    if (eq == std::string::npos)
      throw std::runtime_error("evidence must be var=state: '" + tok + "'");
    const auto var = net.id_of(tok.substr(0, eq));
    const auto state = net.variable(var).state_index(tok.substr(eq + 1));
    ev[var] = state;
  }
  return ev;
}

// The actual command dispatch; main() wraps it with the global
// --metrics / --trace flag handling so every command is observable.
int run(int argc, char** argv);

}  // namespace

int main(int argc, char** argv) {
  bool print_metrics = false;
  std::string trace_path;
  std::string manifest_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string tok = argv[i];
    if (i > 0 && tok == "--metrics") {
      print_metrics = true;
    } else if (i > 0 && tok == "--trace") {
      if (i + 1 >= argc) return usage();
      trace_path = argv[++i];
    } else if (i > 0 && tok == "--manifest") {
      if (i + 1 >= argc) return usage();
      manifest_path = argv[++i];
    } else if (i > 0 && tok == "--backend") {
      if (i + 1 >= argc || !parse_backend(argv[++i])) return usage();
    } else if (i > 0 && tok == "--json") {
      g_json = true;
    } else if (i > 0 && tok == "--deterministic") {
      g_deterministic = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(args.size());
  argv = args.data();

  if (!trace_path.empty()) obs::TraceSink::global().set_enabled(true);
  const int rc = run(argc, argv);

  if (print_metrics)
    std::fputs(obs::Registry::global().to_prometheus().c_str(), stderr);
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "sysuq_bn: cannot write trace '%s'\n",
                   trace_path.c_str());
      return 1;
    }
    out << obs::TraceSink::global().to_chrome_json() << "\n";
  }
  if (!manifest_path.empty()) {
    std::ofstream out(manifest_path);
    if (!out) {
      std::fprintf(stderr, "sysuq_bn: cannot write manifest '%s'\n",
                   manifest_path.c_str());
      return 1;
    }
    out << "{\"tool\":\"sysuq_bn\",\"schema\":1,\"command\":\""
        << (argc > 1 ? argv[1] : "") << "\",\"explain\":"
        << (g_explain_json.empty() ? "null" : g_explain_json)
        << ",\"slo\":" << obs::slo_report()
        << ",\"metrics\":" << obs::Registry::global().to_json() << "}\n";
  }
  return rc;
}

namespace {

int run(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "table1") {
      std::fputs(bayesnet::to_text(perception::table1_network()).c_str(),
                 stdout);
      return 0;
    }
    if (argc < 3) return usage();
    const auto net = load(argv[2]);

    if (cmd == "describe") {
      std::fputs(bayesnet::describe(net).c_str(), stdout);
      for (bayesnet::VariableId v = 0; v < net.size(); ++v) {
        std::printf("\nCPT of %s:\n%s", net.variable(v).name().c_str(),
                    bayesnet::cpt_table(net, v).c_str());
      }
      return 0;
    }
    if (cmd == "dot") {
      std::fputs(bayesnet::to_dot(net).c_str(), stdout);
      return 0;
    }
    if (cmd == "marginal") {
      if (argc < 4) return usage();
      const auto query = net.id_of(argv[3]);
      const auto ev = parse_evidence(net, argc, argv, 4);
      bayesnet::InferenceEngine engine(
          net, {.threads = 1, .backend = g_backend});
      const auto m = engine.query(query, ev);
      for (std::size_t s = 0; s < m.size(); ++s) {
        std::printf("P(%s = %s%s) = %.6g\n", net.variable(query).name().c_str(),
                    net.variable(query).state_name(s).c_str(),
                    ev.empty() ? "" : " | evidence", m.p(s));
      }
      return 0;
    }
    if (cmd == "marginals") {
      // Every posterior marginal in one pass — the all-marginals workload
      // the junction-tree backend exists for.
      const auto ev = parse_evidence(net, argc, argv, 3);
      bayesnet::InferenceEngine engine(
          net, {.threads = 1, .backend = g_backend});
      const auto all = engine.all_marginals(ev);
      if (!ev.empty())
        std::printf("P(e) = %.6g\n", engine.evidence_probability(ev));
      for (bayesnet::VariableId v = 0; v < net.size(); ++v) {
        const bool observed = ev.contains(v);
        std::printf("%s%s:", net.variable(v).name().c_str(),
                    observed ? " (observed)" : "");
        for (std::size_t s = 0; s < all[v].size(); ++s) {
          std::printf(" %s=%.6g", net.variable(v).state_name(s).c_str(),
                      all[v].p(s));
        }
        std::printf("\n");
      }
      return 0;
    }
    if (cmd == "explain") {
      // EXPLAIN ANALYZE for one query: runs it and prints the cost
      // attribution (plan, cache hits, arena high-water, stage times).
      if (argc < 4) return usage();
      const auto query = net.id_of(argv[3]);
      const auto ev = parse_evidence(net, argc, argv, 4);
      bayesnet::InferenceEngine engine(
          net, {.threads = 1, .backend = g_backend});
      auto profile = engine.explain(query, ev);
      if (g_deterministic) profile.zero_costs();
      g_explain_json = profile.to_json();
      if (g_json) {
        std::printf("%s\n", g_explain_json.c_str());
      } else {
        std::fputs(profile.to_plan().c_str(), stdout);
      }
      return 0;
    }
    if (cmd == "sensitivity") {
      if (argc < 5) return usage();
      const auto query = net.id_of(argv[3]);
      const auto state = net.variable(query).state_index(argv[4]);
      const auto ev = parse_evidence(net, argc, argv, 5);
      const auto ranking = bayesnet::rank_parameters(net, query, state, ev);
      std::printf("top parameters for P(%s = %s):\n",
                  net.variable(query).name().c_str(), argv[4]);
      for (std::size_t i = 0; i < 10 && i < ranking.size(); ++i) {
        const auto& p = ranking[i];
        std::printf("  %2zu. %s row %zu state %s: theta=%.4g  d=%+.5f\n", i + 1,
                    net.variable(p.child).name().c_str(), p.row,
                    net.variable(p.child).state_name(p.state).c_str(), p.value,
                    p.derivative);
      }
      return 0;
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sysuq_bn: %s\n", e.what());
    return 1;
  }
}

}  // namespace
