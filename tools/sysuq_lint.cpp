// sysuq_lint: repo-specific static checks for src/.
//
// Rules (suppress a line with `// sysuq-lint-allow(<rule>): <reason>`):
//   rng-discipline  rand()/srand()/raw mt19937 outside src/prob/rng.* —
//                   all randomness must flow through prob::Rng so streams
//                   stay seedable and splittable.
//   float-eq        == or != against a floating-point literal; compare
//                   against a tolerance instead, or annotate why an exact
//                   bit comparison is intended.
//   magic-epsilon   floating literal with exponent <= -8 outside
//                   src/core/tolerance.hpp; use the named constants so
//                   every module agrees on what "equal" means.
//   include-hygiene quoted includes must be module-qualified ("mod/file.hpp",
//                   never "../"), and a .cpp file must include its own
//                   header first so headers stay self-contained.
//   obs-naming      obs instrument/span name literals (counter(), gauge(),
//                   histogram(), Span) must follow module.subsystem.name:
//                   two or more dot-separated lowercase snake_case
//                   segments, mirroring obs::valid_metric_name so bad
//                   names fail the lint before they fail the contract.
//
// Lines are matched after stripping string literals and comments, so
// documentation may mention rand() or 1e-12 freely. Every C++ extension
// is covered (.cpp/.cc/.cxx and .hpp/.h/.hxx), so a new source file is
// linted out of the box whatever spelling it picks; the fixtures under
// tools/lint_fixture/ self-test this (ctest -L lint). Exit code is 0
// when clean, 1 when any violation is reported, 2 on usage/IO errors.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

// Replaces string/char literal bodies and comments with spaces, keeping
// column positions stable. `in_block` carries /* ... */ state across lines.
std::string strip_noncode(const std::string& line, bool& in_block) {
  std::string out(line.size(), ' ');
  bool in_string = false, in_char = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_block) {
      if (c == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block = false;
        ++i;
      }
      continue;
    }
    if (in_string || in_char) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if ((in_string && c == '"') || (in_char && c == '\'')) {
        in_string = in_char = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
      out[i] = c;  // keep the delimiter so #include "..." stays visible
      continue;
    }
    if (c == '\'') {
      // Distinguish a char literal from a digit separator (1'000'000).
      const bool digit_sep = i > 0 && std::isdigit(static_cast<unsigned char>(line[i - 1])) &&
                             i + 1 < line.size() &&
                             std::isdigit(static_cast<unsigned char>(line[i + 1]));
      if (digit_sep) {
        out[i] = c;
        continue;
      }
      in_char = true;
      continue;
    }
    if (c == '/' && i + 1 < line.size()) {
      if (line[i + 1] == '/') break;  // rest of line is a comment
      if (line[i + 1] == '*') {
        in_block = true;
        ++i;
        continue;
      }
    }
    out[i] = c;
  }
  // Trim trailing spaces introduced by the comment cut.
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

bool allows(const std::string& raw_line, const std::string& rule) {
  const std::string marker = "sysuq-lint-allow(" + rule + ")";
  return raw_line.find(marker) != std::string::npos;
}

// The include check needs the path's actual text, which the stripper
// blanks along with every other string body. So: detect the directive on
// the stripped code (a commented-out #include is blanked there and
// cannot match), then read the path from the raw line.
std::string quoted_include(const std::string& code, const std::string& raw) {
  static const std::regex directive_re(R"(^\s*#\s*include\s*\")");
  if (!std::regex_search(code, directive_re)) return {};
  static const std::regex path_re(R"(^\s*#\s*include\s*\"([^\"]+)\")");
  std::smatch m;
  if (std::regex_search(raw, m, path_re)) return m[1].str();
  return {};
}

// Mirror of obs::valid_metric_name (the lint binary links no sysuq
// libraries): two or more dot-separated segments, each [a-z][a-z0-9_]*.
bool valid_obs_name(const std::string& name) {
  bool seen_dot = false;
  bool segment_start = true;
  for (const char c : name) {
    if (segment_start) {
      if (c < 'a' || c > 'z') return false;
      segment_start = false;
      continue;
    }
    if (c == '.') {
      seen_dot = true;
      segment_start = true;
      continue;
    }
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return seen_dot && !segment_start && !name.empty();
}

class Linter {
 public:
  explicit Linter(fs::path src_root) : root_(std::move(src_root)) {}

  void lint_file(const fs::path& path) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "sysuq_lint: cannot read " << path << "\n";
      io_error_ = true;
      return;
    }
    const std::string rel = fs::relative(path, root_).generic_string();
    const bool is_rng = rel.rfind("prob/rng", 0) == 0;
    const bool is_tolerance = rel == "core/tolerance.hpp";
    const auto ext = path.extension();
    const bool is_cpp = ext == ".cpp" || ext == ".cc" || ext == ".cxx";
    // Own header: core/contracts.cpp must include "core/contracts.hpp" first.
    std::string own_header;
    if (is_cpp) {
      for (const char* hdr_ext : {".hpp", ".h", ".hxx"}) {
        fs::path hpp = path;
        hpp.replace_extension(hdr_ext);
        if (fs::exists(hpp)) {
          own_header = fs::relative(hpp, root_).generic_string();
          break;
        }
      }
    }

    // `:` is not excluded before the token, so the qualified std::mt19937
    // spelling is caught as well as the bare one.
    static const std::regex rng_re(R"((^|[^\w.])(s?rand\s*\(|mt19937))");
    static const std::regex float_lit_eq(
        R"((==|!=)\s*-?(\d+\.\d*|\.\d+|\d+\.?\d*[eE][-+]?\d+))");
    static const std::regex float_eq_lit(
        R"((\d+\.\d*|\.\d+|\d+\.?\d*[eE][-+]?\d+)(f|F)?\s*(==|!=))");
    static const std::regex epsilon_re(R"((\d+(\.\d*)?|\.\d+)[eE]-(\d+))");

    std::string raw;
    bool in_block = false;
    bool saw_first_include = false;
    for (std::size_t lineno = 1; std::getline(in, raw); ++lineno) {
      const std::string code = strip_noncode(raw, in_block);
      if (code.empty()) continue;

      if (const std::string inc = quoted_include(code, raw); !inc.empty()) {
        if (!allows(raw, "include-hygiene")) {
          if (inc.find("../") != std::string::npos) {
            report(rel, lineno, "include-hygiene",
                   "relative include \"" + inc + "\"; use the module-qualified path");
          } else if (inc.find('/') == std::string::npos) {
            report(rel, lineno, "include-hygiene",
                   "unqualified include \"" + inc + "\"; write \"<module>/" + inc + "\"");
          }
          if (!saw_first_include && !own_header.empty() && inc != own_header) {
            report(rel, lineno, "include-hygiene",
                   "first include must be the file's own header \"" + own_header + "\"");
          }
        }
        saw_first_include = true;
        continue;
      }

      if (!is_rng && !allows(raw, "rng-discipline") &&
          std::regex_search(code, rng_re)) {
        report(rel, lineno, "rng-discipline",
               "raw rand()/mt19937; use prob::Rng (src/prob/rng.hpp)");
      }

      if (!allows(raw, "float-eq") &&
          (std::regex_search(code, float_lit_eq) ||
           std::regex_search(code, float_eq_lit))) {
        report(rel, lineno, "float-eq",
               "floating-point ==/!=; compare against a tolerance or annotate");
      }

      if (!is_tolerance && !allows(raw, "magic-epsilon")) {
        for (std::sregex_iterator it(code.begin(), code.end(), epsilon_re), end;
             it != end; ++it) {
          if (std::stoi((*it)[3].str()) >= 8) {
            report(rel, lineno, "magic-epsilon",
                   "tolerance-sized literal " + it->str() +
                       "; use a named constant from core/tolerance.hpp");
            break;
          }
        }
      }

      // obs-naming runs over the raw line (string bodies are blanked in
      // `code`), then checks the stripped code at the match position so
      // names quoted in comments stay free.
      static const std::regex obs_name_re(
          R"((\.\s*(counter|gauge|histogram)|Span\b[^(="]*)\(\s*\"([^\"]*)\")");
      if (!allows(raw, "obs-naming")) {
        for (std::sregex_iterator it(raw.begin(), raw.end(), obs_name_re), end;
             it != end; ++it) {
          const auto pos = static_cast<std::size_t>(it->position(0));
          if (pos >= code.size() || code[pos] == ' ') continue;  // comment
          const std::string name = (*it)[3].str();
          if (!valid_obs_name(name)) {
            report(rel, lineno, "obs-naming",
                   "obs name \"" + name +
                       "\" must be dot-separated snake_case "
                       "(module.subsystem.name)");
            break;
          }
        }
      }
    }
  }

  int run() {
    if (!fs::is_directory(root_)) {
      std::cerr << "sysuq_lint: not a directory: " << root_ << "\n";
      return 2;
    }
    std::size_t files = 0;
    std::vector<fs::path> paths;
    for (const auto& entry : fs::recursive_directory_iterator(root_)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      const bool lintable = ext == ".cpp" || ext == ".hpp" || ext == ".cc" ||
                            ext == ".h" || ext == ".cxx" || ext == ".hxx";
      if (lintable) paths.push_back(entry.path());
    }
    std::sort(paths.begin(), paths.end());
    for (const auto& p : paths) {
      lint_file(p);
      ++files;
    }
    if (io_error_) return 2;
    if (violations_.empty()) {
      std::cout << "sysuq_lint: OK (" << files << " files)\n";
      return 0;
    }
    for (const auto& v : violations_) {
      std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
                << v.message << "\n";
    }
    std::cout << "sysuq_lint: " << violations_.size() << " violation(s) in "
              << files << " files\n";
    return 1;
  }

 private:
  void report(const std::string& file, std::size_t line, const std::string& rule,
              const std::string& message) {
    violations_.push_back({file, line, rule, message});
  }

  fs::path root_;
  std::vector<Violation> violations_;
  bool io_error_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2) {
    std::cerr << "usage: sysuq_lint [src-root]\n";
    return 2;
  }
  const fs::path root = argc == 2 ? fs::path(argv[1]) : fs::path("src");
  return Linter(root).run();
}
