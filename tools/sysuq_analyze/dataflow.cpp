#include "sysuq_analyze/dataflow.hpp"

#include <algorithm>
#include <deque>

namespace sysuq_analyze {

bool join_states(VarState& into, const VarState& from) {
  bool grew = false;
  for (const auto& [name, bits] : from) {
    unsigned& cur = into[name];
    if ((cur | bits) != cur) {
      cur |= bits;
      grew = true;
    }
  }
  return grew;
}

ForwardAnalysis::ForwardAnalysis(const Cfg& cfg, VarState entry,
                                 Transfer transfer)
    : cfg_(cfg), transfer_(std::move(transfer)), in_(cfg.blocks.size()) {
  if (cfg_.blocks.empty()) return;
  in_[0] = std::move(entry);
  std::deque<std::size_t> worklist;
  std::vector<char> queued(cfg_.blocks.size(), 0);
  worklist.push_back(0);
  queued[0] = 1;
  while (!worklist.empty()) {
    const std::size_t b = worklist.front();
    worklist.pop_front();
    queued[b] = 0;
    VarState out = in_[b];
    for (const Stmt& s : cfg_.blocks[b].stmts) transfer_(s, out);
    for (const std::size_t succ : cfg_.blocks[b].succs) {
      if (join_states(in_[succ], out) && !queued[succ]) {
        worklist.push_back(succ);
        queued[succ] = 1;
      }
    }
  }
}

void ForwardAnalysis::replay(
    const std::function<void(const Stmt&, const VarState&)>& visit) const {
  for (std::size_t b = 0; b < cfg_.blocks.size(); ++b) {
    VarState state = in_[b];
    for (const Stmt& s : cfg_.blocks[b].stmts) {
      visit(s, state);
      transfer_(s, state);
    }
  }
}

VarState ForwardAnalysis::anywhere() const {
  VarState all;
  for (std::size_t b = 0; b < cfg_.blocks.size(); ++b) {
    VarState state = in_[b];
    join_states(all, state);
    for (const Stmt& s : cfg_.blocks[b].stmts) {
      transfer_(s, state);
      join_states(all, state);
    }
  }
  return all;
}

CallGraph build_call_graph(const Project& project) {
  CallGraph cg;
  for (const auto& af : project.files) {
    auto& per_root = cg.callees_by_root[af.lex.root];
    const auto& t = af.lex.tokens;
    for (const auto& def : af.model.defs) {
      auto& callees = per_root[def.name];
      for (std::size_t i = def.body_begin; i + 1 < def.body_end; ++i) {
        if (t[i].kind != TokKind::kIdent) continue;
        if (t[i + 1].kind == TokKind::kPunct && t[i + 1].text == "(")
          callees.insert(t[i].text);
      }
    }
  }
  return cg;
}

std::size_t lambda_end(const LexedFile& f, std::size_t i, std::size_t limit) {
  const auto& t = f.tokens;
  if (i >= limit || t[i].kind != TokKind::kPunct || t[i].text != "[")
    return i;
  // Match the introducer brackets.
  int depth = 0;
  std::size_t j = i;
  for (; j < limit; ++j) {
    if (t[j].kind != TokKind::kPunct) continue;
    if (t[j].text == "[") ++depth;
    else if (t[j].text == "]" && --depth == 0) break;
  }
  if (j >= limit) return i;
  ++j;  // one past ']'
  // Optional parameter list.
  if (j < limit && t[j].kind == TokKind::kPunct && t[j].text == "(") {
    int pd = 0;
    for (; j < limit; ++j) {
      if (t[j].kind != TokKind::kPunct) continue;
      if (t[j].text == "(") ++pd;
      else if (t[j].text == ")" && --pd == 0) { ++j; break; }
    }
  }
  // Optional specifiers (mutable, noexcept, -> ret) up to the body '{'.
  std::size_t k = j;
  while (k < limit && !(t[k].kind == TokKind::kPunct && t[k].text == "{")) {
    if (t[k].kind == TokKind::kPunct &&
        (t[k].text == ";" || t[k].text == ")" || t[k].text == ","))
      return i;  // not a lambda (array subscript etc.)
    ++k;
  }
  if (k >= limit) return i;
  // Body braces.
  int bd = 0;
  for (; k < limit; ++k) {
    if (t[k].kind != TokKind::kPunct) continue;
    if (t[k].text == "{") ++bd;
    else if (t[k].text == "}" && --bd == 0) return k + 1;
  }
  return i;
}

std::vector<LambdaRange> find_lambdas(const LexedFile& f, std::size_t begin,
                                      std::size_t end) {
  std::vector<LambdaRange> out;
  const auto& t = f.tokens;
  for (std::size_t i = begin; i < end; ++i) {
    if (t[i].kind != TokKind::kPunct || t[i].text != "[") continue;
    const std::size_t past = lambda_end(f, i, end);
    if (past == i) continue;
    // Body range: tokens between the body braces.
    std::size_t open = i;
    int bd = 0;
    for (std::size_t k = i; k < past; ++k) {
      if (t[k].kind == TokKind::kPunct && t[k].text == "{") {
        open = k;
        bd = 1;
        break;
      }
    }
    if (bd == 1) out.push_back({i, open + 1, past > 0 ? past - 1 : open + 1});
    i = past - 1;  // outermost only
  }
  return out;
}

bool mentions_fact(const LexedFile& f, std::size_t begin, std::size_t end,
                   const VarState& state, unsigned mask) {
  const auto& t = f.tokens;
  for (std::size_t i = begin; i < end && i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (i > begin && t[i - 1].kind == TokKind::kPunct &&
        (t[i - 1].text == "." || t[i - 1].text == "->" ||
         t[i - 1].text == "::"))
      continue;
    const auto it = state.find(t[i].text);
    if (it != state.end() && (it->second & mask) != 0) return true;
  }
  return false;
}

}  // namespace sysuq_analyze
