#include "sysuq_analyze/sarif.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <string>
#include <tuple>

namespace sysuq_analyze {

namespace {

// The full catalog, in catalog order (docs/analyzer_rules.md mirrors
// this). Every rule appears in tool.driver.rules even when it produced
// no results, so SARIF consumers can show what was checked.
constexpr std::array<RuleDoc, 15> kRules = {{
    {"layering",
     "Includes must respect the module DAG core -> prob -> bayesnet -> "
     "{evidence, perception, fta, markov, orbit} -> sys; obs is includable "
     "by all modules but itself includes only core."},
    {"contract-coverage",
     "Every non-inline public function declared in a module header must "
     "execute SYSUQ_EXPECT / SYSUQ_ASSERT_PROB* / SYSUQ_ENSURE in its "
     "definition."},
    {"lock-discipline",
     "In classes owning a std::mutex: no non-atomic member writes outside "
     "a lock_guard/unique_lock scope, and no .load()/.store() with a "
     "memory order stricter than the member's declared ceiling."},
    {"validate-before-mutate",
     "No member mutation may precede the function's last precondition "
     "check; a throwing contract must not leave the object half-mutated."},
    {"rng-discipline",
     "No raw rand()/srand()/std::mt19937 outside prob/rng.*; use "
     "prob::Rng."},
    {"float-eq",
     "No ==/!= against floating-point literals; compare against a "
     "tolerance."},
    {"magic-epsilon",
     "No inline tolerance-sized literals (decimal exponent <= -8); use a "
     "named constant from core/tolerance.hpp."},
    {"include-hygiene",
     "Project includes must be module-qualified, never relative (../), "
     "and a .cpp's first include must be its own header."},
    {"obs-naming",
     "Metric and span names must be dot-separated snake_case "
     "(module.subsystem.name)."},
    {"arena-escape",
     "Values backed by the per-thread bump arena (kernels::"
     "thread_scratch() / Arena::alloc) must not be used after a reset(), "
     "stored into class members, or captured by thread-pool callbacks."},
    {"lock-order",
     "Mutexes must be acquired in one global order (no cycles in the "
     "acquisition graph), and no mutex may be held across a "
     "condition_variable wait on another lock, a thread-pool dispatch, "
     "or a thread spawn/join."},
    {"log-domain",
     "Log-domain values (log_total, to_log, std::log, log_* names) must "
     "not reach SYSUQ_ASSERT_PROB* or linear `*`/`/` arithmetic without "
     "an explicit exp()/from_log() conversion; prefer the "
     "Neumaier-compensated kernels::total() over naive `+=` loops."},
    {"obs-context",
     "A function that opens an obs::Span and dispatches work onto a "
     "thread pool must hand the TraceContext to the tasks: capture "
     "obs::current_context() before the dispatch and install it in each "
     "task with obs::ContextScope, so worker spans parent into the "
     "query's trace."},
    {"thread-escape",
     "State shared across thread roles (inferred from pool-dispatch and "
     "std::thread sites) must be written with its declared guard held; "
     "sysuq-requires contracts must hold at every call site, "
     "sysuq-thread-confined state must stay on its declared role, and "
     "worker lambdas that outlive the enclosing scope must not capture "
     "stack state by reference."},
    {"guard-consistency",
     "Members annotated // sysuq-guarded-by(mu) may only be touched with "
     "mu on the lexical lock-scope stack; functions annotated "
     "// sysuq-excludes(mu) must not be called while mu is held; every "
     "non-atomic member of a mutex-owning class must carry a "
     "thread-safety annotation."},
}};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const std::vector<RuleDoc>& rule_catalog() {
  static const std::vector<RuleDoc> kCatalog(kRules.begin(), kRules.end());
  return kCatalog;
}

std::ostream& write_sarif(std::ostream& os,
                          std::vector<Violation> violations) {
  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.path, a.line, a.rule, a.message) <
                     std::tie(b.path, b.line, b.rule, b.message);
            });

  os << "{\n"
     << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"sysuq_analyze\",\n"
     << "          \"informationUri\": "
        "\"https://example.invalid/sysuq/docs/analyzer_rules.md\",\n"
     << "          \"rules\": [\n";
  for (std::size_t i = 0; i < kRules.size(); ++i) {
    os << "            {\n"
       << "              \"id\": \"" << kRules[i].id << "\",\n"
       << "              \"shortDescription\": { \"text\": \""
       << json_escape(kRules[i].description) << "\" }\n"
       << "            }" << (i + 1 < kRules.size() ? "," : "") << "\n";
  }
  os << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    os << "        {\n"
       << "          \"ruleId\": \"" << json_escape(v.rule) << "\",\n"
       << "          \"level\": \"error\",\n"
       << "          \"message\": { \"text\": \"" << json_escape(v.message)
       << "\" },\n"
       << "          \"locations\": [\n"
       << "            {\n"
       << "              \"physicalLocation\": {\n"
       << "                \"artifactLocation\": { \"uri\": \""
       << json_escape(v.path) << "\" },\n"
       << "                \"region\": { \"startLine\": " << v.line << " }\n"
       << "              }\n"
       << "            }\n"
       << "          ]\n"
       << "        }" << (i + 1 < violations.size() ? "," : "") << "\n";
  }
  os << "      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return os;
}

}  // namespace sysuq_analyze
