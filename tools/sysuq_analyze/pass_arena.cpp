// arena-escape: values backed by the per-thread bump arena
// (kernels::thread_scratch() / Arena::alloc) must not outlive the
// storage. Three escape shapes are flagged:
//
//   1. use of a view after the arena it points into was reset(),
//   2. an arena-backed view stored into a class member (the member
//      outlives the next reset),
//   3. an arena handle or view captured by a lambda handed to a
//      thread-pool dispatch (thread_scratch() is per-thread; another
//      thread's resets race the capture).
//
// The pass runs the forward dataflow framework (dataflow.hpp) over each
// function's CFG with a 4-bit lattice per variable:
//
//   HANDLE — an Arena (reference) obtained from thread_scratch() or
//            passed in as Arena&,
//   VIEW   — storage that may point into an arena,
//   STALE  — VIEW after a reset() of any handle on any path,
//   OWNING — declared with an owning type (Factor, vector<double>,
//            scalars...); assignments into it launder taint.
//
// Taint is *production-based*, not mention-based: a right-hand side
// produces a view only when it is a tainted variable chain or a
// depth-0 call to a function whose own return statements were proven
// to produce views (per-root summary iterated to a fixpoint, like
// contract-coverage). `ScaledFactor out = eliminate_scaled(.., arena)`
// therefore stays clean — the callee materializes — while
// `auto* p = arena.alloc<double>(n)` and `x = product(a, b, arena)`
// taint. Lambda bodies are skipped by the transfer: a lambda's effects
// belong to its call sites, and the pool-capture rule looks inside
// bodies explicitly.
#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sysuq_analyze/cfg.hpp"
#include "sysuq_analyze/dataflow.hpp"
#include "sysuq_analyze/lexer.hpp"
#include "sysuq_analyze/model.hpp"
#include "sysuq_analyze/passes.hpp"

namespace sysuq_analyze {

namespace {

constexpr unsigned kHandle = 1u;
constexpr unsigned kView = 2u;
constexpr unsigned kStale = 4u;
constexpr unsigned kOwning = 8u;

constexpr const char* kRule = "arena-escape";

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}

/// Types whose values own their storage: initializing or assigning one
/// copies out of the arena, laundering the taint.
bool owning_type_word(const std::string& w) {
  static const std::set<std::string> kOwning_words = {
      "double",   "float",      "int",      "long",    "short",
      "unsigned", "bool",       "size_t",   "char",    "string",
      "Factor",   "ScaledFactor", "Categorical", "Evidence",
      "JointTable", "optional", "shared_ptr", "unique_ptr",
  };
  return kOwning_words.count(w) > 0;
}

/// Words marking a type as arena-view-ish when they appear in the
/// declared type of a variable.
bool viewish_type_word(const std::string& w) {
  return w == "View" || w == "Table";
}

/// Token indices of `[begin, end)` with lambda bodies removed — the
/// "effective" tokens a transfer function looks at.
std::vector<std::size_t> effective_tokens(const LexedFile& f,
                                          std::size_t begin,
                                          std::size_t end) {
  std::vector<std::size_t> out;
  const auto& t = f.tokens;
  for (std::size_t i = begin; i < end && i < t.size(); ++i) {
    if (t[i].kind == TokKind::kPunct && t[i].text == "[") {
      const std::size_t past = lambda_end(f, i, end);
      if (past != i) {
        i = past - 1;  // skip the whole lambda, introducer included
        continue;
      }
    }
    out.push_back(i);
  }
  return out;
}

/// True when any effective token is an unqualified identifier carrying
/// a bit of `mask`; writes the first such name to `*who` if non-null.
bool eff_mentions(const LexedFile& f, const std::vector<std::size_t>& eff,
                  std::size_t from, std::size_t to, const VarState& state,
                  unsigned mask, std::string* who = nullptr) {
  const auto& t = f.tokens;
  for (std::size_t k = from; k < to && k < eff.size(); ++k) {
    const std::size_t i = eff[k];
    if (t[i].kind != TokKind::kIdent) continue;
    if (k > from) {
      const Token& prev = t[eff[k - 1]];
      if (prev.kind == TokKind::kPunct &&
          (prev.text == "." || prev.text == "->" || prev.text == "::"))
        continue;
    }
    const auto it = state.find(t[i].text);
    if (it != state.end() && (it->second & mask) != 0) {
      if (who != nullptr) *who = t[i].text;
      return true;
    }
  }
  return false;
}

/// Does the expression spanning effective indices [from, to) produce an
/// arena-backed view? True for a leading tainted variable chain
/// (`v`, `v.view()`, `std::move(v)`) and for a depth-0 call to a
/// summary function or an Arena allocation method off a handle.
bool produces_view(const LexedFile& f, const std::vector<std::size_t>& eff,
                   std::size_t from, std::size_t to, const VarState& state,
                   const std::set<std::string>& returns_view) {
  const auto& t = f.tokens;
  // Strip a leading std::move( ... ) or bare parens.
  while (from < to) {
    const std::size_t i = eff[from];
    if (is_punct(t[i], "(")) {
      ++from;
      if (to > from && is_punct(t[eff[to - 1]], ")")) --to;
      continue;
    }
    if (t[i].kind == TokKind::kIdent && t[i].text == "std" &&
        from + 3 < to && is_punct(t[eff[from + 1]], "::") &&
        t[eff[from + 2]].text == "move" && is_punct(t[eff[from + 3]], "(")) {
      from += 4;
      if (to > from && is_punct(t[eff[to - 1]], ")")) --to;
      continue;
    }
    break;
  }
  if (from >= to) return false;
  // Leading tainted variable (covers `v`, `v.view()`, `v.values`).
  const std::size_t first = eff[from];
  if (t[first].kind == TokKind::kIdent) {
    const auto it = state.find(t[first].text);
    if (it != state.end() && (it->second & (kView | kStale)) != 0)
      return true;
  }
  // Depth-0 calls.
  int depth = 0;
  for (std::size_t k = from; k < to; ++k) {
    const Token& tok = t[eff[k]];
    if (tok.kind == TokKind::kPunct) {
      const std::string& p = tok.text;
      if (p == "(" || p == "[" || p == "{") ++depth;
      else if (p == ")" || p == "]" || p == "}") --depth;
      continue;
    }
    if (depth != 0 || tok.kind != TokKind::kIdent || k + 1 >= to) continue;
    const Token& next = t[eff[k + 1]];
    const bool called = next.kind == TokKind::kPunct &&
                        (next.text == "(" || next.text == "<");
    if (!called) continue;
    const std::string& name = tok.text;
    if (name == "alloc" || name == "allocate" || name == "make_table") {
      // Arena allocation methods: require a method call off a handle
      // (`arena.alloc<T>(n)`) so unrelated free `alloc`s stay clean.
      if (k > from) {
        const Token& prev = t[eff[k - 1]];
        if (prev.kind == TokKind::kPunct &&
            (prev.text == "." || prev.text == "->") && k >= 2) {
          const Token& recv = t[eff[k - 2]];
          const auto it = state.find(recv.text);
          if ((it != state.end() && (it->second & kHandle) != 0) ||
              recv.text == ")")
            return true;
        }
      }
      continue;
    }
    if (next.text == "(" && returns_view.count(name) > 0) return true;
    if (name == "thread_scratch" && next.text == "(") return true;
  }
  return false;
}

/// Parsed shape of one statement's effective tokens.
struct StmtShape {
  enum Kind { kOther, kDecl, kAssign, kAppend } kind = kOther;
  std::string target;        ///< declared / assigned / appended-to name
  std::size_t target_tok = 0;  ///< token index of the target name
  std::size_t rhs_from = 0;  ///< effective-index range of the RHS / arg
  std::size_t rhs_to = 0;
  unsigned decl_type = 0;    ///< kHandle/kView/kOwning bit for decls
  bool via_this = false;     ///< target written through `this->`
};

bool assign_op(const Token& t) {
  if (t.kind != TokKind::kPunct) return false;
  return t.text == "=" || t.text == "+=" || t.text == "-=" ||
         t.text == "*=" || t.text == "/=";
}

/// Classifies the declared type spelled by effective indices
/// [from, to): viewish wins over handle wins over owning.
unsigned classify_type(const LexedFile& f, const std::vector<std::size_t>& eff,
                       std::size_t from, std::size_t to) {
  bool viewish = false, handle = false, owning = false, vec = false;
  for (std::size_t k = from; k < to; ++k) {
    const Token& t = f.tokens[eff[k]];
    if (t.kind == TokKind::kPunct && t.text == "*") viewish = true;
    if (t.kind != TokKind::kIdent) continue;
    if (viewish_type_word(t.text)) viewish = true;
    else if (t.text == "Arena") handle = true;
    else if (t.text == "vector" || t.text == "array" || t.text == "map" ||
             t.text == "set" || t.text == "deque")
      vec = true;
    else if (owning_type_word(t.text)) owning = true;
  }
  if (viewish) return kView;
  if (handle) return kHandle;
  if (owning || vec) return kOwning;
  return 0;
}

StmtShape parse_stmt(const LexedFile& f, const std::vector<std::size_t>& eff) {
  StmtShape shape;
  const auto& t = f.tokens;
  if (eff.empty()) return shape;
  // Leading keywords that never head a decl/assign we care about.
  const std::string& lead = t[eff[0]].text;
  if (lead == "return" || lead == "if" || lead == "while" || lead == "for" ||
      lead == "switch" || lead == "do" || lead == "break" ||
      lead == "continue" || lead == "case" || lead == "default" ||
      lead == "using" || lead == "throw")
    return shape;

  // Find the first depth-0 assignment operator.
  int depth = 0;
  std::size_t eq = eff.size();
  for (std::size_t k = 0; k < eff.size(); ++k) {
    const Token& tok = t[eff[k]];
    if (tok.kind == TokKind::kPunct) {
      const std::string& p = tok.text;
      if (p == "(" || p == "[" || p == "{") ++depth;
      else if (p == ")" || p == "]" || p == "}") --depth;
    }
    if (depth == 0 && assign_op(tok)) {
      eq = k;
      break;
    }
  }

  if (eq < eff.size()) {
    // LHS classification: a lone access chain is an assignment, more
    // than one bare identifier word is a declaration with initializer.
    std::size_t lhs_start = 0;
    bool dotted = false;
    std::size_t words = 0, last_word = eff.size();
    int d2 = 0;
    for (std::size_t k = lhs_start; k < eq; ++k) {
      const Token& tok = t[eff[k]];
      if (tok.kind == TokKind::kPunct) {
        const std::string& p = tok.text;
        if (p == "(" || p == "[" || p == "{") ++d2;
        else if (p == ")" || p == "]" || p == "}") --d2;
        else if (d2 == 0 && (p == "." || p == "->")) dotted = true;
        continue;
      }
      if (d2 != 0 || tok.kind != TokKind::kIdent) continue;
      if (k > 0) {
        const Token& prev = t[eff[k - 1]];
        if (prev.kind == TokKind::kPunct && prev.text == "::") continue;
      }
      ++words;
      last_word = k;
    }
    shape.rhs_from = eq + 1;
    shape.rhs_to = eff.size();
    if (!eff.empty() && is_punct(t[eff.back()], ";")) --shape.rhs_to;
    if (!dotted && words >= 2 && t[eff[eq]].text == "=") {
      shape.kind = StmtShape::kDecl;
      shape.target = t[eff[last_word]].text;
      shape.target_tok = eff[last_word];
      shape.decl_type = classify_type(f, eff, 0, last_word);
      return shape;
    }
    // Assignment: target is the head of the access chain.
    std::size_t head = 0;
    if (t[eff[0]].kind == TokKind::kIdent && t[eff[0]].text == "this" &&
        eq >= 2 && is_punct(t[eff[1]], "->")) {
      head = 2;
      shape.via_this = true;
    }
    if (head < eq && t[eff[head]].kind == TokKind::kIdent) {
      shape.kind = StmtShape::kAssign;
      shape.target = t[eff[head]].text;
      shape.target_tok = eff[head];
    }
    return shape;
  }

  // No '=': ctor-style declaration `Type name(...)` / `Type name{...}`
  // / `Type name;` — only when the pre-name tokens have no member
  // access (rules out `x.reserve(...)` expression statements).
  std::size_t words = 0, last_word = eff.size();
  bool dotted = false;
  for (std::size_t k = 0; k < eff.size(); ++k) {
    const Token& tok = t[eff[k]];
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == "." || tok.text == "->") dotted = true;
      if (tok.text == "(" || tok.text == "{" || tok.text == ";") break;
      continue;
    }
    if (tok.kind != TokKind::kIdent) continue;
    if (k > 0 && is_punct(t[eff[k - 1]], "::")) continue;
    ++words;
    last_word = k;
  }
  if (!dotted && words >= 2 && last_word < eff.size()) {
    shape.kind = StmtShape::kDecl;
    shape.target = t[eff[last_word]].text;
    shape.target_tok = eff[last_word];
    shape.decl_type = classify_type(f, eff, 0, last_word);
    shape.rhs_from = last_word + 1;
    shape.rhs_to = eff.size();
    if (shape.rhs_to > shape.rhs_from &&
        is_punct(t[eff[shape.rhs_to - 1]], ";"))
      --shape.rhs_to;
    return shape;
  }

  // Container append: `x.push_back(arg)` / `x.emplace_back(arg)`.
  for (std::size_t k = 0; k + 3 < eff.size(); ++k) {
    const Token& obj = t[eff[k]];
    if (obj.kind != TokKind::kIdent) continue;
    if (k > 0) {
      const Token& prev = t[eff[k - 1]];
      if (prev.kind == TokKind::kPunct &&
          (prev.text == "." || prev.text == "->" || prev.text == "::"))
        continue;
    }
    const Token& dot = t[eff[k + 1]];
    const Token& meth = t[eff[k + 2]];
    if (dot.kind != TokKind::kPunct || (dot.text != "." && dot.text != "->"))
      continue;
    if (meth.kind != TokKind::kIdent ||
        (meth.text != "push_back" && meth.text != "emplace_back" &&
         meth.text != "insert" && meth.text != "emplace"))
      continue;
    if (!is_punct(t[eff[k + 3]], "(")) continue;
    shape.kind = StmtShape::kAppend;
    shape.target = obj.text;
    shape.target_tok = eff[k];
    shape.rhs_from = k + 4;
    shape.rhs_to = eff.size();
    if (shape.rhs_to > shape.rhs_from &&
        is_punct(t[eff[shape.rhs_to - 1]], ";"))
      --shape.rhs_to;
    if (shape.rhs_to > shape.rhs_from &&
        is_punct(t[eff[shape.rhs_to - 1]], ")"))
      --shape.rhs_to;
    return shape;
  }
  return shape;
}

/// Does this statement reset an arena every view may point into? True
/// for `h.reset()` off a HANDLE and for `thread_scratch().reset()`.
bool resets_arena(const LexedFile& f, const std::vector<std::size_t>& eff,
                  const VarState& state) {
  const auto& t = f.tokens;
  for (std::size_t k = 2; k + 1 < eff.size(); ++k) {
    if (t[eff[k]].kind != TokKind::kIdent || t[eff[k]].text != "reset")
      continue;
    if (!is_punct(t[eff[k + 1]], "(")) continue;
    const Token& dot = t[eff[k - 1]];
    if (dot.kind != TokKind::kPunct || (dot.text != "." && dot.text != "->"))
      continue;
    const Token& recv = t[eff[k - 2]];
    if (recv.kind == TokKind::kIdent) {
      const auto it = state.find(recv.text);
      if (it != state.end() && (it->second & kHandle) != 0) return true;
    } else if (is_punct(recv, ")")) {
      // thread_scratch().reset() — look for the call name.
      for (std::size_t j = 0; j < k; ++j)
        if (t[eff[j]].kind == TokKind::kIdent &&
            t[eff[j]].text == "thread_scratch")
          return true;
    }
  }
  return false;
}

/// Entry state from the parameter list: `Arena&` params are handles,
/// View/Table/pointer params are (possibly) views.
VarState entry_from_params(const LexedFile& f, const FunctionDef& def) {
  VarState entry;
  const auto& t = f.tokens;
  unsigned pending = 0;
  for (std::size_t i = def.params_begin;
       i < def.params_end && i < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == ",") pending = 0;
      else if (tok.text == "*") pending |= kView;
      continue;
    }
    if (tok.kind != TokKind::kIdent) continue;
    if (tok.text == "Arena") {
      pending |= kHandle;
    } else if (viewish_type_word(tok.text)) {
      pending |= kView;
    } else if (i + 1 < t.size() &&
               (t[i + 1].kind != TokKind::kIdent) && pending != 0) {
      // Identifier followed by non-identifier: the parameter name.
      const Token& next = t[i + 1];
      if (next.kind == TokKind::kPunct &&
          (next.text == "," || next.text == ")" || next.text == "=")) {
        entry[tok.text] |= pending & kHandle ? kHandle : kView;
        pending = 0;
      }
    }
  }
  return entry;
}

struct DefUnit {
  const AnalyzedFile* af = nullptr;
  const FunctionDef* def = nullptr;
  Cfg cfg;
  VarState entry;
};

/// The transfer function: applies one statement's gen/kill to `state`.
/// When `returns_view_out` is non-null, a `return` of a view-producing
/// expression records the enclosing function name there.
void transfer_stmt(const LexedFile& f, const Stmt& s, VarState& state,
                   const std::set<std::string>& summary,
                   const std::string& def_name,
                   std::set<std::string>* returns_view_out) {
  const std::vector<std::size_t> eff = effective_tokens(f, s.begin, s.end);
  if (eff.empty()) return;
  const auto& t = f.tokens;

  if (t[eff[0]].kind == TokKind::kIdent && t[eff[0]].text == "return") {
    if (returns_view_out != nullptr &&
        produces_view(f, eff, 1, eff.size(), state, summary))
      returns_view_out->insert(def_name);
    return;
  }

  if (resets_arena(f, eff, state)) {
    for (auto& [name, bits] : state)
      if ((bits & kView) != 0) bits |= kStale;
    return;
  }

  const StmtShape shape = parse_stmt(f, eff);
  switch (shape.kind) {
    case StmtShape::kDecl: {
      unsigned bits = 0;
      if (shape.decl_type == kHandle) {
        bits = kHandle;
      } else if (shape.decl_type == kOwning) {
        bits = kOwning;
      } else {
        const bool tainted =
            produces_view(f, eff, shape.rhs_from, shape.rhs_to, state,
                          summary) ||
            (shape.decl_type == kView &&
             eff_mentions(f, eff, shape.rhs_from, shape.rhs_to, state,
                          kHandle | kView));
        if (tainted || (shape.decl_type == kView && shape.rhs_from == 0))
          bits = kView;
        else if (shape.decl_type == kView)
          bits = 0;  // view type of owning storage (view_of(factor))
      }
      state[shape.target] = bits;  // declaration kills prior facts
      break;
    }
    case StmtShape::kAssign:
    case StmtShape::kAppend: {
      auto it = state.find(shape.target);
      const bool owning = it != state.end() && (it->second & kOwning) != 0;
      if (owning) break;
      const bool tainted = produces_view(f, eff, shape.rhs_from,
                                         shape.rhs_to, state, summary) ||
                           eff_mentions(f, eff, shape.rhs_from, shape.rhs_to,
                                        state, kHandle | kView);
      if (tainted) state[shape.target] |= kView;
      break;
    }
    case StmtShape::kOther:
      break;
  }
}

bool is_member_name(const Project& project, const AnalyzedFile& af,
                    const FunctionDef& def, const std::string& name,
                    bool via_this) {
  if (via_this) return true;
  if (!def.class_name.empty()) {
    const ClassInfo* ci = project.find_class(af, def.class_name);
    if (ci != nullptr && ci->member(name) != nullptr) return true;
  }
  return name.size() > 1 && name.back() == '_';
}

/// Pool-dispatch capture check, flow-insensitive over the whole body.
void check_pool_captures(const Project& project, const AnalyzedFile& af,
                         const FunctionDef& def, const VarState& anywhere,
                         Reporter& rep) {
  const LexedFile& f = af.lex;
  const auto& t = f.tokens;
  const std::vector<LambdaRange> lambdas =
      find_lambdas(f, def.body_begin, def.body_end);
  if (lambdas.empty()) return;

  // Lambdas bound to a name: `auto task = [..]{..};`.
  std::map<std::string, const LambdaRange*> bound;
  for (const LambdaRange& lr : lambdas) {
    if (lr.intro >= 2 && is_punct(t[lr.intro - 1], "=") &&
        t[lr.intro - 2].kind == TokKind::kIdent)
      bound[t[lr.intro - 2].text] = &lr;
  }

  // Dispatch sites: pool-ish receiver . run/submit/enqueue/post ( args ).
  for (std::size_t i = def.body_begin; i + 3 < def.body_end; ++i) {
    const Token& recv = t[i];
    if (recv.kind != TokKind::kIdent ||
        recv.text.find("pool") == std::string::npos)
      continue;
    const Token& dot = t[i + 1];
    if (dot.kind != TokKind::kPunct || (dot.text != "." && dot.text != "->"))
      continue;
    const Token& meth = t[i + 2];
    if (meth.kind != TokKind::kIdent ||
        (meth.text != "run" && meth.text != "submit" &&
         meth.text != "enqueue" && meth.text != "post" &&
         meth.text != "dispatch"))
      continue;
    if (!is_punct(t[i + 3], "(")) continue;
    // Argument range.
    int depth = 0;
    std::size_t arg_end = def.body_end;
    for (std::size_t j = i + 3; j < def.body_end; ++j) {
      if (is_punct(t[j], "(")) ++depth;
      else if (is_punct(t[j], ")") && --depth == 0) {
        arg_end = j;
        break;
      }
    }
    // Candidate lambdas: defined inside the args, or bound names used.
    std::vector<const LambdaRange*> cands;
    for (const LambdaRange& lr : lambdas)
      if (lr.intro > i + 3 && lr.intro < arg_end) cands.push_back(&lr);
    for (std::size_t j = i + 4; j < arg_end; ++j) {
      if (t[j].kind != TokKind::kIdent) continue;
      const auto it = bound.find(t[j].text);
      if (it != bound.end()) cands.push_back(it->second);
    }
    std::sort(cands.begin(), cands.end());
    cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
    for (const LambdaRange* lr : cands) {
      // Plain identifier scan of the callback body (nested lambdas
      // inside it count too — they run on the pool thread).
      std::string who;
      bool hit = false;
      for (std::size_t j = lr->body_begin; j < lr->body_end; ++j) {
        if (t[j].kind != TokKind::kIdent) continue;
        if (j > lr->body_begin && t[j - 1].kind == TokKind::kPunct &&
            (t[j - 1].text == "." || t[j - 1].text == "->" ||
             t[j - 1].text == "::"))
          continue;
        const auto it = anywhere.find(t[j].text);
        if (it != anywhere.end() &&
            (it->second & (kView | kHandle | kStale)) != 0) {
          who = t[j].text;
          hit = true;
          break;
        }
      }
      if (!hit) continue;
      rep.report(f, t[lr->intro].line, kRule,
                 "arena-backed value '" + who +
                     "' captured by a thread-pool callback; "
                     "thread_scratch() arenas are per-thread and their "
                     "views must not cross a dispatch boundary");
    }
  }
  (void)project;
  (void)def;
}

}  // namespace

void pass_arena(const Project& project, Reporter& rep) {
  if (!rep.enabled(kRule)) return;

  // Build CFGs once per definition.
  std::vector<DefUnit> units;
  for (const auto& af : project.files) {
    for (const auto& def : af.model.defs) {
      DefUnit u;
      u.af = &af;
      u.def = &def;
      u.cfg = build_cfg(af.lex, def);
      u.entry = entry_from_params(af.lex, def);
      units.push_back(std::move(u));
    }
  }

  // Per-root returns-a-view summaries, iterated to a fixpoint: callees
  // defined later (or in other files of the root) still propagate.
  std::map<std::string, std::set<std::string>> summaries;
  for (bool grew = true; grew;) {
    grew = false;
    for (const DefUnit& u : units) {
      std::set<std::string>& summary = summaries[u.af->lex.root];
      const std::size_t before = summary.size();
      const LexedFile& f = u.af->lex;
      const std::string name = u.def->name;
      ForwardAnalysis fa(u.cfg, u.entry,
                         [&f, &summary, &name](const Stmt& s, VarState& st) {
                           transfer_stmt(f, s, st, summary, name, &summary);
                         });
      (void)fa;
      if (summary.size() != before) grew = true;
    }
  }

  // Final pass: replay the fixpoint and report.
  for (const DefUnit& u : units) {
    const LexedFile& f = u.af->lex;
    const std::set<std::string>& summary = summaries[u.af->lex.root];
    const std::string name = u.def->name;
    ForwardAnalysis fa(u.cfg, u.entry,
                       [&f, &summary, &name](const Stmt& s, VarState& st) {
                         transfer_stmt(f, s, st, summary, name, nullptr);
                       });
    fa.replay([&](const Stmt& s, const VarState& state) {
      const std::vector<std::size_t> eff =
          effective_tokens(f, s.begin, s.end);
      if (eff.empty()) return;
      const std::size_t line = f.tokens[eff[0]].line;
      // 1. Use after reset.
      std::string who;
      if (eff_mentions(f, eff, 0, eff.size(), state, kStale, &who)) {
        rep.report(f, line, kRule,
                   "arena-backed view '" + who +
                       "' used after Arena::reset(); the storage it points "
                       "into has been recycled — materialize an owning "
                       "Factor/vector before the reset");
        return;  // one finding per statement
      }
      // 2. View stored into a member.
      const StmtShape shape = parse_stmt(f, eff);
      if ((shape.kind == StmtShape::kAssign ||
           shape.kind == StmtShape::kAppend) &&
          is_member_name(project, *u.af, *u.def, shape.target,
                         shape.via_this) &&
          produces_view(f, eff, shape.rhs_from, shape.rhs_to, state,
                        summary)) {
        rep.report(f, line, kRule,
                   "arena-backed view stored into member '" + shape.target +
                       "'; the member outlives the next Arena::reset() — "
                       "copy into owning storage instead");
      }
    });
    // 3. Pool captures.
    check_pool_captures(project, *u.af, *u.def, fa.anywhere(), rep);
  }
}

}  // namespace sysuq_analyze
