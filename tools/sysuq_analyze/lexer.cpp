#include "sysuq_analyze/lexer.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <iostream>
#include <sstream>

namespace sysuq_analyze {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Longest-first list of multi-character punctuators we must not split
// (the passes care about ==, !=, compound assignments and ++/--).
constexpr std::array<const char*, 24> kPuncts = {
    "<<=", ">>=", "->*", "...", "<=>", "::", "->", "++", "--", "<<", ">>",
    "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|="};

// The parenthesized operand of `marker(` on `line`, or "" when absent.
std::string marker_operand(const std::string& line, const std::string& marker) {
  const std::size_t pos = line.find(marker);
  if (pos == std::string::npos) return "";
  const std::size_t start = pos + marker.size();
  const std::size_t close = line.find(')', start);
  if (close == std::string::npos) return "";
  return line.substr(start, close - start);
}

// Splits a comma-separated operand list, trimming blanks.
std::set<std::string> split_operands(const std::string& body) {
  std::set<std::string> out;
  std::size_t pos = 0;
  while (pos <= body.size()) {
    std::size_t comma = body.find(',', pos);
    if (comma == std::string::npos) comma = body.size();
    std::size_t b = pos, e = comma;
    while (b < e && (body[b] == ' ' || body[b] == '\t')) ++b;
    while (e > b && (body[e - 1] == ' ' || body[e - 1] == '\t')) --e;
    if (e > b) out.insert(body.substr(b, e - b));
    pos = comma + 1;
  }
  return out;
}

// Scans the sysuq-* markers on one raw line: lint-allow(rule),
// atomic-order(order), guarded-by(mutex), requires(mu, ...),
// excludes(mu, ...) and thread-confined(role).
void scan_markers(const std::string& line, std::size_t lineno, LexedFile& out) {
  static const std::string kAllow = "sysuq-lint-allow(";
  for (std::size_t pos = line.find(kAllow); pos != std::string::npos;
       pos = line.find(kAllow, pos + 1)) {
    const std::size_t start = pos + kAllow.size();
    const std::size_t close = line.find(')', start);
    if (close != std::string::npos)
      out.allows[lineno].insert(line.substr(start, close - start));
  }
  if (const std::string v = marker_operand(line, "sysuq-atomic-order(");
      !v.empty())
    out.atomic_orders[lineno] = v;
  if (const std::string v = marker_operand(line, "sysuq-guarded-by(");
      !v.empty())
    out.guarded_by[lineno] = v;
  if (const std::string v = marker_operand(line, "sysuq-requires(");
      !v.empty())
    out.requires_locks[lineno] = split_operands(v);
  if (const std::string v = marker_operand(line, "sysuq-excludes(");
      !v.empty())
    out.excludes_locks[lineno] = split_operands(v);
  if (const std::string v = marker_operand(line, "sysuq-thread-confined(");
      !v.empty())
    out.confined[lineno] = v;
}

struct Scanner {
  const std::string& s;
  std::size_t i = 0;
  std::size_t line = 1;
  std::size_t line_start = 0;

  [[nodiscard]] bool eof() const { return i >= s.size(); }
  [[nodiscard]] char cur() const { return s[i]; }
  [[nodiscard]] char peek(std::size_t k = 1) const {
    return i + k < s.size() ? s[i + k] : '\0';
  }
  void advance() {
    if (s[i] == '\n') {
      ++line;
      line_start = i + 1;
    }
    ++i;
  }
  [[nodiscard]] std::size_t col() const { return i - line_start; }
};

// Consumes a quoted or angled include path from a directive body.
void parse_include(const std::string& body, std::size_t lineno,
                   LexedFile& out) {
  std::size_t j = 0;
  while (j < body.size() && (body[j] == ' ' || body[j] == '\t')) ++j;
  if (j >= body.size()) return;
  const char open = body[j];
  char close = 0;
  if (open == '"') close = '"';
  if (open == '<') close = '>';
  if (close == 0) return;
  const std::size_t end = body.find(close, j + 1);
  if (end == std::string::npos) return;
  out.includes.push_back(
      {body.substr(j + 1, end - j - 1), lineno, open == '<'});
}

}  // namespace

bool LexedFile::allowed(std::size_t line, const std::string& rule) const {
  const auto it = allows.find(line);
  return it != allows.end() && it->second.count(rule) > 0;
}

void lex(const std::string& text, LexedFile& out) {
  // Raw lines for marker scanning and reporting context.
  {
    std::istringstream in(text);
    std::string l;
    std::size_t n = 1;
    while (std::getline(in, l)) {
      scan_markers(l, n, out);
      out.lines.push_back(std::move(l));
      ++n;
    }
  }

  Scanner sc{text};
  bool at_line_start = true;  // only whitespace seen so far on this line
  while (!sc.eof()) {
    const char c = sc.cur();

    if (c == '\n') {
      at_line_start = true;
      sc.advance();
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      sc.advance();
      continue;
    }

    // Comments.
    if (c == '/' && sc.peek() == '/') {
      while (!sc.eof() && sc.cur() != '\n') sc.advance();
      continue;
    }
    if (c == '/' && sc.peek() == '*') {
      sc.advance();
      sc.advance();
      while (!sc.eof() && !(sc.cur() == '*' && sc.peek() == '/')) sc.advance();
      if (!sc.eof()) {
        sc.advance();
        sc.advance();
      }
      continue;
    }

    // Preprocessor directive: consume the logical line (with \-splices),
    // recording #include paths. Directive tokens never reach the stream.
    if (c == '#' && at_line_start) {
      const std::size_t dir_line = sc.line;
      std::string body;
      sc.advance();  // '#'
      while (!sc.eof()) {
        if (sc.cur() == '\\' && sc.peek() == '\n') {
          sc.advance();
          sc.advance();
          continue;
        }
        if (sc.cur() == '\n') break;
        // A // comment ends the directive body.
        if (sc.cur() == '/' && sc.peek() == '/') break;
        body += sc.cur();
        sc.advance();
      }
      std::size_t j = 0;
      while (j < body.size() && (body[j] == ' ' || body[j] == '\t')) ++j;
      if (body.compare(j, 7, "include") == 0)
        parse_include(body.substr(j + 7), dir_line, out);
      continue;
    }
    at_line_start = false;

    // Identifier (or raw-string prefix).
    if (ident_start(c)) {
      const std::size_t line0 = sc.line, col0 = sc.col();
      std::string id;
      while (!sc.eof() && ident_char(sc.cur())) {
        id += sc.cur();
        sc.advance();
      }
      // Raw string literal: prefix immediately followed by '"'.
      const bool raw_prefix = id == "R" || id == "u8R" || id == "uR" ||
                              id == "LR" || id == "UR";
      if (raw_prefix && !sc.eof() && sc.cur() == '"') {
        sc.advance();  // '"'
        std::string delim;
        while (!sc.eof() && sc.cur() != '(') {
          delim += sc.cur();
          sc.advance();
        }
        if (!sc.eof()) sc.advance();  // '('
        const std::string closer = ")" + delim + "\"";
        std::string body;
        while (!sc.eof()) {
          if (sc.s.compare(sc.i, closer.size(), closer) == 0) {
            for (std::size_t k = 0; k < closer.size(); ++k) sc.advance();
            break;
          }
          body += sc.cur();
          sc.advance();
        }
        out.tokens.push_back({TokKind::kString, body, line0, col0});
        continue;
      }
      // Ordinary string/char prefix (u8"...", L'x', ...): fold the
      // prefix into the literal that follows.
      const bool lit_prefix =
          (id == "u8" || id == "u" || id == "U" || id == "L") && !sc.eof() &&
          (sc.cur() == '"' || sc.cur() == '\'');
      if (!lit_prefix) {
        out.tokens.push_back({TokKind::kIdent, id, line0, col0});
        continue;
      }
      // fall through to the literal scanners below with the prefix eaten
    }

    // String literal.
    if (sc.cur() == '"') {
      const std::size_t line0 = sc.line, col0 = sc.col();
      sc.advance();
      std::string body;
      while (!sc.eof() && sc.cur() != '"' && sc.cur() != '\n') {
        if (sc.cur() == '\\') {
          body += sc.cur();
          sc.advance();
          if (sc.eof()) break;
        }
        body += sc.cur();
        sc.advance();
      }
      if (!sc.eof() && sc.cur() == '"') sc.advance();
      out.tokens.push_back({TokKind::kString, body, line0, col0});
      continue;
    }

    // Character literal.
    if (sc.cur() == '\'') {
      const std::size_t line0 = sc.line, col0 = sc.col();
      sc.advance();
      std::string body;
      while (!sc.eof() && sc.cur() != '\'' && sc.cur() != '\n') {
        if (sc.cur() == '\\') {
          body += sc.cur();
          sc.advance();
          if (sc.eof()) break;
        }
        body += sc.cur();
        sc.advance();
      }
      if (!sc.eof() && sc.cur() == '\'') sc.advance();
      out.tokens.push_back({TokKind::kChar, body, line0, col0});
      continue;
    }

    // pp-number: digits, '.', exponent signs, suffix letters, and digit
    // separators (1'000'000 — the separator that broke the old stripper).
    if (digit(sc.cur()) || (sc.cur() == '.' && digit(sc.peek()))) {
      const std::size_t line0 = sc.line, col0 = sc.col();
      std::string num;
      while (!sc.eof()) {
        const char d = sc.cur();
        if (ident_char(d) || d == '.') {
          num += d;
          sc.advance();
          if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') && !sc.eof() &&
              (sc.cur() == '+' || sc.cur() == '-') &&
              num.find('x') == std::string::npos &&
              num.find('X') == std::string::npos) {
            num += sc.cur();
            sc.advance();
          }
          continue;
        }
        // Digit separator. Hex/binary groups can start with a letter
        // (0xDEAD'BEEF), so any identifier character continues the
        // number — requiring a decimal digit here used to end the token
        // at the separator and mis-lex the rest as a char literal that
        // swallowed everything to the end of the line.
        if (d == '\'' && ident_char(sc.peek())) {
          sc.advance();
          continue;
        }
        break;
      }
      out.tokens.push_back({TokKind::kNumber, num, line0, col0});
      continue;
    }

    // Punctuator, maximal munch.
    {
      const std::size_t line0 = sc.line, col0 = sc.col();
      std::string p;
      for (const char* multi : kPuncts) {
        const std::size_t len = std::string(multi).size();
        if (sc.s.compare(sc.i, len, multi) == 0) {
          p = multi;
          break;
        }
      }
      if (p.empty()) p = std::string(1, sc.cur());
      for (std::size_t k = 0; k < p.size(); ++k) sc.advance();
      out.tokens.push_back({TokKind::kPunct, p, line0, col0});
    }
  }
}

bool lex_file(const std::filesystem::path& path, LexedFile& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "sysuq_analyze: cannot read " << path << "\n";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  out.abs_path = path;
  lex(buf.str(), out);
  return true;
}

bool is_float_literal(const Token& t) {
  if (t.kind != TokKind::kNumber) return false;
  const std::string& s = t.text;
  if (s.size() > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X'))
    return false;  // hex; 0x1p3 hex floats are not worth flagging
  if (s.find('.') != std::string::npos) return true;
  return s.find('e') != std::string::npos || s.find('E') != std::string::npos;
}

int negative_exponent_of(const Token& t) {
  if (t.kind != TokKind::kNumber) return 0;
  const std::string& s = t.text;
  if (s.size() > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) return 0;
  std::size_t e = s.find_first_of("eE");
  if (e == std::string::npos || e + 2 >= s.size() + 1) return 0;
  if (s[e + 1] != '-') return 0;
  int exp = 0;
  for (std::size_t j = e + 2; j < s.size() && digit(s[j]); ++j)
    exp = exp * 10 + (s[j] - '0');
  return exp;
}

}  // namespace sysuq_analyze
