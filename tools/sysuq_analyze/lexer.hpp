// Shared C++ lexer for sysuq_analyze.
//
// The PR-4 line-lint stripped comments and strings with a per-line state
// machine and had to be bugfixed twice (digit separators, include paths
// inside blanked strings). This lexer replaces it with a real tokenizer:
// comments vanish, string/char literals (including raw strings) become
// single tokens that keep their body, preprocessor directives are parsed
// for includes and otherwise skipped, and every token carries its line
// so passes report precise locations.
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace sysuq_analyze {

enum class TokKind {
  kIdent,   ///< identifier or keyword
  kNumber,  ///< pp-number (integer or floating literal, with suffixes)
  kString,  ///< string literal; text holds the body without quotes
  kChar,    ///< character literal; text holds the body without quotes
  kPunct,   ///< operator or punctuator (maximal munch)
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  std::size_t line = 0;  ///< 1-based
  std::size_t col = 0;   ///< 0-based byte offset within the line
};

/// One #include directive.
struct IncludeDirective {
  std::string path;
  std::size_t line = 0;
  bool angled = false;  ///< <...> instead of "..."
};

/// A lexed source file plus the metadata every pass needs.
struct LexedFile {
  std::filesystem::path abs_path;
  std::string rel;     ///< path relative to its scan root (generic form)
  std::string root;    ///< the scan root as given on the command line
  std::string module_name;  ///< first rel component when it names a module
  bool is_header = false;
  bool is_source = false;  ///< .cpp/.cc/.cxx

  std::vector<std::string> lines;  ///< raw text, for marker scanning
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;

  /// line -> rules suppressed by `// sysuq-lint-allow(<rule>): reason`.
  std::map<std::size_t, std::set<std::string>> allows;
  /// line -> declared order from `// sysuq-atomic-order(<order>)`.
  std::map<std::size_t, std::string> atomic_orders;
  /// line -> mutex named by `// sysuq-guarded-by(<mutex>)` on a member.
  std::map<std::size_t, std::string> guarded_by;
  /// line -> locks from `// sysuq-requires(<mu>[, <mu>...])` on a function.
  std::map<std::size_t, std::set<std::string>> requires_locks;
  /// line -> locks from `// sysuq-excludes(<mu>[, <mu>...])` on a function.
  std::map<std::size_t, std::set<std::string>> excludes_locks;
  /// line -> role from `// sysuq-thread-confined(owner|worker|init)` on a
  /// member or type.
  std::map<std::size_t, std::string> confined;

  /// True when `rule` is suppressed on `line` (1-based).
  [[nodiscard]] bool allowed(std::size_t line, const std::string& rule) const;
};

/// Tokenizes `text` into `out` (tokens/includes/allows/lines). Never
/// throws on malformed input: unterminated constructs consume the rest
/// of the file, which is the useful behaviour for a linter.
void lex(const std::string& text, LexedFile& out);

/// Reads and lexes `path`. Returns false (and reports to stderr) when
/// the file cannot be read.
bool lex_file(const std::filesystem::path& path, LexedFile& out);

/// True for a floating-point literal token ("1.0", ".5", "2e-12", not
/// "0x1f", not "42").
[[nodiscard]] bool is_float_literal(const Token& t);

/// For a literal like "3e-12" or "1.5E-9" returns the (positive) decimal
/// exponent; 0 when the token has no negative decimal exponent.
[[nodiscard]] int negative_exponent_of(const Token& t);

}  // namespace sysuq_analyze
