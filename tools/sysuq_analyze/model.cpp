#include "sysuq_analyze/model.hpp"

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace sysuq_analyze {

namespace {

bool is_ident(const Token& t, const char* s) {
  return t.kind == TokKind::kIdent && t.text == s;
}
bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}

constexpr std::array<const char*, 4> kMutexTypes = {
    "mutex", "shared_mutex", "recursive_mutex", "timed_mutex"};

// Lines a declaration at `line` may carry a marker on: the line itself
// plus the contiguous block of // comment lines directly above it (the
// same window the allow-marker suppression uses), so annotations can
// ride a doc comment instead of stretching the declaration line.
std::vector<std::size_t> marker_lines(const LexedFile& f, std::size_t line) {
  std::vector<std::size_t> out{line};
  for (std::size_t l = line; l > 1;) {
    --l;
    const std::string& text = l - 1 < f.lines.size() ? f.lines[l - 1] : "";
    const std::size_t first = text.find_first_not_of(" \t");
    if (first == std::string::npos || text.compare(first, 2, "//") != 0) break;
    out.push_back(l);
  }
  return out;
}

// First marker value found for the declaration at `line` in `map`
// (declaration line first, then the comment block above, nearest line
// winning); nullptr when absent.
template <class Map>
const typename Map::mapped_type* find_marker(const LexedFile& f,
                                             const Map& map,
                                             std::size_t line) {
  for (const std::size_t l : marker_lines(f, line)) {
    const auto it = map.find(l);
    if (it != map.end()) return &it->second;
  }
  return nullptr;
}

struct Scope {
  enum class Kind { kNamespace, kClass };
  Kind kind = Kind::kNamespace;
  bool public_access = true;
  std::size_t class_index = static_cast<std::size_t>(-1);  // into classes
  std::string class_name;
};

class Parser {
 public:
  Parser(const LexedFile& file, FileModel& out) : f_(file), out_(out) {}

  void run() {
    const auto& t = f_.tokens;
    while (i_ < t.size()) {
      if (!step()) ++i_;  // never stall on unrecognized input
    }
  }

 private:
  const LexedFile& f_;
  FileModel& out_;
  std::size_t i_ = 0;
  std::vector<Scope> scopes_;
  bool pending_template_ = false;

  [[nodiscard]] const std::vector<Token>& toks() const { return f_.tokens; }

  [[nodiscard]] Scope* current_class() {
    if (!scopes_.empty() && scopes_.back().kind == Scope::Kind::kClass)
      return &scopes_.back();
    return nullptr;
  }

  // Advances j past a balanced pair starting at j (which must hold
  // `open`). Returns one past the matching closer, or tokens.size().
  [[nodiscard]] std::size_t skip_balanced(std::size_t j, const char* open,
                                          const char* close) const {
    int depth = 0;
    const auto& t = toks();
    for (; j < t.size(); ++j) {
      if (is_punct(t[j], open)) ++depth;
      else if (is_punct(t[j], close) && --depth == 0) return j + 1;
    }
    return j;
  }

  // Skips to one past the next ';' at brace/paren/bracket depth 0 —
  // lambda bodies and brace initializers do not terminate the statement.
  [[nodiscard]] std::size_t skip_to_semi(std::size_t j) const {
    const auto& t = toks();
    int depth = 0;
    for (; j < t.size(); ++j) {
      const std::string& p = t[j].text;
      if (t[j].kind != TokKind::kPunct) continue;
      if (p == "(" || p == "{" || p == "[") ++depth;
      else if (p == ")" || p == "}" || p == "]") --depth;
      else if (p == ";" && depth <= 0) return j + 1;
    }
    return j;
  }

  // Skips a template parameter/argument list starting at a '<'.
  [[nodiscard]] std::size_t skip_angles(std::size_t j) const {
    const auto& t = toks();
    int depth = 0;
    for (; j < t.size(); ++j) {
      if (t[j].kind != TokKind::kPunct) continue;
      if (t[j].text == "<") ++depth;
      else if (t[j].text == ">") {
        if (--depth == 0) return j + 1;
      } else if (t[j].text == ">>") {
        depth -= 2;
        if (depth <= 0) return j + 1;
      } else if (t[j].text == ";" || t[j].text == "{")
        return j;  // malformed; bail
    }
    return j;
  }

  bool step() {
    const auto& t = toks();
    const Token& tok = t[i_];

    if (is_punct(tok, "}")) {
      if (!scopes_.empty()) scopes_.pop_back();
      ++i_;
      return true;
    }
    if (is_punct(tok, ";")) {
      ++i_;
      return true;
    }
    if (is_ident(tok, "template")) {
      pending_template_ = true;
      if (i_ + 1 < t.size() && is_punct(t[i_ + 1], "<"))
        i_ = skip_angles(i_ + 1);
      else
        ++i_;
      return true;
    }
    if (is_ident(tok, "namespace")) {
      std::size_t j = i_ + 1;
      while (j < t.size() && !is_punct(t[j], "{") && !is_punct(t[j], ";") &&
             !is_punct(t[j], "="))
        ++j;
      if (j < t.size() && is_punct(t[j], "{")) {
        scopes_.push_back({Scope::Kind::kNamespace, true, {}, {}});
        i_ = j + 1;
      } else {
        i_ = skip_to_semi(j);
      }
      return true;
    }
    if (is_ident(tok, "enum")) {
      std::size_t j = i_ + 1;
      while (j < t.size() && !is_punct(t[j], "{") && !is_punct(t[j], ";")) ++j;
      if (j < t.size() && is_punct(t[j], "{")) j = skip_balanced(j, "{", "}");
      i_ = skip_to_semi(j);
      return true;
    }
    if ((is_ident(tok, "class") || is_ident(tok, "struct")) &&
        (i_ == 0 || !is_ident(t[i_ - 1], "enum"))) {
      return parse_class(is_ident(tok, "struct"));
    }
    if ((is_ident(tok, "public") || is_ident(tok, "private") ||
         is_ident(tok, "protected")) &&
        i_ + 1 < t.size() && is_punct(t[i_ + 1], ":")) {
      if (Scope* cs = current_class()) cs->public_access = tok.text == "public";
      i_ += 2;
      return true;
    }
    if (is_ident(tok, "using") || is_ident(tok, "typedef") ||
        is_ident(tok, "friend") || is_ident(tok, "extern")) {
      pending_template_ = false;
      i_ = skip_to_semi(i_);
      return true;
    }
    return parse_declaration();
  }

  bool parse_class(bool is_struct) {
    const auto& t = toks();
    std::size_t j = i_ + 1;
    while (j < t.size() && is_punct(t[j], "[")) j = skip_balanced(j, "[", "]");
    std::string name;
    if (j < t.size() && t[j].kind == TokKind::kIdent) {
      name = t[j].text;
      ++j;
      // Out-of-line nested class: `class Outer::Inner { ... }` — the
      // class being defined is the last qualified component.
      while (j + 1 < t.size() && is_punct(t[j], "::") &&
             t[j + 1].kind == TokKind::kIdent) {
        name = t[j + 1].text;
        j += 2;
      }
      if (j < t.size() && is_ident(t[j], "final")) ++j;
    }
    // Forward declaration, definition, or something else entirely.
    while (j < t.size() && !is_punct(t[j], "{") && !is_punct(t[j], ";") &&
           !is_punct(t[j], "(")) {
      if (is_punct(t[j], "<")) {
        j = skip_angles(j);
        continue;
      }
      ++j;
    }
    if (j >= t.size() || !is_punct(t[j], "{")) {
      pending_template_ = false;
      i_ = skip_to_semi(j);
      return true;
    }
    ClassInfo ci;
    ci.module_name = f_.module_name;
    ci.name = name;
    ci.file_rel = f_.rel;
    if (const auto* c = find_marker(f_, f_.confined, t[i_].line))
      ci.confined = *c;
    out_.classes.push_back(ci);
    scopes_.push_back(
        {Scope::Kind::kClass, is_struct, out_.classes.size() - 1, name});
    pending_template_ = false;
    i_ = j + 1;
    return true;
  }

  // Parses one declaration statement at namespace/class scope: either a
  // data member / variable, a function declaration, or a definition.
  bool parse_declaration() {
    const auto& t = toks();
    const std::size_t start = i_;
    const bool was_template = pending_template_;
    pending_template_ = false;

    bool saw_inline = false, saw_static = false, saw_operator = false;
    std::size_t j = start;
    int angle_depth = 0;
    std::size_t paren = t.size();  // first '(' at angle depth 0
    std::size_t terminator = t.size();
    char term = 0;
    for (; j < t.size(); ++j) {
      const Token& tk = t[j];
      if (tk.kind == TokKind::kIdent) {
        if (tk.text == "inline" || tk.text == "constexpr" ||
            tk.text == "consteval")
          saw_inline = true;
        else if (tk.text == "static")
          saw_static = true;
        else if (tk.text == "operator")
          saw_operator = true;
        continue;
      }
      if (tk.kind != TokKind::kPunct) continue;
      const std::string& p = tk.text;
      if (p == "[") {
        j = skip_balanced(j, "[", "]") - 1;
        continue;
      }
      if (p == "<") {
        ++angle_depth;
        continue;
      }
      if (p == ">") {
        if (angle_depth > 0) --angle_depth;
        continue;
      }
      if (p == ">>") {
        angle_depth = angle_depth >= 2 ? angle_depth - 2 : 0;
        continue;
      }
      if (angle_depth > 0) continue;
      if (p == "(") {
        paren = j;
        break;
      }
      if (p == ";" || p == "{" || p == "=") {
        terminator = j;
        term = p[0];
        break;
      }
    }

    if (paren == t.size()) {
      // No parens: data member / variable / stray tokens.
      handle_data_member(start, terminator, term, saw_static);
      return true;
    }
    return handle_functionish(start, paren, was_template, saw_inline,
                              saw_static, saw_operator);
  }

  void handle_data_member(std::size_t start, std::size_t terminator,
                          char term, bool saw_static) {
    const auto& t = toks();
    if (terminator >= t.size()) {
      i_ = t.size();
      return;
    }
    Scope* cs = current_class();
    if (cs != nullptr && !saw_static && terminator > start) {
      // Name: last identifier before the terminator (arrays: before '[').
      std::size_t name_idx = t.size();
      for (std::size_t k = terminator; k-- > start;) {
        if (t[k].kind == TokKind::kIdent) {
          name_idx = k;
          break;
        }
        if (!is_punct(t[k], "]") && !is_punct(t[k], "[") &&
            t[k].kind != TokKind::kNumber)
          break;
      }
      if (name_idx != t.size()) {
        MemberVar m;
        m.name = t[name_idx].text;
        m.line = t[name_idx].line;
        for (std::size_t k = start; k < name_idx; ++k) {
          if (!m.type_text.empty()) m.type_text += ' ';
          m.type_text += t[k].text;
          if (t[k].kind == TokKind::kIdent) {
            if (t[k].text == "atomic") m.is_atomic = true;
            for (const char* mt : kMutexTypes)
              if (t[k].text == mt) m.is_mutex = true;
          }
        }
        if (const auto it = f_.atomic_orders.find(m.line);
            it != f_.atomic_orders.end())
          m.declared_order = it->second;
        if (const auto* g = find_marker(f_, f_.guarded_by, m.line))
          m.guarded_by = *g;
        if (const auto* c = find_marker(f_, f_.confined, m.line))
          m.confined = *c;
        if (!m.type_text.empty()) {
          auto& ci = out_.classes[cs->class_index];
          ci.members.push_back(m);
          if (m.is_mutex) ci.owns_mutex = true;
        }
      }
    }
    if (term == '{') {
      std::size_t j = skip_balanced(terminator, "{", "}");
      i_ = skip_to_semi(j);
    } else {
      i_ = skip_to_semi(terminator);
    }
  }

  // From the '(' of a declarator: classify declaration vs definition,
  // record it, and advance past it.
  bool handle_functionish(std::size_t start, std::size_t paren,
                          bool was_template, bool saw_inline, bool saw_static,
                          bool saw_operator) {
    const auto& t = toks();
    // Qualified name chain ending just before '('.
    std::string name, class_qual;
    std::size_t name_line = t[paren].line;
    bool is_dtor = false;
    if (paren > start && t[paren - 1].kind == TokKind::kIdent) {
      std::size_t k = paren - 1;
      name = t[k].text;
      name_line = t[k].line;
      if (k > start && is_punct(t[k - 1], "~")) is_dtor = true;
      // Walk back over Foo::Bar:: qualifiers (skipping ~ for dtors).
      std::size_t q = is_dtor ? k - 1 : k;
      while (q >= start + 2 && is_punct(t[q - 1], "::") &&
             t[q - 2].kind == TokKind::kIdent) {
        class_qual = t[q - 2].text;
        q -= 2;
        break;  // nearest qualifier is the class
      }
    }

    std::size_t j = skip_balanced(paren, "(", ")");
    // Trailer: cv, ref-qualifiers, noexcept(...), attributes, trailing
    // return; ends at '{' (definition), ';' (declaration) or '='
    // (default/delete/pure).
    bool found_body = false, found_decl = false, found_eq = false;
    while (j < toks().size()) {
      const Token& tk = toks()[j];
      if (is_punct(tk, "{")) {
        found_body = true;
        break;
      }
      if (is_punct(tk, ";")) {
        found_decl = true;
        break;
      }
      if (is_punct(tk, "=")) {
        found_eq = true;
        break;
      }
      if (is_punct(tk, ":")) {  // ctor-init list
        j = skip_ctor_init(j + 1);
        continue;
      }
      if (is_punct(tk, "(")) {
        j = skip_balanced(j, "(", ")");
        continue;
      }
      if (is_punct(tk, "[")) {
        j = skip_balanced(j, "[", "]");
        continue;
      }
      if (is_punct(tk, "<")) {
        j = skip_angles(j);
        continue;
      }
      if (is_punct(tk, ",")) {
        // `int a(1), b(2);` — variable list, not a function.
        i_ = skip_to_semi(j);
        return true;
      }
      ++j;
    }

    Scope* cs = current_class();
    const std::string enclosing_class =
        cs != nullptr ? cs->class_name : std::string();
    const std::string cls =
        !class_qual.empty() ? class_qual : enclosing_class;
    const bool is_ctor =
        !is_dtor && !name.empty() && !cls.empty() && name == cls;

    if (found_body) {
      FunctionDef def;
      def.class_name = cls;
      def.name = name;
      def.line = name_line;
      def.body_begin = j;
      def.body_end = skip_balanced(j, "{", "}");
      def.params_begin = paren;
      def.params_end = skip_balanced(paren, "(", ")");
      def.is_ctor = is_ctor;
      def.is_dtor = is_dtor;
      def.in_header = f_.is_header;
      def.has_params =
          !(paren + 1 < t.size() &&
            (is_punct(t[paren + 1], ")") ||
             (is_ident(t[paren + 1], "void") && paren + 2 < t.size() &&
              is_punct(t[paren + 2], ")"))));
      if (const auto* r = find_marker(f_, f_.requires_locks, name_line))
        def.requires_locks = *r;
      if (const auto* e = find_marker(f_, f_.excludes_locks, name_line))
        def.excludes_locks = *e;
      if (!was_template && !name.empty() && !saw_operator)
        out_.defs.push_back(def);
      i_ = def.body_end;
      return true;
    }
    if (found_decl || found_eq) {
      const bool defaultish = found_eq;  // = default / = delete / = 0
      const bool eligible = !defaultish && !was_template && !saw_inline &&
                            !saw_operator && !is_dtor && !name.empty() &&
                            name != "static_assert" && f_.is_header;
      if (eligible) {
        if (cs != nullptr && cs->public_access) {
          FunctionDecl d{name, name_line, true, {}, {}};
          out_.classes[cs->class_index].public_decls.push_back(d);
        } else if (cs == nullptr && !saw_static) {
          out_.free_decls.push_back({name, name_line, true, {}, {}});
        }
      }
      // Lock contracts attach to any member declaration, even ones that
      // are not contract-coverage-eligible (inline, private, templated):
      // the thread-safety passes union them with the definition's.
      if (cs != nullptr && !name.empty()) {
        FunctionDecl d{name, name_line, cs->public_access, {}, {}};
        if (const auto* r = find_marker(f_, f_.requires_locks, name_line))
          d.requires_locks = *r;
        if (const auto* e = find_marker(f_, f_.excludes_locks, name_line))
          d.excludes_locks = *e;
        if (!d.requires_locks.empty() || !d.excludes_locks.empty())
          out_.classes[cs->class_index].lock_contract_decls.push_back(d);
      }
      i_ = skip_to_semi(j);
      return true;
    }
    i_ = j;  // ran off the file
    return true;
  }

  // Skips a ctor-init list: `name(...)` / `name{...}` items separated by
  // commas; returns the index of the body '{'.
  [[nodiscard]] std::size_t skip_ctor_init(std::size_t j) const {
    const auto& t = toks();
    while (j < t.size()) {
      // Initializer item: qualified/templated name then (..) or {..}.
      while (j < t.size() && !is_punct(t[j], "(") && !is_punct(t[j], "{"))
        ++j;
      if (j >= t.size()) return j;
      if (is_punct(t[j], "(")) j = skip_balanced(j, "(", ")");
      else j = skip_balanced(j, "{", "}");
      if (j < t.size() && is_punct(t[j], ",")) {
        ++j;
        continue;
      }
      return j;  // next token should be the body '{'
    }
    return j;
  }
};

}  // namespace

FileModel build_model(const LexedFile& file) {
  FileModel out;
  Parser(file, out).run();
  return out;
}

}  // namespace sysuq_analyze
