// obs-context: trace-context propagation across pooled dispatches.
//
// A function that opens an obs::Span and then fans work onto a thread
// pool must hand the span's TraceContext to the tasks — capture
// obs::current_context() before the dispatch and install it inside
// each task with obs::ContextScope. Without the handoff, worker-side
// spans root fresh traces and a query's profile fragments into
// disconnected per-worker traces (the bug class the engine's
// query_batch/sample_batch pattern exists to prevent).
//
// Heuristic, like the rest of the analyzer: a "pooled dispatch" is an
// identifier containing "pool" followed by `->run(` or `.run(`; the
// function is exempt the moment its body mentions current_context or
// ContextScope.
#include "sysuq_analyze/passes.hpp"

#include <string>

namespace sysuq_analyze {

namespace {

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}

}  // namespace

void pass_obscontext(const Project& project, Reporter& rep) {
  for (const auto& af : project.files) {
    const auto& toks = af.lex.tokens;
    for (const auto& def : af.model.defs) {
      if (def.body_begin >= def.body_end || def.body_end > toks.size())
        continue;
      bool has_span = false;
      bool has_handoff = false;
      std::size_t dispatch_line = 0;
      for (std::size_t i = def.body_begin; i < def.body_end; ++i) {
        const Token& t = toks[i];
        if (t.kind != TokKind::kIdent) continue;
        if (t.text == "Span") has_span = true;
        if (t.text == "current_context" || t.text == "ContextScope")
          has_handoff = true;
        if (dispatch_line == 0 &&
            t.text.find("pool") != std::string::npos &&
            i + 3 < def.body_end &&
            (is_punct(toks[i + 1], "->") || is_punct(toks[i + 1], ".")) &&
            toks[i + 2].kind == TokKind::kIdent && toks[i + 2].text == "run" &&
            is_punct(toks[i + 3], "(")) {
          dispatch_line = toks[i + 2].line;
        }
      }
      if (has_span && dispatch_line != 0 && !has_handoff) {
        rep.report(af.lex, dispatch_line, "obs-context",
                   "pooled dispatch inside an obs::Span without trace-context "
                   "handoff; capture obs::current_context() before the "
                   "dispatch and install it in each task with "
                   "obs::ContextScope");
      }
    }
  }
}

}  // namespace sysuq_analyze
