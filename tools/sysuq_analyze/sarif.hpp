// SARIF 2.1.0 writer for sysuq_analyze, so CI can upload findings as a
// code-scanning artifact. Output is deterministic: results sorted by
// (uri, line, rule, message), two-space pretty printing, no timestamps.
#pragma once

#include <ostream>
#include <vector>

#include "sysuq_analyze/passes.hpp"

namespace sysuq_analyze {

/// One catalog entry: rule id plus its one-line description.
struct RuleDoc {
  const char* id;
  const char* description;
};

/// The full rule catalog in catalog order — the single source of truth
/// for the SARIF driver.rules block, the --only validation in main,
/// and docs/analyzer_rules.md (which mirrors it).
[[nodiscard]] const std::vector<RuleDoc>& rule_catalog();

/// Writes `violations` as a single-run SARIF 2.1.0 log. Returns the
/// stream so callers can check for write failure via `os.good()`.
std::ostream& write_sarif(std::ostream& os, std::vector<Violation> violations);

}  // namespace sysuq_analyze
