#include "sysuq_analyze/cfg.hpp"

#include <string>

namespace sysuq_analyze {

namespace {

constexpr std::size_t kDead = static_cast<std::size_t>(-1);

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}
bool is_ident(const Token& t, const char* s) {
  return t.kind == TokKind::kIdent && t.text == s;
}

class CfgBuilder {
 public:
  CfgBuilder(const LexedFile& file, Cfg& cfg, std::vector<Stmt>* linear)
      : f_(file), cfg_(cfg), linear_(linear) {}

  void run(std::size_t body_begin, std::size_t body_end) {
    cur_ = new_block();
    cfg_.exit_block = new_block();
    if (body_begin < body_end && body_begin < f_.tokens.size() &&
        is_punct(f_.tokens[body_begin], "{")) {
      parse_range(body_begin + 1,
                  std::min(body_end, f_.tokens.size()) - 1, 1);
    }
    if (cur_ != kDead) edge(cur_, cfg_.exit_block);
  }

 private:
  const LexedFile& f_;
  Cfg& cfg_;
  std::vector<Stmt>* linear_;
  std::size_t cur_ = kDead;
  struct LoopCtx {
    std::size_t brk;
    std::size_t cont;
  };
  std::vector<LoopCtx> loops_;

  [[nodiscard]] const std::vector<Token>& toks() const { return f_.tokens; }

  std::size_t new_block() {
    cfg_.blocks.emplace_back();
    return cfg_.blocks.size() - 1;
  }
  void edge(std::size_t a, std::size_t b) {
    if (a != kDead) cfg_.blocks[a].succs.push_back(b);
  }
  void append(std::size_t begin, std::size_t end, std::size_t depth) {
    if (begin >= end) return;
    const Stmt s{begin, end, depth};
    cfg_.blocks[cur_].stmts.push_back(s);
    if (linear_ != nullptr) linear_->push_back(s);
  }

  // Index one past the bracket pair opening at i (paren or brace; only
  // the named pair is counted, so `;` and other brackets inside are
  // transparent). Bounded by `e`.
  [[nodiscard]] std::size_t match(std::size_t i, std::size_t e,
                                  const char* open, const char* close) const {
    int depth = 0;
    for (; i < e; ++i) {
      if (is_punct(toks()[i], open)) ++depth;
      else if (is_punct(toks()[i], close) && --depth == 0) return i + 1;
    }
    return e;
  }

  // One past the ';' terminating a simple statement starting at i: the
  // scan is transparent to (), {}, [] nesting (lambda bodies and brace
  // initializers do not end the statement).
  [[nodiscard]] std::size_t semi(std::size_t i, std::size_t e) const {
    int depth = 0;
    for (; i < e; ++i) {
      const Token& t = toks()[i];
      if (t.kind != TokKind::kPunct) continue;
      const std::string& p = t.text;
      if (p == "(" || p == "{" || p == "[") ++depth;
      else if (p == ")" || p == "}" || p == "]") --depth;
      else if (p == ";" && depth <= 0) return i + 1;
    }
    return e;
  }

  // Parses the statement sequence in [b, e) at brace depth `depth`.
  void parse_range(std::size_t b, std::size_t e, std::size_t depth) {
    std::size_t i = b;
    while (i < e && i < toks().size()) {
      const std::size_t next = step(i, e, depth);
      i = next > i ? next : i + 1;  // never stall
    }
  }

  // Parses exactly one statement or control construct at i; returns the
  // index one past it.
  std::size_t step(std::size_t i, std::size_t e, std::size_t depth) {
    const Token& tok = toks()[i];

    if (is_punct(tok, ";")) return i + 1;
    if (is_punct(tok, "{")) {
      const std::size_t close = match(i, e, "{", "}");
      parse_range(i + 1, close > i ? close - 1 : e, depth + 1);
      return close;
    }
    if (is_ident(tok, "if")) return parse_if(i, e, depth);
    if (is_ident(tok, "while")) return parse_while(i, e, depth);
    if (is_ident(tok, "for")) return parse_for(i, e, depth);
    if (is_ident(tok, "do")) return parse_do(i, e, depth);
    if (is_ident(tok, "switch")) return parse_switch(i, e, depth);
    if (is_ident(tok, "try") || is_ident(tok, "catch")) {
      // try/catch run sequentially: the catch body is a may-successor
      // of the try body, which a linear layout over-approximates.
      std::size_t j = i + 1;
      while (j < e && !is_punct(toks()[j], "{")) ++j;
      if (j >= e) return e;
      const std::size_t close = match(j, e, "{", "}");
      parse_range(j + 1, close > j ? close - 1 : e, depth + 1);
      return close;
    }
    if (is_ident(tok, "case") || is_ident(tok, "default")) {
      std::size_t j = i + 1;
      while (j < e && !is_punct(toks()[j], ":")) ++j;
      return j + 1;
    }
    if (is_ident(tok, "return")) {
      const std::size_t end = semi(i, e);
      append(i, end, depth);
      edge(cur_, cfg_.exit_block);
      cur_ = new_block();  // unreachable continuation
      return end;
    }
    if (is_ident(tok, "break") || is_ident(tok, "continue")) {
      const std::size_t end = semi(i, e);
      append(i, end, depth);
      if (!loops_.empty()) {
        edge(cur_, tok.text == "break" ? loops_.back().brk
                                       : loops_.back().cont);
      } else {
        edge(cur_, cfg_.exit_block);  // stray; be conservative
      }
      cur_ = new_block();
      return end;
    }
    if (is_ident(tok, "else")) return i + 1;  // defensive; if() consumes it

    const std::size_t end = semi(i, e);
    append(i, end, depth);
    return end;
  }

  // Sub-statement of a control construct: one brace block or one step.
  std::size_t parse_sub(std::size_t i, std::size_t e, std::size_t depth) {
    if (i < e && is_punct(toks()[i], "{")) {
      const std::size_t close = match(i, e, "{", "}");
      parse_range(i + 1, close > i ? close - 1 : e, depth + 1);
      return close;
    }
    return i < e ? step(i, e, depth) : e;
  }

  // `if [constexpr] ( cond ) sub [else sub]`.
  std::size_t parse_if(std::size_t i, std::size_t e, std::size_t depth) {
    std::size_t j = i + 1;
    if (j < e && is_ident(toks()[j], "constexpr")) ++j;
    if (j >= e || !is_punct(toks()[j], "(")) return i + 1;
    const std::size_t cond_end = match(j, e, "(", ")");
    append(i, cond_end, depth);
    const std::size_t head = cur_;

    cur_ = new_block();
    edge(head, cur_);
    const std::size_t after_then = parse_sub(cond_end, e, depth);
    const std::size_t then_exit = cur_;

    std::size_t else_exit = kDead;
    std::size_t next = after_then;
    if (after_then < e && is_ident(toks()[after_then], "else")) {
      cur_ = new_block();
      edge(head, cur_);
      next = parse_sub(after_then + 1, e, depth);
      else_exit = cur_;
    }
    const std::size_t join = new_block();
    if (else_exit == kDead) edge(head, join);
    edge(then_exit, join);
    edge(else_exit, join);
    cur_ = join;
    return next;
  }

  // `while ( cond ) sub`.
  std::size_t parse_while(std::size_t i, std::size_t e, std::size_t depth) {
    std::size_t j = i + 1;
    if (j >= e || !is_punct(toks()[j], "(")) return i + 1;
    const std::size_t cond_end = match(j, e, "(", ")");
    const std::size_t header = new_block();
    edge(cur_, header);
    cur_ = header;
    append(i, cond_end, depth);
    const std::size_t after = new_block();
    loops_.push_back({after, header});
    cur_ = new_block();
    edge(header, cur_);
    const std::size_t next = parse_sub(cond_end, e, depth);
    edge(cur_, header);  // back edge
    loops_.pop_back();
    edge(header, after);
    cur_ = after;
    return next;
  }

  // `for ( init ; cond ; inc ) sub` and range-for, header as one stmt.
  // The whole header re-runs on the back edge, which over-approximates
  // (init re-executing) — harmless for may-analyses.
  std::size_t parse_for(std::size_t i, std::size_t e, std::size_t depth) {
    std::size_t j = i + 1;
    if (j >= e || !is_punct(toks()[j], "(")) return i + 1;
    const std::size_t head_end = match(j, e, "(", ")");
    const std::size_t header = new_block();
    edge(cur_, header);
    cur_ = header;
    append(i, head_end, depth);
    const std::size_t after = new_block();
    loops_.push_back({after, header});
    cur_ = new_block();
    edge(header, cur_);
    const std::size_t next = parse_sub(head_end, e, depth);
    edge(cur_, header);
    loops_.pop_back();
    edge(header, after);
    cur_ = after;
    return next;
  }

  // `do sub while ( cond ) ;`.
  std::size_t parse_do(std::size_t i, std::size_t e, std::size_t depth) {
    const std::size_t body_entry = new_block();
    edge(cur_, body_entry);
    const std::size_t after = new_block();
    loops_.push_back({after, body_entry});
    cur_ = body_entry;
    std::size_t next = parse_sub(i + 1, e, depth);
    loops_.pop_back();
    if (next < e && is_ident(toks()[next], "while")) {
      std::size_t j = next + 1;
      if (j < e && is_punct(toks()[j], "(")) {
        const std::size_t cond_end = match(j, e, "(", ")");
        append(next, cond_end, depth);
        next = cond_end < e && is_punct(toks()[cond_end], ";") ? cond_end + 1
                                                              : cond_end;
      }
    }
    edge(cur_, body_entry);  // back edge
    edge(cur_, after);
    cur_ = after;
    return next;
  }

  // `switch ( x ) { ... }`: the body is laid out linearly (fallthrough
  // shape); the header may also skip it entirely. `break` targets the
  // after-block. Case labels are skipped as no-ops.
  std::size_t parse_switch(std::size_t i, std::size_t e, std::size_t depth) {
    std::size_t j = i + 1;
    if (j >= e || !is_punct(toks()[j], "(")) return i + 1;
    const std::size_t cond_end = match(j, e, "(", ")");
    append(i, cond_end, depth);
    if (cond_end >= e || !is_punct(toks()[cond_end], "{")) return cond_end;
    const std::size_t close = match(cond_end, e, "{", "}");
    const std::size_t head = cur_;
    const std::size_t after = new_block();
    loops_.push_back({after, loops_.empty() ? after : loops_.back().cont});
    cur_ = new_block();
    edge(head, cur_);
    parse_range(cond_end + 1, close > cond_end ? close - 1 : e, depth + 1);
    loops_.pop_back();
    edge(head, after);
    edge(cur_, after);
    cur_ = after;
    return close;
  }
};

}  // namespace

Cfg build_cfg(const LexedFile& file, const FunctionDef& def) {
  Cfg cfg;
  CfgBuilder(file, cfg, nullptr).run(def.body_begin, def.body_end);
  return cfg;
}

std::vector<Stmt> linear_statements(const LexedFile& file,
                                    const FunctionDef& def) {
  Cfg cfg;
  std::vector<Stmt> out;
  CfgBuilder(file, cfg, &out).run(def.body_begin, def.body_end);
  return out;
}

}  // namespace sysuq_analyze
