// Structural model over the token stream: classes with their members
// and access levels, public function declarations in headers, and
// function definitions with their body token ranges. This is what lets
// sysuq_analyze express project-wide rules (contract coverage, lock
// discipline, validate-before-mutate) that a line lint cannot.
//
// The parser is a heuristic scanner, not a C++ front end: it tracks
// namespace/class nesting by brace matching and recognizes function
// declarators by the `( ... ) trailer ; | {` shape. That is enough for
// this codebase's style (and the fixtures pin the cases it must get
// right); it does not try to be correct for arbitrary C++.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "sysuq_analyze/lexer.hpp"

namespace sysuq_analyze {

/// A non-static data member of a class.
struct MemberVar {
  std::string name;
  std::string type_text;  ///< joined tokens left of the name
  bool is_atomic = false;
  bool is_mutex = false;
  std::size_t line = 0;
  /// Declared memory-order ceiling for atomics, from a
  /// `// sysuq-atomic-order(<order>)` marker; empty means relaxed.
  std::string declared_order;
  /// Mutex from a `// sysuq-guarded-by(<mutex>)` marker; empty when
  /// unannotated.
  std::string guarded_by;
  /// Role from `// sysuq-thread-confined(owner|worker|init)`; empty
  /// when unannotated.
  std::string confined;
};

/// A member-function (or free-function) declaration without a body.
struct FunctionDecl {
  std::string name;
  std::size_t line = 0;
  bool is_public = true;
  /// Locks named by `// sysuq-requires(...)` / `// sysuq-excludes(...)`
  /// on (or in the comment block above) the declaration.
  std::set<std::string> requires_locks;
  std::set<std::string> excludes_locks;
};

/// A class/struct with the facts the passes need.
struct ClassInfo {
  std::string module_name;
  std::string name;
  std::string file_rel;  ///< file holding the class body
  std::vector<MemberVar> members;
  std::vector<FunctionDecl> public_decls;  ///< no-body, non-inline, public
  /// Declarations (any access level) carrying sysuq-requires /
  /// sysuq-excludes markers — unioned with the definition's own markers
  /// by the thread-safety passes.
  std::vector<FunctionDecl> lock_contract_decls;
  bool owns_mutex = false;
  /// Type-level `// sysuq-thread-confined(<role>)`: every instance of
  /// the class is confined to the declared thread role.
  std::string confined;

  [[nodiscard]] const MemberVar* member(const std::string& n) const {
    for (const auto& m : members)
      if (m.name == n) return &m;
    return nullptr;
  }
};

/// A function definition (body present).
struct FunctionDef {
  std::string class_name;  ///< enclosing class or out-of-line qualifier; ""
  std::string name;
  std::size_t line = 0;          ///< line of the name token
  std::size_t body_begin = 0;    ///< token index of '{'
  std::size_t body_end = 0;      ///< token index one past matching '}'
  std::size_t params_begin = 0;  ///< token index of the declarator '('
  std::size_t params_end = 0;    ///< one past the matching ')'
  bool is_ctor = false;
  bool is_dtor = false;
  bool in_header = false;
  bool has_params = false;  ///< parameter list is not `()` / `(void)`
  /// Lock contracts from `// sysuq-requires(...)` / `// sysuq-excludes(...)`
  /// markers on (or in the comment block above) the signature.
  std::set<std::string> requires_locks;
  std::set<std::string> excludes_locks;
};

/// Everything extracted from one file.
struct FileModel {
  std::vector<ClassInfo> classes;
  std::vector<FunctionDecl> free_decls;  ///< namespace-scope, headers
  std::vector<FunctionDef> defs;
};

/// Parses the structural model of `file`.
[[nodiscard]] FileModel build_model(const LexedFile& file);

}  // namespace sysuq_analyze
