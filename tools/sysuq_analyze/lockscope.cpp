#include "sysuq_analyze/lockscope.hpp"

#include <algorithm>
#include <map>
#include <vector>

namespace sysuq_analyze {

namespace {

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}

bool is_assign_op(const Token& t) {
  if (t.kind != TokKind::kPunct) return false;
  const std::string& p = t.text;
  return p == "=" || p == "+=" || p == "-=" || p == "*=" || p == "/=" ||
         p == "%=" || p == "&=" || p == "|=" || p == "^=" || p == "<<=" ||
         p == ">>=" || p == "++" || p == "--";
}

bool is_mutating_call(const std::string& name) {
  return name == "clear" || name == "insert" || name == "erase" ||
         name == "emplace" || name == "emplace_back" || name == "push_back" ||
         name == "pop_back" || name == "resize" || name == "reserve" ||
         name == "assign";
}

std::size_t skip_balanced_tokens(const LexedFile& f, std::size_t i,
                                 const char* open, const char* close) {
  int depth = 0;
  for (; i < f.tokens.size(); ++i) {
    if (is_punct(f.tokens[i], open)) ++depth;
    else if (is_punct(f.tokens[i], close) && --depth == 0) return i + 1;
  }
  return i;
}

/// One held lock on the scope stack.
struct HeldLock {
  std::string mutex;
  int depth = 0;      ///< brace depth at acquisition
  bool scoped = true; ///< pops when its brace scope closes
};

}  // namespace

bool guard_type_name(const std::string& n) {
  return n == "lock_guard" || n == "unique_lock" || n == "scoped_lock" ||
         n == "shared_lock";
}

bool dispatch_method_name(const std::string& n) {
  return n == "run" || n == "submit" || n == "enqueue" || n == "post" ||
         n == "dispatch";
}

std::string canonical_mutex_at(const Project& project, const AnalyzedFile& af,
                               const std::string& class_name,
                               std::size_t last) {
  const auto& t = af.lex.tokens;
  if (last >= t.size()) return "";
  std::vector<std::string> chain;
  std::ptrdiff_t k = static_cast<std::ptrdiff_t>(last);
  while (k >= 0) {
    const Token& tok = t[static_cast<std::size_t>(k)];
    if (tok.kind != TokKind::kIdent) break;
    chain.push_back(tok.text);
    if (k < 2) break;
    const Token& link = t[static_cast<std::size_t>(k - 1)];
    if (link.kind != TokKind::kPunct ||
        (link.text != "." && link.text != "->" && link.text != "::"))
      break;
    k -= 2;
  }
  std::reverse(chain.begin(), chain.end());
  if (!chain.empty() && chain.front() == "this") chain.erase(chain.begin());
  if (chain.empty()) return "";
  const std::string& name = chain.back();
  if (chain.size() == 1)
    return canonical_annotation(project, af, class_name, name);
  std::string joined;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (i != 0) joined += ".";
    joined += chain[i];
  }
  return joined;
}

std::string canonical_annotation(const Project& project,
                                 const AnalyzedFile& af,
                                 const std::string& class_name,
                                 const std::string& spelled) {
  if (spelled.empty()) return "";
  if (spelled.find("::") != std::string::npos ||
      spelled.find('.') != std::string::npos)
    return spelled;  // already qualified
  const bool memberish =
      (!class_name.empty() &&
       [&] {
         const ClassInfo* ci = project.find_class(af, class_name);
         return ci != nullptr && ci->member(spelled) != nullptr;
       }()) ||
      spelled.back() == '_';
  if (memberish && !class_name.empty()) return class_name + "::" + spelled;
  if (memberish) return af.lex.module_name + "::" + spelled;
  return spelled;
}

void walk_lock_scopes(
    const Project& project, const AnalyzedFile& af,
    const std::string& class_name, std::size_t begin, std::size_t end,
    const std::set<std::string>& entry_held,
    const std::function<void(std::size_t, const std::set<std::string>&)>&
        visit) {
  const auto& t = af.lex.tokens;
  std::vector<HeldLock> held;
  for (const std::string& mu : entry_held)
    held.push_back({mu, 0, /*scoped=*/false});
  std::map<std::string, std::string> guards;  // guard variable -> mutex
  int depth = 0;
  std::set<std::string> cur = entry_held;
  const auto rebuild = [&] {
    cur.clear();
    for (const HeldLock& h : held) cur.insert(h.mutex);
  };
  for (std::size_t i = begin; i < end && i < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == "{") {
        ++depth;
      } else if (tok.text == "}") {
        --depth;
        const std::size_t before = held.size();
        held.erase(std::remove_if(held.begin(), held.end(),
                                  [&](const HeldLock& h) {
                                    return h.scoped && h.depth > depth;
                                  }),
                   held.end());
        if (held.size() != before) rebuild();
      }
      visit(i, cur);
      continue;
    }
    if (tok.kind != TokKind::kIdent) {
      visit(i, cur);
      continue;
    }

    // Guard declaration: lock_guard<...> name(mu, ...). The declaration
    // tokens themselves are visited with the pre-acquisition state.
    if (guard_type_name(tok.text)) {
      std::size_t j = i + 1;
      if (j < end && is_punct(t[j], "<")) {
        int d = 0;
        for (; j < end; ++j) {
          if (is_punct(t[j], "<")) ++d;
          else if (is_punct(t[j], ">") && --d == 0) {
            ++j;
            break;
          }
        }
      }
      if (j + 1 >= end || t[j].kind != TokKind::kIdent ||
          !is_punct(t[j + 1], "(")) {
        visit(i, cur);
        continue;
      }
      const std::string guard_name = t[j].text;
      int d = 0;
      std::size_t arg_last = 0;
      bool have_arg = false, deferred = false;
      std::vector<std::size_t> arg_ends;
      std::size_t close = end - 1;
      for (std::size_t a = j + 1; a < end; ++a) {
        const Token& at = t[a];
        if (at.kind == TokKind::kPunct) {
          if (at.text == "(") {
            ++d;
            continue;
          }
          if (at.text == ")") {
            if (--d == 0) {
              if (have_arg) arg_ends.push_back(arg_last);
              close = a;
              break;
            }
            continue;
          }
          if (at.text == "," && d == 1) {
            if (have_arg) arg_ends.push_back(arg_last);
            have_arg = false;
            continue;
          }
        }
        if (d == 1 && at.kind == TokKind::kIdent) {
          arg_last = a;
          have_arg = true;
        }
      }
      for (std::size_t v = i; v <= close && v < end; ++v) visit(v, cur);
      for (const std::size_t a : arg_ends) {
        const std::string& word = t[a].text;
        if (word == "defer_lock") {
          deferred = true;
          continue;
        }
        if (word == "adopt_lock" || word == "try_to_lock") continue;
        const std::string mu =
            canonical_mutex_at(project, af, class_name, a);
        if (mu.empty()) continue;
        guards[guard_name] = mu;
        if (!deferred && cur.count(mu) == 0) {
          held.push_back({mu, depth, /*scoped=*/true});
          cur.insert(mu);
        }
      }
      i = close;
      continue;
    }

    // X.lock() / X.unlock() on a guard variable or a raw mutex chain.
    const bool methodish = i >= 2 && t[i - 1].kind == TokKind::kPunct &&
                           (t[i - 1].text == "." || t[i - 1].text == "->") &&
                           i + 1 < end && is_punct(t[i + 1], "(");
    if (methodish && (tok.text == "lock" || tok.text == "unlock")) {
      const std::string recv = t[i - 2].text;
      const auto g = guards.find(recv);
      const std::string mu =
          g != guards.end()
              ? g->second
              : canonical_mutex_at(project, af, class_name, i - 2);
      if (!mu.empty()) {
        if (tok.text == "lock") {
          if (cur.count(mu) == 0) {
            held.push_back({mu, depth, /*scoped=*/g != guards.end()});
            cur.insert(mu);
          }
        } else {
          const std::size_t before = held.size();
          held.erase(
              std::remove_if(held.begin(), held.end(),
                             [&](const HeldLock& h) { return h.mutex == mu; }),
              held.end());
          if (held.size() != before) rebuild();
        }
      }
      visit(i, cur);
      continue;
    }

    visit(i, cur);
  }
}

LockContracts collect_lock_contracts(const Project& project) {
  LockContracts out;
  for (const auto& af : project.files) {
    const std::string& root = af.lex.root;
    for (const auto& def : af.model.defs) {
      for (const std::string& mu : def.requires_locks)
        out.requires_by_root[root][def.name].insert(
            canonical_annotation(project, af, def.class_name, mu));
      for (const std::string& mu : def.excludes_locks)
        out.excludes_by_root[root][def.name].insert(
            canonical_annotation(project, af, def.class_name, mu));
    }
    for (const auto& ci : af.model.classes) {
      for (const auto& d : ci.lock_contract_decls) {
        for (const std::string& mu : d.requires_locks)
          out.requires_by_root[root][d.name].insert(
              canonical_annotation(project, af, ci.name, mu));
        for (const std::string& mu : d.excludes_locks)
          out.excludes_by_root[root][d.name].insert(
              canonical_annotation(project, af, ci.name, mu));
      }
    }
  }
  return out;
}

std::set<std::string> entry_locks(const Project& project,
                                  const AnalyzedFile& af,
                                  const FunctionDef& def) {
  std::set<std::string> out;
  for (const std::string& mu : def.requires_locks)
    out.insert(canonical_annotation(project, af, def.class_name, mu));
  if (!def.class_name.empty()) {
    if (const ClassInfo* ci = project.find_class(af, def.class_name)) {
      for (const auto& d : ci->lock_contract_decls) {
        if (d.name != def.name) continue;
        for (const std::string& mu : d.requires_locks)
          out.insert(canonical_annotation(project, af, ci->name, mu));
      }
    }
  }
  return out;
}

bool plain_member_access(const LexedFile& f, std::size_t i) {
  const auto& t = f.tokens;
  if (i > 0 && t[i - 1].kind == TokKind::kPunct) {
    const std::string& p = t[i - 1].text;
    if (p == "." || p == "::") return false;
    if (p == "->" && !(i > 1 && t[i - 2].text == "this")) return false;
  }
  return true;
}

bool member_write_at(const LexedFile& f, std::size_t i) {
  const auto& t = f.tokens;
  if (i > 0 && t[i - 1].kind == TokKind::kPunct &&
      (t[i - 1].text == "++" || t[i - 1].text == "--"))
    return true;  // pre-increment
  std::size_t j = i + 1;
  if (j < t.size() && is_punct(t[j], "["))
    j = skip_balanced_tokens(f, j, "[", "]");
  if (j >= t.size()) return false;
  if (is_assign_op(t[j])) return true;
  if ((is_punct(t[j], ".") || is_punct(t[j], "->")) && j + 1 < t.size() &&
      t[j + 1].kind == TokKind::kIdent && is_mutating_call(t[j + 1].text) &&
      j + 2 < t.size() && is_punct(t[j + 2], "(")) {
    return true;
  }
  return false;
}

}  // namespace sysuq_analyze
