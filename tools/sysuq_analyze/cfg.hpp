// Per-function control-flow graphs over the token stream.
//
// The structural model (model.hpp) gives every function definition a
// body token range; this layer carves that range into statements and
// links them into basic blocks with successor edges for if/else,
// while/for/do loops, switch, break/continue and return. The dataflow
// passes (arena-escape, log-domain) run gen/kill transfer functions to
// a fixpoint over these graphs; the lock-order pass walks statements
// with a scope stack instead (RAII guard lifetimes follow braces, not
// edges).
//
// Like the model parser this is a heuristic scanner, not a front end:
// it must never crash or loop on arbitrary input, and on input it does
// not understand it degrades to a linear block (which only ever makes
// the may-analyses more conservative upstream of a fixpoint, never
// less sound for the patterns the fixtures pin).
#pragma once

#include <cstddef>
#include <vector>

#include "sysuq_analyze/lexer.hpp"
#include "sysuq_analyze/model.hpp"

namespace sysuq_analyze {

/// One statement: a token range [begin, end) inside the function body.
/// Control statements keep only their header tokens (the condition of
/// an `if`/`while`, the three clauses of a `for`); their sub-statements
/// become blocks of their own.
struct Stmt {
  std::size_t begin = 0;
  std::size_t end = 0;
  /// Brace depth of the statement relative to the function body (the
  /// body's top level is 1). Scope-stack walkers use this to pop RAII
  /// state when a block closes.
  std::size_t depth = 0;
};

/// A basic block: statements executed in order, then a jump to any of
/// the successor blocks. Exit blocks have no successors.
struct BasicBlock {
  std::vector<Stmt> stmts;
  std::vector<std::size_t> succs;
};

/// CFG of one function definition. Block 0 is the entry; `exit_block`
/// is a distinguished empty block every return edge targets.
struct Cfg {
  std::vector<BasicBlock> blocks;
  std::size_t exit_block = 0;
};

/// Builds the CFG of `def`'s body inside `file`. Always returns a
/// well-formed graph (at minimum entry -> exit).
[[nodiscard]] Cfg build_cfg(const LexedFile& file, const FunctionDef& def);

/// Statements of the whole body in source order with scope depths —
/// the linear view used by scope-stack passes (lock-order). Identical
/// statement ranges to the CFG's blocks.
[[nodiscard]] std::vector<Stmt> linear_statements(const LexedFile& file,
                                                  const FunctionDef& def);

}  // namespace sysuq_analyze
