// guard-consistency: enforces the thread-safety annotation language
// lexically, inside each function.
//
//   1. A member annotated `// sysuq-guarded-by(mu)` may only be touched
//      while `mu` is on the lexical lock-scope stack (RAII guard scopes,
//      .lock()/.unlock() pairs, and the function's own sysuq-requires
//      contract all count; constructors and destructors are exempt —
//      no concurrent access exists during construction).
//   2. A function annotated `// sysuq-excludes(mu)` must not be called
//      while `mu` is held: it takes that lock itself, so the call
//      self-deadlocks on a non-recursive mutex.
//   3. Every non-atomic member of a mutex-owning class must carry an
//      annotation (guarded-by or thread-confined) — unannotated members
//      are findings, so an annotation sweep is forced to completion
//      rather than silently stalling at "the easy ones".
//
// Cross-thread reachability (which code runs on which thread role) is
// thread-escape's job; this pass is the purely lexical half the
// annotations make checkable per function.
#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "sysuq_analyze/lockscope.hpp"
#include "sysuq_analyze/passes.hpp"

namespace sysuq_analyze {

namespace {

constexpr const char* kRule = "guard-consistency";

bool exempt_member(const MemberVar& m) {
  if (m.is_mutex || m.is_atomic) return true;
  if (m.name == "operator") return true;  // deleted operator=, parse artifact
  if (!m.guarded_by.empty() || !m.confined.empty()) return true;
  // Condition variables synchronize through their own wait protocol.
  return m.type_text.find("condition_variable") != std::string::npos;
}

void check_def(const Project& project, const AnalyzedFile& af,
               const FunctionDef& def, const ClassInfo& ci,
               const std::map<std::string, std::set<std::string>>& excludes,
               Reporter& rep) {
  const LexedFile& f = af.lex;
  const auto& t = f.tokens;
  // Canonical guard of each guarded member, resolved once.
  std::map<std::string, std::string> guard_of;
  for (const MemberVar& m : ci.members)
    if (!m.guarded_by.empty())
      guard_of[m.name] =
          canonical_annotation(project, af, ci.name, m.guarded_by);

  const std::set<std::string> entry = entry_locks(project, af, def);
  walk_lock_scopes(
      project, af, def.class_name, def.body_begin, def.body_end, entry,
      [&](std::size_t i, const std::set<std::string>& held) {
        const Token& tok = t[i];
        if (tok.kind != TokKind::kIdent) return;

        // Guarded member touched without its guard.
        if (!def.is_ctor && !def.is_dtor) {
          const auto g = guard_of.find(tok.text);
          if (g != guard_of.end() && plain_member_access(f, i) &&
              held.count(g->second) == 0) {
            const bool write = member_write_at(f, i);
            rep.report(f, tok.line, kRule,
                       std::string(write ? "write to" : "read of") +
                           " member '" + tok.text + "' guarded by '" +
                           g->second +
                           "' (sysuq-guarded-by) without holding it; take "
                           "the lock or move the access into the guarded "
                           "scope");
          }
        }

        // Call to a function that excludes a held lock.
        const bool called = i + 1 < t.size() &&
                            t[i + 1].kind == TokKind::kPunct &&
                            t[i + 1].text == "(" && tok.text != def.name;
        if (called) {
          const auto e = excludes.find(tok.text);
          if (e != excludes.end()) {
            for (const std::string& mu : e->second) {
              if (held.count(mu) == 0) continue;
              rep.report(f, tok.line, kRule,
                         "call to '" + tok.text + "' which excludes '" + mu +
                             "' (sysuq-excludes) while '" + mu +
                             "' is held; it takes that lock itself — "
                             "release before calling");
            }
          }
        }
      });
}

}  // namespace

void pass_guards(const Project& project, Reporter& rep) {
  if (!rep.enabled(kRule)) return;

  // 1. Annotation completeness over mutex-owning classes.
  for (const auto& af : project.files) {
    for (const auto& ci : af.model.classes) {
      if (!ci.owns_mutex) continue;
      for (const MemberVar& m : ci.members) {
        if (exempt_member(m)) continue;
        rep.report(af.lex, m.line, kRule,
                   "member '" + m.name + "' of mutex-owning class '" +
                       ci.name +
                       "' has no thread-safety annotation; add "
                       "// sysuq-guarded-by(<mutex>), // sysuq-thread-"
                       "confined(owner|worker|init), make it atomic, or "
                       "allow-mark it with a reason");
      }
    }
  }

  // 2. Guarded accesses and excludes-contracts, per definition.
  const LockContracts contracts = collect_lock_contracts(project);
  for (const auto& af : project.files) {
    const auto exc_it = contracts.excludes_by_root.find(af.lex.root);
    static const std::map<std::string, std::set<std::string>> kNone;
    const auto& excludes =
        exc_it != contracts.excludes_by_root.end() ? exc_it->second : kNone;
    for (const auto& def : af.model.defs) {
      const ClassInfo* ci = def.class_name.empty()
                                ? nullptr
                                : project.find_class(af, def.class_name);
      if (ci == nullptr) {
        // Free functions still honour excludes-contracts at call sites.
        if (excludes.empty()) continue;
        static const ClassInfo kEmpty;
        check_def(project, af, def, kEmpty, excludes, rep);
        continue;
      }
      check_def(project, af, def, *ci, excludes, rep);
    }
  }
}

}  // namespace sysuq_analyze
