// Forward dataflow framework for sysuq_analyze.
//
// The abstract domain is a powerset lattice per named local: each
// variable maps to a bitmask of pass-defined facts (arena-handle,
// arena-view, stale, log-domain, ...), absent means bottom, and join is
// bitwise OR — so every analysis built on it is a may-analysis and a
// fixpoint always exists (finite facts, monotone transfer). The solver
// runs a worklist over a function's CFG (cfg.hpp); interprocedural
// facts travel through per-root name-granular function summaries the
// passes iterate to their own fixpoint, exactly like contract-coverage
// already does for its covered set.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sysuq_analyze/cfg.hpp"
#include "sysuq_analyze/lexer.hpp"
#include "sysuq_analyze/passes.hpp"

namespace sysuq_analyze {

/// Variable name -> fact bitmask. Absent = bottom (no facts).
using VarState = std::map<std::string, unsigned>;

/// OR-joins `from` into `into`; true when `into` grew.
bool join_states(VarState& into, const VarState& from);

/// Forward worklist solver over one function's CFG. `transfer` mutates
/// the state through one statement (gen/kill); it must be monotone in
/// the OR lattice (only ever add bits for a given input) for the
/// fixpoint to terminate, which every pass here satisfies.
class ForwardAnalysis {
 public:
  using Transfer = std::function<void(const Stmt&, VarState&)>;

  ForwardAnalysis(const Cfg& cfg, VarState entry, Transfer transfer);

  /// Fixpoint state at entry of block `b`.
  [[nodiscard]] const VarState& block_in(std::size_t b) const {
    return in_[b];
  }

  /// Replays the fixpoint: for every statement of every block calls
  /// `visit(stmt, state-before)` then applies the transfer. Blocks are
  /// visited in index order (construction order ~ source order), so
  /// reported violations are deterministic.
  void replay(
      const std::function<void(const Stmt&, const VarState&)>& visit) const;

  /// Union of every variable's facts anywhere in the function (entry
  /// states and post-transfer): the flow-insensitive summary used for
  /// "is this name ever an arena view here" style questions.
  [[nodiscard]] VarState anywhere() const;

 private:
  const Cfg& cfg_;
  Transfer transfer_;
  std::vector<VarState> in_;
};

/// Name-granular call graph: for each scan root, function name ->
/// callee names (every identifier followed by '(' in the body).
/// Name-granular on purpose, matching contract-coverage: a precise
/// call graph is front-end territory, and over-approximation feeds
/// may-analyses, which stay sound for "might this happen" questions.
struct CallGraph {
  std::map<std::string, std::map<std::string, std::set<std::string>>>
      callees_by_root;
};

[[nodiscard]] CallGraph build_call_graph(const Project& project);

// ---------------------------------------------------------------------
// Shared token utilities for the dataflow passes.

/// If token `i` opens a lambda introducer (`[` whose matching `]` is
/// followed, after an optional parameter list and specifiers, by `{`),
/// returns one past the lambda's closing `}`; otherwise returns `i`.
/// Dataflow transfers skip lambda bodies — a lambda's effects happen at
/// its call sites, not its definition site.
[[nodiscard]] std::size_t lambda_end(const LexedFile& f, std::size_t i,
                                     std::size_t limit);

/// All lambda body ranges `[begin, end)` (tokens between the braces)
/// inside `[begin, end)`, outermost only, in order.
struct LambdaRange {
  std::size_t intro = 0;  ///< the '[' token
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
};
[[nodiscard]] std::vector<LambdaRange> find_lambdas(const LexedFile& f,
                                                    std::size_t begin,
                                                    std::size_t end);

/// True when any identifier token in `[begin, end)` (lambda bodies
/// included) equals a key of `state` carrying any bit of `mask`, and is
/// not a member access off another object (`x.name` / `ns::name`).
[[nodiscard]] bool mentions_fact(const LexedFile& f, std::size_t begin,
                                 std::size_t end, const VarState& state,
                                 unsigned mask);

}  // namespace sysuq_analyze
