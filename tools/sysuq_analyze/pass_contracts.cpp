// Contract-coverage pass: every non-inline public function declared in
// a module header must execute a SYSUQ_EXPECT / SYSUQ_ENSURE /
// SYSUQ_ASSERT_PROB* in its out-of-line definition, or carry a
// `// sysuq-lint-allow(contract-coverage): reason` on the declaration
// or the definition. This enforces the paper's demand that uncertainty
// handling be uniform across subsystems: preconditions are stated where
// the module boundary is crossed, not ad hoc.
//
// Two deliberate narrowings keep the rule about *entry points* rather
// than every accessor:
//   - parameterless functions are exempt — with no inputs there is no
//     precondition to state;
//   - coverage is transitive: a definition that calls a function whose
//     own definition executes a contract is covered (computed to a
//     fixpoint project-wide, so `query -> query_impl -> SYSUQ_EXPECT`
//     chains of any depth count).
//
// The check is definition-driven: a (class, name) declared without a
// body in a module header is looked up among the module's .cpp
// definitions; templates, operators, destructors, defaulted/deleted
// functions and in-header (inline) definitions are out of scope.
// core/contracts.* — the enforcement machinery itself — is exempt.
#include "sysuq_analyze/passes.hpp"

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace sysuq_analyze {

namespace {

// A definition checks its inputs when it executes a contract macro, the
// core checkers, or a plain `throw` — the codebase's private validators
// (e.g. BayesianNetwork::check_id) throw std::out_of_range directly.
bool has_direct_contract(const LexedFile& f, const FunctionDef& def) {
  for (std::size_t i = def.body_begin; i < def.body_end; ++i) {
    const Token& t = f.tokens[i];
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "SYSUQ_EXPECT" || t.text == "SYSUQ_ENSURE" ||
        t.text == "SYSUQ_ASSERT_PROB" || t.text == "SYSUQ_ASSERT_PROB_VEC" ||
        t.text == "check_probability" || t.text == "check_prob_vec" ||
        t.text == "throw")
      return true;
  }
  return false;
}

// Does the body call (ident followed by '(') any name in `covered`?
bool calls_covered(const LexedFile& f, const FunctionDef& def,
                   const std::set<std::string>& covered) {
  for (std::size_t i = def.body_begin; i + 1 < def.body_end; ++i) {
    const Token& t = f.tokens[i];
    if (t.kind != TokKind::kIdent) continue;
    const Token& next = f.tokens[i + 1];
    if (next.kind != TokKind::kPunct || next.text != "(") continue;
    if (covered.count(t.text) > 0) return true;
  }
  return false;
}

}  // namespace

void pass_contracts(const Project& project, Reporter& rep) {
  if (!rep.enabled("contract-coverage")) return;

  // (root, module, class, name) -> declaration sites in headers.
  struct DeclSite {
    const LexedFile* file;
    std::size_t line;
  };
  std::map<std::tuple<std::string, std::string, std::string, std::string>,
           std::vector<DeclSite>>
      declared;

  for (const auto& af : project.files) {
    const LexedFile& f = af.lex;
    if (!f.is_header || f.module_name.empty()) continue;
    if (f.rel.rfind("core/contracts", 0) == 0) continue;
    for (const auto& ci : af.model.classes) {
      for (const auto& d : ci.public_decls) {
        declared[{f.root, f.module_name, ci.name, d.name}].push_back(
            {&f, d.line});
      }
    }
    for (const auto& d : af.model.free_decls) {
      declared[{f.root, f.module_name, std::string(), d.name}].push_back(
          {&f, d.line});
    }
  }

  // Transitive coverage to a fixpoint: seed with the names of functions
  // whose definitions execute a contract directly, then fold in any
  // function that calls a covered name. Name-granular on purpose — a
  // precise call graph is front-end territory, and over-approximating
  // coverage only ever silences the rule, never false-fires it.
  std::map<std::string, std::set<std::string>> covered_by_root;
  bool grew = true;
  for (const auto& af : project.files) {
    // `.at()` and `.value()` are checked accesses (they throw on a bad
    // index / empty optional), so calling them counts as validating.
    covered_by_root[af.lex.root].insert("at");
    covered_by_root[af.lex.root].insert("value");
    for (const auto& def : af.model.defs) {
      if (has_direct_contract(af.lex, def))
        covered_by_root[af.lex.root].insert(def.name);
    }
  }
  while (grew) {
    grew = false;
    for (const auto& af : project.files) {
      auto& covered = covered_by_root[af.lex.root];
      for (const auto& def : af.model.defs) {
        if (covered.count(def.name) > 0) continue;
        if (calls_covered(af.lex, def, covered)) {
          covered.insert(def.name);
          grew = true;
        }
      }
    }
  }

  for (const auto& af : project.files) {
    const LexedFile& f = af.lex;
    if (!f.is_source || f.module_name.empty()) continue;
    if (f.rel.rfind("core/contracts", 0) == 0) continue;
    const auto& covered = covered_by_root[f.root];
    for (const auto& def : af.model.defs) {
      if (def.is_dtor || def.in_header || !def.has_params) continue;
      const auto it = declared.find(
          {f.root, f.module_name, def.class_name, def.name});
      if (it == declared.end()) continue;
      if (covered.count(def.name) > 0) continue;
      if (calls_covered(f, def, covered)) continue;
      std::vector<const LexedFile*> extra_files;
      std::vector<std::size_t> extra_lines;
      for (const auto& site : it->second) {
        extra_files.push_back(site.file);
        extra_lines.push_back(site.line);
      }
      const std::string qual = def.class_name.empty()
                                   ? def.name
                                   : def.class_name + "::" + def.name;
      rep.report_multi(
          f, def.line, extra_files, extra_lines, "contract-coverage",
          "public entry point '" + qual +
              "' (declared in a module header) executes no SYSUQ_EXPECT/"
              "SYSUQ_ASSERT_PROB* (directly or via a callee); add a "
              "contract or annotate the declaration");
    }
  }
}

}  // namespace sysuq_analyze
