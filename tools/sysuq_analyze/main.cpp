// sysuq_analyze — project-aware static analyzer for the sysuq codebase.
//
//   sysuq_analyze [--sarif FILE] [--only rule1,rule2] [root...]
//
// Each root is scanned recursively for C++ sources/headers; the default
// root is `src`. Paths are reported relative to the invocation, so run
// it from the repository root (CI does). Exit codes: 0 clean,
// 1 violations, 2 usage/IO error — same protocol as the old sysuq_lint.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "sysuq_analyze/lexer.hpp"
#include "sysuq_analyze/model.hpp"
#include "sysuq_analyze/passes.hpp"
#include "sysuq_analyze/sarif.hpp"

namespace {

namespace fs = std::filesystem;
using namespace sysuq_analyze;

// Modules whose first path component makes a file part of the layered
// tree; anything else (tests/, bench/, tools/...) is linted but takes
// no part in layering/contract bookkeeping.
const std::set<std::string>& known_modules() {
  static const std::set<std::string> kModules = {
      "core", "prob",   "bayesnet", "evidence", "perception",
      "fta",  "markov", "obs",      "orbit",    "sys"};
  return kModules;
}

bool has_cpp_ext(const fs::path& p, bool& is_header, bool& is_source) {
  const std::string ext = p.extension().string();
  is_header = ext == ".hpp" || ext == ".h" || ext == ".hxx";
  is_source = ext == ".cpp" || ext == ".cc" || ext == ".cxx";
  return is_header || is_source;
}

// Fixture trees are full of deliberate violations: skip them during
// recursion unless the scan root itself points inside one (which is how
// the fixture ctests invoke us).
bool skip_dir(const fs::path& dir) {
  const std::string name = dir.filename().string();
  if (name.empty()) return false;
  if (name[0] == '.') return true;
  if (name.rfind("build", 0) == 0) return true;
  if (name == "lint_fixture") return true;
  return false;
}

bool root_inside_fixture(const fs::path& root) {
  for (const auto& part : root) {
    if (part.string() == "lint_fixture") return true;
  }
  return false;
}

int collect(const std::string& root_arg, std::vector<LexedFile>& out) {
  const fs::path root(root_arg);
  std::error_code ec;
  if (!fs::exists(root, ec) || ec) {
    std::cerr << "sysuq_analyze: no such path: " << root_arg << "\n";
    return 2;
  }
  const bool in_fixture = root_inside_fixture(fs::absolute(root));

  std::vector<fs::path> paths;
  if (fs::is_regular_file(root)) {
    paths.push_back(root);
  } else {
    fs::recursive_directory_iterator it(
        root, fs::directory_options::skip_permission_denied, ec);
    const fs::recursive_directory_iterator end;
    for (; it != end; it.increment(ec)) {
      if (ec) {
        std::cerr << "sysuq_analyze: walk error under " << root_arg << ": "
                  << ec.message() << "\n";
        return 2;
      }
      if (it->is_directory() && !in_fixture && skip_dir(it->path())) {
        it.disable_recursion_pending();
        continue;
      }
      bool h = false, s = false;
      if (it->is_regular_file() && has_cpp_ext(it->path(), h, s))
        paths.push_back(it->path());
    }
  }
  std::sort(paths.begin(), paths.end());

  for (const auto& p : paths) {
    LexedFile f;
    f.abs_path = fs::absolute(p);
    f.root = fs::is_regular_file(root) ? std::string() : root_arg;
    const fs::path rel =
        fs::is_regular_file(root) ? p.filename() : p.lexically_relative(root);
    f.rel = rel.generic_string();
    has_cpp_ext(p, f.is_header, f.is_source);
    const auto first = rel.begin();
    if (first != rel.end() && known_modules().count(first->string()) > 0)
      f.module_name = first->string();
    if (!lex_file(p, f)) return 2;
    out.push_back(std::move(f));
  }
  return 0;
}

int usage() {
  std::cerr << "usage: sysuq_analyze [--sarif FILE] [--only rule1,rule2] "
               "[root...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string sarif_path;
  Reporter rep;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--sarif") {
      if (++a >= argc) return usage();
      sarif_path = argv[a];
    } else if (arg == "--only") {
      if (++a >= argc) return usage();
      std::string rules = argv[a];
      std::size_t pos = 0;
      while (pos <= rules.size()) {
        const std::size_t comma = rules.find(',', pos);
        const std::string rule =
            rules.substr(pos, comma == std::string::npos ? comma : comma - pos);
        if (!rule.empty()) rep.only.insert(rule);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) roots.emplace_back("src");

  Project project;
  for (const auto& root : roots) {
    std::vector<LexedFile> files;
    if (const int rc = collect(root, files); rc != 0) return rc;
    for (auto& f : files) {
      AnalyzedFile af;
      af.lex = std::move(f);
      af.model = build_model(af.lex);
      project.files.push_back(std::move(af));
    }
  }
  project.index();

  pass_layering(project, rep);
  pass_contracts(project, rep);
  pass_locks(project, rep);
  pass_mutate(project, rep);
  pass_legacy(project, rep);

  std::sort(rep.violations.begin(), rep.violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.path, a.line, a.rule, a.message) <
                     std::tie(b.path, b.line, b.rule, b.message);
            });
  std::set<std::string> files_hit;
  for (const auto& v : rep.violations) {
    std::cout << v.path << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
    files_hit.insert(v.path);
  }

  if (!sarif_path.empty()) {
    std::ofstream os(sarif_path);
    if (!os || !write_sarif(os, rep.violations)) {
      std::cerr << "sysuq_analyze: cannot write SARIF to " << sarif_path
                << "\n";
      return 2;
    }
  }

  if (rep.violations.empty()) {
    std::cout << "sysuq_analyze: OK (" << project.files.size() << " files)\n";
    return 0;
  }
  std::cout << "sysuq_analyze: " << rep.violations.size()
            << " violation(s) in " << files_hit.size() << " file(s)\n";
  return 1;
}
