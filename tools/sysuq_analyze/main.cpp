// sysuq_analyze — project-aware static analyzer for the sysuq codebase.
//
//   sysuq_analyze [--sarif FILE] [--only rule1,rule2] [--jobs N] [root...]
//
// Each root is scanned recursively for C++ sources/headers; the default
// root is `src`. Paths are reported relative to the invocation, so run
// it from the repository root (CI does). Exit codes: 0 clean,
// 1 violations, 2 usage/IO error — same protocol as the old sysuq_lint.
//
// Lexing and model building fan out over a worker pool (the engine's
// fixed-slot pattern: an atomic cursor over a pre-sorted work list,
// results landing in index-addressed slots), so output stays
// byte-identical to a serial run. A cross-root cache keyed by canonical
// absolute path tokenizes each file once even when scan roots overlap.
#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sysuq_analyze/lexer.hpp"
#include "sysuq_analyze/model.hpp"
#include "sysuq_analyze/passes.hpp"
#include "sysuq_analyze/sarif.hpp"

namespace {

namespace fs = std::filesystem;
using namespace sysuq_analyze;

// Modules whose first path component makes a file part of the layered
// tree; anything else (tests/, bench/, tools/...) is linted but takes
// no part in layering/contract bookkeeping.
const std::set<std::string>& known_modules() {
  static const std::set<std::string> kModules = {
      "core", "prob",   "bayesnet", "evidence", "perception",
      "fta",  "markov", "obs",      "orbit",    "sys"};
  return kModules;
}

bool has_cpp_ext(const fs::path& p, bool& is_header, bool& is_source) {
  const std::string ext = p.extension().string();
  is_header = ext == ".hpp" || ext == ".h" || ext == ".hxx";
  is_source = ext == ".cpp" || ext == ".cc" || ext == ".cxx";
  return is_header || is_source;
}

// Fixture trees are full of deliberate violations: skip them during
// recursion unless the scan root itself points inside one (which is how
// the fixture ctests invoke us).
bool skip_dir(const fs::path& dir) {
  const std::string name = dir.filename().string();
  if (name.empty()) return false;
  if (name[0] == '.') return true;
  if (name.rfind("build", 0) == 0) return true;
  if (name == "lint_fixture") return true;
  return false;
}

bool root_inside_fixture(const fs::path& root) {
  for (const auto& part : root) {
    if (part.string() == "lint_fixture") return true;
  }
  return false;
}

/// One file waiting to be lexed: where it is and which scan root claims
/// it (a file can be queued once per root that reaches it; the lex
/// cache makes the second tokenization free).
struct PendingFile {
  fs::path path;
  std::string root_arg;
  bool file_root = false;  ///< the root itself was a regular file
};

int collect_paths(const std::string& root_arg, std::vector<PendingFile>& out) {
  const fs::path root(root_arg);
  std::error_code ec;
  if (!fs::exists(root, ec) || ec) {
    std::cerr << "sysuq_analyze: no such path: " << root_arg << "\n";
    return 2;
  }
  const bool in_fixture = root_inside_fixture(fs::absolute(root));

  std::vector<fs::path> paths;
  if (fs::is_regular_file(root)) {
    out.push_back({root, root_arg, /*file_root=*/true});
    return 0;
  }
  fs::recursive_directory_iterator it(
      root, fs::directory_options::skip_permission_denied, ec);
  const fs::recursive_directory_iterator end;
  for (; it != end; it.increment(ec)) {
    if (ec) {
      std::cerr << "sysuq_analyze: walk error under " << root_arg << ": "
                << ec.message() << "\n";
      return 2;
    }
    if (it->is_directory() && !in_fixture && skip_dir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    bool h = false, s = false;
    if (it->is_regular_file() && has_cpp_ext(it->path(), h, s))
      paths.push_back(it->path());
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& p : paths) out.push_back({p, root_arg, false});
  return 0;
}

/// Tokenized-file cache shared by the workers: key is the canonical
/// absolute path, value the root-independent lex result. Headers
/// reached through several scan roots (or listed twice on the command
/// line) tokenize exactly once.
class LexCache {
 public:
  /// Returns the cached lex of `abs`, tokenizing on miss. Null when the
  /// file cannot be read.
  std::shared_ptr<const LexedFile> get(const fs::path& abs) {
    const std::string key = abs.string();
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = by_path_.find(key);
      if (it != by_path_.end()) return it->second;
    }
    auto fresh = std::make_shared<LexedFile>();
    fresh->abs_path = abs;
    const bool ok = lex_file(abs, *fresh);
    std::shared_ptr<const LexedFile> stored = ok ? fresh : nullptr;
    std::lock_guard<std::mutex> lock(mu_);
    by_path_.emplace(key, stored);
    return stored;
  }

 private:
  std::mutex mu_;
  // sysuq-guarded-by(mu_)
  std::map<std::string, std::shared_ptr<const LexedFile>> by_path_;
};

/// Lexes and models `pending[i]` into `slots[i]`. Returns false on
/// read failure (already reported by lex_file).
bool analyze_one(const PendingFile& pf, LexCache& cache, AnalyzedFile& slot) {
  const fs::path abs = fs::absolute(pf.path);
  const std::shared_ptr<const LexedFile> lexed = cache.get(abs);
  if (lexed == nullptr) return false;
  LexedFile f = *lexed;  // per-root fields differ; tokens are shared work
  f.root = pf.file_root ? std::string() : pf.root_arg;
  const fs::path rel = pf.file_root
                           ? pf.path.filename()
                           : pf.path.lexically_relative(pf.root_arg);
  f.rel = rel.generic_string();
  has_cpp_ext(pf.path, f.is_header, f.is_source);
  f.module_name.clear();
  const auto first = rel.begin();
  if (first != rel.end() && known_modules().count(first->string()) > 0)
    f.module_name = first->string();
  slot.lex = std::move(f);
  slot.model = build_model(slot.lex);
  return true;
}

int usage() {
  std::cerr << "usage: sysuq_analyze [--sarif FILE] [--only rule1,rule2] "
               "[--jobs N] [root...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string sarif_path;
  unsigned jobs = std::max(1u, std::min(8u, std::thread::hardware_concurrency()));
  Reporter rep;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--sarif") {
      if (++a >= argc) return usage();
      sarif_path = argv[a];
    } else if (arg == "--only") {
      if (++a >= argc) return usage();
      std::string rules = argv[a];
      std::size_t pos = 0;
      while (pos <= rules.size()) {
        const std::size_t comma = rules.find(',', pos);
        const std::string rule =
            rules.substr(pos, comma == std::string::npos ? comma : comma - pos);
        if (!rule.empty()) rep.only.insert(rule);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (arg == "--jobs") {
      if (++a >= argc) return usage();
      try {
        jobs = static_cast<unsigned>(std::stoul(argv[a]));
      } catch (...) {
        return usage();
      }
      if (jobs == 0) jobs = 1;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) roots.emplace_back("src");

  // Unknown rule names in --only are a usage error: a typo would
  // otherwise silently disable the filter's target and pass CI.
  {
    std::set<std::string> known;
    for (const RuleDoc& r : rule_catalog()) known.insert(r.id);
    std::vector<std::string> bad;
    for (const std::string& r : rep.only)
      if (known.count(r) == 0) bad.push_back(r);
    if (!bad.empty()) {
      std::cerr << "sysuq_analyze: unknown rule(s) in --only:";
      for (const std::string& r : bad) std::cerr << " " << r;
      std::cerr << "\nvalid rules:";
      for (const RuleDoc& r : rule_catalog()) std::cerr << " " << r.id;
      std::cerr << "\n";
      return 2;
    }
  }

  std::vector<PendingFile> pending;
  for (const auto& root : roots) {
    if (const int rc = collect_paths(root, pending); rc != 0) return rc;
  }

  // Fan out: fixed result slots, atomic cursor, byte-identical to the
  // serial order because slot i always holds pending[i]'s result.
  Project project;
  project.files.resize(pending.size());
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  LexCache cache;
  const unsigned nthreads =
      static_cast<unsigned>(std::min<std::size_t>(jobs, pending.size()));
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1);
      if (i >= pending.size()) return;
      if (!analyze_one(pending[i], cache, project.files[i]))
        failed.store(true);
    }
  };
  if (nthreads <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    for (unsigned i = 0; i < nthreads; ++i) threads.emplace_back(worker);
    for (auto& th : threads) th.join();
  }
  if (failed.load()) return 2;
  project.index();

  pass_layering(project, rep);
  pass_contracts(project, rep);
  pass_locks(project, rep);
  pass_mutate(project, rep);
  pass_legacy(project, rep);
  pass_arena(project, rep);
  pass_lockorder(project, rep);
  pass_logdomain(project, rep);
  pass_obscontext(project, rep);
  pass_threadescape(project, rep);
  pass_guards(project, rep);

  std::sort(rep.violations.begin(), rep.violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.path, a.line, a.rule, a.message) <
                     std::tie(b.path, b.line, b.rule, b.message);
            });
  std::set<std::string> files_hit;
  for (const auto& v : rep.violations) {
    std::cout << v.path << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
    files_hit.insert(v.path);
  }

  if (!sarif_path.empty()) {
    std::ofstream os(sarif_path);
    if (!os || !write_sarif(os, rep.violations)) {
      std::cerr << "sysuq_analyze: cannot write SARIF to " << sarif_path
                << "\n";
      return 2;
    }
  }

  if (rep.violations.empty()) {
    std::cout << "sysuq_analyze: OK (" << project.files.size() << " files)\n";
    return 0;
  }
  std::cout << "sysuq_analyze: " << rep.violations.size()
            << " violation(s) in " << files_hit.size() << " file(s)\n";
  return 1;
}
