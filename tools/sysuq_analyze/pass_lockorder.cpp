// lock-order: builds a global lock-acquisition graph across all
// mutex-owning classes and reports
//
//   1. cycles in the acquisition order (potential deadlock: two
//      threads taking the same pair of mutexes in opposite orders),
//   2. a condition_variable wait entered while holding a mutex other
//      than the one the wait releases (the held one stays locked for
//      the whole sleep),
//   3. any mutex held across a thread-pool dispatch, std::thread
//      construction, async launch, or join (the child may need the
//      same lock: instant deadlock under contention).
//
// Unlike arena-escape/log-domain this pass does not run on the CFG:
// RAII guard lifetimes follow brace scopes, so a linear statement walk
// with a scope stack (statement depths from cfg.hpp's
// linear_statements) models exactly when a lock_guard releases.
// Acquisition edges are interprocedural through per-root transitive
// acquires-summaries over the name-granular call graph, so
// `lock(a); f();` with `f` locking `b` still yields the edge a -> b.
#include <algorithm>
#include <cstddef>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sysuq_analyze/cfg.hpp"
#include "sysuq_analyze/dataflow.hpp"
#include "sysuq_analyze/lexer.hpp"
#include "sysuq_analyze/model.hpp"
#include "sysuq_analyze/passes.hpp"

namespace sysuq_analyze {

namespace {

constexpr const char* kRule = "lock-order";

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}

bool guard_type(const std::string& n) {
  return n == "lock_guard" || n == "unique_lock" || n == "scoped_lock" ||
         n == "shared_lock";
}

bool dispatch_method(const std::string& n) {
  return n == "run" || n == "submit" || n == "enqueue" || n == "post" ||
         n == "dispatch";
}

/// Effective token indices of [b, e) with lambda bodies skipped — a
/// guard declared inside a callback is scoped to the callback, not to
/// the enclosing function's walk.
std::vector<std::size_t> effective(const LexedFile& f, std::size_t b,
                                   std::size_t e) {
  std::vector<std::size_t> out;
  const auto& t = f.tokens;
  for (std::size_t i = b; i < e && i < t.size(); ++i) {
    if (t[i].kind == TokKind::kPunct && t[i].text == "[") {
      const std::size_t past = lambda_end(f, i, e);
      if (past != i) {
        i = past - 1;
        continue;
      }
    }
    out.push_back(i);
  }
  return out;
}

/// Canonical name of the mutex spelled by the identifier chain that
/// ENDS at effective index `last` (inclusive): walks back through
/// `a.b`/`a->b`/`A::b` links. Members resolve to `Class::name` so the
/// same mutex spells identically from every method; anything else
/// keeps its joined chain.
std::string canonical_mutex(const Project& project, const AnalyzedFile& af,
                            const FunctionDef& def, const LexedFile& f,
                            const std::vector<std::size_t>& eff,
                            std::size_t last) {
  const auto& t = f.tokens;
  std::vector<std::string> chain;
  std::ptrdiff_t k = static_cast<std::ptrdiff_t>(last);
  while (k >= 0) {
    const Token& tok = t[eff[static_cast<std::size_t>(k)]];
    if (tok.kind != TokKind::kIdent) break;
    chain.push_back(tok.text);
    if (k < 2) break;
    const Token& link = t[eff[static_cast<std::size_t>(k - 1)]];
    if (link.kind != TokKind::kPunct ||
        (link.text != "." && link.text != "->" && link.text != "::"))
      break;
    k -= 2;
  }
  std::reverse(chain.begin(), chain.end());
  if (!chain.empty() && chain.front() == "this") chain.erase(chain.begin());
  if (chain.empty()) return "";
  const std::string& name = chain.back();
  if (chain.size() == 1) {
    std::string cls = def.class_name;
    const bool memberish =
        (!cls.empty() &&
         [&] {
           const ClassInfo* ci = project.find_class(af, cls);
           return ci != nullptr && ci->member(name) != nullptr;
         }()) ||
        (!name.empty() && name.back() == '_');
    if (memberish && !cls.empty()) return cls + "::" + name;
    if (memberish) return f.module_name + "::" + name;
    return name;
  }
  std::string joined;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (i != 0) joined += ".";
    joined += chain[i];
  }
  return joined;
}

struct Witness {
  const LexedFile* file = nullptr;
  std::size_t line = 0;
};

struct Held {
  std::string mutex;
  std::size_t depth = 0;     ///< statement depth of the acquisition
  std::string guard;         ///< guard variable name, "" for .lock()
  bool scoped = true;        ///< pops when the brace scope closes
};

struct WalkCtx {
  const Project* project = nullptr;
  const AnalyzedFile* af = nullptr;
  const FunctionDef* def = nullptr;
  Reporter* rep = nullptr;
  /// Global acquisition graph: from -> to -> first witness.
  std::map<std::string, std::map<std::string, Witness>>* edges = nullptr;
  /// Transitive acquires-summary of this root (may be null on the
  /// summary-collection walk).
  const std::map<std::string, std::set<std::string>>* summary = nullptr;
  /// Direct acquisitions collected on the first walk.
  std::set<std::string>* direct = nullptr;
};

void add_edges(WalkCtx& ctx, const std::vector<Held>& held,
               const std::string& to, const LexedFile& f, std::size_t line) {
  if (ctx.edges == nullptr) return;
  for (const Held& h : held) {
    if (h.mutex == to) continue;
    auto& row = (*ctx.edges)[h.mutex];
    if (row.count(to) == 0) row[to] = Witness{&f, line};
  }
}

/// One statement of the scope walk. Returns via `held` / `guards`.
void walk_stmt(WalkCtx& ctx, const Stmt& s, std::vector<Held>& held,
               std::map<std::string, std::string>& guards) {
  const LexedFile& f = ctx.af->lex;
  const auto& t = f.tokens;
  const std::vector<std::size_t> eff = effective(f, s.begin, s.end);
  if (eff.empty()) return;
  const std::size_t line = t[eff[0]].line;

  // Scope exit: guards acquired deeper than this statement are gone.
  held.erase(std::remove_if(held.begin(), held.end(),
                            [&](const Held& h) {
                              return h.scoped && h.depth > s.depth;
                            }),
             held.end());

  const auto hold = [&](const std::string& mu, const std::string& guard,
                        bool scoped) {
    add_edges(ctx, held, mu, f, line);
    if (ctx.direct != nullptr) ctx.direct->insert(mu);
    for (const Held& h : held)
      if (h.mutex == mu) return;  // re-entrant spelling; keep one
    held.push_back(Held{mu, s.depth, guard, scoped});
  };

  for (std::size_t k = 0; k < eff.size(); ++k) {
    const Token& tok = t[eff[k]];
    if (tok.kind != TokKind::kIdent) continue;

    // Guard declaration: lock_guard<...> name(mu, ...).
    if (guard_type(tok.text)) {
      std::size_t j = k + 1;
      if (j < eff.size() && is_punct(t[eff[j]], "<")) {
        int d = 0;
        for (; j < eff.size(); ++j) {
          if (is_punct(t[eff[j]], "<")) ++d;
          else if (is_punct(t[eff[j]], ">") && --d == 0) {
            ++j;
            break;
          }
        }
      }
      if (j + 1 >= eff.size() || t[eff[j]].kind != TokKind::kIdent ||
          !is_punct(t[eff[j + 1]], "("))
        continue;
      const std::string guard_name = t[eff[j]].text;
      // Arguments: top-level comma split; each argument's trailing
      // identifier chain names a mutex.
      int d = 0;
      std::size_t arg_last = 0;
      bool have_arg = false, deferred = false;
      std::vector<std::size_t> arg_ends;
      std::size_t close = eff.size();
      for (std::size_t a = j + 1; a < eff.size(); ++a) {
        const Token& at = t[eff[a]];
        if (at.kind == TokKind::kPunct) {
          if (at.text == "(") {
            ++d;
            continue;
          }
          if (at.text == ")") {
            if (--d == 0) {
              if (have_arg) arg_ends.push_back(arg_last);
              close = a;
              break;
            }
            continue;
          }
          if (at.text == "," && d == 1) {
            if (have_arg) arg_ends.push_back(arg_last);
            have_arg = false;
            continue;
          }
        }
        if (d == 1 && at.kind == TokKind::kIdent) {
          arg_last = a;
          have_arg = true;
        }
      }
      for (const std::size_t a : arg_ends) {
        const std::string& word = t[eff[a]].text;
        if (word == "defer_lock") {
          deferred = true;
          continue;
        }
        if (word == "adopt_lock" || word == "try_to_lock") continue;
        const std::string mu = canonical_mutex(*ctx.project, *ctx.af,
                                               *ctx.def, f, eff, a);
        if (mu.empty()) continue;
        guards[guard_name] = mu;
        if (!deferred) hold(mu, guard_name, /*scoped=*/true);
      }
      k = close;
      continue;
    }

    // Method calls on an identifier chain: X.lock() / X.unlock() /
    // cv.wait(lk) / pool->run(...) / t.join().
    const bool methodish = k >= 2 && t[eff[k - 1]].kind == TokKind::kPunct &&
                           (t[eff[k - 1]].text == "." ||
                            t[eff[k - 1]].text == "->") &&
                           k + 1 < eff.size() && is_punct(t[eff[k + 1]], "(");
    if (methodish && tok.text == "lock") {
      const std::string recv = t[eff[k - 2]].text;
      const auto g = guards.find(recv);
      const std::string mu =
          g != guards.end()
              ? g->second
              : canonical_mutex(*ctx.project, *ctx.af, *ctx.def, f, eff,
                                k - 2);
      if (!mu.empty())
        hold(mu, g != guards.end() ? recv : "", /*scoped=*/g != guards.end());
      continue;
    }
    if (methodish && tok.text == "unlock") {
      const std::string recv = t[eff[k - 2]].text;
      const auto g = guards.find(recv);
      const std::string mu = g != guards.end()
                                 ? g->second
                                 : canonical_mutex(*ctx.project, *ctx.af,
                                                   *ctx.def, f, eff, k - 2);
      held.erase(std::remove_if(held.begin(), held.end(),
                                [&](const Held& h) { return h.mutex == mu; }),
                 held.end());
      continue;
    }
    if (methodish && (tok.text == "wait" || tok.text == "wait_for" ||
                      tok.text == "wait_until")) {
      // First argument: the unique_lock the wait releases.
      std::string released;
      if (k + 2 < eff.size() && t[eff[k + 2]].kind == TokKind::kIdent) {
        const std::string& arg = t[eff[k + 2]].text;
        const auto g = guards.find(arg);
        released = g != guards.end()
                       ? g->second
                       : canonical_mutex(*ctx.project, *ctx.af, *ctx.def, f,
                                         eff, k + 2);
      }
      if (ctx.rep != nullptr) {
        for (const Held& h : held) {
          if (h.mutex == released) continue;
          ctx.rep->report(
              f, line, kRule,
              "condition_variable wait releases '" + released +
                  "' but '" + h.mutex +
                  "' stays locked for the whole sleep; drop it before "
                  "waiting or the sleeping thread blocks every peer");
        }
      }
      continue;
    }
    if (methodish && tok.text == "join") {
      if (ctx.rep != nullptr && !held.empty()) {
        ctx.rep->report(f, line, kRule,
                        "'" + held.front().mutex +
                            "' held across a thread join; the joined "
                            "thread may need that lock to finish — "
                            "release before joining");
      }
      continue;
    }
    if (methodish && dispatch_method(tok.text)) {
      const std::string recv = t[eff[k - 2]].text;
      if (recv.find("pool") != std::string::npos && ctx.rep != nullptr &&
          !held.empty()) {
        ctx.rep->report(f, line, kRule,
                        "'" + held.front().mutex +
                            "' held across a thread-pool dispatch; pool "
                            "workers contending for it deadlock against "
                            "the dispatching thread — release first");
      }
      // Fall through: `run` may also be a summarized callee below.
    }

    // std::thread t(...) / async(...) construction under a lock.
    if ((tok.text == "thread" || tok.text == "async" || tok.text == "jthread")
        && ctx.rep != nullptr && !held.empty()) {
      const bool std_qualified =
          k >= 2 && is_punct(t[eff[k - 1]], "::") &&
          t[eff[k - 2]].kind == TokKind::kIdent && t[eff[k - 2]].text == "std";
      if (std_qualified) {
        ctx.rep->report(f, line, kRule,
                        "'" + held.front().mutex +
                            "' held across a std::" + tok.text +
                            " launch; the new thread may need that lock "
                            "immediately — release before spawning");
        continue;
      }
    }

    // Interprocedural edges through the acquires-summary.
    const bool called = k + 1 < eff.size() && is_punct(t[eff[k + 1]], "(") &&
                        !(k >= 1 && t[eff[k - 1]].kind == TokKind::kPunct &&
                          t[eff[k - 1]].text == "::" && k >= 2 &&
                          t[eff[k - 2]].text == "std");
    if (called && ctx.summary != nullptr && !held.empty() &&
        tok.text != ctx.def->name) {
      const auto it = ctx.summary->find(tok.text);
      if (it != ctx.summary->end())
        for (const std::string& mu : it->second) add_edges(ctx, held, mu, f, line);
    }
  }
}

void walk_def(WalkCtx& ctx) {
  std::vector<Held> held;
  std::map<std::string, std::string> guards;
  for (const Stmt& s :
       linear_statements(ctx.af->lex, *ctx.def))
    walk_stmt(ctx, s, held, guards);
}

}  // namespace

void pass_lockorder(const Project& project, Reporter& rep) {
  if (!rep.enabled(kRule)) return;

  // Phase 1: per-function direct acquisitions, per root.
  std::map<std::string, std::map<std::string, std::set<std::string>>>
      acquires;  // root -> fn -> mutexes
  for (const auto& af : project.files) {
    for (const auto& def : af.model.defs) {
      WalkCtx ctx;
      ctx.project = &project;
      ctx.af = &af;
      ctx.def = &def;
      ctx.direct = &acquires[af.lex.root][def.name];
      walk_def(ctx);
    }
  }

  // Phase 2: transitive closure over the name-granular call graph.
  const CallGraph cg = build_call_graph(project);
  for (auto& [root, per_fn] : acquires) {
    const auto cg_it = cg.callees_by_root.find(root);
    if (cg_it == cg.callees_by_root.end()) continue;
    for (bool grew = true; grew;) {
      grew = false;
      for (auto& [fn, mus] : per_fn) {
        const auto callees = cg_it->second.find(fn);
        if (callees == cg_it->second.end()) continue;
        for (const std::string& callee : callees->second) {
          if (callee == fn) continue;
          const auto c = per_fn.find(callee);
          if (c == per_fn.end()) continue;
          for (const std::string& mu : c->second)
            if (mus.insert(mu).second) grew = true;
        }
      }
    }
  }

  // Phase 3: edge collection + local violations (waits, dispatches).
  std::map<std::string, std::map<std::string, Witness>> edges;
  for (const auto& af : project.files) {
    const auto& summary = acquires[af.lex.root];
    for (const auto& def : af.model.defs) {
      WalkCtx ctx;
      ctx.project = &project;
      ctx.af = &af;
      ctx.def = &def;
      ctx.rep = &rep;
      ctx.edges = &edges;
      ctx.summary = &summary;
      walk_def(ctx);
    }
  }

  // Phase 4: cycle detection over the acquisition graph. Each cycle is
  // reported once, anchored at the witness of its first edge, with the
  // cycle rotated so its lexicographically smallest mutex leads
  // (deterministic across runs and file orders).
  std::set<std::string> seen_cycles;
  std::vector<std::string> nodes;
  for (const auto& [from, row] : edges) {
    nodes.push_back(from);
    (void)row;
  }
  for (const std::string& start : nodes) {
    std::vector<std::string> path{start};
    std::set<std::string> on_path{start};
    // Bounded DFS: graphs here are tiny; the caps are a safety net.
    std::function<void(const std::string&)> dfs =
        [&](const std::string& node) {
          if (path.size() > 8 || seen_cycles.size() > 32) return;
          const auto row = edges.find(node);
          if (row == edges.end()) return;
          for (const auto& [next, wit] : row->second) {
            (void)wit;
            if (next == start) {
              // Only report with the smallest node leading.
              if (*std::min_element(path.begin(), path.end()) != start)
                continue;
              std::string desc = start;
              for (std::size_t i = 1; i < path.size(); ++i)
                desc += " -> " + path[i];
              desc += " -> " + start;
              if (!seen_cycles.insert(desc).second) continue;
              // Anchor at the first edge of the cycle when available.
              const Witness* w = &wit;
              if (path.size() > 1) {
                const auto r0 = edges.find(start);
                if (r0 != edges.end()) {
                  const auto e0 = r0->second.find(path[1]);
                  if (e0 != r0->second.end()) w = &e0->second;
                }
              }
              rep.report(*w->file, w->line, kRule,
                         "potential deadlock: lock-order cycle " + desc +
                             "; pick one global acquisition order and "
                             "stick to it");
              continue;
            }
            if (on_path.count(next) > 0 || next < start) continue;
            path.push_back(next);
            on_path.insert(next);
            dfs(next);
            path.pop_back();
            on_path.erase(next);
          }
        };
    dfs(start);
  }
}

}  // namespace sysuq_analyze
