// Concurrency passes.
//
// lock-discipline — in classes owning a std::mutex (wherever the class
// body lives: the header, or a .cpp for file-local helpers), a member
// function must not write a non-atomic member outside the scope of a
// lock_guard / unique_lock / scoped_lock, and must not call .load() /
// .store() on an atomic member with a memory order stricter than the
// member's declared ceiling (default: relaxed; raise it with
// `// sysuq-atomic-order(<order>)` on the member's declaration line).
// A bare .load()/.store() defaults to seq_cst and is therefore flagged
// — the point is that accidental seq_cst on a statistics counter is a
// performance bug and, worse, can hide a missing lock by providing
// ordering the design never promised.
//
// validate-before-mutate — a member mutation that precedes the last
// precondition check (SYSUQ_EXPECT / SYSUQ_ASSERT_PROB*) in a function
// leaves the object half-mutated when the check throws: the PR-2
// set_cpt bug class. Validate everything, then mutate.
#include "sysuq_analyze/passes.hpp"

#include <cstddef>
#include <string>
#include <vector>

#include "sysuq_analyze/lockscope.hpp"

namespace sysuq_analyze {

namespace {

bool is_punct_tok(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}

bool is_assign_op(const Token& t) {
  if (t.kind != TokKind::kPunct) return false;
  const std::string& p = t.text;
  return p == "=" || p == "+=" || p == "-=" || p == "*=" || p == "/=" ||
         p == "%=" || p == "&=" || p == "|=" || p == "^=" || p == "<<=" ||
         p == ">>=" || p == "++" || p == "--";
}

bool is_mutating_call(const std::string& name) {
  return name == "clear" || name == "insert" || name == "erase" ||
         name == "emplace" || name == "emplace_back" || name == "push_back" ||
         name == "pop_back" || name == "resize" || name == "reserve" ||
         name == "assign";
}

// Token index one past a balanced bracket pair starting at i.
std::size_t skip_balanced(const LexedFile& f, std::size_t i, const char* open,
                          const char* close) {
  int depth = 0;
  for (; i < f.tokens.size(); ++i) {
    if (is_punct_tok(f.tokens[i], open)) ++depth;
    else if (is_punct_tok(f.tokens[i], close) && --depth == 0) return i + 1;
  }
  return i;
}

// Is token i (an identifier naming a member) written to here? Looks
// through an optional [index] subscript for the assignment operator and
// recognizes mutating container calls.
bool is_member_write(const LexedFile& f, std::size_t i) {
  const auto& t = f.tokens;
  // Not a plain member reference when qualified or accessed off another
  // object (other.x_ = ... is that object's business; this->x_ counts).
  if (i > 0 && t[i - 1].kind == TokKind::kPunct) {
    const std::string& p = t[i - 1].text;
    if (p == "." || p == "::") return false;
    if (p == "->" && !(i > 1 && t[i - 2].text == "this")) return false;
    if (p == "++" || p == "--") return true;  // pre-increment
  }
  std::size_t j = i + 1;
  if (j < t.size() && is_punct_tok(t[j], "["))
    j = skip_balanced(f, j, "[", "]");
  if (j >= t.size()) return false;
  if (is_assign_op(t[j])) {
    // `==`/`!=` already excluded by is_assign_op; `=` inside a
    // comparison like <= is a distinct token, so this is a real write.
    return true;
  }
  if ((is_punct_tok(t[j], ".") || is_punct_tok(t[j], "->")) &&
      j + 1 < t.size() && t[j + 1].kind == TokKind::kIdent &&
      is_mutating_call(t[j + 1].text) && j + 2 < t.size() &&
      is_punct_tok(t[j + 2], "(")) {
    return true;
  }
  return false;
}

int order_rank(const std::string& order) {
  if (order == "relaxed") return 0;
  if (order == "consume") return 1;
  if (order == "acquire" || order == "release") return 2;
  if (order == "acq_rel") return 3;
  return 4;  // seq_cst and anything unrecognized
}

// The memory order named in a .load(...)/.store(...) argument list
// starting at the '(' token; "" when no order argument is present
// (which means seq_cst). The order is the call's LAST argument, so the
// last match wins — a nested `x.load(acquire)` inside a store's value
// expression must not be mistaken for the store's own order.
std::string call_order(const LexedFile& f, std::size_t paren) {
  const std::size_t end = skip_balanced(f, paren, "(", ")");
  std::string order;
  for (std::size_t k = paren; k < end; ++k) {
    const Token& t = f.tokens[k];
    if (t.kind != TokKind::kIdent) continue;
    static const std::string kPrefix = "memory_order_";
    if (t.text.rfind(kPrefix, 0) == 0) order = t.text.substr(kPrefix.size());
    else if (t.text == "memory_order" && k + 2 < end &&
             is_punct_tok(f.tokens[k + 1], "::"))
      order = f.tokens[k + 2].text;
  }
  return order;
}

bool is_lock_decl(const Token& t) {
  return t.kind == TokKind::kIdent &&
         (t.text == "lock_guard" || t.text == "unique_lock" ||
          t.text == "scoped_lock" || t.text == "shared_lock");
}

void check_lock_discipline(const LexedFile& f, const FunctionDef& def,
                           const ClassInfo& ci, bool entry_held,
                           Reporter& rep) {
  const auto& t = f.tokens;
  int depth = 0;
  std::vector<int> lock_depths;  // scope depth at each active lock
  // A sysuq-requires contract means the caller already holds a lock:
  // the whole body is a lock scope (depth -1 never pops).
  if (entry_held) lock_depths.push_back(-1);
  for (std::size_t i = def.body_begin; i < def.body_end; ++i) {
    const Token& tok = t[i];
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == "{") ++depth;
      else if (tok.text == "}") {
        --depth;
        while (!lock_depths.empty() && lock_depths.back() > depth)
          lock_depths.pop_back();
      }
      continue;
    }
    if (tok.kind != TokKind::kIdent) continue;
    if (is_lock_decl(tok)) {
      lock_depths.push_back(depth);
      continue;
    }
    const MemberVar* m = ci.member(tok.text);
    if (m == nullptr) continue;

    // Stricter-than-declared .load()/.store() on an atomic member.
    if (m->is_atomic) {
      std::size_t j = i + 1;
      if (j < t.size() && is_punct_tok(t[j], "["))
        j = skip_balanced(f, j, "[", "]");
      if (j + 1 < t.size() && is_punct_tok(t[j], ".") &&
          t[j + 1].kind == TokKind::kIdent &&
          (t[j + 1].text == "load" || t[j + 1].text == "store") &&
          j + 2 < t.size() && is_punct_tok(t[j + 2], "(")) {
        const std::string declared =
            m->declared_order.empty() ? "relaxed" : m->declared_order;
        const std::string used = call_order(f, j + 2);
        const std::string used_name = used.empty() ? "seq_cst (default)" : used;
        if (order_rank(used) > order_rank(declared)) {
          rep.report(f, t[j + 1].line, "lock-discipline",
                     "atomic member '" + m->name + "'." + t[j + 1].text +
                         " uses memory order " + used_name +
                         ", stricter than its declared ceiling '" + declared +
                         "' (raise it with // sysuq-atomic-order(...) on the "
                         "member, or relax the call)");
        }
      }
      continue;
    }

    // Non-atomic member write outside any lock scope.
    if (!def.is_ctor && !def.is_dtor && lock_depths.empty() &&
        is_member_write(f, i)) {
      rep.report(f, tok.line, "lock-discipline",
                 "write to non-atomic member '" + m->name + "' of '" +
                     ci.name +
                     "' (a mutex-owning class) outside a lock_guard/"
                     "unique_lock scope");
    }
  }
}

void check_validate_before_mutate(const LexedFile& f, const FunctionDef& def,
                                  const ClassInfo* ci, Reporter& rep) {
  const auto& t = f.tokens;
  // Last precondition check in the body. SYSUQ_ENSURE is a
  // postcondition: mutations naturally precede it, so it does not count.
  std::size_t last_check = 0;
  bool has_check = false;
  for (std::size_t i = def.body_begin; i < def.body_end; ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (t[i].text == "SYSUQ_EXPECT" || t[i].text == "SYSUQ_ASSERT_PROB" ||
        t[i].text == "SYSUQ_ASSERT_PROB_VEC") {
      last_check = i;
      has_check = true;
    }
  }
  if (!has_check) return;

  for (std::size_t i = def.body_begin; i < last_check; ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string& name = t[i].text;
    const bool member_name =
        ci != nullptr
            ? ci->member(name) != nullptr
            : name.size() > 1 && name.back() == '_';  // repo style: foo_
    if (!member_name) continue;
    if (ci != nullptr && ci->member(name)->is_mutex) continue;
    if (is_member_write(f, i)) {
      rep.report(f, t[i].line, "validate-before-mutate",
                 "member '" + name +
                     "' is mutated before the function's last precondition "
                     "check; a throwing contract would leave the object "
                     "half-mutated (validate everything, then mutate)");
    }
  }
}

}  // namespace

void pass_locks(const Project& project, Reporter& rep) {
  if (!rep.enabled("lock-discipline")) return;
  for (const auto& af : project.files) {
    for (const auto& def : af.model.defs) {
      if (def.class_name.empty()) continue;
      const ClassInfo* ci = project.find_class(af, def.class_name);
      if (ci == nullptr || !ci->owns_mutex) continue;
      check_lock_discipline(af.lex, def, *ci,
                            !entry_locks(project, af, def).empty(), rep);
    }
  }
}

void pass_mutate(const Project& project, Reporter& rep) {
  if (!rep.enabled("validate-before-mutate")) return;
  for (const auto& af : project.files) {
    for (const auto& def : af.model.defs) {
      if (def.is_ctor || def.is_dtor) continue;
      const ClassInfo* ci = def.class_name.empty()
                                ? nullptr
                                : project.find_class(af, def.class_name);
      check_validate_before_mutate(af.lex, def, ci, rep);
    }
  }
}

}  // namespace sysuq_analyze
