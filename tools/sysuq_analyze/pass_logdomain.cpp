// log-domain: values produced by the log-space kernels (log_total,
// to_log, log_product_into, std::log, ...) live on a different axis
// than linear-domain probabilities, and the two must not meet without
// an explicit conversion. Three shapes are flagged:
//
//   1. a log-domain value passed to SYSUQ_ASSERT_PROB / _VEC (those
//      contracts check [0,1] mass, which a log value never satisfies)
//      without an exp()/from_log() in the argument,
//   2. a log-domain value as a direct operand of linear `*` or `/`
//      (in log space, multiply is `+`; a naked `*` almost always means
//      a forgotten conversion),
//   3. naive `acc += p[i]` accumulation over a probability array in a
//      loop — directs toward kernels' Neumaier-compensated total()
//      (the PR-3 bug class: mass drift on long summations).
//
// Log-ness travels two ways: through the dataflow lattice (kLog bit,
// strong updates on plain assignment so `x = std::exp(x)` launders),
// and through names — identifiers with a `log_` prefix / `_log` suffix
// (members like log_scale_, log_evidence_) are log-domain by
// convention, which catches flows through members that a local-only
// lattice cannot see. Function return summaries iterate per root like
// the other dataflow passes.
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sysuq_analyze/cfg.hpp"
#include "sysuq_analyze/dataflow.hpp"
#include "sysuq_analyze/lexer.hpp"
#include "sysuq_analyze/model.hpp"
#include "sysuq_analyze/passes.hpp"

namespace sysuq_analyze {

namespace {

constexpr unsigned kLog = 1u;
constexpr unsigned kAcc = 2u;  ///< scalar accumulator initialized to 0

constexpr const char* kRule = "log-domain";

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}

/// Functions whose result is a log-domain value.
bool log_fn(const std::string& n) {
  static const std::set<std::string> kFns = {
      "log",       "log1p",   "log2",          "log10",
      "lgamma",    "to_log",  "log_total",     "log_sum_exp",
      "logsumexp", "log_product", "log_evidence_probability",
      "log_evidence",
  };
  return kFns.count(n) > 0 || n.rfind("log_", 0) == 0;
}

/// Functions converting out of the log domain.
bool exp_fn(const std::string& n) {
  return n == "exp" || n == "expm1" || n == "exp2" || n == "from_log";
}

/// Identifiers that are log-domain by naming convention.
bool log_name(const std::string& n) {
  if (n.rfind("log_", 0) == 0) return true;
  if (n.size() > 4 && n.compare(n.size() - 4, 4, "_log") == 0) return true;
  if (n.size() > 5 && n.compare(n.size() - 5, 5, "_log_") == 0) return true;
  return false;
}

bool type_word(const std::string& w) {
  static const std::set<std::string> kTypes = {
      "double", "float", "int",    "long",   "unsigned", "const",
      "auto",   "size_t", "short", "char",   "bool",     "signed",
  };
  return kTypes.count(w) > 0;
}

/// Skips lambda bodies, returning effective token indices of [b, e).
std::vector<std::size_t> effective(const LexedFile& f, std::size_t b,
                                   std::size_t e) {
  std::vector<std::size_t> out;
  const auto& t = f.tokens;
  for (std::size_t i = b; i < e && i < t.size(); ++i) {
    if (t[i].kind == TokKind::kPunct && t[i].text == "[") {
      const std::size_t past = lambda_end(f, i, e);
      if (past != i) {
        i = past - 1;
        continue;
      }
    }
    out.push_back(i);
  }
  return out;
}

/// Does the expression over effective indices [from, to) produce a
/// log-domain value? A call to a log function or summary callee at
/// depth 0, a mentioned kLog variable, or a log-named identifier chain
/// — unless the whole thing is wrapped in an exp-family call.
bool produces_log(const LexedFile& f, const std::vector<std::size_t>& eff,
                  std::size_t from, std::size_t to, const VarState& state,
                  const std::set<std::string>& summary) {
  const auto& t = f.tokens;
  int depth = 0;
  bool saw_log = false;
  for (std::size_t k = from; k < to && k < eff.size(); ++k) {
    const Token& tok = t[eff[k]];
    if (tok.kind == TokKind::kPunct) {
      const std::string& p = tok.text;
      if (p == "(" || p == "[" || p == "{") ++depth;
      else if (p == ")" || p == "]" || p == "}") --depth;
      continue;
    }
    if (tok.kind != TokKind::kIdent) continue;
    const bool called = k + 1 < to && k + 1 < eff.size() &&
                        is_punct(t[eff[k + 1]], "(");
    if (called && exp_fn(tok.text)) {
      // Skip the exp(...) call: its contents are laundered.
      int d = 0;
      std::size_t j = k + 1;
      for (; j < to && j < eff.size(); ++j) {
        if (is_punct(t[eff[j]], "(")) ++d;
        else if (is_punct(t[eff[j]], ")") && --d == 0) break;
      }
      k = j;
      continue;
    }
    // Summaries are keyed by bare function name, which is only sound
    // for free functions: `p.entropy()` must not pick up a summary
    // recorded for some other class's entropy(). Member calls skip the
    // summary lookup (log_fn naming still applies).
    const bool member_call =
        k > from && t[eff[k - 1]].kind == TokKind::kPunct &&
        (t[eff[k - 1]].text == "." || t[eff[k - 1]].text == "->");
    if (called && (log_fn(tok.text) ||
                   (!member_call && summary.count(tok.text) > 0))) {
      // Exponent/expectation exemption: `k * std::log(p)` (log of a
      // power) and `v * std::log(v)` (entropy terms) are intentional
      // log math whose product is linear-domain — the scaled call does
      // not taint. A bare `std::log(p)` with no adjacent `*`/`/` does.
      std::size_t head = k;
      while (head >= 2 && t[eff[head - 1]].kind == TokKind::kPunct &&
             (t[eff[head - 1]].text == "::" || t[eff[head - 1]].text == "." ||
              t[eff[head - 1]].text == "->") &&
             t[eff[head - 2]].kind == TokKind::kIdent)
        head -= 2;
      int d = 0;
      std::size_t close = to;
      for (std::size_t j = k + 1; j < to && j < eff.size(); ++j) {
        if (is_punct(t[eff[j]], "(")) ++d;
        else if (is_punct(t[eff[j]], ")") && --d == 0) {
          close = j;
          break;
        }
      }
      const bool scaled_before =
          head > from && (is_punct(t[eff[head - 1]], "*") ||
                          is_punct(t[eff[head - 1]], "/"));
      const bool scaled_after =
          close + 1 < to && close + 1 < eff.size() &&
          (is_punct(t[eff[close + 1]], "*") ||
           is_punct(t[eff[close + 1]], "/"));
      if (scaled_before || scaled_after) {
        k = close;
        continue;
      }
      saw_log = true;
      continue;
    }
    if (log_name(tok.text)) {
      saw_log = true;
      continue;
    }
    const bool qualified =
        k > from && t[eff[k - 1]].kind == TokKind::kPunct &&
        (t[eff[k - 1]].text == "." || t[eff[k - 1]].text == "->" ||
         t[eff[k - 1]].text == "::");
    if (!qualified) {
      const auto it = state.find(tok.text);
      if (it != state.end() && (it->second & kLog) != 0) saw_log = true;
    }
  }
  return saw_log;
}

/// Plain `name = rhs;` assignment target, or "" when the statement is
/// anything else (declarations return the declared name too).
struct Target {
  std::string name;
  std::size_t rhs_from = 0;
  std::size_t rhs_to = 0;
  bool strong = false;  ///< plain `x = ...`: replace, don't join
  bool decl_scalar_zero = false;
};

Target find_target(const LexedFile& f, const std::vector<std::size_t>& eff) {
  Target tg;
  const auto& t = f.tokens;
  if (eff.empty()) return tg;
  if (t[eff[0]].kind == TokKind::kIdent) {
    const std::string& lead = t[eff[0]].text;
    if (lead == "return" || lead == "if" || lead == "while" ||
        lead == "for" || lead == "switch")
      return tg;
  }
  int depth = 0;
  std::size_t eq = eff.size();
  bool plain_eq = false;
  for (std::size_t k = 0; k < eff.size(); ++k) {
    const Token& tok = t[eff[k]];
    if (tok.kind == TokKind::kPunct) {
      const std::string& p = tok.text;
      if (p == "(" || p == "[" || p == "{") ++depth;
      else if (p == ")" || p == "]" || p == "}") --depth;
      else if (depth == 0 && (p == "=" || p == "+=" || p == "-=")) {
        eq = k;
        plain_eq = p == "=";
        break;
      }
    }
  }
  if (eq == eff.size()) return tg;
  // LHS must be a bare identifier chain (optionally typed decl).
  std::size_t words = 0, last = eff.size();
  for (std::size_t k = 0; k < eq; ++k) {
    const Token& tok = t[eff[k]];
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == "[" || tok.text == "." || tok.text == "->")
        return tg;  // subscript / member write: weak, skip
      continue;
    }
    if (tok.kind != TokKind::kIdent) continue;
    if (k > 0 && is_punct(t[eff[k - 1]], "::")) continue;
    ++words;
    last = k;
  }
  if (last == eff.size()) return tg;
  tg.name = t[eff[last]].text;
  tg.rhs_from = eq + 1;
  tg.rhs_to = eff.size();
  if (tg.rhs_to > tg.rhs_from && is_punct(t[eff[tg.rhs_to - 1]], ";"))
    --tg.rhs_to;
  tg.strong = plain_eq;
  if (words >= 2 && plain_eq) {
    // Declaration: `double acc = 0;` marks a floating accumulator
    // (integer counters are exact; only float sums drift).
    bool scalar = false;
    for (std::size_t k = 0; k < last; ++k)
      if (t[eff[k]].kind == TokKind::kIdent &&
          (t[eff[k]].text == "double" || t[eff[k]].text == "float"))
        scalar = true;
    if (scalar && tg.rhs_to == tg.rhs_from + 1) {
      const Token& init = t[eff[tg.rhs_from]];
      if (init.kind == TokKind::kNumber &&
          (init.text == "0" || init.text == "0.0" || init.text == "0."))
        tg.decl_scalar_zero = true;
    }
  }
  return tg;
}

void transfer_log(const LexedFile& f, const Stmt& s, VarState& state,
                  const std::set<std::string>& summary,
                  const std::string& def_name,
                  std::set<std::string>* summary_out) {
  const std::vector<std::size_t> eff = effective(f, s.begin, s.end);
  if (eff.empty()) return;
  const auto& t = f.tokens;
  if (t[eff[0]].kind == TokKind::kIdent && t[eff[0]].text == "return") {
    if (summary_out != nullptr &&
        produces_log(f, eff, 1, eff.size(), state, summary))
      summary_out->insert(def_name);
    return;
  }
  const Target tg = find_target(f, eff);
  if (tg.name.empty()) return;
  const bool logness =
      produces_log(f, eff, tg.rhs_from, tg.rhs_to, state, summary);
  unsigned& bits = state[tg.name];
  if (tg.strong) {
    bits = (logness ? kLog : 0u) | (tg.decl_scalar_zero ? kAcc : 0u);
  } else if (logness) {
    bits |= kLog;
  }
}

/// Is the operand chain touching `*`/`/` at effective index `op`
/// log-domain? `dir` = -1 scans left, +1 scans right.
bool operand_log(const LexedFile& f, const std::vector<std::size_t>& eff,
                 std::size_t op, int dir, const VarState& state,
                 const std::set<std::string>& summary) {
  const auto& t = f.tokens;
  std::ptrdiff_t k = static_cast<std::ptrdiff_t>(op) + dir;
  const auto tok_at = [&](std::ptrdiff_t i) -> const Token* {
    if (i < 0 || i >= static_cast<std::ptrdiff_t>(eff.size())) return nullptr;
    return &t[eff[static_cast<std::size_t>(i)]];
  };
  const Token* tok = tok_at(k);
  if (tok == nullptr) return false;
  if (dir < 0) {
    // Walk back through `)`-closed calls / subscripts to the head.
    if (tok->kind == TokKind::kPunct &&
        (tok->text == ")" || tok->text == "]")) {
      const std::string close = tok->text;
      const std::string open = close == ")" ? "(" : "[";
      int d = 0;
      for (; k >= 0; --k) {
        const Token* c = tok_at(k);
        if (c == nullptr) break;
        if (c->kind == TokKind::kPunct && c->text == close) ++d;
        else if (c->kind == TokKind::kPunct && c->text == open && --d == 0) {
          --k;
          break;
        }
      }
      const Token* callee = tok_at(k);
      // Only a real call gets the callee treatment; a subscript head
      // (`sample[lo]`) must not match a function summary of the same
      // name. An inline log call (`std::log(x) * y`) is deliberately
      // NOT a violation operand: writing the call next to the operator
      // is the exponent rule in plain sight. The bug class is a log
      // value whose tag got lost — a named variable or a value routed
      // through a function boundary (summary).
      if (close == ")" && callee != nullptr &&
          callee->kind == TokKind::kIdent) {
        if (exp_fn(callee->text) || log_fn(callee->text)) return false;
        const Token* before = tok_at(k - 1);
        const bool member_call = before != nullptr &&
                                 before->kind == TokKind::kPunct &&
                                 (before->text == "." || before->text == "->");
        if (!member_call && summary.count(callee->text) > 0) return true;
      }
      // An array subscript head falls through to the chain walk below.
      tok = callee;
    }
    // Identifier chain `a.b.c` leftwards.
    while (tok != nullptr && tok->kind == TokKind::kIdent) {
      if (log_name(tok->text)) return true;
      const Token* prev = tok_at(k - 1);
      const bool qualified = prev != nullptr &&
                             prev->kind == TokKind::kPunct &&
                             (prev->text == "." || prev->text == "->" ||
                              prev->text == "::");
      if (!qualified) {
        const auto it = state.find(tok->text);
        return it != state.end() && (it->second & kLog) != 0;
      }
      k -= 2;
      tok = tok_at(k);
    }
    return false;
  }
  // dir > 0: skip unary minus/plus, then a call or identifier chain.
  while (tok != nullptr && tok->kind == TokKind::kPunct &&
         (tok->text == "-" || tok->text == "+" || tok->text == "(")) {
    ++k;
    tok = tok_at(k);
  }
  bool head = true;
  bool via_member = false;
  while (tok != nullptr && tok->kind == TokKind::kIdent) {
    const Token* next = tok_at(k + 1);
    const bool called = next != nullptr && next->kind == TokKind::kPunct &&
                        next->text == "(";
    if (called && (exp_fn(tok->text) || log_fn(tok->text))) return false;
    if (called && !via_member && summary.count(tok->text) > 0) return true;
    if (log_name(tok->text)) return true;
    if (head) {
      const auto it = state.find(tok->text);
      if (it != state.end() && (it->second & kLog) != 0) return true;
    }
    head = false;
    if (next != nullptr && next->kind == TokKind::kPunct &&
        (next->text == "." || next->text == "->" || next->text == "::")) {
      via_member = next->text != "::";
      k += 2;
      tok = tok_at(k);
      continue;
    }
    break;
  }
  return false;
}

bool binary_mul_context(const LexedFile& f,
                        const std::vector<std::size_t>& eff, std::size_t op) {
  const auto& t = f.tokens;
  if (op == 0 || op + 1 >= eff.size()) return false;
  const Token& prev = t[eff[op - 1]];
  const Token& next = t[eff[op + 1]];
  // Left of a binary `*`/`/` is a value-ending token; `double* p`,
  // `View* v` and `*p` deref are not.
  const bool lhs_value =
      prev.kind == TokKind::kNumber ||
      (prev.kind == TokKind::kIdent && !type_word(prev.text) &&
       prev.text != "operator") ||
      (prev.kind == TokKind::kPunct &&
       (prev.text == ")" || prev.text == "]"));
  const bool rhs_value =
      next.kind == TokKind::kNumber || next.kind == TokKind::kIdent ||
      (next.kind == TokKind::kPunct &&
       (next.text == "(" || next.text == "-" || next.text == "+"));
  return lhs_value && rhs_value;
}

struct LogUnit {
  const AnalyzedFile* af = nullptr;
  const FunctionDef* def = nullptr;
  Cfg cfg;
};

}  // namespace

void pass_logdomain(const Project& project, Reporter& rep) {
  if (!rep.enabled(kRule)) return;

  std::vector<LogUnit> units;
  for (const auto& af : project.files)
    for (const auto& def : af.model.defs)
      units.push_back({&af, &def, build_cfg(af.lex, def)});

  std::map<std::string, std::set<std::string>> summaries;
  for (bool grew = true; grew;) {
    grew = false;
    for (const LogUnit& u : units) {
      std::set<std::string>& summary = summaries[u.af->lex.root];
      const std::size_t before = summary.size();
      const LexedFile& f = u.af->lex;
      const std::string name = u.def->name;
      ForwardAnalysis fa(u.cfg, {},
                         [&f, &summary, &name](const Stmt& s, VarState& st) {
                           transfer_log(f, s, st, summary, name, &summary);
                         });
      (void)fa;
      if (summary.size() != before) grew = true;
    }
  }

  for (const LogUnit& u : units) {
    const LexedFile& f = u.af->lex;
    const auto& t = f.tokens;
    const std::set<std::string>& summary = summaries[u.af->lex.root];
    const std::string name = u.def->name;
    ForwardAnalysis fa(u.cfg, {},
                       [&f, &summary, &name](const Stmt& s, VarState& st) {
                         transfer_log(f, s, st, summary, name, nullptr);
                       });

    // Loop nesting by source order: a `for`/`while`/`do` header at
    // depth d puts subsequent deeper statements inside a loop.
    const std::vector<Stmt> linear = linear_statements(f, *u.def);
    std::map<std::size_t, char> in_loop;  // stmt.begin -> inside-loop?
    {
      std::vector<std::size_t> loop_depths;
      for (const Stmt& s : linear) {
        while (!loop_depths.empty() && s.depth <= loop_depths.back())
          loop_depths.pop_back();
        in_loop[s.begin] = loop_depths.empty() ? 0 : 1;
        if (s.begin < t.size() && t[s.begin].kind == TokKind::kIdent &&
            (t[s.begin].text == "for" || t[s.begin].text == "while" ||
             t[s.begin].text == "do"))
          loop_depths.push_back(s.depth);
      }
    }

    fa.replay([&](const Stmt& s, const VarState& state) {
      const std::vector<std::size_t> eff = effective(f, s.begin, s.end);
      if (eff.empty()) return;
      const std::size_t line = t[eff[0]].line;

      // 1. Log-domain value inside a linear-probability contract.
      for (std::size_t k = 0; k + 1 < eff.size(); ++k) {
        const Token& tok = t[eff[k]];
        if (tok.kind != TokKind::kIdent) continue;
        if (tok.text != "SYSUQ_ASSERT_PROB" &&
            tok.text != "SYSUQ_ASSERT_PROB_VEC")
          continue;
        if (!is_punct(t[eff[k + 1]], "(")) continue;
        int d = 0;
        std::size_t close = eff.size();
        for (std::size_t j = k + 1; j < eff.size(); ++j) {
          if (is_punct(t[eff[j]], "(")) ++d;
          else if (is_punct(t[eff[j]], ")") && --d == 0) {
            close = j;
            break;
          }
        }
        if (produces_log(f, eff, k + 2, close, state, summary)) {
          rep.report(f, line, kRule,
                     "log-domain value passed to " + tok.text +
                         "; the contract checks linear [0,1] mass — "
                         "convert with std::exp()/from_log() first");
        }
        k = close;
      }

      // 2. Log-domain operand of linear `*` / `/`.
      for (std::size_t k = 1; k + 1 < eff.size(); ++k) {
        const Token& tok = t[eff[k]];
        if (tok.kind != TokKind::kPunct ||
            (tok.text != "*" && tok.text != "/"))
          continue;
        if (!binary_mul_context(f, eff, k)) continue;
        if (operand_log(f, eff, k, -1, state, summary) ||
            operand_log(f, eff, k, +1, state, summary)) {
          rep.report(f, line, kRule,
                     "log-domain value used as a `" + tok.text +
                         "` operand; in log space multiplication is "
                         "addition — exp()/from_log() before linear "
                         "arithmetic, or stay in log space with `+`");
          break;
        }
      }

      // 3. Naive accumulation over an indexed array in a loop. Only a
      // BARE indexed read fires (`acc += p[i]`): any depth-0 operator
      // in the added term means the loop is doing its own numerics —
      // a Neumaier compensation term like `(sum - t) + p[i]` must not
      // be told to use the helper it implements.
      const Target tg = find_target(f, eff);
      if (!tg.name.empty() && !tg.strong && in_loop[s.begin] != 0) {
        const auto it = state.find(tg.name);
        const bool acc = it != state.end() && (it->second & kAcc) != 0;
        bool indexed = false, composite = false;
        int d = 0;
        for (std::size_t k = tg.rhs_from; k < tg.rhs_to; ++k) {
          const Token& rt = t[eff[k]];
          if (rt.kind != TokKind::kPunct) continue;
          const std::string& ptxt = rt.text;
          if (ptxt == "[" || ptxt == "(" || ptxt == "{") {
            if (ptxt == "[" && d == 0) indexed = true;
            if (ptxt == "(" && d == 0) composite = true;
            ++d;
          } else if (ptxt == "]" || ptxt == ")" || ptxt == "}") {
            --d;
          } else if (d == 0 && (ptxt == "+" || ptxt == "-" || ptxt == "*" ||
                                ptxt == "/" || ptxt == "%" || ptxt == "?")) {
            composite = true;
          }
        }
        if (acc && indexed && !composite) {
          rep.report(f, line, kRule,
                     "naive `" + tg.name +
                         " +=` accumulation over a probability array; "
                         "use the Neumaier-compensated kernels::total() "
                         "(PR-3 mass-drift bug class)");
        }
      }
    });
  }
}

}  // namespace sysuq_analyze
