// Layering pass: the include graph over a module tree must respect the
// module DAG
//
//   core -> prob -> bayesnet -> {evidence, perception, fta, markov,
//   orbit} -> sys
//
// (an arrow means "may be included by"): a module may include itself
// and modules at strictly lower layers. `obs` is the cross-cutting
// exception — includable by every module, but itself including only
// core. Back-edges, sibling edges and cycles are all errors; an
// intentional exception carries a reasoned
// `// sysuq-lint-allow(layering): ...` on the include line.
#include "sysuq_analyze/passes.hpp"

#include <map>
#include <string>

namespace sysuq_analyze {

namespace {

const std::map<std::string, int>& layers() {
  static const std::map<std::string, int> kLayers = {
      {"core", 0}, {"prob", 1},       {"bayesnet", 2}, {"evidence", 3},
      {"fta", 3},  {"perception", 3}, {"markov", 3},   {"orbit", 3},
      {"sys", 4},  {"obs", 0}};  // obs layer unused; handled specially
  return kLayers;
}

}  // namespace

void pass_layering(const Project& project, Reporter& rep) {
  for (const auto& af : project.files) {
    const LexedFile& f = af.lex;
    const std::string& from = f.module_name;
    if (from.empty()) continue;
    for (const auto& inc : f.includes) {
      if (inc.angled) continue;
      const std::size_t slash = inc.path.find('/');
      if (slash == std::string::npos) continue;
      const std::string to = inc.path.substr(0, slash);
      if (layers().count(to) == 0) continue;
      if (to == from) continue;
      if (to == "obs" && from != "obs") continue;  // everyone may use obs
      bool ok;
      if (from == "obs") {
        ok = to == "core";  // obs stays below everything but core
      } else {
        ok = layers().at(to) < layers().at(from);
      }
      if (!ok) {
        rep.report(f, inc.line, "layering",
                   "module '" + from + "' must not include '" + to + "' (\"" +
                       inc.path +
                       "\"): violates the module DAG core -> prob -> "
                       "bayesnet -> {evidence, perception, fta, markov, "
                       "orbit} -> sys (obs: includable by all, includes "
                       "only core)");
      }
    }
  }
}

}  // namespace sysuq_analyze
