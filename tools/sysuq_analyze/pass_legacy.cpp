// The five PR-4 line-lint rules, re-homed onto the lexer. Running on
// tokens (not regex over blanked lines) means string literals and
// comments can mention rand() or 1e-12 freely, and the digit-separator
// and include-path workarounds of the old stripper are gone.
#include "sysuq_analyze/passes.hpp"

#include <filesystem>
#include <string>

namespace sysuq_analyze {

namespace {

namespace fs = std::filesystem;

// Mirror of obs::valid_metric_name (the analyzer links no sysuq
// libraries): two or more dot-separated segments, each [a-z][a-z0-9_]*.
bool valid_obs_name(const std::string& name) {
  bool seen_dot = false;
  bool segment_start = true;
  for (const char c : name) {
    if (segment_start) {
      if (c < 'a' || c > 'z') return false;
      segment_start = false;
      continue;
    }
    if (c == '.') {
      seen_dot = true;
      segment_start = true;
      continue;
    }
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return seen_dot && !segment_start && !name.empty();
}

void check_includes(const LexedFile& f, Reporter& rep) {
  // Own header: foo.cpp must include "mod/foo.hpp" first.
  std::string own_header;
  if (f.is_source) {
    for (const char* hdr_ext : {".hpp", ".h", ".hxx"}) {
      fs::path hpp = f.abs_path;
      hpp.replace_extension(hdr_ext);
      if (fs::exists(hpp)) {
        fs::path rel = f.rel;
        rel.replace_extension(hdr_ext);
        own_header = rel.generic_string();
        break;
      }
    }
  }
  bool saw_first = false;
  for (const auto& inc : f.includes) {
    if (inc.angled) continue;
    if (inc.path.find("../") != std::string::npos) {
      rep.report(f, inc.line, "include-hygiene",
                 "relative include \"" + inc.path +
                     "\"; use the module-qualified path");
    } else if (inc.path.find('/') == std::string::npos) {
      rep.report(f, inc.line, "include-hygiene",
                 "unqualified include \"" + inc.path + "\"; write \"<module>/" +
                     inc.path + "\"");
    }
    if (!saw_first && !own_header.empty() && inc.path != own_header) {
      rep.report(f, inc.line, "include-hygiene",
                 "first include must be the file's own header \"" +
                     own_header + "\"");
    }
    saw_first = true;
  }
}

void check_tokens(const LexedFile& f, Reporter& rep) {
  const bool is_rng = f.module_name == "prob" && f.rel.rfind("prob/rng", 0) == 0;
  const bool is_tolerance = f.rel == "core/tolerance.hpp";
  const auto& t = f.tokens;

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];

    // rng-discipline: raw rand()/srand()/mt19937 outside prob/rng.*.
    if (!is_rng && tok.kind == TokKind::kIdent) {
      const bool is_rand =
          (tok.text == "rand" || tok.text == "srand") && i + 1 < t.size() &&
          t[i + 1].kind == TokKind::kPunct && t[i + 1].text == "(";
      const bool is_mt =
          tok.text == "mt19937" || tok.text == "mt19937_64";
      // Exclude member access: foo.rand(), foo->srand().
      const bool member_access =
          i > 0 && t[i - 1].kind == TokKind::kPunct &&
          (t[i - 1].text == "." || t[i - 1].text == "->");
      if ((is_rand || is_mt) && !member_access) {
        rep.report(f, tok.line, "rng-discipline",
                   "raw rand()/mt19937; use prob::Rng (src/prob/rng.hpp)");
      }
    }

    // float-eq: ==/!= against a floating-point literal.
    if (tok.kind == TokKind::kPunct &&
        (tok.text == "==" || tok.text == "!=")) {
      const bool lhs_float = i > 0 && is_float_literal(t[i - 1]);
      std::size_t rhs = i + 1;
      if (rhs < t.size() && t[rhs].kind == TokKind::kPunct &&
          t[rhs].text == "-")
        ++rhs;  // == -1.0
      const bool rhs_float = rhs < t.size() && is_float_literal(t[rhs]);
      if (lhs_float || rhs_float) {
        rep.report(f, tok.line, "float-eq",
                   "floating-point ==/!=; compare against a tolerance or "
                   "annotate");
      }
    }

    // magic-epsilon: tolerance-sized literals outside core/tolerance.hpp.
    if (!is_tolerance && negative_exponent_of(tok) >= 8) {
      rep.report(f, tok.line, "magic-epsilon",
                 "tolerance-sized literal " + tok.text +
                     "; use a named constant from core/tolerance.hpp");
    }

    // obs-naming: instrument/span name literals must be
    // module.subsystem.name.
    if (tok.kind == TokKind::kIdent) {
      std::string name;
      std::size_t name_line = 0;
      const bool instrument =
          (tok.text == "counter" || tok.text == "gauge" ||
           tok.text == "histogram") &&
          i > 0 && t[i - 1].kind == TokKind::kPunct &&
          (t[i - 1].text == "." || t[i - 1].text == "->");
      if (instrument && i + 2 < t.size() && t[i + 1].text == "(" &&
          t[i + 2].kind == TokKind::kString) {
        name = t[i + 2].text;
        name_line = t[i + 2].line;
      }
      if (tok.text == "Span") {
        // obs::Span span("name", ...) or Span("name", ...): allow up to
        // one variable name between Span and the '('.
        std::size_t j = i + 1;
        if (j < t.size() && t[j].kind == TokKind::kIdent) ++j;
        if (j + 1 < t.size() && t[j].kind == TokKind::kPunct &&
            t[j].text == "(" && t[j + 1].kind == TokKind::kString) {
          name = t[j + 1].text;
          name_line = t[j + 1].line;
        }
      }
      if (name_line != 0 && !valid_obs_name(name)) {
        rep.report(f, name_line, "obs-naming",
                   "obs name \"" + name +
                       "\" must be dot-separated snake_case "
                       "(module.subsystem.name)");
      }
    }
  }
}

}  // namespace

void pass_legacy(const Project& project, Reporter& rep) {
  for (const auto& af : project.files) {
    check_includes(af.lex, rep);
    check_tokens(af.lex, rep);
  }
}

}  // namespace sysuq_analyze
