// thread-escape: interprocedural race/escape analysis over inferred
// thread roles.
//
// Thread roles are inferred from the dispatch sites the engine actually
// uses: a lambda handed to a pool-dispatch call (pool->run/submit/...),
// a std::thread / std::jthread / std::async construction, or an
// emplace_back onto a thread container runs on a *worker* thread; named
// functions called from inside such lambdas are workers too, closed
// transitively over the name-granular call graph (dataflow.hpp) per
// scan root. Everything else is *owner* code.
//
// With roles in hand the pass flags, per scan root:
//   e1  members reachable from both roles whose writes hold no common
//       lock (the declared sysuq-guarded-by guard when annotated, any
//       lock at all otherwise),
//   e2  worker lambdas that capture by reference yet outlive the
//       enclosing frame (detached, or never joined in the function),
//       and thread-confined locals used inside worker lambdas,
//   e3  calls that do not hold a callee's sysuq-requires locks,
//   e4  sysuq-thread-confined members touched from the wrong role
//       (init-confined members written outside construction).
//
// Like every pass here this is a may-analysis on names, not a C++
// front end: over-approximation is resolved with annotations or
// reasoned allow markers, never by silently skipping code.
#include <cctype>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sysuq_analyze/dataflow.hpp"
#include "sysuq_analyze/lockscope.hpp"
#include "sysuq_analyze/passes.hpp"

namespace sysuq_analyze {

namespace {

constexpr const char* kRule = "thread-escape";

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// How a worker lambda reaches its thread.
enum class DispatchKind { kPool, kThread };

struct WorkerLambda {
  LambdaRange range;
  DispatchKind kind = DispatchKind::kPool;
};

/// One past the matching close for the bracket at `i`.
std::size_t match_forward(const LexedFile& f, std::size_t i, const char* open,
                          const char* close, std::size_t end) {
  int depth = 0;
  for (; i < end; ++i) {
    if (is_punct(f.tokens[i], open)) ++depth;
    else if (is_punct(f.tokens[i], close) && --depth == 0) return i + 1;
  }
  return end;
}

/// True when the lambda introducer at `intro` captures anything by
/// reference (`[&]`, `[&x]`, `[=, &x]`...).
bool captures_by_ref(const LexedFile& f, std::size_t intro, std::size_t end) {
  const std::size_t close = match_forward(f, intro, "[", "]", end);
  for (std::size_t i = intro + 1; i + 1 < close; ++i)
    if (is_punct(f.tokens[i], "&")) return true;
  return false;
}

/// Local lambda variable: `auto name = [...]`. Returns the name or "".
std::string lambda_local_name(const LexedFile& f, std::size_t intro) {
  const auto& t = f.tokens;
  if (intro < 2) return "";
  if (!is_punct(t[intro - 1], "=")) return "";
  if (t[intro - 2].kind != TokKind::kIdent) return "";
  return t[intro - 2].text;
}

/// Worker lambdas of one definition: lambdas lexically inside the
/// argument list of a dispatch site, or named locals passed to one.
std::vector<WorkerLambda> find_worker_lambdas(const LexedFile& f,
                                              const FunctionDef& def) {
  const auto& t = f.tokens;
  const std::vector<LambdaRange> lambdas =
      find_lambdas(f, def.body_begin, def.body_end);
  if (lambdas.empty()) return {};

  std::map<std::string, std::size_t> named;  // local name -> lambda index
  for (std::size_t li = 0; li < lambdas.size(); ++li) {
    const std::string name = lambda_local_name(f, lambdas[li].intro);
    if (!name.empty()) named[name] = li;
  }

  std::vector<bool> is_worker(lambdas.size(), false);
  std::vector<DispatchKind> kind(lambdas.size(), DispatchKind::kPool);
  const auto mark = [&](std::size_t args_begin, std::size_t args_end,
                        DispatchKind k) {
    for (std::size_t li = 0; li < lambdas.size(); ++li) {
      if (lambdas[li].intro > args_begin && lambdas[li].intro < args_end) {
        is_worker[li] = true;
        kind[li] = k;
      }
    }
    for (std::size_t a = args_begin; a < args_end; ++a) {
      if (t[a].kind != TokKind::kIdent) continue;
      const auto it = named.find(t[a].text);
      if (it != named.end() && lambdas[it->second].intro < args_begin) {
        is_worker[it->second] = true;
        kind[it->second] = k;
      }
    }
  };

  for (std::size_t i = def.body_begin; i < def.body_end && i < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.kind != TokKind::kIdent) continue;
    const bool methodish = i >= 2 && t[i - 1].kind == TokKind::kPunct &&
                           (t[i - 1].text == "." || t[i - 1].text == "->") &&
                           i + 1 < def.body_end && is_punct(t[i + 1], "(");
    if (methodish) {
      const std::string recv = lower(t[i - 2].text);
      const bool pool_dispatch = dispatch_method_name(tok.text) &&
                                 recv.find("pool") != std::string::npos;
      const bool thread_store =
          (tok.text == "emplace_back" || tok.text == "push_back") &&
          recv.find("thread") != std::string::npos;
      if (pool_dispatch || thread_store) {
        mark(i + 1, match_forward(f, i + 1, "(", ")", def.body_end),
             pool_dispatch ? DispatchKind::kPool : DispatchKind::kThread);
      }
      continue;
    }
    // std::thread t(...), std::jthread t{...}, std::async(...).
    if (tok.text == "thread" || tok.text == "jthread" || tok.text == "async") {
      std::size_t open = i + 1;
      if (open < def.body_end && t[open].kind == TokKind::kIdent) ++open;
      if (open >= def.body_end) continue;
      const char* ob = is_punct(t[open], "(") ? "("
                       : is_punct(t[open], "{") ? "{"
                                                : nullptr;
      if (ob == nullptr) continue;
      mark(open, match_forward(f, open, ob, ob[0] == '(' ? ")" : "}",
                               def.body_end),
           DispatchKind::kThread);
    }
  }

  std::vector<WorkerLambda> out;
  for (std::size_t li = 0; li < lambdas.size(); ++li)
    if (is_worker[li]) out.push_back({lambdas[li], kind[li]});
  return out;
}

/// One recorded member access outside construction.
struct Access {
  const LexedFile* file = nullptr;
  std::size_t line = 0;
  bool write = false;
  bool worker = false;
  bool guard_held = false;  ///< declared guard held (guarded members)
  bool any_held = false;    ///< any lock held at all
};

struct MemberUse {
  bool owner_seen = false;
  bool worker_seen = false;
  std::vector<Access> accesses;
};

/// Key: root \x1f class \x1f member.
using UseMap = std::map<std::string, MemberUse>;

/// A class participates in the cross-role write check (e1) when it has
/// opted into the lock discipline: it owns a mutex or carries member
/// annotations. Role inference is a name-granular over-approximation,
/// so plain single-threaded value types (no mutex, no annotations) stay
/// out of e1 — guard-consistency's completeness rule is what forces the
/// classes that matter to opt in. A *type-level* sysuq-thread-confined
/// class is exempt too: its discipline is one-instance-per-thread
/// (workers get their own via thread_scratch()), so instance-blind role
/// aggregation would conflate distinct instances — the capture check
/// (e2) polices confined instances crossing threads instead.
bool disciplined(const ClassInfo& ci) {
  if (!ci.confined.empty()) return false;
  if (ci.owns_mutex) return true;
  for (const MemberVar& m : ci.members)
    if (!m.guarded_by.empty() || !m.confined.empty()) return true;
  return false;
}

struct WalkCtx {
  const Project& project;
  const AnalyzedFile& af;
  const FunctionDef& def;
  const ClassInfo* ci = nullptr;
  const std::map<std::string, std::set<std::string>>* required = nullptr;
  Reporter& rep;
  UseMap& uses;
};

/// Visits one token range with a fixed thread role, recording member
/// accesses and checking requires-contracts (e3) and confinement (e4).
void walk_range(const WalkCtx& ctx, std::size_t begin, std::size_t end,
                const std::set<std::string>& entry, bool worker,
                const std::vector<WorkerLambda>* skip) {
  const LexedFile& f = ctx.af.lex;
  const auto& t = f.tokens;
  walk_lock_scopes(
      ctx.project, ctx.af, ctx.def.class_name, begin, end, entry,
      [&](std::size_t i, const std::set<std::string>& held) {
        if (skip != nullptr) {
          for (const WorkerLambda& w : *skip)
            if (i >= w.range.intro && i <= w.range.body_end) return;
        }
        const Token& tok = t[i];
        if (tok.kind != TokKind::kIdent) return;

        // e3: every call must hold the callee's sysuq-requires locks.
        const bool called = i + 1 < t.size() && is_punct(t[i + 1], "(") &&
                            tok.text != ctx.def.name;
        if (called && ctx.required != nullptr) {
          const auto it = ctx.required->find(tok.text);
          if (it != ctx.required->end()) {
            for (const std::string& mu : it->second) {
              if (held.count(mu) != 0) continue;
              ctx.rep.report(f, tok.line, kRule,
                             "call to '" + tok.text + "' requires '" + mu +
                                 "' (sysuq-requires) but it is not held at "
                                 "this call site");
            }
          }
        }

        if (ctx.ci == nullptr || !disciplined(*ctx.ci)) return;
        const MemberVar* m = ctx.ci->member(tok.text);
        if (m == nullptr || m->is_mutex) return;
        if (!plain_member_access(f, i)) return;
        if (called) return;  // member functions share names with nothing here
        const bool in_ctor = ctx.def.is_ctor || ctx.def.is_dtor;
        const bool write = member_write_at(f, i);

        // e4: confined members touched from the wrong role.
        if (!m->confined.empty()) {
          if (m->confined == "init") {
            if (write && !in_ctor) {
              ctx.rep.report(f, tok.line, kRule,
                             "member '" + m->name +
                                 "' is thread-confined to init "
                                 "(sysuq-thread-confined) but is written "
                                 "outside construction");
            }
          } else if (m->confined == "owner" && worker) {
            ctx.rep.report(f, tok.line, kRule,
                           "member '" + m->name +
                               "' is thread-confined to the owner thread "
                               "(sysuq-thread-confined) but is accessed from "
                               "a worker-thread context");
          } else if (m->confined == "worker" && !worker && !in_ctor) {
            ctx.rep.report(f, tok.line, kRule,
                           "member '" + m->name +
                               "' is thread-confined to worker threads "
                               "(sysuq-thread-confined) but is accessed from "
                               "owner-thread context");
          }
          return;
        }
        if (m->is_atomic || in_ctor) return;
        if (m->type_text.find("condition_variable") != std::string::npos)
          return;

        const std::string guard =
            m->guarded_by.empty()
                ? ""
                : canonical_annotation(ctx.project, ctx.af, ctx.ci->name,
                                       m->guarded_by);
        UseMap::mapped_type& use =
            ctx.uses[f.root + '\x1f' + ctx.ci->name + '\x1f' + m->name];
        (worker ? use.worker_seen : use.owner_seen) = true;
        use.accesses.push_back({&f, tok.line, write, worker,
                                !guard.empty() && held.count(guard) != 0,
                                !held.empty()});
      });
}

/// e2: by-ref captures escaping the frame, confined locals in workers.
void check_escapes(const Project& project, const AnalyzedFile& af,
                   const FunctionDef& def,
                   const std::vector<WorkerLambda>& workers, Reporter& rep) {
  const LexedFile& f = af.lex;
  const auto& t = f.tokens;

  // Locals of a thread-confined type declared in this body.
  std::map<std::string, std::string> confined_locals;  // name -> type
  for (std::size_t i = def.body_begin; i + 1 < def.body_end; ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const ClassInfo* ci = project.find_class(af, t[i].text);
    if (ci == nullptr || ci->confined.empty()) continue;
    std::size_t j = i + 1;
    while (j < def.body_end && (is_punct(t[j], "&") || is_punct(t[j], "*")))
      ++j;
    if (j < def.body_end && t[j].kind == TokKind::kIdent &&
        j + 1 < def.body_end &&
        (is_punct(t[j + 1], ";") || is_punct(t[j + 1], "=") ||
         is_punct(t[j + 1], "(") || is_punct(t[j + 1], "{"))) {
      confined_locals[t[j].text] = t[i].text;
    }
  }

  for (const WorkerLambda& w : workers) {
    const bool by_ref = captures_by_ref(f, w.range.intro, def.body_end);
    const std::size_t line = t[w.range.intro].line;

    if (by_ref && w.kind == DispatchKind::kThread) {
      bool detached = false, joined = false;
      for (std::size_t i = def.body_begin; i < def.body_end; ++i) {
        if (i >= w.range.intro && i <= w.range.body_end) continue;
        if (t[i].kind != TokKind::kIdent) continue;
        if (t[i].text == "detach") detached = true;
        if (t[i].text == "join" || t[i].text == "get") joined = true;
      }
      if (detached) {
        rep.report(f, line, kRule,
                   "worker lambda captures by reference and the thread is "
                   "detached; the captured stack frame dies while the worker "
                   "still runs — capture by value or join the thread");
      } else if (!joined) {
        rep.report(f, line, kRule,
                   "worker lambda captures by reference but this function "
                   "never joins the thread (no join()/get()); captured stack "
                   "state may dangle — capture by value or join before "
                   "returning");
      }
    }

    for (const auto& [name, type] : confined_locals) {
      for (std::size_t i = w.range.body_begin; i < w.range.body_end; ++i) {
        if (t[i].kind == TokKind::kIdent && t[i].text == name &&
            plain_member_access(f, i)) {
          rep.report(f, t[i].line, kRule,
                     "local '" + name + "' of thread-confined type '" + type +
                         "' (sysuq-thread-confined) is used inside a worker "
                         "lambda; give the worker its own instance");
          break;
        }
      }
    }
  }
}

}  // namespace

void pass_threadescape(const Project& project, Reporter& rep) {
  if (!rep.enabled(kRule)) return;

  const CallGraph cg = build_call_graph(project);
  const LockContracts contracts = collect_lock_contracts(project);

  // Worker lambdas per definition, and worker function roots: names
  // called from worker lambdas, closed over the call graph per root.
  std::map<const FunctionDef*, std::vector<WorkerLambda>> workers_of;
  std::map<std::string, std::set<std::string>> worker_fns;  // per root
  for (const auto& af : project.files) {
    for (const auto& def : af.model.defs) {
      std::vector<WorkerLambda> w = find_worker_lambdas(af.lex, def);
      if (w.empty()) continue;
      auto& seeds = worker_fns[af.lex.root];
      const auto& t = af.lex.tokens;
      for (const WorkerLambda& wl : w) {
        for (std::size_t i = wl.range.body_begin; i < wl.range.body_end; ++i) {
          if (t[i].kind == TokKind::kIdent && i + 1 < t.size() &&
              is_punct(t[i + 1], "("))
            seeds.insert(t[i].text);
        }
      }
      workers_of.emplace(&def, std::move(w));
    }
  }
  for (auto& [root, fns] : worker_fns) {
    const auto cg_it = cg.callees_by_root.find(root);
    if (cg_it == cg.callees_by_root.end()) continue;
    bool grew = true;
    while (grew) {
      grew = false;
      for (const std::string& fn : std::set<std::string>(fns)) {
        const auto it = cg_it->second.find(fn);
        if (it == cg_it->second.end()) continue;
        for (const std::string& callee : it->second)
          grew = fns.insert(callee).second || grew;
      }
    }
  }

  // Walk every definition in its inferred role; worker lambdas are
  // excluded from the enclosing walk and re-walked as worker code with
  // an empty entry-lock set (locks do not transfer across threads).
  UseMap uses;
  for (const auto& af : project.files) {
    const std::string& root = af.lex.root;
    const auto req_it = contracts.requires_by_root.find(root);
    const auto* required =
        req_it != contracts.requires_by_root.end() ? &req_it->second : nullptr;
    const auto wf_it = worker_fns.find(root);
    for (const auto& def : af.model.defs) {
      const ClassInfo* ci = def.class_name.empty()
                                ? nullptr
                                : project.find_class(af, def.class_name);
      const auto w_it = workers_of.find(&def);
      const std::vector<WorkerLambda>* workers =
          w_it != workers_of.end() ? &w_it->second : nullptr;
      const bool def_is_worker =
          wf_it != worker_fns.end() && wf_it->second.count(def.name) != 0;
      const WalkCtx ctx{project, af, def, ci, required, rep, uses};
      walk_range(ctx, def.body_begin, def.body_end,
                 entry_locks(project, af, def), def_is_worker, workers);
      if (workers == nullptr) continue;
      for (const WorkerLambda& w : *workers)
        walk_range(ctx, w.range.body_begin, w.range.body_end, {},
                   /*worker=*/true, nullptr);
      check_escapes(project, af, def, *workers, rep);
    }
  }

  // e1: members reached from both roles — every write must hold the
  // declared guard (annotated) or some lock (unannotated).
  for (const auto& [key, use] : uses) {
    if (!use.owner_seen || !use.worker_seen) continue;
    const std::size_t c1 = key.find('\x1f');
    const std::size_t c2 = key.find('\x1f', c1 + 1);
    const std::string cls = key.substr(c1 + 1, c2 - c1 - 1);
    const std::string member = key.substr(c2 + 1);
    for (const Access& a : use.accesses) {
      if (!a.write) continue;
      const bool ok = a.guard_held || a.any_held;
      if (ok) continue;
      rep.report(*a.file, a.line, kRule,
                 "member '" + member + "' of '" + cls +
                     "' is written from " +
                     (a.worker ? "a worker thread" : "the owner thread") +
                     " while also reached from " +
                     (a.worker ? "the owner thread" : "worker threads") +
                     " (roles inferred from dispatch sites), and this write "
                     "holds no lock; guard it, make it atomic, or confine it "
                     "with sysuq-thread-confined");
    }
  }
}

}  // namespace sysuq_analyze
