#include "sysuq_analyze/passes.hpp"

#include <algorithm>

namespace sysuq_analyze {

namespace {

// A marker suppresses on its own line, or from anywhere in the
// contiguous block of comment lines directly above the reported line —
// reasoned suppressions are encouraged to span several lines.
bool suppressed(const LexedFile& f, std::size_t line, const std::string& rule) {
  if (f.allowed(line, rule)) return true;
  for (std::size_t l = line; l > 1;) {
    --l;
    const std::string& text = l - 1 < f.lines.size() ? f.lines[l - 1] : "";
    const std::size_t first = text.find_first_not_of(" \t");
    if (first == std::string::npos || text.compare(first, 2, "//") != 0)
      return false;
    if (f.allowed(l, rule)) return true;
  }
  return false;
}

}  // namespace

std::string display_path(const LexedFile& f) {
  if (f.root.empty() || f.root == ".") return f.rel;
  std::string r = f.root;
  while (!r.empty() && r.back() == '/') r.pop_back();
  return r + "/" + f.rel;
}

void Reporter::report(const LexedFile& f, std::size_t line,
                      const std::string& rule, const std::string& message) {
  report_multi(f, line, {}, {}, rule, message);
}

void Reporter::report_multi(const LexedFile& f, std::size_t line,
                            const std::vector<const LexedFile*>& extra_files,
                            const std::vector<std::size_t>& extra_lines,
                            const std::string& rule,
                            const std::string& message) {
  if (!enabled(rule)) return;
  // A marker on the line itself or in the comment block above
  // suppresses; so does one on any companion location (e.g. the header
  // declaration of a flagged definition).
  if (suppressed(f, line, rule)) return;
  for (std::size_t k = 0; k < extra_lines.size(); ++k) {
    const LexedFile* ef = k < extra_files.size() ? extra_files[k] : &f;
    if (suppressed(*ef, extra_lines[k], rule)) return;
  }
  violations.push_back({display_path(f), line, rule, message});
}

void Project::index() {
  for (const auto& af : files) {
    for (const auto& ci : af.model.classes) {
      if (ci.name.empty()) continue;
      const auto key =
          std::make_tuple(af.lex.root, af.lex.module_name, ci.name);
      const auto it = by_name_.find(key);
      // Prefer the parse that saw the class body (most members/decls).
      if (it == by_name_.end() ||
          it->second->members.size() + it->second->public_decls.size() <
              ci.members.size() + ci.public_decls.size()) {
        by_name_[key] = &ci;
      }
    }
  }
}

const ClassInfo* Project::find_class(const AnalyzedFile& from,
                                     const std::string& name) const {
  for (const auto& ci : from.model.classes)
    if (ci.name == name && (!ci.members.empty() || !ci.public_decls.empty()))
      return &ci;
  const auto it =
      by_name_.find(std::make_tuple(from.lex.root, from.lex.module_name, name));
  return it != by_name_.end() ? it->second : nullptr;
}

}  // namespace sysuq_analyze
