// Pass registry for sysuq_analyze.
//
// Passes:
//   legacy       — the five PR-4 line-lint rules, re-homed onto the
//                  lexer: rng-discipline, float-eq, magic-epsilon,
//                  include-hygiene, obs-naming.
//   layering     — include graph over module trees; enforces the module
//                  DAG core -> prob -> bayesnet -> {evidence,
//                  perception, fta, markov, orbit} -> sys, with obs
//                  includable by everyone but including only core.
//   contracts    — every non-inline public function declared in a
//                  module header executes a SYSUQ_EXPECT /
//                  SYSUQ_ASSERT_PROB* / SYSUQ_ENSURE in its definition.
//   locks        — in files owning a std::mutex: non-atomic member
//                  writes outside a lock scope, and .load/.store with a
//                  stricter-than-declared memory order.
//   mutate       — member mutations preceding the last precondition
//                  check in a function (the PR-2 set_cpt bug class).
//   arena        — arena-escape dataflow: thread_scratch()/Arena views
//                  used after reset(), stored into members, or captured
//                  by thread-pool callbacks (cfg.hpp + dataflow.hpp).
//   lockorder    — global lock-acquisition graph with cycle detection,
//                  plus no-mutex-across-cv-wait/dispatch/join.
//   logdomain    — log-domain values flowing into linear arithmetic or
//                  SYSUQ_ASSERT_PROB* without exp()/from_log(), and
//                  naive += accumulation over probability arrays.
//   obscontext   — a function opening an obs::Span and dispatching onto
//                  a thread pool must hand the TraceContext to the
//                  tasks (current_context() + ContextScope), so worker
//                  spans parent into the query's trace.
//   threadescape — interprocedural race/escape analysis: thread roles
//                  inferred from pool-dispatch and std::thread sites,
//                  two-role members written without their guard, by-ref
//                  captures outliving the frame, sysuq-requires at call
//                  sites, sysuq-thread-confined role violations.
//   guards       — lexical annotation checking: sysuq-guarded-by
//                  accesses against the held-lock scope stack,
//                  sysuq-excludes at call sites, and unannotated
//                  members of mutex-owning classes.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "sysuq_analyze/lexer.hpp"
#include "sysuq_analyze/model.hpp"

namespace sysuq_analyze {

struct Violation {
  std::string path;  ///< root-joined display path (also the SARIF uri)
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Collects violations, honouring `sysuq-lint-allow` markers and the
/// --only rule filter.
class Reporter {
 public:
  /// Empty = all rules enabled.
  std::set<std::string> only;

  [[nodiscard]] bool enabled(const std::string& rule) const {
    return only.empty() || only.count(rule) > 0;
  }

  /// Files a violation unless the rule is filtered out or the line
  /// carries an allow marker for it.
  void report(const LexedFile& f, std::size_t line, const std::string& rule,
              const std::string& message);

  /// As above, but also honours a marker on any of `extra_lines`
  /// (e.g. the header declaration of a flagged definition).
  void report_multi(const LexedFile& f, std::size_t line,
                    const std::vector<const LexedFile*>& extra_files,
                    const std::vector<std::size_t>& extra_lines,
                    const std::string& rule, const std::string& message);

  std::vector<Violation> violations;
};

/// One analyzed file: tokens plus structural model.
struct AnalyzedFile {
  LexedFile lex;
  FileModel model;
};

/// The project under analysis: all files from all roots, plus a class
/// index so passes can resolve `Class::method` definitions to the class
/// body parsed from another file of the same module.
class Project {
 public:
  std::vector<AnalyzedFile> files;

  /// Builds the class index; call once after `files` is filled.
  void index();

  /// Resolves `name` to a class: the defining file first, then any file
  /// of the same (root, module).
  [[nodiscard]] const ClassInfo* find_class(const AnalyzedFile& from,
                                            const std::string& name) const;

 private:
  std::map<std::tuple<std::string, std::string, std::string>,
           const ClassInfo*>
      by_name_;
};

void pass_legacy(const Project& project, Reporter& rep);
void pass_layering(const Project& project, Reporter& rep);
void pass_contracts(const Project& project, Reporter& rep);
void pass_locks(const Project& project, Reporter& rep);
void pass_mutate(const Project& project, Reporter& rep);
void pass_arena(const Project& project, Reporter& rep);
void pass_lockorder(const Project& project, Reporter& rep);
void pass_logdomain(const Project& project, Reporter& rep);
void pass_obscontext(const Project& project, Reporter& rep);
void pass_threadescape(const Project& project, Reporter& rep);
void pass_guards(const Project& project, Reporter& rep);

/// Display path for a file (root-joined, generic separators).
[[nodiscard]] std::string display_path(const LexedFile& f);

}  // namespace sysuq_analyze
