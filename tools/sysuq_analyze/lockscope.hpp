// Shared lock-scope machinery for the thread-safety passes
// (guard-consistency, thread-escape).
//
// lock-order walks statements through cfg.hpp's linear view; the
// annotation passes instead need the held-lock set at every *token* of
// a body (or of a worker lambda walked in isolation), so this layer
// provides a token-level walker: RAII guard lifetimes follow brace
// depth, .lock()/.unlock() pairs are unscoped, and mutex names
// canonicalize to `Class::member_` exactly like lock-order's graph
// nodes so annotations, guard declarations and requires-contracts all
// spell the same lock identically.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "sysuq_analyze/lexer.hpp"
#include "sysuq_analyze/model.hpp"
#include "sysuq_analyze/passes.hpp"

namespace sysuq_analyze {

/// True for std::lock_guard / unique_lock / scoped_lock / shared_lock.
[[nodiscard]] bool guard_type_name(const std::string& n);

/// True for the pool-dispatch method names (run/submit/enqueue/post/
/// dispatch) the role inference seeds at.
[[nodiscard]] bool dispatch_method_name(const std::string& n);

/// Canonical name of the mutex spelled by the identifier chain ending
/// at token index `last` (inclusive): walks back through `a.b` /
/// `a->b` / `A::b` links. Members of `class_name` (or trailing-`_`
/// names) resolve to `Class::name`; other chains keep their joined
/// spelling. Mirrors lock-order's canonicalization.
[[nodiscard]] std::string canonical_mutex_at(const Project& project,
                                             const AnalyzedFile& af,
                                             const std::string& class_name,
                                             std::size_t last);

/// Canonicalizes a lock name as spelled inside a sysuq-guarded-by /
/// sysuq-requires / sysuq-excludes marker, against the class the
/// annotated entity belongs to.
[[nodiscard]] std::string canonical_annotation(const Project& project,
                                               const AnalyzedFile& af,
                                               const std::string& class_name,
                                               const std::string& spelled);

/// Walks tokens [begin, end) maintaining the set of held canonical
/// mutex names, calling `visit(i, held)` for every token index in
/// order. `entry_held` seeds the set (a function's sysuq-requires
/// contract) and is never popped by scope exits. Lambda bodies are
/// walked inline: a lambda executing on this thread sees the enclosing
/// locks, and a guard it declares scopes to its own braces — callers
/// that dispatch a lambda to another thread must walk that range
/// separately with an empty entry set.
void walk_lock_scopes(
    const Project& project, const AnalyzedFile& af,
    const std::string& class_name, std::size_t begin, std::size_t end,
    const std::set<std::string>& entry_held,
    const std::function<void(std::size_t, const std::set<std::string>&)>&
        visit);

/// Lock contracts collected from every sysuq-requires / sysuq-excludes
/// marker in the project, name-granular per scan root (matching the
/// call-graph granularity): function name -> canonical mutex names.
struct LockContracts {
  std::map<std::string, std::map<std::string, std::set<std::string>>>
      requires_by_root;
  std::map<std::string, std::map<std::string, std::set<std::string>>>
      excludes_by_root;
};

[[nodiscard]] LockContracts collect_lock_contracts(const Project& project);

/// Entry-held set of a definition: its own sysuq-requires markers plus
/// any on a same-named declaration of its class, canonicalized.
[[nodiscard]] std::set<std::string> entry_locks(const Project& project,
                                                const AnalyzedFile& af,
                                                const FunctionDef& def);

/// True when the identifier at token `i` is a plain access to a member
/// of the enclosing object — not `other.name` / `ns::name` (a `this->`
/// prefix still counts).
[[nodiscard]] bool plain_member_access(const LexedFile& f, std::size_t i);

/// True when the identifier at token `i` is written to: assignment or
/// compound assignment (through an optional [index] subscript),
/// pre/post increment/decrement, or a mutating container call.
[[nodiscard]] bool member_write_at(const LexedFile& f, std::size_t i);

}  // namespace sysuq_analyze
