#!/usr/bin/env python3
"""Diff two sysuq_analyze SARIF logs; fail on NEW and on STALE findings.

Usage: sarif_diff.py BASELINE.sarif CURRENT.sarif

A finding is keyed on (ruleId, file URI, message text). Line numbers are
deliberately NOT part of the key so unrelated edits that shift a known
finding up or down do not trip the gate; the analyzer's messages embed
enough context (names, mutex chains) to keep keys distinct in practice.
Duplicate keys are counted, so adding a second instance of an
already-baselined finding still fails.

Stale baseline entries (baselined findings the current scan no longer
reports) also fail: a baseline that over-states the debt masks
regressions, because a new finding can hide in the budget a resolved one
left behind. Fixing debt therefore requires regenerating the baseline in
the same change, which keeps it an exact inventory.

Exit codes: 0 = baseline exactly matches, 1 = new or stale findings,
2 = usage/IO error.
"""

import json
import sys
from collections import Counter


def load_findings(path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"sarif_diff: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    keys = Counter()
    for run in doc.get("runs", []):
        for result in run.get("results", []):
            rule = result.get("ruleId", "")
            message = result.get("message", {}).get("text", "")
            uri = ""
            for loc in result.get("locations", []):
                phys = loc.get("physicalLocation", {})
                uri = phys.get("artifactLocation", {}).get("uri", "")
                break
            keys[(rule, uri, message)] += 1
    return keys


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline = load_findings(argv[1])
    current = load_findings(argv[2])

    new = current - baseline
    resolved = baseline - current

    for key, count in sorted(resolved.items()):
        rule, uri, message = key
        suffix = f" (x{count})" if count > 1 else ""
        print(f"STALE: [{rule}] {uri}: {message}{suffix}")
    if resolved:
        print(
            f"{sum(resolved.values())} stale baselined finding(s) no longer "
            "reported; regenerate tools/analyze_baseline.sarif to lock in "
            "the progress."
        )

    for key, count in sorted(new.items()):
        rule, uri, message = key
        suffix = f" (x{count})" if count > 1 else ""
        print(f"NEW: [{rule}] {uri}: {message}{suffix}")
    if new:
        print(
            f"{sum(new.values())} new finding(s) vs baseline; fix them or, "
            "for accepted debt, regenerate tools/analyze_baseline.sarif."
        )

    if new or resolved:
        return 1
    print(
        f"baseline exact ({sum(current.values())} current, "
        f"{sum(baseline.values())} baselined)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
