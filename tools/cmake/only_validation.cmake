# Regression test for --only argument validation: an unknown rule name
# must be rejected with exit code 2 and a message listing the valid
# rules (a typo must not silently disable the filter's target).
#   cmake -DANALYZER=... -DWORK_DIR=... -P this
foreach(var ANALYZER WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "only_validation.cmake: ${var} not set")
  endif()
endforeach()

execute_process(
  COMMAND ${ANALYZER} --only no-such-rule lint_fixture/clean/legacy
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR
    "sysuq_analyze exited ${rc} (want 2) for --only no-such-rule\n"
    "stdout:\n${out}\nstderr:\n${err}")
endif()
if(NOT err MATCHES "unknown rule" OR NOT err MATCHES "valid rules:")
  message(FATAL_ERROR
    "missing diagnostic for --only no-such-rule; stderr was:\n${err}")
endif()
if(NOT err MATCHES "arena-escape" OR NOT err MATCHES "lock-order"
   OR NOT err MATCHES "log-domain")
  message(FATAL_ERROR
    "valid-rule list is missing the dataflow rules; stderr was:\n${err}")
endif()

# A valid rule set must still be accepted (exit 0 on a clean fixture).
execute_process(
  COMMAND ${ANALYZER} --only arena-escape,lock-order,log-domain
          lint_fixture/clean/legacy
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE rc2
  OUTPUT_VARIABLE out2
  ERROR_VARIABLE err2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR
    "sysuq_analyze exited ${rc2} (want 0) for a valid --only set\n"
    "stdout:\n${out2}\nstderr:\n${err2}")
endif()
