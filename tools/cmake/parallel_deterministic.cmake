# The worker-pool scanner must produce byte-identical SARIF to a
# serial run (fixed result slots + pre-sorted work list guarantee it;
# this test pins the guarantee).
#   cmake -DANALYZER=... -DWORK_DIR=<repo root> -DOUT_DIR=... -P this
foreach(var ANALYZER WORK_DIR OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "parallel_deterministic.cmake: ${var} not set")
  endif()
endforeach()

execute_process(
  COMMAND ${ANALYZER} --jobs 1 --sarif ${OUT_DIR}/serial.sarif src tools bench
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE rc_serial
  OUTPUT_QUIET ERROR_VARIABLE err_serial)
execute_process(
  COMMAND ${ANALYZER} --jobs 8 --sarif ${OUT_DIR}/parallel.sarif src tools bench
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE rc_parallel
  OUTPUT_QUIET ERROR_VARIABLE err_parallel)

if(rc_serial EQUAL 2 OR rc_parallel EQUAL 2)
  message(FATAL_ERROR
    "sysuq_analyze IO/usage error (serial rc=${rc_serial}, parallel "
    "rc=${rc_parallel})\n${err_serial}\n${err_parallel}")
endif()
if(NOT rc_serial EQUAL rc_parallel)
  message(FATAL_ERROR
    "serial and parallel runs disagree on exit code: "
    "${rc_serial} vs ${rc_parallel}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${OUT_DIR}/serial.sarif ${OUT_DIR}/parallel.sarif
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
    "parallel scan is not byte-identical to the serial scan "
    "(${OUT_DIR}/serial.sarif vs ${OUT_DIR}/parallel.sarif)")
endif()
