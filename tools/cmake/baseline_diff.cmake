# Baseline diff gate: scan tests/ (not yet violation-free), then fail
# on findings that are NOT in the committed baseline — incremental
# adoption without a big-bang cleanup — and on stale baseline entries,
# so the baseline stays an exact inventory of the remaining debt.
#   cmake -DANALYZER=... -DPYTHON=... -DREPO_ROOT=... -DOUT=... -P this
foreach(var ANALYZER PYTHON REPO_ROOT OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "baseline_diff.cmake: ${var} not set")
  endif()
endforeach()

execute_process(
  COMMAND ${ANALYZER} --sarif ${OUT} tests
  WORKING_DIRECTORY ${REPO_ROOT}
  RESULT_VARIABLE rc
  OUTPUT_QUIET ERROR_VARIABLE err)
# 0 (clean) and 1 (known findings) are both fine here; the baseline
# diff below is the actual gate.
if(rc EQUAL 2)
  message(FATAL_ERROR "sysuq_analyze IO/usage error scanning tests:\n${err}")
endif()

execute_process(
  COMMAND ${PYTHON} ${REPO_ROOT}/tools/sarif_diff.py
          ${REPO_ROOT}/tools/analyze_baseline.sarif ${OUT}
  RESULT_VARIABLE diff_rc
  OUTPUT_VARIABLE diff_out
  ERROR_VARIABLE diff_err)
message(STATUS "${diff_out}")
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
    "baseline drift vs tools/analyze_baseline.sarif:\n"
    "${diff_out}\n${diff_err}")
endif()
