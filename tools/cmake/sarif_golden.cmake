# Golden test for sysuq_analyze --sarif: run one rule over its bad
# fixture and require byte-exact SARIF. Invoked by ctest as
#   cmake -DANALYZER=... -DWORK_DIR=... -DGOLDEN=... -DOUT=...
#         -DONLY=<rule> -DROOT=<fixture root, relative to WORK_DIR>
#         -P this
foreach(var ANALYZER WORK_DIR GOLDEN OUT ONLY ROOT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "sarif_golden.cmake: ${var} not set")
  endif()
endforeach()

execute_process(
  COMMAND ${ANALYZER} --only ${ONLY} --sarif ${OUT} ${ROOT}
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
# Exit 1 = violations found, which is exactly what the fixture packs;
# anything else (0 = pass stopped firing, 2 = IO error) is a bug.
if(NOT rc EQUAL 1)
  message(FATAL_ERROR
    "sysuq_analyze exited ${rc} (want 1) on ${ROOT} with --only ${ONLY}\n"
    "stdout:\n${out}\nstderr:\n${err}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  file(READ ${OUT} actual)
  message(FATAL_ERROR
    "SARIF output drifted from the golden file ${GOLDEN}.\n"
    "If the change is intentional, copy the new output over the golden "
    "file.\nActual output:\n${actual}")
endif()
