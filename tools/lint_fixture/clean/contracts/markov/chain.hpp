// Contract-coverage fixture, clean twin: one definition carries a real
// contract, the other carries a reasoned allow marker on its
// declaration — both paths must satisfy the pass. Never compiled.
#pragma once

namespace sysuq::markov {

class Chain {
 public:
  double advance(double p);

 private:
  double state_ = 0.0;
};

// sysuq-lint-allow(contract-coverage): pure arithmetic, no domain to check
double mix(double a, double b);

}  // namespace sysuq::markov
