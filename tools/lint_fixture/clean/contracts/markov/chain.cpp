// Contract-coverage fixture, clean twin. Never compiled.
#include "markov/chain.hpp"

#include "core/contracts.hpp"

namespace sysuq::markov {

double Chain::advance(double p) {
  SYSUQ_ASSERT_PROB(p, "transition probability");
  state_ = state_ * (1.0 - p) + p;
  return state_;
}

double mix(double a, double b) { return 0.5 * (a + b); }

}  // namespace sysuq::markov
