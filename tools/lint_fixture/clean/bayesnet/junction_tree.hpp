// Companion header for the clean fixture. Never compiled.
#pragma once

namespace sysuq::bayesnet {
void fixture_clean();
}  // namespace sysuq::bayesnet
