// Layering fixture, clean twin: `bayesnet` may include `core` and
// `prob` (strictly lower layers) and `obs` (cross-cutting). A false
// positive on any of these edges fails `ctest -L lint`. Never compiled.
#pragma once

#include "core/contracts.hpp"
#include "obs/registry.hpp"
#include "prob/distribution.hpp"

namespace sysuq::bayesnet {
inline int fixture_downward_edges() { return 0; }
}  // namespace sysuq::bayesnet
