// log-domain fixture, clean twin. Never compiled.
#include "prob/log_use.hpp"

#include <cmath>

#include "core/contracts.hpp"

namespace sysuq::prob {

// Log values accumulate with `+` in log space and convert with exp()
// before they meet a probability contract or linear arithmetic.
double LogSafe::posterior(const std::vector<double>& p) {
  SYSUQ_EXPECT(p.size() > 1, "posterior needs at least two terms");
  double log_joint = std::log(p[0]) + std::log(p[1]);
  const double mass = std::exp(log_joint);
  SYSUQ_ASSERT_PROB(mass, "posterior mass");
  log_evidence_ += log_joint;
  return mass;
}

double LogSafe::evidence(const std::vector<double>& p) {
  SYSUQ_EXPECT(!p.empty(), "evidence needs terms");
  const double total = compensated_total(p);
  return std::exp(log_evidence_) * total;
}

// Neumaier-compensated summation: the `comp +=` line adds a corrected
// term, not a bare indexed read, so the accumulation rule stays quiet.
double compensated_total(const std::vector<double>& p) {
  SYSUQ_EXPECT(!p.empty(), "total needs terms");
  double sum = 0.0;
  double comp = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double t = sum + p[i];
    if (std::abs(sum) >= std::abs(p[i])) {
      comp += (sum - t) + p[i];
    } else {
      comp += (p[i] - t) + sum;
    }
    sum = t;
  }
  return sum + comp;
}

}  // namespace sysuq::prob
