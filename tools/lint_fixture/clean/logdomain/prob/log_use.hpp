// log-domain fixture, clean twin: log values are exp()-converted
// before linear arithmetic or probability contracts, log-to-log `+=`
// stays in log space, and the summation loop carries a Neumaier
// compensation term (which the naive-accumulation rule must not flag —
// it IS the recommended fix). Never compiled.
#pragma once

#include <cstddef>
#include <vector>

namespace sysuq::prob {

class LogSafe {
 public:
  double posterior(const std::vector<double>& p);
  double evidence(const std::vector<double>& p);

 private:
  double log_evidence_ = 0.0;
};

double compensated_total(const std::vector<double>& p);

}  // namespace sysuq::prob
