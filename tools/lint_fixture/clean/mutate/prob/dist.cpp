// Validate-before-mutate fixture, clean twin: all preconditions are
// checked before the first member write, and a SYSUQ_ENSURE after the
// writes is fine (postconditions naturally follow mutation). Never
// compiled.
#include "prob/dist.hpp"

#include "core/contracts.hpp"

namespace sysuq::prob {

void Dist::set_p(double p, double q) {
  SYSUQ_ASSERT_PROB(p, "p");
  SYSUQ_ASSERT_PROB(q, "q");
  p_ = p;
  q_ = q;
  SYSUQ_ENSURE(p_ + q_ >= 0.0, "state sane");
}

}  // namespace sysuq::prob
