// Validate-before-mutate fixture, clean twin. Never compiled.
#pragma once

namespace sysuq::prob {

class Dist {
 public:
  void set_p(double p, double q);

 private:
  double p_ = 0.0;
  double q_ = 0.0;
};

}  // namespace sysuq::prob
