// obs-context fixture, clean twin: the same dispatch shapes done
// right — the batch span's context is captured before the dispatch and
// installed in the task, and a pool dispatch with no span in scope
// needs no handoff at all. Never compiled.
#include "bayesnet/batch_runner.hpp"

#include "core/contracts.hpp"
#include "obs/context.hpp"
#include "obs/trace.hpp"

namespace sysuq::bayesnet {

void BatchRunner::run_batch(std::size_t n) {
  SYSUQ_EXPECT(n > 0, "run_batch needs work");
  const obs::Span span("bayesnet.batch_runner.run_batch");
  const obs::TraceContext ctx = obs::current_context();
  pool_->run(n, 0);  // tasks install ctx with obs::ContextScope
}

// No span in this function: workers rooting their own traces is the
// correct behaviour, so the dispatch needs no handoff.
void BatchRunner::run_unspanned(std::size_t n) {
  SYSUQ_EXPECT(n > 0, "run_unspanned needs work");
  pool_->run(n, 0);
}

}  // namespace sysuq::bayesnet
