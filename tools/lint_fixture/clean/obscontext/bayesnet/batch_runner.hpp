// obs-context fixture, clean twin. Never compiled.
#pragma once

#include <cstddef>

namespace sysuq::bayesnet {

struct Pool {
  void run(std::size_t jobs, int task) {}
};

class BatchRunner {
 public:
  void run_batch(std::size_t n);
  void run_unspanned(std::size_t n);

 private:
  Pool* pool_ = nullptr;
};

}  // namespace sysuq::bayesnet
