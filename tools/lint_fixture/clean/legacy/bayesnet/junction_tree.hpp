// Companion header for the clean fixture. Never compiled.
#pragma once

namespace sysuq::bayesnet {
// sysuq-lint-allow(contract-coverage): lint fixture, no domain to check
void fixture_clean();
}  // namespace sysuq::bayesnet
