// Lint self-test fixture: the clean twin of ../../bad. Follows every
// rule — own header first, module-qualified includes, a well-formed obs
// name — so a false positive in the lint fails `ctest -L lint` here.
// Never compiled.
#include "bayesnet/junction_tree.hpp"

#include "obs/registry.hpp"

namespace sysuq::bayesnet {

void fixture_clean() {
  auto& builds = sysuq::obs::Registry::global().counter("bayesnet.jt.builds");
  builds.inc();
}

}  // namespace sysuq::bayesnet
