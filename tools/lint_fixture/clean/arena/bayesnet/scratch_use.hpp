// arena-escape fixture, clean twin: the same shapes as the bad twin
// done right — owning materialization before reset(), owning copies
// into members, pool callbacks touching only owning storage, and a
// give-up lambda whose reset() must not poison the enclosing scope
// (lambda effects belong to call sites, not definition sites).
// Never compiled.
#pragma once

#include <cstddef>
#include <vector>

#include "bayesnet/arena.hpp"
#include "bayesnet/kernels.hpp"

namespace sysuq::bayesnet {

struct Pool {
  void run(std::size_t jobs, int task) {}
};

class Materializer {
 public:
  kernels::ScaledFactor eliminate(const kernels::Factor& f0);
  void remember_mass(const kernels::View& v, std::size_t n);
  void prefetch_owned(std::size_t n);

 private:
  std::vector<double> mass_;
  Pool* pool_ = nullptr;
};

}  // namespace sysuq::bayesnet
