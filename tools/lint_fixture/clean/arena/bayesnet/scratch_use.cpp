// arena-escape fixture, clean twin. Never compiled.
#include "bayesnet/scratch_use.hpp"

#include "core/contracts.hpp"

namespace sysuq::bayesnet {

// The view goes stale at the reset, but the owning ScaledFactor was
// materialized first — nothing arena-backed survives the reset.
kernels::ScaledFactor Materializer::eliminate(const kernels::Factor& f0) {
  SYSUQ_EXPECT(f0.size > 0, "eliminate needs a non-empty factor");
  kernels::Arena& arena = kernels::thread_scratch();
  arena.reset();
  const auto give_up = [] { kernels::thread_scratch().reset(); };
  kernels::View reduced = kernels::reduce(kernels::view_of(f0), 0, 0, arena);
  const double t = reduced.total();
  if (t <= 0.0) {
    give_up();
  }
  kernels::ScaledFactor out = kernels::eliminate_scaled(reduced, arena);
  arena.reset();
  return out;
}

// Member stores are fine when the right-hand side materializes an
// owning copy out of the view first.
void Materializer::remember_mass(const kernels::View& v, std::size_t n) {
  SYSUQ_EXPECT(n > 0, "remember_mass needs elements");
  mass_ = std::vector<double>(v.values, v.values + n);
}

// Pool callbacks may capture owning storage freely.
void Materializer::prefetch_owned(std::size_t n) {
  SYSUQ_EXPECT(n > 0, "prefetch_owned needs slots");
  std::vector<double> owned(n, 0.0);
  pool_->run(n, [&owned](std::size_t i) { owned[i] = 1.0; });
}

}  // namespace sysuq::bayesnet
