// guard-consistency fixture, clean twin: every non-atomic member of the
// mutex-owning class is annotated, guarded accesses happen under the
// lock, and the sysuq-excludes callee is only invoked after the guard
// scope has closed. Never compiled.
#pragma once

#include <cstddef>
#include <mutex>

namespace sysuq::obs {

class Store {
 public:
  // sysuq-lint-allow(contract-coverage): guard fixture, contracts out of scope
  void put(double v);
  // sysuq-lint-allow(contract-coverage): guard fixture, contracts out of scope
  void refresh();
  // sysuq-lint-allow(contract-coverage): guard fixture, contracts out of scope
  double snapshot() const;

 private:
  // Takes mu_ itself.
  // sysuq-excludes(mu_)
  void rebuild();

  mutable std::mutex mu_;
  double value_ = 0.0;     // sysuq-guarded-by(mu_)
  std::size_t epoch_ = 0;  // sysuq-guarded-by(mu_)
};

}  // namespace sysuq::obs
