// guard-consistency fixture, clean twin. Never compiled.
#include "obs/store.hpp"

namespace sysuq::obs {

void Store::put(double v) {
  std::lock_guard<std::mutex> lk(mu_);
  value_ = v;
}

void Store::refresh() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    epoch_ += 1;
  }
  rebuild();  // the guard scope closed: excludes-contract satisfied
}

double Store::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return value_;
}

void Store::rebuild() {
  std::lock_guard<std::mutex> lk(mu_);
  value_ = 0.0;
}

}  // namespace sysuq::obs
