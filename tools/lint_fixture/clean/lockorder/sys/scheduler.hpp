// lock-order fixture, clean twin: one global acquisition order
// (queue_mu_ before state_mu_) from every entry point, waits that hold
// only the lock they release, and dispatch after the guard scope has
// closed. Never compiled.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace sysuq::sys {

struct Pool {
  void run(std::size_t jobs, int task) {}
};

class Scheduler {
 public:
  void submit(int job);
  void drain();
  void wait_done();
  void flush(Pool& worker_pool);

 private:
  std::mutex queue_mu_;
  std::mutex state_mu_;
  std::condition_variable cv_;
  std::size_t pending_ = 0;  // sysuq-guarded-by(queue_mu_)
  std::size_t done_ = 0;     // sysuq-guarded-by(state_mu_)
};

}  // namespace sysuq::sys
