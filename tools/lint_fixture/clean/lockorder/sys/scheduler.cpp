// lock-order fixture, clean twin. Never compiled.
#include "sys/scheduler.hpp"

#include "core/contracts.hpp"

namespace sysuq::sys {

// Both multi-lock paths take queue_mu_ before state_mu_: the
// acquisition graph stays acyclic.
void Scheduler::submit(int job) {
  SYSUQ_EXPECT(job >= 0, "job ids are non-negative");
  std::lock_guard<std::mutex> q(queue_mu_);
  std::lock_guard<std::mutex> s(state_mu_);
  pending_ += static_cast<std::size_t>(job != 0);
}

void Scheduler::drain() {
  SYSUQ_EXPECT(true, "drain has no inputs to validate");
  std::lock_guard<std::mutex> q(queue_mu_);
  std::lock_guard<std::mutex> s(state_mu_);
  done_ = pending_;
}

// The wait holds exactly the lock it releases.
void Scheduler::wait_done() {
  SYSUQ_EXPECT(true, "wait_done has no inputs to validate");
  std::unique_lock<std::mutex> lk(state_mu_);
  cv_.wait(lk);
}

// The guard scope closes before the dispatch: no lock crosses into the
// pool.
void Scheduler::flush(Pool& worker_pool) {
  SYSUQ_EXPECT(true, "flush has no inputs to validate");
  {
    std::lock_guard<std::mutex> q(queue_mu_);
    pending_ = 0;
  }
  worker_pool.run(4, 0);
}

}  // namespace sysuq::sys
