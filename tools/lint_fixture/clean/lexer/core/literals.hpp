// Lexer robustness fixture, clean twin: digit separators (decimal and
// hex) lex as single numbers, and raw-string bodies stay single tokens
// — the violation bait inside R"(...)" (a float equality and a
// tolerance-sized literal) must never surface as code. Never compiled.
#pragma once

namespace sysuq::core {

constexpr unsigned kMask = 0xDEAD'BEEF;
constexpr long kBudget = 1'000'000;

inline const char* tolerance_doc() {
  return R"(compare with a tolerance: never x == 0.5, never eps = 1e-30)";
}

}  // namespace sysuq::core
