// Lock-discipline fixture, clean twin. Never compiled.
#include "obs/cache.hpp"

namespace sysuq::obs {

void Cache::put(int v) {
  const std::lock_guard<std::mutex> lock(mu_);
  last_ = v;
  hits_.store(hits_.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
}

int Cache::approx() const {
  return static_cast<int>(hits_.load(std::memory_order_relaxed));
}

bool Cache::ready() const {
  return ready_.load(std::memory_order_acquire);  // within declared ceiling
}

}  // namespace sysuq::obs
