// Lock-discipline fixture, clean twin: writes happen under a
// lock_guard, loads stay within each member's declared memory-order
// ceiling (relaxed by default; `ready_` raises its ceiling to acquire
// with a sysuq-atomic-order marker). Never compiled.
#pragma once

#include <atomic>
#include <mutex>

namespace sysuq::obs {

class Cache {
 public:
  // sysuq-lint-allow(contract-coverage): lock fixture, contracts out of scope
  void put(int v);
  // sysuq-lint-allow(contract-coverage): lock fixture, contracts out of scope
  int approx() const;
  // sysuq-lint-allow(contract-coverage): lock fixture, contracts out of scope
  bool ready() const;

 private:
  mutable std::mutex mu_;
  int last_ = 0;  // sysuq-guarded-by(mu_)
  std::atomic<long> hits_{0};
  std::atomic<bool> ready_{false};  // sysuq-atomic-order(acquire)
};

}  // namespace sysuq::obs
