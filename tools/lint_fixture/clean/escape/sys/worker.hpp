// thread-escape fixture, clean twin: the worker lambda takes the lock
// before touching guarded state, the sysuq-requires callee is invoked
// with the lock held, and the spawned thread is joined before the frame
// it captures returns. Never compiled.
#pragma once

#include <cstddef>
#include <mutex>
#include <thread>

namespace sysuq::sys {

struct Pool {
  void run(std::size_t jobs, int task) {}
};

class Collector {
 public:
  // sysuq-lint-allow(contract-coverage): escape fixture, contracts out of scope
  void collect(Pool& worker_pool, std::size_t jobs);
  // sysuq-lint-allow(contract-coverage): escape fixture, contracts out of scope
  void spawn_logger();
  // sysuq-lint-allow(contract-coverage): escape fixture, contracts out of scope
  std::size_t total() const;

 private:
  // Caller holds mu_.
  // sysuq-requires(mu_)
  void bump_locked(std::size_t amount);

  mutable std::mutex mu_;
  std::size_t total_ = 0;    // sysuq-guarded-by(mu_)
  std::size_t batches_ = 0;  // sysuq-guarded-by(mu_)
};

}  // namespace sysuq::sys
