// thread-escape fixture, clean twin. Never compiled.
#include "sys/worker.hpp"

namespace sysuq::sys {

void Collector::collect(Pool& worker_pool, std::size_t jobs) {
  worker_pool.run(jobs, [this](std::size_t i) {
    std::lock_guard<std::mutex> lk(mu_);
    total_ += i;
    bump_locked(i);  // mu_ held: the requires-contract is satisfied
  });
  std::lock_guard<std::mutex> lk(mu_);
  batches_ += 1;
}

void Collector::spawn_logger() {
  std::size_t local = 0;
  std::thread t([&] { local += 1; });
  t.join();  // the frame outlives the worker
}

std::size_t Collector::total() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_;
}

void Collector::bump_locked(std::size_t amount) { total_ += amount; }

}  // namespace sysuq::sys
