// Contract-coverage fixture: definitions with no SYSUQ_EXPECT /
// SYSUQ_ASSERT_PROB* anywhere — one member function, one free function.
// Never compiled.
#include "markov/chain.hpp"

namespace sysuq::markov {

double Chain::advance(double p) {
  state_ = state_ * (1.0 - p) + p;
  return state_;
}

double mix(double a, double b) { return 0.5 * (a + b); }

}  // namespace sysuq::markov
