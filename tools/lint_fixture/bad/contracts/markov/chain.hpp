// Contract-coverage fixture: both public entry points declared here are
// defined in chain.cpp without executing any contract macro, so the
// contracts pass must flag both definitions. Never compiled.
#pragma once

namespace sysuq::markov {

class Chain {
 public:
  double advance(double p);

 private:
  double state_ = 0.0;
};

double mix(double a, double b);

}  // namespace sysuq::markov
