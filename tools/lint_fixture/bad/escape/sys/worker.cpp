// thread-escape fixture: an unguarded worker write, a sysuq-requires
// violation at a worker call site, and a by-reference capture escaping
// through a detached thread — three violations. Never compiled.
#include "sys/worker.hpp"

namespace sysuq::sys {

void Collector::collect(Pool& worker_pool, std::size_t jobs) {
  worker_pool.run(jobs, [&](std::size_t i) {
    total_ += i;     // worker-thread write with no lock
    bump_locked(i);  // requires mu_, not held here
  });
  std::lock_guard<std::mutex> lk(mu_);
  batches_ += 1;
}

void Collector::spawn_logger() {
  std::size_t local = 0;
  std::thread t([&] { local += 1; });
  t.detach();  // &local dangles once this frame returns
}

std::size_t Collector::total() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_;
}

void Collector::bump_locked(std::size_t amount) { total_ += amount; }

}  // namespace sysuq::sys
