// thread-escape fixture: worker.cpp writes guarded state from a pool
// worker lambda with no lock while the owner thread reads it under mu_,
// calls a sysuq-requires function without its lock, and detaches a
// thread whose lambda captures the stack frame by reference. Never
// compiled.
#pragma once

#include <cstddef>
#include <mutex>
#include <thread>

namespace sysuq::sys {

struct Pool {
  void run(std::size_t jobs, int task) {}
};

class Collector {
 public:
  void collect(Pool& worker_pool, std::size_t jobs);
  void spawn_logger();
  std::size_t total() const;

 private:
  // Caller holds mu_.
  // sysuq-requires(mu_)
  void bump_locked(std::size_t amount);

  mutable std::mutex mu_;
  std::size_t total_ = 0;    // sysuq-guarded-by(mu_)
  std::size_t batches_ = 0;  // sysuq-guarded-by(mu_)
};

}  // namespace sysuq::sys
