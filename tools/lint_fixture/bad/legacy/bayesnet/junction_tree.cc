// Lint self-test fixture: a junction-tree source file that violates one
// rule per line below. `ctest -L lint` runs sysuq_analyze over this tree
// with WILL_FAIL, so the suite breaks if any rule stops firing — or if
// the .cc spelling ever falls out of the file glob. Never compiled.
#include "../junction_tree.hpp"
#include "bayesnet/junction_tree.hpp"

#include <random>

namespace sysuq::bayesnet {

void fixture_violations() {
  std::mt19937 raw_generator(42);
  auto& builds = registry().counter("JT Builds");
  const double eps = 1e-9;
  if (eps == 0.5) return;
  (void)raw_generator;
  (void)builds;
}

}  // namespace sysuq::bayesnet
