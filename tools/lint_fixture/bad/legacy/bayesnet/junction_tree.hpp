// Companion header for the bad fixture: its presence arms the lint's
// own-header-first check for junction_tree.cc. Never compiled.
#pragma once

namespace sysuq::bayesnet {
void fixture_violations();
}  // namespace sysuq::bayesnet
