// Validate-before-mutate fixture: p_ is written before q is validated.
// Never compiled.
#include "prob/dist.hpp"

#include "core/contracts.hpp"

namespace sysuq::prob {

void Dist::set_p(double p, double q) {
  SYSUQ_ASSERT_PROB(p, "p");
  p_ = p;  // mutation precedes the q check below
  SYSUQ_ASSERT_PROB(q, "q");
  q_ = q;
}

}  // namespace sysuq::prob
