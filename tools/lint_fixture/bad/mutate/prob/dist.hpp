// Validate-before-mutate fixture: set_p in dist.cpp mutates a member
// before its last precondition check, so a throwing contract leaves the
// object half-mutated — the pass must flag it. Never compiled.
#pragma once

namespace sysuq::prob {

class Dist {
 public:
  void set_p(double p, double q);

 private:
  double p_ = 0.0;
  double q_ = 0.0;
};

}  // namespace sysuq::prob
