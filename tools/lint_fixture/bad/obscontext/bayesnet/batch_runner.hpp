// obs-context fixture, bad twin. Never compiled.
#pragma once

#include <cstddef>

namespace sysuq::bayesnet {

struct Pool {
  void run(std::size_t jobs, int task) {}
};

class BatchRunner {
 public:
  void run_batch(std::size_t n);
  void run_batch_member(std::size_t n);

 private:
  Pool* pool_ = nullptr;
  Pool worker_pool_;
};

}  // namespace sysuq::bayesnet
