// obs-context fixture, bad twin: a span is opened, work fans out to
// the pool, and no TraceContext crosses the dispatch — the worker-side
// spans will root disconnected traces. Never compiled.
#include "bayesnet/batch_runner.hpp"

#include "core/contracts.hpp"
#include "obs/trace.hpp"

namespace sysuq::bayesnet {

void BatchRunner::run_batch(std::size_t n) {
  SYSUQ_EXPECT(n > 0, "run_batch needs work");
  const obs::Span span("bayesnet.batch_runner.run_batch");
  pool_->run(n, 0);  // no current_context()/ContextScope handoff
}

void BatchRunner::run_batch_member(std::size_t n) {
  SYSUQ_EXPECT(n > 0, "run_batch_member needs work");
  const obs::Span span("bayesnet.batch_runner.run_batch_member");
  worker_pool_.run(n, 0);  // member pool, same missing handoff
}

}  // namespace sysuq::bayesnet
