// Layering fixture: a synthetic back-edge. `core` is the bottom layer
// of the module DAG, so including anything from `bayesnet` here must be
// rejected by the layering pass. Never compiled.
#pragma once

#include "bayesnet/engine.hpp"
#include "prob/distribution.hpp"

namespace sysuq::core {
inline int fixture_backedge() { return 0; }
}  // namespace sysuq::core
