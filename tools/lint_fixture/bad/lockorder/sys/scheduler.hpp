// lock-order fixture: scheduler.cpp acquires queue_mu_ and state_mu_
// in opposite orders from two entry points (a lock-order cycle), waits
// on a condition variable while a second mutex stays locked, and
// dispatches to a thread pool with a lock held. Never compiled.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace sysuq::sys {

struct Pool {
  void run(std::size_t jobs, int task) {}
};

class Scheduler {
 public:
  void submit(int job);
  void drain();
  void wait_done();
  void flush(Pool& worker_pool);

 private:
  std::mutex queue_mu_;
  std::mutex state_mu_;
  std::condition_variable cv_;
  std::size_t pending_ = 0;
  std::size_t done_ = 0;
};

}  // namespace sysuq::sys
