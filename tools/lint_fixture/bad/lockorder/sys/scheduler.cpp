// lock-order fixture, bad twin. Never compiled.
#include "sys/scheduler.hpp"

namespace sysuq::sys {

// Acquires queue_mu_ then state_mu_ ...
void Scheduler::submit(int job) {
  std::lock_guard<std::mutex> q(queue_mu_);
  std::lock_guard<std::mutex> s(state_mu_);
  pending_ += static_cast<std::size_t>(job != 0);
}

// ... while drain acquires state_mu_ then queue_mu_: a cycle in the
// acquisition graph — two concurrent callers deadlock.
void Scheduler::drain() {
  std::lock_guard<std::mutex> s(state_mu_);
  std::lock_guard<std::mutex> q(queue_mu_);
  done_ = pending_;
}

// The wait releases state_mu_ but queue_mu_ stays locked for the whole
// sleep, blocking every submitter.
void Scheduler::wait_done() {
  std::lock_guard<std::mutex> q(queue_mu_);
  std::unique_lock<std::mutex> lk(state_mu_);
  cv_.wait(lk);
}

// Dispatching into the pool with queue_mu_ held: a worker contending
// for the same lock deadlocks against us.
void Scheduler::flush(Pool& worker_pool) {
  std::lock_guard<std::mutex> q(queue_mu_);
  worker_pool.run(4, 0);
}

}  // namespace sysuq::sys
