// log-domain fixture: log_misuse.cpp multiplies log-domain values with
// linear `*`, feeds a log value to SYSUQ_ASSERT_PROB, accumulates a
// probability array with a naive `+=` loop, and leaks log-ness through
// a helper's return value into a `/`. Never compiled.
#pragma once

#include <cstddef>
#include <vector>

namespace sysuq::prob {

class LogModel {
 public:
  double posterior(const std::vector<double>& p);
  double total_mass(const std::vector<double>& p);

 private:
  double log_evidence_ = 0.0;
};

double joint(const std::vector<double>& p);
double lin(const std::vector<double>& p);

}  // namespace sysuq::prob
