// log-domain fixture, bad twin. Never compiled.
#include "prob/log_misuse.hpp"

#include <cmath>

#include "core/contracts.hpp"

namespace sysuq::prob {

// `log_joint` is a log-domain value: scaling it with `*` and asserting
// it as a probability are both category errors.
double LogModel::posterior(const std::vector<double>& p) {
  double log_joint = std::log(p[0]) + std::log(p[1]);
  double scaled = log_joint * static_cast<double>(p.size());
  SYSUQ_ASSERT_PROB(log_joint, "posterior mass");
  log_evidence_ = log_joint;
  return scaled;
}

// Naive accumulation over a probability array: mass drifts on long
// sums (the PR-3 bug class).
double LogModel::total_mass(const std::vector<double>& p) {
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    acc += p[i];
  }
  return acc;
}

// joint() provably returns a log-domain value ...
double joint(const std::vector<double>& p) {
  double s = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    s += std::log(p[i]);
  }
  return s;
}

// ... so dividing its result linearly is flagged interprocedurally.
double lin(const std::vector<double>& p) {
  double j = joint(p);
  return j / static_cast<double>(p.size());
}

}  // namespace sysuq::prob
