// Lexer regression fixture: the digit separator in the hex mask must
// lex as part of one pp-number. The old scanner only accepted a
// separator when a *decimal* digit followed, so 0xDEAD'BEEF ended at
// 0xDEAD and the rest of the line vanished into a bogus char literal —
// hiding the magic-epsilon violation after it. Never compiled.
#pragma once

namespace sysuq::core {

constexpr unsigned kMask = 0xDEAD'BEEF; constexpr double kEps = 1e-12;

}  // namespace sysuq::core
