// arena-escape fixture, bad twin. Never compiled.
#include "bayesnet/scratch_misuse.hpp"

namespace sysuq::bayesnet {

// Use after reset: `probs` points into the arena that is recycled one
// line before the read.
double ScratchCache::stale_total(const kernels::View& lhs,
                                 const kernels::View& rhs) {
  kernels::Arena& arena = kernels::thread_scratch();
  kernels::View probs = kernels::product(lhs, rhs, arena);
  arena.reset();
  return probs.total();
}

// View stored into a member: `view_` outlives the next reset().
void ScratchCache::remember(const kernels::View& v) {
  view_ = v;
}

// Arena view captured by a thread-pool callback: the arena belongs to
// the dispatching thread, the callback runs on a worker.
void ScratchCache::prefetch(std::size_t n) {
  kernels::Arena& arena = kernels::thread_scratch();
  kernels::View scope = kernels::reduce(batch_, 0, 0, arena);
  pool_->run(n, [this, scope] { view_ = scope; });
}

// Interprocedural: slice() provably returns arena storage, so the
// pointer goes stale at the reset even though the alloc happened one
// call away.
double* slice(kernels::Arena& arena, std::size_t n) {
  return arena.alloc<double>(n);
}

double ScratchCache::interprocedural(std::size_t n) {
  kernels::Arena& arena = kernels::thread_scratch();
  double* p = slice(arena, n);
  arena.reset();
  return p[0];
}

}  // namespace sysuq::bayesnet
