// arena-escape fixture: every function in scratch_misuse.cpp leaks
// per-thread bump-arena storage past its lifetime — use after reset(),
// a view stored into a member, a view captured by a pool callback, and
// an interprocedural use-after-reset through a view-returning helper.
// Never compiled.
#pragma once

#include <cstddef>
#include <vector>

#include "bayesnet/arena.hpp"
#include "bayesnet/kernels.hpp"

namespace sysuq::bayesnet {

struct Pool {
  void run(std::size_t jobs, int task) {}
};

class ScratchCache {
 public:
  double stale_total(const kernels::View& lhs, const kernels::View& rhs);
  void remember(const kernels::View& v);
  void prefetch(std::size_t n);
  double interprocedural(std::size_t n);

 private:
  kernels::View view_;
  kernels::View batch_;
  Pool* pool_ = nullptr;
};

double* slice(kernels::Arena& arena, std::size_t n);

}  // namespace sysuq::bayesnet
