// Lock-discipline fixture: one unlocked non-atomic write, one bare
// (seq_cst) load on an atomic whose declared ceiling is relaxed, one
// explicit acquire load — three violations. Never compiled.
#include "obs/cache.hpp"

namespace sysuq::obs {

void Cache::put(int v) {
  last_ = v;  // write without holding mu_
  hits_.store(hits_.load(std::memory_order_acquire) + 1,
              std::memory_order_relaxed);
}

int Cache::approx() const {
  return static_cast<int>(hits_.load());  // bare load defaults to seq_cst
}

}  // namespace sysuq::obs
