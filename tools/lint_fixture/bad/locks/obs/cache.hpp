// Lock-discipline fixture: Cache owns a std::mutex, so unlocked writes
// to its non-atomic members and stricter-than-declared atomic orders in
// cache.cpp must be flagged. Never compiled.
#pragma once

#include <atomic>
#include <mutex>

namespace sysuq::obs {

class Cache {
 public:
  void put(int v);
  int approx() const;

 private:
  mutable std::mutex mu_;
  int last_ = 0;
  std::atomic<long> hits_{0};
};

}  // namespace sysuq::obs
