// guard-consistency fixture: store.cpp writes a guarded member with no
// lock and calls a sysuq-excludes function while holding the excluded
// mutex; epoch_ below carries no thread-safety annotation at all —
// three violations. Never compiled.
#pragma once

#include <cstddef>
#include <mutex>

namespace sysuq::obs {

class Store {
 public:
  void put(double v);
  void refresh();
  double snapshot() const;

 private:
  // Takes mu_ itself.
  // sysuq-excludes(mu_)
  void rebuild();

  mutable std::mutex mu_;
  double value_ = 0.0;  // sysuq-guarded-by(mu_)
  std::size_t epoch_ = 0;
};

}  // namespace sysuq::obs
