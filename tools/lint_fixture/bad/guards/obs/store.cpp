// guard-consistency fixture. Never compiled.
#include "obs/store.hpp"

namespace sysuq::obs {

void Store::put(double v) {
  value_ = v;  // guarded write without mu_
}

void Store::refresh() {
  std::lock_guard<std::mutex> lk(mu_);
  rebuild();  // excludes mu_: it takes the lock itself — self-deadlock
  epoch_ += 1;
}

double Store::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return value_;
}

void Store::rebuild() {
  std::lock_guard<std::mutex> lk(mu_);
  value_ = 0.0;
}

}  // namespace sysuq::obs
