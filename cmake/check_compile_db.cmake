# Helper for the `tidy` target: verify the compilation database exists
# before clang-tidy runs, so a missing export fails with a real message
# instead of a wall of "error reading compile commands" noise.
if(NOT DEFINED DB OR NOT DEFINED STAMP)
  message(FATAL_ERROR "check_compile_db.cmake: pass -DDB=<path> -DSTAMP=<path>")
endif()
if(NOT EXISTS "${DB}")
  message(FATAL_ERROR
    "tidy: ${DB} not found.\n"
    "clang-tidy needs the compilation database. Re-configure this build "
    "directory with CMAKE_EXPORT_COMPILE_COMMANDS=ON (the top-level "
    "CMakeLists.txt sets it by default):\n"
    "  cmake --preset default")
endif()
file(TOUCH "${STAMP}")
