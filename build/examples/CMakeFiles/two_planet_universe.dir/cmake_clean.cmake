file(REMOVE_RECURSE
  "CMakeFiles/two_planet_universe.dir/two_planet_universe.cpp.o"
  "CMakeFiles/two_planet_universe.dir/two_planet_universe.cpp.o.d"
  "two_planet_universe"
  "two_planet_universe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_planet_universe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
