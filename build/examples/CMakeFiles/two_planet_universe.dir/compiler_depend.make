# Empty compiler generated dependencies file for two_planet_universe.
# This may be replaced when dependencies are built.
