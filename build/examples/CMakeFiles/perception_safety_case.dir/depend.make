# Empty dependencies file for perception_safety_case.
# This may be replaced when dependencies are built.
