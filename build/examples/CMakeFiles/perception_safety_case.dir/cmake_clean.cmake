file(REMOVE_RECURSE
  "CMakeFiles/perception_safety_case.dir/perception_safety_case.cpp.o"
  "CMakeFiles/perception_safety_case.dir/perception_safety_case.cpp.o.d"
  "perception_safety_case"
  "perception_safety_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perception_safety_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
