file(REMOVE_RECURSE
  "CMakeFiles/uncertainty_removal_loop.dir/uncertainty_removal_loop.cpp.o"
  "CMakeFiles/uncertainty_removal_loop.dir/uncertainty_removal_loop.cpp.o.d"
  "uncertainty_removal_loop"
  "uncertainty_removal_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uncertainty_removal_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
