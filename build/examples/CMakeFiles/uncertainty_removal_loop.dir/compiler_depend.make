# Empty compiler generated dependencies file for uncertainty_removal_loop.
# This may be replaced when dependencies are built.
