file(REMOVE_RECURSE
  "CMakeFiles/release_argument.dir/release_argument.cpp.o"
  "CMakeFiles/release_argument.dir/release_argument.cpp.o.d"
  "release_argument"
  "release_argument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/release_argument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
