# Empty compiler generated dependencies file for release_argument.
# This may be replaced when dependencies are built.
