# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_release_argument "/root/repo/build/examples/release_argument")
set_tests_properties(example_release_argument PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_two_planet_universe "/root/repo/build/examples/two_planet_universe")
set_tests_properties(example_two_planet_universe PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_perception_safety_case "/root/repo/build/examples/perception_safety_case")
set_tests_properties(example_perception_safety_case PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_uncertainty_removal_loop "/root/repo/build/examples/uncertainty_removal_loop")
set_tests_properties(example_uncertainty_removal_loop PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
