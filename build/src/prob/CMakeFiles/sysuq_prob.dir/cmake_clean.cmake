file(REMOVE_RECURSE
  "CMakeFiles/sysuq_prob.dir/discrete.cpp.o"
  "CMakeFiles/sysuq_prob.dir/discrete.cpp.o.d"
  "CMakeFiles/sysuq_prob.dir/distribution.cpp.o"
  "CMakeFiles/sysuq_prob.dir/distribution.cpp.o.d"
  "CMakeFiles/sysuq_prob.dir/fuzzy.cpp.o"
  "CMakeFiles/sysuq_prob.dir/fuzzy.cpp.o.d"
  "CMakeFiles/sysuq_prob.dir/histogram.cpp.o"
  "CMakeFiles/sysuq_prob.dir/histogram.cpp.o.d"
  "CMakeFiles/sysuq_prob.dir/information.cpp.o"
  "CMakeFiles/sysuq_prob.dir/information.cpp.o.d"
  "CMakeFiles/sysuq_prob.dir/interval.cpp.o"
  "CMakeFiles/sysuq_prob.dir/interval.cpp.o.d"
  "CMakeFiles/sysuq_prob.dir/polychaos.cpp.o"
  "CMakeFiles/sysuq_prob.dir/polychaos.cpp.o.d"
  "CMakeFiles/sysuq_prob.dir/rng.cpp.o"
  "CMakeFiles/sysuq_prob.dir/rng.cpp.o.d"
  "CMakeFiles/sysuq_prob.dir/special.cpp.o"
  "CMakeFiles/sysuq_prob.dir/special.cpp.o.d"
  "CMakeFiles/sysuq_prob.dir/statistics.cpp.o"
  "CMakeFiles/sysuq_prob.dir/statistics.cpp.o.d"
  "libsysuq_prob.a"
  "libsysuq_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysuq_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
