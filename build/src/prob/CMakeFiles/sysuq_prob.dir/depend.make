# Empty dependencies file for sysuq_prob.
# This may be replaced when dependencies are built.
