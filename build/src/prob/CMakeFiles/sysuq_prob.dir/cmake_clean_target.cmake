file(REMOVE_RECURSE
  "libsysuq_prob.a"
)
