
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prob/discrete.cpp" "src/prob/CMakeFiles/sysuq_prob.dir/discrete.cpp.o" "gcc" "src/prob/CMakeFiles/sysuq_prob.dir/discrete.cpp.o.d"
  "/root/repo/src/prob/distribution.cpp" "src/prob/CMakeFiles/sysuq_prob.dir/distribution.cpp.o" "gcc" "src/prob/CMakeFiles/sysuq_prob.dir/distribution.cpp.o.d"
  "/root/repo/src/prob/fuzzy.cpp" "src/prob/CMakeFiles/sysuq_prob.dir/fuzzy.cpp.o" "gcc" "src/prob/CMakeFiles/sysuq_prob.dir/fuzzy.cpp.o.d"
  "/root/repo/src/prob/histogram.cpp" "src/prob/CMakeFiles/sysuq_prob.dir/histogram.cpp.o" "gcc" "src/prob/CMakeFiles/sysuq_prob.dir/histogram.cpp.o.d"
  "/root/repo/src/prob/information.cpp" "src/prob/CMakeFiles/sysuq_prob.dir/information.cpp.o" "gcc" "src/prob/CMakeFiles/sysuq_prob.dir/information.cpp.o.d"
  "/root/repo/src/prob/interval.cpp" "src/prob/CMakeFiles/sysuq_prob.dir/interval.cpp.o" "gcc" "src/prob/CMakeFiles/sysuq_prob.dir/interval.cpp.o.d"
  "/root/repo/src/prob/polychaos.cpp" "src/prob/CMakeFiles/sysuq_prob.dir/polychaos.cpp.o" "gcc" "src/prob/CMakeFiles/sysuq_prob.dir/polychaos.cpp.o.d"
  "/root/repo/src/prob/rng.cpp" "src/prob/CMakeFiles/sysuq_prob.dir/rng.cpp.o" "gcc" "src/prob/CMakeFiles/sysuq_prob.dir/rng.cpp.o.d"
  "/root/repo/src/prob/special.cpp" "src/prob/CMakeFiles/sysuq_prob.dir/special.cpp.o" "gcc" "src/prob/CMakeFiles/sysuq_prob.dir/special.cpp.o.d"
  "/root/repo/src/prob/statistics.cpp" "src/prob/CMakeFiles/sysuq_prob.dir/statistics.cpp.o" "gcc" "src/prob/CMakeFiles/sysuq_prob.dir/statistics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
