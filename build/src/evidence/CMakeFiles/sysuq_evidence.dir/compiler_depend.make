# Empty compiler generated dependencies file for sysuq_evidence.
# This may be replaced when dependencies are built.
