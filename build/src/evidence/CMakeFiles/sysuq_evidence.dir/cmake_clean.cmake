file(REMOVE_RECURSE
  "CMakeFiles/sysuq_evidence.dir/credal.cpp.o"
  "CMakeFiles/sysuq_evidence.dir/credal.cpp.o.d"
  "CMakeFiles/sysuq_evidence.dir/evidential_network.cpp.o"
  "CMakeFiles/sysuq_evidence.dir/evidential_network.cpp.o.d"
  "CMakeFiles/sysuq_evidence.dir/frame.cpp.o"
  "CMakeFiles/sysuq_evidence.dir/frame.cpp.o.d"
  "CMakeFiles/sysuq_evidence.dir/mass.cpp.o"
  "CMakeFiles/sysuq_evidence.dir/mass.cpp.o.d"
  "CMakeFiles/sysuq_evidence.dir/subjective.cpp.o"
  "CMakeFiles/sysuq_evidence.dir/subjective.cpp.o.d"
  "libsysuq_evidence.a"
  "libsysuq_evidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysuq_evidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
