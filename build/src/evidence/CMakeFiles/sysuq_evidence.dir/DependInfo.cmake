
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/evidence/credal.cpp" "src/evidence/CMakeFiles/sysuq_evidence.dir/credal.cpp.o" "gcc" "src/evidence/CMakeFiles/sysuq_evidence.dir/credal.cpp.o.d"
  "/root/repo/src/evidence/evidential_network.cpp" "src/evidence/CMakeFiles/sysuq_evidence.dir/evidential_network.cpp.o" "gcc" "src/evidence/CMakeFiles/sysuq_evidence.dir/evidential_network.cpp.o.d"
  "/root/repo/src/evidence/frame.cpp" "src/evidence/CMakeFiles/sysuq_evidence.dir/frame.cpp.o" "gcc" "src/evidence/CMakeFiles/sysuq_evidence.dir/frame.cpp.o.d"
  "/root/repo/src/evidence/mass.cpp" "src/evidence/CMakeFiles/sysuq_evidence.dir/mass.cpp.o" "gcc" "src/evidence/CMakeFiles/sysuq_evidence.dir/mass.cpp.o.d"
  "/root/repo/src/evidence/subjective.cpp" "src/evidence/CMakeFiles/sysuq_evidence.dir/subjective.cpp.o" "gcc" "src/evidence/CMakeFiles/sysuq_evidence.dir/subjective.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/prob/CMakeFiles/sysuq_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/bayesnet/CMakeFiles/sysuq_bayesnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
