file(REMOVE_RECURSE
  "libsysuq_evidence.a"
)
