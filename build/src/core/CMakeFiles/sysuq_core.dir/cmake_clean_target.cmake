file(REMOVE_RECURSE
  "libsysuq_core.a"
)
