# Empty dependencies file for sysuq_core.
# This may be replaced when dependencies are built.
