file(REMOVE_RECURSE
  "CMakeFiles/sysuq_core.dir/cybernetic.cpp.o"
  "CMakeFiles/sysuq_core.dir/cybernetic.cpp.o.d"
  "CMakeFiles/sysuq_core.dir/decomposition.cpp.o"
  "CMakeFiles/sysuq_core.dir/decomposition.cpp.o.d"
  "CMakeFiles/sysuq_core.dir/longtail.cpp.o"
  "CMakeFiles/sysuq_core.dir/longtail.cpp.o.d"
  "CMakeFiles/sysuq_core.dir/means.cpp.o"
  "CMakeFiles/sysuq_core.dir/means.cpp.o.d"
  "CMakeFiles/sysuq_core.dir/modeling.cpp.o"
  "CMakeFiles/sysuq_core.dir/modeling.cpp.o.d"
  "CMakeFiles/sysuq_core.dir/taxonomy.cpp.o"
  "CMakeFiles/sysuq_core.dir/taxonomy.cpp.o.d"
  "libsysuq_core.a"
  "libsysuq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysuq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
