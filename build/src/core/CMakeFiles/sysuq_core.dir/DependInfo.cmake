
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cybernetic.cpp" "src/core/CMakeFiles/sysuq_core.dir/cybernetic.cpp.o" "gcc" "src/core/CMakeFiles/sysuq_core.dir/cybernetic.cpp.o.d"
  "/root/repo/src/core/decomposition.cpp" "src/core/CMakeFiles/sysuq_core.dir/decomposition.cpp.o" "gcc" "src/core/CMakeFiles/sysuq_core.dir/decomposition.cpp.o.d"
  "/root/repo/src/core/longtail.cpp" "src/core/CMakeFiles/sysuq_core.dir/longtail.cpp.o" "gcc" "src/core/CMakeFiles/sysuq_core.dir/longtail.cpp.o.d"
  "/root/repo/src/core/means.cpp" "src/core/CMakeFiles/sysuq_core.dir/means.cpp.o" "gcc" "src/core/CMakeFiles/sysuq_core.dir/means.cpp.o.d"
  "/root/repo/src/core/modeling.cpp" "src/core/CMakeFiles/sysuq_core.dir/modeling.cpp.o" "gcc" "src/core/CMakeFiles/sysuq_core.dir/modeling.cpp.o.d"
  "/root/repo/src/core/taxonomy.cpp" "src/core/CMakeFiles/sysuq_core.dir/taxonomy.cpp.o" "gcc" "src/core/CMakeFiles/sysuq_core.dir/taxonomy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/prob/CMakeFiles/sysuq_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/bayesnet/CMakeFiles/sysuq_bayesnet.dir/DependInfo.cmake"
  "/root/repo/build/src/evidence/CMakeFiles/sysuq_evidence.dir/DependInfo.cmake"
  "/root/repo/build/src/perception/CMakeFiles/sysuq_perception.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
