# Empty compiler generated dependencies file for sysuq_orbit.
# This may be replaced when dependencies are built.
