file(REMOVE_RECURSE
  "CMakeFiles/sysuq_orbit.dir/kalman.cpp.o"
  "CMakeFiles/sysuq_orbit.dir/kalman.cpp.o.d"
  "CMakeFiles/sysuq_orbit.dir/nbody.cpp.o"
  "CMakeFiles/sysuq_orbit.dir/nbody.cpp.o.d"
  "CMakeFiles/sysuq_orbit.dir/two_planet.cpp.o"
  "CMakeFiles/sysuq_orbit.dir/two_planet.cpp.o.d"
  "libsysuq_orbit.a"
  "libsysuq_orbit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysuq_orbit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
