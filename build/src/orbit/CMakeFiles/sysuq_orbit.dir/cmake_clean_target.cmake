file(REMOVE_RECURSE
  "libsysuq_orbit.a"
)
