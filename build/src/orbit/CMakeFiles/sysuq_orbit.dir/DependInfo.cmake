
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/orbit/kalman.cpp" "src/orbit/CMakeFiles/sysuq_orbit.dir/kalman.cpp.o" "gcc" "src/orbit/CMakeFiles/sysuq_orbit.dir/kalman.cpp.o.d"
  "/root/repo/src/orbit/nbody.cpp" "src/orbit/CMakeFiles/sysuq_orbit.dir/nbody.cpp.o" "gcc" "src/orbit/CMakeFiles/sysuq_orbit.dir/nbody.cpp.o.d"
  "/root/repo/src/orbit/two_planet.cpp" "src/orbit/CMakeFiles/sysuq_orbit.dir/two_planet.cpp.o" "gcc" "src/orbit/CMakeFiles/sysuq_orbit.dir/two_planet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/prob/CMakeFiles/sysuq_prob.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
