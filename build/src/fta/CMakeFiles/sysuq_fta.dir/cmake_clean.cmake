file(REMOVE_RECURSE
  "CMakeFiles/sysuq_fta.dir/analysis.cpp.o"
  "CMakeFiles/sysuq_fta.dir/analysis.cpp.o.d"
  "CMakeFiles/sysuq_fta.dir/dynamic.cpp.o"
  "CMakeFiles/sysuq_fta.dir/dynamic.cpp.o.d"
  "CMakeFiles/sysuq_fta.dir/event_tree.cpp.o"
  "CMakeFiles/sysuq_fta.dir/event_tree.cpp.o.d"
  "CMakeFiles/sysuq_fta.dir/fault_tree.cpp.o"
  "CMakeFiles/sysuq_fta.dir/fault_tree.cpp.o.d"
  "CMakeFiles/sysuq_fta.dir/fta_to_bn.cpp.o"
  "CMakeFiles/sysuq_fta.dir/fta_to_bn.cpp.o.d"
  "libsysuq_fta.a"
  "libsysuq_fta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysuq_fta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
