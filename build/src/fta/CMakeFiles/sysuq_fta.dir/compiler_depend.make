# Empty compiler generated dependencies file for sysuq_fta.
# This may be replaced when dependencies are built.
