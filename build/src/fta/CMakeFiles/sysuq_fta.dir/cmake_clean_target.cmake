file(REMOVE_RECURSE
  "libsysuq_fta.a"
)
