
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fta/analysis.cpp" "src/fta/CMakeFiles/sysuq_fta.dir/analysis.cpp.o" "gcc" "src/fta/CMakeFiles/sysuq_fta.dir/analysis.cpp.o.d"
  "/root/repo/src/fta/dynamic.cpp" "src/fta/CMakeFiles/sysuq_fta.dir/dynamic.cpp.o" "gcc" "src/fta/CMakeFiles/sysuq_fta.dir/dynamic.cpp.o.d"
  "/root/repo/src/fta/event_tree.cpp" "src/fta/CMakeFiles/sysuq_fta.dir/event_tree.cpp.o" "gcc" "src/fta/CMakeFiles/sysuq_fta.dir/event_tree.cpp.o.d"
  "/root/repo/src/fta/fault_tree.cpp" "src/fta/CMakeFiles/sysuq_fta.dir/fault_tree.cpp.o" "gcc" "src/fta/CMakeFiles/sysuq_fta.dir/fault_tree.cpp.o.d"
  "/root/repo/src/fta/fta_to_bn.cpp" "src/fta/CMakeFiles/sysuq_fta.dir/fta_to_bn.cpp.o" "gcc" "src/fta/CMakeFiles/sysuq_fta.dir/fta_to_bn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/prob/CMakeFiles/sysuq_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/bayesnet/CMakeFiles/sysuq_bayesnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
