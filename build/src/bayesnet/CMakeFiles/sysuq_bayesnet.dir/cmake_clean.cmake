file(REMOVE_RECURSE
  "CMakeFiles/sysuq_bayesnet.dir/builders.cpp.o"
  "CMakeFiles/sysuq_bayesnet.dir/builders.cpp.o.d"
  "CMakeFiles/sysuq_bayesnet.dir/factor.cpp.o"
  "CMakeFiles/sysuq_bayesnet.dir/factor.cpp.o.d"
  "CMakeFiles/sysuq_bayesnet.dir/inference.cpp.o"
  "CMakeFiles/sysuq_bayesnet.dir/inference.cpp.o.d"
  "CMakeFiles/sysuq_bayesnet.dir/io.cpp.o"
  "CMakeFiles/sysuq_bayesnet.dir/io.cpp.o.d"
  "CMakeFiles/sysuq_bayesnet.dir/learning.cpp.o"
  "CMakeFiles/sysuq_bayesnet.dir/learning.cpp.o.d"
  "CMakeFiles/sysuq_bayesnet.dir/network.cpp.o"
  "CMakeFiles/sysuq_bayesnet.dir/network.cpp.o.d"
  "CMakeFiles/sysuq_bayesnet.dir/sensitivity.cpp.o"
  "CMakeFiles/sysuq_bayesnet.dir/sensitivity.cpp.o.d"
  "CMakeFiles/sysuq_bayesnet.dir/serialize.cpp.o"
  "CMakeFiles/sysuq_bayesnet.dir/serialize.cpp.o.d"
  "CMakeFiles/sysuq_bayesnet.dir/variable.cpp.o"
  "CMakeFiles/sysuq_bayesnet.dir/variable.cpp.o.d"
  "libsysuq_bayesnet.a"
  "libsysuq_bayesnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysuq_bayesnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
