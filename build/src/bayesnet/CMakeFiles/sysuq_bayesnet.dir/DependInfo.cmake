
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bayesnet/builders.cpp" "src/bayesnet/CMakeFiles/sysuq_bayesnet.dir/builders.cpp.o" "gcc" "src/bayesnet/CMakeFiles/sysuq_bayesnet.dir/builders.cpp.o.d"
  "/root/repo/src/bayesnet/factor.cpp" "src/bayesnet/CMakeFiles/sysuq_bayesnet.dir/factor.cpp.o" "gcc" "src/bayesnet/CMakeFiles/sysuq_bayesnet.dir/factor.cpp.o.d"
  "/root/repo/src/bayesnet/inference.cpp" "src/bayesnet/CMakeFiles/sysuq_bayesnet.dir/inference.cpp.o" "gcc" "src/bayesnet/CMakeFiles/sysuq_bayesnet.dir/inference.cpp.o.d"
  "/root/repo/src/bayesnet/io.cpp" "src/bayesnet/CMakeFiles/sysuq_bayesnet.dir/io.cpp.o" "gcc" "src/bayesnet/CMakeFiles/sysuq_bayesnet.dir/io.cpp.o.d"
  "/root/repo/src/bayesnet/learning.cpp" "src/bayesnet/CMakeFiles/sysuq_bayesnet.dir/learning.cpp.o" "gcc" "src/bayesnet/CMakeFiles/sysuq_bayesnet.dir/learning.cpp.o.d"
  "/root/repo/src/bayesnet/network.cpp" "src/bayesnet/CMakeFiles/sysuq_bayesnet.dir/network.cpp.o" "gcc" "src/bayesnet/CMakeFiles/sysuq_bayesnet.dir/network.cpp.o.d"
  "/root/repo/src/bayesnet/sensitivity.cpp" "src/bayesnet/CMakeFiles/sysuq_bayesnet.dir/sensitivity.cpp.o" "gcc" "src/bayesnet/CMakeFiles/sysuq_bayesnet.dir/sensitivity.cpp.o.d"
  "/root/repo/src/bayesnet/serialize.cpp" "src/bayesnet/CMakeFiles/sysuq_bayesnet.dir/serialize.cpp.o" "gcc" "src/bayesnet/CMakeFiles/sysuq_bayesnet.dir/serialize.cpp.o.d"
  "/root/repo/src/bayesnet/variable.cpp" "src/bayesnet/CMakeFiles/sysuq_bayesnet.dir/variable.cpp.o" "gcc" "src/bayesnet/CMakeFiles/sysuq_bayesnet.dir/variable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/prob/CMakeFiles/sysuq_prob.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
