# Empty compiler generated dependencies file for sysuq_bayesnet.
# This may be replaced when dependencies are built.
