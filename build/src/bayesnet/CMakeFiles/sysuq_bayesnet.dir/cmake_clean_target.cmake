file(REMOVE_RECURSE
  "libsysuq_bayesnet.a"
)
