file(REMOVE_RECURSE
  "libsysuq_perception.a"
)
