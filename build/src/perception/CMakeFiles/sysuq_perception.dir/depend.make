# Empty dependencies file for sysuq_perception.
# This may be replaced when dependencies are built.
