
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perception/bayes_classifier.cpp" "src/perception/CMakeFiles/sysuq_perception.dir/bayes_classifier.cpp.o" "gcc" "src/perception/CMakeFiles/sysuq_perception.dir/bayes_classifier.cpp.o.d"
  "/root/repo/src/perception/fusion.cpp" "src/perception/CMakeFiles/sysuq_perception.dir/fusion.cpp.o" "gcc" "src/perception/CMakeFiles/sysuq_perception.dir/fusion.cpp.o.d"
  "/root/repo/src/perception/sensor.cpp" "src/perception/CMakeFiles/sysuq_perception.dir/sensor.cpp.o" "gcc" "src/perception/CMakeFiles/sysuq_perception.dir/sensor.cpp.o.d"
  "/root/repo/src/perception/table1.cpp" "src/perception/CMakeFiles/sysuq_perception.dir/table1.cpp.o" "gcc" "src/perception/CMakeFiles/sysuq_perception.dir/table1.cpp.o.d"
  "/root/repo/src/perception/world.cpp" "src/perception/CMakeFiles/sysuq_perception.dir/world.cpp.o" "gcc" "src/perception/CMakeFiles/sysuq_perception.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bayesnet/CMakeFiles/sysuq_bayesnet.dir/DependInfo.cmake"
  "/root/repo/build/src/evidence/CMakeFiles/sysuq_evidence.dir/DependInfo.cmake"
  "/root/repo/build/src/prob/CMakeFiles/sysuq_prob.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
