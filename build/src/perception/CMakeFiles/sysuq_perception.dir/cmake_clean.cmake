file(REMOVE_RECURSE
  "CMakeFiles/sysuq_perception.dir/bayes_classifier.cpp.o"
  "CMakeFiles/sysuq_perception.dir/bayes_classifier.cpp.o.d"
  "CMakeFiles/sysuq_perception.dir/fusion.cpp.o"
  "CMakeFiles/sysuq_perception.dir/fusion.cpp.o.d"
  "CMakeFiles/sysuq_perception.dir/sensor.cpp.o"
  "CMakeFiles/sysuq_perception.dir/sensor.cpp.o.d"
  "CMakeFiles/sysuq_perception.dir/table1.cpp.o"
  "CMakeFiles/sysuq_perception.dir/table1.cpp.o.d"
  "CMakeFiles/sysuq_perception.dir/world.cpp.o"
  "CMakeFiles/sysuq_perception.dir/world.cpp.o.d"
  "libsysuq_perception.a"
  "libsysuq_perception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysuq_perception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
