# Empty compiler generated dependencies file for sysuq_perception.
# This may be replaced when dependencies are built.
