
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/markov/dtmc.cpp" "src/markov/CMakeFiles/sysuq_markov.dir/dtmc.cpp.o" "gcc" "src/markov/CMakeFiles/sysuq_markov.dir/dtmc.cpp.o.d"
  "/root/repo/src/markov/hmm.cpp" "src/markov/CMakeFiles/sysuq_markov.dir/hmm.cpp.o" "gcc" "src/markov/CMakeFiles/sysuq_markov.dir/hmm.cpp.o.d"
  "/root/repo/src/markov/mdp.cpp" "src/markov/CMakeFiles/sysuq_markov.dir/mdp.cpp.o" "gcc" "src/markov/CMakeFiles/sysuq_markov.dir/mdp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/prob/CMakeFiles/sysuq_prob.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
