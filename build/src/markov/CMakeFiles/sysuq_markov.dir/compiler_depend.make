# Empty compiler generated dependencies file for sysuq_markov.
# This may be replaced when dependencies are built.
