file(REMOVE_RECURSE
  "CMakeFiles/sysuq_markov.dir/dtmc.cpp.o"
  "CMakeFiles/sysuq_markov.dir/dtmc.cpp.o.d"
  "CMakeFiles/sysuq_markov.dir/hmm.cpp.o"
  "CMakeFiles/sysuq_markov.dir/hmm.cpp.o.d"
  "CMakeFiles/sysuq_markov.dir/mdp.cpp.o"
  "CMakeFiles/sysuq_markov.dir/mdp.cpp.o.d"
  "libsysuq_markov.a"
  "libsysuq_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysuq_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
