file(REMOVE_RECURSE
  "libsysuq_markov.a"
)
