# Empty compiler generated dependencies file for sysuq_bn.
# This may be replaced when dependencies are built.
