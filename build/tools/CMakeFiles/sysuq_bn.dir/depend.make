# Empty dependencies file for sysuq_bn.
# This may be replaced when dependencies are built.
