file(REMOVE_RECURSE
  "CMakeFiles/sysuq_bn.dir/sysuq_bn.cpp.o"
  "CMakeFiles/sysuq_bn.dir/sysuq_bn.cpp.o.d"
  "sysuq_bn"
  "sysuq_bn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysuq_bn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
