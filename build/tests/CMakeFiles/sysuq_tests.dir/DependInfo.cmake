
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bayes_classifier.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_bayes_classifier.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_bayes_classifier.cpp.o.d"
  "/root/repo/tests/test_bayesnet_builders_learning.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_bayesnet_builders_learning.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_bayesnet_builders_learning.cpp.o.d"
  "/root/repo/tests/test_bayesnet_factor.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_bayesnet_factor.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_bayesnet_factor.cpp.o.d"
  "/root/repo/tests/test_bayesnet_inference.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_bayesnet_inference.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_bayesnet_inference.cpp.o.d"
  "/root/repo/tests/test_bayesnet_network.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_bayesnet_network.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_bayesnet_network.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_dsep_property.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_dsep_property.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_dsep_property.cpp.o.d"
  "/root/repo/tests/test_event_tree.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_event_tree.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_event_tree.cpp.o.d"
  "/root/repo/tests/test_evidence_credal.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_evidence_credal.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_evidence_credal.cpp.o.d"
  "/root/repo/tests/test_evidence_mass.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_evidence_mass.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_evidence_mass.cpp.o.d"
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_failure_injection.cpp.o.d"
  "/root/repo/tests/test_fta.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_fta.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_fta.cpp.o.d"
  "/root/repo/tests/test_fta_dynamic.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_fta_dynamic.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_fta_dynamic.cpp.o.d"
  "/root/repo/tests/test_hmm.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_hmm.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_hmm.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_kalman_reliability.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_kalman_reliability.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_kalman_reliability.cpp.o.d"
  "/root/repo/tests/test_longtail_sensitivity.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_longtail_sensitivity.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_longtail_sensitivity.cpp.o.d"
  "/root/repo/tests/test_markov.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_markov.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_markov.cpp.o.d"
  "/root/repo/tests/test_mdp_serialize.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_mdp_serialize.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_mdp_serialize.cpp.o.d"
  "/root/repo/tests/test_orbit.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_orbit.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_orbit.cpp.o.d"
  "/root/repo/tests/test_perception.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_perception.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_perception.cpp.o.d"
  "/root/repo/tests/test_polychaos.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_polychaos.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_polychaos.cpp.o.d"
  "/root/repo/tests/test_prob_discrete.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_prob_discrete.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_prob_discrete.cpp.o.d"
  "/root/repo/tests/test_prob_distributions.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_prob_distributions.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_prob_distributions.cpp.o.d"
  "/root/repo/tests/test_prob_information.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_prob_information.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_prob_information.cpp.o.d"
  "/root/repo/tests/test_prob_interval_fuzzy.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_prob_interval_fuzzy.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_prob_interval_fuzzy.cpp.o.d"
  "/root/repo/tests/test_prob_special.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_prob_special.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_prob_special.cpp.o.d"
  "/root/repo/tests/test_prob_statistics.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_prob_statistics.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_prob_statistics.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_subjective.cpp" "tests/CMakeFiles/sysuq_tests.dir/test_subjective.cpp.o" "gcc" "tests/CMakeFiles/sysuq_tests.dir/test_subjective.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/prob/CMakeFiles/sysuq_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/bayesnet/CMakeFiles/sysuq_bayesnet.dir/DependInfo.cmake"
  "/root/repo/build/src/perception/CMakeFiles/sysuq_perception.dir/DependInfo.cmake"
  "/root/repo/build/src/evidence/CMakeFiles/sysuq_evidence.dir/DependInfo.cmake"
  "/root/repo/build/src/fta/CMakeFiles/sysuq_fta.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/sysuq_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sysuq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/sysuq_markov.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
