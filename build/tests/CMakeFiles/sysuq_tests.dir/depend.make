# Empty dependencies file for sysuq_tests.
# This may be replaced when dependencies are built.
