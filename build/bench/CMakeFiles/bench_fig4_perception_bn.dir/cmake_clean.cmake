file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_perception_bn.dir/bench_fig4_perception_bn.cpp.o"
  "CMakeFiles/bench_fig4_perception_bn.dir/bench_fig4_perception_bn.cpp.o.d"
  "bench_fig4_perception_bn"
  "bench_fig4_perception_bn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_perception_bn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
