# Empty dependencies file for bench_fig4_perception_bn.
# This may be replaced when dependencies are built.
