file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_perception_cpt.dir/bench_table1_perception_cpt.cpp.o"
  "CMakeFiles/bench_table1_perception_cpt.dir/bench_table1_perception_cpt.cpp.o.d"
  "bench_table1_perception_cpt"
  "bench_table1_perception_cpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_perception_cpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
