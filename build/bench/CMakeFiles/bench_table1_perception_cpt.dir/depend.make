# Empty dependencies file for bench_table1_perception_cpt.
# This may be replaced when dependencies are built.
