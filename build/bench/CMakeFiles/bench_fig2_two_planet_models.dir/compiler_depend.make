# Empty compiler generated dependencies file for bench_fig2_two_planet_models.
# This may be replaced when dependencies are built.
