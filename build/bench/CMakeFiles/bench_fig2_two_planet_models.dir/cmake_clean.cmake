file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_two_planet_models.dir/bench_fig2_two_planet_models.cpp.o"
  "CMakeFiles/bench_fig2_two_planet_models.dir/bench_fig2_two_planet_models.cpp.o.d"
  "bench_fig2_two_planet_models"
  "bench_fig2_two_planet_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_two_planet_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
