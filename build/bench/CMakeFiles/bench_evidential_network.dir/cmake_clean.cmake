file(REMOVE_RECURSE
  "CMakeFiles/bench_evidential_network.dir/bench_evidential_network.cpp.o"
  "CMakeFiles/bench_evidential_network.dir/bench_evidential_network.cpp.o.d"
  "bench_evidential_network"
  "bench_evidential_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_evidential_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
