# Empty dependencies file for bench_fta_vs_bn.
# This may be replaced when dependencies are built.
