file(REMOVE_RECURSE
  "CMakeFiles/bench_fta_vs_bn.dir/bench_fta_vs_bn.cpp.o"
  "CMakeFiles/bench_fta_vs_bn.dir/bench_fta_vs_bn.cpp.o.d"
  "bench_fta_vs_bn"
  "bench_fta_vs_bn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fta_vs_bn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
