file(REMOVE_RECURSE
  "CMakeFiles/bench_ontological_surprise.dir/bench_ontological_surprise.cpp.o"
  "CMakeFiles/bench_ontological_surprise.dir/bench_ontological_surprise.cpp.o.d"
  "bench_ontological_surprise"
  "bench_ontological_surprise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ontological_surprise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
