# Empty compiler generated dependencies file for bench_ontological_surprise.
# This may be replaced when dependencies are built.
