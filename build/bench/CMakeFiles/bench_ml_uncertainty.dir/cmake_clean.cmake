file(REMOVE_RECURSE
  "CMakeFiles/bench_ml_uncertainty.dir/bench_ml_uncertainty.cpp.o"
  "CMakeFiles/bench_ml_uncertainty.dir/bench_ml_uncertainty.cpp.o.d"
  "bench_ml_uncertainty"
  "bench_ml_uncertainty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ml_uncertainty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
