# Empty compiler generated dependencies file for bench_ml_uncertainty.
# This may be replaced when dependencies are built.
