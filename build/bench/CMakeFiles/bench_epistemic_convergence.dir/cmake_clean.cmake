file(REMOVE_RECURSE
  "CMakeFiles/bench_epistemic_convergence.dir/bench_epistemic_convergence.cpp.o"
  "CMakeFiles/bench_epistemic_convergence.dir/bench_epistemic_convergence.cpp.o.d"
  "bench_epistemic_convergence"
  "bench_epistemic_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_epistemic_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
