# Empty dependencies file for bench_epistemic_convergence.
# This may be replaced when dependencies are built.
