# Empty dependencies file for bench_temporal_perception.
# This may be replaced when dependencies are built.
