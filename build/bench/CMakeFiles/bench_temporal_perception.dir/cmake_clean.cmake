file(REMOVE_RECURSE
  "CMakeFiles/bench_temporal_perception.dir/bench_temporal_perception.cpp.o"
  "CMakeFiles/bench_temporal_perception.dir/bench_temporal_perception.cpp.o.d"
  "bench_temporal_perception"
  "bench_temporal_perception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_temporal_perception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
