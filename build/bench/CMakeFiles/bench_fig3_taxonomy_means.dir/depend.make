# Empty dependencies file for bench_fig3_taxonomy_means.
# This may be replaced when dependencies are built.
