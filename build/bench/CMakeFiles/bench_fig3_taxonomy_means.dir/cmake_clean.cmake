file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_taxonomy_means.dir/bench_fig3_taxonomy_means.cpp.o"
  "CMakeFiles/bench_fig3_taxonomy_means.dir/bench_fig3_taxonomy_means.cpp.o.d"
  "bench_fig3_taxonomy_means"
  "bench_fig3_taxonomy_means.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_taxonomy_means.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
