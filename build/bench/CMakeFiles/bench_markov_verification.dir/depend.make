# Empty dependencies file for bench_markov_verification.
# This may be replaced when dependencies are built.
