file(REMOVE_RECURSE
  "CMakeFiles/bench_markov_verification.dir/bench_markov_verification.cpp.o"
  "CMakeFiles/bench_markov_verification.dir/bench_markov_verification.cpp.o.d"
  "bench_markov_verification"
  "bench_markov_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_markov_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
