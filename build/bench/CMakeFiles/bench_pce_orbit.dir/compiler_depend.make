# Empty compiler generated dependencies file for bench_pce_orbit.
# This may be replaced when dependencies are built.
