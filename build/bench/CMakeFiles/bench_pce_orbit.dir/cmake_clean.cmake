file(REMOVE_RECURSE
  "CMakeFiles/bench_pce_orbit.dir/bench_pce_orbit.cpp.o"
  "CMakeFiles/bench_pce_orbit.dir/bench_pce_orbit.cpp.o.d"
  "bench_pce_orbit"
  "bench_pce_orbit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pce_orbit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
