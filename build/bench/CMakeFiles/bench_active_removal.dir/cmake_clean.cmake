file(REMOVE_RECURSE
  "CMakeFiles/bench_active_removal.dir/bench_active_removal.cpp.o"
  "CMakeFiles/bench_active_removal.dir/bench_active_removal.cpp.o.d"
  "bench_active_removal"
  "bench_active_removal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_active_removal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
