# Empty dependencies file for bench_active_removal.
# This may be replaced when dependencies are built.
