file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamic_fta.dir/bench_dynamic_fta.cpp.o"
  "CMakeFiles/bench_dynamic_fta.dir/bench_dynamic_fta.cpp.o.d"
  "bench_dynamic_fta"
  "bench_dynamic_fta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_fta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
