# Empty compiler generated dependencies file for bench_dynamic_fta.
# This may be replaced when dependencies are built.
