file(REMOVE_RECURSE
  "CMakeFiles/bench_cpt_explosion.dir/bench_cpt_explosion.cpp.o"
  "CMakeFiles/bench_cpt_explosion.dir/bench_cpt_explosion.cpp.o.d"
  "bench_cpt_explosion"
  "bench_cpt_explosion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpt_explosion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
