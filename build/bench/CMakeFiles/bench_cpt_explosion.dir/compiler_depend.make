# Empty compiler generated dependencies file for bench_cpt_explosion.
# This may be replaced when dependencies are built.
