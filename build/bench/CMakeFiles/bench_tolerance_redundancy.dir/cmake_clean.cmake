file(REMOVE_RECURSE
  "CMakeFiles/bench_tolerance_redundancy.dir/bench_tolerance_redundancy.cpp.o"
  "CMakeFiles/bench_tolerance_redundancy.dir/bench_tolerance_redundancy.cpp.o.d"
  "bench_tolerance_redundancy"
  "bench_tolerance_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tolerance_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
