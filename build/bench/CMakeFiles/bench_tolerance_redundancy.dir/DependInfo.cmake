
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_tolerance_redundancy.cpp" "bench/CMakeFiles/bench_tolerance_redundancy.dir/bench_tolerance_redundancy.cpp.o" "gcc" "bench/CMakeFiles/bench_tolerance_redundancy.dir/bench_tolerance_redundancy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sysuq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/perception/CMakeFiles/sysuq_perception.dir/DependInfo.cmake"
  "/root/repo/build/src/evidence/CMakeFiles/sysuq_evidence.dir/DependInfo.cmake"
  "/root/repo/build/src/fta/CMakeFiles/sysuq_fta.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/sysuq_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/bayesnet/CMakeFiles/sysuq_bayesnet.dir/DependInfo.cmake"
  "/root/repo/build/src/prob/CMakeFiles/sysuq_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/sysuq_markov.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
