// Uncertainty forecasting end to end: build the quantitative release
// argument for the Table I perception system by combining
//
//   * the evidential view of its CPT (residual epistemic imprecision),
//   * long-tail analysis of the scenario distribution (ontological
//     exposure forecast),
//   * a subjective-logic assurance case over the collected evidence,
//   * the formal release criteria of sys::assess_release.
#include <cstdio>

#include "sys/longtail.hpp"
#include "sys/means.hpp"
#include "evidence/subjective.hpp"
#include "perception/table1.hpp"

int main() {
  using namespace sysuq;

  std::puts("== 1. scenario exposure forecast (long tail) ==");
  const auto scenarios = sys::zipf_distribution(50000, 1.3);
  const std::size_t fleet_miles = 2'000'000;
  const double unseen = sys::expected_missing_mass(scenarios, fleet_miles);
  std::printf("fleet exposure %zu encounters -> expected unseen scenario "
              "mass %.5f\n",
              fleet_miles, unseen);
  std::printf("exposure needed for <= 0.001: %zu encounters\n\n",
              sys::observations_for_missing_mass(scenarios, 0.001));

  std::puts("== 2. assurance case over the collected evidence ==");
  evidence::AssuranceCase ac;
  const auto cpt_known = ac.add_evidence(
      "perception CPT known (field-calibrated)",
      evidence::Opinion::from_evidence(98500, 1500));
  const auto unknowns_handled = ac.add_evidence(
      "unknown objects yield safe 'none' outputs",
      evidence::Opinion::from_evidence(1930, 70));
  const auto redundancy = ac.add_evidence(
      "redundant channel masks single faults",
      evidence::Opinion::from_evidence(4950, 50));
  const auto root = ac.add_goal(
      "perception subsystem safe for the declared ODD",
      evidence::AssuranceCase::Kind::kConjunction,
      {cpt_known, unknowns_handled, redundancy}, 0.97);
  const auto opinion = ac.evaluate(root);
  std::printf("root claim: %s\n", opinion.to_string().c_str());
  std::printf("weakest leaf: \"%s\"\n\n", ac.claim(ac.weakest_leaf(root)).c_str());

  std::puts("== 3. formal release criteria ==");
  sys::ReleaseEvidence ev;
  ev.field_observations = 100000;
  ev.epistemic_width = 0.008;   // from the Dirichlet CPT posteriors
  ev.missing_mass = unseen;     // the long-tail forecast above
  ev.hazardous_events = 7;
  const auto decision = sys::assess_release(ev, sys::ReleaseCriteria{});
  std::printf("hazard-rate 95%% upper bound: %.2e\n", decision.hazard_rate_upper);
  std::printf("decision: %s\n", decision.ready ? "RELEASE" : "HOLD");
  for (const auto& blocker : decision.blockers)
    std::printf("  blocker: %s\n", blocker.c_str());

  std::puts("\nthe three layers answer the paper's forecasting question —");
  std::puts("'estimation of the present level and future occurrence of");
  std::puts("uncertainties' — with numbers instead of judgement.");
  return 0;
}
