// Quickstart: the paper's Table I example in ~40 lines.
//
// Builds the Fig. 4 perception Bayesian network, queries it exactly, and
// decomposes the uncertainty a safety engineer faces into the paper's
// three types.
#include <cstdio>

#include "bayesnet/inference.hpp"
#include "bayesnet/io.hpp"
#include "sys/decomposition.hpp"
#include "perception/table1.hpp"

int main() {
  using namespace sysuq;

  // 1. The paper's network: ground_truth -> perception, Sec. V priors
  //    (0.6 / 0.3 / 0.1) and the Table I CPT.
  const auto net = perception::table1_network();
  std::puts(bayesnet::describe(net).c_str());
  std::puts(bayesnet::cpt_table(net, 1).c_str());

  // 2. Exact inference: what does the chain output, marginally?
  bayesnet::VariableElimination ve(net);
  const auto output = ve.query(net.id_of("perception"));
  std::printf("P(perception): car=%.4f ped=%.4f car/ped=%.4f none=%.4f\n\n",
              output.p(0), output.p(1), output.p(2), output.p(3));

  // 3. Diagnosis: the chain reported nothing — what is out there?
  const bayesnet::Evidence none{{net.id_of("perception"), perception::kPercNone}};
  const auto posterior = ve.query(net.id_of("ground_truth"), none);
  std::printf("P(ground_truth | none): car=%.3f ped=%.3f unknown=%.3f\n",
              posterior.p(0), posterior.p(1), posterior.p(2));
  std::printf("-> most likely explanation: %s (ontological state surfaced)\n\n",
              net.variable(0).state_name(posterior.argmax()).c_str());

  // 4. The surprise factor (Sec. III.C): conditional entropy between the
  //    model's prediction and the system.
  const auto joint = ve.joint(1, 0);
  std::printf("surprise factor H(truth | perception) = %.4f nats "
              "(normalized %.3f)\n\n",
              sys::surprise_factor(joint), sys::normalized_surprise(joint));

  // 5. Uncertainty budget for the ambiguous car/pedestrian output state.
  const bayesnet::Evidence cp{{net.id_of("perception"),
                               perception::kPercCarPedestrian}};
  const auto amb = ve.query(net.id_of("ground_truth"), cp);
  const auto budget = sys::decompose({amb}, /*ontological_mass=*/amb.p(2));
  std::printf("given 'car/pedestrian': aleatory=%.3f nats, ontological "
              "mass=%.3f -> dominant: %s\n",
              budget.aleatory, budget.ontological, budget.dominant().c_str());
  return 0;
}
