// Uncertainty removal during use (Secs. IV & V), end to end:
//
//   * The organization deploys a perception chain with an ignorant CPT.
//   * Field observations stream in; Dirichlet posteriors over every CPT
//     row tighten — epistemic uncertainty shrinks monotonically.
//   * Unknown-object encounters are counted as ontological events, and
//     the Good–Turing missing mass forecasts the residual rate of
//     never-seen categories.
//   * The run ends with a release assessment (uncertainty forecasting).
#include <cstdio>

#include "sys/means.hpp"
#include "perception/table1.hpp"
#include "prob/discrete.hpp"

int main() {
  using namespace sysuq;
  prob::Rng rng(7);

  // Truth: the world behaves per the (repaired) Table I. Deployed: the
  // organization starts with uniform rows — maximal epistemic ignorance.
  const auto truth = perception::table1_network();
  auto deployed = perception::table1_network();
  deployed.update_cpt_rows(1, {prob::Categorical::uniform(4),
                               prob::Categorical::uniform(4),
                               prob::Categorical::uniform(4)});

  sys::RemovalLoop loop(truth, deployed, 1, perception::kGtUnknown);
  std::puts("== field observation loop: epistemic width & model gap ==");
  std::puts("     N     epistemic_width   TV(model, truth)   ontological_events");
  const auto trace = loop.run({100, 300, 1000, 3000, 10000, 30000, 100000}, rng);
  for (const auto& cp : trace) {
    std::printf("%7zu       %8.4f           %8.4f          %zu\n",
                cp.observations, cp.epistemic_width, cp.model_gap,
                cp.ontological_events);
  }

  // Ontological forecasting: how much probability mass belongs to object
  // categories we have never seen? Track category observations in a
  // larger hypothetical ontology (say 12 candidate categories, of which
  // the world only produces a few).
  std::puts("\n== Good-Turing missing-mass forecast over a 12-category "
            "ontology ==");
  prob::CategoricalCounter counter(12);
  // Zipf-like long tail: rare categories keep producing singletons, so
  // the missing-mass forecast decays gradually rather than collapsing.
  const prob::Categorical world_cats(
      {0.5, 0.25, 0.12, 0.06, 0.03, 0.015, 0.01, 0.008, 0.004, 0.002, 0.0008,
       0.0002});
  for (const std::size_t n : {20u, 100u, 500u, 5000u, 50000u}) {
    while (counter.total() < n) counter.observe(world_cats.sample(rng));
    std::printf("  N=%6zu  unseen categories=%zu  missing mass=%.4f\n",
                counter.total(), counter.unseen_categories(),
                counter.good_turing_missing_mass());
  }

  // Release decision (uncertainty forecasting, Sec. IV).
  std::puts("\n== release assessment ==");
  sys::ReleaseEvidence evidence;
  evidence.field_observations = trace.back().observations;
  evidence.epistemic_width = trace.back().epistemic_width;
  evidence.missing_mass = counter.good_turing_missing_mass();
  evidence.hazardous_events = 9;  // observed hazardous misperceptions
  const auto decision = sys::assess_release(evidence, sys::ReleaseCriteria{});
  std::printf("ready for release: %s\n", decision.ready ? "YES" : "NO");
  std::printf("hazard-rate 95%% upper bound: %.3g\n", decision.hazard_rate_upper);
  for (const auto& blocker : decision.blockers)
    std::printf("  blocker: %s\n", blocker.c_str());
  return 0;
}
