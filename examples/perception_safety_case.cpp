// Safety analysis of a redundant perception architecture, three ways:
//
//   1. Classic FTA: cut sets, exact top probability, importance.
//   2. The same model compiled to a BN: diagnosis FTA cannot do.
//   3. The evidential view: interval CPTs produce belief/plausibility
//      envelopes instead of false point precision (Sec. V.B).
//
// Ends with a means recommendation drawn from the taxonomy registry.
#include <cstdio>

#include "bayesnet/inference.hpp"
#include "core/taxonomy.hpp"
#include "evidence/credal.hpp"
#include "fta/analysis.hpp"
#include "fta/event_tree.hpp"
#include "fta/fta_to_bn.hpp"
#include "prob/distribution.hpp"
#include "prob/statistics.hpp"
#include "perception/table1.hpp"

int main() {
  using namespace sysuq;

  // ---- 1. FTA of a two-channel perception system ----
  std::puts("== fault tree analysis ==");
  fta::FaultTree tree;
  const auto power = tree.add_basic_event("power", 0.01);
  const auto cam1 = tree.add_basic_event("cam1", 0.05);
  const auto cam2 = tree.add_basic_event("cam2", 0.05);
  const auto ecu = tree.add_basic_event("ecu", 0.002);
  const auto ch1 = tree.add_gate("channel1", fta::GateType::kOr, {power, cam1});
  const auto ch2 = tree.add_gate("channel2", fta::GateType::kOr, {power, cam2});
  const auto both = tree.add_gate("both_channels", fta::GateType::kAnd, {ch1, ch2});
  tree.set_top(tree.add_gate("no_perception", fta::GateType::kOr, {both, ecu}));

  const auto cuts = fta::minimal_cut_sets(tree);
  std::printf("minimal cut sets (%zu):\n", cuts.size());
  for (const auto& cut : cuts) {
    std::printf("  {");
    bool first = true;
    for (const auto e : cut) {
      std::printf("%s%s", first ? "" : ", ", tree.name(e).c_str());
      first = false;
    }
    std::puts("}");
  }
  std::printf("P(top) exact=%.6f  rare-event=%.6f  MCUB=%.6f\n",
              fta::exact_top_probability(tree),
              fta::rare_event_approximation(tree),
              fta::min_cut_upper_bound(tree));
  for (const char* name : {"power", "cam1", "ecu"}) {
    const auto imp = fta::importance(tree, tree.id_of(name));
    std::printf("  importance(%s): Birnbaum=%.4f FV=%.4f RAW=%.2f\n", name,
                imp.birnbaum, imp.fussell_vesely, imp.raw);
  }

  // ---- 1b. PRA-style epistemic propagation ----
  // The basic-event probabilities above are point estimates; in practice
  // they come with error factors. Propagating LogNormal(EF = 3) rate
  // uncertainty yields the percentile curve regulators actually ask for.
  std::puts("\n== epistemic uncertainty on the FTA result ==");
  {
    const auto events = tree.basic_events();
    std::vector<prob::LogNormal> uncertainty;
    for (const auto e : events) {
      uncertainty.emplace_back(std::log(tree.probability(e)),
                               std::log(3.0) / 1.6448536269514722);
    }
    prob::Rng rng(20200309);
    auto samples = fta::sample_top_probabilities(
        tree,
        [&](std::size_t i, prob::Rng& r) { return uncertainty[i].sample(r); },
        5000, rng);
    std::printf("P(top) with EF=3 rate uncertainty: p05=%.5f  median=%.5f  "
                "p95=%.5f (point %.5f)\n",
                prob::quantile(samples, 0.05), prob::quantile(samples, 0.5),
                prob::quantile(samples, 0.95),
                fta::exact_top_probability(tree));
  }

  // ---- 2. FTA -> BN: diagnosis ----
  std::puts("\n== same model as a Bayesian network: diagnosis ==");
  const auto compiled = fta::compile_to_bayesnet(tree);
  bayesnet::VariableElimination ve(compiled.network);
  const bayesnet::Evidence failed{{compiled.top, 1}};
  for (const char* name : {"power", "cam1", "ecu"}) {
    const auto post = ve.query(compiled.network.id_of(name), failed);
    std::printf("  P(%s failed | system failed) = %.4f\n", name, post.p(1));
  }

  // ---- 3. Evidential view of Table I (Sec. V.B) ----
  std::puts("\n== evidential (interval) analysis of the Table I chain ==");
  const auto net = perception::table1_network();
  const double eps = 0.03;  // elicitation imprecision on every CPT entry
  const auto prior = evidence::IntervalDistribution::widened(net.cpt_rows(0)[0], eps);
  std::vector<evidence::IntervalDistribution> rows;
  for (const auto& r : net.cpt_rows(1))
    rows.push_back(evidence::IntervalDistribution::widened(r, eps));
  const auto marg =
      evidence::credal_chain_marginal(prior, evidence::IntervalCpt(rows));
  const char* states[] = {"car", "pedestrian", "car/pedestrian", "none"};
  for (std::size_t y = 0; y < 4; ++y) {
    std::printf("  P(perception=%s) in [%.4f, %.4f]\n", states[y],
                marg.bound(y).lo(), marg.bound(y).hi());
  }
  const auto post =
      evidence::credal_chain_posterior(prior, evidence::IntervalCpt(rows), 3);
  std::printf("  P(unknown | none) in [%.4f, %.4f] "
              "(belief/plausibility envelope)\n",
              post.bound(2).lo(), post.bound(2).hi());

  // ---- 3b. Bow-tie: consequences via an event tree ----
  // The fault tree covers the causes of losing perception; the event
  // tree covers what happens downstream when an unknown object appears,
  // with interval-valued barrier credits.
  std::puts("\n== event tree: consequences of an unknown object ==");
  {
    fta::EventTree et("unknown object in path", 0.01);
    (void)et.add_barrier("perception raises 'none'/unknown",
                         prob::ProbInterval(0.75, 0.85));
    (void)et.add_barrier("AEB engages", prob::ProbInterval(0.93, 0.98));
    et.set_consequence({true, true}, "safe stop");
    et.set_consequence({true, false}, "mitigated impact");
    et.set_consequence({false, true}, "late stop");
    et.set_consequence({false, false}, "collision");
    for (const char* c : {"safe stop", "late stop", "collision"}) {
      const auto f = et.consequence_frequency(c);
      std::printf("  f(%-16s) in [%.3e, %.3e]\n", c, f.lo(), f.hi());
    }
  }

  // ---- 3c. Most probable explanation of a system failure ----
  std::puts("\n== most probable explanation (MPE) of 'system failed' ==");
  {
    const auto mpe = bayesnet::enumerate_mpe(compiled.network, failed);
    std::printf("  P = %.4f:", mpe.probability);
    for (bayesnet::VariableId v = 0; v < compiled.network.size(); ++v) {
      if (compiled.network.parents(v).empty() && mpe.assignment[v] == 1) {
        std::printf(" %s=failed", compiled.network.variable(v).name().c_str());
      }
    }
    std::puts("  (single-point power loss dominates)");
  }

  // ---- 4. Means recommendation from the taxonomy ----
  std::puts("\n== taxonomy: methods addressing ontological uncertainty ==");
  const auto reg = core::MethodRegistry::paper_catalog();
  for (const auto& m : reg.by_type(core::UncertaintyType::kOntological)) {
    std::printf("  [%s, %s] %s (%s)\n", core::to_string(m.mean),
                core::to_string(m.phase), m.name.c_str(), m.reference.c_str());
  }
  return 0;
}
