// The paper's Sec. II/III running example, end to end:
//
//   1. A two-planet universe with a deterministic model A and a
//      frequentist model B (Fig. 2).
//   2. Epistemic uncertainty: model B sharpens with observations; model A
//      degrades when the real planet is a heterogeneous body.
//   3. Ontological uncertainty: an unmodeled third planet appears and the
//      surprise monitor detects that the models are "completely
//      inaccurate" — triggering domain re-analysis.
#include <cstdio>

#include "orbit/two_planet.hpp"

int main() {
  using namespace sysuq;
  prob::Rng rng(2020);

  // ---- Model B: epistemic shrinkage with observations (Sec. III.B) ----
  std::puts("== model B (frequentist occupancy): epistemic gap vs N ==");
  orbit::UniverseConfig cfg;
  for (const std::size_t n : {100u, 1000u, 10000u, 100000u}) {
    orbit::TwoPlanetUniverse u1(cfg), u2(cfg);
    orbit::FrequentistModel m1(2.0, 10), m2(2.0, 10);
    prob::Rng r1 = rng.split(n), r2 = rng.split(n + 1);
    for (std::size_t i = 0; i < n; ++i) {
      u1.advance(7e-3);
      u2.advance(11e-3);
      m1.observe(u1.observe_position(0, r1, 0.05));
      m2.observe(u2.observe_position(0, r2, 0.05));
    }
    std::printf("  N=%6zu  TV(model, independent replica)=%.4f   "
                "P(planet in [0,0.5]^2)=%.4f\n",
                n, m1.distance(m2), m1.frame_probability(0, 0.5, 0, 0.5));
  }

  // ---- Model A vs heterogeneous reality (Sec. III.B) ----
  std::puts("\n== model A (deterministic): epistemic error from the "
            "point-mass idealization ==");
  for (const double obl : {0.0, 0.005, 0.02, 0.05}) {
    orbit::UniverseConfig c;
    c.oblateness2 = obl;
    orbit::TwoPlanetUniverse u(c);
    orbit::DeterministicModel model(c.m1, c.m2, c.separation, c.gravity);
    for (int i = 0; i < 8000; ++i) {
      u.advance(1e-3);
      model.advance(1e-3);
    }
    const double residual =
        model.predicted_position(0).distance(u.state().bodies[0].position);
    std::printf("  oblateness=%.3f  residual after t=8: %.6f\n", obl, residual);
  }

  // ---- The third planet (Sec. III.C) ----
  std::puts("\n== ontological event: unmodeled third planet at t=5 ==");
  orbit::UniverseConfig c3;
  c3.third = orbit::UniverseConfig::ThirdPlanet{0.5, {1.5, 0.0}, {0.0, 0.6}, 5.0};
  orbit::TwoPlanetUniverse u(c3);
  orbit::SurpriseMonitor monitor(500, 6.0, 3);
  const double dt = 1e-3;
  // Dynamics-level residual: observed acceleration (finite differences of
  // the observed track) vs the two-body model's prediction.
  std::vector<orbit::Vec2> p0{u.state().bodies[0].position};
  std::vector<orbit::Vec2> p1{u.state().bodies[1].position};
  for (int i = 1; i <= 20000; ++i) {
    u.advance(dt);
    p0.push_back(u.state().bodies[0].position);
    p1.push_back(u.state().bodies[1].position);
    if (i < 2) continue;
    const double res = orbit::acceleration_residual(
        p0[i - 2], p0[i - 1], p0[i], dt, p1[i - 1], c3.m2, 0.0, c3.gravity);
    if (monitor.feed(res)) {
      std::printf("  surprise triggered at t=%.3f (injection at t=5.000)\n",
                  i * dt);
      std::printf("  adaptive residual level %.2e vs observed %.2e "
                  "(anomalous pull of the hidden planet)\n",
                  monitor.level(), res);
      break;
    }
  }
  if (!monitor.triggered()) std::puts("  (no surprise detected)");
  std::puts("  -> prior beliefs challenged; models must be reformulated to "
            "include the third point mass (Sec. III.C)");
  return 0;
}
