#include "evidence/mass.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "core/contracts.hpp"
#include "core/tolerance.hpp"

namespace sysuq::evidence {

MassFunction::MassFunction(const Frame& frame, std::map<FocalSet, double> masses)
    : frame_(&frame) {
  double total = 0.0;
  for (const auto& [set, mass] : masses) {
    SYSUQ_EXPECT(std::isfinite(mass) && mass >= 0.0,
                 "MassFunction: masses must be finite and >= 0");
    if (mass == 0.0) continue;  // sysuq-lint-allow(float-eq): exact zero skip
    SYSUQ_EXPECT(set != 0, "MassFunction: mass on empty set");
    SYSUQ_EXPECT(frame.contains(set), "MassFunction: focal set outside frame");
    m_.emplace(set, mass);
    total += mass;
  }
  SYSUQ_EXPECT(std::fabs(total - 1.0) <= tolerance::kProbSum,
               "MassFunction: masses must sum to 1");
}

MassFunction MassFunction::vacuous(const Frame& frame) {
  return MassFunction(frame, {{frame.theta(), 1.0}});
}

MassFunction MassFunction::bayesian(const Frame& frame,
                                    const prob::Categorical& p) {
  if (p.size() != frame.size())
    throw std::invalid_argument("MassFunction::bayesian: size mismatch");
  std::map<FocalSet, double> m;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p.p(i) > 0.0) m[frame.singleton(i)] = p.p(i);
  }
  return MassFunction(frame, std::move(m));
}

MassFunction MassFunction::simple_support(const Frame& frame, FocalSet focal,
                                          double s) {
  if (s < 0.0 || s > 1.0)
    throw std::invalid_argument("MassFunction::simple_support: s outside [0,1]");
  if (focal == 0 || !frame.contains(focal))
    throw std::invalid_argument("MassFunction::simple_support: bad focal set");
  std::map<FocalSet, double> m;
  if (s > 0.0) m[focal] += s;
  if (s < 1.0) m[frame.theta()] += 1.0 - s;
  return MassFunction(frame, std::move(m));
}

double MassFunction::mass(FocalSet a) const {
  const auto it = m_.find(a);
  return it == m_.end() ? 0.0 : it->second;
}

double MassFunction::belief(FocalSet a) const {
  if (!frame_->contains(a))
    throw std::invalid_argument("MassFunction::belief: set outside frame");
  double b = 0.0;
  for (const auto& [set, mass] : m_) {
    if (is_subset(set, a)) b += mass;
  }
  return b;
}

double MassFunction::plausibility(FocalSet a) const {
  if (!frame_->contains(a))
    throw std::invalid_argument("MassFunction::plausibility: set outside frame");
  double p = 0.0;
  for (const auto& [set, mass] : m_) {
    if ((set & a) != 0) p += mass;
  }
  return p;
}

double MassFunction::commonality(FocalSet a) const {
  if (a == 0 || !frame_->contains(a))
    throw std::invalid_argument("MassFunction::commonality: bad set");
  double q = 0.0;
  for (const auto& [set, mass] : m_) {
    if (is_subset(a, set)) q += mass;
  }
  return q;
}

prob::ProbInterval MassFunction::belief_interval(FocalSet a) const {
  // Clamp tiny floating residue so 0 <= Bel <= Pl <= 1 holds structurally.
  const double bel = std::clamp(belief(a), 0.0, 1.0);
  const double pl = std::clamp(plausibility(a), 0.0, 1.0);
  return prob::ProbInterval(std::min(bel, pl), std::max(bel, pl));
}

prob::Categorical MassFunction::pignistic() const {
  std::vector<double> p(frame_->size(), 0.0);
  for (const auto& [set, mass] : m_) {
    const double share = mass / static_cast<double>(set_cardinality(set));
    for (std::size_t i = 0; i < frame_->size(); ++i) {
      if ((set >> i) & 1u) p[i] += share;
    }
  }
  return prob::Categorical::normalized(std::move(p));
}

MassFunction MassFunction::conditioned(FocalSet b) const {
  if (b == 0 || !frame_->contains(b))
    throw std::invalid_argument("MassFunction::conditioned: bad set");
  return dempster_combine(*this, MassFunction(*frame_, {{b, 1.0}}));
}

MassFunction MassFunction::discounted(double alpha) const {
  if (alpha < 0.0 || alpha > 1.0)
    throw std::invalid_argument("MassFunction::discounted: alpha outside [0,1]");
  std::map<FocalSet, double> out;
  for (const auto& [set, mass] : m_) out[set] = (1.0 - alpha) * mass;
  out[frame_->theta()] += alpha;
  return MassFunction(*frame_, std::move(out));
}

bool MassFunction::is_bayesian() const {
  for (const auto& [set, mass] : m_) {
    (void)mass;
    if (set_cardinality(set) != 1) return false;
  }
  return true;
}

double MassFunction::nonspecificity_mass() const {
  double total = 0.0;
  for (const auto& [set, mass] : m_) {
    if (set_cardinality(set) > 1) total += mass;
  }
  return total;
}

double MassFunction::nonspecificity() const {
  double n = 0.0;
  for (const auto& [set, mass] : m_) {
    n += mass * std::log2(static_cast<double>(set_cardinality(set)));
  }
  return n;
}

double MassFunction::conflict(const MassFunction& other) const {
  if (frame_ != other.frame_ && frame_->size() != other.frame_->size())
    throw std::invalid_argument("MassFunction::conflict: frame mismatch");
  double k = 0.0;
  for (const auto& [sa, ma] : m_) {
    for (const auto& [sb, mb] : other.m_) {
      if ((sa & sb) == 0) k += ma * mb;
    }
  }
  return k;
}

std::string MassFunction::to_string() const {
  std::string out;
  for (const auto& [set, mass] : m_) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), ": %.6g  ", mass);
    out += frame_->set_to_string(set) + buf;
  }
  return out;
}

namespace {

// Conjunctive combination core shared by the three rules; `on_conflict`
// receives (A, B, mass) for each conflicting pair.
template <typename ConflictFn>
std::map<FocalSet, double> conjunctive(const MassFunction& a,
                                       const MassFunction& b,
                                       ConflictFn&& on_conflict) {
  std::map<FocalSet, double> out;
  for (const auto& [sa, ma] : a.focal_elements()) {
    for (const auto& [sb, mb] : b.focal_elements()) {
      const FocalSet inter = sa & sb;
      const double mass = ma * mb;
      if (inter != 0) {
        out[inter] += mass;
      } else {
        on_conflict(sa, sb, mass);
      }
    }
  }
  return out;
}

}  // namespace

MassFunction mass_from_belief(const Frame& frame,
                              const std::function<double(FocalSet)>& belief) {
  std::map<FocalSet, double> m;
  for (const FocalSet a : frame.all_nonempty_subsets()) {
    // Möbius inversion over the subset lattice of `a`.
    double mass = 0.0;
    // Iterate all subsets b of a (including empty, Bel(empty) = 0).
    for (FocalSet b = a;; b = (b - 1) & a) {
      if (b != 0) {
        const int parity = set_cardinality(a & ~b) % 2 == 0 ? 1 : -1;
        mass += parity * belief(b);
      }
      if (b == 0) break;
    }
    SYSUQ_EXPECT(mass >= -tolerance::kProbSum,
                 "mass_from_belief: not a belief function (negative mass on " +
                     frame.set_to_string(a) + ")");
    if (mass > tolerance::kTiny) m[a] = mass;
  }
  return MassFunction(frame, std::move(m));
}

MassFunction dempster_combine(const MassFunction& a, const MassFunction& b) {
  double conflict = 0.0;
  auto out = conjunctive(a, b, [&](FocalSet, FocalSet, double m) { conflict += m; });
  if (conflict >= 1.0 - tolerance::kTiny)
    throw std::domain_error("dempster_combine: total conflict (K = 1)");
  for (auto& [set, mass] : out) mass /= (1.0 - conflict);
  return MassFunction(a.frame(), std::move(out));
}

MassFunction yager_combine(const MassFunction& a, const MassFunction& b) {
  double conflict = 0.0;
  auto out = conjunctive(a, b, [&](FocalSet, FocalSet, double m) { conflict += m; });
  if (conflict > 0.0) out[a.frame().theta()] += conflict;
  return MassFunction(a.frame(), std::move(out));
}

MassFunction dubois_prade_combine(const MassFunction& a, const MassFunction& b) {
  std::map<FocalSet, double> transfers;
  auto out = conjunctive(
      a, b, [&](FocalSet sa, FocalSet sb, double m) { transfers[sa | sb] += m; });
  for (const auto& [set, mass] : transfers) out[set] += mass;
  return MassFunction(a.frame(), std::move(out));
}

}  // namespace sysuq::evidence
