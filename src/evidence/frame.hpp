// Frames of discernment for Dempster–Shafer evidence theory (Shafer 1976,
// cited by the paper as the basis of its Sec. V.B analysis).
//
// A frame is a finite set of mutually exclusive hypotheses; subsets are
// represented as 64-bit masks (`FocalSet`), so frames hold at most 64
// hypotheses — far beyond any safety-analysis state space in practice.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sysuq::evidence {

/// A subset of a frame's hypotheses, one bit per hypothesis.
using FocalSet = std::uint64_t;

/// Number of hypotheses in a focal set.
[[nodiscard]] inline int set_cardinality(FocalSet s) {
  return __builtin_popcountll(s);
}

/// True if a is a subset of b.
[[nodiscard]] inline bool is_subset(FocalSet a, FocalSet b) {
  return (a & ~b) == 0;
}

/// Named frame of discernment.
class Frame {
 public:
  /// Constructs from unique, non-empty hypothesis names (1..64 of them).
  explicit Frame(std::vector<std::string> hypotheses);

  /// Number of hypotheses.
  [[nodiscard]] std::size_t size() const { return names_.size(); }

  /// The singleton set {i}.
  [[nodiscard]] FocalSet singleton(std::size_t i) const;

  /// The singleton set for a named hypothesis.
  [[nodiscard]] FocalSet singleton(const std::string& name) const;

  /// The full set Θ (total ignorance focal element).
  [[nodiscard]] FocalSet theta() const;

  /// Builds a set from hypothesis names.
  [[nodiscard]] FocalSet make_set(const std::vector<std::string>& names) const;

  /// Index of a hypothesis by name; throws if absent.
  [[nodiscard]] std::size_t index_of(const std::string& name) const;

  /// Name of hypothesis i.
  [[nodiscard]] const std::string& name(std::size_t i) const;

  /// Human-readable "{a, b}" rendering of a focal set.
  [[nodiscard]] std::string set_to_string(FocalSet s) const;

  /// All non-empty subsets of Θ in increasing mask order (2^n - 1 sets);
  /// useful for exhaustive iteration in tests and the evidential network.
  [[nodiscard]] std::vector<FocalSet> all_nonempty_subsets() const;

  /// True if `s` only uses bits within the frame.
  [[nodiscard]] bool contains(FocalSet s) const { return is_subset(s, theta()); }

 private:
  std::vector<std::string> names_;
};

}  // namespace sysuq::evidence
