#include "evidence/subjective.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "core/contracts.hpp"
#include "core/tolerance.hpp"

namespace sysuq::evidence {

namespace {
constexpr double kTol = tolerance::kProbSum;
}

Opinion::Opinion(double belief, double disbelief, double uncertainty,
                 double base_rate)
    : b_(belief), d_(disbelief), u_(uncertainty), a_(base_rate) {
  SYSUQ_EXPECT(std::isfinite(b_) && std::isfinite(d_) && std::isfinite(u_) &&
                   b_ >= -kTol && d_ >= -kTol && u_ >= -kTol,
               "Opinion: components must be finite and >= 0");
  SYSUQ_EXPECT(std::fabs(b_ + d_ + u_ - 1.0) <= kTol,
               "Opinion: components must sum to 1");
  SYSUQ_ASSERT_PROB(a_, "Opinion: base rate");
  b_ = std::max(0.0, b_);
  d_ = std::max(0.0, d_);
  u_ = std::max(0.0, u_);
}

Opinion Opinion::vacuous(double base_rate) {
  return {0.0, 0.0, 1.0, base_rate};
}

Opinion Opinion::dogmatic(double p, double base_rate) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("Opinion::dogmatic: p outside [0, 1]");
  return {p, 1.0 - p, 0.0, base_rate};
}

Opinion Opinion::from_evidence(double r, double s, double base_rate) {
  if (r < 0.0 || s < 0.0)
    throw std::invalid_argument("Opinion::from_evidence: negative counts");
  const double denom = r + s + 2.0;
  return {r / denom, s / denom, 2.0 / denom, base_rate};
}

Opinion Opinion::fuse(const Opinion& o) const {
  const double denom = u_ + o.u_ - u_ * o.u_;
  if (denom < tolerance::kTiny) {
    // Both dogmatic: average them.
    return {(b_ + o.b_) / 2.0, (d_ + o.d_) / 2.0, 0.0, (a_ + o.a_) / 2.0};
  }
  const double b = (b_ * o.u_ + o.b_ * u_) / denom;
  const double u = (u_ * o.u_) / denom;
  const double d = std::max(0.0, 1.0 - b - u);
  double a;
  const double adenom = u_ + o.u_ - 2.0 * u_ * o.u_;
  if (adenom < tolerance::kTiny) {
    a = (a_ + o.a_) / 2.0;
  } else {
    a = (a_ * o.u_ + o.a_ * u_ - (a_ + o.a_) * u_ * o.u_) / adenom;
  }
  return {b, d, u, std::clamp(a, 0.0, 1.0)};
}

Opinion Opinion::average(const Opinion& o) const {
  const double denom = u_ + o.u_;
  if (denom < tolerance::kTiny) {
    return {(b_ + o.b_) / 2.0, (d_ + o.d_) / 2.0, 0.0, (a_ + o.a_) / 2.0};
  }
  const double b = (b_ * o.u_ + o.b_ * u_) / denom;
  const double u = (2.0 * u_ * o.u_) / denom;
  const double d = std::max(0.0, 1.0 - b - u);
  return {b, d, u, (a_ + o.a_) / 2.0};
}

Opinion Opinion::discount_by(const Opinion& trust) const {
  return discount(trust.projected());
}

Opinion Opinion::discount(double g) const {
  if (g < 0.0 || g > 1.0)
    throw std::invalid_argument("Opinion::discount: g outside [0, 1]");
  const double b = g * b_;
  const double d = g * d_;
  return {b, d, 1.0 - b - d, a_};
}

Opinion Opinion::conjoin(const Opinion& o) const {
  const double a1 = a_, a2 = o.a_;
  const double denom = 1.0 - a1 * a2;
  double b, u;
  if (denom < tolerance::kTiny) {
    // Both base rates 1: degenerate; fall back to product of projections.
    b = b_ * o.b_;
    u = u_ * o.u_;
  } else {
    b = b_ * o.b_ +
        ((1.0 - a1) * a2 * b_ * o.u_ + a1 * (1.0 - a2) * u_ * o.b_) / denom;
    u = u_ * o.u_ + ((1.0 - a2) * b_ * o.u_ + (1.0 - a1) * u_ * o.b_) / denom;
  }
  const double d = std::clamp(1.0 - b - u, 0.0, 1.0);
  // Renormalize against rounding.
  const double total = b + d + u;
  SYSUQ_ENSURE(std::isfinite(total) && total > 0.0,
               "Opinion::conjoin: degenerate mass total");
  return {b / total, d / total, u / total, a1 * a2};
}

Opinion Opinion::disjoin(const Opinion& o) const {
  const double a1 = a_, a2 = o.a_;
  const double a_or = a1 + a2 - a1 * a2;
  const double denom = a_or;
  double d, u;
  if (denom < tolerance::kTiny) {
    d = d_ * o.d_;
    u = u_ * o.u_;
  } else {
    d = d_ * o.d_ +
        (a1 * (1.0 - a2) * d_ * o.u_ + (1.0 - a1) * a2 * u_ * o.d_) / denom;
    u = u_ * o.u_ + (a2 * d_ * o.u_ + a1 * u_ * o.d_) / denom;
  }
  const double b = std::clamp(1.0 - d - u, 0.0, 1.0);
  const double total = b + d + u;
  SYSUQ_ENSURE(std::isfinite(total) && total > 0.0,
               "Opinion::disjoin: degenerate mass total");
  return {b / total, d / total, u / total, std::clamp(a_or, 0.0, 1.0)};
}

std::string Opinion::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "(b=%.3f d=%.3f u=%.3f a=%.2f | P=%.3f)", b_,
                d_, u_, a_, projected());
  return buf;
}

// ----------------------------------------------------------- AssuranceCase

void AssuranceCase::check(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("AssuranceCase: node id");
}

AssuranceCase::NodeId AssuranceCase::add_evidence(const std::string& claim,
                                                  Opinion opinion) {
  if (claim.empty()) throw std::invalid_argument("AssuranceCase: empty claim");
  nodes_.push_back(Node{claim, Kind::kLeaf, opinion, {}, 1.0});
  return nodes_.size() - 1;
}

AssuranceCase::NodeId AssuranceCase::add_goal(const std::string& claim,
                                              Kind kind,
                                              std::vector<NodeId> children,
                                              double rule_trust) {
  if (claim.empty()) throw std::invalid_argument("AssuranceCase: empty claim");
  if (kind == Kind::kLeaf)
    throw std::invalid_argument("AssuranceCase: goals cannot be leaves");
  if (children.empty())
    throw std::invalid_argument("AssuranceCase: goal without support");
  if (rule_trust < 0.0 || rule_trust > 1.0)
    throw std::invalid_argument("AssuranceCase: rule_trust outside [0, 1]");
  for (NodeId c : children) check(c);
  nodes_.push_back(
      Node{claim, kind, Opinion::vacuous(), std::move(children), rule_trust});
  return nodes_.size() - 1;
}

const std::string& AssuranceCase::claim(NodeId id) const {
  check(id);
  return nodes_[id].claim;
}

Opinion AssuranceCase::evaluate(NodeId id) const {
  return evaluate_with(id, SIZE_MAX, Opinion::vacuous());
}

Opinion AssuranceCase::evaluate_with(NodeId id, NodeId replaced,
                                     const Opinion& replacement) const {
  check(id);
  const Node& n = nodes_[id];
  if (id == replaced) return replacement;
  if (n.kind == Kind::kLeaf) return n.opinion;
  Opinion acc =
      evaluate_with(n.children[0], replaced, replacement).discount(n.rule_trust);
  for (std::size_t i = 1; i < n.children.size(); ++i) {
    const Opinion child =
        evaluate_with(n.children[i], replaced, replacement).discount(n.rule_trust);
    acc = n.kind == Kind::kConjunction ? acc.conjoin(child) : acc.disjoin(child);
  }
  return acc;
}

AssuranceCase::NodeId AssuranceCase::weakest_leaf(NodeId root) const {
  check(root);
  const double base = evaluate(root).projected();
  NodeId best = root;
  double best_gain = -1.0;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].kind != Kind::kLeaf) continue;
    const double boosted =
        evaluate_with(root, id, Opinion::dogmatic(1.0, nodes_[id].opinion.base_rate()))
            .projected();
    const double gain = boosted - base;
    if (gain > best_gain) {
      best_gain = gain;
      best = id;
    }
  }
  return best;
}

}  // namespace sysuq::evidence
