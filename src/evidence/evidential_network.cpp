#include "evidence/evidential_network.hpp"

#include <stdexcept>

#include "obs/registry.hpp"

namespace sysuq::evidence {

bayesnet::Variable powerset_variable(const std::string& name,
                                     const Frame& frame) {
  std::vector<std::string> states;
  for (const FocalSet s : frame.all_nonempty_subsets())
    states.push_back(frame.set_to_string(s));
  return bayesnet::Variable(name, std::move(states));
}

prob::Categorical mass_to_categorical(const MassFunction& m) {
  const Frame& frame = m.frame();
  const auto subsets = frame.all_nonempty_subsets();
  std::vector<double> p(subsets.size(), 0.0);
  for (std::size_t i = 0; i < subsets.size(); ++i) p[i] = m.mass(subsets[i]);
  return prob::Categorical::normalized(std::move(p));
}

MassFunction categorical_to_mass(const Frame& frame, const prob::Categorical& c) {
  const auto subsets = frame.all_nonempty_subsets();
  if (c.size() != subsets.size())
    throw std::invalid_argument("categorical_to_mass: size mismatch");
  std::map<FocalSet, double> m;
  for (std::size_t i = 0; i < subsets.size(); ++i) {
    if (c.p(i) > 0.0) m[subsets[i]] = c.p(i);
  }
  return MassFunction(frame, std::move(m));
}

prob::ProbInterval belief_plausibility(const Frame& frame,
                                       const prob::Categorical& powerset_marginal,
                                       FocalSet query) {
  const auto m = categorical_to_mass(frame, powerset_marginal);
  return m.belief_interval(query);
}

std::size_t powerset_state_index(const Frame& frame, FocalSet s) {
  if (s == 0 || !frame.contains(s))
    throw std::invalid_argument("powerset_state_index: bad focal set");
  return static_cast<std::size_t>(s) - 1;
}

namespace {

obs::Counter& engine_query_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("evidence.network.engine_queries");
  return c;
}

}  // namespace

prob::ProbInterval engine_belief_plausibility(
    const bayesnet::InferenceEngine& engine, const Frame& frame,
    bayesnet::VariableId node, FocalSet query,
    const bayesnet::Evidence& evidence) {
  engine_query_counter().inc();
  return belief_plausibility(frame, engine.query(node, evidence), query);
}

MassFunction engine_posterior_mass(const bayesnet::InferenceEngine& engine,
                                   const Frame& frame,
                                   bayesnet::VariableId node,
                                   const bayesnet::Evidence& evidence) {
  engine_query_counter().inc();
  return categorical_to_mass(frame, engine.query(node, evidence));
}

}  // namespace sysuq::evidence
