// Basic belief assignments (mass functions) and the Dempster–Shafer
// measures derived from them.
//
// In the paper's taxonomy the three uncertainty types map naturally onto
// a mass function's structure:
//   * mass on singletons        — aleatory (probabilistic) belief;
//   * mass on larger subsets    — epistemic imprecision (we cannot decide
//                                 between the contained hypotheses, like
//                                 Table I's car/pedestrian output state);
//   * mass on Θ (total set)     — acknowledged ignorance, the hook where
//                                 ontological reservations enter a model.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "evidence/frame.hpp"
#include "prob/discrete.hpp"
#include "prob/interval.hpp"

namespace sysuq::evidence {

/// A basic belief assignment m : 2^Θ -> [0,1] with m(∅) = 0, Σ m = 1.
class MassFunction {
 public:
  /// Builds from explicit (focal set, mass) pairs; validates normalization
  /// and that no mass sits on the empty set. Zero-mass entries dropped.
  MassFunction(const Frame& frame, std::map<FocalSet, double> masses);

  /// The vacuous mass function m(Θ) = 1 — total ignorance.
  [[nodiscard]] static MassFunction vacuous(const Frame& frame);

  /// Bayesian mass function: all mass on singletons per a categorical.
  [[nodiscard]] static MassFunction bayesian(const Frame& frame,
                                             const prob::Categorical& p);

  /// Simple support function: mass s on `focal`, 1-s on Θ.
  [[nodiscard]] static MassFunction simple_support(const Frame& frame,
                                                   FocalSet focal, double s);

  [[nodiscard]] const Frame& frame() const { return *frame_; }
  [[nodiscard]] const std::map<FocalSet, double>& focal_elements() const {
    return m_;
  }

  /// m(A) — 0 if A is not focal.
  // sysuq-lint-allow(contract-coverage): total by definition - unlisted focal sets carry zero mass
  [[nodiscard]] double mass(FocalSet a) const;

  /// Belief Bel(A) = Σ_{B ⊆ A} m(B).
  [[nodiscard]] double belief(FocalSet a) const;

  /// Plausibility Pl(A) = Σ_{B ∩ A ≠ ∅} m(B) = 1 - Bel(¬A).
  [[nodiscard]] double plausibility(FocalSet a) const;

  /// Commonality Q(A) = Σ_{B ⊇ A} m(B).
  [[nodiscard]] double commonality(FocalSet a) const;

  /// The belief interval [Bel(A), Pl(A)] for A.
  [[nodiscard]] prob::ProbInterval belief_interval(FocalSet a) const;

  /// Pignistic transform BetP: each focal mass is split evenly over its
  /// singletons; returns the resulting categorical over hypotheses.
  [[nodiscard]] prob::Categorical pignistic() const;

  /// Dempster conditioning on B (combination with the certain mass
  /// m(B) = 1): focal elements are intersected with B and the conflict is
  /// renormalized away. Throws std::domain_error when Pl(B) = 0.
  [[nodiscard]] MassFunction conditioned(FocalSet b) const;

  /// Shafer discounting: scales all focal masses by (1 - alpha) and moves
  /// alpha to Θ. alpha in [0, 1] models source unreliability.
  [[nodiscard]] MassFunction discounted(double alpha) const;

  /// True if all mass is on singletons (purely aleatory/Bayesian).
  [[nodiscard]] bool is_bayesian() const;

  /// Total mass on non-singleton sets — a scalar measure of the
  /// epistemic imprecision carried by this evidence.
  [[nodiscard]] double nonspecificity_mass() const;

  /// Hartley-based nonspecificity N(m) = Σ m(A) log2 |A| (0 for Bayesian
  /// mass functions, log2 |Θ| for the vacuous one).
  [[nodiscard]] double nonspecificity() const;

  /// Degree of conflict K with another mass function:
  /// K = Σ_{A ∩ B = ∅} m1(A) m2(B).
  [[nodiscard]] double conflict(const MassFunction& other) const;

  /// "A:mass, ..." rendering for reports.
  [[nodiscard]] std::string to_string() const;

 private:
  const Frame* frame_;
  std::map<FocalSet, double> m_;
};

/// Reconstructs the mass function from a belief function by Möbius
/// inversion: m(A) = sum_{B subseteq A} (-1)^{|A \ B|} Bel(B). `belief`
/// is evaluated on every non-empty subset of the frame. Throws if the
/// given set function is not a valid belief function (some mass would be
/// negative or the total is not 1).
[[nodiscard]] MassFunction mass_from_belief(
    const Frame& frame, const std::function<double(FocalSet)>& belief);

/// Dempster's rule of combination: conjunctive combination with conflict
/// renormalization. Throws std::domain_error on total conflict (K = 1).
[[nodiscard]] MassFunction dempster_combine(const MassFunction& a,
                                            const MassFunction& b);

/// Yager's rule: conflict mass is transferred to Θ instead of
/// renormalizing (conservative under high conflict).
[[nodiscard]] MassFunction yager_combine(const MassFunction& a,
                                         const MassFunction& b);

/// Dubois–Prade rule: conflicting pairs (A ∩ B = ∅) transfer their mass
/// to the union A ∪ B (disjunctive repair of conflicts).
[[nodiscard]] MassFunction dubois_prade_combine(const MassFunction& a,
                                                const MassFunction& b);

}  // namespace sysuq::evidence
