#include "evidence/frame.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "core/contracts.hpp"

namespace sysuq::evidence {

Frame::Frame(std::vector<std::string> hypotheses) : names_(std::move(hypotheses)) {
  SYSUQ_EXPECT(!names_.empty() && names_.size() <= 64,
               "Frame: need 1..64 hypotheses");
  std::unordered_set<std::string> seen;
  for (const auto& n : names_) {
    SYSUQ_EXPECT(!n.empty(), "Frame: empty hypothesis name");
    SYSUQ_EXPECT(seen.insert(n).second,
                 "Frame: duplicate hypothesis '" + n + "'");
  }
}

FocalSet Frame::singleton(std::size_t i) const {
  if (i >= names_.size()) throw std::out_of_range("Frame::singleton: index");
  return FocalSet{1} << i;
}

FocalSet Frame::singleton(const std::string& name) const {
  return singleton(index_of(name));
}

FocalSet Frame::theta() const {
  return names_.size() == 64 ? ~FocalSet{0}
                             : (FocalSet{1} << names_.size()) - 1;
}

FocalSet Frame::make_set(const std::vector<std::string>& names) const {
  FocalSet s = 0;
  for (const auto& n : names) s |= singleton(n);
  return s;
}

std::size_t Frame::index_of(const std::string& name) const {
  const auto it = std::find(names_.begin(), names_.end(), name);
  if (it == names_.end())
    throw std::invalid_argument("Frame: no hypothesis '" + name + "'");
  return static_cast<std::size_t>(std::distance(names_.begin(), it));
}

const std::string& Frame::name(std::size_t i) const {
  if (i >= names_.size()) throw std::out_of_range("Frame::name: index");
  return names_[i];
}

std::string Frame::set_to_string(FocalSet s) const {
  if (!contains(s)) throw std::invalid_argument("Frame::set_to_string: bad set");
  std::string out = "{";
  bool first = true;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if ((s >> i) & 1u) {
      if (!first) out += ", ";
      out += names_[i];
      first = false;
    }
  }
  out += "}";
  return out;
}

std::vector<FocalSet> Frame::all_nonempty_subsets() const {
  if (names_.size() > 20)
    throw std::logic_error("Frame::all_nonempty_subsets: frame too large");
  const FocalSet full = theta();
  std::vector<FocalSet> out;
  out.reserve(full);
  for (FocalSet s = 1; s <= full; ++s) out.push_back(s);
  return out;
}

}  // namespace sysuq::evidence
