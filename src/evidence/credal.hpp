// Credal (interval-probability) distributions and their exact propagation
// through interval-valued CPTs.
//
// This is the computational core of the paper's Sec. V.B proposal —
// "an analysis method based on evidence theory in combination with
// Bayesian networks" (after Simon, Weber & Evsukoff 2008): CPT entries
// become intervals [lo, hi] carrying epistemic uncertainty about the
// model parameters, and inference produces belief/plausibility *bounds*
// on the outputs instead of point probabilities.
#pragma once

#include <cstddef>
#include <vector>

#include "prob/discrete.hpp"
#include "prob/interval.hpp"

namespace sysuq::evidence {

/// An interval-valued distribution over k states: per-state probability
/// boxes whose credal set {p : lo <= p <= hi, Σp = 1} must be non-empty
/// (Σ lo <= 1 <= Σ hi, enforced at construction).
class IntervalDistribution {
 public:
  explicit IntervalDistribution(std::vector<prob::ProbInterval> bounds);

  /// Degenerate (precise) credal set containing exactly `p`.
  [[nodiscard]] static IntervalDistribution precise(const prob::Categorical& p);

  /// The vacuous credal set: every state in [0, 1].
  [[nodiscard]] static IntervalDistribution vacuous(std::size_t k);

  /// From a point distribution widened by ±eps (clamped to [0,1]).
  [[nodiscard]] static IntervalDistribution widened(const prob::Categorical& p,
                                                    double eps);

  [[nodiscard]] std::size_t size() const { return b_.size(); }
  [[nodiscard]] const prob::ProbInterval& bound(std::size_t i) const;

  /// True if `p` lies inside the credal set.
  [[nodiscard]] bool contains(const prob::Categorical& p) const;

  /// Maximum interval width across states — scalar imprecision.
  [[nodiscard]] double max_width() const;

  /// Mean interval width across states.
  [[nodiscard]] double mean_width() const;

  /// A canonical point selection: midpoints renormalized to the simplex.
  [[nodiscard]] prob::Categorical center() const;

  /// Exact sharp lower/upper bound on the expectation Σ_i p_i c_i over
  /// the credal set (linear program over box ∩ simplex, solved greedily).
  [[nodiscard]] double lower_expectation(const std::vector<double>& c) const;
  [[nodiscard]] double upper_expectation(const std::vector<double>& c) const;

 private:
  std::vector<prob::ProbInterval> b_;
};

/// An interval-valued CPT: one IntervalDistribution per parent
/// configuration (layout as in BayesianNetwork: last parent fastest).
class IntervalCpt {
 public:
  explicit IntervalCpt(std::vector<IntervalDistribution> rows);

  /// Precise CPT from categoricals.
  [[nodiscard]] static IntervalCpt precise(const std::vector<prob::Categorical>& rows);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::size_t child_cardinality() const { return rows_[0].size(); }
  [[nodiscard]] const IntervalDistribution& row(std::size_t r) const;

 private:
  std::vector<IntervalDistribution> rows_;
};

/// Exact bounds on the child marginal of a single-parent chain:
///   P(y) = Σ_x P(x) P(y | x)
/// with P(x) in a credal set and each CPT row in its own credal set.
/// Returns one sharp interval per child state. This implements the
/// two-node evidential inference of the paper's Fig. 4 example with
/// interval CPTs.
[[nodiscard]] IntervalDistribution credal_chain_marginal(
    const IntervalDistribution& prior, const IntervalCpt& cpt);

/// Exact bounds on the posterior P(x | y = obs) over the same credal
/// sets, computed by fractional programming (Dinkelbach iteration over
/// the linear-fractional objective). Sharp for the single-parent chain.
[[nodiscard]] IntervalDistribution credal_chain_posterior(
    const IntervalDistribution& prior, const IntervalCpt& cpt, std::size_t obs);

}  // namespace sysuq::evidence
