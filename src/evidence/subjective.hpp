// Subjective logic: binomial opinions and the operators needed for
// assurance-case confidence propagation (the paper's ref [11], "DS theory
// for argument confidence assessment", and Sec. I's "assurance cases can
// be enriched with belief modeling").
//
// An opinion (b, d, u, a) splits the unit of probability mass into
// belief, disbelief and *uncertainty* — the explicit epistemic slack that
// point probabilities hide. Evidence counts map to opinions exactly as
// Beta posteriors map to credible mass.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sysuq::evidence {

/// A binomial opinion about one proposition.
/// Invariant: b, d, u >= 0; b + d + u = 1; base rate a in [0, 1].
class Opinion {
 public:
  Opinion(double belief, double disbelief, double uncertainty,
          double base_rate = 0.5);

  /// Total ignorance with the given base rate.
  [[nodiscard]] static Opinion vacuous(double base_rate = 0.5);

  /// Dogmatic (uncertainty-free) opinion with P(true) = p.
  [[nodiscard]] static Opinion dogmatic(double p, double base_rate = 0.5);

  /// From evidence counts: r observations supporting, s contradicting
  /// (Jøsang's bijection with the Beta(r+1, s+1) posterior, prior
  /// strength W = 2).
  [[nodiscard]] static Opinion from_evidence(double r, double s,
                                             double base_rate = 0.5);

  [[nodiscard]] double belief() const { return b_; }
  [[nodiscard]] double disbelief() const { return d_; }
  [[nodiscard]] double uncertainty() const { return u_; }
  [[nodiscard]] double base_rate() const { return a_; }

  /// Projected probability P = b + a * u (pignistic analogue).
  [[nodiscard]] double projected() const { return b_ + a_ * u_; }

  /// Cumulative fusion (aggregating independent sources about the same
  /// proposition).
  [[nodiscard]] Opinion fuse(const Opinion& other) const;

  /// Averaging fusion (dependent sources / same evidence seen twice).
  [[nodiscard]] Opinion average(const Opinion& other) const;

  /// Trust discounting by a functional-trust opinion: the referral
  /// weakens belief and disbelief into uncertainty.
  [[nodiscard]] Opinion discount_by(const Opinion& trust) const;

  /// Discounting by a scalar trust probability g in [0, 1].
  [[nodiscard]] Opinion discount(double g) const;

  /// Multiplication: opinion on (this AND other) for independent
  /// propositions.
  [[nodiscard]] Opinion conjoin(const Opinion& other) const;

  /// Comultiplication: opinion on (this OR other).
  [[nodiscard]] Opinion disjoin(const Opinion& other) const;

  [[nodiscard]] std::string to_string() const;

 private:
  double b_, d_, u_, a_;
};

/// A structured assurance argument: a goal supported by sub-goals
/// (conjunctive or disjunctive) or by leaf evidence, each support edge
/// optionally discounted by the confidence in the inference rule itself.
class AssuranceCase {
 public:
  using NodeId = std::size_t;

  /// How a goal's supports combine.
  enum class Kind { kLeaf, kConjunction, kDisjunction };

  /// Adds a leaf claim backed by direct evidence.
  NodeId add_evidence(const std::string& claim, Opinion opinion);

  /// Adds a goal over existing nodes. `rule_trust` discounts every
  /// child's contribution (confidence in the argumentation step).
  NodeId add_goal(const std::string& claim, Kind kind,
                  std::vector<NodeId> children, double rule_trust = 1.0);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] const std::string& claim(NodeId id) const;

  /// Propagated opinion on a node's claim.
  [[nodiscard]] Opinion evaluate(NodeId id) const;

  /// The node whose uncertainty contributes most to the root's: found by
  /// replacing each leaf with certainty and measuring the improvement —
  /// the place where further evidence buys the most confidence.
  [[nodiscard]] NodeId weakest_leaf(NodeId root) const;

 private:
  struct Node {
    std::string claim;
    Kind kind;
    Opinion opinion{0.0, 0.0, 1.0};
    std::vector<NodeId> children;
    double rule_trust = 1.0;
  };
  std::vector<Node> nodes_;

  void check(NodeId id) const;
  [[nodiscard]] Opinion evaluate_with(NodeId id, NodeId replaced,
                                      const Opinion& replacement) const;
};

}  // namespace sysuq::evidence
