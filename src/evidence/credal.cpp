#include "evidence/credal.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/contracts.hpp"
#include "core/tolerance.hpp"

namespace sysuq::evidence {

IntervalDistribution::IntervalDistribution(std::vector<prob::ProbInterval> bounds)
    : b_(std::move(bounds)) {
  SYSUQ_EXPECT(b_.size() >= 2, "IntervalDistribution: need >= 2 states");
  double lo_sum = 0.0, hi_sum = 0.0;
  for (const auto& iv : b_) {
    lo_sum += iv.lo();
    hi_sum += iv.hi();
  }
  SYSUQ_EXPECT(lo_sum <= 1.0 + tolerance::kTiny && hi_sum >= 1.0 - tolerance::kTiny,
               "IntervalDistribution: empty credal set (need sum lo <= 1 <= sum hi)");
}

IntervalDistribution IntervalDistribution::precise(const prob::Categorical& p) {
  std::vector<prob::ProbInterval> b;
  b.reserve(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) b.emplace_back(p.p(i));
  return IntervalDistribution(std::move(b));
}

IntervalDistribution IntervalDistribution::vacuous(std::size_t k) {
  return IntervalDistribution(
      std::vector<prob::ProbInterval>(k, prob::ProbInterval::vacuous()));
}

IntervalDistribution IntervalDistribution::widened(const prob::Categorical& p,
                                                   double eps) {
  if (eps < 0.0) throw std::invalid_argument("IntervalDistribution: eps < 0");
  std::vector<prob::ProbInterval> b;
  b.reserve(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    b.emplace_back(std::max(0.0, p.p(i) - eps), std::min(1.0, p.p(i) + eps));
  }
  return IntervalDistribution(std::move(b));
}

const prob::ProbInterval& IntervalDistribution::bound(std::size_t i) const {
  if (i >= b_.size()) throw std::out_of_range("IntervalDistribution::bound");
  return b_[i];
}

bool IntervalDistribution::contains(const prob::Categorical& p) const {
  if (p.size() != b_.size()) return false;
  for (std::size_t i = 0; i < b_.size(); ++i) {
    if (p.p(i) < b_[i].lo() - tolerance::kTiny || p.p(i) > b_[i].hi() + tolerance::kTiny) return false;
  }
  return true;
}

double IntervalDistribution::max_width() const {
  double w = 0.0;
  for (const auto& iv : b_) w = std::max(w, iv.width());
  return w;
}

double IntervalDistribution::mean_width() const {
  double w = 0.0;
  for (const auto& iv : b_) w += iv.width();
  return w / static_cast<double>(b_.size());
}

prob::Categorical IntervalDistribution::center() const {
  std::vector<double> mids(b_.size());
  for (std::size_t i = 0; i < b_.size(); ++i) mids[i] = std::max(b_[i].mid(), tolerance::kTiny);
  return prob::Categorical::normalized(std::move(mids));
}

namespace {

// Sharp extremum of a linear functional over {p : lo <= p <= hi, sum = 1}:
// start from the lower bounds, then spend the remaining budget on the
// states with the best (maximize) / worst (minimize) coefficients.
double extreme_expectation(const std::vector<prob::ProbInterval>& b,
                           const std::vector<double>& c, bool maximize) {
  const std::size_t k = b.size();
  if (c.size() != k)
    throw std::invalid_argument("extreme_expectation: coefficient size");
  double budget = 1.0;
  double value = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    budget -= b[i].lo();
    value += b[i].lo() * c[i];
  }
  // budget >= 0 guaranteed by the constructor invariant (sum lo <= 1).
  std::vector<std::size_t> order(k);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t z) {
    return maximize ? c[a] > c[z] : c[a] < c[z];
  });
  for (std::size_t idx : order) {
    if (budget <= 0.0) break;
    const double room = b[idx].width();
    const double take = std::min(room, budget);
    value += take * c[idx];
    budget -= take;
  }
  return value;
}

// Sharp projection of the credal set onto coordinate i:
// [max(lo_i, 1 - sum_{j != i} hi_j), min(hi_i, 1 - sum_{j != i} lo_j)].
prob::ProbInterval coordinate_projection(
    const std::vector<prob::ProbInterval>& b, std::size_t i) {
  double lo_rest = 0.0, hi_rest = 0.0;
  for (std::size_t j = 0; j < b.size(); ++j) {
    if (j == i) continue;
    lo_rest += b[j].lo();
    hi_rest += b[j].hi();
  }
  const double lo = std::clamp(std::max(b[i].lo(), 1.0 - hi_rest), 0.0, 1.0);
  const double hi = std::clamp(std::min(b[i].hi(), 1.0 - lo_rest), 0.0, 1.0);
  return {std::min(lo, hi), std::max(lo, hi)};
}

std::vector<prob::ProbInterval> bounds_of(const IntervalDistribution& d) {
  std::vector<prob::ProbInterval> b;
  b.reserve(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) b.push_back(d.bound(i));
  return b;
}

}  // namespace

double IntervalDistribution::lower_expectation(const std::vector<double>& c) const {
  return extreme_expectation(b_, c, /*maximize=*/false);
}

double IntervalDistribution::upper_expectation(const std::vector<double>& c) const {
  return extreme_expectation(b_, c, /*maximize=*/true);
}

IntervalCpt::IntervalCpt(std::vector<IntervalDistribution> rows)
    : rows_(std::move(rows)) {
  if (rows_.empty()) throw std::invalid_argument("IntervalCpt: no rows");
  for (const auto& r : rows_) {
    if (r.size() != rows_[0].size())
      throw std::invalid_argument("IntervalCpt: inconsistent row sizes");
  }
}

IntervalCpt IntervalCpt::precise(const std::vector<prob::Categorical>& rows) {
  std::vector<IntervalDistribution> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(IntervalDistribution::precise(r));
  return IntervalCpt(std::move(out));
}

const IntervalDistribution& IntervalCpt::row(std::size_t r) const {
  if (r >= rows_.size()) throw std::out_of_range("IntervalCpt::row");
  return rows_[r];
}

IntervalDistribution credal_chain_marginal(const IntervalDistribution& prior,
                                           const IntervalCpt& cpt) {
  if (cpt.row_count() != prior.size())
    throw std::invalid_argument("credal_chain_marginal: row count != parent states");
  const std::size_t ny = cpt.child_cardinality();
  const std::size_t nx = prior.size();

  std::vector<prob::ProbInterval> out;
  out.reserve(ny);
  for (std::size_t y = 0; y < ny; ++y) {
    // Row-wise sharp projections of P(y | x).
    std::vector<double> cmin(nx), cmax(nx);
    for (std::size_t x = 0; x < nx; ++x) {
      const auto proj = coordinate_projection(bounds_of(cpt.row(x)), y);
      cmin[x] = proj.lo();
      cmax[x] = proj.hi();
    }
    const double lo = std::clamp(prior.lower_expectation(cmin), 0.0, 1.0);
    const double hi = std::clamp(prior.upper_expectation(cmax), 0.0, 1.0);
    out.emplace_back(lo, hi);
  }
  // The per-state bounds are sharp individually; jointly they always admit
  // a distribution (any feasible (p, q) pair yields one), so relax the
  // constructor's simplex check via direct construction.
  return IntervalDistribution(std::move(out));
}

IntervalDistribution credal_chain_posterior(const IntervalDistribution& prior,
                                            const IntervalCpt& cpt,
                                            std::size_t obs) {
  if (cpt.row_count() != prior.size())
    throw std::invalid_argument("credal_chain_posterior: row count mismatch");
  if (obs >= cpt.child_cardinality())
    throw std::out_of_range("credal_chain_posterior: observation state");
  const std::size_t nx = prior.size();

  // Per-row projections of q_x = P(y = obs | x).
  std::vector<double> qmin(nx), qmax(nx);
  for (std::size_t x = 0; x < nx; ++x) {
    const auto proj = coordinate_projection(bounds_of(cpt.row(x)), obs);
    qmin[x] = proj.lo();
    qmax[x] = proj.hi();
  }

  // Evidence must be possible somewhere in the credal set.
  const double max_evidence = prior.upper_expectation(qmax);
  if (!(max_evidence > 0.0))
    throw std::domain_error("credal_chain_posterior: evidence has zero upper "
                            "probability");

  const auto pb = bounds_of(prior);

  // Upper (lower) bound of p_x0 q_x0 / sum_x p_x q_x via Dinkelbach over
  // the linear-fractional program; q decouples per row: numerator state
  // takes its extreme, all others the opposite extreme.
  const auto bound_for = [&](std::size_t x0, bool maximize) {
    std::vector<double> num_coeff(nx, 0.0), den_coeff(nx);
    for (std::size_t x = 0; x < nx; ++x) {
      den_coeff[x] = (x == x0) ? (maximize ? qmax[x] : qmin[x])
                               : (maximize ? qmin[x] : qmax[x]);
    }
    num_coeff[x0] = den_coeff[x0];

    double lambda = maximize ? 0.0 : 1.0;
    for (int it = 0; it < 200; ++it) {
      // Extremize N(p) - lambda * D(p) = sum_x p_x (num - lambda * den).
      std::vector<double> c(nx);
      for (std::size_t x = 0; x < nx; ++x)
        c[x] = num_coeff[x] - lambda * den_coeff[x];
      const double val = extreme_expectation(pb, c, maximize);
      // Recover the extremizing p to update lambda.
      // extreme_expectation is value-only; recompute N and D by re-running
      // the same greedy selection.
      std::vector<double> p(nx);
      {
        double budget = 1.0;
        for (std::size_t x = 0; x < nx; ++x) {
          p[x] = pb[x].lo();
          budget -= pb[x].lo();
        }
        std::vector<std::size_t> order(nx);
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t z) {
          return maximize ? c[a] > c[z] : c[a] < c[z];
        });
        for (std::size_t idx : order) {
          if (budget <= 0.0) break;
          const double take = std::min(pb[idx].width(), budget);
          p[idx] += take;
          budget -= take;
        }
      }
      double num = 0.0, den = 0.0;
      for (std::size_t x = 0; x < nx; ++x) {
        num += p[x] * num_coeff[x];
        den += p[x] * den_coeff[x];
      }
      if (den <= tolerance::kUnderflow) {
        // Denominator can vanish at the extreme: the ratio saturates.
        return maximize ? (num > 0.0 ? 1.0 : lambda) : 0.0;
      }
      const double new_lambda = num / den;
      if (std::fabs(new_lambda - lambda) < tolerance::kFixpoint) return new_lambda;
      lambda = new_lambda;
      (void)val;
    }
    return lambda;
  };

  std::vector<prob::ProbInterval> out;
  out.reserve(nx);
  for (std::size_t x0 = 0; x0 < nx; ++x0) {
    const double lo = std::clamp(bound_for(x0, false), 0.0, 1.0);
    const double hi = std::clamp(bound_for(x0, true), 0.0, 1.0);
    out.emplace_back(std::min(lo, hi), std::max(lo, hi));
  }
  return IntervalDistribution(std::move(out));
}

}  // namespace sysuq::evidence
