// Evidential networks: Dempster–Shafer reasoning implemented on top of a
// Bayesian network, after Simon, Weber & Evsukoff (2008) — the method the
// paper proposes for safety analysis in Sec. V.B.
//
// Construction: each DS variable over a frame Θ becomes a BN node whose
// states are the *non-empty subsets* of Θ (the focal elements); a mass
// function is exactly a categorical over these powerset states. Standard
// exact BN inference then propagates masses, and belief/plausibility are
// recovered from the output node's marginal.
#pragma once

#include <string>
#include <vector>

#include "bayesnet/engine.hpp"
#include "bayesnet/network.hpp"
#include "evidence/frame.hpp"
#include "evidence/mass.hpp"
#include "prob/interval.hpp"

namespace sysuq::evidence {

/// Creates a BN variable whose states are the non-empty subsets of the
/// frame, labelled with `Frame::set_to_string`. State index i corresponds
/// to FocalSet(i + 1) (masks enumerated in increasing order).
[[nodiscard]] bayesnet::Variable powerset_variable(const std::string& name,
                                                   const Frame& frame);

/// Converts a mass function into a categorical over the powerset states
/// of its frame (for use as a root prior or evidence likelihood).
[[nodiscard]] prob::Categorical mass_to_categorical(const MassFunction& m);

/// Converts a categorical over powerset states back into a mass function.
[[nodiscard]] MassFunction categorical_to_mass(const Frame& frame,
                                               const prob::Categorical& c);

/// Belief/plausibility interval of hypothesis set `query` from a
/// categorical over powerset states (e.g. a BN posterior marginal).
[[nodiscard]] prob::ProbInterval belief_plausibility(
    const Frame& frame, const prob::Categorical& powerset_marginal,
    FocalSet query);

/// State index of a focal set within a powerset variable.
[[nodiscard]] std::size_t powerset_state_index(const Frame& frame, FocalSet s);

/// Posterior [Bel, Pl] of hypothesis `query` at powerset node `node`,
/// propagated through a shared InferenceEngine (so repeated evidential
/// queries reuse the engine's cached elimination orderings). `node` must
/// be a powerset variable of `frame` in the engine's network. Throws
/// std::domain_error (impossible evidence) if P(evidence) = 0.
[[nodiscard]] prob::ProbInterval engine_belief_plausibility(
    const bayesnet::InferenceEngine& engine, const Frame& frame,
    bayesnet::VariableId node, FocalSet query,
    const bayesnet::Evidence& evidence = {});

/// Posterior mass function of powerset node `node` given evidence,
/// computed through the engine.
[[nodiscard]] MassFunction engine_posterior_mass(
    const bayesnet::InferenceEngine& engine, const Frame& frame,
    bayesnet::VariableId node, const bayesnet::Evidence& evidence = {});

}  // namespace sysuq::evidence
