#include "markov/mdp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include "core/contracts.hpp"
#include "core/tolerance.hpp"
#include "obs/registry.hpp"

namespace sysuq::markov {

void Mdp::check(StateId s) const {
  if (s >= names_.size()) throw std::out_of_range("Mdp: state id");
}

StateId Mdp::add_state(const std::string& name) {
  if (name.empty()) throw std::invalid_argument("Mdp: empty state name");
  for (const auto& n : names_) {
    if (n == name) throw std::invalid_argument("Mdp: duplicate state '" + name + "'");
  }
  names_.push_back(name);
  actions_.emplace_back();
  return names_.size() - 1;
}

ActionId Mdp::add_action(StateId state, const std::string& name,
                         std::vector<std::pair<StateId, double>> outcomes) {
  check(state);
  SYSUQ_EXPECT(!name.empty(), "Mdp: empty action name");
  SYSUQ_EXPECT(!outcomes.empty(), "Mdp: action with no outcomes");
  double total = 0.0;
  for (const auto& [target, p] : outcomes) {
    check(target);
    SYSUQ_ASSERT_PROB(p, "Mdp: outcome probability");
    total += p;
  }
  SYSUQ_EXPECT(std::fabs(total - 1.0) <= tolerance::kProbSum,
               "Mdp: outcomes must sum to 1");
  actions_[state].push_back(Action{name, std::move(outcomes)});
  return actions_[state].size() - 1;
}

const std::string& Mdp::state_name(StateId s) const {
  check(s);
  return names_[s];
}

StateId Mdp::id_of(const std::string& name) const {
  for (StateId s = 0; s < names_.size(); ++s) {
    if (names_[s] == name) return s;
  }
  throw std::invalid_argument("Mdp: no state '" + name + "'");
}

std::size_t Mdp::action_count(StateId s) const {
  check(s);
  return actions_[s].size();
}

const std::string& Mdp::action_name(StateId s, ActionId a) const {
  check(s);
  if (a >= actions_[s].size()) throw std::out_of_range("Mdp: action id");
  return actions_[s][a].name;
}

void Mdp::validate() const {
  if (names_.empty()) throw std::logic_error("Mdp: empty");
  for (StateId s = 0; s < size(); ++s) {
    if (actions_[s].empty())
      throw std::logic_error("Mdp: state '" + names_[s] + "' has no actions");
  }
}

double Mdp::action_value(const Action& a, const std::vector<double>& x) const {
  double v = 0.0;
  for (const auto& [target, p] : a.outcomes) v += p * x[target];
  return v;
}

std::vector<double> Mdp::bounded_reachability(const std::vector<StateId>& targets,
                                              std::size_t k, bool maximize) const {
  validate();
  if (targets.empty()) throw std::invalid_argument("Mdp: no targets");
  std::vector<bool> is_target(size(), false);
  for (StateId t : targets) {
    check(t);
    is_target[t] = true;
  }
  std::vector<double> x(size(), 0.0);
  for (StateId s = 0; s < size(); ++s) x[s] = is_target[s] ? 1.0 : 0.0;
  for (std::size_t step = 0; step < k; ++step) {
    std::vector<double> nx(size());
    for (StateId s = 0; s < size(); ++s) {
      if (is_target[s]) {
        nx[s] = 1.0;
        continue;
      }
      double best = maximize ? 0.0 : 1.0;
      for (const auto& a : actions_[s]) {
        const double v = action_value(a, x);
        best = maximize ? std::max(best, v) : std::min(best, v);
      }
      nx[s] = best;
    }
    x = std::move(nx);
  }
  return x;
}

std::vector<double> Mdp::reachability(const std::vector<StateId>& targets,
                                      bool maximize, double tol,
                                      std::size_t max_iters) const {
  validate();
  if (targets.empty()) throw std::invalid_argument("Mdp: no targets");
  std::vector<bool> is_target(size(), false);
  for (StateId t : targets) {
    check(t);
    is_target[t] = true;
  }
  std::vector<double> x(size(), 0.0);
  for (StateId s = 0; s < size(); ++s) x[s] = is_target[s] ? 1.0 : 0.0;
  std::size_t iters = 0;
  for (std::size_t it = 0; it < max_iters; ++it) {
    ++iters;
    double delta = 0.0;
    std::vector<double> nx(size());
    for (StateId s = 0; s < size(); ++s) {
      if (is_target[s]) {
        nx[s] = 1.0;
        continue;
      }
      double best = maximize ? 0.0 : 1.0;
      for (const auto& a : actions_[s]) {
        const double v = action_value(a, x);
        best = maximize ? std::max(best, v) : std::min(best, v);
      }
      nx[s] = best;
      delta = std::max(delta, std::fabs(best - x[s]));
    }
    x = std::move(nx);
    if (delta < tol) break;
  }
  obs::Registry::global()
      .histogram("markov.mdp.value_iterations", obs::count_buckets())
      .observe(static_cast<double>(iters));
  return x;
}

std::vector<ActionId> Mdp::optimal_policy(const std::vector<StateId>& targets,
                                          bool maximize) const {
  const auto value = reachability(targets, maximize);
  std::vector<ActionId> policy(size(), 0);
  for (StateId s = 0; s < size(); ++s) {
    double best = maximize ? -1.0 : 2.0;
    for (ActionId a = 0; a < actions_[s].size(); ++a) {
      const double v = action_value(actions_[s][a], value);
      if ((maximize && v > best) || (!maximize && v < best)) {
        best = v;
        policy[s] = a;
      }
    }
  }
  return policy;
}

Dtmc Mdp::induced_chain(const std::vector<ActionId>& policy) const {
  validate();
  if (policy.size() != size())
    throw std::invalid_argument("Mdp::induced_chain: policy size");
  Dtmc chain;
  for (StateId s = 0; s < size(); ++s) (void)chain.add_state(names_[s]);
  for (StateId s = 0; s < size(); ++s) {
    if (policy[s] >= actions_[s].size())
      throw std::out_of_range("Mdp::induced_chain: action id");
    for (const auto& [target, p] : actions_[s][policy[s]].outcomes) {
      chain.set_transition(s, target, chain.transition(s, target) + p);
    }
  }
  chain.validate();
  return chain;
}

}  // namespace sysuq::markov
