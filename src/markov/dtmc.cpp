#include "markov/dtmc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include "core/contracts.hpp"
#include "core/tolerance.hpp"
#include "obs/registry.hpp"

namespace sysuq::markov {

namespace {

// Iterations-to-convergence per fixed-point solve; a solve that exhausts
// max_iters lands in the same histogram, visibly at the top bucket.
obs::Histogram& iteration_histogram(std::string_view name) {
  return obs::Registry::global().histogram(name, obs::count_buckets());
}

}  // namespace

void Dtmc::check(StateId s) const {
  if (s >= names_.size()) throw std::out_of_range("Dtmc: bad state id");
}

StateId Dtmc::add_state(const std::string& name) {
  if (name.empty()) throw std::invalid_argument("Dtmc: empty state name");
  for (const auto& n : names_) {
    if (n == name) throw std::invalid_argument("Dtmc: duplicate state '" + name + "'");
  }
  names_.push_back(name);
  for (auto& row : p_) row.push_back(0.0);
  p_.emplace_back(names_.size(), 0.0);
  return names_.size() - 1;
}

void Dtmc::set_transition(StateId from, StateId to, double p) {
  check(from);
  check(to);
  if (!std::isfinite(p) || p < 0.0 || p > 1.0)
    throw std::invalid_argument("Dtmc: probability outside [0, 1]");
  p_[from][to] = p;
}

const std::string& Dtmc::name(StateId s) const {
  check(s);
  return names_[s];
}

StateId Dtmc::id_of(const std::string& name) const {
  for (StateId s = 0; s < names_.size(); ++s) {
    if (names_[s] == name) return s;
  }
  throw std::invalid_argument("Dtmc: no state '" + name + "'");
}

double Dtmc::transition(StateId from, StateId to) const {
  check(from);
  check(to);
  return p_[from][to];
}

void Dtmc::validate() const {
  SYSUQ_EXPECT(!names_.empty(), "Dtmc: empty chain");
  for (StateId s = 0; s < size(); ++s) {
    const double sum = std::accumulate(p_[s].begin(), p_[s].end(), 0.0);
    SYSUQ_EXPECT(std::fabs(sum - 1.0) <= tolerance::kProbSum,
                 "Dtmc: row '" + names_[s] + "' sums to " +
                     std::to_string(sum));
  }
}

std::vector<double> Dtmc::reachability(const std::vector<StateId>& targets,
                                       double tol, std::size_t max_iters) const {
  validate();
  if (targets.empty()) throw std::invalid_argument("Dtmc: no targets");
  std::vector<bool> is_target(size(), false);
  for (StateId t : targets) {
    check(t);
    is_target[t] = true;
  }
  std::vector<double> x(size(), 0.0);
  for (StateId s = 0; s < size(); ++s) x[s] = is_target[s] ? 1.0 : 0.0;
  std::size_t iters = 0;
  for (std::size_t it = 0; it < max_iters; ++it) {
    ++iters;
    double delta = 0.0;
    std::vector<double> nx(size());
    for (StateId s = 0; s < size(); ++s) {
      if (is_target[s]) {
        nx[s] = 1.0;
        continue;
      }
      double v = 0.0;
      for (StateId t = 0; t < size(); ++t) v += p_[s][t] * x[t];
      nx[s] = v;
      delta = std::max(delta, std::fabs(v - x[s]));
    }
    x = std::move(nx);
    if (delta < tol) break;
  }
  iteration_histogram("markov.dtmc.reachability_iterations")
      .observe(static_cast<double>(iters));
  return x;
}

std::vector<double> Dtmc::bounded_reachability(
    const std::vector<StateId>& targets, std::size_t k) const {
  std::vector<bool> safe(size(), true);
  return bounded_until(safe, targets, k);
}

std::vector<double> Dtmc::bounded_until(const std::vector<bool>& safe,
                                        const std::vector<StateId>& targets,
                                        std::size_t k) const {
  validate();
  if (safe.size() != size())
    throw std::invalid_argument("Dtmc: safe vector size mismatch");
  if (targets.empty()) throw std::invalid_argument("Dtmc: no targets");
  std::vector<bool> is_target(size(), false);
  for (StateId t : targets) {
    check(t);
    is_target[t] = true;
  }
  std::vector<double> x(size(), 0.0);
  for (StateId s = 0; s < size(); ++s) x[s] = is_target[s] ? 1.0 : 0.0;
  for (std::size_t step = 0; step < k; ++step) {
    std::vector<double> nx(size(), 0.0);
    for (StateId s = 0; s < size(); ++s) {
      if (is_target[s]) {
        nx[s] = 1.0;
      } else if (safe[s]) {
        double v = 0.0;
        for (StateId t = 0; t < size(); ++t) v += p_[s][t] * x[t];
        nx[s] = v;
      }  // unsafe non-target states stay 0
    }
    x = std::move(nx);
  }
  return x;
}

std::vector<double> Dtmc::stationary(double tol, std::size_t max_iters) const {
  validate();
  std::vector<double> x(size(), 1.0 / static_cast<double>(size()));
  std::size_t iters = 0;
  for (std::size_t it = 0; it < max_iters; ++it) {
    ++iters;
    std::vector<double> nx(size(), 0.0);
    for (StateId s = 0; s < size(); ++s) {
      for (StateId t = 0; t < size(); ++t) nx[t] += x[s] * p_[s][t];
    }
    double delta = 0.0;
    for (StateId s = 0; s < size(); ++s) delta = std::max(delta, std::fabs(nx[s] - x[s]));
    x = std::move(nx);
    if (delta < tol) break;
  }
  iteration_histogram("markov.dtmc.stationary_iterations")
      .observe(static_cast<double>(iters));
  return x;
}

std::vector<double> Dtmc::expected_steps_to(const std::vector<StateId>& targets,
                                            double tol,
                                            std::size_t max_iters) const {
  validate();
  const auto reach = reachability(targets);
  std::vector<bool> is_target(size(), false);
  for (StateId t : targets) is_target[t] = true;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> x(size(), 0.0);
  for (StateId s = 0; s < size(); ++s) {
    if (!is_target[s] && reach[s] < 1.0 - tolerance::kProbSum) x[s] = kInf;
  }
  std::size_t iters = 0;
  for (std::size_t it = 0; it < max_iters; ++it) {
    ++iters;
    double delta = 0.0;
    std::vector<double> nx(size(), 0.0);
    for (StateId s = 0; s < size(); ++s) {
      if (is_target[s]) continue;
      if (x[s] == kInf) {
        nx[s] = kInf;
        continue;
      }
      double v = 1.0;
      for (StateId t = 0; t < size(); ++t) {
        if (p_[s][t] > 0.0) {
          if (x[t] == kInf) {
            v = kInf;
            break;
          }
          v += p_[s][t] * x[t];
        }
      }
      nx[s] = v;
      if (v != kInf) delta = std::max(delta, std::fabs(v - x[s]));
    }
    x = std::move(nx);
    if (delta < tol) break;
  }
  iteration_histogram("markov.dtmc.expected_steps_iterations")
      .observe(static_cast<double>(iters));
  return x;
}

std::vector<StateId> Dtmc::simulate(StateId start, std::size_t steps,
                                    prob::Rng& rng) const {
  validate();
  check(start);
  std::vector<StateId> path{start};
  StateId cur = start;
  for (std::size_t i = 0; i < steps; ++i) {
    cur = rng.categorical(p_[cur]);
    path.push_back(cur);
  }
  return path;
}

// ------------------------------------------------------------ IntervalDtmc

IntervalDtmc::IntervalDtmc(std::vector<std::string> names)
    : names_(std::move(names)) {
  if (names_.empty()) throw std::invalid_argument("IntervalDtmc: no states");
  p_.assign(names_.size(),
            std::vector<prob::ProbInterval>(names_.size(),
                                            prob::ProbInterval(0.0)));
}

void IntervalDtmc::check(StateId s) const {
  if (s >= names_.size()) throw std::out_of_range("IntervalDtmc: state id");
}

const std::string& IntervalDtmc::name(StateId s) const {
  check(s);
  return names_[s];
}

void IntervalDtmc::set_transition(StateId from, StateId to, prob::ProbInterval p) {
  check(from);
  check(to);
  p_[from][to] = p;
}

void IntervalDtmc::validate() const {
  for (StateId s = 0; s < size(); ++s) {
    double lo = 0.0, hi = 0.0;
    for (StateId t = 0; t < size(); ++t) {
      lo += p_[s][t].lo();
      hi += p_[s][t].hi();
    }
    SYSUQ_EXPECT(lo <= 1.0 + tolerance::kTiny && hi >= 1.0 - tolerance::kTiny,
                 "IntervalDtmc: row '" + names_[s] +
                     "' admits no distribution");
  }
}

namespace {

// Extreme of sum_t p_t x_t over {p in box, sum p = 1}: greedy budget
// allocation (same LP as the credal layer).
double extreme_row(const std::vector<prob::ProbInterval>& row,
                   const std::vector<double>& x, bool maximize) {
  double budget = 1.0, value = 0.0;
  for (std::size_t t = 0; t < row.size(); ++t) {
    budget -= row[t].lo();
    value += row[t].lo() * x[t];
  }
  std::vector<std::size_t> order(row.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return maximize ? x[a] > x[b] : x[a] < x[b];
  });
  for (std::size_t idx : order) {
    if (budget <= 0.0) break;
    const double take = std::min(row[idx].width(), budget);
    value += take * x[idx];
    budget -= take;
  }
  return value;
}

}  // namespace

std::vector<prob::ProbInterval> IntervalDtmc::bounded_reachability(
    const std::vector<StateId>& targets, std::size_t k) const {
  validate();
  if (targets.empty()) throw std::invalid_argument("IntervalDtmc: no targets");
  std::vector<bool> is_target(size(), false);
  for (StateId t : targets) {
    check(t);
    is_target[t] = true;
  }
  std::vector<double> lo(size(), 0.0), hi(size(), 0.0);
  for (StateId s = 0; s < size(); ++s) lo[s] = hi[s] = is_target[s] ? 1.0 : 0.0;
  for (std::size_t step = 0; step < k; ++step) {
    std::vector<double> nlo(size()), nhi(size());
    for (StateId s = 0; s < size(); ++s) {
      if (is_target[s]) {
        nlo[s] = nhi[s] = 1.0;
        continue;
      }
      nlo[s] = std::clamp(extreme_row(p_[s], lo, false), 0.0, 1.0);
      nhi[s] = std::clamp(extreme_row(p_[s], hi, true), 0.0, 1.0);
    }
    lo = std::move(nlo);
    hi = std::move(nhi);
  }
  std::vector<prob::ProbInterval> out;
  out.reserve(size());
  for (StateId s = 0; s < size(); ++s)
    out.emplace_back(std::min(lo[s], hi[s]), std::max(lo[s], hi[s]));
  return out;
}

bool IntervalDtmc::contains(const Dtmc& chain) const {
  if (chain.size() != size()) return false;
  for (StateId s = 0; s < size(); ++s) {
    for (StateId t = 0; t < size(); ++t) {
      if (!p_[s][t].contains(chain.transition(s, t))) return false;
    }
  }
  return true;
}

}  // namespace sysuq::markov
