// Markov decision processes: the runtime face of uncertainty tolerance.
//
// A degraded-mode supervisor does not just *observe* a stochastic system
// (DTMC) — it chooses actions (continue, hand over, minimal-risk
// manoeuvre). The MDP layer computes the policies that bound the hazard
// probability: min/max reachability via value iteration, and the policy
// realizing the bound, which can then be verified as a DTMC.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "markov/dtmc.hpp"
#include "core/tolerance.hpp"

namespace sysuq::markov {

/// Action index within a state.
using ActionId = std::size_t;

/// A finite MDP with named states and per-state action sets.
class Mdp {
 public:
  /// Adds a state; returns its id.
  StateId add_state(const std::string& name);

  /// Adds an action to a state with its outcome distribution
  /// (state, probability) pairs; probabilities must sum to 1.
  ActionId add_action(StateId state, const std::string& name,
                      std::vector<std::pair<StateId, double>> outcomes);

  [[nodiscard]] std::size_t size() const { return names_.size(); }
  [[nodiscard]] const std::string& state_name(StateId s) const;
  [[nodiscard]] StateId id_of(const std::string& name) const;
  [[nodiscard]] std::size_t action_count(StateId s) const;
  [[nodiscard]] const std::string& action_name(StateId s, ActionId a) const;

  /// Throws std::logic_error unless every state has at least one action.
  void validate() const;

  /// Optimal bounded reachability: max (or min) over policies of
  /// P(reach targets within k steps), from every state.
  [[nodiscard]] std::vector<double> bounded_reachability(
      const std::vector<StateId>& targets, std::size_t k, bool maximize) const;

  /// Unbounded optimal reachability by value iteration to `tol`.
  [[nodiscard]] std::vector<double> reachability(
      const std::vector<StateId>& targets, bool maximize, double tol = tolerance::kSolver,
      std::size_t max_iters = 1000000) const;

  /// The stationary deterministic policy achieving the unbounded optimum
  /// (one action index per state; arbitrary on target states).
  [[nodiscard]] std::vector<ActionId> optimal_policy(
      const std::vector<StateId>& targets, bool maximize) const;

  /// Induces the DTMC of a stationary deterministic policy.
  [[nodiscard]] Dtmc induced_chain(const std::vector<ActionId>& policy) const;

 private:
  struct Action {
    std::string name;
    std::vector<std::pair<StateId, double>> outcomes;
  };
  std::vector<std::string> names_;
  std::vector<std::vector<Action>> actions_;

  void check(StateId s) const;
  [[nodiscard]] double action_value(const Action& a,
                                    const std::vector<double>& x) const;
};

}  // namespace sysuq::markov
