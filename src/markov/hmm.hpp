// Hidden Markov models: temporal state estimation for the perception
// chain.
//
// The paper's Fig. 4 network is a single-shot analysis; a deployed
// perception system observes *sequences*. An HMM with the Table I CPT as
// its emission model turns the static diagnosis into runtime filtering:
// the posterior over {car, pedestrian, unknown} is tracked across frames,
// and its entropy is the online uncertainty estimate the tolerance mean
// acts on.
#pragma once

#include <cstddef>
#include <vector>

#include "prob/discrete.hpp"
#include "prob/rng.hpp"

namespace sysuq::markov {

class Hmm;

/// Result of one Baum-Welch step or a full fit: the re-estimated model
/// and a log-likelihood (see the member functions for which model it
/// refers to).
struct HmmFit;

/// A discrete HMM with `n` hidden states and `m` observation symbols.
class Hmm {
 public:
  /// `initial` — distribution over hidden states at t = 0;
  /// `transition` — one categorical (row) per source state;
  /// `emission` — one categorical over observation symbols per state.
  Hmm(prob::Categorical initial, std::vector<prob::Categorical> transition,
      std::vector<prob::Categorical> emission);

  [[nodiscard]] std::size_t state_count() const { return init_.size(); }
  [[nodiscard]] std::size_t symbol_count() const { return emit_[0].size(); }

  /// Forward filtering: posterior P(x_t | y_1..y_t) for every t, plus the
  /// total log-likelihood of the sequence.
  struct FilterResult {
    std::vector<prob::Categorical> filtered;
    double log_likelihood;
  };
  [[nodiscard]] FilterResult filter(const std::vector<std::size_t>& obs) const;

  /// Forward-backward smoothing: P(x_t | y_1..y_T) for every t.
  [[nodiscard]] std::vector<prob::Categorical> smooth(
      const std::vector<std::size_t>& obs) const;

  /// Viterbi decoding: the most probable hidden-state path.
  [[nodiscard]] std::vector<std::size_t> viterbi(
      const std::vector<std::size_t>& obs) const;

  /// Samples a trajectory of hidden states and observations.
  struct Trajectory {
    std::vector<std::size_t> states;
    std::vector<std::size_t> observations;
  };
  [[nodiscard]] Trajectory sample(std::size_t length, prob::Rng& rng) const;

  /// One Baum-Welch (EM) update from an observation sequence: returns the
  /// re-estimated HMM and the log-likelihood of `obs` under *this* model.
  /// Iterating is uncertainty removal without ground-truth labels — the
  /// field-observation loop when only the sensor outputs are recorded.
  /// `smoothing` adds a pseudo-count to every re-estimated cell so sparse
  /// sequences cannot zero out parameters.
  [[nodiscard]] HmmFit baum_welch_step(const std::vector<std::size_t>& obs,
                                       double smoothing = 1e-6) const;

  /// Runs Baum-Welch until the log-likelihood gain drops below `tol` or
  /// `max_iters` is reached; returns the fitted model and its final
  /// log-likelihood on `obs`.
  [[nodiscard]] HmmFit fit(const std::vector<std::size_t>& obs,
                           std::size_t max_iters = 100, double tol = 1e-6,
                           double smoothing = 1e-6) const;

 private:
  prob::Categorical init_;
  std::vector<prob::Categorical> trans_;
  std::vector<prob::Categorical> emit_;
};

struct HmmFit {
  Hmm model;
  double log_likelihood;
};

}  // namespace sysuq::markov
