#include "markov/hmm.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include "core/contracts.hpp"
#include "core/tolerance.hpp"
#include "obs/registry.hpp"

namespace sysuq::markov {

Hmm::Hmm(prob::Categorical initial, std::vector<prob::Categorical> transition,
         std::vector<prob::Categorical> emission)
    : init_(std::move(initial)),
      trans_(std::move(transition)),
      emit_(std::move(emission)) {
  const std::size_t n = init_.size();
  SYSUQ_EXPECT(trans_.size() == n && emit_.size() == n,
               "Hmm: row count != state count");
  for (const auto& row : trans_) {
    SYSUQ_EXPECT(row.size() == n, "Hmm: transition row size mismatch");
  }
  for (const auto& row : emit_) {
    SYSUQ_EXPECT(row.size() == emit_[0].size(),
                 "Hmm: emission row size mismatch");
  }
}

Hmm::FilterResult Hmm::filter(const std::vector<std::size_t>& obs) const {
  SYSUQ_EXPECT(!obs.empty(), "Hmm::filter: empty sequence");
  const std::size_t n = state_count();
  FilterResult out;
  out.filtered.reserve(obs.size());
  out.log_likelihood = 0.0;

  std::vector<double> alpha(n);
  for (std::size_t t = 0; t < obs.size(); ++t) {
    if (obs[t] >= symbol_count())
      throw std::out_of_range("Hmm::filter: observation symbol");
    std::vector<double> next(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      double pred = 0.0;
      if (t == 0) {
        pred = init_.p(j);
      } else {
        for (std::size_t i = 0; i < n; ++i) pred += alpha[i] * trans_[i].p(j);
      }
      next[j] = pred * emit_[j].p(obs[t]);
    }
    double norm = 0.0;
    for (double v : next) norm += v;
    if (!(norm > 0.0))
      throw std::domain_error("Hmm::filter: impossible observation sequence");
    for (double& v : next) v /= norm;
    out.log_likelihood += std::log(norm);
    alpha = next;
    out.filtered.emplace_back(alpha);
  }
  return out;
}

std::vector<prob::Categorical> Hmm::smooth(
    const std::vector<std::size_t>& obs) const {
  const auto fwd = filter(obs);
  const std::size_t n = state_count();
  const std::size_t len = obs.size();

  // Backward pass with per-step normalization.
  std::vector<std::vector<double>> beta(len, std::vector<double>(n, 1.0));
  for (std::size_t t = len - 1; t-- > 0;) {
    double norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double v = 0.0;
      for (std::size_t j = 0; j < n; ++j)
        v += trans_[i].p(j) * emit_[j].p(obs[t + 1]) * beta[t + 1][j];
      beta[t][i] = v;
      norm += v;
    }
    if (norm > 0.0) {
      for (double& v : beta[t]) v /= norm;
    }
  }

  std::vector<prob::Categorical> out;
  out.reserve(len);
  for (std::size_t t = 0; t < len; ++t) {
    std::vector<double> w(n);
    for (std::size_t i = 0; i < n; ++i) w[i] = fwd.filtered[t].p(i) * beta[t][i];
    out.push_back(prob::Categorical::normalized(std::move(w)));
  }
  return out;
}

std::vector<std::size_t> Hmm::viterbi(const std::vector<std::size_t>& obs) const {
  SYSUQ_EXPECT(!obs.empty(), "Hmm::viterbi: empty sequence");
  const std::size_t n = state_count();
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  const auto safe_log = [](double p) {
    return p > 0.0 ? std::log(p) : -std::numeric_limits<double>::infinity();
  };

  std::vector<std::vector<double>> delta(obs.size(), std::vector<double>(n));
  std::vector<std::vector<std::size_t>> arg(obs.size(),
                                            std::vector<std::size_t>(n, 0));
  for (std::size_t j = 0; j < n; ++j) {
    delta[0][j] = safe_log(init_.p(j)) + safe_log(emit_[j].p(obs[0]));
  }
  for (std::size_t t = 1; t < obs.size(); ++t) {
    if (obs[t] >= symbol_count())
      throw std::out_of_range("Hmm::viterbi: observation symbol");
    for (std::size_t j = 0; j < n; ++j) {
      double best = kNegInf;
      std::size_t best_i = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const double v = delta[t - 1][i] + safe_log(trans_[i].p(j));
        if (v > best) {
          best = v;
          best_i = i;
        }
      }
      delta[t][j] = best + safe_log(emit_[j].p(obs[t]));
      arg[t][j] = best_i;
    }
  }

  std::vector<std::size_t> path(obs.size());
  std::size_t best = 0;
  for (std::size_t j = 1; j < n; ++j) {
    if (delta.back()[j] > delta.back()[best]) best = j;
  }
  if (delta.back()[best] == kNegInf)
    throw std::domain_error("Hmm::viterbi: impossible observation sequence");
  path.back() = best;
  for (std::size_t t = obs.size(); t-- > 1;) path[t - 1] = arg[t][path[t]];
  return path;
}

HmmFit Hmm::baum_welch_step(const std::vector<std::size_t>& obs,
                                 double smoothing) const {
  SYSUQ_EXPECT(obs.size() >= 2, "Hmm::baum_welch_step: need >= 2 observations");
  if (!(smoothing >= 0.0))
    throw std::invalid_argument("Hmm::baum_welch_step: negative smoothing");
  const std::size_t n = state_count();
  const std::size_t m = symbol_count();
  const std::size_t len = obs.size();

  // Scaled forward pass (reuse filter) and backward pass (as in smooth).
  const auto fwd = filter(obs);
  std::vector<std::vector<double>> beta(len, std::vector<double>(n, 1.0));
  for (std::size_t t = len - 1; t-- > 0;) {
    double norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double v = 0.0;
      for (std::size_t j = 0; j < n; ++j)
        v += trans_[i].p(j) * emit_[j].p(obs[t + 1]) * beta[t + 1][j];
      beta[t][i] = v;
      norm += v;
    }
    if (norm > 0.0) {
      for (double& v : beta[t]) v /= norm;
    }
  }

  // State posteriors gamma_t(i) and transition posteriors xi_t(i, j).
  std::vector<std::vector<double>> gamma(len, std::vector<double>(n, 0.0));
  for (std::size_t t = 0; t < len; ++t) {
    double norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      gamma[t][i] = fwd.filtered[t].p(i) * beta[t][i];
      norm += gamma[t][i];
    }
    for (double& v : gamma[t]) v /= norm;
  }

  std::vector<std::vector<double>> trans_acc(n, std::vector<double>(n, smoothing));
  std::vector<std::vector<double>> emit_acc(n, std::vector<double>(m, smoothing));
  std::vector<double> init_acc(n, smoothing);
  for (std::size_t i = 0; i < n; ++i) init_acc[i] += gamma[0][i];
  for (std::size_t t = 0; t < len; ++t) {
    for (std::size_t i = 0; i < n; ++i) emit_acc[i][obs[t]] += gamma[t][i];
  }
  // Hoisted out of the loop (also sidesteps a GCC 12 -O2 false-positive
  // -Wfree-nonheap-object on the per-iteration vector).
  std::vector<std::vector<double>> xi(n, std::vector<double>(n, 0.0));
  for (std::size_t t = 0; t + 1 < len; ++t) {
    double norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        xi[i][j] = fwd.filtered[t].p(i) * trans_[i].p(j) *
                   emit_[j].p(obs[t + 1]) * beta[t + 1][j];
        norm += xi[i][j];
      }
    }
    if (norm > 0.0) {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) trans_acc[i][j] += xi[i][j] / norm;
      }
    }
  }

  std::vector<prob::Categorical> new_trans, new_emit;
  for (std::size_t i = 0; i < n; ++i) {
    new_trans.push_back(prob::Categorical::normalized(trans_acc[i]));
    new_emit.push_back(prob::Categorical::normalized(emit_acc[i]));
  }
  return HmmFit{Hmm(prob::Categorical::normalized(init_acc),
                    std::move(new_trans), std::move(new_emit)),
                fwd.log_likelihood};
}

HmmFit Hmm::fit(const std::vector<std::size_t>& obs, std::size_t max_iters,
                     double tol, double smoothing) const {
  if (max_iters == 0) throw std::invalid_argument("Hmm::fit: zero iterations");
  Hmm current = *this;
  double prev_ll = -std::numeric_limits<double>::infinity();
  std::size_t iters = 0;
  for (std::size_t it = 0; it < max_iters; ++it) {
    ++iters;
    auto step = current.baum_welch_step(obs, smoothing);
    const double gain = step.log_likelihood - prev_ll;
    prev_ll = step.log_likelihood;
    current = std::move(step.model);
    if (it > 0 && gain < tol) break;
  }
  obs::Registry::global()
      .histogram("markov.hmm.fit_iterations", obs::count_buckets())
      .observe(static_cast<double>(iters));
  // Report the likelihood of the *final* model.
  const double final_ll = current.filter(obs).log_likelihood;
  return HmmFit{std::move(current), final_ll};
}

Hmm::Trajectory Hmm::sample(std::size_t length, prob::Rng& rng) const {
  if (length == 0) throw std::invalid_argument("Hmm::sample: zero length");
  Trajectory tr;
  tr.states.reserve(length);
  tr.observations.reserve(length);
  std::size_t state = init_.sample(rng);
  for (std::size_t t = 0; t < length; ++t) {
    if (t > 0) state = trans_[state].sample(rng);
    tr.states.push_back(state);
    tr.observations.push_back(emit_[state].sample(rng));
  }
  return tr;
}

}  // namespace sysuq::markov
