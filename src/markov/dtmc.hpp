// Discrete-time Markov chains and PCTL-style verification.
//
// The paper lists "verification with probabilistic formal methods"
// (refs [9], [10]) among the uncertainty-removal methods; this module is
// that substrate: reachability, bounded until, steady state — plus the
// *interval* DTMC variant where transition probabilities carry epistemic
// imprecision and verification returns guaranteed bounds.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "prob/interval.hpp"
#include "prob/rng.hpp"
#include "core/tolerance.hpp"

namespace sysuq::markov {

/// State index within a chain.
using StateId = std::size_t;

/// A finite discrete-time Markov chain with named states.
class Dtmc {
 public:
  /// Adds a state; returns its id. Names must be unique and non-empty.
  StateId add_state(const std::string& name);

  /// Sets P(from -> to) = p. Entries default to 0; each row must sum to
  /// 1 (checked by validate()).
  void set_transition(StateId from, StateId to, double p);

  [[nodiscard]] std::size_t size() const { return names_.size(); }
  [[nodiscard]] const std::string& name(StateId s) const;
  [[nodiscard]] StateId id_of(const std::string& name) const;
  [[nodiscard]] double transition(StateId from, StateId to) const;

  /// Contract: every row sums to 1 within tolerance::kProbSum.
  void validate() const;

  /// Probability of reaching any state in `targets` from each state
  /// (unbounded reachability), by iterative fixed point to `tol`.
  [[nodiscard]] std::vector<double> reachability(
      const std::vector<StateId>& targets, double tol = tolerance::kSolver,
      std::size_t max_iters = 1000000) const;

  /// P(reach targets within k steps) from each state (bounded until with
  /// trivial left operand; PCTL P[F<=k target]).
  [[nodiscard]] std::vector<double> bounded_reachability(
      const std::vector<StateId>& targets, std::size_t k) const;

  /// PCTL until: P[ safe U<=k target ] from each state — the probability
  /// of reaching a target within k steps while only passing safe states.
  [[nodiscard]] std::vector<double> bounded_until(
      const std::vector<bool>& safe, const std::vector<StateId>& targets,
      std::size_t k) const;

  /// Stationary distribution by power iteration from uniform (requires
  /// an ergodic chain to be meaningful; returns the iterate after
  /// convergence or max_iters).
  [[nodiscard]] std::vector<double> stationary(double tol = tolerance::kSolver,
                                               std::size_t max_iters = 100000) const;

  /// Expected number of steps to reach `targets` from each state
  /// (infinity where unreachable); iterative evaluation.
  [[nodiscard]] std::vector<double> expected_steps_to(
      const std::vector<StateId>& targets, double tol = tolerance::kIteration,
      std::size_t max_iters = 1000000) const;

  /// Simulates one trajectory of `steps` transitions from `start`.
  [[nodiscard]] std::vector<StateId> simulate(StateId start, std::size_t steps,
                                              prob::Rng& rng) const;

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<double>> p_;  // row-stochastic

  void check(StateId s) const;
};

/// An interval DTMC: transition probabilities known only to intervals.
/// Verification computes guaranteed lower/upper bounds over all
/// point chains consistent with the intervals (robust value iteration
/// with the same greedy budget allocation as the credal layer).
class IntervalDtmc {
 public:
  /// States named up front; all transitions start at [0, 0].
  explicit IntervalDtmc(std::vector<std::string> names);

  [[nodiscard]] std::size_t size() const { return names_.size(); }
  [[nodiscard]] const std::string& name(StateId s) const;

  /// Sets the transition probability interval.
  void set_transition(StateId from, StateId to, prob::ProbInterval p);

  /// Throws unless every row admits a distribution (sum lo <= 1 <= sum hi).
  void validate() const;

  /// Guaranteed bounds on P(reach targets within k steps) from each
  /// state: pessimal and optimal resolutions of the intervals.
  [[nodiscard]] std::vector<prob::ProbInterval> bounded_reachability(
      const std::vector<StateId>& targets, std::size_t k) const;

  /// True if the point chain is consistent with the intervals.
  [[nodiscard]] bool contains(const Dtmc& chain) const;

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<prob::ProbInterval>> p_;

  void check(StateId s) const;
};

}  // namespace sysuq::markov
