#include "prob/discrete.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/contracts.hpp"
#include "prob/special.hpp"

namespace sysuq::prob {

// ------------------------------------------------------------ Categorical

Categorical::Categorical(std::vector<double> probs) : p_(std::move(probs)) {
  SYSUQ_ASSERT_PROB_VEC(p_, "Categorical");
}

Categorical Categorical::normalized(std::vector<double> weights) {
  SYSUQ_EXPECT(contracts::is_finite_nonneg(weights),
               "Categorical::normalized: weights must be finite and "
               "non-negative");
  const double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  SYSUQ_EXPECT(sum > 0.0, "Categorical::normalized: all weights zero");
  SYSUQ_EXPECT(std::isfinite(sum), "Categorical::normalized: weight sum overflow");
  for (double& v : weights) v /= sum;
  return Categorical(std::move(weights));
}

Categorical Categorical::uniform(std::size_t k) {
  SYSUQ_EXPECT(k != 0, "Categorical::uniform: k == 0");
  return Categorical(std::vector<double>(k, 1.0 / static_cast<double>(k)));
}

Categorical Categorical::delta(std::size_t i, std::size_t k) {
  SYSUQ_EXPECT(i < k, "Categorical::delta: i >= k");
  std::vector<double> p(k, 0.0);
  p[i] = 1.0;
  return Categorical(std::move(p));
}

double Categorical::p(std::size_t i) const {
  if (i >= p_.size()) throw std::out_of_range("Categorical::p: index");
  return p_[i];
}

double Categorical::entropy() const {
  double h = 0.0;
  for (double v : p_) {
    if (v > 0.0) h -= v * std::log(v);
  }
  return h;
}

std::size_t Categorical::argmax() const {
  return static_cast<std::size_t>(
      std::distance(p_.begin(), std::max_element(p_.begin(), p_.end())));
}

double Categorical::max_prob() const { return *std::max_element(p_.begin(), p_.end()); }

std::size_t Categorical::sample(Rng& rng) const { return rng.categorical(p_); }

double Categorical::total_variation(const Categorical& other) const {
  SYSUQ_EXPECT(other.size() == size(),
               "Categorical::total_variation: size mismatch");
  double tv = 0.0;
  for (std::size_t i = 0; i < p_.size(); ++i) tv += std::fabs(p_[i] - other.p_[i]);
  return 0.5 * tv;
}

Categorical Categorical::mixed(const Categorical& other, double w) const {
  SYSUQ_EXPECT(other.size() == size(), "Categorical::mixed: size mismatch");
  SYSUQ_ASSERT_PROB(w, "Categorical::mixed: w");
  std::vector<double> m(p_.size());
  for (std::size_t i = 0; i < p_.size(); ++i)
    m[i] = (1.0 - w) * p_[i] + w * other.p_[i];
  return Categorical(std::move(m));
}

// -------------------------------------------------------------- Bernoulli

Bernoulli::Bernoulli(double p) : p_(p) { SYSUQ_ASSERT_PROB(p_, "Bernoulli: p"); }

double Bernoulli::entropy() const {
  auto term = [](double q) { return q > 0.0 ? -q * std::log(q) : 0.0; };
  return term(p_) + term(1.0 - p_);
}

bool Bernoulli::sample(Rng& rng) const { return rng.bernoulli(p_); }

// --------------------------------------------------------------- Binomial

Binomial::Binomial(std::size_t n, double p) : n_(n), p_(p) {
  SYSUQ_ASSERT_PROB(p_, "Binomial: p");
}

double Binomial::pmf(std::size_t k) const {
  if (k > n_) return 0.0;
  return std::exp(log_pmf(k));
}

double Binomial::log_pmf(std::size_t k) const {
  if (k > n_) return -std::numeric_limits<double>::infinity();
  if (p_ == 0.0) return k == 0 ? 0.0 : -std::numeric_limits<double>::infinity();  // sysuq-lint-allow(float-eq): degenerate p exactly 0
  if (p_ == 1.0) return k == n_ ? 0.0 : -std::numeric_limits<double>::infinity();  // sysuq-lint-allow(float-eq): degenerate p exactly 1
  return log_binomial_coeff(n_, k) + static_cast<double>(k) * std::log(p_) +
         static_cast<double>(n_ - k) * std::log1p(-p_);
}

double Binomial::cdf(std::size_t k) const {
  if (k >= n_) return 1.0;
  // P(X <= k) = I_{1-p}(n-k, k+1)
  return reg_inc_beta(static_cast<double>(n_ - k), static_cast<double>(k) + 1.0,
                      1.0 - p_);
}

std::size_t Binomial::sample(Rng& rng) const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n_; ++i) count += rng.bernoulli(p_) ? 1 : 0;
  return count;
}

// ---------------------------------------------------------------- Poisson

Poisson::Poisson(double lambda) : lambda_(lambda) {
  SYSUQ_EXPECT(std::isfinite(lambda_) && lambda_ > 0.0, "Poisson: lambda <= 0");
}

double Poisson::pmf(std::size_t k) const { return std::exp(log_pmf(k)); }

double Poisson::log_pmf(std::size_t k) const {
  return static_cast<double>(k) * std::log(lambda_) - lambda_ - log_factorial(k);
}

double Poisson::cdf(std::size_t k) const {
  return reg_upper_gamma(static_cast<double>(k) + 1.0, lambda_);
}

std::size_t Poisson::sample(Rng& rng) const {
  // Inversion by sequential search (adequate for the moderate lambdas the
  // library uses: event counts per scene / per observation window).
  const double l = std::exp(-lambda_);
  std::size_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.uniform();
  } while (p > l);
  return k - 1;
}

// ----------------------------------------------------- CategoricalCounter

CategoricalCounter::CategoricalCounter(std::size_t k) : counts_(k, 0) {
  SYSUQ_EXPECT(k != 0, "CategoricalCounter: k == 0");
}

void CategoricalCounter::observe(std::size_t i) { observe(i, 1); }

void CategoricalCounter::observe(std::size_t i, std::size_t n) {
  if (i >= counts_.size())
    throw std::out_of_range("CategoricalCounter::observe: index");
  counts_[i] += n;
  total_ += n;
}

Categorical CategoricalCounter::mle() const {
  SYSUQ_EXPECT(total_ != 0, "CategoricalCounter::mle: no observations");
  std::vector<double> p(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i)
    p[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  return Categorical(std::move(p));
}

Categorical CategoricalCounter::smoothed(double smoothing) const {
  SYSUQ_EXPECT(smoothing > 0.0, "CategoricalCounter::smoothed: smoothing <= 0");
  std::vector<double> w(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i)
    w[i] = static_cast<double>(counts_[i]) + smoothing;
  return Categorical::normalized(std::move(w));
}

std::size_t CategoricalCounter::unseen_categories() const {
  return static_cast<std::size_t>(
      std::count(counts_.begin(), counts_.end(), std::size_t{0}));
}

double CategoricalCounter::good_turing_missing_mass() const {
  if (total_ == 0) return 1.0;  // with no data, all mass is unseen
  const auto singletons = static_cast<double>(
      std::count(counts_.begin(), counts_.end(), std::size_t{1}));
  return singletons / static_cast<double>(total_);
}

}  // namespace sysuq::prob
