#include "prob/information.hpp"

#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/contracts.hpp"
#include "core/tolerance.hpp"

namespace sysuq::prob {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

JointTable::JointTable(std::vector<std::vector<double>> table)
    : t_(std::move(table)) {
  SYSUQ_EXPECT(!t_.empty() && !t_[0].empty(), "JointTable: empty table");
  if (!contracts::enforced()) return;
  const std::size_t cols = t_[0].size();
  double sum = 0.0;
  for (const auto& row : t_) {
    SYSUQ_EXPECT(row.size() == cols, "JointTable: ragged rows");
    for (double v : row) {
      SYSUQ_EXPECT(std::isfinite(v) && v >= 0.0, "JointTable: negative entry");
      sum += v;
    }
  }
  SYSUQ_EXPECT(std::fabs(sum - 1.0) <= tolerance::kProbSum,
               "JointTable: entries must sum to 1");
}

JointTable JointTable::from_conditional(
    const Categorical& px, const std::vector<Categorical>& py_given_x) {
  SYSUQ_EXPECT(py_given_x.size() == px.size(),
               "JointTable::from_conditional: row mismatch");
  const std::size_t cols = py_given_x.empty() ? 0 : py_given_x[0].size();
  std::vector<std::vector<double>> t(px.size(), std::vector<double>(cols, 0.0));
  for (std::size_t x = 0; x < px.size(); ++x) {
    if (py_given_x[x].size() != cols)
      throw std::invalid_argument("JointTable::from_conditional: col mismatch");
    for (std::size_t y = 0; y < cols; ++y) t[x][y] = px.p(x) * py_given_x[x].p(y);
  }
  return JointTable(std::move(t));
}

double JointTable::p(std::size_t x, std::size_t y) const {
  if (x >= rows() || y >= cols()) throw std::out_of_range("JointTable::p");
  return t_[x][y];
}

Categorical JointTable::marginal_x() const {
  std::vector<double> m(rows(), 0.0);
  for (std::size_t x = 0; x < rows(); ++x)
    for (std::size_t y = 0; y < cols(); ++y) m[x] += t_[x][y];
  return Categorical::normalized(std::move(m));
}

Categorical JointTable::marginal_y() const {
  std::vector<double> m(cols(), 0.0);
  for (std::size_t x = 0; x < rows(); ++x)
    for (std::size_t y = 0; y < cols(); ++y) m[y] += t_[x][y];
  return Categorical::normalized(std::move(m));
}

Categorical JointTable::conditional_y_given_x(std::size_t x) const {
  if (x >= rows()) throw std::out_of_range("conditional_y_given_x");
  return Categorical::normalized(t_[x]);
}

Categorical JointTable::conditional_x_given_y(std::size_t y) const {
  if (y >= cols()) throw std::out_of_range("conditional_x_given_y");
  std::vector<double> col(rows());
  for (std::size_t x = 0; x < rows(); ++x) col[x] = t_[x][y];
  return Categorical::normalized(std::move(col));
}

double entropy(const Categorical& p) { return p.entropy(); }

double cross_entropy(const Categorical& p, const Categorical& q) {
  SYSUQ_EXPECT(p.size() == q.size(), "cross_entropy: size mismatch");
  double h = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p.p(i) > 0.0) {
      if (q.p(i) == 0.0) return kInf;  // sysuq-lint-allow(float-eq): KL infinite on exact zero
      h -= p.p(i) * std::log(q.p(i));
    }
  }
  return h;
}

double kl_divergence(const Categorical& p, const Categorical& q) {
  const double ce = cross_entropy(p, q);
  return ce == kInf ? kInf : ce - p.entropy();
}

double js_divergence(const Categorical& p, const Categorical& q) {
  const Categorical m = p.mixed(q, 0.5);
  return 0.5 * kl_divergence(p, m) + 0.5 * kl_divergence(q, m);
}

double joint_entropy(const JointTable& joint) {
  double h = 0.0;
  for (std::size_t x = 0; x < joint.rows(); ++x) {
    for (std::size_t y = 0; y < joint.cols(); ++y) {
      const double v = joint.p(x, y);
      if (v > 0.0) h -= v * std::log(v);
    }
  }
  return h;
}

double conditional_entropy_y_given_x(const JointTable& joint) {
  return joint_entropy(joint) - joint.marginal_x().entropy();
}

double conditional_entropy_x_given_y(const JointTable& joint) {
  return joint_entropy(joint) - joint.marginal_y().entropy();
}

double mutual_information(const JointTable& joint) {
  const double mi =
      joint.marginal_y().entropy() - conditional_entropy_y_given_x(joint);
  return std::max(0.0, mi);  // clamp tiny negative rounding residue
}

EntropyDecomposition decompose_ensemble_entropy(
    const std::vector<Categorical>& members, const std::vector<double>* weights) {
  SYSUQ_EXPECT(!members.empty(), "decompose_ensemble_entropy: empty ensemble");
  const std::size_t k = members[0].size();
  std::vector<double> w;
  if (weights != nullptr) {
    SYSUQ_EXPECT(weights->size() == members.size(),
                 "decompose_ensemble_entropy: weight mismatch");
    SYSUQ_EXPECT(contracts::is_finite_nonneg(*weights),
                 "decompose_ensemble_entropy: negative weight");
    const double sum = std::accumulate(weights->begin(), weights->end(), 0.0);
    SYSUQ_EXPECT(sum > 0.0, "decompose_ensemble_entropy: zero weights");
    w = *weights;
    for (double& v : w) v /= sum;
  } else {
    w.assign(members.size(), 1.0 / static_cast<double>(members.size()));
  }

  std::vector<double> mean(k, 0.0);
  double expected_h = 0.0;
  for (std::size_t m = 0; m < members.size(); ++m) {
    SYSUQ_EXPECT(members[m].size() == k,
                 "decompose_ensemble_entropy: size mismatch");
    expected_h += w[m] * members[m].entropy();
    for (std::size_t i = 0; i < k; ++i) mean[i] += w[m] * members[m].p(i);
  }
  const Categorical mixture = Categorical::normalized(std::move(mean));
  const double total = mixture.entropy();
  return {total, expected_h, std::max(0.0, total - expected_h)};
}

}  // namespace sysuq::prob
