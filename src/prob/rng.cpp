#include "prob/rng.hpp"

#include <stdexcept>

#include "obs/registry.hpp"

namespace sysuq::prob {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t s = seed;
  // Expand the seed through SplitMix64 into a full seed sequence.
  std::seed_seq seq{static_cast<std::uint32_t>(splitmix64(s)),
                    static_cast<std::uint32_t>(splitmix64(s)),
                    static_cast<std::uint32_t>(splitmix64(s)),
                    static_cast<std::uint32_t>(splitmix64(s))};
  engine_.seed(seq);
}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  if (!(lo <= hi)) throw std::invalid_argument("Rng::uniform: lo > hi");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::size_t Rng::uniform_index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_index: n == 0");
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
}

double Rng::gaussian() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::gaussian(double mean, double sigma) {
  if (sigma < 0.0) throw std::invalid_argument("Rng::gaussian: sigma < 0");
  if (sigma == 0.0) return mean;  // sysuq-lint-allow(float-eq): degenerate sigma = 0
  return std::normal_distribution<double>(mean, sigma)(engine_);
}

double Rng::exponential(double rate) {
  if (!(rate > 0.0)) throw std::invalid_argument("Rng::exponential: rate <= 0");
  return std::exponential_distribution<double>(rate)(engine_);
}

double Rng::gamma(double shape, double scale) {
  if (!(shape > 0.0) || !(scale > 0.0))
    throw std::invalid_argument("Rng::gamma: require shape, scale > 0");
  return std::gamma_distribution<double>(shape, scale)(engine_);
}

bool Rng::bernoulli(double p) {
  if (!(p >= 0.0 && p <= 1.0))
    throw std::invalid_argument("Rng::bernoulli: p outside [0, 1]");
  return uniform() < p;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::categorical: negative weight");
    total += w;
  }
  if (!(total > 0.0))
    throw std::invalid_argument("Rng::categorical: all weights zero");
  double u = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: fall into the last bucket
}

Rng Rng::split(std::uint64_t salt) {
  static obs::Counter& splits =
      obs::Registry::global().counter("prob.rng.splits");
  splits.inc();
  std::uint64_t s = seed_ ^ (salt * 0xD6E8FEB86659FD93ULL);
  const std::uint64_t child_seed = splitmix64(s) ^ next_u64();
  return Rng(child_seed);
}

std::uint64_t Rng::next_u64() { return engine_(); }

}  // namespace sysuq::prob
