// Running statistics and sample summaries.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace sysuq::prob {

/// Numerically stable single-pass mean/variance accumulator (Welford).
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Merges another accumulator (parallel reduction identity).
  void merge(const RunningStats& other);

  /// Number of observations so far.
  [[nodiscard]] std::size_t count() const { return n_; }
  /// Sample mean (0 if empty).
  [[nodiscard]] double mean() const { return mean_; }
  /// Unbiased sample variance (0 if fewer than 2 observations).
  [[nodiscard]] double variance() const;
  /// Sample standard deviation.
  [[nodiscard]] double stddev() const;
  /// Minimum observed value (throws if empty).
  [[nodiscard]] double min() const;
  /// Maximum observed value (throws if empty).
  [[nodiscard]] double max() const;
  /// Standard error of the mean, s/sqrt(n).
  [[nodiscard]] double std_error() const;
  /// Normal-approximation (1-alpha) confidence interval for the mean.
  [[nodiscard]] std::pair<double, double> mean_confidence_interval(
      double alpha = 0.05) const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical quantile of a sample (linear interpolation between order
/// statistics, type-7 as in R/numpy). `p` in [0, 1]; throws on empty input.
[[nodiscard]] double quantile(std::vector<double> sample, double p);

/// Wilson score interval for a binomial proportion: a (1-alpha) interval
/// for p given k successes in n trials. Well-behaved at the extremes —
/// used when reporting rare-event rates (safety-relevant misperceptions).
[[nodiscard]] std::pair<double, double> wilson_interval(std::size_t k,
                                                        std::size_t n,
                                                        double alpha = 0.05);

/// Pearson correlation coefficient of two equal-length samples.
[[nodiscard]] double pearson_correlation(const std::vector<double>& x,
                                         const std::vector<double>& y);

}  // namespace sysuq::prob
