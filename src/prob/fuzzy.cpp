#include "prob/fuzzy.hpp"

#include <cstdio>
#include <stdexcept>

namespace sysuq::prob {

TriangularFuzzy::TriangularFuzzy(double a, double m, double b)
    : a_(a), m_(m), b_(b) {
  if (!(a <= m && m <= b))
    throw std::invalid_argument("TriangularFuzzy: require a <= m <= b");
}

TriangularFuzzy TriangularFuzzy::crisp(double value) {
  return {value, value, value};
}

double TriangularFuzzy::membership(double x) const {
  if (x < a_ || x > b_) return 0.0;
  if (x == m_) return 1.0;
  if (x < m_) return (x - a_) / (m_ - a_);
  return (b_ - x) / (b_ - m_);
}

std::pair<double, double> TriangularFuzzy::alpha_cut(double alpha) const {
  if (!(alpha > 0.0 && alpha <= 1.0))
    throw std::invalid_argument("TriangularFuzzy::alpha_cut: alpha in (0, 1]");
  return {a_ + alpha * (m_ - a_), b_ - alpha * (b_ - m_)};
}

TriangularFuzzy TriangularFuzzy::operator+(const TriangularFuzzy& o) const {
  return {a_ + o.a_, m_ + o.m_, b_ + o.b_};
}

TriangularFuzzy TriangularFuzzy::operator*(const TriangularFuzzy& o) const {
  // Valid triangular approximation when all endpoints are non-negative
  // (always true for fuzzy probabilities).
  if (a_ < 0.0 || o.a_ < 0.0)
    throw std::invalid_argument("TriangularFuzzy::operator*: negative support");
  return {a_ * o.a_, m_ * o.m_, b_ * o.b_};
}

TriangularFuzzy TriangularFuzzy::complement() const {
  if (a_ < 0.0 || b_ > 1.0)
    throw std::invalid_argument("TriangularFuzzy::complement: not a probability");
  return {1.0 - b_, 1.0 - m_, 1.0 - a_};
}

TriangularFuzzy TriangularFuzzy::fuzzy_and(const TriangularFuzzy& x,
                                           const TriangularFuzzy& y) {
  return x * y;
}

TriangularFuzzy TriangularFuzzy::fuzzy_or(const TriangularFuzzy& x,
                                          const TriangularFuzzy& y) {
  return fuzzy_and(x.complement(), y.complement()).complement();
}

std::string TriangularFuzzy::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "(%.6g, %.6g, %.6g)", a_, m_, b_);
  return buf;
}

}  // namespace sysuq::prob
