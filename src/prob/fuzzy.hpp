// Triangular fuzzy numbers and alpha-cut arithmetic.
//
// Fuzzy fault-tree analysis (Tanaka et al. 1983, cited by the paper as an
// FTA extension) represents imprecise basic-event probabilities as fuzzy
// numbers and propagates them through gates by alpha-cut interval
// arithmetic. A triangular fuzzy number (a, m, b) has membership 1 at m
// falling linearly to 0 at a and b.
#pragma once

#include <string>
#include <utility>

namespace sysuq::prob {

/// Triangular fuzzy number with support [a, b] and core m.
/// Invariant: a <= m <= b; for fuzzy probabilities, 0 <= a, b <= 1.
class TriangularFuzzy {
 public:
  TriangularFuzzy(double a, double m, double b);

  /// Crisp (degenerate) fuzzy number.
  // sysuq-lint-allow(contract-coverage): any real value is a valid crisp number
  [[nodiscard]] static TriangularFuzzy crisp(double value);

  [[nodiscard]] double low() const { return a_; }
  [[nodiscard]] double mode() const { return m_; }
  [[nodiscard]] double high() const { return b_; }

  /// Membership degree mu(x) in [0, 1].
  // sysuq-lint-allow(contract-coverage): total over the reals by construction
  [[nodiscard]] double membership(double x) const;

  /// Alpha-cut: the interval {x : mu(x) >= alpha}. alpha in (0, 1].
  [[nodiscard]] std::pair<double, double> alpha_cut(double alpha) const;

  /// Support width b - a: a scalar imprecision measure.
  [[nodiscard]] double support_width() const { return b_ - a_; }

  /// Centroid defuzzification (a + m + b) / 3.
  [[nodiscard]] double defuzzify() const { return (a_ + m_ + b_) / 3.0; }

  /// Fuzzy arithmetic via endpoint operations — exact for triangular
  /// operands under +; approximate (triangular-preserving) under *.
  [[nodiscard]] TriangularFuzzy operator+(const TriangularFuzzy& o) const;
  [[nodiscard]] TriangularFuzzy operator*(const TriangularFuzzy& o) const;
  /// 1 - x, for complementing fuzzy probabilities.
  [[nodiscard]] TriangularFuzzy complement() const;

  /// Fuzzy AND-gate probability: product of operands.
  // sysuq-lint-allow(contract-coverage): delegates to operator*, which validates support
  [[nodiscard]] static TriangularFuzzy fuzzy_and(const TriangularFuzzy& x,
                                                 const TriangularFuzzy& y);
  /// Fuzzy OR-gate probability: 1 - (1-x)(1-y).
  [[nodiscard]] static TriangularFuzzy fuzzy_or(const TriangularFuzzy& x,
                                                const TriangularFuzzy& y);

  [[nodiscard]] bool operator==(const TriangularFuzzy& o) const = default;

  [[nodiscard]] std::string to_string() const;

 private:
  double a_, m_, b_;
};

}  // namespace sysuq::prob
